package crypt

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
)

// Tunnel hop anchors carry H(PW), the hash of a secret password; deleting
// an anchor requires presenting PW, whose hash the replica holders compare
// (§3.4). Storing the hash rather than the password prevents a malicious
// replica holder from learning PW and deleting the anchor itself.

// PasswordSize is the length of a generated anchor password.
const PasswordSize = 16

// Password is the deletion secret of a THA, known only to its owner.
type Password [PasswordSize]byte

// PasswordHash is H(PW) as stored inside a THA.
type PasswordHash [sha256.Size]byte

// NewPassword draws a password from r.
func NewPassword(r io.Reader) (Password, error) {
	var pw Password
	if _, err := io.ReadFull(r, pw[:]); err != nil {
		return Password{}, fmt.Errorf("crypt: drawing password: %w", err)
	}
	return pw, nil
}

// Hash computes H(PW).
func (pw Password) Hash() PasswordHash {
	return PasswordHash(sha256.Sum256(pw[:]))
}

// Verify reports whether pw hashes to h, in constant time.
func (h PasswordHash) Verify(pw Password) bool {
	got := pw.Hash()
	return hmac.Equal(got[:], h[:])
}
