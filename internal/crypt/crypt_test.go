package crypt

import (
	"bytes"
	"testing"
	"testing/quick"

	"tap/internal/rng"
)

func TestSealOpenRoundTrip(t *testing.T) {
	s := rng.New(1)
	k, err := NewKey(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 16, 100, 4096} {
		msg := make([]byte, size)
		s.Bytes(msg)
		sealed, err := Seal(k, s, msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(sealed) != size+Overhead {
			t.Fatalf("sealed size %d, want %d", len(sealed), size+Overhead)
		}
		got, err := Open(k, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip mismatch at size %d", size)
		}
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	s := rng.New(2)
	k1, _ := NewKey(s)
	k2, _ := NewKey(s)
	sealed, err := Seal(k1, s, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(k2, sealed); err != ErrAuth {
		t.Fatalf("wrong key: err = %v, want ErrAuth", err)
	}
}

func TestOpenTamperFails(t *testing.T) {
	s := rng.New(3)
	k, _ := NewKey(s)
	sealed, err := Seal(k, s, []byte("hello tunnel"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sealed); i++ {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x40
		if _, err := Open(k, mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
}

func TestOpenTruncated(t *testing.T) {
	s := rng.New(4)
	k, _ := NewKey(s)
	if _, err := Open(k, make([]byte, Overhead-1)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestSealNonceVaries(t *testing.T) {
	s := rng.New(5)
	k, _ := NewKey(s)
	a, _ := Seal(k, s, []byte("m"))
	b, _ := Seal(k, s, []byte("m"))
	if bytes.Equal(a, b) {
		t.Fatalf("two seals of the same message identical — nonce reuse")
	}
}

func TestLayeredSealMatchesPaperStructure(t *testing.T) {
	// Three nested layers, peeled in order — the {h2,{h3,{D,m}K3}K2}K1
	// structure of Figure 1.
	s := rng.New(6)
	k1, _ := NewKey(s)
	k2, _ := NewKey(s)
	k3, _ := NewKey(s)
	inner := []byte("D||m")
	l3, _ := Seal(k3, s, inner)
	l2, _ := Seal(k2, s, l3)
	l1, _ := Seal(k1, s, l2)

	p1, err := Open(k1, l1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Open(k2, p1)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Open(k3, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p3, inner) {
		t.Fatalf("layered round trip mismatch")
	}
	// Peeling out of order must fail.
	if _, err := Open(k2, l1); err == nil {
		t.Fatalf("out-of-order peel accepted")
	}
}

func TestBoxRoundTrip(t *testing.T) {
	s := rng.New(7)
	kp, err := NewBoxKeyPair(s)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("file key K_f")
	sealed, err := BoxSeal(kp.Public(), s, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(msg)+BoxOverhead {
		t.Fatalf("box size %d, want %d", len(sealed), len(msg)+BoxOverhead)
	}
	got, err := kp.BoxOpen(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("box round trip mismatch")
	}
}

func TestBoxWrongRecipientFails(t *testing.T) {
	s := rng.New(8)
	kp1, _ := NewBoxKeyPair(s)
	kp2, _ := NewBoxKeyPair(s)
	sealed, err := BoxSeal(kp1.Public(), s, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kp2.BoxOpen(sealed); err == nil {
		t.Fatalf("wrong recipient opened box")
	}
}

func TestBoxPublicKeyRoundTrip(t *testing.T) {
	s := rng.New(9)
	kp, _ := NewBoxKeyPair(s)
	b := kp.Public().Bytes()
	pk, err := ParseBoxPublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := BoxSeal(pk, s, []byte("via parsed key"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kp.BoxOpen(sealed); err != nil {
		t.Fatalf("parsed key box failed: %v", err)
	}
	if _, err := ParseBoxPublicKey([]byte("short")); err == nil {
		t.Fatalf("bad public key accepted")
	}
}

func TestPasswordVerify(t *testing.T) {
	s := rng.New(10)
	pw, err := NewPassword(s)
	if err != nil {
		t.Fatal(err)
	}
	h := pw.Hash()
	if !h.Verify(pw) {
		t.Fatalf("correct password rejected")
	}
	var wrong Password
	if h.Verify(wrong) {
		t.Fatalf("wrong password accepted")
	}
}

func TestPasswordHashDeterministic(t *testing.T) {
	f := func(b [PasswordSize]byte) bool {
		pw := Password(b)
		return pw.Hash() == pw.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPuzzleMintVerify(t *testing.T) {
	p := Puzzle{Challenge: []byte("hopid-123"), Difficulty: 8}
	nonce := p.Mint()
	if err := p.Verify(nonce); err != nil {
		t.Fatalf("minted solution rejected: %v", err)
	}
	if err := p.Verify(nonce + 1<<40); err == nil {
		t.Fatalf("bogus nonce accepted (astronomically unlikely to be valid)")
	}
}

func TestPuzzleZeroDifficultyFree(t *testing.T) {
	p := Puzzle{Challenge: []byte("x"), Difficulty: 0}
	if p.Mint() != 0 {
		t.Fatalf("zero difficulty should accept the first nonce")
	}
	if err := p.Verify(12345); err != nil {
		t.Fatalf("zero difficulty rejected a nonce: %v", err)
	}
}

func TestPuzzleBindsChallenge(t *testing.T) {
	a := Puzzle{Challenge: []byte("anchor-a"), Difficulty: 10}
	b := Puzzle{Challenge: []byte("anchor-b"), Difficulty: 10}
	nonce := a.Mint()
	// A solution for a is almost surely invalid for b: solutions cannot be
	// stockpiled and replayed for other anchors.
	if b.Verify(nonce) == nil && a.Mint() == b.Mint() {
		t.Fatalf("puzzle solutions transferable between challenges")
	}
}

func BenchmarkSeal1KiB(b *testing.B) {
	s := rng.New(11)
	k, _ := NewKey(s)
	msg := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(k, s, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen1KiB(b *testing.B) {
	s := rng.New(12)
	k, _ := NewKey(s)
	msg := make([]byte, 1024)
	sealed, _ := Seal(k, s, msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(k, sealed); err != nil {
			b.Fatal(err)
		}
	}
}
