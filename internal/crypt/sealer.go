package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
)

// smallCTRLimit is the plaintext size up to which the Sealer uses its own
// allocation-free CTR loop instead of cipher.NewCTR. The stdlib stream is
// faster per byte but costs one ~512 B allocation per message; below this
// limit — which covers every control message, reply-onion layer, and
// anchor deployment TAP sends — the steady-state seal/open path performs
// zero allocations.
const smallCTRLimit = 1024

// Sealer is the cached key schedule for one layer key: the enc/mac
// subkeys are derived once, the AES key schedule is expanded once, and
// one HMAC state is keyed once and reset between messages. Tunnels hold
// one Sealer per hop (owner side) and anchors carry one from deployment
// (hop side), so per-message work drops to exactly one cipher pass and
// one MAC pass.
//
// A Sealer is NOT safe for concurrent use: the HMAC state and CTR
// scratch are reused across calls. Each goroutine needs its own (or its
// own tunnel/anchor, which in TAP it always has).
type Sealer struct {
	block cipher.Block // AES-128 under the derived enc subkey
	mac   hash.Hash    // HMAC-SHA256 under the derived mac subkey, Reset per use
	sum   [sha256.Size]byte
	ks    [aes.BlockSize]byte // keystream scratch for the small-message CTR
	ctr   [aes.BlockSize]byte // counter scratch
}

// NewSealer derives the subkey schedule for k. The returned Sealer makes
// Seal/Open-equivalent operations reuse that work for the key's lifetime.
func NewSealer(k Key) *Sealer {
	encKey, macKey := subkeys(k)
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		// aes.NewCipher only fails on bad key length; encKey is fixed-size.
		panic("crypt: " + err.Error())
	}
	s := &Sealer{block: block, mac: hmac.New(sha256.New, macKey[:])}
	// Prime the HMAC pad cache so the first sealed message is already on
	// the allocation-free path.
	s.mac.Sum(s.sum[:0])
	s.mac.Reset()
	return s
}

// xorKeyStream is the allocation-free CTR used for small messages: the
// big-endian counter starts at the nonce, exactly like cipher.NewCTR, so
// output is bit-identical to the stdlib stream. dst and src must either
// be the same slice or not overlap.
func (s *Sealer) xorKeyStream(dst, src, nonce []byte) {
	copy(s.ctr[:], nonce)
	for off := 0; off < len(src); off += aes.BlockSize {
		s.block.Encrypt(s.ks[:], s.ctr[:])
		// Increment the counter (big-endian, carrying leftward).
		for i := aes.BlockSize - 1; i >= 0; i-- {
			s.ctr[i]++
			if s.ctr[i] != 0 {
				break
			}
		}
		n := len(src) - off
		if n >= aes.BlockSize {
			// Full block: XOR as two uint64 lanes.
			v0 := binary.LittleEndian.Uint64(src[off:]) ^ binary.LittleEndian.Uint64(s.ks[:8])
			v1 := binary.LittleEndian.Uint64(src[off+8:]) ^ binary.LittleEndian.Uint64(s.ks[8:])
			binary.LittleEndian.PutUint64(dst[off:], v0)
			binary.LittleEndian.PutUint64(dst[off+8:], v1)
			continue
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ s.ks[i]
		}
	}
}

// stream applies the CTR keystream for nonce to src, writing into dst
// (which may be src itself): the small path in place, the stdlib stream
// above smallCTRLimit.
func (s *Sealer) stream(dst, src, nonce []byte) {
	if len(src) <= smallCTRLimit {
		s.xorKeyStream(dst, src, nonce)
		return
	}
	cipher.NewCTR(s.block, nonce).XORKeyStream(dst, src)
}

// tag computes the truncated transmission tag over body into out
// (len tagSize) without allocating.
func (s *Sealer) tag(out, body []byte) {
	s.mac.Reset()
	s.mac.Write(body)
	s.mac.Sum(s.sum[:0])
	copy(out, s.sum[:tagSize])
}

// SealTo appends one sealed layer — nonce || AES-CTR(plaintext) || tag,
// the exact Seal wire format — to dst and returns the extended slice.
// The nonce is drawn from r. plaintext may alias dst's free capacity
// only if it starts exactly nonceSize bytes past the append point (the
// in-place layout SealInPlace serves); any other overlap is the
// caller's bug.
func (s *Sealer) SealTo(dst []byte, r io.Reader, plaintext []byte) ([]byte, error) {
	off := len(dst)
	total := off + nonceSize + len(plaintext) + tagSize
	if cap(dst) < total {
		grown := make([]byte, off, total)
		copy(grown, dst)
		dst = grown
	}
	out := dst[:total]
	nonce := out[off : off+nonceSize]
	if _, err := io.ReadFull(r, nonce); err != nil {
		return dst, fmt.Errorf("crypt: drawing nonce: %w", err)
	}
	body := out[off+nonceSize : total-tagSize]
	s.stream(body, plaintext, nonce)
	s.tag(out[total-tagSize:], out[off:total-tagSize])
	return out, nil
}

// SealInPlace seals b's interior: on entry b must hold the plaintext at
// b[nonceSize : len(b)-tagSize] with the margins reserved; on return b
// is a complete sealed layer. This is the zero-copy primitive layered
// message building uses — each layer is sealed where it already lies.
func (s *Sealer) SealInPlace(b []byte, r io.Reader) error {
	return s.SealInPlaceFrom(b, r, len(b)-Overhead, nil)
}

// SealInPlaceFrom is SealInPlace for a plaintext split in two: the first
// inPlaceLen bytes already sit in b's interior, the remaining bytes are
// read from tail and written — encrypted — into b, sparing the caller
// the plaintext copy. len(b) must equal Overhead + inPlaceLen + len(tail).
func (s *Sealer) SealInPlaceFrom(b []byte, r io.Reader, inPlaceLen int, tail []byte) error {
	if len(b) < Overhead || inPlaceLen < 0 || len(b)-Overhead != inPlaceLen+len(tail) {
		return fmt.Errorf("crypt: seal-in-place layout mismatch: %d bytes for %d+%d plaintext", len(b), inPlaceLen, len(tail))
	}
	nonce := b[:nonceSize]
	if _, err := io.ReadFull(r, nonce); err != nil {
		return fmt.Errorf("crypt: drawing nonce: %w", err)
	}
	body := b[nonceSize : len(b)-tagSize]
	if len(body) <= smallCTRLimit {
		s.xorKeyStream(body[:inPlaceLen], body[:inPlaceLen], nonce)
		if len(tail) > 0 {
			// Continue the keystream where the in-place part stopped,
			// even mid-block.
			s.xorTailSmall(body[inPlaceLen:], tail, nonce, inPlaceLen)
		}
	} else {
		ctr := cipher.NewCTR(s.block, nonce)
		ctr.XORKeyStream(body[:inPlaceLen], body[:inPlaceLen])
		if len(tail) > 0 {
			ctr.XORKeyStream(body[inPlaceLen:], tail)
		}
	}
	s.tag(b[len(b)-tagSize:], b[:len(b)-tagSize])
	return nil
}

// xorTailSmall continues the small-CTR keystream at byte offset skip,
// XORing src into dst. skip need not be block-aligned.
func (s *Sealer) xorTailSmall(dst, src, nonce []byte, skip int) {
	copy(s.ctr[:], nonce)
	for n := skip / aes.BlockSize; n > 0; n-- {
		for i := aes.BlockSize - 1; i >= 0; i-- {
			s.ctr[i]++
			if s.ctr[i] != 0 {
				break
			}
		}
	}
	phase := skip % aes.BlockSize
	di := 0
	for di < len(src) {
		s.block.Encrypt(s.ks[:], s.ctr[:])
		for i := aes.BlockSize - 1; i >= 0; i-- {
			s.ctr[i]++
			if s.ctr[i] != 0 {
				break
			}
		}
		for i := phase; i < aes.BlockSize && di < len(src); i++ {
			dst[di] = src[di] ^ s.ks[i]
			di++
		}
		phase = 0
	}
}

// OpenTo authenticates sealed and appends its plaintext to dst,
// returning the extended slice. sealed is not modified. dst must not
// overlap sealed.
func (s *Sealer) OpenTo(dst []byte, sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return dst, ErrTruncated
	}
	if !s.check(sealed) {
		return dst, ErrAuth
	}
	off := len(dst)
	n := len(sealed) - Overhead
	total := off + n
	if cap(dst) < total {
		grown := make([]byte, off, total)
		copy(grown, dst)
		dst = grown
	}
	out := dst[:total]
	s.stream(out[off:], sealed[nonceSize:len(sealed)-tagSize], sealed[:nonceSize])
	return out, nil
}

// OpenInPlace authenticates sealed and decrypts its body where it lies,
// returning the plaintext as a sub-slice of sealed. On error sealed is
// untouched; on success its interior holds plaintext and the blob must
// not be treated as sealed again. This is the hop-side primitive: one
// layer peel costs one MAC pass and one in-place cipher pass, nothing
// else.
func (s *Sealer) OpenInPlace(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrTruncated
	}
	if !s.check(sealed) {
		return nil, ErrAuth
	}
	body := sealed[nonceSize : len(sealed)-tagSize]
	s.stream(body, body, sealed[:nonceSize])
	return body, nil
}

// check verifies sealed's tag without allocating.
func (s *Sealer) check(sealed []byte) bool {
	s.tag(s.sum[:tagSize], sealed[:len(sealed)-tagSize])
	return hmac.Equal(s.sum[:tagSize], sealed[len(sealed)-tagSize:])
}
