// Package crypt supplies the cryptographic primitives TAP's tunneling
// uses: symmetric layer encryption (the per-hop {m}_K operation of the
// paper's Figure 1), public-key boxes for the PKI the Onion-Routing
// bootstrap assumes, password hashing for THA ownership proofs, and
// CPU-payment puzzles for THA-flood defense.
//
// Everything is built from the Go standard library: AES-CTR with an
// HMAC-SHA256 tag for sealed layers (encrypt-then-MAC), X25519 for boxes,
// SHA-256 for passwords, and a hashcash-style partial-preimage puzzle.
// The paper's results do not depend on cipher choice ("the overhead
// introduced by symmetric encryption/decryption in tunneling is
// negligible"); what matters is that each hop performs exactly one
// symmetric operation per message, which the layer format preserves.
package crypt

import (
	"crypto/aes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key length in bytes (AES-128).
const KeySize = 16

// nonceSize is the CTR IV length.
const nonceSize = aes.BlockSize

// tagSize is the truncated HMAC-SHA256 tag length.
const tagSize = 16

// Overhead is the ciphertext expansion of one Seal: nonce plus tag. Layer
// counting in tunnel messages uses it to compute wire sizes.
const Overhead = nonceSize + tagSize

// NonceSize and TagSize are Overhead's two components, exported so layered
// message builders can reserve the exact margins around an in-place
// plaintext region: a sealed blob is nonce (NonceSize) || body || tag
// (TagSize).
const (
	NonceSize = nonceSize
	TagSize   = tagSize
)

// Key is a symmetric layer key — the K of a tunnel hop anchor.
type Key [KeySize]byte

// NewKey draws a key from r, which may be crypto/rand for deployment or a
// deterministic rng.Stream for simulation.
func NewKey(r io.Reader) (Key, error) {
	var k Key
	if _, err := io.ReadFull(r, k[:]); err != nil {
		return Key{}, fmt.Errorf("crypt: drawing key: %w", err)
	}
	return k, nil
}

// ErrAuth is returned when a sealed layer fails authentication: the
// ciphertext was modified, or the wrong key was used — e.g. a node that is
// not the intended tunnel hop trying to peel a layer.
var ErrAuth = errors.New("crypt: message authentication failed")

// ErrTruncated is returned when a sealed blob is too short to contain a
// nonce and tag.
var ErrTruncated = errors.New("crypt: sealed blob truncated")

// subkeys derives independent encryption and MAC keys from k, so the same
// anchor key can safely drive both AES and HMAC.
func subkeys(k Key) (enc [16]byte, mac [32]byte) {
	h := hmac.New(sha256.New, k[:])
	h.Write([]byte("tap.layer.enc"))
	copy(enc[:], h.Sum(nil))
	h.Reset()
	h.Write([]byte("tap.layer.mac"))
	copy(mac[:], h.Sum(nil))
	return
}

// Seal encrypts plaintext under k with a nonce drawn from r and appends an
// authentication tag: output is nonce || AES-CTR(ciphertext) || tag.
//
// Seal derives k's schedule on every call; hot paths that reuse a key
// should hold a Sealer and call SealTo, which emits bit-identical output.
func Seal(k Key, r io.Reader, plaintext []byte) ([]byte, error) {
	out, err := NewSealer(k).SealTo(nil, r, plaintext)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Open authenticates and decrypts a blob produced by Seal with the same
// key. Like Seal, it derives the schedule per call; hot paths use
// Sealer.OpenTo or Sealer.OpenInPlace.
func Open(k Key, sealed []byte) ([]byte, error) {
	out, err := NewSealer(k).OpenTo(nil, sealed)
	if err != nil {
		return nil, err
	}
	return out, nil
}
