package crypt

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
)

// The paper assumes "a public key infrastructure on a P2P system ... each
// node has a pair of private and public keys" for the Onion-Routing
// bootstrap, and the anonymous file retrieval of §4 uses a temporary
// public key K_I to return the file key. Boxes implement both: an
// anonymous sealed box over X25519 — the sender generates an ephemeral
// keypair, derives a shared secret against the recipient's static public
// key, and seals with the symmetric layer cipher.

// BoxKeyPair is a node's long-lived (or, for K_I, temporary) asymmetric
// keypair.
type BoxKeyPair struct {
	priv *ecdh.PrivateKey
}

// BoxPublicKey is the shareable half of a BoxKeyPair.
type BoxPublicKey struct {
	pub *ecdh.PublicKey
}

// NewBoxKeyPair generates a keypair from r.
//
// The private scalar is read directly from r rather than via
// ecdh.GenerateKey: the standard library deliberately consumes a random
// extra byte there (randutil.MaybeReadByte), which would make key
// generation from a deterministic simulation stream irreproducible across
// runs. X25519 clamps the scalar during the ECDH operation, so raw bytes
// are a valid private key.
func NewBoxKeyPair(r io.Reader) (*BoxKeyPair, error) {
	var seed [32]byte
	if _, err := io.ReadFull(r, seed[:]); err != nil {
		return nil, fmt.Errorf("crypt: drawing box key seed: %w", err)
	}
	priv, err := ecdh.X25519().NewPrivateKey(seed[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: generating box keypair: %w", err)
	}
	return &BoxKeyPair{priv: priv}, nil
}

// Public returns the public half.
func (kp *BoxKeyPair) Public() BoxPublicKey {
	return BoxPublicKey{pub: kp.priv.PublicKey()}
}

// Bytes returns the encoded public key, for embedding in messages.
func (pk BoxPublicKey) Bytes() []byte { return pk.pub.Bytes() }

// ParseBoxPublicKey decodes a public key produced by Bytes.
func ParseBoxPublicKey(b []byte) (BoxPublicKey, error) {
	pub, err := ecdh.X25519().NewPublicKey(b)
	if err != nil {
		return BoxPublicKey{}, fmt.Errorf("crypt: parsing box public key: %w", err)
	}
	return BoxPublicKey{pub: pub}, nil
}

// boxKey derives the symmetric key for an (ephemeral, static) pair.
func boxKey(shared, ephPub []byte) Key {
	h := hmac.New(sha256.New, shared)
	h.Write([]byte("tap.box"))
	h.Write(ephPub)
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// BoxSeal encrypts plaintext to the recipient's public key so that only
// the holder of the private key can open it, without identifying the
// sender: output is ephemeralPub || Seal(derivedKey, plaintext).
func BoxSeal(recipient BoxPublicKey, r io.Reader, plaintext []byte) ([]byte, error) {
	ephPair, err := NewBoxKeyPair(r)
	if err != nil {
		return nil, fmt.Errorf("crypt: box ephemeral key: %w", err)
	}
	eph := ephPair.priv
	shared, err := eph.ECDH(recipient.pub)
	if err != nil {
		return nil, fmt.Errorf("crypt: box ECDH: %w", err)
	}
	ephPub := eph.PublicKey().Bytes()
	sealed, err := Seal(boxKey(shared, ephPub), r, plaintext)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(ephPub)+len(sealed))
	out = append(out, ephPub...)
	return append(out, sealed...), nil
}

// boxPubSize is the X25519 public key encoding length.
const boxPubSize = 32

// BoxOverhead is the ciphertext expansion of BoxSeal.
const BoxOverhead = boxPubSize + Overhead

// BoxOpen decrypts a blob produced by BoxSeal for this keypair.
func (kp *BoxKeyPair) BoxOpen(sealed []byte) ([]byte, error) {
	if len(sealed) < boxPubSize+Overhead {
		return nil, ErrTruncated
	}
	ephPub, err := ecdh.X25519().NewPublicKey(sealed[:boxPubSize])
	if err != nil {
		return nil, fmt.Errorf("crypt: box ephemeral public key: %w", err)
	}
	shared, err := kp.priv.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("crypt: box ECDH: %w", err)
	}
	return Open(boxKey(shared, sealed[:boxPubSize]), sealed[boxPubSize:])
}
