package crypt

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"io"
	"testing"

	"tap/internal/rng"
)

// referenceSeal is a frozen copy of the pre-Sealer Seal implementation,
// built directly on the standard library. The wire format promised to
// every deployed anchor is "whatever this function emits"; the tests
// below hold Seal, SealTo and SealInPlace to byte equality with it so
// the cached-schedule fast paths can never drift.
func referenceSeal(k Key, r io.Reader, plaintext []byte) ([]byte, error) {
	encKey, macKey := subkeys(k)
	out := make([]byte, nonceSize+len(plaintext)+tagSize)
	nonce := out[:nonceSize]
	if _, err := io.ReadFull(r, nonce); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, err
	}
	cipher.NewCTR(block, nonce).XORKeyStream(out[nonceSize:nonceSize+len(plaintext)], plaintext)
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(out[:nonceSize+len(plaintext)])
	copy(out[nonceSize+len(plaintext):], mac.Sum(nil)[:tagSize])
	return out, nil
}

// sealerSizes crosses the small-CTR limit and block boundaries.
var sealerSizes = []int{0, 1, 15, 16, 17, 100, smallCTRLimit - 1, smallCTRLimit, smallCTRLimit + 1, 4096, 250_000}

func TestSealMatchesReference(t *testing.T) {
	s := rng.New(20)
	k, _ := NewKey(s)
	for _, size := range sealerSizes {
		msg := make([]byte, size)
		s.Bytes(msg)
		seed := s.Uint64()
		want, err := referenceSeal(k, rng.New(seed), msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Seal(k, rng.New(seed), msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: Seal output differs from reference implementation", size)
		}
	}
}

func TestSealToMatchesSealAndOpens(t *testing.T) {
	s := rng.New(21)
	k, _ := NewKey(s)
	sl := NewSealer(k)
	buf := []byte("prefix:")
	for _, size := range sealerSizes {
		msg := make([]byte, size)
		s.Bytes(msg)
		seed := s.Uint64()
		want, err := Seal(k, rng.New(seed), msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sl.SealTo(buf, rng.New(seed), msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(buf)], buf) {
			t.Fatalf("size %d: SealTo clobbered the prefix", size)
		}
		if !bytes.Equal(got[len(buf):], want) {
			t.Fatalf("size %d: SealTo output differs from Seal", size)
		}
		// Old path opens new blobs…
		plain, err := Open(k, got[len(buf):])
		if err != nil || !bytes.Equal(plain, msg) {
			t.Fatalf("size %d: Open of SealTo blob: %v", size, err)
		}
		// …and the new paths open old blobs.
		plain2, err := sl.OpenTo(nil, want)
		if err != nil || !bytes.Equal(plain2, msg) {
			t.Fatalf("size %d: OpenTo of Seal blob: %v", size, err)
		}
		cp := append([]byte(nil), want...)
		plain3, err := sl.OpenInPlace(cp)
		if err != nil || !bytes.Equal(plain3, msg) {
			t.Fatalf("size %d: OpenInPlace of Seal blob: %v", size, err)
		}
		if size > 0 && &cp[nonceSize] != &plain3[0] {
			t.Fatalf("size %d: OpenInPlace result does not alias its input", size)
		}
	}
}

func TestSealInPlaceMatchesSeal(t *testing.T) {
	s := rng.New(22)
	k, _ := NewKey(s)
	sl := NewSealer(k)
	for _, size := range sealerSizes {
		msg := make([]byte, size)
		s.Bytes(msg)
		seed := s.Uint64()
		want, err := Seal(k, rng.New(seed), msg)
		if err != nil {
			t.Fatal(err)
		}
		// Full in-place: plaintext pre-placed in the interior.
		buf := make([]byte, size+Overhead)
		copy(buf[nonceSize:], msg)
		if err := sl.SealInPlace(buf, rng.New(seed)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("size %d: SealInPlace differs from Seal", size)
		}
		// Split at every interesting boundary: header in place, tail from
		// an external source.
		for _, split := range []int{0, 1, 7, 16, 33, size} {
			if split > size {
				continue
			}
			buf := make([]byte, size+Overhead)
			copy(buf[nonceSize:], msg[:split])
			if err := sl.SealInPlaceFrom(buf, rng.New(seed), split, msg[split:]); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("size %d split %d: SealInPlaceFrom differs from Seal", size, split)
			}
		}
	}
}

func TestSealInPlaceFromLayoutMismatch(t *testing.T) {
	s := rng.New(23)
	k, _ := NewKey(s)
	sl := NewSealer(k)
	if err := sl.SealInPlaceFrom(make([]byte, Overhead+4), s, 3, make([]byte, 3)); err == nil {
		t.Fatal("layout mismatch accepted")
	}
	if err := sl.SealInPlaceFrom(make([]byte, Overhead-1), s, 0, nil); err == nil {
		t.Fatal("undersized buffer accepted")
	}
}

func TestOpenInPlaceRejectsTamperUntouched(t *testing.T) {
	s := rng.New(24)
	k, _ := NewKey(s)
	sl := NewSealer(k)
	msg := make([]byte, 300)
	s.Bytes(msg)
	sealed, err := sl.SealTo(nil, s, msg)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), sealed...)
	mut[nonceSize+5] ^= 1
	before := append([]byte(nil), mut...)
	if _, err := sl.OpenInPlace(mut); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	if !bytes.Equal(mut, before) {
		t.Fatal("failed OpenInPlace modified its input")
	}
	if _, err := sl.OpenInPlace(make([]byte, Overhead-1)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestSealerRoundTripAcrossInstances(t *testing.T) {
	// Two Sealers for the same key interoperate (hop side vs owner side).
	s := rng.New(25)
	k, _ := NewKey(s)
	a, b := NewSealer(k), NewSealer(k)
	msg := []byte("between instances")
	sealed, err := a.SealTo(nil, s, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.OpenTo(nil, sealed)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("cross-instance open: %v", err)
	}
}

func TestSealerSteadyStateZeroAllocs(t *testing.T) {
	s := rng.New(26)
	k, _ := NewKey(s)
	sl := NewSealer(k)
	msg := make([]byte, 512) // the small-message regime: every TAP control message
	s.Bytes(msg)
	buf := make([]byte, 0, len(msg)+Overhead)
	if a := testing.AllocsPerRun(200, func() {
		out, err := sl.SealTo(buf[:0], s, msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sl.OpenInPlace(out); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("steady-state small seal+open: %.1f allocs/op, want 0", a)
	}

	// Above the limit the stdlib CTR stream costs one allocation per pass;
	// pin that bound so it cannot silently grow back toward the old ~20.
	big := make([]byte, 64*1024)
	s.Bytes(big)
	bigBuf := make([]byte, 0, len(big)+Overhead)
	if a := testing.AllocsPerRun(50, func() {
		out, err := sl.SealTo(bigBuf[:0], s, big)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sl.OpenInPlace(out); err != nil {
			t.Fatal(err)
		}
	}); a > 2 {
		t.Fatalf("steady-state large seal+open: %.1f allocs/op, want ≤ 2 (one CTR stream per pass)", a)
	}
}

func FuzzOpenTo(f *testing.F) {
	s := rng.New(27)
	k, _ := NewKey(s)
	valid, _ := Seal(k, s, []byte("fuzz seed payload"))
	f.Add(valid)
	f.Add(valid[:Overhead])
	f.Add([]byte{})
	tampered := append([]byte(nil), valid...)
	tampered[0] ^= 0xff
	f.Add(tampered)
	f.Fuzz(func(t *testing.T, data []byte) {
		sl := NewSealer(k)
		got, errNew := sl.OpenTo(nil, data)
		want, errOld := Open(k, data)
		if (errNew == nil) != (errOld == nil) {
			t.Fatalf("OpenTo err=%v but Open err=%v", errNew, errOld)
		}
		if errNew == nil && !bytes.Equal(got, want) {
			t.Fatal("OpenTo and Open disagree on plaintext")
		}
		cp := append([]byte(nil), data...)
		gotIP, errIP := sl.OpenInPlace(cp)
		if (errIP == nil) != (errOld == nil) {
			t.Fatalf("OpenInPlace err=%v but Open err=%v", errIP, errOld)
		}
		if errIP == nil && !bytes.Equal(gotIP, want) {
			t.Fatal("OpenInPlace and Open disagree on plaintext")
		}
	})
}

func BenchmarkSealerSeal1KiB(b *testing.B) {
	s := rng.New(28)
	k, _ := NewKey(s)
	sl := NewSealer(k)
	msg := make([]byte, 1024)
	buf := make([]byte, 0, len(msg)+Overhead)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sl.SealTo(buf[:0], s, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealerOpenInPlace1KiB(b *testing.B) {
	s := rng.New(29)
	k, _ := NewKey(s)
	sl := NewSealer(k)
	msg := make([]byte, 1024)
	sealed, err := sl.SealTo(nil, s, msg)
	if err != nil {
		b.Fatal(err)
	}
	scratch := make([]byte, len(sealed))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, sealed)
		if _, err := sl.OpenInPlace(scratch); err != nil {
			b.Fatal(err)
		}
	}
}
