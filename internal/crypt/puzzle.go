package crypt

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math/bits"
)

// §3.3 notes that malicious nodes could flood the system with random THAs
// to deny service, and that "the usual way of counteracting this type of
// attack is to charge the node ... a CPU-based payment system that forces
// the node to solve some puzzles before deploying a THA". Puzzle is that
// payment: a hashcash-style partial preimage. The minting node must find a
// nonce such that SHA-256(challenge || nonce) has at least Difficulty
// leading zero bits; verification is one hash.

// Puzzle describes the work demanded before a store accepts a THA.
type Puzzle struct {
	// Challenge binds the work to a specific deployment (typically the
	// hopid being deployed), so solutions cannot be stockpiled.
	Challenge []byte
	// Difficulty is the required number of leading zero bits. Zero
	// disables the charge.
	Difficulty int
}

// ErrPuzzleUnsolved reports a nonce that does not meet the difficulty.
var ErrPuzzleUnsolved = errors.New("crypt: puzzle solution does not meet difficulty")

// leadingZeroBits counts leading zero bits of a digest.
func leadingZeroBits(sum [sha256.Size]byte) int {
	n := 0
	for _, b := range sum {
		if b == 0 {
			n += 8
			continue
		}
		return n + bits.LeadingZeros8(b)
	}
	return n
}

// check evaluates one candidate nonce.
func (p Puzzle) check(nonce uint64) bool {
	if p.Difficulty <= 0 {
		return true
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], nonce)
	h := sha256.New()
	h.Write(p.Challenge)
	h.Write(buf[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return leadingZeroBits(sum) >= p.Difficulty
}

// Mint searches nonces from 0 upward and returns the first solution. Cost
// grows as 2^Difficulty hashes; experiments use small difficulties.
func (p Puzzle) Mint() uint64 {
	for nonce := uint64(0); ; nonce++ {
		if p.check(nonce) {
			return nonce
		}
	}
}

// Verify checks a claimed solution.
func (p Puzzle) Verify(nonce uint64) error {
	if !p.check(nonce) {
		return ErrPuzzleUnsolved
	}
	return nil
}
