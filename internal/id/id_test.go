package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("node-1"), []byte("hkey"), []byte("t0"))
	b := Hash([]byte("node-1"), []byte("hkey"), []byte("t0"))
	if a != b {
		t.Fatalf("Hash not deterministic: %s vs %s", a, b)
	}
	c := Hash([]byte("node-1"), []byte("hkey"), []byte("t1"))
	if a == c {
		t.Fatalf("distinct inputs collided: %s", a)
	}
}

func TestHashMatchesConcatenation(t *testing.T) {
	// Hash over parts must equal Hash over the concatenated bytes, since
	// the paper's H(node_ID, hkey, t) is a hash of the concatenation.
	a := Hash([]byte("ab"), []byte("cd"))
	b := Hash([]byte("abcd"))
	if a != b {
		t.Fatalf("part-wise hash %s != concatenated hash %s", a, b)
	}
}

func TestParseRoundTrip(t *testing.T) {
	want := Hash([]byte("x"))
	got, err := Parse(want.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", want.String(), err)
	}
	if got != want {
		t.Fatalf("round trip: got %s want %s", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{"", "ab", "zz" + MustParse("00000000000000000000" + "00000000000000000000").String()[2:]}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestFromUint64(t *testing.T) {
	v := FromUint64(0xdeadbeef)
	if v.Low64() != 0xdeadbeef {
		t.Fatalf("Low64 = %#x", v.Low64())
	}
	if v.High64() != 0 {
		t.Fatalf("High64 = %#x, want 0", v.High64())
	}
}

func TestCmp(t *testing.T) {
	a := FromUint64(1)
	b := FromUint64(2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatalf("Cmp ordering broken")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("Less inconsistent with Cmp")
	}
	if Zero.Cmp(Max) != -1 {
		t.Fatalf("Zero should compare below Max")
	}
}

func TestAddSubIdentities(t *testing.T) {
	a := Hash([]byte("a"))
	b := Hash([]byte("b"))
	if got := a.Add(Zero); got != a {
		t.Fatalf("a+0 = %s, want %s", got, a)
	}
	if got := a.Sub(a); got != Zero {
		t.Fatalf("a-a = %s, want zero", got)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("(a+b)-b = %s, want %s", got, a)
	}
}

func TestAddWraps(t *testing.T) {
	one := FromUint64(1)
	if got := Max.Add(one); got != Zero {
		t.Fatalf("Max+1 = %s, want zero (mod 2^160)", got)
	}
	if got := Zero.Sub(one); got != Max {
		t.Fatalf("0-1 = %s, want Max", got)
	}
}

func TestDistanceSymmetricAndWraps(t *testing.T) {
	a := FromUint64(10)
	b := FromUint64(3)
	if d := a.Distance(b); d != FromUint64(7) {
		t.Fatalf("Distance = %s, want 7", d)
	}
	if a.Distance(b) != b.Distance(a) {
		t.Fatalf("Distance not symmetric")
	}
	// Max and Zero are adjacent on the ring.
	if d := Max.Distance(Zero); d != FromUint64(1) {
		t.Fatalf("Distance(Max, 0) = %s, want 1", d)
	}
}

func TestCloserTieBreak(t *testing.T) {
	// 4 and 6 are equidistant from 5: the tie must break deterministically
	// toward the smaller id so ownership of a key is unique.
	target := FromUint64(5)
	if !Closer(target, FromUint64(4), FromUint64(6)) {
		t.Fatalf("tie should break toward smaller id")
	}
	if Closer(target, FromUint64(6), FromUint64(4)) {
		t.Fatalf("tie break must be asymmetric")
	}
}

func TestCommonPrefixBits(t *testing.T) {
	a := MustParse("ff00000000000000000000000000000000000000")
	b := MustParse("fe00000000000000000000000000000000000000")
	if got := a.CommonPrefixBits(b); got != 7 {
		t.Fatalf("CommonPrefixBits = %d, want 7", got)
	}
	if got := a.CommonPrefixBits(a); got != Bits {
		t.Fatalf("self prefix = %d, want %d", got, Bits)
	}
}

func TestDigitExtraction(t *testing.T) {
	a := MustParse("f102030405060708090a0b0c0d0e0f1011121314")
	if got := a.Digit(0, 4); got != 0xf {
		t.Fatalf("digit 0 base 16 = %#x, want 0xf", got)
	}
	if got := a.Digit(1, 4); got != 0x1 {
		t.Fatalf("digit 1 base 16 = %#x, want 0x1", got)
	}
	if got := a.Digit(3, 4); got != 0x2 {
		t.Fatalf("digit 3 base 16 = %#x, want 0x2", got)
	}
	if got := a.Digit(0, 8); got != 0xf1 {
		t.Fatalf("digit 0 base 256 = %#x, want 0xf1", got)
	}
	if got := a.Digit(0, 1); got != 1 {
		t.Fatalf("digit 0 base 2 = %d, want 1", got)
	}
}

func TestWithDigit(t *testing.T) {
	a := Zero
	b := a.WithDigit(3, 4, 0xc)
	if got := b.Digit(3, 4); got != 0xc {
		t.Fatalf("WithDigit readback = %#x, want 0xc", got)
	}
	// Other digits untouched.
	for i := 0; i < NumDigits(4); i++ {
		if i == 3 {
			continue
		}
		if b.Digit(i, 4) != 0 {
			t.Fatalf("digit %d disturbed", i)
		}
	}
}

func TestWithDigitPanicsOnRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-range digit")
		}
	}()
	Zero.WithDigit(0, 4, 16)
}

func TestNumDigits(t *testing.T) {
	if got := NumDigits(4); got != 40 {
		t.Fatalf("NumDigits(4) = %d, want 40", got)
	}
	if got := NumDigits(1); got != 160 {
		t.Fatalf("NumDigits(1) = %d, want 160", got)
	}
}

func TestCheckBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for base 3")
		}
	}()
	NumDigits(3)
}

func TestBetweenIncl(t *testing.T) {
	lo, hi := FromUint64(10), FromUint64(20)
	if !BetweenIncl(lo, hi, FromUint64(10)) || !BetweenIncl(lo, hi, FromUint64(20)) {
		t.Fatalf("endpoints must be included")
	}
	if !BetweenIncl(lo, hi, FromUint64(15)) {
		t.Fatalf("interior point excluded")
	}
	if BetweenIncl(lo, hi, FromUint64(25)) {
		t.Fatalf("exterior point included")
	}
	// Wrapped arc.
	if !BetweenIncl(hi, lo, FromUint64(25)) {
		t.Fatalf("wrapped arc should include 25")
	}
	if !BetweenIncl(hi, lo, FromUint64(5)) {
		t.Fatalf("wrapped arc should include 5")
	}
	if BetweenIncl(hi, lo, FromUint64(15)) {
		t.Fatalf("wrapped arc should exclude 15")
	}
}

func TestSortByDistance(t *testing.T) {
	target := FromUint64(100)
	ids := []ID{FromUint64(300), FromUint64(90), FromUint64(101), FromUint64(100)}
	SortByDistance(target, ids)
	want := []ID{FromUint64(100), FromUint64(101), FromUint64(90), FromUint64(300)}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestKClosestMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(10)
		target := FromUint64(rng.Uint64())
		cand := make([]ID, n)
		for i := range cand {
			cand[i] = FromUint64(rng.Uint64())
		}
		got := KClosest(target, cand, k)

		full := make([]ID, n)
		copy(full, cand)
		SortByDistance(target, full)
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(got), wantLen)
		}
		for i := 0; i < wantLen; i++ {
			if got[i] != full[i] {
				t.Fatalf("trial %d: got[%d] = %s, want %s", trial, i, got[i], full[i])
			}
		}
	}
}

func TestKClosestEdgeCases(t *testing.T) {
	if got := KClosest(Zero, nil, 3); got != nil {
		t.Fatalf("empty candidates should yield nil")
	}
	if got := KClosest(Zero, []ID{FromUint64(1)}, 0); got != nil {
		t.Fatalf("k=0 should yield nil")
	}
}

func TestClosest(t *testing.T) {
	target := FromUint64(50)
	cand := []ID{FromUint64(10), FromUint64(49), FromUint64(200)}
	if got := Closest(target, cand); got != FromUint64(49) {
		t.Fatalf("Closest = %s, want 49", got)
	}
}

func TestClosestPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Closest(Zero, nil)
}

func TestDedup(t *testing.T) {
	ids := []ID{FromUint64(3), FromUint64(1), FromUint64(3), FromUint64(2), FromUint64(1)}
	out := Dedup(ids)
	if len(out) != 3 {
		t.Fatalf("Dedup len = %d, want 3", len(out))
	}
	for i, want := range []uint64{1, 2, 3} {
		if out[i] != FromUint64(want) {
			t.Fatalf("out[%d] = %s", i, out[i])
		}
	}
}

func TestContains(t *testing.T) {
	ids := []ID{FromUint64(1), FromUint64(2)}
	if !Contains(ids, FromUint64(2)) || Contains(ids, FromUint64(3)) {
		t.Fatalf("Contains broken")
	}
}

// --- property-based tests -------------------------------------------------

func randomID(r *rand.Rand) ID {
	var out ID
	r.Read(out[:])
	return out
}

func TestPropAddCommutative(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := FromUint64(x), FromUint64(y)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubInverseOfAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b := randomID(rng), randomID(rng)
		if a.Add(b).Sub(b) != a {
			t.Fatalf("(a+b)-b != a for a=%s b=%s", a, b)
		}
	}
}

func TestPropDistanceMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	halfTop := MustParse("8000000000000000000000000000000000000000")
	for i := 0; i < 500; i++ {
		a, b := randomID(rng), randomID(rng)
		d := a.Distance(b)
		if d != b.Distance(a) {
			t.Fatalf("distance asymmetric")
		}
		if a == b && d != Zero {
			t.Fatalf("d(a,a) != 0")
		}
		// Ring distance can never exceed half the ring.
		if d.Cmp(halfTop) > 0 {
			t.Fatalf("distance %s exceeds half ring", d)
		}
	}
}

func TestPropDigitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 200; i++ {
		a := randomID(rng)
		for _, b := range []int{1, 2, 4, 8} {
			pos := rng.Intn(NumDigits(b))
			digit := rng.Intn(1 << b)
			got := a.WithDigit(pos, b, digit).Digit(pos, b)
			if got != digit {
				t.Fatalf("base 2^%d pos %d: wrote %d read %d", b, pos, digit, got)
			}
		}
	}
}

func TestPropCommonPrefixConsistentWithDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 200; i++ {
		a, b := randomID(rng), randomID(rng)
		for _, base := range []int{1, 2, 4, 8} {
			n := a.CommonPrefixDigits(b, base)
			for j := 0; j < n; j++ {
				if a.Digit(j, base) != b.Digit(j, base) {
					t.Fatalf("digit %d differs inside common prefix", j)
				}
			}
			if n < NumDigits(base) && a.Digit(n, base) == b.Digit(n, base) && a != b {
				// The digit right after the common prefix may only match if
				// the ids are equal.
				if a.CommonPrefixBits(b) >= (n+1)*base {
					t.Fatalf("prefix undercounted")
				}
			}
		}
	}
}

func TestPropXorSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 200; i++ {
		a, b := randomID(rng), randomID(rng)
		if a.Xor(b).Xor(b) != a {
			t.Fatalf("xor not self-inverse")
		}
	}
}
