package id

import (
	"math/rand"
	"testing"
)

func TestPrefixFloorCeil(t *testing.T) {
	a := MustParse("abcdef0123456789abcdef0123456789abcdef01")
	if got := a.PrefixFloor(8); got != MustParse("ab00000000000000000000000000000000000000") {
		t.Fatalf("PrefixFloor(8) = %s", got)
	}
	if got := a.PrefixCeil(8); got != MustParse("abffffffffffffffffffffffffffffffffffffff") {
		t.Fatalf("PrefixCeil(8) = %s", got)
	}
	if got := a.PrefixFloor(4); got != MustParse("a000000000000000000000000000000000000000") {
		t.Fatalf("PrefixFloor(4) = %s", got)
	}
	if got := a.PrefixCeil(4); got != MustParse("afffffffffffffffffffffffffffffffffffffff") {
		t.Fatalf("PrefixCeil(4) = %s", got)
	}
}

func TestPrefixClamps(t *testing.T) {
	a := Hash([]byte("x"))
	if a.PrefixFloor(0) != Zero || a.PrefixCeil(0) != Max {
		t.Fatalf("n=0 should span the whole ring")
	}
	if a.PrefixFloor(Bits) != a || a.PrefixCeil(Bits) != a {
		t.Fatalf("n=Bits should pin the exact id")
	}
	if a.PrefixFloor(Bits+10) != a || a.PrefixCeil(-3) != Max {
		t.Fatalf("out-of-range n not clamped")
	}
}

func TestPrefixFloorLeCeil(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := randomID(rng)
		n := rng.Intn(Bits + 1)
		lo, hi := a.PrefixFloor(n), a.PrefixCeil(n)
		if lo.Cmp(a) > 0 || a.Cmp(hi) > 0 {
			t.Fatalf("a=%s not within [floor,ceil] at n=%d", a, n)
		}
		if lo.CommonPrefixBits(a) < n && n <= Bits {
			t.Fatalf("floor does not share %d bits", n)
		}
		if hi.CommonPrefixBits(a) < n && n <= Bits {
			t.Fatalf("ceil does not share %d bits", n)
		}
	}
}

func TestDigitRange(t *testing.T) {
	a := MustParse("a000000000000000000000000000000000000000")
	lo, hi := a.DigitRange(1, 4, 0x7)
	if lo != MustParse("a700000000000000000000000000000000000000") {
		t.Fatalf("lo = %s", lo)
	}
	if hi != MustParse("a7ffffffffffffffffffffffffffffffffffffff") {
		t.Fatalf("hi = %s", hi)
	}
}

func TestDigitRangeMembership(t *testing.T) {
	// Any id inside [lo,hi] shares the first row digits with a and has
	// digit d at row — the defining property of a routing-table slot.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		a := randomID(rng)
		row := rng.Intn(10)
		d := rng.Intn(16)
		lo, hi := a.DigitRange(row, 4, d)
		// Sample a member by filling suffix bits randomly.
		m := lo
		for j := (row + 1) / 2; j < Size; j++ {
			m[j] = byte(rng.Intn(256))
		}
		m = m.PrefixFloor((row + 1) * 4).Add(m.Sub(m.PrefixFloor((row + 1) * 4)))
		if !BetweenIncl(lo, hi, m) {
			continue // construction above may overflow; skip rare cases
		}
		if m.CommonPrefixDigits(a, 4) < row {
			t.Fatalf("member %s shares fewer than %d digits with %s", m, row, a)
		}
		if m.Digit(row, 4) != d {
			t.Fatalf("member digit = %d, want %d", m.Digit(row, 4), d)
		}
	}
}
