package id

// PrefixFloor returns the smallest identifier sharing the first n bits
// with a: the first n bits are kept and the rest zeroed. n is clamped to
// [0, Bits].
func (a ID) PrefixFloor(n int) ID {
	if n <= 0 {
		return Zero
	}
	if n >= Bits {
		return a
	}
	var out ID
	full := n / 8
	copy(out[:full], a[:full])
	if rem := n % 8; rem != 0 {
		mask := byte(0xff) << (8 - rem)
		out[full] = a[full] & mask
	}
	return out
}

// PrefixCeil returns the largest identifier sharing the first n bits with
// a: the first n bits are kept and the rest set to one. n is clamped to
// [0, Bits].
func (a ID) PrefixCeil(n int) ID {
	if n <= 0 {
		return Max
	}
	if n >= Bits {
		return a
	}
	out := Max
	full := n / 8
	copy(out[:full], a[:full])
	if rem := n % 8; rem != 0 {
		mask := byte(0xff) << (8 - rem)
		out[full] = (a[full] & mask) | ^mask
	}
	return out
}

// DigitRange returns the bounds [lo, hi] of the aligned block of
// identifiers that share the first row base-2^b digits with a and have
// digit value d at position row. This is exactly the candidate set for the
// Pastry routing-table slot (row, d) of a node with id a.
func (a ID) DigitRange(row, b, d int) (lo, hi ID) {
	base := a.WithDigit(row, b, d)
	bits := (row + 1) * b
	return base.PrefixFloor(bits), base.PrefixCeil(bits)
}
