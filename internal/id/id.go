// Package id implements the 160-bit circular identifier space shared by
// nodes, keys, and tunnel hop anchors.
//
// TAP (Zhu & Hu, ICPP 2004) anchors every tunnel hop at a DHT key; the DHT
// is Pastry-style, so identifiers are fixed-width unsigned integers on a
// ring, compared numerically and grouped by base-2^b digit prefixes. The
// paper uses SHA-1 for identifier derivation, which fixes the width at 160
// bits; this package keeps that width and provides the arithmetic the rest
// of the system needs: ordering, ring distance, numeric closeness, digit
// extraction, and prefix comparison.
//
// An ID is a value type ([Size]byte, big-endian). All operations are pure
// and allocation-free unless documented otherwise.
package id

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Size is the identifier width in bytes (160 bits, the SHA-1 digest size).
const Size = 20

// Bits is the identifier width in bits.
const Bits = Size * 8

// ID is a 160-bit unsigned integer on the identifier ring, stored
// big-endian: ID[0] holds the most significant byte.
type ID [Size]byte

// Zero is the all-zero identifier.
var Zero ID

// Max is the all-ones identifier, the largest value on the ring.
var Max = ID{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// Hash derives an identifier by hashing the concatenation of the given
// byte slices with SHA-1, the derivation function the paper specifies for
// hopids (hopid = H(nodeID, hkey, t)).
func Hash(parts ...[]byte) ID {
	h := sha1.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out ID
	h.Sum(out[:0])
	return out
}

// HashString is Hash over the UTF-8 bytes of s, a convenience for naming
// files and nodes in examples and tests.
func HashString(s string) ID {
	return Hash([]byte(s))
}

// FromUint64 places v in the low-order 64 bits of an otherwise zero
// identifier. It is mainly useful in tests, where small ids keep failure
// messages readable.
func FromUint64(v uint64) ID {
	var out ID
	binary.BigEndian.PutUint64(out[Size-8:], v)
	return out
}

// Low64 returns the low-order 64 bits of the identifier.
func (a ID) Low64() uint64 {
	return binary.BigEndian.Uint64(a[Size-8:])
}

// High64 returns the high-order 64 bits of the identifier.
func (a ID) High64() uint64 {
	return binary.BigEndian.Uint64(a[:8])
}

// Parse decodes a 40-digit hexadecimal string.
func Parse(s string) (ID, error) {
	var out ID
	if len(s) != 2*Size {
		return out, fmt.Errorf("id: bad length %d, want %d hex digits", len(s), 2*Size)
	}
	if _, err := hex.Decode(out[:], []byte(s)); err != nil {
		return out, fmt.Errorf("id: %w", err)
	}
	return out, nil
}

// MustParse is Parse that panics on malformed input; for tests and
// constants.
func MustParse(s string) ID {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the identifier as 40 lowercase hex digits.
func (a ID) String() string {
	return hex.EncodeToString(a[:])
}

// Short renders the leading 8 hex digits, enough to tell ids apart in logs
// at the network sizes this repo simulates.
func (a ID) Short() string {
	return hex.EncodeToString(a[:4])
}

// IsZero reports whether a is the all-zero identifier.
func (a ID) IsZero() bool {
	return a == Zero
}

// Cmp compares a and b as 160-bit unsigned integers, returning -1, 0, or 1.
func (a ID) Cmp(b ID) int {
	// bytes.Compare lowers to an optimized memcmp; this backs every probe
	// of the overlay's binary searches.
	return bytes.Compare(a[:], b[:])
}

// Less reports a < b in plain (non-ring) unsigned order.
func (a ID) Less(b ID) bool {
	return a.Cmp(b) < 0
}

// Add returns a+b mod 2^160.
func (a ID) Add(b ID) ID {
	var out ID
	var carry uint16
	for i := Size - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns a-b mod 2^160.
func (a ID) Sub(b ID) ID {
	var out ID
	var borrow int16
	for i := Size - 1; i >= 0; i-- {
		d := int16(a[i]) - int16(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// Distance returns the circular distance between a and b: the minimum of
// walking the ring clockwise and counterclockwise. This is the metric the
// paper means by "numerically closest".
func (a ID) Distance(b ID) ID {
	d1 := a.Sub(b)
	d2 := b.Sub(a)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// Closer reports whether a is strictly closer to target than b is, with a
// deterministic tie-break on the smaller plain value so that "the
// numerically closest node" is always unique.
func Closer(target, a, b ID) bool {
	da := a.Distance(target)
	db := b.Distance(target)
	if c := da.Cmp(db); c != 0 {
		return c < 0
	}
	return a.Cmp(b) < 0
}

// CommonPrefixBits returns the number of leading bits a and b share.
func (a ID) CommonPrefixBits(b ID) int {
	for i := 0; i < Size; i++ {
		x := a[i] ^ b[i]
		if x != 0 {
			n := 0
			for x&0x80 == 0 {
				n++
				x <<= 1
			}
			return i*8 + n
		}
	}
	return Bits
}

// ErrBadBase signals a digit base outside the supported range.
var ErrBadBase = errors.New("id: digit base must divide 8 (1, 2, 4, or 8 bits)")

// checkBase panics unless b is a supported digit width. Pastry's parameter
// b is a configuration constant, so a bad value is a programming error,
// not a runtime condition.
func checkBase(b int) {
	switch b {
	case 1, 2, 4, 8:
	default:
		panic(ErrBadBase)
	}
}

// NumDigits returns the number of base-2^b digits in an identifier.
func NumDigits(b int) int {
	checkBase(b)
	return Bits / b
}

// Digit extracts the i-th base-2^b digit (0 = most significant).
func (a ID) Digit(i, b int) int {
	checkBase(b)
	bitOff := i * b
	byteOff := bitOff / 8
	shift := 8 - b - (bitOff % 8)
	return int(a[byteOff]>>shift) & ((1 << b) - 1)
}

// WithDigit returns a copy of a with the i-th base-2^b digit replaced.
func (a ID) WithDigit(i, b, digit int) ID {
	checkBase(b)
	if digit < 0 || digit >= 1<<b {
		panic(fmt.Sprintf("id: digit %d out of range for base 2^%d", digit, b))
	}
	bitOff := i * b
	byteOff := bitOff / 8
	shift := 8 - b - (bitOff % 8)
	mask := byte((1<<b)-1) << shift
	out := a
	out[byteOff] = (out[byteOff] &^ mask) | byte(digit<<shift)
	return out
}

// CommonPrefixDigits returns the number of leading base-2^b digits a and b
// share; the quantity Pastry routes on.
func (a ID) CommonPrefixDigits(b2 ID, b int) int {
	checkBase(b)
	return a.CommonPrefixBits(b2) / b
}

// BetweenIncl reports whether x lies on the clockwise arc from lo to hi,
// inclusive of both endpoints. When lo == hi the arc is the single point.
func BetweenIncl(lo, hi, x ID) bool {
	cl := lo.Cmp(hi)
	if cl <= 0 {
		return lo.Cmp(x) <= 0 && x.Cmp(hi) <= 0
	}
	// The arc wraps around zero.
	return lo.Cmp(x) <= 0 || x.Cmp(hi) <= 0
}

// Xor returns the bitwise exclusive-or of a and b. It is not a ring
// operation, but a convenient mixing primitive for derived seeds.
func (a ID) Xor(b ID) ID {
	var out ID
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}
