package id

import "sort"

// SortByDistance orders ids in place by increasing ring distance to target,
// breaking ties on the smaller plain value. The first element afterwards is
// the numerically closest id — the node that owns target in PAST terms.
func SortByDistance(target ID, ids []ID) {
	sort.Slice(ids, func(i, j int) bool {
		return Closer(target, ids[i], ids[j])
	})
}

// KClosest returns the k ids from candidates closest to target, in order of
// increasing distance. It copies its input and never returns more than
// len(candidates) elements. For small k it uses a selection pass instead of
// a full sort, since replica-set computation is on the hot path of every
// experiment trial.
func KClosest(target ID, candidates []ID, k int) []ID {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	if k >= len(candidates) {
		out := make([]ID, len(candidates))
		copy(out, candidates)
		SortByDistance(target, out)
		return out
	}
	// Maintain the best k seen so far in a small insertion-sorted buffer.
	out := make([]ID, 0, k)
	for _, c := range candidates {
		if len(out) < k {
			out = append(out, c)
			for i := len(out) - 1; i > 0 && Closer(target, out[i], out[i-1]); i-- {
				out[i], out[i-1] = out[i-1], out[i]
			}
			continue
		}
		if !Closer(target, c, out[k-1]) {
			continue
		}
		out[k-1] = c
		for i := k - 1; i > 0 && Closer(target, out[i], out[i-1]); i-- {
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	return out
}

// Closest returns the single id from candidates nearest to target. It
// panics on an empty candidate set: every caller routes within a non-empty
// overlay, so an empty set is a bug.
func Closest(target ID, candidates []ID) ID {
	if len(candidates) == 0 {
		panic("id: Closest on empty candidate set")
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if Closer(target, c, best) {
			best = c
		}
	}
	return best
}

// Sort orders ids in place in plain ascending unsigned order.
func Sort(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
}

// Contains reports whether ids contains x.
func Contains(ids []ID, x ID) bool {
	for _, v := range ids {
		if v == x {
			return true
		}
	}
	return false
}

// Dedup sorts ids and removes duplicates in place, returning the shortened
// slice.
func Dedup(ids []ID) []ID {
	if len(ids) < 2 {
		return ids
	}
	Sort(ids)
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
