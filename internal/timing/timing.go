// Package timing implements the end-to-end timing-correlation attack the
// paper's §6 discusses as its case 2: "colluding entry and exit mixes can
// use timing analysis to disclose both source and destination", tempered
// by "the network connection heterogeneity of P2P networks complicates
// the task of timing analysis attacks."
//
// The adversary wiretaps the nodes it controls, recording three kinds of
// node-local observations:
//
//   - envelope receptions: a controlled node serving a tunnel hop saw a
//     layered message arrive at time t from predecessor X;
//   - envelope relays: a controlled node (hop or plain router) passed a
//     tunnel envelope along, and knows where it came from;
//   - exits: a controlled tail hop decrypted {D, m} at time t — the tail
//     always knows it is the tail.
//
// The attack matches each observed exit against entry candidates in the
// preceding time window, *chain-tracing* each candidate backward through
// the collusion's own relay records: if the predecessor is controlled and
// relayed the message, step to where it got it from, and so on until the
// chain leaves the collusion. The node the chain ends at is the claimed
// source. A match is confident only when all candidates in the window
// agree on one source; concurrent tunnel traffic creates disagreement,
// which is exactly why timing attacks weaken as the system carries more
// flows.
//
// Observations carry the simulator's flow id for ground-truth scoring
// ONLY: the correlator never reads it when matching — it is consulted
// exclusively to judge whether a produced match was correct.
package timing

import (
	"sort"
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
)

// Obs is one node-local observation.
type Obs struct {
	At   simnet.Addr
	Now  simnet.Time
	From simnet.Addr // envelope receptions: the network-level predecessor
	Dest id.ID       // exits: the revealed destination

	// flow is ground truth for evaluation; matching must not read it.
	flow uint64
}

// relayRec is a controlled node's memory of relaying one envelope.
type relayRec struct {
	now  simnet.Time
	from simnet.Addr
}

// Observer is the adversary's wiretap, installed as a core.NetTap. Only
// events at controlled nodes are recorded.
type Observer struct {
	IsMalicious func(simnet.Addr) bool

	receptions []Obs
	exits      []Obs
	relays     map[simnet.Addr][]relayRec
}

// NewObserver creates a wiretap over the nodes selected by isMalicious.
func NewObserver(isMalicious func(simnet.Addr) bool) *Observer {
	return &Observer{
		IsMalicious: isMalicious,
		relays:      make(map[simnet.Addr][]relayRec),
	}
}

// EnvelopeReceived implements core.NetTap.
func (o *Observer) EnvelopeReceived(at simnet.Addr, now simnet.Time, from simnet.Addr, flow uint64) {
	if !o.IsMalicious(at) {
		return
	}
	o.receptions = append(o.receptions, Obs{At: at, Now: now, From: from, flow: flow})
}

// EnvelopeForwarded implements core.NetTap.
func (o *Observer) EnvelopeForwarded(at simnet.Addr, now simnet.Time, from simnet.Addr) {
	if !o.IsMalicious(at) {
		return
	}
	o.relays[at] = append(o.relays[at], relayRec{now: now, from: from})
}

// ExitObserved implements core.NetTap.
func (o *Observer) ExitObserved(at simnet.Addr, now simnet.Time, flow uint64, dest id.ID) {
	if !o.IsMalicious(at) {
		return
	}
	o.exits = append(o.exits, Obs{At: at, Now: now, Dest: dest, flow: flow})
}

// Receptions and Exits return observation counts.
func (o *Observer) Receptions() int { return len(o.receptions) }
func (o *Observer) Exits() int      { return len(o.exits) }

// traceBack follows the collusion's own relay records backward from
// (node, before): while the node is controlled and relayed an envelope
// just prior, step to that envelope's origin. It returns the first node
// the chain cannot explain — the claimed source. maxStep bounds the gap
// accepted between chain links.
func (o *Observer) traceBack(node simnet.Addr, before simnet.Time, maxStep time.Duration) simnet.Addr {
	const maxChain = 128 // a routing loop would otherwise spin forever
	for i := 0; i < maxChain; i++ {
		if !o.IsMalicious(node) {
			return node
		}
		recs := o.relays[node]
		// Latest relay strictly before `before` and within maxStep.
		j := sort.Search(len(recs), func(k int) bool { return recs[k].now >= before })
		if j == 0 {
			return node
		}
		rec := recs[j-1]
		if before-rec.now > simnet.Time(maxStep) {
			return node
		}
		node, before = rec.from, rec.now
	}
	return node
}

// Match is one correlation the adversary commits to: "the flow exiting
// here entered the network at `Source`."
type Match struct {
	Exit      Obs
	Entry     Obs
	Source    simnet.Addr
	Ambiguous bool // candidates disagreed on the source
}

// Correlate runs the window attack for each observed exit.
func (o *Observer) Correlate(window time.Duration) []Match {
	recs := append([]Obs(nil), o.receptions...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Now < recs[j].Now })
	var out []Match
	for _, ex := range o.exits {
		lo := ex.Now - simnet.Time(window)
		i := sort.Search(len(recs), func(k int) bool { return recs[k].Now > lo })
		type cand struct {
			obs    Obs
			source simnet.Addr
		}
		var cands []cand
		for ; i < len(recs) && recs[i].Now <= ex.Now; i++ {
			src := o.traceBack(recs[i].From, recs[i].Now, window)
			cands = append(cands, cand{obs: recs[i], source: src})
		}
		if len(cands) == 0 {
			continue
		}
		sources := map[simnet.Addr]struct{}{}
		for _, c := range cands {
			sources[c.source] = struct{}{}
		}
		out = append(out, Match{
			Exit:      ex,
			Entry:     cands[0].obs,
			Source:    cands[0].source,
			Ambiguous: len(sources) > 1,
		})
	}
	return out
}

// Score evaluates matches against ground truth.
type Score struct {
	Exits     int // exits the adversary observed (attack opportunities)
	Committed int // matches produced
	Confident int // matches not flagged ambiguous
	Correct   int // confident matches naming the true initiator of the exit's flow
	FalseHits int // confident matches that were wrong

	// GuessCorrect counts matches (ambiguous or not) whose earliest-
	// candidate attribution named the true initiator: the adversary's
	// best-effort success rate when it commits despite ambiguity.
	GuessCorrect int
}

// Evaluate scores matches; trueSource maps flow id → initiator address.
func Evaluate(obs *Observer, matches []Match, trueSource map[uint64]simnet.Addr) Score {
	s := Score{Exits: obs.Exits(), Committed: len(matches)}
	for _, m := range matches {
		if trueSource[m.Exit.flow] == m.Source {
			s.GuessCorrect++
		}
		if m.Ambiguous {
			continue
		}
		s.Confident++
		if trueSource[m.Exit.flow] == m.Source {
			s.Correct++
		} else {
			s.FalseHits++
		}
	}
	return s
}
