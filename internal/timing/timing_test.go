package timing

import (
	"testing"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
)

type sys struct {
	ov     *pastry.Overlay
	dir    *tha.Directory
	svc    *core.Service
	kernel *simnet.Kernel
	net    *simnet.Network
	eng    *core.NetEngine
	root   *rng.Stream
}

func newSys(t testing.TB, n int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, 3)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))
	kernel := simnet.NewKernel()
	kernel.MaxSteps = 10_000_000
	net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(seed), ov.NumAddrs())
	svc.Net = net
	eng := core.NewNetEngine(svc, net)
	return &sys{ov: ov, dir: dir, svc: svc, kernel: kernel, net: net, eng: eng, root: root}
}

// launch starts one tunnel flow at simulated time `at`, returning the
// initiator address by flow bookkeeping.
func (s *sys) launch(t testing.TB, label string, at simnet.Time, l int, trueSource map[uint64]simnet.Addr, flowCounter *uint64) {
	t.Helper()
	s.kernel.At(at, func() {
		node := s.ov.RandomLive(s.root.Split("pick-" + label))
		in, err := core.NewInitiator(s.svc, node, s.root.Split("init-"+label))
		if err != nil {
			t.Error(err)
			return
		}
		if err := in.DeployDirect(l); err != nil {
			t.Error(err)
			return
		}
		tun, err := in.FormTunnel(l)
		if err != nil {
			t.Error(err)
			return
		}
		var dest id.ID
		s.root.Split("dest-" + label).Bytes(dest[:])
		env, err := core.BuildForward(tun, nil, dest, make([]byte, 2000), s.root.Split("b-"+label))
		if err != nil {
			t.Error(err)
			return
		}
		flow := s.eng.SendForward(node.Ref().Addr, env, nil)
		trueSource[flow] = node.Ref().Addr
		*flowCounter = flow
	})
}

func TestSingleFlowFullyObservedIsCorrelated(t *testing.T) {
	// Adversary controls every node: it sees the entry and the exit of
	// the only flow in the system, and timing nails it.
	s := newSys(t, 200, 1)
	obs := NewObserver(func(simnet.Addr) bool { return true })
	s.eng.Tap = obs
	trueSource := map[uint64]simnet.Addr{}
	var flows uint64
	s.launch(t, "a", 0, 3, trueSource, &flows)
	if err := s.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.Exits() != 1 {
		t.Fatalf("exits observed: %d", obs.Exits())
	}
	matches := obs.Correlate(time.Minute)
	score := Evaluate(obs, matches, trueSource)
	if score.Confident != 1 || score.Correct != 1 {
		t.Fatalf("lone fully-observed flow not correlated: %+v", score)
	}
}

func TestNoObservationsNoMatches(t *testing.T) {
	s := newSys(t, 150, 2)
	obs := NewObserver(func(simnet.Addr) bool { return false })
	s.eng.Tap = obs
	trueSource := map[uint64]simnet.Addr{}
	var flows uint64
	s.launch(t, "a", 0, 3, trueSource, &flows)
	if err := s.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.Receptions() != 0 || obs.Exits() != 0 {
		t.Fatalf("benign wiretap recorded something")
	}
	if got := obs.Correlate(time.Minute); len(got) != 0 {
		t.Fatalf("matches without observations")
	}
}

func TestConcurrencyCreatesAmbiguity(t *testing.T) {
	// Ten flows launched within one window: the all-seeing adversary's
	// matches must be flagged ambiguous (distinct predecessors in every
	// window), driving confident correlations down.
	s := newSys(t, 300, 3)
	obs := NewObserver(func(simnet.Addr) bool { return true })
	s.eng.Tap = obs
	trueSource := map[uint64]simnet.Addr{}
	var flows uint64
	for i := 0; i < 10; i++ {
		s.launch(t, string(rune('a'+i)), simnet.Time(i)*simnet.Time(50*time.Millisecond), 3, trueSource, &flows)
	}
	if err := s.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	matches := obs.Correlate(10 * time.Second)
	score := Evaluate(obs, matches, trueSource)
	if score.Exits != 10 {
		t.Fatalf("exits %d", score.Exits)
	}
	if score.Confident > 2 {
		t.Fatalf("heavy concurrency left %d confident matches (want ≈0)", score.Confident)
	}
}

func TestIsolatedFlowsStayVulnerable(t *testing.T) {
	// The same ten flows spaced far apart: every window holds one flow,
	// so the all-seeing adversary correlates them all — timing analysis
	// is strong exactly when traffic is sparse.
	s := newSys(t, 300, 4)
	obs := NewObserver(func(simnet.Addr) bool { return true })
	s.eng.Tap = obs
	trueSource := map[uint64]simnet.Addr{}
	var flows uint64
	for i := 0; i < 10; i++ {
		s.launch(t, string(rune('a'+i)), simnet.Time(i)*simnet.Time(2*time.Minute), 3, trueSource, &flows)
	}
	if err := s.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	matches := obs.Correlate(time.Minute)
	score := Evaluate(obs, matches, trueSource)
	if score.Correct < 8 {
		t.Fatalf("sparse traffic should correlate: %+v", score)
	}
	if score.FalseHits > score.Correct/4 {
		t.Fatalf("too many false hits: %+v", score)
	}
}

func TestPartialCollusionSeesFewerExits(t *testing.T) {
	// A 10% adversary observes roughly 10% of tails; its opportunities
	// shrink accordingly.
	s := newSys(t, 400, 5)
	mal := map[simnet.Addr]struct{}{}
	stream := s.root.Split("mark")
	refs := s.ov.LiveRefs()
	for _, idx := range stream.PermFirstK(len(refs), len(refs)/10) {
		mal[refs[idx].Addr] = struct{}{}
	}
	obs := NewObserver(func(a simnet.Addr) bool { _, bad := mal[a]; return bad })
	s.eng.Tap = obs
	trueSource := map[uint64]simnet.Addr{}
	var flows uint64
	const total = 30
	for i := 0; i < total; i++ {
		s.launch(t, string(rune('a'+i)), simnet.Time(i)*simnet.Time(90*time.Second), 3, trueSource, &flows)
	}
	if err := s.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.Exits() > total/2 {
		t.Fatalf("10%% adversary observed %d/%d exits", obs.Exits(), total)
	}
	// Whatever it does correlate must still be scored honestly.
	score := Evaluate(obs, obs.Correlate(time.Minute), trueSource)
	if score.Correct+score.FalseHits != score.Confident {
		t.Fatalf("score bookkeeping broken: %+v", score)
	}
}
