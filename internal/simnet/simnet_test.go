package simnet

import (
	"testing"
	"time"
)

func TestKernelOrdersByTime(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	k.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	k.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Schedule(time.Millisecond, func() {
		k.Schedule(2*time.Millisecond, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Millisecond {
		t.Fatalf("nested event ran at %v, want 3ms", at)
	}
}

func TestKernelZeroDelayPreservesCausalOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Schedule(0, func() {
		order = append(order, "a")
		k.Schedule(0, func() { order = append(order, "c") })
	})
	k.Schedule(0, func() { order = append(order, "b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestKernelPanicsOnPastScheduling(t *testing.T) {
	k := NewKernel()
	k.Schedule(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic scheduling into the past")
			}
		}()
		k.At(5*time.Millisecond, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelMaxSteps(t *testing.T) {
	k := NewKernel()
	k.MaxSteps = 100
	var loop func()
	loop = func() { k.Schedule(time.Microsecond, loop) }
	k.Schedule(0, loop)
	if err := k.Run(); err == nil {
		t.Fatalf("expected MaxSteps error")
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Schedule(10*time.Millisecond, func() { ran++ })
	k.Schedule(30*time.Millisecond, func() { ran++ })
	if err := k.RunUntil(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events before deadline, want 1", ran)
	}
	if k.Now() != 20*time.Millisecond {
		t.Fatalf("clock should advance to the deadline, got %v", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("resume did not run remaining event")
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Schedule(time.Millisecond, func() { ran++; k.Stop() })
	k.Schedule(2*time.Millisecond, func() { ran++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop")
	}
}

type testMsg struct{ size int }

func (m testMsg) SizeBytes() int { return m.size }

func TestLinkModelLatencyBoundsAndSymmetry(t *testing.T) {
	m := DefaultLinkModel(42)
	for a := Addr(0); a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			l := m.Latency(a, b)
			if l < time.Millisecond || l > 230*time.Millisecond {
				t.Fatalf("latency(%d,%d) = %v out of bounds", a, b, l)
			}
			if l != m.Latency(b, a) {
				t.Fatalf("latency not symmetric for (%d,%d)", a, b)
			}
		}
	}
	if m.Latency(3, 3) != 0 {
		t.Fatalf("self latency should be zero")
	}
}

func TestLinkModelSerialization(t *testing.T) {
	m := DefaultLinkModel(1)
	// 2 Mb = 250,000 bytes at 1.5 Mb/s should take 2/1.5 s = 1.333... s.
	got := m.Serialization(250000)
	want := time.Duration(int64(2_000_000) * int64(time.Second) / 1_500_000)
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("serialization of 2Mb = %v, want ~%v", got, want)
	}
	if m.Serialization(0) != 0 {
		t.Fatalf("zero size should serialize instantly")
	}
	off := m
	off.BandwidthBitsPerSec = 0
	if off.Serialization(1000) != 0 {
		t.Fatalf("disabled bandwidth should mean zero serialization")
	}
}

func TestNetworkDelivery(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(7), 4)
	var got Message
	var from Addr
	var at Time
	net.Attach(1, HandlerFunc(func(f Addr, m Message) {
		got, from, at = m, f, k.Now()
	}))
	net.Attach(0, HandlerFunc(func(_ Addr, _ Message) {}))
	msg := testMsg{size: 1000}
	net.Send(0, 1, msg)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != msg || from != 0 {
		t.Fatalf("delivery mismatch: %v from %d", got, from)
	}
	want := net.Link.HopDelay(0, 1, 1000)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if net.Stats.MessagesDelivered != 1 || net.Stats.MessagesSent != 1 {
		t.Fatalf("stats %+v", net.Stats)
	}
}

func TestNetworkDropsToDetached(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(7), 4)
	net.Attach(0, HandlerFunc(func(_ Addr, _ Message) {}))
	dropped := 0
	net.DropHook = func(_, to Addr, _ Message) {
		if to != 2 {
			t.Errorf("dropped toward %d, want 2", to)
		}
		dropped++
	}
	net.Send(0, 2, testMsg{size: 10})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || net.Stats.MessagesDropped != 1 {
		t.Fatalf("drop not recorded: hook=%d stats=%+v", dropped, net.Stats)
	}
}

func TestNetworkDetachMidFlight(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(7), 4)
	net.Attach(0, HandlerFunc(func(_ Addr, _ Message) {}))
	delivered := false
	net.Attach(1, HandlerFunc(func(_ Addr, _ Message) { delivered = true }))
	net.Send(0, 1, testMsg{size: 10})
	// Detach before the message arrives.
	k.Schedule(0, func() { net.Detach(1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatalf("message delivered to node that died before arrival")
	}
	if net.Stats.MessagesDropped != 1 {
		t.Fatalf("expected one drop, got %+v", net.Stats)
	}
}

func TestNetworkRelayChainTiming(t *testing.T) {
	// Three hops: total time must be the sum of per-hop store-and-forward
	// delays — the quantity Figure 6 measures.
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(9), 4)
	const size = 250000
	var done Time
	net.Attach(0, HandlerFunc(func(_ Addr, _ Message) {}))
	net.Attach(1, HandlerFunc(func(_ Addr, m Message) { net.Send(1, 2, m) }))
	net.Attach(2, HandlerFunc(func(_ Addr, m Message) { net.Send(2, 3, m) }))
	net.Attach(3, HandlerFunc(func(_ Addr, _ Message) { done = k.Now() }))
	net.Send(0, 1, testMsg{size: size})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := net.Link.HopDelay(0, 1, size) + net.Link.HopDelay(1, 2, size) + net.Link.HopDelay(2, 3, size)
	if done != want {
		t.Fatalf("chain delivered at %v, want %v", done, want)
	}
}

func TestNetworkGrowAndReattach(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(7), 1)
	net.Grow(3)
	if net.Attached(2) {
		t.Fatalf("grown address should start detached")
	}
	net.Attach(2, HandlerFunc(func(_ Addr, _ Message) {}))
	if !net.Attached(2) {
		t.Fatalf("attach after grow failed")
	}
	net.Detach(2)
	// Re-attaching a detached address models a rejoining node.
	net.Attach(2, HandlerFunc(func(_ Addr, _ Message) {}))
	if !net.Attached(2) {
		t.Fatalf("re-attach failed")
	}
}

func TestNetworkAttachTwicePanics(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(7), 2)
	net.Attach(0, HandlerFunc(func(_ Addr, _ Message) {}))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on double attach")
		}
	}()
	net.Attach(0, HandlerFunc(func(_ Addr, _ Message) {}))
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Time, Stats) {
		k := NewKernel()
		net := NewNetwork(k, DefaultLinkModel(99), 10)
		var last Time
		for a := Addr(0); a < 10; a++ {
			a := a
			net.Attach(a, HandlerFunc(func(_ Addr, m Message) {
				last = k.Now()
				if a+1 < 10 {
					net.Send(a, a+1, m)
				}
			}))
		}
		net.Send(0, 1, testMsg{size: 5000})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return last, net.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("replay diverged: %v/%+v vs %v/%+v", t1, s1, t2, s2)
	}
}
