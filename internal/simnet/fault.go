package simnet

import (
	"time"

	"tap/internal/rng"
)

// FaultPlan describes the adverse conditions a simulation runs under:
// probabilistic per-message link loss, latency spikes, scheduled node
// crash/restart windows, and network partitions. A plan is installed once
// with Network.InstallFaults and applied inside Network.Send, so every
// experiment can run under identical, reproducible faults without bespoke
// harness code. All randomness derives from Seed and is drawn in event
// order on the single-threaded kernel, so the same plan over the same
// workload yields bit-identical schedules.
//
// The plan is JSON-clean (the notification hooks are excluded), so fault
// schedules can be stored alongside scenario artifacts and replayed.
type FaultPlan struct {
	// Seed roots the fault stream (loss and spike draws).
	Seed uint64 `json:"seed"`

	// LossRate is the probability that any one transmission is lost in
	// transit: the bits leave the sender's uplink but never arrive.
	// Local (self-addressed) deliveries are exempt — they never cross a
	// link.
	LossRate float64 `json:"lossRate,omitempty"`

	// SpikeRate is the probability a transmission suffers an additional
	// latency spike, drawn uniformly from [SpikeMin, SpikeMax] — a
	// transient congestion event on top of the link model's stable
	// pairwise latency.
	SpikeRate float64       `json:"spikeRate,omitempty"`
	SpikeMin  time.Duration `json:"spikeMin,omitempty"`
	SpikeMax  time.Duration `json:"spikeMax,omitempty"`

	// Crashes schedules node down-windows. While down, a node transmits
	// nothing and everything addressed to it is dropped on arrival, but
	// its handler stays attached: when the window ends the address is
	// reachable again (possibly as a "zombie" whose overlay node is
	// dead — exactly the stale-hint hazard the reliability layer must
	// survive).
	Crashes []CrashWindow `json:"crashes,omitempty"`

	// Partitions schedules network partitions: windows during which a set
	// of member addresses is cut off from the rest of the network (see
	// PartitionWindow for symmetric vs asymmetric semantics).
	Partitions []PartitionWindow `json:"partitions,omitempty"`

	// OnCrash and OnRestart, when non-nil, notify higher layers at window
	// edges — e.g. an experiment fails the overlay node so THA replicas
	// migrate (the paper's anchor failover), or rejoins a fresh node.
	// Observers that only need the down/up signal should prefer
	// Network.WatchAddrs, which also sees Detach.
	OnCrash   func(Addr) `json:"-"`
	OnRestart func(Addr) `json:"-"`
}

// CrashWindow is one scheduled outage: the node at Addr is down from At
// until Restart. Restart <= At means the node never comes back.
type CrashWindow struct {
	Addr    Addr `json:"addr"`
	At      Time `json:"at"`
	Restart Time `json:"restart,omitempty"`
}

// PartitionWindow is one scheduled partition: from At until Heal the
// member set is separated from the rest of the network. Messages between
// two members, or between two non-members, flow normally.
//
// Symmetric (Asym false): any transmission crossing the boundary — in
// either direction — is lost, modeling a clean network split.
//
// Asymmetric (Asym true): only traffic INTO the member set is lost;
// members can still transmit outward. This models one-way link failure
// (e.g. a broken return path), where a member's sends arrive but every
// reply, ACK, and probe echo addressed back to it vanishes.
//
// Heal <= At means the partition never heals.
type PartitionWindow struct {
	Members []Addr `json:"members"`
	At      Time   `json:"at"`
	Heal    Time   `json:"heal,omitempty"`
	Asym    bool   `json:"asym,omitempty"`
}

// faultState is the installed plan plus its runtime state.
type faultState struct {
	plan   *FaultPlan
	stream *rng.Stream
	down   map[Addr]bool
}

// InstallFaults installs plan on the network and schedules its crash and
// partition windows on the kernel. Call it before running the kernel
// (window starts must not be in the past). A nil plan clears fault
// injection (but leaves any manually started partitions in place).
func (n *Network) InstallFaults(plan *FaultPlan) {
	if plan == nil {
		n.faults = nil
		return
	}
	fs := &faultState{
		plan:   plan,
		stream: rng.New(plan.Seed),
		down:   make(map[Addr]bool),
	}
	n.faults = fs
	for _, w := range plan.Crashes {
		w := w
		n.Kernel.At(w.At, func() {
			fs.down[w.Addr] = true
			if plan.OnCrash != nil {
				plan.OnCrash(w.Addr)
			}
			n.notifyAddr(w.Addr, false)
		})
		if w.Restart > w.At {
			n.Kernel.At(w.Restart, func() {
				delete(fs.down, w.Addr)
				if plan.OnRestart != nil {
					plan.OnRestart(w.Addr)
				}
				n.notifyAddr(w.Addr, true)
			})
		}
	}
	for _, w := range plan.Partitions {
		w := w
		n.Kernel.At(w.At, func() {
			id := n.StartPartition(w.Members, w.Asym)
			if w.Heal > w.At {
				n.Kernel.At(w.Heal, func() { n.HealPartition(id) })
			}
		})
	}
}

// Down reports whether addr is inside a crash window right now.
func (n *Network) Down(addr Addr) bool {
	return n.faults != nil && n.faults.down[addr]
}

// Reachable reports whether a connection attempt to addr would succeed:
// the address has a live handler and is not inside a crash window. This is
// what a sender dialing a cached address hint can observe (the connection
// is refused or times out); it says nothing about whether the node behind
// it still serves any particular role.
func (n *Network) Reachable(addr Addr) bool {
	return n.Attached(addr) && !n.Down(addr)
}

// applyFaults runs the send-side fault draws for one transmission and
// reports whether the message survives, along with any extra delay.
// Self-addressed messages never cross a link and are exempt from loss and
// spikes (a crashed source is handled by the caller).
func (fs *faultState) applyFaults(stats *Stats, src, dst Addr) (extra Time, lost bool) {
	if src == dst {
		return 0, false
	}
	p := fs.plan
	if p.LossRate > 0 && fs.stream.Bool(p.LossRate) {
		stats.MessagesLost++
		return 0, true
	}
	if p.SpikeRate > 0 && fs.stream.Bool(p.SpikeRate) {
		lo := int(p.SpikeMin / time.Millisecond)
		hi := int(p.SpikeMax / time.Millisecond)
		if hi < lo {
			hi = lo
		}
		stats.LatencySpikes++
		return Time(fs.stream.DurationRangeMs(lo, hi)) * Time(time.Millisecond), false
	}
	return 0, false
}
