// Package simnet is the deterministic discrete-event network emulator the
// experiments run on.
//
// The paper evaluates TAP "on a network emulation environment, through
// which the instances of the node software communicate", with every peer in
// a single process, per-link latencies drawn uniformly from 1–230 ms, and
// 1.5 Mb/s links. This package reproduces that substrate: a single-threaded
// event loop with a simulated clock (so a 10,000-node, multi-second
// experiment runs in milliseconds of wall time and is bit-for-bit
// reproducible), plus a link model with pairwise latency and
// store-and-forward serialization delay.
//
// The kernel is deliberately not concurrent: determinism is worth more to a
// simulation than parallelism within one trial. Experiments parallelize
// across trials instead (see internal/experiments).
package simnet

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant on the simulated clock, expressed as the duration
// since the start of the simulation.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
}

// eventQueue is a binary min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is the discrete-event scheduler. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	steps   uint64
	// MaxSteps guards against runaway simulations (a routing loop would
	// otherwise spin the event loop forever). Zero means no limit.
	MaxSteps uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Schedule runs fn after delay of simulated time. A negative delay is a
// programming error and panics; zero schedules for "immediately after the
// current event", preserving causal order.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", delay))
	}
	k.At(k.now+delay, fn)
}

// At runs fn at the absolute simulated instant t, which must not be in the
// past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("simnet: scheduling into the past (%v < %v)", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// Stop makes Run return after the current event completes. Pending events
// stay queued; a subsequent Run resumes them.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or MaxSteps is exceeded (in which case it returns an error
// identifying the overrun — almost always a routing loop).
func (k *Kernel) Run() error {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		e := heap.Pop(&k.queue).(*event)
		k.now = e.at
		k.steps++
		if k.MaxSteps > 0 && k.steps > k.MaxSteps {
			return fmt.Errorf("simnet: exceeded %d events at t=%v (likely a message loop)", k.MaxSteps, k.now)
		}
		e.fn()
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) error {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		if k.queue[0].at > deadline {
			break
		}
		e := heap.Pop(&k.queue).(*event)
		k.now = e.at
		k.steps++
		if k.MaxSteps > 0 && k.steps > k.MaxSteps {
			return fmt.Errorf("simnet: exceeded %d events at t=%v", k.MaxSteps, k.now)
		}
		e.fn()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }
