// Package simnet is the deterministic discrete-event network emulator the
// experiments run on.
//
// The paper evaluates TAP "on a network emulation environment, through
// which the instances of the node software communicate", with every peer in
// a single process, per-link latencies drawn uniformly from 1–230 ms, and
// 1.5 Mb/s links. This package reproduces that substrate: a single-threaded
// event loop with a simulated clock (so a 10,000-node, multi-second
// experiment runs in milliseconds of wall time and is bit-for-bit
// reproducible), plus a link model with pairwise latency and
// store-and-forward serialization delay.
//
// The kernel is deliberately not concurrent: determinism is worth more to a
// simulation than parallelism within one trial. Experiments parallelize
// across trials instead (see internal/experiments).
package simnet

import (
	"fmt"
	"math/bits"
	"time"
)

// Time is an instant on the simulated clock, expressed as the duration
// since the start of the simulation.
type Time = time.Duration

// event is a scheduled callback. Events live in the kernel's slot arena
// and are referenced by index; the queues shuffle 4-byte slot numbers, not
// pointers, and freed slots are recycled through a freelist so Schedule
// allocates nothing in steady state.
//
// An event is either a plain callback (fn != nil) or a message delivery
// (msg != nil): message events carry their operands in the slot itself and
// run through the kernel's OnMessage hook, so scheduling one allocates no
// closure. The two forms share the (at, seq) total order.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()

	// Message-delivery operands (message events only).
	msg      Message
	src, dst Addr
}

// Calendar-queue geometry. Near-future events hash into a ring of buckets
// by time tick (tick = at >> tickShift); each ring slot covers exactly one
// tick of the current window, so the first occupied slot at or after the
// cursor always holds the global minimum among ring events. Events beyond
// the window ("far future", e.g. multi-second timeouts against
// millisecond-scale traffic) wait in a single binary heap and migrate into
// the ring as the window slides over them — a timer-wheel-with-overflow
// design; each event migrates at most once because the window only moves
// forward.
const (
	tickShift   = 20 // 2^20 ns ≈ 1.05 ms per bucket, matching link-latency scale
	numBuckets  = 1024
	bucketMask  = numBuckets - 1
	bitmapWords = numBuckets / 64
	// initialBucketCap pre-sizes every ring bucket. A windowed-stream
	// burst schedules a full send window of same-latency messages onto one
	// tick, so buckets routinely hold tens of events at once; carving the
	// initial capacity out of one slab keeps the steady-state schedule
	// path allocation-free instead of paying append growth at every ring
	// position the simulation's clock walks over.
	initialBucketCap = 64
)

// Kernel is the discrete-event scheduler. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	stopped bool
	steps   uint64
	// MaxSteps guards against runaway simulations (a routing loop would
	// otherwise spin the event loop forever). Zero means no limit.
	MaxSteps uint64

	// OnMessage receives message events scheduled with ScheduleMessage.
	// NewNetwork installs the owning network's arrival path here; a kernel
	// carries at most one network's traffic.
	OnMessage func(src, dst Addr, msg Message)

	ev   []event  // slot arena; queues reference slots by index
	free []uint32 // recycled slots

	count    int // scheduled events, ring + far
	near     int // events currently in the ring
	baseTick int64
	basePos  int                  // ring position of baseTick; always baseTick&bucketMask
	buckets  [numBuckets][]uint32 // per-tick min-heaps ordered by (at, seq)
	occupied [bitmapWords]uint64  // bit per non-empty bucket
	far      []uint32             // min-heap of events with tick >= baseTick+numBuckets
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	slab := make([]uint32, numBuckets*initialBucketCap)
	for i := range k.buckets {
		off := i * initialBucketCap
		k.buckets[i] = slab[off : off : off+initialBucketCap]
	}
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.count }

// Schedule runs fn after delay of simulated time. A negative delay is a
// programming error and panics; zero schedules for "immediately after the
// current event", preserving causal order. Steady-state Schedule performs
// no heap allocations: the event slot comes from the freelist and queue
// backing arrays retain their capacity.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", delay))
	}
	k.At(k.now+delay, fn)
}

// At runs fn at the absolute simulated instant t, which must not be in the
// past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("simnet: scheduling into the past (%v < %v)", t, k.now))
	}
	k.seq++
	s := k.allocSlot()
	k.ev[s] = event{at: t, seq: k.seq, fn: fn}
	k.enqueue(t, s)
}

// ScheduleMessage schedules delivery of msg from src to dst after delay,
// dispatched through OnMessage. Unlike Schedule with a closure, the
// operands ride in the event slot, so the steady-state cost is zero
// allocations — this is the transmission fast path of Network.Send.
func (k *Kernel) ScheduleMessage(delay Time, src, dst Addr, msg Message) {
	if delay < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", delay))
	}
	if msg == nil {
		panic("simnet: nil message")
	}
	t := k.now + delay
	k.seq++
	s := k.allocSlot()
	k.ev[s] = event{at: t, seq: k.seq, msg: msg, src: src, dst: dst}
	k.enqueue(t, s)
}

// enqueue files slot s, already stamped with time t, into the calendar.
func (k *Kernel) enqueue(t Time, s uint32) {
	k.count++
	if tick := int64(t >> tickShift); tick < k.baseTick+numBuckets {
		// baseTick never exceeds the tick of the event being executed, so
		// t >= now implies tick >= baseTick: the event is inside the window.
		k.pushBucket(int(tick&bucketMask), s)
		k.near++
	} else {
		k.pushFar(s)
	}
}

// Stop makes Run return after the current event completes. Pending events
// stay queued; a subsequent Run resumes them.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or MaxSteps is exceeded (in which case it returns an error
// identifying the overrun — almost always a routing loop).
func (k *Kernel) Run() error {
	k.stopped = false
	for k.count > 0 && !k.stopped {
		if err := k.step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) error {
	k.stopped = false
	for k.count > 0 && !k.stopped {
		if k.peekTime() > deadline {
			break
		}
		if err := k.step(); err != nil {
			return err
		}
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}

// step pops and executes the earliest event.
func (k *Kernel) step() error {
	s := k.popMin()
	e := &k.ev[s]
	at, fn := e.at, e.fn
	msg, src, dst := e.msg, e.src, e.dst
	e.fn = nil // release the closure before recycling the slot
	e.msg = nil
	k.free = append(k.free, s)
	k.now = at
	k.steps++
	if k.MaxSteps > 0 && k.steps > k.MaxSteps {
		return fmt.Errorf("simnet: exceeded %d events at t=%v (likely a message loop)", k.MaxSteps, k.now)
	}
	if msg != nil {
		k.OnMessage(src, dst, msg)
		return nil
	}
	fn()
	return nil
}

// --- queue internals --------------------------------------------------------

// less orders events by (at, seq): the same total order the pre-calendar
// binary heap used, so execution order is bit-for-bit unchanged.
func (k *Kernel) less(a, b uint32) bool {
	ea, eb := &k.ev[a], &k.ev[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (k *Kernel) allocSlot() uint32 {
	if n := len(k.free); n > 0 {
		s := k.free[n-1]
		k.free = k.free[:n-1]
		return s
	}
	k.ev = append(k.ev, event{})
	return uint32(len(k.ev) - 1)
}

// peekTime returns the timestamp of the earliest queued event. count must
// be > 0. It does not move the window.
func (k *Kernel) peekTime() Time {
	if k.near > 0 {
		pos := k.nextOccupied(k.basePos)
		return k.ev[k.buckets[pos][0]].at
	}
	return k.ev[k.far[0]].at
}

// popMin removes and returns the slot of the earliest event, sliding the
// window forward as needed. count must be > 0.
func (k *Kernel) popMin() uint32 {
	if k.near == 0 {
		// Jump the window to the earliest far event's tick and pull every
		// far event the new window covers into the ring.
		k.baseTick = int64(k.ev[k.far[0]].at >> tickShift)
		k.basePos = int(k.baseTick & bucketMask)
		k.migrateFar()
	}
	pos := k.nextOccupied(k.basePos)
	if pos != k.basePos {
		// Advance baseTick by the ring distance walked. Every ring event's
		// tick is >= baseTick, so skipped buckets stay empty for the
		// current window and the slide is safe.
		d := int64(pos-k.basePos) & bucketMask
		k.baseTick += d
		k.basePos = pos
		k.migrateFar()
		// Migration can only add events at or after the new base tick, so
		// pos still indexes the minimum's bucket.
	}
	s := k.popBucket(pos)
	k.near--
	k.count--
	return s
}

// migrateFar moves far-heap events the current window now covers into the
// ring. The window only slides forward, so each event migrates at most
// once.
func (k *Kernel) migrateFar() {
	horizon := k.baseTick + numBuckets
	for len(k.far) > 0 {
		s := k.far[0]
		tick := int64(k.ev[s].at >> tickShift)
		if tick >= horizon {
			return
		}
		k.popFar()
		k.pushBucket(int(tick&bucketMask), s)
		k.near++
	}
}

// nextOccupied returns the first non-empty bucket at or cyclically after
// pos. near must be > 0.
func (k *Kernel) nextOccupied(pos int) int {
	word, bit := pos>>6, pos&63
	if w := k.occupied[word] >> bit; w != 0 {
		return pos + bits.TrailingZeros64(w)
	}
	for i := 1; i <= bitmapWords; i++ {
		w := k.occupied[(word+i)&(bitmapWords-1)]
		if w != 0 {
			return ((word+i)&(bitmapWords-1))<<6 + bits.TrailingZeros64(w)
		}
	}
	panic("simnet: near count positive but no occupied bucket")
}

// pushBucket heap-inserts slot s into bucket pos.
func (k *Kernel) pushBucket(pos int, s uint32) {
	b := k.buckets[pos]
	if len(b) == 0 {
		k.occupied[pos>>6] |= 1 << (pos & 63)
	}
	b = append(b, s)
	// Sift up.
	i := len(b) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(b[i], b[parent]) {
			break
		}
		b[i], b[parent] = b[parent], b[i]
		i = parent
	}
	k.buckets[pos] = b
}

// popBucket removes and returns the minimum slot of bucket pos.
func (k *Kernel) popBucket(pos int) uint32 {
	b := k.buckets[pos]
	s := b[0]
	n := len(b) - 1
	b[0] = b[n]
	b = b[:n]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && k.less(b[r], b[l]) {
			m = r
		}
		if !k.less(b[m], b[i]) {
			break
		}
		b[i], b[m] = b[m], b[i]
		i = m
	}
	k.buckets[pos] = b
	if n == 0 {
		k.occupied[pos>>6] &^= 1 << (pos & 63)
	}
	return s
}

// pushFar heap-inserts slot s into the far-future heap.
func (k *Kernel) pushFar(s uint32) {
	k.far = append(k.far, s)
	i := len(k.far) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(k.far[i], k.far[parent]) {
			break
		}
		k.far[i], k.far[parent] = k.far[parent], k.far[i]
		i = parent
	}
}

// popFar removes the minimum slot of the far-future heap.
func (k *Kernel) popFar() {
	n := len(k.far) - 1
	k.far[0] = k.far[n]
	k.far = k.far[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && k.less(k.far[r], k.far[l]) {
			m = r
		}
		if !k.less(k.far[m], k.far[i]) {
			break
		}
		k.far[i], k.far[m] = k.far[m], k.far[i]
		i = m
	}
}
