package simnet

import (
	"testing"
	"time"
)

func TestUplinkContentionSerializesSends(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(3), 4)
	net.UplinkContention = true
	const size = 150_000 // 0.8 s serialization at 1.5 Mb/s
	var t1, t2 Time
	net.Attach(0, HandlerFunc(func(Addr, Message) {}))
	net.Attach(1, HandlerFunc(func(Addr, Message) { t1 = k.Now() }))
	net.Attach(2, HandlerFunc(func(Addr, Message) { t2 = k.Now() }))
	net.Send(0, 1, testMsg{size: size})
	net.Send(0, 2, testMsg{size: size})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ser := net.Link.Serialization(size)
	want1 := ser + net.Link.Latency(0, 1)
	want2 := 2*ser + net.Link.Latency(0, 2)
	if t1 != want1 {
		t.Fatalf("first arrival %v, want %v", t1, want1)
	}
	if t2 != want2 {
		t.Fatalf("second arrival %v, want %v (queued behind first)", t2, want2)
	}
}

func TestUplinkContentionIdleLinkNoPenalty(t *testing.T) {
	// Sends spaced wider than their serialization time behave as without
	// contention.
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(4), 3)
	net.UplinkContention = true
	const size = 1000
	var at Time
	net.Attach(0, HandlerFunc(func(Addr, Message) {}))
	net.Attach(1, HandlerFunc(func(Addr, Message) { at = k.Now() }))
	k.Schedule(time.Second, func() { net.Send(0, 1, testMsg{size: size}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Second + net.Link.HopDelay(0, 1, size)
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
}

func TestUplinkContentionDistinctSources(t *testing.T) {
	// Different sources never queue behind each other.
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(5), 4)
	net.UplinkContention = true
	const size = 150_000
	var t1, t2 Time
	net.Attach(0, HandlerFunc(func(Addr, Message) {}))
	net.Attach(1, HandlerFunc(func(Addr, Message) {}))
	net.Attach(2, HandlerFunc(func(Addr, Message) { t1 = k.Now() }))
	net.Attach(3, HandlerFunc(func(Addr, Message) { t2 = k.Now() }))
	net.Send(0, 2, testMsg{size: size})
	net.Send(1, 3, testMsg{size: size})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != net.Link.HopDelay(0, 2, size) || t2 != net.Link.HopDelay(1, 3, size) {
		t.Fatalf("independent sources interfered: %v %v", t1, t2)
	}
}

func TestContentionOffUnchanged(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(6), 3)
	const size = 150_000
	var t1, t2 Time
	net.Attach(0, HandlerFunc(func(Addr, Message) {}))
	net.Attach(1, HandlerFunc(func(Addr, Message) { t1 = k.Now() }))
	net.Attach(2, HandlerFunc(func(Addr, Message) { t2 = k.Now() }))
	net.Send(0, 1, testMsg{size: size})
	net.Send(0, 2, testMsg{size: size})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != net.Link.HopDelay(0, 1, size) || t2 != net.Link.HopDelay(0, 2, size) {
		t.Fatalf("default mode changed: %v %v", t1, t2)
	}
}
