package simnet

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestFaultPlanJSONRoundTrip(t *testing.T) {
	plan := &FaultPlan{
		Seed:      99,
		LossRate:  0.05,
		SpikeRate: 0.01,
		SpikeMin:  10 * time.Millisecond,
		SpikeMax:  250 * time.Millisecond,
		Crashes: []CrashWindow{
			{Addr: 3, At: 2 * time.Second, Restart: 7 * time.Second},
			{Addr: 5, At: 4 * time.Second}, // never restarts
		},
		Partitions: []PartitionWindow{
			{Members: []Addr{1, 2}, At: time.Second, Heal: 9 * time.Second},
			{Members: []Addr{7}, At: 3 * time.Second, Asym: true},
		},
	}
	raw, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var back FaultPlan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	// The notification hooks are runtime-only and excluded from the
	// artifact; everything else must survive.
	want := *plan
	want.OnCrash, want.OnRestart = nil, nil
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, want)
	}
}

func TestPartitionSymmetricCutsBothDirections(t *testing.T) {
	k, net, got := faultNet(t, nil)
	id := net.StartPartition([]Addr{0}, false)
	net.Send(0, 1, testMsg{size: 10}) // member -> outside: cut
	net.Send(1, 0, testMsg{size: 10}) // outside -> member: cut
	net.Send(1, 2, testMsg{size: 10}) // outside -> outside: flows
	net.Send(0, 0, testMsg{size: 10}) // self: always exempt
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("deliveries = %v, want [1 0 1 0]", got)
	}
	if net.Stats.MessagesPartitioned != 2 {
		t.Fatalf("MessagesPartitioned = %d, want 2", net.Stats.MessagesPartitioned)
	}
	net.HealPartition(id)
	net.Send(0, 1, testMsg{size: 10})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Fatalf("delivery after heal did not arrive (got[1]=%d)", got[1])
	}
	if net.PartitionActive() {
		t.Fatal("PartitionActive after heal")
	}
}

func TestPartitionAsymmetricCutsInboundOnly(t *testing.T) {
	k, net, got := faultNet(t, nil)
	net.StartPartition([]Addr{0}, true)
	net.Send(0, 1, testMsg{size: 10}) // member outbound: flows
	net.Send(1, 0, testMsg{size: 10}) // inbound to member: cut
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Fatal("asymmetric partition cut the member's outbound traffic")
	}
	if got[0] != 0 {
		t.Fatal("asymmetric partition delivered inbound traffic to the member")
	}
	if net.Stats.MessagesPartitioned != 1 {
		t.Fatalf("MessagesPartitioned = %d, want 1", net.Stats.MessagesPartitioned)
	}
}

func TestPartitionMemberToMemberFlows(t *testing.T) {
	k, net, got := faultNet(t, nil)
	net.StartPartition([]Addr{0, 1}, false)
	net.Send(0, 1, testMsg{size: 10})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Fatal("traffic between two members of the same partition was cut")
	}
}

func TestPartitionWindowScheduledByPlan(t *testing.T) {
	k, net, got := faultNet(t, &FaultPlan{
		Seed: 1,
		Partitions: []PartitionWindow{
			{Members: []Addr{2}, At: time.Second, Heal: 3 * time.Second},
		},
	})
	// Before, during, and after the window. Sends are scheduled on the
	// kernel so the window edges fire in between.
	k.At(500*time.Millisecond, func() { net.Send(0, 2, testMsg{size: 10}) })
	k.At(2*time.Second, func() { net.Send(0, 2, testMsg{size: 10}) })
	k.At(4*time.Second, func() { net.Send(0, 2, testMsg{size: 10}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[2] != 2 {
		t.Fatalf("deliveries to member = %d, want 2 (only the mid-window send cut)", got[2])
	}
	if net.PartitionActive() {
		t.Fatal("partition still active after scheduled heal")
	}
}

// TestWatchAddrsObservesCrashEdgesAndDetach is the satellite-2 regression:
// crash/restart windows and Detach must emit deterministic per-address
// down/up events that higher layers (the pool's probes, tests) can
// subscribe to.
func TestWatchAddrsObservesCrashEdgesAndDetach(t *testing.T) {
	type ev struct {
		addr Addr
		up   bool
		at   Time
	}
	run := func() []ev {
		k, net, _ := faultNet(t, &FaultPlan{
			Seed: 1,
			Crashes: []CrashWindow{
				{Addr: 1, At: time.Second, Restart: 2 * time.Second},
				{Addr: 3, At: 1500 * time.Millisecond}, // never restarts
			},
		})
		var log []ev
		net.WatchAddrs(func(a Addr, up bool) { log = append(log, ev{a, up, k.Now()}) })
		k.At(3*time.Second, func() { net.Detach(2) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	want := []ev{
		{1, false, time.Second},
		{3, false, 1500 * time.Millisecond},
		{1, true, 2 * time.Second},
		{2, false, 3 * time.Second},
	}
	got := run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("watcher log = %v, want %v", got, want)
	}
	if again := run(); !reflect.DeepEqual(again, got) {
		t.Fatalf("watcher log not deterministic across runs: %v vs %v", again, got)
	}
}

func TestWatchAddrsRunsAfterPlanHooks(t *testing.T) {
	// A watcher must observe the post-transition world: the plan's own
	// OnCrash/OnRestart hooks run first.
	var order []string
	k, net, _ := faultNet(t, nil)
	plan := &FaultPlan{
		Seed:      1,
		Crashes:   []CrashWindow{{Addr: 1, At: time.Second, Restart: 2 * time.Second}},
		OnCrash:   func(Addr) { order = append(order, "hook-down") },
		OnRestart: func(Addr) { order = append(order, "hook-up") },
	}
	net.InstallFaults(plan)
	net.WatchAddrs(func(a Addr, up bool) {
		if up {
			order = append(order, "watch-up")
		} else {
			order = append(order, "watch-down")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"hook-down", "watch-down", "hook-up", "watch-up"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
