package simnet

import (
	"sort"
	"testing"
	"time"

	"tap/internal/rng"
)

// TestKernelMatchesReferenceOrder drives the calendar queue with random
// workloads spanning the ring window and the far-future heap, and checks
// the execution order against the specification: strictly (at, seq).
func TestKernelMatchesReferenceOrder(t *testing.T) {
	type rec struct {
		at  Time
		seq int
	}
	for _, span := range []Time{
		100 * time.Microsecond, // everything lands in one or two buckets
		50 * time.Millisecond,  // spread across the ring
		5 * time.Second,        // most events start in the far heap
		2 * time.Minute,        // deep far-future, forces window jumps
	} {
		s := rng.New(uint64(span))
		k := NewKernel()
		var got []rec
		var want []rec
		seq := 0
		var schedule func(at Time)
		schedule = func(at Time) {
			mySeq := seq
			seq++
			want = append(want, rec{at, mySeq})
			k.At(at, func() {
				got = append(got, rec{at, mySeq})
				// A third of events cascade: schedule follow-ups relative
				// to now, mixing zero delays with short and far ones.
				if mySeq%3 == 0 && seq < 3000 {
					schedule(k.Now())
					schedule(k.Now() + Time(s.Intn(int(span)+1)))
				}
			})
		}
		for i := 0; i < 1000; i++ {
			schedule(Time(s.Intn(int(span) + 1)))
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("span %v: executed %d events, scheduled %d", span, len(got), len(want))
		}
		// The reference order sorts by (at, schedule sequence). The
		// recorded seq is assigned in k.At call order, which is exactly
		// the kernel's tie-break sequence.
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("span %v: event %d = %+v, reference %+v", span, i, got[i], want[i])
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("span %v: %d events still pending after drain", span, k.Pending())
		}
	}
}

// TestKernelInterleavedRunUntil checks that window bookkeeping survives
// RunUntil advancing the clock past the base tick without popping, then
// scheduling near events again.
func TestKernelInterleavedRunUntil(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(3*time.Second, func() { order = append(order, 99) })
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(order) != 0 || k.Now() != 2*time.Second {
		t.Fatalf("order=%v now=%v", order, k.Now())
	}
	// now is far ahead of the (stale) window base; these land correctly.
	k.Schedule(time.Millisecond, func() { order = append(order, 1) })
	k.Schedule(2*time.Second, func() { order = append(order, 2) })
	k.Schedule(0, func() { order = append(order, 0) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 99 || order[3] != 2 {
		t.Fatalf("order = %v", order)
	}
}

// TestKernelScheduleSteadyStateZeroAlloc is the satellite acceptance
// check: once the slot arena and bucket heaps are warm, a schedule+run
// cycle performs no heap allocations.
func TestKernelScheduleSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	delays := make([]Time, 256)
	s := rng.New(9)
	for i := range delays {
		// Mix sub-window and far-future delays so both paths stay warm.
		delays[i] = Time(s.Intn(int(4 * time.Second)))
	}
	cycle := func() {
		for _, d := range delays {
			k.Schedule(d, fn)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the arena, freelist, and heap capacities. The clock advances
	// every cycle, so events rotate through the bucket ring; enough cycles
	// touch every bucket position once, after which all capacity is warm.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("steady-state schedule+run cycle allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestKernelSlotRecycling checks the freelist actually bounds the arena:
// repeated schedule/run cycles must not grow the slot arena beyond the
// peak concurrent population.
func TestKernelSlotRecycling(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 100; i++ {
			k.Schedule(Time(i)*time.Millisecond, fn)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if len(k.ev) > 100 {
		t.Fatalf("slot arena grew to %d for a peak population of 100", len(k.ev))
	}
}
