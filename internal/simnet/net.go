package simnet

import (
	"fmt"
	"time"

	"tap/internal/rng"
	"tap/internal/transport"
)

// Addr is a network address — the simulator's stand-in for an IP address.
// Addresses are small dense integers so the link model can hash pairs
// cheaply; address 0 is valid. The type (like Message, Handler, and Time)
// is the shared transport-seam primitive: simnet re-exports it so the
// simulator and the real TCP transport speak one vocabulary.
type Addr = transport.Addr

// NoAddr marks "no address known", used by IP-hint fields in optimized
// tunnel messages.
const NoAddr = transport.NoAddr

// Message is anything deliverable over the simulated network. SizeBytes
// drives the serialization delay; implementations report their wire size
// rather than actually marshaling on the hot path.
type Message = transport.Message

// Handler receives messages addressed to a node. Deliver is invoked by
// the event loop when a message arrives; implementations run synchronously
// on the event loop and must schedule, not block.
type Handler = transport.Handler

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc = transport.HandlerFunc

// LinkModel computes per-hop delays.
type LinkModel struct {
	// MinLatency and MaxLatency bound the uniformly distributed pairwise
	// propagation delay. The paper uses 1 ms and 230 ms.
	MinLatency, MaxLatency time.Duration
	// BandwidthBitsPerSec is the per-link throughput; the paper uses
	// 1.5 Mb/s. Zero disables serialization delay.
	BandwidthBitsPerSec int64
	// Seed roots the deterministic pairwise latency function.
	Seed uint64
}

// DefaultLinkModel returns the paper's evaluation parameters.
func DefaultLinkModel(seed uint64) LinkModel {
	return LinkModel{
		MinLatency:          1 * time.Millisecond,
		MaxLatency:          230 * time.Millisecond,
		BandwidthBitsPerSec: 1_500_000,
		Seed:                seed,
	}
}

// Latency returns the propagation delay of the (a, b) link. It is
// symmetric and stable for the lifetime of the model.
func (m LinkModel) Latency(a, b Addr) time.Duration {
	if a == b {
		return 0
	}
	lo := int(m.MinLatency / time.Millisecond)
	hi := int(m.MaxLatency / time.Millisecond)
	ms := rng.PairwiseMs(m.Seed, uint64(a), uint64(b), lo, hi)
	return time.Duration(ms) * time.Millisecond
}

// Serialization returns the time to clock size bytes onto a link.
func (m LinkModel) Serialization(size int) time.Duration {
	if m.BandwidthBitsPerSec <= 0 || size <= 0 {
		return 0
	}
	bits := int64(size) * 8
	return time.Duration(bits * int64(time.Second) / m.BandwidthBitsPerSec)
}

// HopDelay is the full store-and-forward delay of one hop: serialization
// followed by propagation.
func (m LinkModel) HopDelay(a, b Addr, size int) time.Duration {
	return m.Serialization(size) + m.Latency(a, b)
}

// Stats counts network-level activity for an experiment run.
type Stats struct {
	MessagesSent        uint64
	MessagesDelivered   uint64
	MessagesDropped     uint64 // destination dead or down at delivery time
	MessagesLost        uint64 // lost in transit or sent by a crashed node (FaultPlan)
	MessagesPartitioned uint64 // lost crossing an active partition boundary
	LatencySpikes       uint64 // transmissions delayed by a FaultPlan spike
	BytesSent           uint64
}

// Network binds the kernel, the link model, and the attached nodes.
type Network struct {
	Kernel *Kernel
	Link   LinkModel
	Stats  Stats

	handlers []Handler // indexed by Addr; nil = detached
	// DropHook, when non-nil, observes messages dropped because the
	// destination was detached. Tunnel forwarding uses it in tests to
	// assert loss behaviour.
	DropHook func(from, to Addr, msg Message)
	// SendHook, when non-nil, observes every transmission at send time —
	// the wire-level tap traffic-analysis tests use.
	SendHook func(from, to Addr, msg Message)
	// ExtraDelay, when non-nil, returns additional in-transit delay for a
	// transmission that will otherwise be delivered — the adversarial
	// reordering hook the simulation checker uses to race retransmissions
	// against originals. It runs after fault handling, so lost messages
	// never reach it. Negative returns are clamped to zero.
	ExtraDelay func(src, dst Addr, msg Message) Time

	// UplinkContention, when set, serializes each node's outgoing
	// transmissions: a second send from the same node cannot begin
	// clocking bits until the first finishes serializing. Off by default
	// (the paper's model, where concurrent transfers do not interact);
	// flows that overlap in time are more faithful with it on.
	UplinkContention bool
	uplinkFree       map[Addr]Time // next instant each uplink is idle

	// faults is the installed FaultPlan state; nil means a fault-free
	// network (the default).
	faults *faultState

	// partitions holds the active partitions by id. Independent of the
	// FaultPlan so tests and higher layers can cut and heal links at
	// runtime without scheduling a full plan.
	partitions  map[int]*partition
	nextPartID  int
	addrWatches []func(addr Addr, up bool)
}

// partition is one active cut: a member set separated from the rest.
type partition struct {
	members map[Addr]bool
	asym    bool
}

// NewNetwork returns a network with capacity for n addresses. The network
// claims the kernel's message-delivery hook; a kernel carries at most one
// network's traffic.
func NewNetwork(k *Kernel, link LinkModel, n int) *Network {
	net := &Network{
		Kernel:   k,
		Link:     link,
		handlers: make([]Handler, n),
	}
	k.OnMessage = net.arrive
	return net
}

// Attach binds handler to addr. Attaching over a live handler is a
// programming error.
func (n *Network) Attach(addr Addr, h Handler) {
	if n.handlers[addr] != nil {
		panic(fmt.Sprintf("simnet: address %d already attached", addr))
	}
	n.handlers[addr] = h
}

// Detach removes the node at addr, modeling a crash or departure. Messages
// in flight toward it are dropped on arrival. Detaching an address that
// was never attached (e.g. a joiner beyond the allocated space) is a
// no-op.
func (n *Network) Detach(addr Addr) {
	if int(addr) < 0 || int(addr) >= len(n.handlers) {
		return
	}
	wasAttached := n.handlers[addr] != nil
	n.handlers[addr] = nil
	// A crashed node's uplink dies with it: a later restart at this
	// address must not inherit the stale uplink-busy horizon.
	delete(n.uplinkFree, addr)
	if wasAttached {
		n.notifyAddr(addr, false)
	}
}

// Attached reports whether addr currently has a live handler.
func (n *Network) Attached(addr Addr) bool {
	return int(addr) >= 0 && int(addr) < len(n.handlers) && n.handlers[addr] != nil
}

// Grow extends the address space to hold at least n addresses, for
// experiments that add nodes after construction.
func (n *Network) Grow(size int) {
	for len(n.handlers) < size {
		n.handlers = append(n.handlers, nil)
	}
}

// Send schedules delivery of msg from src to dst after the link's
// store-and-forward delay. Sending from a detached source is allowed (the
// source may have crashed between scheduling and execution); sending to a
// detached destination consumes network resources and is counted as a drop
// at delivery time, matching a real network where the sender cannot know.
func (n *Network) Send(src, dst Addr, msg Message) {
	if n.SendHook != nil {
		n.SendHook(src, dst, msg)
	}
	n.Stats.MessagesSent++
	n.Stats.BytesSent += uint64(msg.SizeBytes())
	if n.faults != nil && n.faults.down[src] {
		// A node inside a crash window transmits nothing.
		n.Stats.MessagesLost++
		return
	}
	if len(n.partitions) > 0 && n.Partitioned(src, dst) {
		// The transmission would cross a severed boundary; the bits never
		// arrive. Checked at send time: messages already in flight when a
		// partition starts are considered to have cleared the cut.
		n.Stats.MessagesPartitioned++
		return
	}
	var delay Time
	if n.UplinkContention {
		if n.uplinkFree == nil {
			n.uplinkFree = make(map[Addr]Time)
		}
		start := n.Kernel.Now()
		if free := n.uplinkFree[src]; free > start {
			start = free
		}
		txEnd := start + n.Link.Serialization(msg.SizeBytes())
		n.uplinkFree[src] = txEnd
		delay = txEnd + n.Link.Latency(src, dst) - n.Kernel.Now()
	} else {
		delay = n.Link.HopDelay(src, dst, msg.SizeBytes())
	}
	if n.faults != nil {
		// Loss is drawn after the uplink bookkeeping: the bits were
		// clocked onto the wire and vanished in transit.
		extra, lost := n.faults.applyFaults(&n.Stats, src, dst)
		if lost {
			return
		}
		delay += extra
	}
	if n.ExtraDelay != nil {
		if extra := n.ExtraDelay(src, dst, msg); extra > 0 {
			delay += extra
		}
	}
	n.Kernel.ScheduleMessage(delay, src, dst, msg)
}

// arrive executes one message-delivery event: the in-flight transmission
// reaches dst. Handlers and crash windows are consulted at arrival time,
// matching a real network where the sender cannot know the destination's
// fate when the bits leave.
func (n *Network) arrive(src, dst Addr, msg Message) {
	h := n.handlers[dst]
	if h == nil || (n.faults != nil && n.faults.down[dst]) {
		n.Stats.MessagesDropped++
		if n.DropHook != nil {
			n.DropHook(src, dst, msg)
		}
		return
	}
	n.Stats.MessagesDelivered++
	h.Deliver(src, msg)
}

// Now exposes the kernel clock, saving callers a dereference.
func (n *Network) Now() Time { return n.Kernel.Now() }

// Schedule files fn onto the kernel's event queue after delay, satisfying
// transport.Clock without handing callers the whole kernel.
func (n *Network) Schedule(delay Time, fn func()) { n.Kernel.Schedule(delay, fn) }

// Serialization estimates the time to clock size bytes onto a link.
func (n *Network) Serialization(size int) Time { return n.Link.Serialization(size) }

// MaxLatency bounds the one-way propagation delay of any link.
func (n *Network) MaxLatency() Time { return n.Link.MaxLatency }

// The simulated network is the deterministic Transport implementation;
// internal/transport/simtransport documents the pairing.
var _ transport.Transport = (*Network)(nil)

// --- partitions -------------------------------------------------------------

// StartPartition severs the member set from the rest of the network and
// returns a handle for HealPartition. Traffic among members, and among
// non-members, is unaffected. With asym false the cut is bidirectional;
// with asym true only traffic into the member set is lost (members can
// still transmit outward) — see PartitionWindow. Self-addressed messages
// never cross a link and are always exempt.
func (n *Network) StartPartition(members []Addr, asym bool) int {
	p := &partition{members: make(map[Addr]bool, len(members)), asym: asym}
	for _, a := range members {
		p.members[a] = true
	}
	if n.partitions == nil {
		n.partitions = make(map[int]*partition)
	}
	id := n.nextPartID
	n.nextPartID++
	n.partitions[id] = p
	return id
}

// HealPartition removes a partition previously started with
// StartPartition. Healing an unknown or already-healed id is a no-op.
func (n *Network) HealPartition(id int) {
	delete(n.partitions, id)
}

// PartitionActive reports whether any partition is currently in force.
func (n *Network) PartitionActive() bool { return len(n.partitions) > 0 }

// Partitioned reports whether a transmission from src to dst would be
// lost to an active partition.
func (n *Network) Partitioned(src, dst Addr) bool {
	if src == dst {
		return false
	}
	for _, p := range n.partitions {
		srcIn, dstIn := p.members[src], p.members[dst]
		if srcIn == dstIn {
			continue // both sides of the same boundary
		}
		if p.asym {
			if dstIn {
				return true // inbound traffic to a member is cut
			}
			continue // outbound from a member still flows
		}
		return true
	}
	return false
}

// --- address availability watchers ------------------------------------------

// WatchAddrs registers fn to observe per-address availability
// transitions: fn(addr, false) when the address goes down (a crash window
// opens, or the handler is detached) and fn(addr, true) when a crash
// window ends. Watchers run synchronously on the event loop, in
// registration order, after the FaultPlan's own OnCrash/OnRestart hooks —
// so a watcher observes the post-transition world. This is the
// deterministic down/up signal the tunnel-pool prober and the tests
// subscribe to.
func (n *Network) WatchAddrs(fn func(addr Addr, up bool)) {
	n.addrWatches = append(n.addrWatches, fn)
}

// notifyAddr fans an availability transition out to the watchers.
func (n *Network) notifyAddr(addr Addr, up bool) {
	for _, fn := range n.addrWatches {
		fn(addr, up)
	}
}
