package simnet

import (
	"testing"
	"time"
)

// faultNet builds a 4-address network with counting handlers.
func faultNet(t *testing.T, plan *FaultPlan) (*Kernel, *Network, []int) {
	t.Helper()
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(7), 4)
	got := make([]int, 4)
	for a := 0; a < 4; a++ {
		a := a
		net.Attach(Addr(a), HandlerFunc(func(Addr, Message) { got[a]++ }))
	}
	net.InstallFaults(plan)
	return k, net, got
}

func TestFaultTotalLossDeliversNothing(t *testing.T) {
	k, net, got := faultNet(t, &FaultPlan{Seed: 1, LossRate: 1})
	for i := 0; i < 20; i++ {
		net.Send(0, 1, testMsg{size: 100})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 {
		t.Fatalf("delivered %d messages through a fully lossy link", got[1])
	}
	if net.Stats.MessagesLost != 20 {
		t.Fatalf("MessagesLost = %d, want 20", net.Stats.MessagesLost)
	}
}

func TestFaultLossIsSeedDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		k, net, _ := faultNet(t, &FaultPlan{Seed: 42, LossRate: 0.3})
		for i := 0; i < 200; i++ {
			net.Send(0, 1, testMsg{size: 10})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return net.Stats.MessagesDelivered, net.Stats.MessagesLost
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("fault schedule not deterministic: (%d,%d) vs (%d,%d)", d1, l1, d2, l2)
	}
	if l1 == 0 || d1 == 0 {
		t.Fatalf("30%% loss over 200 sends gave delivered=%d lost=%d", d1, l1)
	}
}

func TestFaultSelfDeliveryExemptFromLoss(t *testing.T) {
	k, net, got := faultNet(t, &FaultPlan{Seed: 1, LossRate: 1})
	net.Send(2, 2, testMsg{size: 10})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[2] != 1 {
		t.Fatalf("self delivery lost under link-loss plan")
	}
}

func TestFaultLatencySpikeDelays(t *testing.T) {
	const spike = 500 * time.Millisecond
	k, net, _ := faultNet(t, &FaultPlan{
		Seed: 1, SpikeRate: 1, SpikeMin: spike, SpikeMax: spike,
	})
	var arrived Time
	net.Detach(1)
	net.Attach(1, HandlerFunc(func(Addr, Message) { arrived = k.Now() }))
	net.Send(0, 1, testMsg{size: 100})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := net.Link.HopDelay(0, 1, 100) + spike
	if arrived != want {
		t.Fatalf("arrival %v, want %v (spiked)", arrived, want)
	}
	if net.Stats.LatencySpikes != 1 {
		t.Fatalf("LatencySpikes = %d", net.Stats.LatencySpikes)
	}
}

func TestFaultCrashWindow(t *testing.T) {
	var crashed, restarted []Addr
	plan := &FaultPlan{
		Seed:      1,
		Crashes:   []CrashWindow{{Addr: 1, At: 100 * time.Millisecond, Restart: 2 * time.Second}},
		OnCrash:   func(a Addr) { crashed = append(crashed, a) },
		OnRestart: func(a Addr) { restarted = append(restarted, a) },
	}
	k, net, got := faultNet(t, plan)

	// Before the window: delivered. During: dropped on arrival, and the
	// downed node's own sends are lost. After restart: delivered again.
	net.Send(0, 1, testMsg{size: 10}) // arrives ~t<100ms? link 0-1 latency may exceed; schedule explicitly
	k.At(150*time.Millisecond, func() {
		if !net.Down(1) || net.Reachable(1) {
			t.Errorf("node 1 should be down inside its window")
		}
		net.Send(0, 1, testMsg{size: 10}) // dropped at arrival
		net.Send(1, 2, testMsg{size: 10}) // crashed sender: lost
	})
	k.At(3*time.Second, func() {
		if net.Down(1) || !net.Reachable(1) {
			t.Errorf("node 1 should be reachable after restart")
		}
		net.Send(0, 1, testMsg{size: 10})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[2] != 0 {
		t.Fatalf("message from crashed sender delivered")
	}
	if net.Stats.MessagesLost != 1 {
		t.Fatalf("MessagesLost = %d, want 1", net.Stats.MessagesLost)
	}
	if len(crashed) != 1 || crashed[0] != 1 || len(restarted) != 1 || restarted[0] != 1 {
		t.Fatalf("hooks: crashed=%v restarted=%v", crashed, restarted)
	}
	// Exactly the first (pre-window, if it arrived before 100ms it counts)
	// plus the post-restart send can arrive; the mid-window one cannot.
	if net.Stats.MessagesDropped < 1 {
		t.Fatalf("mid-window send was not dropped (dropped=%d)", net.Stats.MessagesDropped)
	}
	if got[1] < 1 {
		t.Fatalf("post-restart send not delivered (got=%d)", got[1])
	}
}

func TestDetachClearsUplinkHorizon(t *testing.T) {
	k := NewKernel()
	net := NewNetwork(k, DefaultLinkModel(9), 3)
	net.UplinkContention = true
	net.Attach(0, HandlerFunc(func(Addr, Message) {}))
	arrivals := make(map[int]Time)
	net.Attach(1, HandlerFunc(func(_ Addr, m Message) {
		arrivals[m.SizeBytes()] = k.Now()
	}))

	// A huge transfer books node 0's uplink far into the future, then the
	// node crashes and restarts: the fresh incarnation must not inherit
	// the stale uplink-busy horizon.
	net.Send(0, 1, testMsg{size: 10_000_000}) // ~53 s of serialization
	net.Detach(0)
	net.Attach(0, HandlerFunc(func(Addr, Message) {}))
	net.Send(0, 1, testMsg{size: 100})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	small := arrivals[100]
	fresh := net.Link.HopDelay(0, 1, 100)
	if small != fresh {
		t.Fatalf("restarted node's send arrived at %v, want %v (stale uplink horizon?)", small, fresh)
	}
}
