package churn

import (
	"time"

	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// Driver is a continuous-time churn process on the simulation kernel:
// departures and arrivals are scheduled as events, so membership changes
// race in-flight traffic exactly as they would in a deployed network.
// The waves of Figure 5 happen *between* measurements; the Driver models
// churn *during* them.
//
// Inter-event gaps are exponentially distributed (memoryless session
// ends), the standard churn model. Each event is one departure followed
// by one arrival, keeping the population stationary.
type Driver struct {
	OV  *pastry.Overlay
	Mgr *past.Manager
	Net *simnet.Network

	// MeanGap is the average simulated time between churn events. The
	// population-wide "churn rate" is 1/MeanGap events per unit time.
	MeanGap time.Duration
	// Keep, when non-nil, protects nodes from being chosen to depart.
	Keep func(simnet.Addr) bool

	stream *rng.Stream
	// Departures and Arrivals count events executed.
	Departures, Arrivals int

	stopped bool
}

// NewDriver creates a churn driver; call Start to begin.
func NewDriver(ov *pastry.Overlay, net *simnet.Network, meanGap time.Duration, stream *rng.Stream) *Driver {
	return &Driver{OV: ov, Net: net, MeanGap: meanGap, stream: stream}
}

// Start schedules churn events until deadline or Stop.
func (d *Driver) Start(deadline simnet.Time) {
	d.scheduleNext(deadline)
}

// Stop halts the process after the current event.
func (d *Driver) Stop() { d.stopped = true }

// nextGap draws an exponential inter-event time.
func (d *Driver) nextGap() time.Duration {
	g := d.stream.ExpFloat64() * float64(d.MeanGap)
	if g < float64(time.Microsecond) {
		g = float64(time.Microsecond)
	}
	return time.Duration(g)
}

func (d *Driver) scheduleNext(deadline simnet.Time) {
	d.Net.Kernel.Schedule(d.nextGap(), func() {
		if d.stopped || d.Net.Now() > deadline {
			return
		}
		d.step()
		d.scheduleNext(deadline)
	})
}

// step performs one departure + one arrival.
func (d *Driver) step() {
	if d.OV.Size() > 2 {
		const maxTries = 64
		for try := 0; try < maxTries; try++ {
			victim := d.OV.RandomLive(d.stream)
			if d.Keep != nil && d.Keep(victim.Ref().Addr) {
				continue
			}
			addr := victim.Ref().Addr
			if err := d.OV.Fail(addr); err != nil {
				break
			}
			d.Net.Detach(addr)
			d.Departures++
			break
		}
	}
	// Grow the address space before the join fires OnJoin hooks, so any
	// handler-attachment hook finds room.
	d.Net.Grow(d.OV.NumAddrs() + 1)
	d.OV.Join() // OnJoin hooks (replica migration, engine attach) fire here
	d.Arrivals++
}
