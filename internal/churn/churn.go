// Package churn drives the membership dynamics of the paper's
// experiments: the simultaneous mass failures of Figure 2 and the
// per-time-unit leave/join waves of Figure 5.
package churn

import (
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// FailFraction fails ⌊p·N⌋ uniformly random live nodes *simultaneously*:
// the replication manager's repair is suspended for the whole batch, so
// items whose entire replica set is hit are lost — exactly the Figure 2
// failure model. The optional keep predicate protects nodes from selection
// (e.g. a measurement observer). Returns the failed refs.
func FailFraction(ov *pastry.Overlay, mgr *past.Manager, p float64, stream *rng.Stream, keep func(simnet.Addr) bool) []pastry.NodeRef {
	want := int(p * float64(ov.Size()))
	refs := ov.LiveRefs()
	// Select victims before failing anything so the sample is uniform over
	// the pre-failure population.
	victims := make([]pastry.NodeRef, 0, want)
	for _, idx := range stream.PermFirstK(len(refs), len(refs)) {
		if len(victims) == want {
			break
		}
		r := refs[idx]
		if keep != nil && keep(r.Addr) {
			continue
		}
		victims = append(victims, r)
	}
	mgr.BeginBatch()
	for _, v := range victims {
		if err := ov.Fail(v.Addr); err != nil {
			// Refusing to kill the last node is the only expected error;
			// anything else is an invariant violation worth crashing on.
			panic(err)
		}
	}
	mgr.EndBatch()
	return victims
}

// Wave performs one Figure 5 time unit: `leaves` random benign departures
// followed by `joins` fresh arrivals. Departures are sequential (the
// replication manager migrates after each, as a real system would over a
// time unit); the benign predicate excludes malicious nodes, which "try to
// stay in the system as long as possible". Returns how many nodes actually
// left.
func Wave(ov *pastry.Overlay, leaves, joins int, stream *rng.Stream, benign func(simnet.Addr) bool) int {
	left := 0
	const maxTries = 64
	for i := 0; i < leaves; i++ {
		var victim *pastry.Node
		for try := 0; try < maxTries; try++ {
			n := ov.RandomLive(stream)
			if benign == nil || benign(n.Ref().Addr) {
				victim = n
				break
			}
		}
		if victim == nil {
			break // overlay is essentially all-malicious; nothing to do
		}
		if err := ov.Fail(victim.Ref().Addr); err != nil {
			panic(err)
		}
		left++
	}
	for i := 0; i < joins; i++ {
		ov.Join()
	}
	return left
}
