package churn

import (
	"testing"
	"time"

	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

func netSetup(t testing.TB, n int, seed uint64) (*pastry.Overlay, *past.Manager, *simnet.Kernel, *simnet.Network, *rng.Stream) {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, 3)
	k := simnet.NewKernel()
	k.MaxSteps = 5_000_000
	net := simnet.NewNetwork(k, simnet.DefaultLinkModel(seed), ov.NumAddrs())
	for _, r := range ov.LiveRefs() {
		net.Attach(r.Addr, simnet.HandlerFunc(func(simnet.Addr, simnet.Message) {}))
	}
	return ov, mgr, k, net, root.Split("churn")
}

func TestDriverEventRate(t *testing.T) {
	ov, _, k, net, s := netSetup(t, 200, 1)
	d := NewDriver(ov, net, 100*time.Millisecond, s)
	deadline := simnet.Time(5 * time.Second)
	d.Start(deadline)
	if err := k.RunUntil(deadline + time.Second); err != nil {
		t.Fatal(err)
	}
	// ~50 events expected over 5 s at one per 100 ms.
	if d.Departures < 25 || d.Departures > 90 {
		t.Fatalf("departures = %d, expected ~50", d.Departures)
	}
	if d.Arrivals < d.Departures {
		t.Fatalf("arrivals %d < departures %d", d.Arrivals, d.Departures)
	}
	// Population stationary.
	if ov.Size() != 200+d.Arrivals-d.Departures {
		t.Fatalf("population bookkeeping off")
	}
	if err := ov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDriverStops(t *testing.T) {
	ov, _, k, net, s := netSetup(t, 100, 2)
	d := NewDriver(ov, net, 50*time.Millisecond, s)
	d.Start(simnet.Time(time.Hour))
	if err := k.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	at := d.Departures
	d.Stop()
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Departures != at {
		t.Fatalf("driver kept churning after Stop")
	}
}

func TestDriverKeepPredicate(t *testing.T) {
	ov, _, k, net, s := netSetup(t, 100, 3)
	protected := ov.RandomLive(s).Ref().Addr
	d := NewDriver(ov, net, 10*time.Millisecond, s)
	d.Keep = func(a simnet.Addr) bool { return a == protected }
	d.Start(simnet.Time(2 * time.Second))
	if err := k.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	n := ov.Node(protected)
	if n == nil || !n.Alive() {
		t.Fatalf("protected node churned out")
	}
	if d.Departures == 0 {
		t.Fatalf("no churn happened")
	}
}

func TestDriverPreservesStoredData(t *testing.T) {
	ov, mgr, k, net, s := netSetup(t, 200, 4)
	keys := make([]id.ID, 0, 50)
	for i := 0; i < 50; i++ {
		var key id.ID
		s.Bytes(key[:])
		if err := mgr.Insert(key, i); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	d := NewDriver(ov, net, 20*time.Millisecond, s)
	d.Start(simnet.Time(3 * time.Second))
	if err := k.RunUntil(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Departures < 50 {
		t.Fatalf("churn too weak to be meaningful: %d departures", d.Departures)
	}
	// Sequential churn never loses replicated data.
	if mgr.LostCount() != 0 {
		t.Fatalf("driver churn lost %d items", mgr.LostCount())
	}
	for _, key := range keys {
		if _, ok := mgr.Lookup(key); !ok {
			t.Fatalf("item lost under driver churn")
		}
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
