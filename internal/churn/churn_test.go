package churn

import (
	"testing"

	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

func setup(t testing.TB, n, k int, seed uint64) (*pastry.Overlay, *past.Manager, *rng.Stream) {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	return ov, past.NewManager(ov, k), root.Split("churn")
}

func TestFailFractionCountAndBatchSemantics(t *testing.T) {
	ov, mgr, s := setup(t, 200, 3, 1)
	// Store some items so batch loss can occur.
	for i := 0; i < 100; i++ {
		key := id.HashString(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if err := mgr.Insert(key, i); err != nil {
			t.Fatal(err)
		}
	}
	victims := FailFraction(ov, mgr, 0.25, s, nil)
	if len(victims) != 50 {
		t.Fatalf("failed %d nodes, want 50", len(victims))
	}
	if ov.Size() != 150 {
		t.Fatalf("size %d after failures", ov.Size())
	}
	for _, v := range victims {
		if n := ov.Node(v.Addr); n != nil && n.Alive() {
			t.Fatalf("victim %v still alive", v)
		}
	}
	if err := mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailFractionKeepPredicate(t *testing.T) {
	ov, mgr, s := setup(t, 100, 3, 2)
	protected := ov.RandomLive(s).Ref().Addr
	FailFraction(ov, mgr, 0.5, s, func(a simnet.Addr) bool { return a == protected })
	n := ov.Node(protected)
	if n == nil || !n.Alive() {
		t.Fatalf("protected node was failed")
	}
}

func TestFailFractionZero(t *testing.T) {
	ov, mgr, s := setup(t, 50, 3, 3)
	if got := FailFraction(ov, mgr, 0, s, nil); len(got) != 0 {
		t.Fatalf("p=0 failed %d nodes", len(got))
	}
}

func TestWaveKeepsPopulationConstant(t *testing.T) {
	ov, mgr, s := setup(t, 300, 3, 4)
	_ = mgr
	before := ov.Size()
	left := Wave(ov, 30, 30, s, nil)
	if left != 30 {
		t.Fatalf("left = %d", left)
	}
	if ov.Size() != before {
		t.Fatalf("population changed: %d -> %d", before, ov.Size())
	}
	if err := ov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWaveRespectsBenignPredicate(t *testing.T) {
	ov, _, s := setup(t, 100, 3, 5)
	// Protect half the nodes: they must all survive the wave.
	protected := map[simnet.Addr]bool{}
	for i, r := range ov.LiveRefs() {
		if i%2 == 0 {
			protected[r.Addr] = true
		}
	}
	Wave(ov, 30, 30, s, func(a simnet.Addr) bool { return !protected[a] })
	for addr := range protected {
		n := ov.Node(addr)
		if n == nil || !n.Alive() {
			t.Fatalf("protected node %d left during wave", addr)
		}
	}
}

func TestWaveSequentialRepairPreservesData(t *testing.T) {
	ov, mgr, s := setup(t, 300, 3, 6)
	keys := make([]id.ID, 150)
	for i := range keys {
		var key id.ID
		s.Bytes(key[:])
		keys[i] = key
		if err := mgr.Insert(key, i); err != nil {
			t.Fatal(err)
		}
	}
	for unit := 0; unit < 5; unit++ {
		Wave(ov, 20, 20, s, nil)
	}
	if mgr.LostCount() != 0 {
		t.Fatalf("sequential waves lost %d items", mgr.LostCount())
	}
	for _, k := range keys {
		if _, ok := mgr.Lookup(k); !ok {
			t.Fatalf("item lost during waves")
		}
	}
}
