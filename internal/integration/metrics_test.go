package integration

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"tap/internal/obs"
)

// scrape fetches and strictly parses one process's /metrics endpoint.
func scrape(t *testing.T, addr string) *obs.Snapshot {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scraping %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scraping %s: status %s", addr, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("scraping %s: content type %q, want %q", addr, ct, obs.ContentType)
	}
	snap, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scraping %s: unparseable exposition: %v", addr, err)
	}
	return snap
}

// sumAcross totals one series (across label sets) over many snapshots.
func sumAcross(snaps []*obs.Snapshot, name string) float64 {
	total := 0.0
	for _, s := range snaps {
		total += s.Sum(name)
	}
	return total
}

func valueAcross(snaps []*obs.Snapshot, name string, labels ...obs.Label) float64 {
	total := 0.0
	for _, s := range snaps {
		if v, ok := s.Value(name, labels...); ok {
			total += v
		}
	}
	return total
}

// TestMetricsScrapeAcrossProcesses is the observability layer's
// headline acceptance test: the same seven-process deployment as
// TestFiveProcessRoundTrip, every process started with -metrics-addr,
// and after the round-trip the test scrapes all seven endpoints and
// asserts cross-process conservation invariants — counters kept by
// independent OS processes must cohere when added up.
//
// The client runs with -linger, holding its process (and /metrics
// endpoint) open until this test closes its stdin, so the client's own
// counters are scrapable after the stream completes.
func TestMetricsScrapeAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()
	boardBin, nodeBin := buildBinaries(t, dir)

	const (
		relays  = 5
		fwHops  = 3
		rpHops  = 2
		nBytes  = 4096
		chunkSz = 512
		chunks  = nBytes / chunkSz
		anchors = fwHops + rpHops
	)

	bp := startProc(t, boardBin, "-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	line := expectLine(t, bp.out, "board", "tapboard metrics listening on", 10*time.Second)
	boardMetrics := strings.TrimSpace(strings.TrimPrefix(line, "tapboard metrics listening on "))
	line = expectLine(t, bp.out, "board", "tapboard listening on", 10*time.Second)
	boardAddr := strings.TrimSpace(strings.TrimPrefix(line, "tapboard listening on "))

	var nodeMetrics []string
	for i := 0; i < relays; i++ {
		rp := startProc(t, nodeBin, "-board", boardAddr, "-refresh", "200ms",
			"-metrics-addr", "127.0.0.1:0")
		what := fmt.Sprintf("relay %d", i)
		line := expectLine(t, rp.out, what, "tapnode metrics listening on", 10*time.Second)
		nodeMetrics = append(nodeMetrics, strings.TrimSpace(strings.TrimPrefix(line, "tapnode metrics listening on ")))
		expectLine(t, rp.out, what, "tapnode addr=", 10*time.Second)
	}

	cp := startProc(t, nodeBin,
		"-board", boardAddr, "-client", "-linger", "-quorum", fmt.Sprint(relays+1),
		"-fwhops", fmt.Sprint(fwHops), "-rphops", fmt.Sprint(rpHops),
		"-bytes", fmt.Sprint(nBytes), "-chunk", fmt.Sprint(chunkSz),
		"-metrics-addr", "127.0.0.1:0")
	line = expectLine(t, cp.out, "client", "tapnode metrics listening on", 10*time.Second)
	clientMetrics := strings.TrimSpace(strings.TrimPrefix(line, "tapnode metrics listening on "))
	nodeMetrics = append(nodeMetrics, clientMetrics)
	expectLine(t, cp.out, "client", "ROUNDTRIP OK", 60*time.Second)

	// Let in-flight frames land: rescrape all transport-bearing processes
	// until total frames out == total frames in and the totals stop
	// moving. Everything below asserts on the settled snapshots.
	var snaps []*obs.Snapshot
	var prevOut, prevIn float64 = -1, -1
	deadline := time.Now().Add(20 * time.Second)
	for {
		snaps = snaps[:0]
		for _, addr := range nodeMetrics {
			snaps = append(snaps, scrape(t, addr))
		}
		out := valueAcross(snaps, "tap_transport_frames_total", obs.Label{Name: "dir", Value: "out"})
		in := valueAcross(snaps, "tap_transport_frames_total", obs.Label{Name: "dir", Value: "in"})
		if out == in && out == prevOut && in == prevIn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frame totals never settled: out=%v in=%v (prev out=%v in=%v)", out, in, prevOut, prevIn)
		}
		prevOut, prevIn = out, in
		time.Sleep(200 * time.Millisecond)
	}

	// Invariant 1 — transport conservation: across the six overlay
	// processes, every frame written to a socket was read from one. The
	// quiesce loop above established equality; pin the totals are real.
	framesOut := valueAcross(snaps, "tap_transport_frames_total", obs.Label{Name: "dir", Value: "out"})
	if framesOut == 0 {
		t.Fatal("no frames crossed any socket — the round-trip cannot have run over TCP")
	}
	bytesOut := valueAcross(snaps, "tap_transport_bytes_total", obs.Label{Name: "dir", Value: "out"})
	bytesIn := valueAcross(snaps, "tap_transport_bytes_total", obs.Label{Name: "dir", Value: "in"})
	if bytesOut != bytesIn {
		t.Errorf("byte conservation: %v written vs %v read", bytesOut, bytesIn)
	}

	// Invariant 2 — no overload anywhere: a healthy localhost run never
	// fills a send queue, so every queue_full drop is a bug.
	if drops := valueAcross(snaps, "tap_transport_dropped_total", obs.Label{Name: "reason", Value: "queue_full"}); drops != 0 {
		t.Errorf("queue_full drops = %v, want 0", drops)
	}

	// Invariant 3 — onion-peel work conservation: each chunk is peeled
	// once per forward hop and each echo once per reply hop, summed over
	// whichever relays hosted the anchors. Retransmissions can only add.
	if peels := valueAcross(snaps, "tap_node_peels_total", obs.Label{Name: "dir", Value: "forward"}); peels < fwHops*chunks {
		t.Errorf("forward peels = %v, want >= %d (%d hops x %d chunks)", peels, fwHops*chunks, fwHops, chunks)
	}
	if peels := valueAcross(snaps, "tap_node_peels_total", obs.Label{Name: "dir", Value: "reply"}); peels < rpHops*chunks {
		t.Errorf("reply peels = %v, want >= %d (%d hops x %d chunks)", peels, rpHops*chunks, rpHops, chunks)
	}

	// Invariant 4 — anchor conservation: the client deployed exactly
	// fw+rp anchors; they live on the relays (hop IDs are unique, so
	// redeploys overwrite, never duplicate), and the client cannot have
	// consumed more acks than installations that happened.
	if held := sumAcross(snaps, "tap_node_anchors"); held != anchors {
		t.Errorf("anchors held across relays = %v, want %d", held, anchors)
	}
	installs := sumAcross(snaps, "tap_node_anchor_installs_total")
	if installs < anchors {
		t.Errorf("anchor installs = %v, want >= %d", installs, anchors)
	}
	clientSnap := scrape(t, clientMetrics)
	if acks := clientSnap.Sum("tap_node_anchor_acks_total"); acks < anchors || acks > installs {
		t.Errorf("client anchor acks = %v, want in [%d, %v]", acks, anchors, installs)
	}

	// Invariant 5 — stream accounting: the client round-tripped every
	// chunk; the responder handled at least that many exit payloads
	// (retransmits can only add) and the client consumed at least one
	// reply per chunk.
	if got := clientSnap.Sum("tap_node_stream_chunks_total"); got != chunks {
		t.Errorf("client stream chunks = %v, want %d", got, chunks)
	}
	if exits := sumAcross(snaps, "tap_node_exit_payloads_total"); exits < chunks {
		t.Errorf("exit payloads = %v, want >= %d", exits, chunks)
	}
	if home := clientSnap.Sum("tap_node_replies_home_total"); home < chunks {
		t.Errorf("client replies home = %v, want >= %d", home, chunks)
	}

	// Invariant 6 — the board agrees with the process count: 5 relays
	// plus the lingering client are registered right now.
	boardSnap := scrape(t, boardMetrics)
	if members, ok := boardSnap.Value("tap_board_members"); !ok || members != relays+1 {
		t.Errorf("board members = %v, want %d", members, relays+1)
	}
	if regs := boardSnap.Sum("tap_board_registrations_total"); regs < relays+1 {
		t.Errorf("board registrations = %v, want >= %d", regs, relays+1)
	}

	// pprof rides the same debug listener on every process.
	resp, err := http.Get("http://" + clientMetrics + "/debug/pprof/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("client pprof index: err=%v status=%v", err, resp)
	}
	if resp != nil {
		resp.Body.Close()
	}

	// Release the lingering client and require a clean exit.
	cp.closeStdin(t)
	if err := cp.wait(30 * time.Second); err != nil {
		t.Fatalf("client exited with error: %v\n%s", err, cp.buf.String())
	}
}
