// Package integration spawns the real binaries — one tapboard, five
// relay tapnodes, one client tapnode — as separate OS processes on
// localhost and asserts that an onion-sealed stream round-trips through
// the overlay. This is the end-to-end pin for the whole real-process
// deployment mode: board registration, peer-table distribution, anchor
// deployment with acks, forward-onion relaying, exit echo, and
// reply-onion return, all over TCP between processes.
package integration

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles tapboard and tapnode into dir.
func buildBinaries(t *testing.T, dir string) (boardBin, nodeBin string) {
	t.Helper()
	boardBin = filepath.Join(dir, "tapboard")
	nodeBin = filepath.Join(dir, "tapnode")
	for _, b := range []struct{ out, pkg string }{
		{boardBin, "tap/cmd/tapboard"},
		{nodeBin, "tap/cmd/tapnode"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}
	return boardBin, nodeBin
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// proc is one spawned child process with captured output.
type proc struct {
	cmd   *exec.Cmd
	out   *bufio.Scanner
	buf   *bytes.Buffer
	stdin io.WriteCloser // held open; closing it releases a -linger child
	done  chan error     // receives the single Wait result
}

// closeStdin signals a lingering child to exit by closing its stdin.
func (p *proc) closeStdin(t *testing.T) {
	t.Helper()
	if err := p.stdin.Close(); err != nil {
		t.Fatalf("closing stdin: %v", err)
	}
}

// wait blocks until the process exits and returns its Wait error.
func (p *proc) wait(timeout time.Duration) error {
	select {
	case err := <-p.done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("process did not exit within %v", timeout)
	}
}

// startProc launches a binary, captures its output, and registers
// cleanup. Exactly one goroutine calls Wait; everyone else reads done.
func startProc(t *testing.T, name string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(name, args...)
	pr, pw := io.Pipe()
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(pw, &buf)
	cmd.Stderr = io.MultiWriter(pw, &buf)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatalf("stdin pipe for %s: %v", name, err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	done := make(chan error, 2)
	go func() {
		err := cmd.Wait()
		pw.Close()
		done <- err
		done <- err
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-done
	})
	return &proc{cmd: cmd, out: bufio.NewScanner(pr), buf: &buf, stdin: stdin, done: done}
}

// expectLine reads lines until one contains want, or times out.
func expectLine(t *testing.T, sc *bufio.Scanner, what, want string, timeout time.Duration) string {
	t.Helper()
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if strings.Contains(sc.Text(), want) {
				found <- sc.Text()
				return
			}
		}
		close(found)
	}()
	select {
	case line, ok := <-found:
		if !ok {
			t.Fatalf("%s: output ended before %q", what, want)
		}
		return line
	case <-time.After(timeout):
		t.Fatalf("%s: no %q within %v", what, want, timeout)
		return ""
	}
}

// TestFiveProcessRoundTrip is the ISSUE's acceptance scenario: a board,
// five relay nodes, and a client — seven OS processes — complete an
// onion-sealed stream round-trip (3 forward hops, 2 reply hops, one of
// the relays doubling as destination).
func TestFiveProcessRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()
	boardBin, nodeBin := buildBinaries(t, dir)

	bp := startProc(t, boardBin, "-listen", "127.0.0.1:0")
	line := expectLine(t, bp.out, "tapboard", "tapboard listening on", 10*time.Second)
	boardAddr := strings.TrimSpace(strings.TrimPrefix(line, "tapboard listening on "))

	const relays = 5
	for i := 0; i < relays; i++ {
		rp := startProc(t, nodeBin, "-board", boardAddr, "-refresh", "200ms")
		expectLine(t, rp.out, fmt.Sprintf("relay %d", i), "tapnode addr=", 10*time.Second)
	}

	// The client waits for all 6 members (5 relays + itself), then
	// streams through a 3-hop forward and 2-hop reply tunnel, with the
	// highest-addressed relay doubling as the destination.
	cp := startProc(t, nodeBin,
		"-board", boardAddr, "-client", "-quorum", fmt.Sprint(relays+1),
		"-fwhops", "3", "-rphops", "2", "-bytes", "4096", "-chunk", "512")
	expectLine(t, cp.out, "client", "ROUNDTRIP OK", 60*time.Second)

	if err := cp.wait(30 * time.Second); err != nil {
		t.Fatalf("client exited with error: %v\n%s", err, cp.buf.String())
	}
}
