package mail

import (
	"bytes"
	"errors"
	"testing"

	"tap/internal/core"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
)

type sys struct {
	ov   *pastry.Overlay
	mgr  *past.Manager
	dir  *tha.Directory
	svc  *core.Service
	mail *Service
	root *rng.Stream
}

func newSys(t testing.TB, n int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, 3)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))
	return &sys{ov: ov, mgr: mgr, dir: dir, svc: svc, mail: NewService(svc), root: root}
}

func (s *sys) initiator(t testing.TB, label string, anchors int) *core.Initiator {
	t.Helper()
	node := s.ov.RandomLive(s.root.Split("pick-" + label))
	in, err := core.NewInitiator(s.svc, node, s.root.Split("init-"+label))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeployDirect(anchors); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSendAndFetch(t *testing.T) {
	s := newSys(t, 300, 1)
	sender := s.initiator(t, "sender", 12)
	recipient := s.initiator(t, "recipient", 12)
	pseudonym := NewPseudonym(s.root.Split("pseud"))

	st, err := sender.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range []string{"first", "second", "third"} {
		if _, err := s.mail.Send(sender, st, pseudonym, []byte(body), false, s.root.SplitN("send", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.mail.Pending(pseudonym); got != 3 {
		t.Fatalf("pending = %d", got)
	}

	tunnels, err := recipient.FormDisjointTunnels(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := s.mail.Fetch(recipient, tunnels[0], tunnels[1], pseudonym, s.root.Split("fetch"))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("fetched %d messages", len(msgs))
	}
	for i, want := range []string{"first", "second", "third"} {
		if string(msgs[i].Body) != want {
			t.Fatalf("msg %d = %q", i, msgs[i].Body)
		}
	}
	// Box drained.
	if got := s.mail.Pending(pseudonym); got != 0 {
		t.Fatalf("pending after fetch = %d", got)
	}
	msgs, err = s.mail.Fetch(recipient, tunnels[0], tunnels[1], pseudonym, s.root.Split("fetch2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("second fetch returned %d messages", len(msgs))
	}
}

func TestReplyPath(t *testing.T) {
	s := newSys(t, 300, 2)
	sender := s.initiator(t, "sender", 16)
	recipient := s.initiator(t, "recipient", 12)
	pseudonym := NewPseudonym(s.root.Split("pseud"))

	st, err := sender.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	bid, err := s.mail.Send(sender, st, pseudonym, []byte("please reply"), true, s.root.Split("send"))
	if err != nil {
		t.Fatal(err)
	}
	if bid.IsZero() {
		t.Fatalf("no bid returned for reply-enabled mail")
	}

	tunnels, err := recipient.FormDisjointTunnels(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := s.mail.Fetch(recipient, tunnels[0], tunnels[1], pseudonym, s.root.Split("fetch"))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || len(msgs[0].ReplyTunnel) == 0 {
		t.Fatalf("reply tunnel not delivered with the message")
	}
	// The recipient answers over the attached reply tunnel.
	target, err := s.mail.Reply(recipient.Node().Ref().Addr, msgs[0], []byte("answer"))
	if err != nil {
		t.Fatal(err)
	}
	if target != bid {
		t.Fatalf("reply landed at %s, want sender bid %s", target.Short(), bid.Short())
	}
	// And the landing node is the sender's.
	if s.ov.OwnerOf(target).ID() != sender.Node().ID() {
		t.Fatalf("bid not owned by the sender")
	}
}

func TestMailSurvivesHopFailures(t *testing.T) {
	s := newSys(t, 400, 3)
	sender := s.initiator(t, "sender", 12)
	recipient := s.initiator(t, "recipient", 12)
	pseudonym := NewPseudonym(s.root.Split("pseud"))
	host := s.ov.OwnerOf(pseudonym).ID()

	st, err := sender.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.mail.Send(sender, st, pseudonym, []byte("resilient"), false, s.root.Split("send")); err != nil {
		t.Fatal(err)
	}

	tunnels, err := recipient.FormDisjointTunnels(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Kill all hop nodes of the recipient's tunnels.
	for _, tun := range tunnels {
		for _, h := range tun.Hops {
			node, ok := s.dir.HopNode(h.HopID)
			if !ok {
				t.Fatal("hop missing")
			}
			if node.ID() == recipient.Node().ID() || node.ID() == host {
				continue
			}
			if err := s.ov.Fail(node.Ref().Addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	msgs, err := s.mail.Fetch(recipient, tunnels[0], tunnels[1], pseudonym, s.root.Split("fetch"))
	if err != nil {
		t.Fatalf("fetch after hop failures: %v", err)
	}
	if len(msgs) != 1 || string(msgs[0].Body) != "resilient" {
		t.Fatalf("mail lost: %v", msgs)
	}
}

func TestReplyWithoutTunnelErrors(t *testing.T) {
	s := newSys(t, 200, 4)
	m := Message{Body: []byte("no reply possible")}
	if _, err := s.mail.Reply(0, m, []byte("x")); err == nil {
		t.Fatalf("reply without tunnel accepted")
	}
}

func TestFetchLostWhenReplyAnchorGone(t *testing.T) {
	s := newSys(t, 300, 5)
	recipient := s.initiator(t, "recipient", 12)
	pseudonym := NewPseudonym(s.root.Split("pseud"))
	tunnels, err := recipient.FormDisjointTunnels(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(tunnels[1].Hops[1].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	_, err = s.mail.Fetch(recipient, tunnels[0], tunnels[1], pseudonym, s.root.Split("fetch"))
	if !errors.Is(err, ErrFetchLost) {
		t.Fatalf("err = %v, want ErrFetchLost", err)
	}
}

func TestMessageCodec(t *testing.T) {
	m := Message{Body: []byte("body"), ReplyTunnel: []byte("rt")}
	got, err := decodeMessage(encodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, m.Body) || !bytes.Equal(got.ReplyTunnel, m.ReplyTunnel) {
		t.Fatalf("round trip mismatch")
	}
	if _, err := decodeMessage([]byte{0xff, 0xff}); err == nil {
		t.Fatalf("junk accepted")
	}
}

func TestPseudonymUnlinkable(t *testing.T) {
	s1 := rng.New(1)
	a := NewPseudonym(s1)
	b := NewPseudonym(s1)
	if a == b {
		t.Fatalf("pseudonyms collide")
	}
	// Same stream state reproduces: deterministic for the owner.
	s2 := rng.New(1)
	if NewPseudonym(s2) != a {
		t.Fatalf("pseudonym not reproducible from the owner's secret stream")
	}
}
