// Package mail implements anonymous email over TAP, the second
// application the paper's introduction motivates: "Current tunneling
// techniques may fail to route the reply back to the sender due to node
// failures along the tunnel, while TAP can route the reply back to the
// sender thanks to its robustness."
//
// A recipient owns a *pseudonym*: a DHT key unlinkable to its node. The
// node owning the pseudonym id hosts the mailbox. Senders deposit mail
// through a forward tunnel (the mailbox never sees the sender); each
// deposited message carries a single-use reply tunnel, so the recipient
// can answer without either party learning the other's identity — mutual
// anonymity built from TAP primitives. The recipient drains its mailbox
// through its own forward/reply tunnel pair, exactly like a §4 file
// retrieval where the "file" is the pending mail.
package mail

import (
	"errors"
	"fmt"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/wire"
)

// Message is one piece of anonymous mail.
type Message struct {
	// Body is the payload. Confidentiality beyond the tunnels (e.g.
	// encrypting to the pseudonym's public key) composes on top and is
	// out of scope here.
	Body []byte
	// ReplyTunnel, when non-empty, is an encoded single-use reply tunnel
	// the recipient can answer through.
	ReplyTunnel []byte
}

func encodeMessage(m Message) []byte {
	w := wire.NewWriter(len(m.Body) + len(m.ReplyTunnel) + 16)
	w.Blob(m.Body)
	w.Blob(m.ReplyTunnel)
	return w.Bytes()
}

func decodeMessage(b []byte) (Message, error) {
	r := wire.NewReader(b)
	var m Message
	m.Body = append([]byte(nil), r.Blob()...)
	m.ReplyTunnel = append([]byte(nil), r.Blob()...)
	if err := r.Done(); err != nil {
		return Message{}, fmt.Errorf("mail: malformed message: %w", err)
	}
	return m, nil
}

// Service hosts every mailbox in the network, keyed by pseudonym. In a
// deployment each mailbox would live in the local storage of the
// pseudonym's owner node; the registry here is that storage, with the
// owner check applied on access.
type Service struct {
	svc   *core.Service
	boxes map[id.ID][]Message
}

// NewService creates an empty mail service.
func NewService(svc *core.Service) *Service {
	return &Service{svc: svc, boxes: make(map[id.ID][]Message)}
}

// Errors.
var (
	ErrReplyLost = errors.New("mail: reply did not reach the sender")
	ErrFetchLost = errors.New("mail: mailbox contents did not reach the recipient")
)

// NewPseudonym mints an unlinkable mailbox id for a recipient: a hash of
// recipient-secret material, like a hopid (nobody can link it to the
// node).
func NewPseudonym(stream *rng.Stream) id.ID {
	var seed [32]byte
	stream.Bytes(seed[:])
	return id.Hash(seed[:])
}

// Pending returns the number of messages waiting for a pseudonym.
func (s *Service) Pending(pseudonym id.ID) int { return len(s.boxes[pseudonym]) }

// Send deposits mail for a pseudonym through the sender's tunnel. When
// withReply is set, a single-use reply tunnel (formed from the sender's
// pool, disjoint from t) is attached so the recipient can answer.
// Returns the encoded reply bid the sender should watch, or the zero id
// when no reply was requested.
func (s *Service) Send(sender *core.Initiator, t *core.Tunnel, pseudonym id.ID, body []byte, withReply bool, stream *rng.Stream) (id.ID, error) {
	msg := Message{Body: body}
	var bid id.ID
	if withReply {
		rep, err := sender.FormTunnel(t.Length())
		if err != nil {
			return id.ID{}, fmt.Errorf("mail: forming reply tunnel: %w", err)
		}
		bid = sender.NewBid()
		rt, err := core.BuildReply(rep, nil, bid, stream)
		if err != nil {
			return id.ID{}, err
		}
		msg.ReplyTunnel = rt.Encode()
	}
	env, err := core.BuildForward(t, nil, pseudonym, encodeMessage(msg), stream)
	if err != nil {
		return id.ID{}, err
	}
	res, err := s.svc.DeliverForward(sender.Node().Ref().Addr, env)
	if err != nil {
		return id.ID{}, fmt.Errorf("mail: deposit: %w", err)
	}
	// The mailbox host (owner of the pseudonym) stores the message.
	got, err := decodeMessage(res.Payload)
	if err != nil {
		return id.ID{}, err
	}
	s.boxes[pseudonym] = append(s.boxes[pseudonym], got)
	return bid, nil
}

// Fetch drains a pseudonym's mailbox anonymously: the request travels the
// recipient's forward tunnel, the mailbox contents come back over the
// recipient's reply tunnel. The mailbox host learns neither who fetched
// nor where the mail went.
func (s *Service) Fetch(recipient *core.Initiator, fwd, rep *core.Tunnel, pseudonym id.ID, stream *rng.Stream) ([]Message, error) {
	bid := recipient.NewBid()
	rt, err := core.BuildReply(rep, nil, bid, stream)
	if err != nil {
		return nil, err
	}
	env, err := core.BuildForward(fwd, nil, pseudonym, rt.Encode(), stream)
	if err != nil {
		return nil, err
	}
	fres, err := s.svc.DeliverForward(recipient.Node().Ref().Addr, env)
	if err != nil {
		return nil, fmt.Errorf("mail: fetch request: %w", err)
	}
	// Mailbox host: bundle pending mail and send it down the reply
	// tunnel, then clear the box.
	pending := s.boxes[pseudonym]
	w := wire.NewWriter(64)
	w.Uint32(uint32(len(pending)))
	for _, m := range pending {
		w.Blob(encodeMessage(m))
	}
	rt2, err := core.DecodeReplyTunnel(fres.Payload)
	if err != nil {
		return nil, err
	}
	rres, err := s.svc.DeliverReply(fres.DestNode.Addr, &core.ReplyEnvelope{
		Target: rt2.First, Hint: rt2.FirstHint, Onion: rt2.Onion, Data: w.Bytes(),
	})
	if err != nil {
		return nil, fmt.Errorf("mail: fetch reply: %w", err)
	}
	if rres.LandedNode.ID != recipient.Node().ID() || rres.Target != bid {
		return nil, ErrFetchLost
	}
	delete(s.boxes, pseudonym)

	r := wire.NewReader(rres.Data)
	count := int(r.Uint32())
	out := make([]Message, 0, count)
	for i := 0; i < count; i++ {
		m, err := decodeMessage(r.Blob())
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("mail: fetch payload: %w", err)
	}
	return out, nil
}

// Reply answers a received message over its attached single-use reply
// tunnel, from the node at fromAddr (typically the recipient's node). The
// responder needs no tunnel of its own: anonymity for the original sender
// comes from the reply tunnel itself. Returns the final target id (the
// sender's bid) so tests can correlate.
func (s *Service) Reply(fromAddr simnet.Addr, m Message, body []byte) (id.ID, error) {
	if len(m.ReplyTunnel) == 0 {
		return id.ID{}, errors.New("mail: message carries no reply tunnel")
	}
	rt, err := core.DecodeReplyTunnel(m.ReplyTunnel)
	if err != nil {
		return id.ID{}, err
	}
	rres, err := s.svc.DeliverReply(fromAddr, &core.ReplyEnvelope{
		Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: body,
	})
	if err != nil {
		return id.ID{}, fmt.Errorf("mail: reply: %w", err)
	}
	return rres.Target, nil
}
