// Package anonfile implements the paper's §4 sample application:
// anonymous file retrieval over TAP tunnels in a Pastry/PAST-style
// system.
//
// The initiator sends M = {hid_2, {hid_3, {fid, K_I, T_r}_K3}_K2}_K1 down
// a forward tunnel; the tail hop hands {fid, K_I, T_r} to the responder —
// the node storing the file for fid. The responder encrypts the file with
// a fresh symmetric key K_f, encrypts K_f under the initiator's temporary
// public key K_I, and sends {f}_Kf, {K_f}_KI back over the reply tunnel
// T_r, which terminates at a bid the initiator's node owns. The responder
// never learns who asked; the initiator never reveals itself to any hop;
// request and reply ride different tunnels so they are hard to correlate.
package anonfile

import (
	"bytes"
	"errors"
	"fmt"

	"tap/internal/core"
	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/wire"
)

// Library is the file population of the network: each file lives on the
// node whose id is numerically closest to its fileid (its responder).
type Library struct {
	svc   *core.Service
	files map[id.ID][]byte
}

// NewLibrary creates an empty file population.
func NewLibrary(svc *core.Service) *Library {
	return &Library{svc: svc, files: make(map[id.ID][]byte)}
}

// Publish stores content under fid = H(name) and returns the fid.
func (l *Library) Publish(name string, content []byte) id.ID {
	fid := id.HashString(name)
	l.files[fid] = append([]byte(nil), content...)
	return fid
}

// PublishID stores content under an explicit fid — the upload reassembly
// path, where the fid arrives as the stream's destination id.
func (l *Library) PublishID(fid id.ID, content []byte) {
	l.files[fid] = append([]byte(nil), content...)
}

// Get returns the stored content for fid.
func (l *Library) Get(fid id.ID) ([]byte, bool) { return l.lookup(fid) }

// lookup returns the content for fid, as the responder node would from
// its local storage.
func (l *Library) lookup(fid id.ID) ([]byte, bool) {
	f, ok := l.files[fid]
	return f, ok
}

// Errors.
var (
	ErrNoSuchFile  = errors.New("anonfile: responder has no file for fid")
	ErrReplyLost   = errors.New("anonfile: reply did not reach the initiator")
	ErrBadRequest  = errors.New("anonfile: malformed request payload")
	ErrBadResponse = errors.New("anonfile: malformed response data")
)

// request is the exit payload {fid, K_I, T_r}.
type request struct {
	FID   id.ID
	KIPub []byte
	Reply []byte // encoded reply tunnel
}

func encodeRequest(r request) []byte {
	w := wire.NewWriter(id.Size + len(r.KIPub) + len(r.Reply) + 16)
	w.ID(r.FID)
	w.Blob(r.KIPub)
	w.Blob(r.Reply)
	return w.Bytes()
}

func decodeRequest(b []byte) (request, error) {
	rd := wire.NewReader(b)
	var r request
	r.FID = rd.ID()
	r.KIPub = append([]byte(nil), rd.Blob()...)
	r.Reply = append([]byte(nil), rd.Blob()...)
	if err := rd.Done(); err != nil {
		return request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

// response is the reply data: {f}_Kf alongside {K_f}_KI.
type response struct {
	SealedFile []byte
	SealedKey  []byte
}

func encodeResponse(r response) []byte {
	w := wire.NewWriter(len(r.SealedFile) + len(r.SealedKey) + 16)
	w.Blob(r.SealedFile)
	w.Blob(r.SealedKey)
	return w.Bytes()
}

func decodeResponse(b []byte) (response, error) {
	rd := wire.NewReader(b)
	var r response
	r.SealedFile = append([]byte(nil), rd.Blob()...)
	r.SealedKey = append([]byte(nil), rd.Blob()...)
	if err := rd.Done(); err != nil {
		return response{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	return r, nil
}

// Result carries the retrieved file plus traversal statistics.
type Result struct {
	Content      []byte
	ForwardStats core.WalkStats
	ReplyStats   core.WalkStats
	Responder    id.ID
}

// Retrieve performs the full §4 exchange with the logical walker:
// initiator → forward tunnel → responder → reply tunnel → initiator. fwd
// and rep must be distinct tunnels owned by in. Hints (optional caches)
// enable the §5 optimization on either direction.
func Retrieve(lib *Library, in *core.Initiator, fwd, rep *core.Tunnel, fid id.ID,
	fwdCache, repCache *core.HintCache, stream *rng.Stream) (*Result, error) {

	// Initiator side: temporary keypair, bid, reply tunnel, request.
	kI, err := crypt.NewBoxKeyPair(stream)
	if err != nil {
		return nil, err
	}
	bid := in.NewBid()
	var rt *core.ReplyTunnel
	if repCache != nil {
		rt, err = core.BuildReplyWithCache(rep, repCache, bid, stream)
	} else {
		rt, err = core.BuildReply(rep, nil, bid, stream)
	}
	if err != nil {
		return nil, err
	}
	payload := encodeRequest(request{FID: fid, KIPub: kI.Public().Bytes(), Reply: rt.Encode()})
	var env *core.Envelope
	if fwdCache != nil {
		env, err = core.BuildForwardWithCache(fwd, fwdCache, fid, payload, stream)
	} else {
		env, err = core.BuildForward(fwd, nil, fid, payload, stream)
	}
	if err != nil {
		return nil, err
	}

	// Forward traversal: the exit payload lands on the responder.
	fres, err := in.Service().DeliverForward(in.Node().Ref().Addr, env)
	if err != nil {
		return nil, err
	}
	req, err := decodeRequest(fres.Payload)
	if err != nil {
		return nil, err
	}

	// Responder side: local lookup, encrypt, send back over T_r.
	content, ok := lib.lookup(req.FID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, req.FID.Short())
	}
	kF, err := crypt.NewKey(stream)
	if err != nil {
		return nil, err
	}
	sealedFile, err := crypt.Seal(kF, stream, content)
	if err != nil {
		return nil, err
	}
	kiPub, err := crypt.ParseBoxPublicKey(req.KIPub)
	if err != nil {
		return nil, err
	}
	sealedKey, err := crypt.BoxSeal(kiPub, stream, kF[:])
	if err != nil {
		return nil, err
	}
	rt2, err := core.DecodeReplyTunnel(req.Reply)
	if err != nil {
		return nil, err
	}
	rres, err := in.Service().DeliverReply(fres.DestNode.Addr, &core.ReplyEnvelope{
		Target: rt2.First, Hint: rt2.FirstHint, Onion: rt2.Onion,
		Data: encodeResponse(response{SealedFile: sealedFile, SealedKey: sealedKey}),
	})
	if err != nil {
		return nil, err
	}
	if rres.LandedNode.ID != in.Node().ID() || rres.Target != bid {
		return nil, ErrReplyLost
	}

	// Initiator side: unwrap K_f with the temporary private key, then the
	// file with K_f.
	resp, err := decodeResponse(rres.Data)
	if err != nil {
		return nil, err
	}
	kfBytes, err := kI.BoxOpen(resp.SealedKey)
	if err != nil {
		return nil, fmt.Errorf("anonfile: unwrapping K_f: %w", err)
	}
	var kf crypt.Key
	copy(kf[:], kfBytes)
	plain, err := crypt.Open(kf, resp.SealedFile)
	if err != nil {
		return nil, fmt.Errorf("anonfile: decrypting file: %w", err)
	}
	if !bytes.Equal(plain, content) {
		// Defensive: the simulation shares memory, so mismatch means a bug.
		return nil, fmt.Errorf("anonfile: decrypted content mismatch")
	}
	return &Result{
		Content:      plain,
		ForwardStats: fres.Stats,
		ReplyStats:   rres.Stats,
		Responder:    fres.DestNode.ID,
	}, nil
}

// --- windowed-stream upload --------------------------------------------------

// UploadServer reassembles windowed-stream uploads into a Library:
// anonymous publication, the §4 exchange run toward the network. Each
// incoming stream is addressed to the fileid it publishes; the stream
// layer delivers segments in order exactly once, and the completed file is
// stored when the FIN arrives.
type UploadServer struct {
	lib *Library
	// Stored counts completed uploads per fid — the exactly-once
	// observable: a correct run stores each upload exactly once no matter
	// how many segments were retransmitted or duplicated in flight.
	Stored map[id.ID]int
}

// ServeUploads installs upload reassembly on eng's incoming streams.
func ServeUploads(lib *Library, eng *core.NetEngine) *UploadServer {
	srv := &UploadServer{lib: lib, Stored: make(map[id.ID]int)}
	eng.OnStream = func(rs *core.RecvStream) {
		var buf []byte
		rs.OnData = func(seq uint64, data []byte) {
			buf = append(buf, data...)
		}
		rs.OnClose = func(rs *core.RecvStream) {
			fid := rs.Dest()
			srv.lib.PublishID(fid, buf)
			srv.Stored[fid]++
		}
	}
	return srv
}

// Upload streams content toward the responder for name's fid over the
// initiator's forward tunnel: every segment rides the tunnel as a sealed
// envelope, so the responder learns the file and the tunnel exit, never
// the initiator. Writes are pumped through the send window as
// acknowledgments free space; done fires with the stream outcome once the
// FIN is acknowledged. Returns the fid and the stream for inspection.
func Upload(eng *core.NetEngine, in *core.Initiator, tun *core.Tunnel, cache *core.HintCache,
	name string, content []byte, cfg core.StreamConfig, done func(ok bool)) (id.ID, *core.Stream) {

	fid := id.HashString(name)
	s := eng.OpenTunnelStream(in.Node().Ref().Addr, tun, cache, fid, cfg)
	s.OnComplete = done
	off := 0
	pump := func() {
		for off < len(content) {
			want := len(content) - off
			n := s.Write(content[off:])
			off += n
			if n < want {
				return // window full; resumed by OnWritable
			}
		}
		s.Close()
	}
	s.OnWritable = pump
	pump()
	return fid, s
}
