// Package anonfile implements the paper's §4 sample application:
// anonymous file retrieval over TAP tunnels in a Pastry/PAST-style
// system.
//
// The initiator sends M = {hid_2, {hid_3, {fid, K_I, T_r}_K3}_K2}_K1 down
// a forward tunnel; the tail hop hands {fid, K_I, T_r} to the responder —
// the node storing the file for fid. The responder encrypts the file with
// a fresh symmetric key K_f, encrypts K_f under the initiator's temporary
// public key K_I, and sends {f}_Kf, {K_f}_KI back over the reply tunnel
// T_r, which terminates at a bid the initiator's node owns. The responder
// never learns who asked; the initiator never reveals itself to any hop;
// request and reply ride different tunnels so they are hard to correlate.
package anonfile

import (
	"bytes"
	"errors"
	"fmt"

	"tap/internal/core"
	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/wire"
)

// Library is the file population of the network: each file lives on the
// node whose id is numerically closest to its fileid (its responder).
type Library struct {
	svc   *core.Service
	files map[id.ID][]byte
}

// NewLibrary creates an empty file population.
func NewLibrary(svc *core.Service) *Library {
	return &Library{svc: svc, files: make(map[id.ID][]byte)}
}

// Publish stores content under fid = H(name) and returns the fid.
func (l *Library) Publish(name string, content []byte) id.ID {
	fid := id.HashString(name)
	l.files[fid] = append([]byte(nil), content...)
	return fid
}

// lookup returns the content for fid, as the responder node would from
// its local storage.
func (l *Library) lookup(fid id.ID) ([]byte, bool) {
	f, ok := l.files[fid]
	return f, ok
}

// Errors.
var (
	ErrNoSuchFile  = errors.New("anonfile: responder has no file for fid")
	ErrReplyLost   = errors.New("anonfile: reply did not reach the initiator")
	ErrBadRequest  = errors.New("anonfile: malformed request payload")
	ErrBadResponse = errors.New("anonfile: malformed response data")
)

// request is the exit payload {fid, K_I, T_r}.
type request struct {
	FID   id.ID
	KIPub []byte
	Reply []byte // encoded reply tunnel
}

func encodeRequest(r request) []byte {
	w := wire.NewWriter(id.Size + len(r.KIPub) + len(r.Reply) + 16)
	w.ID(r.FID)
	w.Blob(r.KIPub)
	w.Blob(r.Reply)
	return w.Bytes()
}

func decodeRequest(b []byte) (request, error) {
	rd := wire.NewReader(b)
	var r request
	r.FID = rd.ID()
	r.KIPub = append([]byte(nil), rd.Blob()...)
	r.Reply = append([]byte(nil), rd.Blob()...)
	if err := rd.Done(); err != nil {
		return request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return r, nil
}

// response is the reply data: {f}_Kf alongside {K_f}_KI.
type response struct {
	SealedFile []byte
	SealedKey  []byte
}

func encodeResponse(r response) []byte {
	w := wire.NewWriter(len(r.SealedFile) + len(r.SealedKey) + 16)
	w.Blob(r.SealedFile)
	w.Blob(r.SealedKey)
	return w.Bytes()
}

func decodeResponse(b []byte) (response, error) {
	rd := wire.NewReader(b)
	var r response
	r.SealedFile = append([]byte(nil), rd.Blob()...)
	r.SealedKey = append([]byte(nil), rd.Blob()...)
	if err := rd.Done(); err != nil {
		return response{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	return r, nil
}

// Result carries the retrieved file plus traversal statistics.
type Result struct {
	Content      []byte
	ForwardStats core.WalkStats
	ReplyStats   core.WalkStats
	Responder    id.ID
}

// Retrieve performs the full §4 exchange with the logical walker:
// initiator → forward tunnel → responder → reply tunnel → initiator. fwd
// and rep must be distinct tunnels owned by in. Hints (optional caches)
// enable the §5 optimization on either direction.
func Retrieve(lib *Library, in *core.Initiator, fwd, rep *core.Tunnel, fid id.ID,
	fwdCache, repCache *core.HintCache, stream *rng.Stream) (*Result, error) {

	// Initiator side: temporary keypair, bid, reply tunnel, request.
	kI, err := crypt.NewBoxKeyPair(stream)
	if err != nil {
		return nil, err
	}
	bid := in.NewBid()
	var rt *core.ReplyTunnel
	if repCache != nil {
		rt, err = core.BuildReplyWithCache(rep, repCache, bid, stream)
	} else {
		rt, err = core.BuildReply(rep, nil, bid, stream)
	}
	if err != nil {
		return nil, err
	}
	payload := encodeRequest(request{FID: fid, KIPub: kI.Public().Bytes(), Reply: rt.Encode()})
	var env *core.Envelope
	if fwdCache != nil {
		env, err = core.BuildForwardWithCache(fwd, fwdCache, fid, payload, stream)
	} else {
		env, err = core.BuildForward(fwd, nil, fid, payload, stream)
	}
	if err != nil {
		return nil, err
	}

	// Forward traversal: the exit payload lands on the responder.
	fres, err := in.Service().DeliverForward(in.Node().Ref().Addr, env)
	if err != nil {
		return nil, err
	}
	req, err := decodeRequest(fres.Payload)
	if err != nil {
		return nil, err
	}

	// Responder side: local lookup, encrypt, send back over T_r.
	content, ok := lib.lookup(req.FID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, req.FID.Short())
	}
	kF, err := crypt.NewKey(stream)
	if err != nil {
		return nil, err
	}
	sealedFile, err := crypt.Seal(kF, stream, content)
	if err != nil {
		return nil, err
	}
	kiPub, err := crypt.ParseBoxPublicKey(req.KIPub)
	if err != nil {
		return nil, err
	}
	sealedKey, err := crypt.BoxSeal(kiPub, stream, kF[:])
	if err != nil {
		return nil, err
	}
	rt2, err := core.DecodeReplyTunnel(req.Reply)
	if err != nil {
		return nil, err
	}
	rres, err := in.Service().DeliverReply(fres.DestNode.Addr, &core.ReplyEnvelope{
		Target: rt2.First, Hint: rt2.FirstHint, Onion: rt2.Onion,
		Data: encodeResponse(response{SealedFile: sealedFile, SealedKey: sealedKey}),
	})
	if err != nil {
		return nil, err
	}
	if rres.LandedNode.ID != in.Node().ID() || rres.Target != bid {
		return nil, ErrReplyLost
	}

	// Initiator side: unwrap K_f with the temporary private key, then the
	// file with K_f.
	resp, err := decodeResponse(rres.Data)
	if err != nil {
		return nil, err
	}
	kfBytes, err := kI.BoxOpen(resp.SealedKey)
	if err != nil {
		return nil, fmt.Errorf("anonfile: unwrapping K_f: %w", err)
	}
	var kf crypt.Key
	copy(kf[:], kfBytes)
	plain, err := crypt.Open(kf, resp.SealedFile)
	if err != nil {
		return nil, fmt.Errorf("anonfile: decrypting file: %w", err)
	}
	if !bytes.Equal(plain, content) {
		// Defensive: the simulation shares memory, so mismatch means a bug.
		return nil, fmt.Errorf("anonfile: decrypted content mismatch")
	}
	return &Result{
		Content:      plain,
		ForwardStats: fres.Stats,
		ReplyStats:   rres.Stats,
		Responder:    fres.DestNode.ID,
	}, nil
}
