package anonfile

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
)

type sys struct {
	ov   *pastry.Overlay
	mgr  *past.Manager
	dir  *tha.Directory
	svc  *core.Service
	lib  *Library
	root *rng.Stream
}

func newSys(t testing.TB, n, k int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, k)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))
	return &sys{ov: ov, mgr: mgr, dir: dir, svc: svc, lib: NewLibrary(svc), root: root}
}

func (s *sys) initiator(t testing.TB, anchors int) *core.Initiator {
	t.Helper()
	node := s.ov.RandomLive(s.root.Split("pick"))
	in, err := core.NewInitiator(s.svc, node, s.root.Split("init"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeployDirect(anchors); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRetrieveEndToEnd(t *testing.T) {
	s := newSys(t, 300, 3, 1)
	content := bytes.Repeat([]byte("tap paper "), 500)
	fid := s.lib.Publish("papers/tap.pdf", content)
	in := s.initiator(t, 20)
	fwd, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Retrieve(s.lib, in, fwd, rep, fid, nil, nil, s.root.Split("r"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Content, content) {
		t.Fatalf("content mismatch")
	}
	if res.Responder != s.ov.OwnerOf(fid).ID() {
		t.Fatalf("responder %s is not the fid owner", res.Responder.Short())
	}
	if len(res.ForwardStats.HopNodes) != 3 || len(res.ReplyStats.HopNodes) != 3 {
		t.Fatalf("hops fwd=%d rep=%d", len(res.ForwardStats.HopNodes), len(res.ReplyStats.HopNodes))
	}
	// Anonymity sanity: the responder is not told the initiator. The
	// request payload contains only fid, K_I, and the reply tunnel; none
	// of the forward hop nodes is the initiator (it never relays its own
	// message in this walk).
	for _, hop := range res.ForwardStats.HopNodes {
		if hop.ID == in.Node().ID() {
			t.Logf("note: initiator happens to serve one of its own hops (possible by chance)")
		}
	}
}

func TestRetrieveUnknownFile(t *testing.T) {
	s := newSys(t, 200, 3, 2)
	in := s.initiator(t, 20)
	fwd, _ := in.FormTunnel(3)
	rep, _ := in.FormTunnel(3)
	_, err := Retrieve(s.lib, in, fwd, rep, id.HashString("missing"), nil, nil, s.root.Split("r"))
	if !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v, want ErrNoSuchFile", err)
	}
}

func TestRetrieveSurvivesHopFailures(t *testing.T) {
	// The paper's headline use case: kill the current hop node of every
	// hop on both tunnels; retrieval still works.
	s := newSys(t, 400, 3, 3)
	content := []byte("resilient content")
	fid := s.lib.Publish("f", content)
	in := s.initiator(t, 20)
	fwd, _ := in.FormTunnel(3)
	rep, _ := in.FormTunnel(3)
	for _, tun := range []*core.Tunnel{fwd, rep} {
		for _, h := range tun.Hops {
			node, ok := s.dir.HopNode(h.HopID)
			if !ok {
				t.Fatal("hop missing")
			}
			if node.ID() == in.Node().ID() || node.ID() == s.ov.OwnerOf(fid).ID() {
				continue // keep the endpoints alive
			}
			if err := s.ov.Fail(node.Ref().Addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Retrieve(s.lib, in, fwd, rep, fid, nil, nil, s.root.Split("r"))
	if err != nil {
		t.Fatalf("retrieval failed after hop-node failures: %v", err)
	}
	if !bytes.Equal(res.Content, content) {
		t.Fatalf("content mismatch after failures")
	}
}

func TestRetrieveFailsWhenReplyAnchorLost(t *testing.T) {
	s := newSys(t, 300, 3, 4)
	fid := s.lib.Publish("f", []byte("x"))
	in := s.initiator(t, 20)
	fwd, _ := in.FormTunnel(3)
	rep, _ := in.FormTunnel(3)
	// Destroy the middle reply hop's replica set simultaneously.
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(rep.Hops[1].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	_, err := Retrieve(s.lib, in, fwd, rep, fid, nil, nil, s.root.Split("r"))
	if !errors.Is(err, ErrReplyLost) {
		t.Fatalf("err = %v, want ErrReplyLost", err)
	}
}

func TestRetrieveWithHints(t *testing.T) {
	s := newSys(t, 400, 3, 5)
	content := []byte("fast content")
	fid := s.lib.Publish("f", content)
	in := s.initiator(t, 20)
	fwd, _ := in.FormTunnel(4)
	rep, _ := in.FormTunnel(4)

	plain, err := Retrieve(s.lib, in, fwd, rep, fid, nil, nil, s.root.Split("r1"))
	if err != nil {
		t.Fatal(err)
	}
	fc, rc := core.NewHintCache(), core.NewHintCache()
	if err := fc.Refresh(s.svc, fwd); err != nil {
		t.Fatal(err)
	}
	if err := rc.Refresh(s.svc, rep); err != nil {
		t.Fatal(err)
	}
	opt, err := Retrieve(s.lib, in, fwd, rep, fid, fc, rc, s.root.Split("r2"))
	if err != nil {
		t.Fatal(err)
	}
	total := func(r *Result) int { return r.ForwardStats.OverlayHops + r.ReplyStats.OverlayHops }
	if total(opt) >= total(plain) {
		t.Fatalf("hints did not reduce hops: %d vs %d", total(opt), total(plain))
	}
	if opt.ForwardStats.HintHits != 4 {
		t.Fatalf("forward hint hits %d, want 4", opt.ForwardStats.HintHits)
	}
}

func TestUploadUnderLossAndReorder(t *testing.T) {
	// Satellite for the windowed-stream port: a chunked anonymous upload
	// over a 3-hop tunnel survives 10% message loss plus reordering, the
	// reassembled file is byte-identical, and completion is exactly-once.
	s := newSys(t, 300, 3, 6)
	kernel := simnet.NewKernel()
	kernel.MaxSteps = 10_000_000
	net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(6), s.ov.NumAddrs())
	s.svc.Net = net
	eng := core.NewNetEngine(s.svc, net)
	srv := ServeUploads(s.lib, eng)

	in := s.initiator(t, 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewHintCache()
	if err := cache.Refresh(s.svc, tun); err != nil {
		t.Fatal(err)
	}

	net.InstallFaults(&simnet.FaultPlan{Seed: 4, LossRate: 0.1})
	// Deterministic reordering: hold back a third of the messages long
	// enough to land behind their successors.
	net.ExtraDelay = func(src, dst simnet.Addr, msg simnet.Message) simnet.Time {
		if (uint64(src)+uint64(dst)+uint64(msg.SizeBytes()))%3 == 0 {
			return simnet.Time(150 * time.Millisecond)
		}
		return 0
	}

	content := make([]byte, 40_000)
	for i := range content {
		content[i] = byte(i*13 + 5)
	}
	var okDone bool
	fid, st := Upload(eng, in, tun, cache, "papers/uploaded.pdf", content,
		core.StreamConfig{Window: 16}, func(ok bool) { okDone = ok })
	if err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !okDone {
		_, why := st.Failed()
		t.Fatalf("upload failed under loss+reorder: %s", why)
	}
	got, ok := s.lib.Get(fid)
	if !ok {
		t.Fatal("uploaded file missing from library")
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("reassembled %d bytes, want %d byte-identical", len(got), len(content))
	}
	if srv.Stored[fid] != 1 {
		t.Fatalf("upload completed %d times, want exactly once", srv.Stored[fid])
	}
	if st.SegsRetx == 0 {
		t.Fatal("10% loss produced zero retransmissions; faults not applied?")
	}

	// The published file is now retrievable through the §4 exchange.
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Retrieve(s.lib, in, tun, rep, fid, nil, nil, s.root.Split("r"))
	if err != nil {
		t.Fatalf("retrieving the uploaded file: %v", err)
	}
	if !bytes.Equal(res.Content, content) {
		t.Fatal("retrieved content does not match the upload")
	}
}

func TestRequestResponseCodecs(t *testing.T) {
	req := request{FID: id.HashString("f"), KIPub: []byte("pubkey"), Reply: []byte("tunnel")}
	got, err := decodeRequest(encodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.FID != req.FID || !bytes.Equal(got.KIPub, req.KIPub) || !bytes.Equal(got.Reply, req.Reply) {
		t.Fatalf("request round trip mismatch")
	}
	if _, err := decodeRequest([]byte("junk")); err == nil {
		t.Fatalf("junk request accepted")
	}
	resp := response{SealedFile: []byte("file"), SealedKey: []byte("key")}
	got2, err := decodeResponse(encodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.SealedFile, resp.SealedFile) || !bytes.Equal(got2.SealedKey, resp.SealedKey) {
		t.Fatalf("response round trip mismatch")
	}
	if _, err := decodeResponse([]byte{0xff}); err == nil {
		t.Fatalf("junk response accepted")
	}
}
