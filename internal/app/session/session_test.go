package session

import (
	"errors"
	"fmt"
	"testing"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
)

type sys struct {
	ov   *pastry.Overlay
	mgr  *past.Manager
	dir  *tha.Directory
	svc  *core.Service
	root *rng.Stream
}

func newSys(t testing.TB, n, k int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, k)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))
	return &sys{ov: ov, mgr: mgr, dir: dir, svc: svc, root: root}
}

func (s *sys) initiator(t testing.TB, anchors int) *core.Initiator {
	t.Helper()
	node := s.ov.RandomLive(s.root.Split("pick"))
	in, err := core.NewInitiator(s.svc, node, s.root.Split("init"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeployDirect(anchors); err != nil {
		t.Fatal(err)
	}
	return in
}

func echoUpper(req []byte) []byte {
	out := make([]byte, len(req))
	for i, b := range req {
		if b >= 'a' && b <= 'z' {
			b -= 32
		}
		out[i] = b
	}
	return out
}

func TestSessionExchanges(t *testing.T) {
	s := newSys(t, 300, 3, 1)
	in := s.initiator(t, 20)
	server := id.HashString("login.example")
	sess, err := Open(in, server, 3, s.root.Split("sess"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		req := []byte(fmt.Sprintf("cmd-%d", i))
		resp, err := sess.Exchange(req, echoUpper)
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if string(resp) != fmt.Sprintf("CMD-%d", i) {
			t.Fatalf("exchange %d: resp %q", i, resp)
		}
	}
	if sess.Exchanges() != 10 {
		t.Fatalf("exchanges = %d", sess.Exchanges())
	}
}

func TestSessionSurvivesChurnBaselineDies(t *testing.T) {
	// The paper's motivating comparison: a long-standing session under
	// continuous hop-node failures. TAP keeps exchanging; the fixed-node
	// baseline dies with its first relay.
	s := newSys(t, 500, 3, 2)
	in := s.initiator(t, 20)
	server := id.HashString("login.example")
	sess, err := Open(in, server, 3, s.root.Split("sess"))
	if err != nil {
		t.Fatal(err)
	}
	fsess, err := OpenFixed(s.svc, server, 3, s.root.Split("fixed"))
	if err != nil {
		t.Fatal(err)
	}
	churnStream := s.root.Split("churn")
	tapOK, fixedOK := 0, 0
	var fixedDead bool
	for round := 0; round < 15; round++ {
		// Kill a random live node each round (sparing the endpoints).
		for {
			victim := s.ov.RandomLive(churnStream)
			if victim.ID() == in.Node().ID() || victim.ID() == s.ov.OwnerOf(server).ID() {
				continue
			}
			if err := s.ov.Fail(victim.Ref().Addr); err != nil {
				t.Fatal(err)
			}
			break
		}
		if _, err := sess.Exchange([]byte("ping"), echoUpper); err == nil {
			tapOK++
		} else if !errors.Is(err, ErrSessionBroken) {
			t.Fatalf("unexpected TAP session error: %v", err)
		}
		if !fixedDead {
			if _, err := fsess.Exchange([]byte("ping"), echoUpper); err == nil {
				fixedOK++
			} else if errors.Is(err, core.ErrRelayDead) {
				fixedDead = true
			} else {
				t.Fatalf("unexpected fixed session error: %v", err)
			}
		}
	}
	if tapOK != 15 {
		t.Fatalf("TAP session only survived %d/15 rounds (sequential failures with k=3 should never break it)", tapOK)
	}
	_ = fixedOK // the fixed session may or may not die in 15 random kills of 500 nodes
}

func TestSessionTargetedHopKills(t *testing.T) {
	// Deliberately kill the current hop node of a tunnel hop before every
	// exchange; the session must keep working.
	s := newSys(t, 400, 3, 3)
	in := s.initiator(t, 24)
	server := id.HashString("srv")
	sess, err := Open(in, server, 3, s.root.Split("sess"))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		h := sess.fwd.Hops[round%3]
		node, ok := s.dir.HopNode(h.HopID)
		if !ok {
			t.Fatal("hop missing")
		}
		if node.ID() != in.Node().ID() && node.ID() != s.ov.OwnerOf(server).ID() {
			if err := s.ov.Fail(node.Ref().Addr); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sess.Exchange([]byte("x"), echoUpper); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestSessionBreaksOnAnchorLoss(t *testing.T) {
	s := newSys(t, 300, 3, 4)
	in := s.initiator(t, 20)
	sess, err := Open(in, id.HashString("srv"), 3, s.root.Split("sess"))
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(sess.fwd.Hops[1].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	_, err = sess.Exchange([]byte("x"), echoUpper)
	if !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("err = %v, want ErrSessionBroken", err)
	}
}

func TestFixedSessionLifecycle(t *testing.T) {
	s := newSys(t, 300, 3, 6)
	server := id.HashString("srv")
	fsess, err := OpenFixed(s.svc, server, 3, s.root.Split("fixed"))
	if err != nil {
		t.Fatal(err)
	}
	if fsess.Exchanges() != 0 {
		t.Fatalf("fresh session has exchanges")
	}
	for i := 0; i < 4; i++ {
		resp, err := fsess.Exchange([]byte("req"), echoUpper)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "REQ" {
			t.Fatalf("resp %q", resp)
		}
	}
	if fsess.Exchanges() != 4 {
		t.Fatalf("exchanges = %d", fsess.Exchanges())
	}
	// Kill one of its relays: permanently dead.
	if err := s.ov.Fail(fsess.fwd.Relays[1].Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := fsess.Exchange([]byte("req"), echoUpper); !errors.Is(err, core.ErrRelayDead) {
		t.Fatalf("err = %v, want ErrRelayDead", err)
	}
	if fsess.Exchanges() != 4 {
		t.Fatalf("failed exchange counted")
	}
}

func TestOpenFixedErrors(t *testing.T) {
	s := newSys(t, 3, 3, 7)
	if _, err := OpenFixed(s.svc, id.HashString("srv"), 10, s.root.Split("f")); err == nil {
		t.Fatalf("oversized fixed session accepted")
	}
}

func TestSessionReplyLostSurfaced(t *testing.T) {
	// Lose the reply tunnel's middle anchor: the forward leg works, the
	// reply misroutes, and the session reports ErrReplyLost.
	s := newSys(t, 300, 3, 8)
	in := s.initiator(t, 20)
	sess, err := Open(in, id.HashString("srv"), 3, s.root.Split("sess"))
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(sess.rep.Hops[1].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	if _, err := sess.Exchange([]byte("x"), echoUpper); !errors.Is(err, ErrReplyLost) {
		t.Fatalf("err = %v, want ErrReplyLost", err)
	}
}

func TestOpenRequiresEnoughAnchors(t *testing.T) {
	s := newSys(t, 200, 3, 5)
	in := s.initiator(t, 4) // needs 6 for two length-3 tunnels
	if _, err := Open(in, id.HashString("srv"), 3, s.root.Split("sess")); err == nil {
		t.Fatalf("session opened with too few anchors")
	}
}
