// Package session implements the motivating application from the paper's
// introduction: long-standing (remote-login-style) sessions that must
// survive node failures on the anonymous path. "Current tunneling
// techniques have a problem in maintaining long-standing remote login
// sessions, if a node on a tunnel fails. However, TAP can support
// long-standing remote login sessions in the face of node failures."
//
// A Session binds a forward tunnel and a reply tunnel between an
// initiator and a server key. Each Exchange carries one request down the
// forward tunnel and one response back over the reply tunnel. The
// fixed-node baseline (FixedSession) exists for the comparison: it dies
// with the first relay failure.
package session

import (
	"errors"
	"fmt"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/rng"
)

// Handler is the server side of a session: it receives a request payload
// and produces a response. In the simulation the handler runs at the node
// owning the server key.
type Handler func(req []byte) []byte

// Session is a TAP-backed long-standing session.
type Session struct {
	in     *core.Initiator
	fwd    *core.Tunnel
	rep    *core.Tunnel
	server id.ID
	stream *rng.Stream

	exchanges int
}

// Errors.
var (
	ErrSessionBroken = errors.New("session: tunnel broken (anchor lost); session must be re-established")
	ErrReplyLost     = errors.New("session: reply did not return to the initiator")
)

// Open establishes a session from the initiator to the owner of server,
// forming fresh forward and reply tunnels of length l from the
// initiator's anchor pool (which must hold at least 2·l live anchors).
func Open(in *core.Initiator, server id.ID, l int, stream *rng.Stream) (*Session, error) {
	tunnels, err := in.FormDisjointTunnels(2, l)
	if err != nil {
		return nil, fmt.Errorf("session: forming tunnels: %w", err)
	}
	return &Session{in: in, fwd: tunnels[0], rep: tunnels[1], server: server, stream: stream}, nil
}

// Exchanges returns the number of successful request/response round
// trips.
func (s *Session) Exchanges() int { return s.exchanges }

// Exchange sends one request and returns the server's response. The
// session survives any hop-node failures as long as every anchor keeps a
// live replica; a lost anchor surfaces as ErrSessionBroken.
func (s *Session) Exchange(req []byte, handle Handler) ([]byte, error) {
	bid := s.in.NewBid()
	rt, err := core.BuildReply(s.rep, nil, bid, s.stream)
	if err != nil {
		return nil, err
	}
	// The request carries the reply tunnel so the server can answer.
	payload := append(rt.Encode(), req...)
	prefix := len(rt.Encode())
	env, err := core.BuildForward(s.fwd, nil, s.server, payload, s.stream)
	if err != nil {
		return nil, err
	}
	fres, err := s.in.Service().DeliverForward(s.in.Node().Ref().Addr, env)
	if err != nil {
		if errors.Is(err, core.ErrHopLost) {
			return nil, fmt.Errorf("%w: %v", ErrSessionBroken, err)
		}
		return nil, err
	}
	// Server side: handle and reply over the embedded tunnel.
	rt2, err := core.DecodeReplyTunnel(fres.Payload[:prefix])
	if err != nil {
		return nil, err
	}
	respData := handle(fres.Payload[prefix:])
	rres, err := s.in.Service().DeliverReply(fres.DestNode.Addr, &core.ReplyEnvelope{
		Target: rt2.First, Hint: rt2.FirstHint, Onion: rt2.Onion, Data: respData,
	})
	if err != nil {
		return nil, err
	}
	if rres.LandedNode.ID != s.in.Node().ID() || rres.Target != bid {
		return nil, ErrReplyLost
	}
	s.exchanges++
	return rres.Data, nil
}

// FixedSession is the baseline: the same exchange pattern over fixed-node
// tunnels. One relay failure kills it permanently.
type FixedSession struct {
	svc    *core.Service
	fwd    *core.FixedTunnel
	server id.ID
	stream *rng.Stream

	exchanges int
}

// OpenFixed establishes a baseline session.
func OpenFixed(svc *core.Service, server id.ID, l int, stream *rng.Stream) (*FixedSession, error) {
	ft, err := core.FormFixed(svc.OV, l, stream)
	if err != nil {
		return nil, err
	}
	return &FixedSession{svc: svc, fwd: ft, server: server, stream: stream}, nil
}

// Exchanges returns the number of successful round trips.
func (s *FixedSession) Exchanges() int { return s.exchanges }

// Exchange sends one request over the fixed tunnel. The response returns
// over the same fixed path (as those systems do), so it fails if any
// relay is down in either direction.
func (s *FixedSession) Exchange(req []byte, handle Handler) ([]byte, error) {
	sealed, err := core.BuildFixedForward(s.fwd, s.server, req, s.stream)
	if err != nil {
		return nil, err
	}
	_, payload, err := s.svc.DeliverFixed(s.fwd, sealed)
	if err != nil {
		return nil, err
	}
	resp := handle(payload)
	// Reply retraces the fixed path; aliveness is the only requirement
	// for the model (layer keys are symmetric and already shared).
	if !s.fwd.Alive(s.svc.OV) {
		return nil, core.ErrRelayDead
	}
	s.exchanges++
	return resp, nil
}
