// Package detect addresses the second limitation the paper lists for
// itself: "TAP does not have a mechanism to detect corrupted/malicious
// tunnels. It requires users to reform their tunnels periodically ... In
// our next steps, we hope to address these issues."
//
// Two facts shape what detection can and cannot do:
//
//   - Layers are authenticated (encrypt-then-MAC), so a misbehaving hop
//     cannot modify traffic undetectably — it can only *drop* it. Drops
//     are observable end-to-end: the initiator probes its own tunnel by
//     sending itself a nonce through it and waiting for the echo.
//   - A *quietly* corrupted tunnel — every hop anchor leaked to a passive
//     colluding adversary — is indistinguishable from a healthy one by
//     any probe. Against that, the only defense remains the paper's
//     periodic refresh, which the Monitor automates.
//
// Prober implements the active check; Monitor combines probing with the
// refresh policy into the tunnel lifecycle manager the paper sketches.
package detect

import (
	"bytes"
	"errors"
	"fmt"

	"tap/internal/core"
	"tap/internal/rng"
)

// Prober sends end-to-end self-probes through tunnels.
type Prober struct {
	svc    *core.Service
	stream *rng.Stream

	// Probes and Failures count lifetime activity.
	Probes   int
	Failures int
}

// NewProber returns a prober drawing nonces from stream.
func NewProber(svc *core.Service, stream *rng.Stream) *Prober {
	return &Prober{svc: svc, stream: stream}
}

// ErrProbeFailed reports an unhealthy tunnel: the probe did not come back
// intact. The wrapped cause distinguishes a lost anchor (re-form
// immediately) from a drop (hop misbehaving or transient).
var ErrProbeFailed = errors.New("detect: tunnel probe failed")

// Probe pushes a random nonce through the tunnel addressed to an id the
// initiator itself owns, and verifies the nonce returns intact. In
// deployment the failure signal is a timeout; the walker surfaces the
// cause directly, which tests assert on.
func (p *Prober) Probe(in *core.Initiator, t *core.Tunnel) error {
	p.Probes++
	nonce := make([]byte, 32)
	p.stream.Bytes(nonce)
	// The destination is a bid: the exit hop routes the payload straight
	// back to the initiator's node, closing the loop without involving
	// any cooperating responder.
	bid := in.NewBid()
	env, err := core.BuildForward(t, nil, bid, nonce, p.stream)
	if err != nil {
		p.Failures++
		return fmt.Errorf("%w: %v", ErrProbeFailed, err)
	}
	res, err := in.Service().DeliverForward(in.Node().Ref().Addr, env)
	if err != nil {
		p.Failures++
		return fmt.Errorf("%w: %v", ErrProbeFailed, err)
	}
	if res.DestNode.ID != in.Node().ID() {
		p.Failures++
		return fmt.Errorf("%w: probe landed on %s", ErrProbeFailed, res.DestNode.ID.Short())
	}
	if !bytes.Equal(res.Payload, nonce) {
		p.Failures++
		return fmt.Errorf("%w: probe payload corrupted", ErrProbeFailed)
	}
	return nil
}

// ProbeN runs n probes and returns the number that succeeded. Useful
// against probabilistic droppers, which single probes miss.
func (p *Prober) ProbeN(in *core.Initiator, t *core.Tunnel, n int) int {
	ok := 0
	for i := 0; i < n; i++ {
		if p.Probe(in, t) == nil {
			ok++
		}
	}
	return ok
}

// Monitor manages one logical tunnel slot for an initiator: it probes
// before use, replaces broken tunnels immediately, and refreshes healthy
// ones on a schedule (the paper's Figure 5 policy) so a quietly
// corrupted tunnel is retired before it accumulates much traffic.
type Monitor struct {
	in     *core.Initiator
	prober *Prober
	length int

	// RefreshEvery retires the tunnel after this many ticks even when
	// healthy. Zero disables scheduled refresh (probe-only mode).
	RefreshEvery int
	// ProbesPerTick is how many probes each Tick spends. More probes
	// catch lower drop rates: a hop dropping with probability q survives
	// one tick with (1-q)^ProbesPerTick.
	ProbesPerTick int

	tunnel    *core.Tunnel
	age       int
	Replaced  int // tunnels replaced after failed probes
	Refreshed int // tunnels retired by the schedule
}

// NewMonitor creates a monitor managing tunnels of the given length. The
// initiator's pool must be able to sustain a tunnel (length anchors, plus
// replacements over time — the monitor deploys replacements itself).
func NewMonitor(in *core.Initiator, prober *Prober, length int) (*Monitor, error) {
	m := &Monitor{
		in:            in,
		prober:        prober,
		length:        length,
		RefreshEvery:  10,
		ProbesPerTick: 1,
	}
	if err := m.replace(false); err != nil {
		return nil, err
	}
	return m, nil
}

// Tunnel returns the currently managed tunnel.
func (m *Monitor) Tunnel() *core.Tunnel { return m.tunnel }

// Age returns ticks since the current tunnel was formed.
func (m *Monitor) Age() int { return m.age }

// replace retires the current tunnel (if any) and forms a fresh one,
// deploying replacement anchors to keep the pool at strength.
func (m *Monitor) replace(scheduled bool) error {
	if m.tunnel != nil {
		if err := m.in.DeleteAnchors(m.tunnel); err != nil {
			return err
		}
		if scheduled {
			m.Refreshed++
		} else {
			m.Replaced++
		}
	}
	if need := m.length - m.in.PoolSize(); need > 0 {
		if err := m.in.DeployDirect(need); err != nil {
			return err
		}
	}
	t, err := m.in.FormTunnel(m.length)
	if err != nil {
		return err
	}
	m.tunnel = t
	m.age = 0
	return nil
}

// Tick advances the monitor one time unit: probe the tunnel (replacing it
// on failure, retrying until a healthy tunnel is found or attempts run
// out) and apply the scheduled refresh.
func (m *Monitor) Tick() error {
	m.age++
	const maxReplacements = 8
	for attempt := 0; ; attempt++ {
		healthy := true
		for i := 0; i < m.ProbesPerTick; i++ {
			if err := m.prober.Probe(m.in, m.tunnel); err != nil {
				healthy = false
				break
			}
		}
		if healthy {
			break
		}
		if attempt >= maxReplacements {
			return fmt.Errorf("detect: no healthy tunnel after %d replacements", maxReplacements)
		}
		if err := m.replace(false); err != nil {
			return err
		}
	}
	if m.RefreshEvery > 0 && m.age >= m.RefreshEvery {
		return m.replace(true)
	}
	return nil
}
