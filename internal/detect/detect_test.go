package detect

import (
	"errors"
	"testing"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
)

type sys struct {
	ov   *pastry.Overlay
	mgr  *past.Manager
	dir  *tha.Directory
	svc  *core.Service
	root *rng.Stream
}

func newSys(t testing.TB, n int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, 3)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))
	return &sys{ov: ov, mgr: mgr, dir: dir, svc: svc, root: root}
}

func (s *sys) initiator(t testing.TB, anchors int) *core.Initiator {
	t.Helper()
	node := s.ov.RandomLive(s.root.Split("pick"))
	in, err := core.NewInitiator(s.svc, node, s.root.Split("init"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeployDirect(anchors); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestProbeHealthyTunnel(t *testing.T) {
	s := newSys(t, 300, 1)
	in := s.initiator(t, 10)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProber(s.svc, s.root.Split("probe"))
	for i := 0; i < 5; i++ {
		if err := p.Probe(in, tun); err != nil {
			t.Fatalf("probe %d failed on a healthy tunnel: %v", i, err)
		}
	}
	if p.Probes != 5 || p.Failures != 0 {
		t.Fatalf("stats %d/%d", p.Probes, p.Failures)
	}
}

func TestProbeDetectsDroppingHop(t *testing.T) {
	s := newSys(t, 300, 2)
	in := s.initiator(t, 10)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	// The node serving hop 2 drops all tunnel traffic for that hop.
	evil, ok := s.dir.HopNode(tun.Hops[2].HopID)
	if !ok {
		t.Fatal("no hop node")
	}
	evilAddr := evil.Ref().Addr
	evilHop := tun.Hops[2].HopID
	s.svc.HopFilter = func(addr simnet.Addr, hopID id.ID) bool {
		return !(addr == evilAddr && hopID == evilHop)
	}
	p := NewProber(s.svc, s.root.Split("probe"))
	err = p.Probe(in, tun)
	if !errors.Is(err, ErrProbeFailed) {
		t.Fatalf("err = %v, want ErrProbeFailed", err)
	}
	if !errors.Is(err, ErrProbeFailed) || p.Failures != 1 {
		t.Fatalf("failure not recorded")
	}
	// Kill the dropper; its replica successor behaves, so the same
	// tunnel probes healthy again.
	if err := s.ov.Fail(evilAddr); err != nil {
		t.Fatal(err)
	}
	if err := p.Probe(in, tun); err != nil {
		t.Fatalf("probe after dropper death: %v", err)
	}
}

func TestProbeDetectsLostAnchor(t *testing.T) {
	s := newSys(t, 300, 3)
	in := s.initiator(t, 10)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(tun.Hops[1].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	p := NewProber(s.svc, s.root.Split("probe"))
	err = p.Probe(in, tun)
	if !errors.Is(err, ErrProbeFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestProbeNCatchesProbabilisticDropper(t *testing.T) {
	s := newSys(t, 300, 4)
	in := s.initiator(t, 10)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	// Hop 1's node drops half the messages.
	evil, ok := s.dir.HopNode(tun.Hops[1].HopID)
	if !ok {
		t.Fatal("no hop node")
	}
	evilAddr := evil.Ref().Addr
	drop := s.root.Split("drop")
	s.svc.HopFilter = func(addr simnet.Addr, _ id.ID) bool {
		if addr != evilAddr {
			return true
		}
		return !drop.Bool(0.5)
	}
	p := NewProber(s.svc, s.root.Split("probe"))
	ok20 := p.ProbeN(in, tun, 20)
	if ok20 == 20 {
		t.Fatalf("20 probes all passed through a 50%% dropper (p = 2^-20)")
	}
	if ok20 == 0 {
		t.Fatalf("no probe passed a 50%% dropper (p = 2^-20)")
	}
}

func TestMonitorReplacesBrokenTunnel(t *testing.T) {
	s := newSys(t, 400, 5)
	in := s.initiator(t, 12)
	p := NewProber(s.svc, s.root.Split("probe"))
	m, err := NewMonitor(in, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.RefreshEvery = 0 // probe-only mode
	first := m.Tunnel()

	// Lose an anchor of the current tunnel.
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(first.Hops[0].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()

	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if m.Replaced != 1 {
		t.Fatalf("replaced = %d, want 1", m.Replaced)
	}
	if m.Tunnel() == first {
		t.Fatalf("broken tunnel not replaced")
	}
	// The replacement is healthy.
	if err := p.Probe(in, m.Tunnel()); err != nil {
		t.Fatalf("replacement unhealthy: %v", err)
	}
}

func TestMonitorScheduledRefresh(t *testing.T) {
	s := newSys(t, 300, 6)
	in := s.initiator(t, 12)
	p := NewProber(s.svc, s.root.Split("probe"))
	m, err := NewMonitor(in, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.RefreshEvery = 4
	seen := map[*core.Tunnel]bool{m.Tunnel(): true}
	for tick := 1; tick <= 12; tick++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
		seen[m.Tunnel()] = true
	}
	if m.Refreshed != 3 {
		t.Fatalf("refreshed = %d, want 3 (every 4 ticks over 12)", m.Refreshed)
	}
	if len(seen) != 4 {
		t.Fatalf("saw %d distinct tunnels, want 4", len(seen))
	}
	if m.Replaced != 0 {
		t.Fatalf("healthy run replaced %d tunnels", m.Replaced)
	}
}

func TestMonitorKeepsPoolAtStrength(t *testing.T) {
	s := newSys(t, 300, 7)
	in := s.initiator(t, 3) // exactly one tunnel's worth
	p := NewProber(s.svc, s.root.Split("probe"))
	m, err := NewMonitor(in, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.RefreshEvery = 1 // refresh every tick: forces redeployment each time
	for tick := 0; tick < 5; tick++ {
		if err := m.Tick(); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
	}
	if m.Refreshed != 5 {
		t.Fatalf("refreshed = %d", m.Refreshed)
	}
}

func TestMonitorAgeResetsOnRefresh(t *testing.T) {
	s := newSys(t, 250, 9)
	in := s.initiator(t, 12)
	p := NewProber(s.svc, s.root.Split("probe"))
	m, err := NewMonitor(in, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.RefreshEvery = 3
	if m.Age() != 0 {
		t.Fatalf("fresh monitor age %d", m.Age())
	}
	for i := 1; i <= 2; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
		if m.Age() != i {
			t.Fatalf("age %d after %d ticks", m.Age(), i)
		}
	}
	if err := m.Tick(); err != nil { // third tick refreshes
		t.Fatal(err)
	}
	if m.Age() != 0 {
		t.Fatalf("age %d after scheduled refresh, want 0", m.Age())
	}
}

func TestProbeFailsOnBrokenTunnelBuild(t *testing.T) {
	s := newSys(t, 150, 10)
	in := s.initiator(t, 6)
	p := NewProber(s.svc, s.root.Split("probe"))
	empty := &core.Tunnel{}
	if err := p.Probe(in, empty); !errors.Is(err, ErrProbeFailed) {
		t.Fatalf("err = %v, want ErrProbeFailed", err)
	}
}

func TestMonitorGivesUpWhenEverythingDrops(t *testing.T) {
	s := newSys(t, 200, 8)
	in := s.initiator(t, 12)
	// Every node drops all tunnel traffic.
	s.svc.HopFilter = func(simnet.Addr, id.ID) bool { return false }
	p := NewProber(s.svc, s.root.Split("probe"))
	m, err := NewMonitor(in, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); err == nil {
		t.Fatalf("monitor found a healthy tunnel in an all-dropping network")
	}
}
