package past

import (
	"testing"
	"testing/quick"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
)

// The insert-placement property moved to dst_property_test.go, where it
// runs on dst storage scenarios with per-event oracle comparison under
// churn.

// Property: Lookup finds exactly the keys that were inserted and not
// deleted, across random interleavings.
func TestPropInsertDeleteLookupConsistent(t *testing.T) {
	ov, err := pastry.Build(pastry.DefaultConfig(), 40, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ov, 3)
	live := map[id.ID]bool{}
	f := func(raw [20]byte, del bool) bool {
		key := id.ID(raw)
		if del {
			got := m.Delete(key)
			want := live[key]
			delete(live, key)
			return got == want
		}
		if live[key] {
			return m.Insert(key, 1) != nil // duplicate must error
		}
		if err := m.Insert(key, 1); err != nil {
			return false
		}
		live[key] = true
		_, ok := m.Lookup(key)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Final sweep: state agrees everywhere.
	for key := range live {
		if _, ok := m.Lookup(key); !ok {
			t.Fatalf("live key %s missing", key.Short())
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
