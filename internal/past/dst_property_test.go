package past_test

import (
	"testing"

	"tap/internal/dst"
)

// TestPropInsertPlacement is the dst-scenario port of the old
// testing/quick placement property. The storage profile interleaves
// anchor deployments (each an Insert through the THA directory) with
// joins, failures and batch failures, and the dst tha-replication
// checker re-verifies after every event that each surviving key's
// replica list equals the oracle's k-closest set elementwise — strictly
// stronger than the quick version, which only checked placement at
// insert time on a static overlay.
//
// This lives in an external test package because dst imports past.
func TestPropInsertPlacement(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sc := dst.Gen(seed, dst.ProfileStorage)
		deploys := 0
		for _, ev := range sc.Events {
			if ev.Kind == dst.EvDeploy {
				deploys++
			}
		}
		if deploys == 0 {
			t.Fatalf("seed %d: storage scenario schedules no deployments", seed)
		}
		res := dst.Run(sc, dst.Mutations{})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: replica placement diverged from the oracle: %s\nreplay: tapcheck -seed %d -profile storage",
				seed, res.Violation, seed)
		}
	}
}
