package past

import (
	"testing"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

func setup(t testing.TB, n, k int, seed uint64) (*pastry.Overlay, *Manager) {
	t.Helper()
	ov, err := pastry.Build(pastry.DefaultConfig(), n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ov, NewManager(ov, k)
}

func insertMany(t testing.TB, m *Manager, count int, seed uint64) []id.ID {
	t.Helper()
	s := rng.New(seed)
	keys := make([]id.ID, count)
	for i := range keys {
		var key id.ID
		s.Bytes(key[:])
		keys[i] = key
		if err := m.Insert(key, i); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestInsertPlacesOnKClosest(t *testing.T) {
	ov, m := setup(t, 100, 3, 1)
	key := id.HashString("item")
	if err := m.Insert(key, "v"); err != nil {
		t.Fatal(err)
	}
	want := ov.ReplicaSet(key, 3)
	got := m.Replicas(key)
	if len(got) != 3 {
		t.Fatalf("replica count %d", len(got))
	}
	for i, n := range want {
		if got[i] != simnet.Addr(n.Addr()) {
			t.Fatalf("replica %d at %d, want %d", i, got[i], n.Addr())
		}
		if !m.HolderHas(simnet.Addr(n.Addr()), key) {
			t.Fatalf("holder %d missing item", n.Addr())
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	_, m := setup(t, 20, 3, 2)
	key := id.HashString("dup")
	if err := m.Insert(key, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(key, 2); err == nil {
		t.Fatalf("duplicate insert accepted")
	}
}

func TestLookupAndDelete(t *testing.T) {
	_, m := setup(t, 50, 3, 3)
	key := id.HashString("x")
	if _, ok := m.Lookup(key); ok {
		t.Fatalf("lookup of missing key succeeded")
	}
	if err := m.Insert(key, 42); err != nil {
		t.Fatal(err)
	}
	v, ok := m.Lookup(key)
	if !ok || v.(int) != 42 {
		t.Fatalf("lookup = %v %v", v, ok)
	}
	if !m.Delete(key) {
		t.Fatalf("delete reported missing")
	}
	if _, ok := m.Lookup(key); ok {
		t.Fatalf("lookup after delete succeeded")
	}
	if m.Delete(key) {
		t.Fatalf("double delete reported success")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationOnSingleFailure(t *testing.T) {
	ov, m := setup(t, 100, 3, 4)
	keys := insertMany(t, m, 200, 5)
	// Fail the primary holder of the first key.
	primary := m.Replicas(keys[0])[0]
	if err := ov.Fail(primary); err != nil {
		t.Fatal(err)
	}
	// Item must survive and be back at k replicas matching the oracle.
	if _, ok := m.Lookup(keys[0]); !ok {
		t.Fatalf("item lost after single failure with k=3")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.LostCount() != 0 {
		t.Fatalf("lost %d items", m.LostCount())
	}
}

func TestMigrationOnJoin(t *testing.T) {
	ov, m := setup(t, 60, 3, 6)
	keys := insertMany(t, m, 150, 7)
	for i := 0; i < 40; i++ {
		ov.Join()
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := m.Lookup(k); !ok {
			t.Fatalf("item %s lost across joins", k.Short())
		}
	}
}

func TestSequentialFailuresNeverLoseDataWithRepair(t *testing.T) {
	// One-at-a-time failures always leave k-1 survivors to copy from, so
	// no data is ever lost — TAP's core availability claim under gradual
	// churn.
	ov, m := setup(t, 200, 3, 8)
	keys := insertMany(t, m, 300, 9)
	s := rng.New(10)
	for i := 0; i < 120; i++ {
		if err := ov.Fail(ov.RandomLive(s).Ref().Addr); err != nil {
			t.Fatal(err)
		}
	}
	if m.LostCount() != 0 {
		t.Fatalf("lost %d items under sequential failures", m.LostCount())
	}
	for _, k := range keys {
		if _, ok := m.Lookup(k); !ok {
			t.Fatalf("item %s lost", k.Short())
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSimultaneousFailureLosesWholeReplicaSets(t *testing.T) {
	// Failing an entire replica set inside one batch must lose the item;
	// failing all but one must not.
	ov, m := setup(t, 100, 3, 11)
	keyLost := id.HashString("doomed")
	keySafe := id.HashString("survivor")
	if err := m.Insert(keyLost, "a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(keySafe, "b"); err != nil {
		t.Fatal(err)
	}
	lostReplicas := m.Replicas(keyLost)
	safeReplicas := m.Replicas(keySafe)

	m.BeginBatch()
	for _, addr := range lostReplicas {
		if err := ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range safeReplicas[:2] {
		// Skip any overlap with the doomed set.
		alreadyDead := false
		for _, d := range lostReplicas {
			if d == addr {
				alreadyDead = true
			}
		}
		if alreadyDead {
			continue
		}
		if err := ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	m.EndBatch()

	if _, ok := m.Lookup(keyLost); ok {
		t.Fatalf("item survived despite whole replica set failing")
	}
	if m.LostCount() != 1 {
		t.Fatalf("lost count = %d, want 1", m.LostCount())
	}
	if _, ok := m.Lookup(keySafe); !ok {
		t.Fatalf("item with one surviving replica was lost")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMassFailureLossRateMatchesTheory(t *testing.T) {
	// With fraction p failing simultaneously, an item is lost with
	// probability ~p^k. Check the empirical rate is in the right
	// ballpark.
	ov, m := setup(t, 400, 2, 12)
	keys := insertMany(t, m, 500, 13)
	s := rng.New(14)
	p := 0.4
	fail := int(float64(ov.Size()) * p)
	m.BeginBatch()
	for i := 0; i < fail; i++ {
		if err := ov.Fail(ov.RandomLive(s).Ref().Addr); err != nil {
			t.Fatal(err)
		}
	}
	m.EndBatch()
	lossRate := float64(m.LostCount()) / float64(len(keys))
	want := p * p // k=2
	if lossRate < want/3 || lossRate > want*3 {
		t.Fatalf("loss rate %.3f, theory ~%.3f", lossRate, want)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnKeepsInvariants(t *testing.T) {
	ov, m := setup(t, 120, 3, 15)
	keys := insertMany(t, m, 200, 16)
	s := rng.New(17)
	for step := 0; step < 200; step++ {
		if s.Bool(0.5) && ov.Size() > 30 {
			if err := ov.Fail(ov.RandomLive(s).Ref().Addr); err != nil {
				t.Fatal(err)
			}
		} else {
			ov.Join()
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.LostCount() != 0 {
		t.Fatalf("sequential churn lost %d items", m.LostCount())
	}
	for _, k := range keys {
		if _, ok := m.Lookup(k); !ok {
			t.Fatalf("item %s lost under churn", k.Short())
		}
	}
}

func TestNestedBatchPanics(t *testing.T) {
	_, m := setup(t, 10, 3, 18)
	m.BeginBatch()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.BeginBatch()
}

func TestEndBatchWithoutBeginPanics(t *testing.T) {
	_, m := setup(t, 10, 3, 19)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.EndBatch()
}

func TestReplicationFactorClampsToPopulation(t *testing.T) {
	_, m := setup(t, 2, 5, 20)
	key := id.HashString("small")
	if err := m.Insert(key, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Replicas(key)); got != 2 {
		t.Fatalf("replicas = %d, want clamp to 2", got)
	}
}

func TestCopyAccounting(t *testing.T) {
	ov, m := setup(t, 80, 3, 21)
	insertMany(t, m, 100, 22)
	if m.CopyCount() != 0 {
		t.Fatalf("copies before any churn: %d", m.CopyCount())
	}
	if err := ov.Fail(ov.RandomLive(rng.New(23)).Ref().Addr); err != nil {
		t.Fatal(err)
	}
	if m.CopyCount() == 0 {
		t.Fatalf("failure of a live node should trigger at least one copy")
	}
}
