// Package past is the PAST-style replicated storage layer TAP anchors
// tunnel hops in.
//
// PAST (Rowstron & Druschel, SOSP'01) stores each item on the k nodes
// whose nodeIds are numerically closest to the item's key and keeps that
// invariant across membership changes via a replication manager. TAP's
// whole fault-tolerance story rests on exactly that invariant: a tunnel
// hop anchor survives "unless all k nodes have failed simultaneously".
//
// The Manager here maintains the invariant the way FreePastry's replica
// manager does — eagerly after every join and departure — and adds batch
// semantics (BeginBatch/EndBatch) so experiments can model *simultaneous*
// failures: inside a batch no re-replication happens, and items whose
// entire replica set died are lost, which is the quantity Figure 2
// measures.
//
// Values are held as opaque interface values: all peers live in one
// process, so serialization would add cost without adding fidelity. Item
// payload sizes for the network model are supplied by the caller where
// they matter.
package past

import (
	"fmt"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/simnet"
)

// Store is one node's local storage: the fragment of the DHT it is
// responsible for.
type Store struct {
	items map[id.ID]any
}

func newStore() *Store {
	return &Store{items: make(map[id.ID]any)}
}

// Get returns the locally stored value for key.
func (s *Store) Get(key id.ID) (any, bool) {
	v, ok := s.items[key]
	return v, ok
}

// Len returns the number of locally stored items.
func (s *Store) Len() int { return len(s.items) }

// Keys returns the stored keys in unspecified order.
func (s *Store) Keys() []id.ID {
	out := make([]id.ID, 0, len(s.items))
	for k := range s.items {
		out = append(out, k)
	}
	return out
}

type entry struct {
	value    any
	replicas []simnet.Addr
}

// Manager keeps every item on the k live nodes closest to its key.
type Manager struct {
	ov      *pastry.Overlay
	k       int
	entries map[id.ID]*entry
	stores  map[simnet.Addr]*Store

	batch     bool
	batchDead []pastry.NodeRef

	lost    int
	copies  uint64 // replica copies made during migration, for accounting
	evicted uint64 // replicas dropped because a node left a replica set

	// OnReplicate observes every placement of a replica on a node — both
	// initial insertion and migration copies. TAP's adversary model hooks
	// it: an anchor leaks the moment any colluding node receives a copy,
	// and the leak is permanent.
	OnReplicate func(key id.ID, addr simnet.Addr)

	// DisableMigration is a fault-injection seam in the spirit of
	// core.Service.HopFilter: when set, membership changes no longer
	// trigger replica migration, so replica sets drift away from the
	// oracle. The simulation checker plants it to prove its replication
	// invariant actually fires. Never set it in a real deployment path.
	DisableMigration bool
}

// NewManager wires a manager with replication factor k to the overlay's
// membership events. Any previously installed overlay callbacks are
// chained, so multiple observers coexist.
func NewManager(ov *pastry.Overlay, k int) *Manager {
	if k < 1 {
		panic(fmt.Sprintf("past: replication factor %d < 1", k))
	}
	m := &Manager{
		ov:      ov,
		k:       k,
		entries: make(map[id.ID]*entry),
		stores:  make(map[simnet.Addr]*Store),
	}
	prevJoin, prevLeave := ov.OnJoin, ov.OnLeave
	ov.OnJoin = func(n *pastry.Node) {
		m.onJoin(n)
		if prevJoin != nil {
			prevJoin(n)
		}
	}
	ov.OnLeave = func(r pastry.NodeRef) {
		m.onLeave(r)
		if prevLeave != nil {
			prevLeave(r)
		}
	}
	return m
}

// K returns the replication factor.
func (m *Manager) K() int { return m.k }

// Len returns the number of stored items.
func (m *Manager) Len() int { return len(m.entries) }

// LostCount returns the number of items lost because their whole replica
// set failed within one batch.
func (m *Manager) LostCount() int { return m.lost }

// CopyCount returns the number of replica copies migration has made.
func (m *Manager) CopyCount() uint64 { return m.copies }

// storeOf returns (creating if needed) the local store for addr.
func (m *Manager) storeOf(addr simnet.Addr) *Store {
	s, ok := m.stores[addr]
	if !ok {
		s = newStore()
		m.stores[addr] = s
	}
	return s
}

// StoreAt exposes a node's local store; nil if the node never stored
// anything.
func (m *Manager) StoreAt(addr simnet.Addr) *Store { return m.stores[addr] }

// Insert stores value under key on the k closest live nodes. Inserting an
// existing key is an error: DHT keys here are hashes chosen to be unique.
func (m *Manager) Insert(key id.ID, value any) error {
	if _, dup := m.entries[key]; dup {
		return fmt.Errorf("past: key %s already stored", key.Short())
	}
	set := m.ov.ReplicaSet(key, m.k)
	if len(set) == 0 {
		return fmt.Errorf("past: no live nodes to store %s", key.Short())
	}
	e := &entry{value: value, replicas: make([]simnet.Addr, 0, len(set))}
	for _, n := range set {
		addr := simnet.Addr(n.Addr())
		m.storeOf(addr).items[key] = value
		e.replicas = append(e.replicas, addr)
		if m.OnReplicate != nil {
			m.OnReplicate(key, addr)
		}
	}
	m.entries[key] = e
	return nil
}

// Delete removes key everywhere and reports whether it existed.
func (m *Manager) Delete(key id.ID) bool {
	e, ok := m.entries[key]
	if !ok {
		return false
	}
	for _, addr := range e.replicas {
		if s := m.stores[addr]; s != nil {
			delete(s.items, key)
		}
	}
	delete(m.entries, key)
	return true
}

// Lookup returns the stored value if at least one live replica holds it.
func (m *Manager) Lookup(key id.ID) (any, bool) {
	e, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	for _, addr := range e.replicas {
		if m.ov.Node(addr) != nil && m.ov.Node(addr).Alive() {
			return e.value, true
		}
	}
	return nil, false
}

// Replicas returns the addresses currently holding key, in order of
// increasing distance at the time of the last migration.
func (m *Manager) Replicas(key id.ID) []simnet.Addr {
	e, ok := m.entries[key]
	if !ok {
		return nil
	}
	out := make([]simnet.Addr, len(e.replicas))
	copy(out, e.replicas)
	return out
}

// HolderHas reports whether the node at addr locally stores key — the
// check a tunnel hop node performs before it can decrypt a layer.
func (m *Manager) HolderHas(addr simnet.Addr, key id.ID) bool {
	s := m.stores[addr]
	if s == nil {
		return false
	}
	_, ok := s.items[key]
	return ok
}

// --- migration ---------------------------------------------------------------

// onJoin moves replicas onto a joiner that entered some keys' replica
// sets, and evicts the displaced holders.
func (m *Manager) onJoin(n *pastry.Node) {
	if m.DisableMigration {
		return
	}
	if m.batch {
		// Joins inside a batch are deferred with the leaves and settled at
		// EndBatch, after the dust clears.
		return
	}
	// Candidate keys live on the positional ring neighbors of the joiner:
	// a key whose replica set now includes the joiner lies within k
	// positions of it, and that key's current holders lie within k
	// positions of the key — so every affected store is within 2k
	// positions of the joiner. The bound is positional, not
	// distance-based: id clumping cannot defeat it.
	neighbors := m.ov.RingNeighbors(n.ID(), 2*m.k+2)
	seen := make(map[id.ID]struct{})
	for _, nb := range neighbors {
		s := m.stores[simnet.Addr(nb.Addr())]
		if s == nil {
			continue
		}
		for key := range s.items {
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			m.resync(key)
		}
	}
}

// onLeave restores the replication factor for every key the departed node
// held.
func (m *Manager) onLeave(r pastry.NodeRef) {
	if m.DisableMigration {
		return
	}
	if m.batch {
		m.batchDead = append(m.batchDead, r)
		return
	}
	s := m.stores[r.Addr]
	if s == nil {
		return
	}
	for _, key := range s.Keys() {
		m.resync(key)
	}
}

// resync reconciles one key's replica placement with the oracle replica
// set. A key with no surviving replica is lost and removed.
func (m *Manager) resync(key id.ID) {
	e, ok := m.entries[key]
	if !ok {
		return
	}
	// Does any current holder survive? Without a survivor there is nobody
	// to copy from: the item is gone, exactly the "all k failed
	// simultaneously" case.
	alive := false
	for _, addr := range e.replicas {
		n := m.ov.Node(addr)
		if n != nil && n.Alive() {
			alive = true
			break
		}
	}
	if !alive {
		for _, addr := range e.replicas {
			if s := m.stores[addr]; s != nil {
				delete(s.items, key)
			}
		}
		delete(m.entries, key)
		m.lost++
		return
	}
	want := m.ov.ReplicaSet(key, m.k)
	wantSet := make(map[simnet.Addr]struct{}, len(want))
	newReplicas := make([]simnet.Addr, 0, len(want))
	for _, n := range want {
		addr := simnet.Addr(n.Addr())
		wantSet[addr] = struct{}{}
		newReplicas = append(newReplicas, addr)
		st := m.storeOf(addr)
		if _, has := st.items[key]; !has {
			st.items[key] = e.value
			m.copies++
			if m.OnReplicate != nil {
				m.OnReplicate(key, addr)
			}
		}
	}
	for _, addr := range e.replicas {
		if _, keep := wantSet[addr]; keep {
			continue
		}
		if s := m.stores[addr]; s != nil {
			if _, had := s.items[key]; had {
				delete(s.items, key)
				m.evicted++
			}
		}
	}
	e.replicas = newReplicas
}

// BeginBatch suspends migration so a set of failures lands
// simultaneously: no re-replication happens until EndBatch.
func (m *Manager) BeginBatch() {
	if m.batch {
		panic("past: nested batch")
	}
	m.batch = true
}

// EndBatch processes the accumulated failures: every key held by a dead
// node is resynced once, and keys whose whole replica set died are counted
// lost.
func (m *Manager) EndBatch() {
	if !m.batch {
		panic("past: EndBatch without BeginBatch")
	}
	m.batch = false
	seen := make(map[id.ID]struct{})
	for _, r := range m.batchDead {
		s := m.stores[r.Addr]
		if s == nil {
			continue
		}
		for _, key := range s.Keys() {
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			m.resync(key)
		}
	}
	m.batchDead = m.batchDead[:0]
	// Joins that happened inside the batch may also have shifted replica
	// sets; a full sweep of dirty regions is unnecessary because resync
	// already reconciles against the post-batch oracle. Keys untouched by
	// any dead node but displaced by joiners are reconciled lazily by
	// CheckInvariants callers or the next event; experiments that mix
	// joins into a batch should call ResyncAll.
}

// ResyncAll reconciles every key; O(total items · k). Experiments use it
// after unusual batch mixes, tests use it to establish a clean baseline.
func (m *Manager) ResyncAll() {
	for key := range m.entries {
		m.resync(key)
	}
}

// CheckInvariants verifies that every entry's replica list matches the
// oracle replica set and that local stores agree with the entry table.
func (m *Manager) CheckInvariants() error {
	for key, e := range m.entries {
		want := m.ov.ReplicaSet(key, m.k)
		if len(want) != len(e.replicas) {
			return fmt.Errorf("past: key %s has %d replicas, oracle wants %d", key.Short(), len(e.replicas), len(want))
		}
		wantSet := make(map[simnet.Addr]struct{}, len(want))
		for _, n := range want {
			wantSet[simnet.Addr(n.Addr())] = struct{}{}
		}
		for _, addr := range e.replicas {
			if _, ok := wantSet[addr]; !ok {
				return fmt.Errorf("past: key %s replica at %d not in oracle set", key.Short(), addr)
			}
			s := m.stores[addr]
			if s == nil {
				return fmt.Errorf("past: key %s replica store missing at %d", key.Short(), addr)
			}
			if _, ok := s.items[key]; !ok {
				return fmt.Errorf("past: key %s missing from store at %d", key.Short(), addr)
			}
		}
	}
	// No store may hold a key the entry table doesn't know about.
	for addr, s := range m.stores {
		for key := range s.items {
			e, ok := m.entries[key]
			if !ok {
				return fmt.Errorf("past: orphan key %s in store at %d", key.Short(), addr)
			}
			found := false
			for _, a := range e.replicas {
				if a == addr {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("past: store at %d holds %s but is not a replica", addr, key.Short())
			}
		}
	}
	return nil
}
