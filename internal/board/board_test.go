package board

import (
	"testing"
	"time"

	"tap/internal/transport"
)

func startBoard(t *testing.T, cfg Config) (*Board, string) {
	t.Helper()
	b := New(cfg)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b, addr
}

func TestRegisterAssignsDenseAddrs(t *testing.T) {
	b, addr := startBoard(t, Config{})
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clients = append(clients, c)
	}
	seen := map[transport.Addr]bool{}
	for i, c := range clients {
		a, peers, err := c.Register("127.0.0.1:1000")
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		if seen[a] {
			t.Fatalf("duplicate addr %d", a)
		}
		seen[a] = true
		if len(peers) != i+1 {
			t.Fatalf("register %d saw %d peers", i, len(peers))
		}
	}
	for a := transport.Addr(0); a < 3; a++ {
		if !seen[a] {
			t.Fatalf("addresses not dense: %v", seen)
		}
	}
	if b.MemberCount() != 3 {
		t.Fatalf("member count %d", b.MemberCount())
	}
}

func TestPeersReflectsMembership(t *testing.T) {
	_, addr := startBoard(t, Config{})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Close)
	a1, _, err := c1.Register("127.0.0.1:1111")
	if err != nil {
		t.Fatal(err)
	}
	peers, err := c1.Peers()
	if err != nil {
		t.Fatal(err)
	}
	if peers[a1] != "127.0.0.1:1111" {
		t.Fatalf("peer table %v", peers)
	}
}

func TestWaitBlocksUntilQuorum(t *testing.T) {
	_, addr := startBoard(t, Config{})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Close)
	if _, _, err := c1.Register("127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}

	got := make(chan map[transport.Addr]string, 1)
	errs := make(chan error, 1)
	go func() {
		peers, err := c1.WaitForPeers(3, 10*time.Second)
		if err != nil {
			errs <- err
			return
		}
		got <- peers
	}()

	// Not satisfied yet: two more members must join.
	select {
	case p := <-got:
		t.Fatalf("wait returned early with %v", p)
	case err := <-errs:
		t.Fatalf("wait failed early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	for i := 0; i < 2; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if _, _, err := c.Register("127.0.0.1:2"); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case peers := <-got:
		if len(peers) != 3 {
			t.Fatalf("ready with %d peers", len(peers))
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("wait never satisfied")
	}
}

// TestWaitTimeoutPoisonsClientAndDropsWaiter pins the desync fix: after
// a WaitForPeers timeout the server-side waiter may still fire later,
// so the client must not reuse the connection (the stale kindReady
// would be misread as the next call's response), and the board must
// drop the waiter when the connection dies instead of parking it until
// Close.
func TestWaitTimeoutPoisonsClientAndDropsWaiter(t *testing.T) {
	b, addr := startBoard(t, Config{})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Close)
	if _, _, err := c1.Register("127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.WaitForPeers(3, 50*time.Millisecond); err == nil {
		t.Fatal("wait for an unreachable quorum returned without error")
	}
	// The connection is poisoned: no later call may read the waiter's
	// stale reply.
	if _, err := c1.Peers(); err == nil {
		t.Fatal("call succeeded on a desynced connection")
	}
	// The board notices the dead connection and abandons the waiter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		n := len(b.waiters)
		b.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d waiter(s) still parked after their connection died", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A fresh dial works: recovery is re-dial + re-register.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	if _, _, err := c2.Register("127.0.0.1:2"); err != nil {
		t.Fatalf("re-registration after poison failed: %v", err)
	}
}

func TestDisconnectRemovesMember(t *testing.T) {
	b, addr := startBoard(t, Config{})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.Register("127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if b.MemberCount() != 1 {
		t.Fatalf("count %d", b.MemberCount())
	}
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for b.MemberCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("member not removed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHeartbeatKeepsMemberAlive(t *testing.T) {
	b, addr := startBoard(t, Config{StaleAfter: 150 * time.Millisecond})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Close)
	if _, _, err := c1.Register("127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	c1.StartHeartbeat(30 * time.Millisecond)
	time.Sleep(500 * time.Millisecond)
	if b.MemberCount() != 1 {
		t.Fatal("heartbeating member was pruned")
	}
}

func TestStaleMemberPruned(t *testing.T) {
	b, addr := startBoard(t, Config{StaleAfter: 100 * time.Millisecond})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Close)
	if _, _, err := c1.Register("127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	// No heartbeats: the member must be pruned even though the
	// connection stays open (a wedged process).
	deadline := time.Now().Add(5 * time.Second)
	for b.MemberCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stale member never pruned")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
