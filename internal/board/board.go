// Package board implements the bulletin-board coordinator for the
// real-process deployment mode.
//
// A TAP deployment needs one piece of out-of-band coordination that the
// simulator gets for free: nodes must find each other. The board is that
// piece — a single TCP service that assigns each joining node a small
// dense transport address, records its host:port, and hands every member
// the current peer set. It is a bootstrap oracle, not a router: once
// nodes hold the peer table, all overlay traffic flows node-to-node and
// the board sees none of it.
//
// Liveness is tracked two ways: a member's registration dies with its
// connection (the common, prompt signal), and a heartbeat freshness bound
// (StaleAfter) catches wedged processes whose sockets linger. Members
// that want to survive their control connection's loss simply reconnect
// and re-register.
//
// The protocol is length-prefixed wire frames (internal/wire's framing)
// over one TCP connection per member, strictly request/response except
// for heartbeats, which elicit nothing.
package board

import (
	"fmt"
	"net"
	"sync"
	"time"

	"tap/internal/obs"
	"tap/internal/transport"
	"tap/internal/wire"
)

// Frame kinds of the board protocol.
const (
	kindRegister   = 1 // c→b: {hostport}
	kindRegistered = 2 // b→c: {addr, peer list}
	kindPeers      = 3 // c→b: {}
	kindPeerList   = 4 // b→c: {peer list}
	kindWait       = 5 // c→b: {n}
	kindReady      = 6 // b→c: {peer list}
	kindHeartbeat  = 7 // c→b: {}, no response
	kindError      = 8 // b→c: {message}
)

// encodePeers serializes a peer table as {count, (addr, hostport)*}.
func encodePeers(peers map[transport.Addr]string) []byte {
	w := wire.NewWriter(16 + 32*len(peers))
	w.Uint32(uint32(len(peers)))
	for a, hp := range peers {
		w.Int64(int64(a))
		w.String(hp)
	}
	return w.Bytes()
}

// decodePeers parses an encodePeers payload.
func decodePeers(b []byte) (map[transport.Addr]string, error) {
	r := wire.NewReader(b)
	n := r.Uint32()
	out := make(map[transport.Addr]string, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		a := transport.Addr(r.Int64())
		out[a] = r.String()
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("board: peer list: %w", err)
	}
	return out, nil
}

// --- server ------------------------------------------------------------------

// member is one registered node.
type member struct {
	hostport string
	lastSeen time.Time
	conn     net.Conn
}

// waiter is a parked Wait request: woken when the member count reaches
// n, or abandoned when the connection that asked dies first.
type waiter struct {
	n    int
	conn net.Conn      // the asking connection; the cleanup key in serve
	ch   chan []byte   // receives the encoded peer list
	done chan struct{} // closed by serve's cleanup when conn is torn down
}

// Config tunes a Board.
type Config struct {
	// StaleAfter prunes members whose last heartbeat (or registration)
	// is older than this. Zero disables freshness pruning — connection
	// close remains the only death signal.
	StaleAfter time.Duration
	// Logf, when non-nil, receives diagnostics.
	Logf func(format string, args ...any)
	// Registry, when non-nil, receives the board's metrics (tap_board_*;
	// see DESIGN.md §15). One board per registry. Nil disables metrics —
	// every instrument degrades to obs's no-op sink.
	Registry *obs.Registry
}

// metrics holds the board's instruments; all fields are nil (no-ops)
// when Config.Registry is nil.
type metrics struct {
	members       *obs.Gauge   // live registrations
	registrations *obs.Counter // kindRegister frames accepted
	departures    *obs.Counter // registrations dropped with their connection
	heartbeats    *obs.Counter // kindHeartbeat frames received
	prunes        *obs.Counter // members evicted by staleness
	waitersParked *obs.Gauge   // Wait requests parked below quorum
	waitsServed   *obs.Counter // kindReady replies, immediate or woken
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		members:       reg.Gauge("tap_board_members", "Live member registrations."),
		registrations: reg.Counter("tap_board_registrations_total", "Register requests accepted."),
		departures:    reg.Counter("tap_board_departures_total", "Registrations dropped when their connection died."),
		heartbeats:    reg.Counter("tap_board_heartbeats_total", "Heartbeat frames received."),
		prunes:        reg.Counter("tap_board_prunes_total", "Members evicted for stale heartbeats."),
		waitersParked: reg.Gauge("tap_board_waiters_parked", "Wait requests parked until quorum."),
		waitsServed:   reg.Counter("tap_board_waits_served_total", "Wait requests answered with a peer list."),
	}
}

// Board is the coordinator service. Construct with New, start with
// Listen, stop with Close.
type Board struct {
	cfg Config
	m   *metrics

	mu      sync.Mutex
	next    transport.Addr
	members map[transport.Addr]*member
	waiters []*waiter
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup
	quit    chan struct{}
}

// New creates an idle board.
func New(cfg Config) *Board {
	return &Board{cfg: cfg, m: newMetrics(cfg.Registry), members: make(map[transport.Addr]*member), quit: make(chan struct{})}
}

func (b *Board) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// Listen binds the board to hostport and begins serving; it returns the
// bound address (useful with port 0).
func (b *Board) Listen(hostport string) (string, error) {
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return "", fmt.Errorf("board: listen %s: %w", hostport, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("board: closed")
	}
	b.ln = ln
	b.mu.Unlock()
	b.wg.Add(1)
	go b.acceptLoop(ln)
	if b.cfg.StaleAfter > 0 {
		b.wg.Add(1)
		go b.pruneLoop()
	}
	return ln.Addr().String(), nil
}

// MemberCount returns the number of live registrations.
func (b *Board) MemberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.members)
}

// Members returns a snapshot of the live peer table.
func (b *Board) Members() map[transport.Addr]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peersLocked()
}

func (b *Board) peersLocked() map[transport.Addr]string {
	out := make(map[transport.Addr]string, len(b.members))
	for a, m := range b.members {
		out[a] = m.hostport
	}
	return out
}

// Close stops the listener and every member connection.
func (b *Board) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	ln := b.ln
	for _, m := range b.members {
		if m.conn != nil {
			m.conn.Close()
		}
	}
	b.mu.Unlock()
	close(b.quit)
	if ln != nil {
		ln.Close()
	}
	b.wg.Wait()
}

func (b *Board) acceptLoop(ln net.Listener) {
	defer b.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go b.serve(conn)
	}
}

// pruneLoop evicts members whose heartbeats went stale.
func (b *Board) pruneLoop() {
	defer b.wg.Done()
	tick := time.NewTicker(b.cfg.StaleAfter / 2)
	defer tick.Stop()
	for {
		select {
		case <-b.quit:
			return
		case now := <-tick.C:
			b.mu.Lock()
			for a, m := range b.members {
				if now.Sub(m.lastSeen) > b.cfg.StaleAfter {
					b.logf("board: pruning stale member %d (%s)", a, m.hostport)
					if m.conn != nil {
						m.conn.Close()
					}
					delete(b.members, a)
					b.m.prunes.Inc()
				}
			}
			b.m.members.Set(int64(len(b.members)))
			b.mu.Unlock()
		}
	}
}

// serve handles one member connection until it closes; registrations
// made on it die with it.
func (b *Board) serve(conn net.Conn) {
	defer b.wg.Done()
	defer conn.Close()
	var mine []transport.Addr
	defer func() {
		b.mu.Lock()
		for _, a := range mine {
			if _, ok := b.members[a]; ok {
				delete(b.members, a)
				b.m.departures.Inc()
			}
		}
		b.m.members.Set(int64(len(b.members)))
		// Abandon this connection's parked waiters: their reply would
		// only hit a dead conn, and the entries would otherwise pile up
		// until board Close.
		if len(b.waiters) > 0 {
			keep := b.waiters[:0]
			for _, wt := range b.waiters {
				if wt.conn == conn {
					close(wt.done)
				} else {
					keep = append(keep, wt)
				}
			}
			b.waiters = keep
		}
		b.m.waitersParked.Set(int64(len(b.waiters)))
		b.mu.Unlock()
	}()
	var writeMu sync.Mutex
	reply := func(kind byte, payload []byte) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return wire.WriteFrame(conn, kind, payload)
	}
	buf := make([]byte, 4096)
	for {
		kind, payload, err := wire.ReadFrame(conn, buf)
		if err != nil {
			return
		}
		switch kind {
		case kindRegister:
			r := wire.NewReader(payload)
			hostport := r.String()
			if err := r.Done(); err != nil {
				reply(kindError, []byte(fmt.Sprintf("bad register: %v", err)))
				return
			}
			b.mu.Lock()
			addr := b.next
			b.next++
			b.members[addr] = &member{hostport: hostport, lastSeen: time.Now(), conn: conn}
			b.m.registrations.Inc()
			b.m.members.Set(int64(len(b.members)))
			peers := b.peersLocked()
			b.wakeWaitersLocked()
			b.mu.Unlock()
			mine = append(mine, addr)
			w := wire.NewWriter(16 + 32*len(peers))
			w.Int64(int64(addr))
			resp := append(w.Bytes(), encodePeers(peers)...)
			if err := reply(kindRegistered, resp); err != nil {
				return
			}
		case kindPeers:
			b.mu.Lock()
			peers := b.peersLocked()
			b.mu.Unlock()
			if err := reply(kindPeerList, encodePeers(peers)); err != nil {
				return
			}
		case kindWait:
			r := wire.NewReader(payload)
			n := int(r.Uint32())
			if err := r.Done(); err != nil {
				reply(kindError, []byte(fmt.Sprintf("bad wait: %v", err)))
				return
			}
			b.mu.Lock()
			if len(b.members) >= n {
				peers := b.peersLocked()
				b.m.waitsServed.Inc()
				b.mu.Unlock()
				if err := reply(kindReady, encodePeers(peers)); err != nil {
					return
				}
				continue
			}
			wt := &waiter{n: n, conn: conn, ch: make(chan []byte, 1), done: make(chan struct{})}
			b.waiters = append(b.waiters, wt)
			b.m.waitersParked.Set(int64(len(b.waiters)))
			b.mu.Unlock()
			// Park the response on its own goroutine so the member can
			// keep heartbeating on this connection meanwhile.
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				select {
				case peers := <-wt.ch:
					reply(kindReady, peers)
				case <-wt.done:
					// Connection died before quorum; nothing to write.
				case <-b.quit:
				}
			}()
		case kindHeartbeat:
			b.m.heartbeats.Inc()
			b.mu.Lock()
			now := time.Now()
			for _, a := range mine {
				if m := b.members[a]; m != nil {
					m.lastSeen = now
				}
			}
			b.mu.Unlock()
		default:
			b.logf("board: unknown frame kind %d", kind)
			reply(kindError, []byte(fmt.Sprintf("unknown kind %d", kind)))
			return
		}
	}
}

// wakeWaitersLocked releases Wait requests satisfied by the current
// member count.
func (b *Board) wakeWaitersLocked() {
	if len(b.waiters) == 0 {
		return
	}
	var keep []*waiter
	for _, wt := range b.waiters {
		if len(b.members) >= wt.n {
			wt.ch <- encodePeers(b.peersLocked())
			b.m.waitsServed.Inc()
		} else {
			keep = append(keep, wt)
		}
	}
	b.waiters = keep
	b.m.waitersParked.Set(int64(len(b.waiters)))
}

// --- client ------------------------------------------------------------------

// Client is a member's connection to the board.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // serializes frame writes (requests and heartbeats)
	reqMu   sync.Mutex // serializes request/response cycles
	buf     []byte

	hbStop chan struct{}
	hbOnce sync.Once
}

// Dial connects to a board at hostport.
func Dial(hostport string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", hostport, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("board: dial %s: %w", hostport, err)
	}
	return &Client{conn: conn, buf: make([]byte, 4096), hbStop: make(chan struct{})}, nil
}

// Close terminates the connection; the board forgets this member's
// registrations.
func (c *Client) Close() { c.poison() }

// poison tears the connection down. Called on Close and on any failed
// call: the protocol is strictly request/response on one stream, so
// after a timeout or short read the next frame in flight (possibly a
// late kindReady from a parked Wait) would be misread as the response
// to an unrelated call. There is no way to resynchronize — later calls
// fail fast and a member that wants back in re-dials and re-registers,
// which also lets the board retire its side of the state.
func (c *Client) poison() {
	c.hbOnce.Do(func() { close(c.hbStop) })
	c.conn.Close()
}

func (c *Client) write(kind byte, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return wire.WriteFrame(c.conn, kind, payload)
}

// call performs one request/response cycle. timeout of zero waits
// forever. Any failure — write error, read error or timeout, wrong
// response kind — poisons the client: see poison.
func (c *Client) call(kind byte, payload []byte, wantKind byte, timeout time.Duration) ([]byte, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	if err := c.write(kind, payload); err != nil {
		c.poison()
		return nil, err
	}
	if timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(timeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	gotKind, resp, err := wire.ReadFrame(c.conn, c.buf)
	if err != nil {
		c.poison()
		return nil, err
	}
	if gotKind == kindError {
		// The server closes its side after sending an error frame; match it.
		c.poison()
		return nil, fmt.Errorf("board: %s", resp)
	}
	if gotKind != wantKind {
		c.poison()
		return nil, fmt.Errorf("board: unexpected response kind %d (want %d)", gotKind, wantKind)
	}
	// resp aliases c.buf; copy before releasing reqMu.
	return append([]byte(nil), resp...), nil
}

// Register announces this member's listening hostport and returns the
// assigned transport address plus the peer table at registration time
// (which includes the new member).
func (c *Client) Register(hostport string) (transport.Addr, map[transport.Addr]string, error) {
	w := wire.NewWriter(len(hostport) + 8)
	w.String(hostport)
	resp, err := c.call(kindRegister, w.Bytes(), kindRegistered, 10*time.Second)
	if err != nil {
		return transport.NoAddr, nil, err
	}
	if len(resp) < 8 {
		return transport.NoAddr, nil, fmt.Errorf("board: short register response")
	}
	r := wire.NewReader(resp[:8])
	addr := transport.Addr(r.Int64())
	peers, err := decodePeers(resp[8:])
	if err != nil {
		return transport.NoAddr, nil, err
	}
	return addr, peers, nil
}

// Peers fetches the current peer table.
func (c *Client) Peers() (map[transport.Addr]string, error) {
	resp, err := c.call(kindPeers, nil, kindPeerList, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return decodePeers(resp)
}

// WaitForPeers blocks until the board has at least n members (or the
// timeout passes) and returns the peer table at that moment. Heartbeats
// keep flowing while it blocks. A timeout is fatal for the client: the
// server-side waiter may still fire later and desync the stream, so the
// connection is closed and the member must re-dial to continue.
func (c *Client) WaitForPeers(n int, timeout time.Duration) (map[transport.Addr]string, error) {
	w := wire.NewWriter(8)
	w.Uint32(uint32(n))
	resp, err := c.call(kindWait, w.Bytes(), kindReady, timeout)
	if err != nil {
		return nil, fmt.Errorf("board: waiting for %d peers: %w", n, err)
	}
	return decodePeers(resp)
}

// Heartbeat sends one liveness beacon.
func (c *Client) Heartbeat() error { return c.write(kindHeartbeat, nil) }

// StartHeartbeat launches a background beacon every interval until
// Close.
func (c *Client) StartHeartbeat(interval time.Duration) {
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-c.hbStop:
				return
			case <-tick.C:
				if err := c.Heartbeat(); err != nil {
					return
				}
			}
		}
	}()
}
