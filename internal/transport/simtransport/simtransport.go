// Package simtransport pairs the deterministic discrete-event emulator
// with the transport seam.
//
// simnet.Network implements transport.Transport directly — its clock is
// the simulated kernel clock, Schedule files events into the calendar
// queue, and Send applies the link model, fault plans, and partitions.
// This package exists to make the pairing explicit and checked: engines
// that want to be deliberate about which medium they run on construct
// their transport here, and the compile-time assertion below is the
// contract that the emulator keeps satisfying the seam as both evolve.
//
// Behavior through this adapter is bit-for-bit identical to handing the
// engine the *simnet.Network itself (it is the same value); the golden
// route/state traces in internal/pastry and the dst scenario traces pin
// that equivalence.
package simtransport

import (
	"tap/internal/simnet"
	"tap/internal/transport"
)

// New returns net as a transport.Transport. The returned value is net
// itself — no wrapping, no indirection — so deterministic behavior is
// preserved exactly.
func New(net *simnet.Network) transport.Transport { return net }

// The emulator must keep satisfying the seam.
var _ transport.Transport = (*simnet.Network)(nil)
