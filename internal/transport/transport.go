// Package transport defines the seam between TAP's protocol engines and
// the medium that carries their messages.
//
// Everything above this package — the tunnel engine, the reliability
// layer, the tunnel pools, windowed streams — is written against the
// Transport and Clock interfaces here, never against a concrete network.
// Two implementations exist:
//
//   - internal/simnet.Network, the deterministic discrete-event emulator
//     (adapted by internal/transport/simtransport), where Time is a
//     simulated clock and Schedule files events into the calendar queue;
//   - internal/transport/tcptransport, which frames messages over real
//     TCP connections between OS processes, where Time is the wall clock
//     and Schedule arms real timers.
//
// The contract both implementations honor, and engines rely on:
//
//   - Handlers and Schedule callbacks run serialized on a single logical
//     event loop. An engine never observes two callbacks concurrently, so
//     engine state needs no locking of its own. (State an *application*
//     shares across goroutines — caches consulted outside the loop — still
//     locks itself; see core.HintCache.)
//   - Send is asynchronous and unreliable: delivery may fail silently
//     (crashed destination, severed link, refused connection). Loss
//     recovery belongs to the layers above.
//   - Time flows only through Clock. Engines must never read the wall
//     clock directly, or simulated and real time could silently mix in
//     one binary; core enforces this with a static audit test.
package transport

import "time"

// Addr is a transport-level address: a small dense integer naming one
// attachment point. The simulator uses it directly as the node index; the
// TCP transport maps it to a host:port through its peer table. Address 0
// is valid.
type Addr int

// NoAddr marks "no address known", used by IP-hint fields in optimized
// tunnel messages.
const NoAddr Addr = -1

// Time is an instant on the transport's clock, expressed as the duration
// since the transport's epoch (simulation start, or process start for the
// TCP transport).
type Time = time.Duration

// Message is anything deliverable over a transport. SizeBytes reports the
// wire size without marshaling; the simulator charges serialization delay
// from it, and the TCP transport sanity-checks encodings against it.
type Message interface {
	SizeBytes() int
}

// Handler receives messages addressed to an attachment point. from is the
// immediate network-level sender (the previous hop, not the originator).
// Deliver runs on the transport's event loop and must schedule, not block.
type Handler interface {
	Deliver(from Addr, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, msg Message)

// Deliver calls f.
func (f HandlerFunc) Deliver(from Addr, msg Message) { f(from, msg) }

// Clock is the only source of time and timers available to protocol
// engines.
type Clock interface {
	// Now returns the current instant on this transport's clock.
	Now() Time
	// Schedule runs fn after delay, serialized with message deliveries on
	// the transport's event loop. A delay of zero means "as soon as
	// possible, after the current callback returns".
	Schedule(delay Time, fn func())
}

// Transport carries messages between addresses and owns the clock they
// are timestamped against.
type Transport interface {
	Clock

	// Send schedules delivery of msg from src to dst. It never blocks and
	// never reports failure: a dead destination, a severed link, or a
	// refused connection all surface only as silence.
	Send(src, dst Addr, msg Message)

	// Attach binds h to addr; attaching over a live handler is a
	// programming error. Detach removes the binding (a crash or
	// departure); detaching an unknown address is a no-op. Attached
	// reports whether addr currently has a live handler.
	Attach(addr Addr, h Handler)
	Detach(addr Addr)
	Attached(addr Addr) bool

	// Reachable reports whether a connection attempt to addr would
	// succeed right now — what a sender dialing a cached address hint can
	// observe. It says nothing about whether the node behind the address
	// still serves any particular role.
	Reachable(addr Addr) bool

	// Grow extends the address space to hold at least n addresses, for
	// deployments that add nodes after construction. Implementations with
	// an unbounded address space treat it as a no-op.
	Grow(n int)

	// WatchAddrs registers fn to observe per-address availability
	// transitions: fn(addr, false) when an address goes down and
	// fn(addr, true) when it comes back. Watchers run on the event loop.
	WatchAddrs(fn func(addr Addr, up bool))

	// Serialization estimates the time to clock size bytes onto a link,
	// and MaxLatency bounds the one-way propagation delay. Engines use
	// them only to seed retransmit-timeout estimates, so a coarse figure
	// is fine for transports that cannot know (the estimator converges on
	// measured RTTs).
	Serialization(size int) Time
	MaxLatency() Time
}
