package tcptransport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tap/internal/obs"
)

// TestStatsAccessorMatchesScrape is the regression test for replacing
// the exported atomic Stats struct with registry-backed counters: the
// compatibility accessor and the scraped exposition must be two views
// of the same atomics, never two bookkeeping paths that can drift.
func TestStatsAccessorMatchesScrape(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Config{Codec: textCodec{}, Registry: reg})
	b := New(Config{Codec: textCodec{}})
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	bAddr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeer(1, bAddr)
	cb := newCollector()
	b.Attach(1, cb)

	const n = 25
	for i := 0; i < n; i++ {
		a.Send(0, 1, textMsg{body: []byte("metered")})
	}
	cb.wait(t, n)
	a.Send(0, 99, textMsg{body: []byte("void")}) // unknown peer → drop

	st := a.Stats()
	if st.Sent != n+1 || st.Dials != 1 || st.Dropped != 1 {
		t.Fatalf("snapshot %+v", st)
	}
	if st.BytesSent == 0 {
		t.Fatal("no bytes counted")
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	if got := snap.Sum("tap_transport_sent_total"); got != float64(st.Sent) {
		t.Fatalf("scraped sent %v, accessor %d", got, st.Sent)
	}
	if got := snap.Sum("tap_transport_dropped_total"); got != float64(st.Dropped) {
		t.Fatalf("scraped drops %v, accessor %d", got, st.Dropped)
	}
	if got := snap.Sum("tap_transport_dials_total"); got != float64(st.Dials) {
		t.Fatalf("scraped dials %v, accessor %d", got, st.Dials)
	}
	if got, ok := snap.Value("tap_transport_bytes_total", obs.Label{Name: "dir", Value: "out"}); !ok || got != float64(st.BytesSent) {
		t.Fatalf("scraped bytes out %v ok=%v, accessor %d", got, ok, st.BytesSent)
	}
	if got, ok := snap.Value("tap_transport_frames_total", obs.Label{Name: "dir", Value: "out"}); !ok || got != n {
		t.Fatalf("frames out %v ok=%v, want %d", got, ok, n)
	}
	// b received what a framed.
	bFrames := b.Stats()
	if bFrames.Delivered != n {
		t.Fatalf("b delivered %d, want %d", bFrames.Delivered, n)
	}
}

// TestScrapeUnderChurn renders the exposition continuously while
// connections are dying mid-scrape: every dial hands out a pipe whose
// far end closes immediately, so writers churn up and down as fast as
// Send can trigger them. The scrape must stay parseable and the gauges
// must return to rest afterward — queue depth zero, no active outbound
// conns — proving the inc/dec pairing survives teardown races.
func TestScrapeUnderChurn(t *testing.T) {
	reg := obs.NewRegistry()
	d := &memDialer{serve: func(c net.Conn) { c.Close() }}
	a := New(Config{Codec: textCodec{}, Dialer: d, Registry: reg})
	t.Cleanup(a.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn driver
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.SetPeer(1, "mem")
				a.Send(0, 1, textMsg{body: []byte("doomed")})
			}
		}
	}()
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() { // concurrent scrapers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := reg.WriteText(&sb); err != nil {
					t.Errorf("render: %v", err)
					return
				}
				if _, err := obs.ParseText(strings.NewReader(sb.String())); err != nil {
					t.Errorf("scrape under churn unparseable: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Let the last writer goroutines unwind, then check rest state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		snap, err := obs.ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		depth, _ := snap.Value("tap_transport_queue_depth")
		active, _ := snap.Value("tap_transport_conns_active", obs.Label{Name: "dir", Value: "out"})
		opened := snap.Sum("tap_transport_conns_opened_total")
		closed := snap.Sum("tap_transport_conns_closed_total")
		if depth == 0 && active == 0 && opened == closed {
			if opened == 0 {
				t.Fatal("churn opened no connections — test exercised nothing")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges never settled: depth=%v active=%v opened=%v closed=%v",
				depth, active, opened, closed)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
