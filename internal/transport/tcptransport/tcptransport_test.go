package tcptransport

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"tap/internal/transport"
	"tap/internal/wire"
)

// textMsg is the test codec's only message kind: a plain byte string.
type textMsg struct{ body []byte }

func (m textMsg) SizeBytes() int { return len(m.body) }

type textCodec struct{}

func (textCodec) Encode(msg transport.Message) (byte, []byte, error) {
	tm, ok := msg.(textMsg)
	if !ok {
		return 0, nil, fmt.Errorf("unexpected message %T", msg)
	}
	return 1, tm.body, nil
}

func (textCodec) Decode(kind byte, payload []byte) (transport.Message, error) {
	if kind != 1 {
		return nil, fmt.Errorf("unexpected kind %d", kind)
	}
	return textMsg{body: append([]byte(nil), payload...)}, nil
}

// collector records deliveries and lets tests wait for a count.
type collector struct {
	mu   sync.Mutex
	got  []string
	from []transport.Addr
	ch   chan struct{}
}

func newCollector() *collector { return &collector{ch: make(chan struct{}, 1024)} }

func (c *collector) Deliver(from transport.Addr, msg transport.Message) {
	c.mu.Lock()
	c.got = append(c.got, string(msg.(textMsg).body))
	c.from = append(c.from, from)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			c.mu.Lock()
			defer c.mu.Unlock()
			t.Fatalf("timed out waiting for %d deliveries, have %d: %v", n, len(c.got), c.got)
		}
	}
}

func newPair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	a := New(Config{Codec: textCodec{}})
	b := New(Config{Codec: textCodec{}})
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	aAddr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bAddr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeer(1, bAddr)
	b.SetPeer(0, aAddr)
	return a, b
}

func TestSendBothDirections(t *testing.T) {
	a, b := newPair(t)
	ca, cb := newCollector(), newCollector()
	a.Attach(0, ca)
	b.Attach(1, cb)

	a.Send(0, 1, textMsg{body: []byte("hello")})
	cb.wait(t, 1)
	b.Send(1, 0, textMsg{body: []byte("world")})
	ca.wait(t, 1)

	if cb.got[0] != "hello" || cb.from[0] != 0 {
		t.Fatalf("b got %q from %d", cb.got[0], cb.from[0])
	}
	if ca.got[0] != "world" || ca.from[0] != 1 {
		t.Fatalf("a got %q from %d", ca.got[0], ca.from[0])
	}
}

func TestConnectionReuse(t *testing.T) {
	a, b := newPair(t)
	cb := newCollector()
	b.Attach(1, cb)

	const n = 100
	for i := 0; i < n; i++ {
		a.Send(0, 1, textMsg{body: []byte(fmt.Sprintf("m%d", i))})
	}
	cb.wait(t, n)
	if dials := a.Stats().Dials; dials != 1 {
		t.Fatalf("expected 1 dial for %d messages, got %d", n, dials)
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	// TCP preserves order on a single connection.
	for i, g := range cb.got {
		if want := fmt.Sprintf("m%d", i); g != want {
			t.Fatalf("message %d: got %q want %q", i, g, want)
		}
	}
}

func TestLocalLoopback(t *testing.T) {
	a := New(Config{Codec: textCodec{}})
	t.Cleanup(a.Close)
	c := newCollector()
	a.Attach(5, c)
	// No Listen, no peers: a local destination must still deliver.
	a.Send(3, 5, textMsg{body: []byte("loop")})
	c.wait(t, 1)
	if c.got[0] != "loop" || c.from[0] != 3 {
		t.Fatalf("got %q from %d", c.got[0], c.from[0])
	}
	if a.Stats().Dials != 0 {
		t.Fatalf("loopback dialed")
	}
}

func TestUnknownPeerDrops(t *testing.T) {
	a := New(Config{Codec: textCodec{}})
	t.Cleanup(a.Close)
	a.Send(0, 42, textMsg{body: []byte("void")})
	if d := a.Stats().Dropped; d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if a.Reachable(42) {
		t.Fatal("unknown peer reported reachable")
	}
}

// failDialer always errors, recording how often it was asked.
type failDialer struct{ calls atomic32 }

type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc() int { a.mu.Lock(); defer a.mu.Unlock(); a.n++; return a.n }
func (a *atomic32) get() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func (d *failDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	d.calls.inc()
	return nil, fmt.Errorf("mock dialer: refusing %s", address)
}

func TestDialFailureMarksDown(t *testing.T) {
	d := &failDialer{}
	a := New(Config{Codec: textCodec{}, Dialer: d})
	t.Cleanup(a.Close)
	a.SetPeer(1, "127.0.0.1:1") // never dialed for real — mock intercepts

	downCh := make(chan transport.Addr, 1)
	a.WatchAddrs(func(addr transport.Addr, up bool) {
		if !up {
			downCh <- addr
		}
	})

	if !a.Reachable(1) {
		t.Fatal("fresh peer should be reachable until proven otherwise")
	}
	a.Send(0, 1, textMsg{body: []byte("doomed")})
	select {
	case addr := <-downCh:
		if addr != 1 {
			t.Fatalf("down notification for %d", addr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no down notification after dial failure")
	}
	if a.Reachable(1) {
		t.Fatal("peer still reachable after failed dial")
	}
	if d.calls.get() != 1 {
		t.Fatalf("dialer called %d times", d.calls.get())
	}
	// Refreshing the peer entry restores optimism.
	a.SetPeer(1, "127.0.0.1:1")
	if !a.Reachable(1) {
		t.Fatal("SetPeer did not clear the down mark")
	}
}

// memDialer returns the client half of a net.Pipe and hands the server
// half to a callback, letting tests see raw bytes without a socket.
type memDialer struct{ serve func(net.Conn) }

func (d *memDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	client, server := net.Pipe()
	go d.serve(server)
	return client, nil
}

func TestCustomDialerSeesFrames(t *testing.T) {
	frames := make(chan struct {
		kind    byte
		payload []byte
	}, 1)
	d := &memDialer{serve: func(c net.Conn) {
		defer c.Close()
		kind, payload, err := wire.ReadFrame(c, nil)
		if err != nil {
			return
		}
		frames <- struct {
			kind    byte
			payload []byte
		}{kind, append([]byte(nil), payload...)}
	}}
	a := New(Config{Codec: textCodec{}, Dialer: d})
	t.Cleanup(a.Close)
	a.SetPeer(9, "mem")
	a.Send(2, 9, textMsg{body: []byte("framed")})

	select {
	case f := <-frames:
		if f.kind != 1 {
			t.Fatalf("frame kind %d", f.kind)
		}
		if len(f.payload) != 16+len("framed") {
			t.Fatalf("payload %d bytes, want src+dst+body = %d", len(f.payload), 16+len("framed"))
		}
		if string(f.payload[16:]) != "framed" {
			t.Fatalf("body %q", f.payload[16:])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no frame reached the dialer-provided connection")
	}
}

func TestScheduleSerializedWithDeliveries(t *testing.T) {
	a := New(Config{Codec: textCodec{}})
	t.Cleanup(a.Close)

	var mu sync.Mutex
	inCallback := false
	done := make(chan struct{})
	// If deliveries and timers ever overlapped, the flag check would
	// trip under -race or observe inCallback == true.
	check := func() {
		mu.Lock()
		if inCallback {
			mu.Unlock()
			t.Error("callbacks overlapped")
			return
		}
		inCallback = true
		mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		mu.Lock()
		inCallback = false
		mu.Unlock()
	}
	a.Attach(1, transport.HandlerFunc(func(from transport.Addr, msg transport.Message) { check() }))
	const n = 50
	var remaining sync.WaitGroup
	remaining.Add(2 * n)
	for i := 0; i < n; i++ {
		a.Schedule(time.Duration(i)*time.Millisecond/10, func() { check(); remaining.Done() })
		go func() {
			a.Send(0, 1, textMsg{body: []byte("x")})
			remaining.Done()
		}()
	}
	go func() { remaining.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out")
	}
}

func TestNowMonotonic(t *testing.T) {
	a := New(Config{Codec: textCodec{}})
	t.Cleanup(a.Close)
	t0 := a.Now()
	time.Sleep(time.Millisecond)
	t1 := a.Now()
	if t1 <= t0 {
		t.Fatalf("Now went backward: %v then %v", t0, t1)
	}
}

func TestSerializationAndLatency(t *testing.T) {
	a := New(Config{Codec: textCodec{}, BandwidthBitsPerSec: 8_000_000, LatencyCeiling: 50 * time.Millisecond})
	t.Cleanup(a.Close)
	if got := a.Serialization(1000); got != time.Millisecond {
		t.Fatalf("Serialization(1000) = %v at 8 Mbit/s, want 1ms", got)
	}
	if a.MaxLatency() != 50*time.Millisecond {
		t.Fatalf("MaxLatency = %v", a.MaxLatency())
	}
	b := New(Config{Codec: textCodec{}})
	t.Cleanup(b.Close)
	if b.Serialization(1000) != 0 {
		t.Fatal("unconfigured bandwidth should report zero serialization")
	}
}

// TestSendDuringPeerTeardown hammers Send from several goroutines while
// the control path repeatedly tears the peer down (endpoint change,
// removal, re-add). Before p.out teardown moved to a quit channel this
// panicked with "send on closed channel".
func TestSendDuringPeerTeardown(t *testing.T) {
	a, b := newPair(t)
	cb := newCollector()
	b.Attach(1, cb)
	bHostport := b.ln.Addr().String()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Send(0, 1, textMsg{body: []byte("x")})
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		// A changed endpoint tears the old connection down mid-send...
		a.SetPeer(1, "127.0.0.1:9")
		a.SetPeer(1, bHostport)
		// ...and so does removing the peer outright.
		a.RemovePeer(1)
		a.SetPeer(1, bHostport)
	}
	close(stop)
	wg.Wait()
}

// TestConnectionChurnDoesNotLeakGoroutines kills the peer's connection
// on every send and re-adds it, many times over. Before the
// per-connection done channel, each dead connection left a watcher
// goroutine parked on <-t.quit until Close.
func TestConnectionChurnDoesNotLeakGoroutines(t *testing.T) {
	// Every dial yields a pipe whose far end closes immediately, so each
	// writer dies on its first write.
	d := &memDialer{serve: func(c net.Conn) { c.Close() }}
	a := New(Config{Codec: textCodec{}, Dialer: d})
	t.Cleanup(a.Close)

	churn := func() {
		a.SetPeer(1, "mem")
		a.Send(0, 1, textMsg{body: []byte("x")})
		deadline := time.Now().Add(5 * time.Second)
		for a.Reachable(1) {
			if time.Now().After(deadline) {
				t.Fatal("peer never went down")
			}
			time.Sleep(time.Millisecond)
		}
	}
	churn() // warm up: loop goroutine, first writer, etc.
	base := runtime.NumGoroutine()
	const cycles = 40
	for i := 0; i < cycles; i++ {
		churn()
	}
	// Give the last writer and its watcher a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+5 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across %d connection churns",
				base, runtime.NumGoroutine(), cycles)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	a, b := newPair(t)
	cb := newCollector()
	b.Attach(1, cb)
	a.Send(0, 1, textMsg{body: []byte("one")})
	cb.wait(t, 1)
	b.Detach(1)
	if b.Attached(1) {
		t.Fatal("still attached after Detach")
	}
	a.Send(0, 1, textMsg{body: []byte("two")})
	// The second send must not deliver; give it a moment then check.
	time.Sleep(50 * time.Millisecond)
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if len(cb.got) != 1 {
		t.Fatalf("delivered after detach: %v", cb.got)
	}
}
