// Package tcptransport implements the transport seam over real TCP
// connections between OS processes.
//
// Where the simulator models a link, this package opens one: every
// message is encoded by an application-supplied Codec, framed with
// internal/wire's length-prefixed magic/version header, and written to a
// per-peer TCP connection that is dialed on first use and reused for the
// peer's lifetime. Addresses stay the seam's small dense integers; a peer
// table maps each to a host:port, fed by the bulletin board
// (internal/board) in a deployment.
//
// Concurrency model. The transport preserves the seam's contract that
// engine callbacks never run concurrently: message deliveries, Schedule
// callbacks, and watcher notifications are all funneled through a single
// dispatch goroutine (the "loop"). Socket I/O lives on its own
// goroutines — one reader per accepted connection, one writer per dialed
// peer — so a slow peer never stalls the loop; a full outbound queue
// drops messages instead, which is exactly the unreliable-send semantics
// the seam promises and the layers above already recover from.
//
// Dialing goes through the Dialer seam: the default is a net.Dialer with
// Config.DialTimeout, and tests (or an onion-routed deployment wrapping
// connections in another transport) inject their own — the same
// wrapper-with-transparent-fallback shape as a TorDialer around a node
// dialer.
//
// Trust model. The transport assumes it runs on a trusted network
// segment (localhost testbeds, a closed lab LAN): frames carry their
// source address in cleartext, inbound connections are not
// authenticated, and nothing is encrypted at this layer. See DESIGN.md
// §14 ("Trust model") for what that does and does not cost, and the
// Dialer seam for where a hardened deployment slots in an authenticated
// channel.
package tcptransport

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tap/internal/transport"
	"tap/internal/wire"
)

// Codec translates between engine messages and frame payloads. Encode
// returns the frame kind and payload for a message; Decode reverses it.
// The payload slice passed to Decode aliases the connection's read
// buffer and is valid only for the duration of the call — implementations
// copy what they keep.
type Codec interface {
	Encode(msg transport.Message) (kind byte, payload []byte, err error)
	Decode(kind byte, payload []byte) (transport.Message, error)
}

// Dialer is the connection-establishment seam. The zero Config uses a
// net.Dialer bounded by DialTimeout; tests inject failing or in-memory
// dialers, and a hardened deployment can wrap connections in another
// transport without this package knowing.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Config tunes a Transport. The zero value of every field has a usable
// default.
type Config struct {
	// Codec is required: it defines the message set on the wire.
	Codec Codec
	// DialTimeout bounds each connection attempt. Default 3s.
	DialTimeout time.Duration
	// LatencyCeiling is what MaxLatency reports — a coarse upper bound
	// used only to seed retransmit-timeout estimates. Default 200ms.
	LatencyCeiling time.Duration
	// BandwidthBitsPerSec, when positive, makes Serialization report
	// size*8/bandwidth; zero reports no serialization delay (TCP's own
	// pacing governs).
	BandwidthBitsPerSec int64
	// SendQueue is the per-peer outbound queue depth; a full queue drops
	// (unreliable-send semantics). Default 256.
	SendQueue int
	// Dialer overrides connection establishment. Default: net.Dialer
	// with DialTimeout.
	Dialer Dialer
	// Logf, when non-nil, receives diagnostic messages (dial failures,
	// decode errors). Default: silent.
	Logf func(format string, args ...any)
}

// Stats counts transport-level activity. Fields are atomics: readers use
// the Load methods.
type Stats struct {
	Sent      atomic.Uint64 // messages handed to Send
	Delivered atomic.Uint64 // messages handed to a local handler
	Dropped   atomic.Uint64 // messages lost: unknown peer, full queue, dead conn, no handler
	Dials     atomic.Uint64 // connection attempts
	DialFails atomic.Uint64 // failed connection attempts
	BytesSent atomic.Uint64 // framed bytes written
}

// peer is one outbound neighbor: its queue, its writer goroutine, and
// the quit channel that tears both down.
//
// p.out is NEVER closed. Send enqueues without holding the transport
// lock, so a close racing an enqueue would panic the process; teardown
// instead closes p.quit, which the writer and every enqueue select on,
// turning late sends into ordinary drops.
type peer struct {
	hostport string
	out      chan []byte
	quit     chan struct{}
	stop     sync.Once
}

// shutdown signals the peer's writer to exit and pending or future
// enqueues to drop. Idempotent and safe from any goroutine.
func (p *peer) shutdown() { p.stop.Do(func() { close(p.quit) }) }

// Transport carries messages over TCP. Construct with New, then Listen
// (to accept inbound traffic) and SetPeer (to name outbound neighbors).
type Transport struct {
	cfg   Config
	start time.Time
	Stats Stats

	events chan func()
	quit   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	handlers map[transport.Addr]transport.Handler
	peers    map[transport.Addr]string
	conns    map[transport.Addr]*peer
	down     map[transport.Addr]bool
	watchers []func(addr transport.Addr, up bool)
	ln       net.Listener
	closed   bool
}

// New returns a transport ready for Listen/SetPeer. Call Close when done.
func New(cfg Config) *Transport {
	if cfg.Codec == nil {
		panic("tcptransport: Config.Codec is required")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.LatencyCeiling == 0 {
		cfg.LatencyCeiling = 200 * time.Millisecond
	}
	if cfg.SendQueue == 0 {
		cfg.SendQueue = 256
	}
	if cfg.Dialer == nil {
		cfg.Dialer = &net.Dialer{Timeout: cfg.DialTimeout}
	}
	t := &Transport{
		cfg:      cfg,
		start:    time.Now(),
		events:   make(chan func(), 1024),
		quit:     make(chan struct{}),
		handlers: make(map[transport.Addr]transport.Handler),
		peers:    make(map[transport.Addr]string),
		conns:    make(map[transport.Addr]*peer),
		down:     make(map[transport.Addr]bool),
	}
	t.wg.Add(1)
	go t.loop()
	return t
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// loop is the single dispatch goroutine: every handler invocation,
// Schedule callback, and watcher notification runs here, serialized.
func (t *Transport) loop() {
	defer t.wg.Done()
	for {
		select {
		case fn := <-t.events:
			fn()
		case <-t.quit:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case fn := <-t.events:
					fn()
				default:
					return
				}
			}
		}
	}
}

// enqueue files fn onto the dispatch loop; after Close it is dropped.
func (t *Transport) enqueue(fn func()) {
	select {
	case t.events <- fn:
	case <-t.quit:
	}
}

// Listen starts accepting inbound connections on hostport (e.g.
// "127.0.0.1:0") and returns the bound address.
func (t *Transport) Listen(hostport string) (string, error) {
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return "", fmt.Errorf("tcptransport: listen %s: %w", hostport, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("tcptransport: transport closed")
	}
	t.ln = ln
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *Transport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection and dispatches
// them. The frame payload is [src:8][dst:8][codec payload].
//
// The src address is taken from the frame as-is: the transport trusts
// the network segment it runs on and does no per-connection
// authentication (DESIGN.md §14, "Trust model"). A hardened deployment
// binds identity to the connection via the Dialer seam.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		// Tear the connection down when the transport closes, so the
		// blocking ReadFrame returns — and exit with the loop, so a
		// connection dying on its own doesn't leak this watcher.
		select {
		case <-t.quit:
			conn.Close()
		case <-done:
		}
	}()
	buf := make([]byte, 64<<10)
	for {
		kind, payload, err := wire.ReadFrame(conn, buf)
		if err != nil {
			return
		}
		if len(payload) < 16 {
			t.logf("tcptransport: runt frame (%d bytes) from %s", len(payload), conn.RemoteAddr())
			return
		}
		src := transport.Addr(int64(binary.BigEndian.Uint64(payload[0:8])))
		dst := transport.Addr(int64(binary.BigEndian.Uint64(payload[8:16])))
		msg, err := t.cfg.Codec.Decode(kind, payload[16:])
		if err != nil {
			t.logf("tcptransport: decode kind %d from %s: %v", kind, conn.RemoteAddr(), err)
			continue
		}
		t.deliverLocal(src, dst, msg)
	}
}

// deliverLocal routes a decoded (or loopback) message to dst's handler on
// the dispatch loop.
func (t *Transport) deliverLocal(src, dst transport.Addr, msg transport.Message) {
	t.enqueue(func() {
		t.mu.Lock()
		h := t.handlers[dst]
		t.mu.Unlock()
		if h == nil {
			t.Stats.Dropped.Add(1)
			return
		}
		t.Stats.Delivered.Add(1)
		h.Deliver(src, msg)
	})
}

// --- transport.Transport ----------------------------------------------------

// Now returns the time since the transport's construction — the wall
// clock rebased to a process-local epoch, mirroring the simulator's
// "duration since start" convention.
func (t *Transport) Now() transport.Time { return time.Since(t.start) }

// Schedule runs fn after delay on the dispatch loop, serialized with
// message deliveries.
func (t *Transport) Schedule(delay transport.Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	time.AfterFunc(delay, func() { t.enqueue(fn) })
}

// Send encodes and transmits msg. Local destinations (an attached
// handler in this process) short-circuit through the dispatch loop
// without touching a socket, so one process can host several addresses —
// the integration tests and single-binary demos rely on that.
func (t *Transport) Send(src, dst transport.Addr, msg transport.Message) {
	t.Stats.Sent.Add(1)
	t.mu.Lock()
	_, local := t.handlers[dst]
	t.mu.Unlock()
	if local {
		t.deliverLocal(src, dst, msg)
		return
	}
	kind, payload, err := t.cfg.Codec.Encode(msg)
	if err != nil {
		t.logf("tcptransport: encode to %d: %v", dst, err)
		t.Stats.Dropped.Add(1)
		return
	}
	body := make([]byte, 0, 16+len(payload))
	body = binary.BigEndian.AppendUint64(body, uint64(int64(src)))
	body = binary.BigEndian.AppendUint64(body, uint64(int64(dst)))
	body = append(body, payload...)
	frame := wire.AppendFrame(nil, kind, body)

	p := t.peerFor(dst)
	if p == nil {
		t.Stats.Dropped.Add(1)
		return
	}
	select {
	case <-p.quit:
		// Peer torn down between peerFor and the enqueue (endpoint
		// change, RemovePeer, Close). Drop; the next Send re-resolves.
		t.Stats.Dropped.Add(1)
		return
	default:
	}
	select {
	case p.out <- frame:
	default:
		// Full queue: the peer is slower than we produce. Drop, as an
		// overloaded link would.
		t.Stats.Dropped.Add(1)
	}
}

// peerFor returns the live peer record for dst, creating its queue and
// writer goroutine on first use (the connection itself is dialed by the
// writer). Unknown destinations return nil.
func (t *Transport) peerFor(dst transport.Addr) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if p := t.conns[dst]; p != nil {
		return p
	}
	hostport, ok := t.peers[dst]
	if !ok {
		return nil
	}
	p := &peer{hostport: hostport, out: make(chan []byte, t.cfg.SendQueue), quit: make(chan struct{})}
	t.conns[dst] = p
	t.wg.Add(1)
	go t.writeLoop(dst, p)
	return p
}

// writeLoop owns one peer's connection: dial once (per connection
// lifetime), then drain the queue onto it. Any error tears the peer down;
// the next Send re-creates it, so reconnection is lazy and the engine
// above sees only message loss in between.
func (t *Transport) writeLoop(dst transport.Addr, p *peer) {
	defer t.wg.Done()
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.DialTimeout)
	t.Stats.Dials.Add(1)
	conn, err := t.cfg.Dialer.DialContext(ctx, "tcp", p.hostport)
	cancel()
	if err != nil {
		t.Stats.DialFails.Add(1)
		t.logf("tcptransport: dial %d (%s): %v", dst, p.hostport, err)
		t.dropPeer(dst, p, false)
		return
	}
	defer conn.Close()
	t.markUp(dst)
	done := make(chan struct{})
	defer close(done)
	go func() {
		// Unblock a stuck Write when the transport closes or the peer is
		// torn down; exit with the loop otherwise, so connection churn
		// doesn't accumulate watchers.
		select {
		case <-t.quit:
			conn.Close()
		case <-p.quit:
			conn.Close()
		case <-done:
		}
	}()
	for {
		select {
		case <-p.quit:
			return
		case frame := <-p.out:
			if _, err := conn.Write(frame); err != nil {
				t.logf("tcptransport: write %d (%s): %v", dst, p.hostport, err)
				t.dropPeer(dst, p, true)
				return
			}
			t.Stats.BytesSent.Add(uint64(len(frame)))
		}
	}
}

// dropPeer tears a dead peer down, counts its queued frames as drops,
// and — if it was still the live record for dst — marks the address
// down for Reachable. A stale peer (already replaced by SetPeer) is
// drained without touching the fresh endpoint's state.
func (t *Transport) dropPeer(dst transport.Addr, p *peer, hadConn bool) {
	p.shutdown()
	t.mu.Lock()
	current := t.conns[dst] == p
	if current {
		delete(t.conns, dst)
	}
	wasDown := t.down[dst]
	if current {
		t.down[dst] = true
	}
	watchers := t.snapshotWatchersLocked()
	t.mu.Unlock()
	t.discardQueued(p)
	if current && !wasDown {
		for _, fn := range watchers {
			fn := fn
			t.enqueue(func() { fn(dst, false) })
		}
	}
	_ = hadConn
}

// discardQueued drains whatever was queued behind a dead connection,
// counting each frame as a drop.
func (t *Transport) discardQueued(p *peer) {
	for {
		select {
		case <-p.out:
			t.Stats.Dropped.Add(1)
		default:
			return
		}
	}
}

// snapshotWatchersLocked copies the watcher list for use outside the lock.
func (t *Transport) snapshotWatchersLocked() []func(transport.Addr, bool) {
	out := make([]func(transport.Addr, bool), len(t.watchers))
	copy(out, t.watchers)
	return out
}

// markUp clears the down flag after a successful dial and notifies
// watchers of the recovery.
func (t *Transport) markUp(dst transport.Addr) {
	t.mu.Lock()
	wasDown := t.down[dst]
	delete(t.down, dst)
	watchers := t.snapshotWatchersLocked()
	t.mu.Unlock()
	if wasDown {
		for _, fn := range watchers {
			fn := fn
			t.enqueue(func() { fn(dst, true) })
		}
	}
}

// Attach binds h to addr. Attaching over a live handler is a programming
// error, matching the simulator.
func (t *Transport) Attach(addr transport.Addr, h transport.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handlers[addr] != nil {
		panic(fmt.Sprintf("tcptransport: address %d already attached", addr))
	}
	t.handlers[addr] = h
}

// Detach removes the handler at addr.
func (t *Transport) Detach(addr transport.Addr) {
	t.mu.Lock()
	delete(t.handlers, addr)
	t.mu.Unlock()
}

// Attached reports whether addr has a live local handler.
func (t *Transport) Attached(addr transport.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handlers[addr] != nil
}

// Reachable reports whether addr is worth dialing: it is local, or in the
// peer table and not known-dead since its last failure. SetPeer clears
// the dead mark, so a refreshed peer-set entry restores optimism.
func (t *Transport) Reachable(addr transport.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handlers[addr] != nil {
		return true
	}
	_, known := t.peers[addr]
	return known && !t.down[addr]
}

// Grow is a no-op: the TCP address space is the peer table.
func (t *Transport) Grow(n int) {}

// WatchAddrs registers fn for up/down transitions observed through
// dialing: a failed dial or dead connection reports down, a successful
// re-dial reports up. Watchers run on the dispatch loop.
func (t *Transport) WatchAddrs(fn func(addr transport.Addr, up bool)) {
	t.mu.Lock()
	t.watchers = append(t.watchers, fn)
	t.mu.Unlock()
}

// Serialization reports the configured bandwidth estimate's clocking
// time, or zero when none is configured.
func (t *Transport) Serialization(size int) transport.Time {
	if t.cfg.BandwidthBitsPerSec <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(int64(size) * 8 * int64(time.Second) / t.cfg.BandwidthBitsPerSec)
}

// MaxLatency reports the configured latency ceiling.
func (t *Transport) MaxLatency() transport.Time { return t.cfg.LatencyCeiling }

// --- peer table -------------------------------------------------------------

// SetPeer maps addr to a host:port, replacing any previous mapping and
// clearing a down mark. A changed mapping tears down the old connection
// so the next send dials the new endpoint.
func (t *Transport) SetPeer(addr transport.Addr, hostport string) {
	t.mu.Lock()
	prev, had := t.peers[addr]
	t.peers[addr] = hostport
	delete(t.down, addr)
	var stale *peer
	if had && prev != hostport {
		if p := t.conns[addr]; p != nil {
			stale = p
			delete(t.conns, addr)
		}
	}
	t.mu.Unlock()
	if stale != nil {
		stale.shutdown()
		t.discardQueued(stale)
	}
}

// RemovePeer forgets addr. In-flight queue contents are dropped.
func (t *Transport) RemovePeer(addr transport.Addr) {
	t.mu.Lock()
	delete(t.peers, addr)
	delete(t.down, addr)
	p := t.conns[addr]
	delete(t.conns, addr)
	t.mu.Unlock()
	if p != nil {
		p.shutdown()
		t.discardQueued(p)
	}
}

// Peers returns a snapshot of the peer table.
func (t *Transport) Peers() map[transport.Addr]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[transport.Addr]string, len(t.peers))
	for a, hp := range t.peers {
		out[a] = hp
	}
	return out
}

// Close stops the listener, the dispatch loop, and every peer writer,
// and waits for them to exit.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.ln
	conns := t.conns
	t.conns = make(map[transport.Addr]*peer)
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, p := range conns {
		p.shutdown()
	}
	close(t.quit)
	t.wg.Wait()
}

var _ transport.Transport = (*Transport)(nil)
