// Package tcptransport implements the transport seam over real TCP
// connections between OS processes.
//
// Where the simulator models a link, this package opens one: every
// message is encoded by an application-supplied Codec, framed with
// internal/wire's length-prefixed magic/version header, and written to a
// per-peer TCP connection that is dialed on first use and reused for the
// peer's lifetime. Addresses stay the seam's small dense integers; a peer
// table maps each to a host:port, fed by the bulletin board
// (internal/board) in a deployment.
//
// Concurrency model. The transport preserves the seam's contract that
// engine callbacks never run concurrently: message deliveries, Schedule
// callbacks, and watcher notifications are all funneled through a single
// dispatch goroutine (the "loop"). Socket I/O lives on its own
// goroutines — one reader per accepted connection, one writer per dialed
// peer — so a slow peer never stalls the loop; a full outbound queue
// drops messages instead, which is exactly the unreliable-send semantics
// the seam promises and the layers above already recover from.
//
// Dialing goes through the Dialer seam: the default is a net.Dialer with
// Config.DialTimeout, and tests (or an onion-routed deployment wrapping
// connections in another transport) inject their own — the same
// wrapper-with-transparent-fallback shape as a TorDialer around a node
// dialer.
//
// Trust model. The transport assumes it runs on a trusted network
// segment (localhost testbeds, a closed lab LAN): frames carry their
// source address in cleartext, inbound connections are not
// authenticated, and nothing is encrypted at this layer. See DESIGN.md
// §14 ("Trust model") for what that does and does not cost, and the
// Dialer seam for where a hardened deployment slots in an authenticated
// channel.
package tcptransport

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"tap/internal/obs"
	"tap/internal/transport"
	"tap/internal/wire"
)

// Codec translates between engine messages and frame payloads. Encode
// returns the frame kind and payload for a message; Decode reverses it.
// The payload slice passed to Decode aliases the connection's read
// buffer and is valid only for the duration of the call — implementations
// copy what they keep.
type Codec interface {
	Encode(msg transport.Message) (kind byte, payload []byte, err error)
	Decode(kind byte, payload []byte) (transport.Message, error)
}

// Dialer is the connection-establishment seam. The zero Config uses a
// net.Dialer bounded by DialTimeout; tests inject failing or in-memory
// dialers, and a hardened deployment can wrap connections in another
// transport without this package knowing.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Config tunes a Transport. The zero value of every field has a usable
// default.
type Config struct {
	// Codec is required: it defines the message set on the wire.
	Codec Codec
	// DialTimeout bounds each connection attempt. Default 3s.
	DialTimeout time.Duration
	// LatencyCeiling is what MaxLatency reports — a coarse upper bound
	// used only to seed retransmit-timeout estimates. Default 200ms.
	LatencyCeiling time.Duration
	// BandwidthBitsPerSec, when positive, makes Serialization report
	// size*8/bandwidth; zero reports no serialization delay (TCP's own
	// pacing governs).
	BandwidthBitsPerSec int64
	// SendQueue is the per-peer outbound queue depth; a full queue drops
	// (unreliable-send semantics). Default 256.
	SendQueue int
	// Dialer overrides connection establishment. Default: net.Dialer
	// with DialTimeout.
	Dialer Dialer
	// Logf, when non-nil, receives diagnostic messages (dial failures,
	// decode errors). Default: silent.
	Logf func(format string, args ...any)
	// Registry, when non-nil, receives the transport's metrics
	// (tap_transport_*; see DESIGN.md §15). One transport per registry:
	// the metric names are not instance-qualified. When nil the
	// transport keeps a private registry so Stats() still reports.
	Registry *obs.Registry
}

// metrics holds the transport's instruments. All counting flows through
// obs atomics — there is no separate stats bookkeeping — so a scrape and
// the Stats() accessor can never disagree.
type metrics struct {
	sent      *obs.Counter
	delivered *obs.Counter

	// Drops by cause; the Stats() accessor reports their sum.
	dropUnknownPeer *obs.Counter // destination not in the peer table (or transport closed)
	dropQueueFull   *obs.Counter // per-peer outbound queue overflow
	dropConnDown    *obs.Counter // peer torn down: late sends and drained queues
	dropNoHandler   *obs.Counter // delivery with no attached handler
	dropEncode      *obs.Counter // codec refused the message

	dials       *obs.Counter
	dialFails   *obs.Counter
	dialSeconds *obs.Histogram

	framesOut *obs.Counter
	framesIn  *obs.Counter
	bytesOut  *obs.Counter
	bytesIn   *obs.Counter

	decodeErrs *obs.Counter
	runtFrames *obs.Counter

	connsIn       *obs.Gauge
	connsOut      *obs.Gauge
	connOpensIn   *obs.Counter
	connOpensOut  *obs.Counter
	connClosesIn  *obs.Counter
	connClosesOut *obs.Counter

	queueDepth *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	dirIn := obs.Label{Name: "dir", Value: "in"}
	dirOut := obs.Label{Name: "dir", Value: "out"}
	reason := func(v string) obs.Label { return obs.Label{Name: "reason", Value: v} }
	const drop = "tap_transport_dropped_total"
	const dropHelp = "Messages lost by the transport, by cause."
	frames := "tap_transport_frames_total"
	framesHelp := "Frames crossing a socket, by direction."
	bytes := "tap_transport_bytes_total"
	bytesHelp := "Framed bytes crossing a socket, by direction."
	connsActive := "tap_transport_conns_active"
	connsActiveHelp := "Open TCP connections, by direction."
	connsOpened := "tap_transport_conns_opened_total"
	connsOpenedHelp := "TCP connections opened, by direction."
	connsClosed := "tap_transport_conns_closed_total"
	connsClosedHelp := "TCP connections closed, by direction."
	return &metrics{
		sent:      reg.Counter("tap_transport_sent_total", "Messages handed to Send."),
		delivered: reg.Counter("tap_transport_delivered_total", "Messages handed to a local handler."),

		dropUnknownPeer: reg.Counter(drop, dropHelp, reason("unknown_peer")),
		dropQueueFull:   reg.Counter(drop, dropHelp, reason("queue_full")),
		dropConnDown:    reg.Counter(drop, dropHelp, reason("conn_down")),
		dropNoHandler:   reg.Counter(drop, dropHelp, reason("no_handler")),
		dropEncode:      reg.Counter(drop, dropHelp, reason("encode")),

		dials:       reg.Counter("tap_transport_dials_total", "Connection attempts."),
		dialFails:   reg.Counter("tap_transport_dial_failures_total", "Failed connection attempts."),
		dialSeconds: reg.Histogram("tap_transport_dial_seconds", "Dial latency of successful connection attempts.", nil),

		framesOut: reg.Counter(frames, framesHelp, dirOut),
		framesIn:  reg.Counter(frames, framesHelp, dirIn),
		bytesOut:  reg.Counter(bytes, bytesHelp, dirOut),
		bytesIn:   reg.Counter(bytes, bytesHelp, dirIn),

		decodeErrs: reg.Counter("tap_transport_decode_errors_total", "Inbound frames the codec rejected."),
		runtFrames: reg.Counter("tap_transport_runt_frames_total", "Inbound frames too short to carry addresses."),

		connsIn:       reg.Gauge(connsActive, connsActiveHelp, dirIn),
		connsOut:      reg.Gauge(connsActive, connsActiveHelp, dirOut),
		connOpensIn:   reg.Counter(connsOpened, connsOpenedHelp, dirIn),
		connOpensOut:  reg.Counter(connsOpened, connsOpenedHelp, dirOut),
		connClosesIn:  reg.Counter(connsClosed, connsClosedHelp, dirIn),
		connClosesOut: reg.Counter(connsClosed, connsClosedHelp, dirOut),

		queueDepth: reg.Gauge("tap_transport_queue_depth", "Frames parked in per-peer outbound queues."),
	}
}

// StatsSnapshot is a point-in-time copy of the transport's core
// counters, kept for callers predating the metrics registry. Dropped
// aggregates every drop cause.
type StatsSnapshot struct {
	Sent      uint64 // messages handed to Send
	Delivered uint64 // messages handed to a local handler
	Dropped   uint64 // messages lost: unknown peer, full queue, dead conn, no handler, encode
	Dials     uint64 // connection attempts
	DialFails uint64 // failed connection attempts
	BytesSent uint64 // framed bytes written
}

// Stats reads the current counter values. Unlike the former exported
// Stats field there is no struct to read half-updated: every field is
// loaded from the same atomics the metrics endpoint scrapes.
func (t *Transport) Stats() StatsSnapshot {
	m := t.m
	return StatsSnapshot{
		Sent:      m.sent.Load(),
		Delivered: m.delivered.Load(),
		Dropped: m.dropUnknownPeer.Load() + m.dropQueueFull.Load() +
			m.dropConnDown.Load() + m.dropNoHandler.Load() + m.dropEncode.Load(),
		Dials:     m.dials.Load(),
		DialFails: m.dialFails.Load(),
		BytesSent: m.bytesOut.Load(),
	}
}

// peer is one outbound neighbor: its queue, its writer goroutine, and
// the quit channel that tears both down.
//
// p.out is NEVER closed. Send enqueues without holding the transport
// lock, so a close racing an enqueue would panic the process; teardown
// instead closes p.quit, which the writer and every enqueue select on,
// turning late sends into ordinary drops.
type peer struct {
	hostport string
	out      chan []byte
	quit     chan struct{}
	stop     sync.Once
}

// shutdown signals the peer's writer to exit and pending or future
// enqueues to drop. Idempotent and safe from any goroutine.
func (p *peer) shutdown() { p.stop.Do(func() { close(p.quit) }) }

// Transport carries messages over TCP. Construct with New, then Listen
// (to accept inbound traffic) and SetPeer (to name outbound neighbors).
type Transport struct {
	cfg   Config
	start time.Time
	m     *metrics

	events chan func()
	quit   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	handlers map[transport.Addr]transport.Handler
	peers    map[transport.Addr]string
	conns    map[transport.Addr]*peer
	down     map[transport.Addr]bool
	watchers []func(addr transport.Addr, up bool)
	ln       net.Listener
	closed   bool
}

// New returns a transport ready for Listen/SetPeer. Call Close when done.
func New(cfg Config) *Transport {
	if cfg.Codec == nil {
		panic("tcptransport: Config.Codec is required")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.LatencyCeiling == 0 {
		cfg.LatencyCeiling = 200 * time.Millisecond
	}
	if cfg.SendQueue == 0 {
		cfg.SendQueue = 256
	}
	if cfg.Dialer == nil {
		cfg.Dialer = &net.Dialer{Timeout: cfg.DialTimeout}
	}
	t := &Transport{
		cfg:      cfg,
		start:    time.Now(),
		m:        newMetrics(cfg.Registry),
		events:   make(chan func(), 1024),
		quit:     make(chan struct{}),
		handlers: make(map[transport.Addr]transport.Handler),
		peers:    make(map[transport.Addr]string),
		conns:    make(map[transport.Addr]*peer),
		down:     make(map[transport.Addr]bool),
	}
	t.wg.Add(1)
	go t.loop()
	return t
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// loop is the single dispatch goroutine: every handler invocation,
// Schedule callback, and watcher notification runs here, serialized.
func (t *Transport) loop() {
	defer t.wg.Done()
	for {
		select {
		case fn := <-t.events:
			fn()
		case <-t.quit:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case fn := <-t.events:
					fn()
				default:
					return
				}
			}
		}
	}
}

// enqueue files fn onto the dispatch loop; after Close it is dropped.
func (t *Transport) enqueue(fn func()) {
	select {
	case t.events <- fn:
	case <-t.quit:
	}
}

// Listen starts accepting inbound connections on hostport (e.g.
// "127.0.0.1:0") and returns the bound address.
func (t *Transport) Listen(hostport string) (string, error) {
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return "", fmt.Errorf("tcptransport: listen %s: %w", hostport, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("tcptransport: transport closed")
	}
	t.ln = ln
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *Transport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection and dispatches
// them. The frame payload is [src:8][dst:8][codec payload].
//
// The src address is taken from the frame as-is: the transport trusts
// the network segment it runs on and does no per-connection
// authentication (DESIGN.md §14, "Trust model"). A hardened deployment
// binds identity to the connection via the Dialer seam.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.m.connsIn.Inc()
	t.m.connOpensIn.Inc()
	defer func() {
		t.m.connsIn.Dec()
		t.m.connClosesIn.Inc()
	}()
	done := make(chan struct{})
	defer close(done)
	go func() {
		// Tear the connection down when the transport closes, so the
		// blocking ReadFrame returns — and exit with the loop, so a
		// connection dying on its own doesn't leak this watcher.
		select {
		case <-t.quit:
			conn.Close()
		case <-done:
		}
	}()
	buf := make([]byte, 64<<10)
	for {
		kind, payload, err := wire.ReadFrame(conn, buf)
		if err != nil {
			return
		}
		t.m.framesIn.Inc()
		t.m.bytesIn.Add(uint64(wire.FrameHeaderSize + len(payload)))
		if len(payload) < 16 {
			t.m.runtFrames.Inc()
			t.logf("tcptransport: runt frame (%d bytes) from %s", len(payload), conn.RemoteAddr())
			return
		}
		src := transport.Addr(int64(binary.BigEndian.Uint64(payload[0:8])))
		dst := transport.Addr(int64(binary.BigEndian.Uint64(payload[8:16])))
		msg, err := t.cfg.Codec.Decode(kind, payload[16:])
		if err != nil {
			t.m.decodeErrs.Inc()
			t.logf("tcptransport: decode kind %d from %s: %v", kind, conn.RemoteAddr(), err)
			continue
		}
		t.deliverLocal(src, dst, msg)
	}
}

// deliverLocal routes a decoded (or loopback) message to dst's handler on
// the dispatch loop.
func (t *Transport) deliverLocal(src, dst transport.Addr, msg transport.Message) {
	t.enqueue(func() {
		t.mu.Lock()
		h := t.handlers[dst]
		t.mu.Unlock()
		if h == nil {
			t.m.dropNoHandler.Inc()
			return
		}
		t.m.delivered.Inc()
		h.Deliver(src, msg)
	})
}

// --- transport.Transport ----------------------------------------------------

// Now returns the time since the transport's construction — the wall
// clock rebased to a process-local epoch, mirroring the simulator's
// "duration since start" convention.
func (t *Transport) Now() transport.Time { return time.Since(t.start) }

// Schedule runs fn after delay on the dispatch loop, serialized with
// message deliveries.
func (t *Transport) Schedule(delay transport.Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	time.AfterFunc(delay, func() { t.enqueue(fn) })
}

// Send encodes and transmits msg. Local destinations (an attached
// handler in this process) short-circuit through the dispatch loop
// without touching a socket, so one process can host several addresses —
// the integration tests and single-binary demos rely on that.
func (t *Transport) Send(src, dst transport.Addr, msg transport.Message) {
	t.m.sent.Inc()
	t.mu.Lock()
	_, local := t.handlers[dst]
	t.mu.Unlock()
	if local {
		t.deliverLocal(src, dst, msg)
		return
	}
	kind, payload, err := t.cfg.Codec.Encode(msg)
	if err != nil {
		t.logf("tcptransport: encode to %d: %v", dst, err)
		t.m.dropEncode.Inc()
		return
	}
	body := make([]byte, 0, 16+len(payload))
	body = binary.BigEndian.AppendUint64(body, uint64(int64(src)))
	body = binary.BigEndian.AppendUint64(body, uint64(int64(dst)))
	body = append(body, payload...)
	frame := wire.AppendFrame(nil, kind, body)

	p := t.peerFor(dst)
	if p == nil {
		t.m.dropUnknownPeer.Inc()
		return
	}
	select {
	case <-p.quit:
		// Peer torn down between peerFor and the enqueue (endpoint
		// change, RemovePeer, Close). Drop; the next Send re-resolves.
		t.m.dropConnDown.Inc()
		return
	default:
	}
	select {
	case p.out <- frame:
		t.m.queueDepth.Inc()
		select {
		case <-p.quit:
			// Teardown won the race between the quit pre-check and the
			// enqueue: the writer is gone and dropPeer's drain may already
			// have run, so this frame could sit in the dead channel
			// forever. Drain it ourselves — discardQueued is safe to run
			// concurrently with the teardown's own call, each frame is
			// received (and counted) exactly once.
			t.discardQueued(p)
		default:
		}
	default:
		// Full queue: the peer is slower than we produce. Drop, as an
		// overloaded link would.
		t.m.dropQueueFull.Inc()
	}
}

// peerFor returns the live peer record for dst, creating its queue and
// writer goroutine on first use (the connection itself is dialed by the
// writer). Unknown destinations return nil.
func (t *Transport) peerFor(dst transport.Addr) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if p := t.conns[dst]; p != nil {
		return p
	}
	hostport, ok := t.peers[dst]
	if !ok {
		return nil
	}
	p := &peer{hostport: hostport, out: make(chan []byte, t.cfg.SendQueue), quit: make(chan struct{})}
	t.conns[dst] = p
	t.wg.Add(1)
	go t.writeLoop(dst, p)
	return p
}

// writeLoop owns one peer's connection: dial once (per connection
// lifetime), then drain the queue onto it. Any error tears the peer down;
// the next Send re-creates it, so reconnection is lazy and the engine
// above sees only message loss in between.
func (t *Transport) writeLoop(dst transport.Addr, p *peer) {
	defer t.wg.Done()
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.DialTimeout)
	t.m.dials.Inc()
	dialStart := time.Now()
	conn, err := t.cfg.Dialer.DialContext(ctx, "tcp", p.hostport)
	cancel()
	if err != nil {
		t.m.dialFails.Inc()
		t.logf("tcptransport: dial %d (%s): %v", dst, p.hostport, err)
		t.dropPeer(dst, p, false)
		return
	}
	t.m.dialSeconds.Observe(time.Since(dialStart).Seconds())
	t.m.connsOut.Inc()
	t.m.connOpensOut.Inc()
	defer func() {
		t.m.connsOut.Dec()
		t.m.connClosesOut.Inc()
	}()
	defer conn.Close()
	t.markUp(dst)
	done := make(chan struct{})
	defer close(done)
	go func() {
		// Unblock a stuck Write when the transport closes or the peer is
		// torn down; exit with the loop otherwise, so connection churn
		// doesn't accumulate watchers.
		select {
		case <-t.quit:
			conn.Close()
		case <-p.quit:
			conn.Close()
		case <-done:
		}
	}()
	for {
		select {
		case <-p.quit:
			return
		case frame := <-p.out:
			t.m.queueDepth.Dec()
			if _, err := conn.Write(frame); err != nil {
				t.m.dropConnDown.Inc()
				t.logf("tcptransport: write %d (%s): %v", dst, p.hostport, err)
				t.dropPeer(dst, p, true)
				return
			}
			t.m.framesOut.Inc()
			t.m.bytesOut.Add(uint64(len(frame)))
		}
	}
}

// dropPeer tears a dead peer down, counts its queued frames as drops,
// and — if it was still the live record for dst — marks the address
// down for Reachable. A stale peer (already replaced by SetPeer) is
// drained without touching the fresh endpoint's state.
func (t *Transport) dropPeer(dst transport.Addr, p *peer, hadConn bool) {
	p.shutdown()
	t.mu.Lock()
	current := t.conns[dst] == p
	if current {
		delete(t.conns, dst)
	}
	wasDown := t.down[dst]
	if current {
		t.down[dst] = true
	}
	watchers := t.snapshotWatchersLocked()
	t.mu.Unlock()
	t.discardQueued(p)
	if current && !wasDown {
		for _, fn := range watchers {
			fn := fn
			t.enqueue(func() { fn(dst, false) })
		}
	}
	_ = hadConn
}

// discardQueued drains whatever was queued behind a dead connection,
// counting each frame as a drop.
func (t *Transport) discardQueued(p *peer) {
	for {
		select {
		case <-p.out:
			t.m.queueDepth.Dec()
			t.m.dropConnDown.Inc()
		default:
			return
		}
	}
}

// snapshotWatchersLocked copies the watcher list for use outside the lock.
func (t *Transport) snapshotWatchersLocked() []func(transport.Addr, bool) {
	out := make([]func(transport.Addr, bool), len(t.watchers))
	copy(out, t.watchers)
	return out
}

// markUp clears the down flag after a successful dial and notifies
// watchers of the recovery.
func (t *Transport) markUp(dst transport.Addr) {
	t.mu.Lock()
	wasDown := t.down[dst]
	delete(t.down, dst)
	watchers := t.snapshotWatchersLocked()
	t.mu.Unlock()
	if wasDown {
		for _, fn := range watchers {
			fn := fn
			t.enqueue(func() { fn(dst, true) })
		}
	}
}

// Attach binds h to addr. Attaching over a live handler is a programming
// error, matching the simulator.
func (t *Transport) Attach(addr transport.Addr, h transport.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handlers[addr] != nil {
		panic(fmt.Sprintf("tcptransport: address %d already attached", addr))
	}
	t.handlers[addr] = h
}

// Detach removes the handler at addr.
func (t *Transport) Detach(addr transport.Addr) {
	t.mu.Lock()
	delete(t.handlers, addr)
	t.mu.Unlock()
}

// Attached reports whether addr has a live local handler.
func (t *Transport) Attached(addr transport.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handlers[addr] != nil
}

// Reachable reports whether addr is worth dialing: it is local, or in the
// peer table and not known-dead since its last failure. SetPeer clears
// the dead mark, so a refreshed peer-set entry restores optimism.
func (t *Transport) Reachable(addr transport.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handlers[addr] != nil {
		return true
	}
	_, known := t.peers[addr]
	return known && !t.down[addr]
}

// Grow is a no-op: the TCP address space is the peer table.
func (t *Transport) Grow(n int) {}

// WatchAddrs registers fn for up/down transitions observed through
// dialing: a failed dial or dead connection reports down, a successful
// re-dial reports up. Watchers run on the dispatch loop.
func (t *Transport) WatchAddrs(fn func(addr transport.Addr, up bool)) {
	t.mu.Lock()
	t.watchers = append(t.watchers, fn)
	t.mu.Unlock()
}

// Serialization reports the configured bandwidth estimate's clocking
// time, or zero when none is configured.
func (t *Transport) Serialization(size int) transport.Time {
	if t.cfg.BandwidthBitsPerSec <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(int64(size) * 8 * int64(time.Second) / t.cfg.BandwidthBitsPerSec)
}

// MaxLatency reports the configured latency ceiling.
func (t *Transport) MaxLatency() transport.Time { return t.cfg.LatencyCeiling }

// --- peer table -------------------------------------------------------------

// SetPeer maps addr to a host:port, replacing any previous mapping and
// clearing a down mark. A changed mapping tears down the old connection
// so the next send dials the new endpoint.
func (t *Transport) SetPeer(addr transport.Addr, hostport string) {
	t.mu.Lock()
	prev, had := t.peers[addr]
	t.peers[addr] = hostport
	delete(t.down, addr)
	var stale *peer
	if had && prev != hostport {
		if p := t.conns[addr]; p != nil {
			stale = p
			delete(t.conns, addr)
		}
	}
	t.mu.Unlock()
	if stale != nil {
		stale.shutdown()
		t.discardQueued(stale)
	}
}

// RemovePeer forgets addr. In-flight queue contents are dropped.
func (t *Transport) RemovePeer(addr transport.Addr) {
	t.mu.Lock()
	delete(t.peers, addr)
	delete(t.down, addr)
	p := t.conns[addr]
	delete(t.conns, addr)
	t.mu.Unlock()
	if p != nil {
		p.shutdown()
		t.discardQueued(p)
	}
}

// Peers returns a snapshot of the peer table.
func (t *Transport) Peers() map[transport.Addr]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[transport.Addr]string, len(t.peers))
	for a, hp := range t.peers {
		out[a] = hp
	}
	return out
}

// Close stops the listener, the dispatch loop, and every peer writer,
// and waits for them to exit.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.ln
	conns := t.conns
	t.conns = make(map[transport.Addr]*peer)
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, p := range conns {
		p.shutdown()
	}
	close(t.quit)
	t.wg.Wait()
}

var _ transport.Transport = (*Transport)(nil)
