// Package adversary models the colluding-malicious-node attacker of the
// paper's §6/§7: an adversary operating a fraction p of the nodes, pooling
// everything those nodes observe.
//
// The attacker's weapon against TAP is anchor leakage: "If one of these k
// nodes is malicious, it can disclose the THA to other colluding nodes. As
// such, malicious nodes can pool their THAs to break the anonymity of
// other users." A leak happens the instant a replica of an anchor lands on
// a malicious node — at deployment or during churn-driven migration — and
// is permanent (the adversary remembers).
//
// A tunnel is *corrupted* (the paper's case 1, the one §7 measures) when
// the adversary has accumulated the anchors of every hop: it can then peel
// every layer of a captured message, so a message entering at its first
// hop exposes the predecessor — the initiator — with certainty. Case 2
// (controlling the first and tail hop nodes and correlating by timing) is
// tracked as a secondary metric; the paper argues its power is limited and
// excludes it from the headline numbers.
package adversary

import (
	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
)

// Collusion is the global adversary state.
type Collusion struct {
	ov        *pastry.Overlay
	mgr       *past.Manager
	malicious map[simnet.Addr]struct{}
	leaked    map[id.ID]struct{}
}

// NewCollusion creates an adversary watching the given storage layer. It
// chains onto the manager's replication hook, so leakage tracking is exact
// from this moment on: every future replica placement on a malicious node
// leaks that anchor.
func NewCollusion(ov *pastry.Overlay, mgr *past.Manager) *Collusion {
	c := &Collusion{
		ov:        ov,
		mgr:       mgr,
		malicious: make(map[simnet.Addr]struct{}),
		leaked:    make(map[id.ID]struct{}),
	}
	prev := mgr.OnReplicate
	mgr.OnReplicate = func(key id.ID, addr simnet.Addr) {
		if prev != nil {
			prev(key, addr)
		}
		if _, bad := c.malicious[addr]; bad {
			c.leaked[key] = struct{}{}
		}
	}
	return c
}

// MarkFraction corrupts ⌊p·N⌋ uniformly random live nodes (in addition to
// any already malicious) and immediately leaks every anchor they currently
// store. Returns the number of malicious nodes afterwards.
func (c *Collusion) MarkFraction(p float64, stream *rng.Stream) int {
	want := int(p * float64(c.ov.Size()))
	refs := c.ov.LiveRefs()
	for _, idx := range stream.PermFirstK(len(refs), want) {
		c.markAddr(refs[idx].Addr)
	}
	return len(c.malicious)
}

// MarkCount grows the collusion to `target` members by corrupting
// additional uniformly random live benign nodes. It never shrinks the
// collusion, so ascending sweeps over the malicious fraction can reuse one
// world: each step tops up the same monotone adversary. Returns the
// collusion size afterwards.
func (c *Collusion) MarkCount(target int, stream *rng.Stream) int {
	if target <= len(c.malicious) {
		return len(c.malicious)
	}
	refs := c.ov.LiveRefs()
	for _, idx := range stream.PermFirstK(len(refs), len(refs)) {
		if len(c.malicious) >= target {
			break
		}
		c.markAddr(refs[idx].Addr)
	}
	return len(c.malicious)
}

// MarkAddr corrupts one specific node.
func (c *Collusion) MarkAddr(addr simnet.Addr) { c.markAddr(addr) }

func (c *Collusion) markAddr(addr simnet.Addr) {
	if _, dup := c.malicious[addr]; dup {
		return
	}
	c.malicious[addr] = struct{}{}
	// Everything this node already stores is disclosed to the collusion.
	if st := c.mgr.StoreAt(addr); st != nil {
		for _, key := range st.Keys() {
			c.leaked[key] = struct{}{}
		}
	}
}

// IsMalicious reports whether the node at addr is part of the collusion.
func (c *Collusion) IsMalicious(addr simnet.Addr) bool {
	_, bad := c.malicious[addr]
	return bad
}

// MaliciousCount returns the collusion's size.
func (c *Collusion) MaliciousCount() int { return len(c.malicious) }

// Leaked reports whether the adversary holds the anchor for hopID.
func (c *Collusion) Leaked(hopID id.ID) bool {
	_, bad := c.leaked[hopID]
	return bad
}

// LeakedCount returns the number of distinct anchors the adversary has
// accumulated.
func (c *Collusion) LeakedCount() int { return len(c.leaked) }

// TunnelCorrupted is the paper's case 1: the adversary holds the anchors
// of *all* hops of the tunnel, so any message it sees entering the first
// hop traces back to the initiator.
func (c *Collusion) TunnelCorrupted(t *core.Tunnel) bool {
	if t.Length() == 0 {
		return false
	}
	for _, h := range t.Hops {
		if !c.Leaked(h.HopID) {
			return false
		}
	}
	return true
}

// FirstTailCompromised is the paper's case 2: the nodes currently serving
// the first and the tail hop are both malicious, enabling end-to-end
// timing correlation. The paper notes this attack is weak (the adversary
// still cannot confirm the first hop is really first) and excludes it from
// the measured corruption rate; it is reported separately.
func (c *Collusion) FirstTailCompromised(t *core.Tunnel, dir *tha.Directory) bool {
	if t.Length() == 0 {
		return false
	}
	first, ok := dir.HopNode(t.Hops[0].HopID)
	if !ok {
		return false
	}
	tail, ok := dir.HopNode(t.Hops[t.Length()-1].HopID)
	if !ok {
		return false
	}
	return c.IsMalicious(first.Ref().Addr) && c.IsMalicious(tail.Ref().Addr)
}

// BaselineCorrupted applies the analogous case-1 condition to a
// fixed-node tunnel: every relay is malicious (the adversary holds every
// layer key, since each relay negotiated its key with the initiator).
func (c *Collusion) BaselineCorrupted(ft *core.FixedTunnel) bool {
	if ft.Length() == 0 {
		return false
	}
	for _, r := range ft.Relays {
		if !c.IsMalicious(r.Addr) {
			return false
		}
	}
	return true
}

// CorruptionRate counts the corrupted fraction of a tunnel population.
func (c *Collusion) CorruptionRate(tunnels []*core.Tunnel) float64 {
	if len(tunnels) == 0 {
		return 0
	}
	bad := 0
	for _, t := range tunnels {
		if c.TunnelCorrupted(t) {
			bad++
		}
	}
	return float64(bad) / float64(len(tunnels))
}
