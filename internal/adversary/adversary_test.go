package adversary

import (
	"fmt"
	"testing"

	"tap/internal/churn"
	"tap/internal/core"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
)

type sys struct {
	ov   *pastry.Overlay
	mgr  *past.Manager
	dir  *tha.Directory
	svc  *core.Service
	col  *Collusion
	root *rng.Stream
}

func newSys(t testing.TB, n, k int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, k)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))
	col := NewCollusion(ov, mgr)
	return &sys{ov: ov, mgr: mgr, dir: dir, svc: svc, col: col, root: root}
}

func (s *sys) makeTunnel(t testing.TB, label string, l int) (*core.Initiator, *core.Tunnel) {
	t.Helper()
	node := s.ov.RandomLive(s.root.Split("pick-" + label))
	in, err := core.NewInitiator(s.svc, node, s.root.Split("init-"+label))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeployDirect(l + 3); err != nil {
		t.Fatal(err)
	}
	tun, err := in.FormTunnel(l)
	if err != nil {
		t.Fatal(err)
	}
	return in, tun
}

func TestMarkFractionSizeAndIdempotence(t *testing.T) {
	s := newSys(t, 200, 3, 1)
	got := s.col.MarkFraction(0.1, s.root.Split("m"))
	if got != 20 {
		t.Fatalf("malicious count %d, want 20", got)
	}
	// Marking again adds more (new draw), never double counts.
	got2 := s.col.MarkFraction(0.0, s.root.Split("m2"))
	if got2 != 20 {
		t.Fatalf("p=0 changed the collusion: %d", got2)
	}
}

func TestLeakOnDeploymentToMaliciousReplica(t *testing.T) {
	s := newSys(t, 150, 3, 2)
	_, tun := s.makeTunnel(t, "a", 3)
	// Nothing malicious yet: nothing leaked.
	if s.col.LeakedCount() != 0 {
		t.Fatalf("leaks with no malicious nodes")
	}
	// Corrupt exactly one replica holder of hop 0: that anchor leaks.
	victim := s.dir.ReplicaAddrs(tun.Hops[0].HopID)[1]
	s.col.MarkAddr(victim)
	if !s.col.Leaked(tun.Hops[0].HopID) {
		t.Fatalf("anchor on malicious replica not leaked")
	}
	// An anchor not stored on the victim must not leak.
	for _, h := range tun.Hops[1:] {
		onVictim := false
		for _, a := range s.dir.ReplicaAddrs(h.HopID) {
			if a == victim {
				onVictim = true
			}
		}
		if !onVictim && s.col.Leaked(h.HopID) {
			t.Fatalf("unrelated anchor %s leaked", h.HopID.Short())
		}
	}
}

func TestLeakOnMigrationToMaliciousNode(t *testing.T) {
	s := newSys(t, 150, 3, 3)
	_, tun := s.makeTunnel(t, "a", 3)
	hop := tun.Hops[0].HopID
	// Find a node that will inherit the anchor when a current replica
	// leaves: the (k+1)-th closest.
	inheritor := s.ov.ReplicaSet(hop, 4)[3]
	s.col.MarkAddr(inheritor.Ref().Addr)
	if s.col.Leaked(hop) {
		t.Fatalf("anchor leaked before any migration")
	}
	// Kill one current replica: the inheritor receives a copy and the
	// anchor leaks.
	victim := s.dir.ReplicaAddrs(hop)[0]
	if err := s.ov.Fail(victim); err != nil {
		t.Fatal(err)
	}
	if !s.col.Leaked(hop) {
		t.Fatalf("migration to malicious node did not leak")
	}
}

func TestTunnelCorruptedRequiresAllHops(t *testing.T) {
	s := newSys(t, 150, 3, 4)
	_, tun := s.makeTunnel(t, "a", 3)
	// Leak hops 0 and 1 only.
	for _, h := range tun.Hops[:2] {
		s.col.MarkAddr(s.dir.ReplicaAddrs(h.HopID)[0])
	}
	if s.col.TunnelCorrupted(tun) && !s.col.Leaked(tun.Hops[2].HopID) {
		t.Fatalf("tunnel corrupted with an unleaked hop")
	}
	// Leak the last hop too.
	s.col.MarkAddr(s.dir.ReplicaAddrs(tun.Hops[2].HopID)[0])
	if !s.col.TunnelCorrupted(tun) {
		t.Fatalf("tunnel with all hops leaked not corrupted")
	}
}

func TestCorruptionRateGrowsWithP(t *testing.T) {
	// Monte-Carlo sanity: corruption at p=0.3 must exceed p=0.05, and at
	// k=3, l=5 both should be far from 1 (the paper's conclusion that "no
	// significant tunnels corrupted even if p is large").
	rate := func(p float64, seed uint64) float64 {
		s := newSys(t, 300, 3, seed)
		tunnels := make([]*core.Tunnel, 0, 60)
		for i := 0; i < 60; i++ {
			_, tun := s.makeTunnel(t, fmt.Sprintf("t%d", i), 5)
			tunnels = append(tunnels, tun)
		}
		s.col.MarkFraction(p, s.root.Split("mark"))
		return s.col.CorruptionRate(tunnels)
	}
	low := rate(0.05, 5)
	high := rate(0.30, 6)
	if high < low {
		t.Fatalf("corruption not monotone: p=0.05 → %.3f, p=0.30 → %.3f", low, high)
	}
	if high > 0.5 {
		t.Fatalf("corruption at p=0.3 is %.3f; should stay modest at l=5", high)
	}
}

func TestHigherReplicationLeaksMore(t *testing.T) {
	// Fig 4a's mechanism: more replicas per anchor, more chances for a
	// malicious holder.
	leakRate := func(k int, seed uint64) float64 {
		s := newSys(t, 300, k, seed)
		var anchors []*core.Tunnel
		for i := 0; i < 40; i++ {
			_, tun := s.makeTunnel(t, fmt.Sprintf("t%d", i), 5)
			anchors = append(anchors, tun)
		}
		s.col.MarkFraction(0.1, s.root.Split("mark"))
		leaked, total := 0, 0
		for _, tun := range anchors {
			for _, h := range tun.Hops {
				total++
				if s.col.Leaked(h.HopID) {
					leaked++
				}
			}
		}
		return float64(leaked) / float64(total)
	}
	k1 := leakRate(1, 7)
	k5 := leakRate(5, 8)
	if k5 <= k1 {
		t.Fatalf("per-anchor leak rate not increasing in k: k=1 → %.3f, k=5 → %.3f", k1, k5)
	}
}

func TestFirstTailCompromised(t *testing.T) {
	s := newSys(t, 200, 3, 9)
	_, tun := s.makeTunnel(t, "a", 4)
	if s.col.FirstTailCompromised(tun, s.dir) {
		t.Fatalf("compromised with no malicious nodes")
	}
	first, _ := s.dir.HopNode(tun.Hops[0].HopID)
	tail, _ := s.dir.HopNode(tun.Hops[3].HopID)
	s.col.MarkAddr(first.Ref().Addr)
	if s.col.FirstTailCompromised(tun, s.dir) {
		t.Fatalf("compromised with only the first hop")
	}
	s.col.MarkAddr(tail.Ref().Addr)
	if !s.col.FirstTailCompromised(tun, s.dir) {
		t.Fatalf("not compromised with both ends malicious")
	}
}

func TestBaselineCorrupted(t *testing.T) {
	s := newSys(t, 150, 3, 10)
	ft, err := core.FormFixed(s.ov, 3, s.root.Split("ft"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ft.Relays[:2] {
		s.col.MarkAddr(r.Addr)
	}
	if s.col.BaselineCorrupted(ft) {
		t.Fatalf("baseline corrupted with a clean relay")
	}
	s.col.MarkAddr(ft.Relays[2].Addr)
	if !s.col.BaselineCorrupted(ft) {
		t.Fatalf("all-malicious baseline not corrupted")
	}
}

func TestMarkCountMonotoneTopUp(t *testing.T) {
	s := newSys(t, 200, 3, 12)
	stream := s.root.Split("mark")
	if got := s.col.MarkCount(10, stream); got != 10 {
		t.Fatalf("MarkCount(10) = %d", got)
	}
	if s.col.MaliciousCount() != 10 {
		t.Fatalf("MaliciousCount = %d", s.col.MaliciousCount())
	}
	// Topping up grows to the target, never shrinks.
	if got := s.col.MarkCount(25, stream); got != 25 {
		t.Fatalf("MarkCount(25) = %d", got)
	}
	if got := s.col.MarkCount(5, stream); got != 25 {
		t.Fatalf("MarkCount(5) shrank the collusion: %d", got)
	}
	// Asking for more than the population clamps at the population.
	if got := s.col.MarkCount(10_000, stream); got > 200 {
		t.Fatalf("MarkCount exceeded population: %d", got)
	}
}

func TestFirstTailCompromisedLostAnchor(t *testing.T) {
	// A tunnel whose first-hop anchor is lost cannot be first+tail
	// compromised: there is no first hop node to control.
	s := newSys(t, 200, 3, 13)
	_, tun := s.makeTunnel(t, "a", 3)
	s.col.MarkFraction(1.0, s.root.Split("mark"))
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(tun.Hops[0].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	if s.col.FirstTailCompromised(tun, s.dir) {
		t.Fatalf("compromised with a lost first-hop anchor")
	}
}

func TestChurnAccumulatesLeaks(t *testing.T) {
	// The Fig 5 mechanism: under benign churn with a fixed malicious
	// population, the leaked set grows monotonically.
	s := newSys(t, 400, 3, 11)
	var tunnels []*core.Tunnel
	for i := 0; i < 50; i++ {
		_, tun := s.makeTunnel(t, fmt.Sprintf("t%d", i), 5)
		tunnels = append(tunnels, tun)
	}
	s.col.MarkFraction(0.1, s.root.Split("mark"))
	start := s.col.LeakedCount()
	prev := start
	for unit := 0; unit < 5; unit++ {
		churn.Wave(s.ov, 20, 20, s.root.SplitN("wave", unit), func(a simnet.Addr) bool {
			return !s.col.IsMalicious(a) // malicious nodes never leave
		})
		now := s.col.LeakedCount()
		if now < prev {
			t.Fatalf("leak count decreased at unit %d: %d -> %d", unit, prev, now)
		}
		prev = now
	}
	if s.col.LeakedCount() < start {
		t.Fatalf("leak count decreased overall")
	}
	// With 5 waves of 5% churn each, some additional leakage is expected
	// (probabilistic, but overwhelmingly likely with 250 anchors).
	if s.col.LeakedCount() == start {
		t.Logf("warning: no additional leakage after churn (possible but unlikely)")
	}
	_ = tunnels
}
