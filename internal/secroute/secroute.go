// Package secroute implements secure routing to tunnel hop nodes, the
// companion mechanism the paper's §9 points at: "A big concern is how a
// message can be securely routed to a tunnel hop node given a hopid in
// P2P overlays where a fraction of nodes are malicious to pose a threat.
// ... we refer readers to our extended report for the details of secure
// routing."
//
// The techniques follow Castro et al. ("Secure routing for structured
// peer-to-peer overlay networks", OSDI'02), the standard recipe the
// extended report builds on:
//
//   - A routing failure test: the sender estimates the expected id
//     density around any key from the spacing of its own leaf set; a
//     claimed owner whose distance to the key is far above that estimate
//     is almost certainly an impostor (a malicious node answering for id
//     space it does not own).
//   - Redundant routing: when a route fails the test (or is dropped),
//     the sender retries over diverse first hops — each member of its
//     leaf set — so a few malicious routers on one path cannot censor
//     the lookup.
//
// The adversary model here is *routing* misbehaviour (drop or claim),
// orthogonal to the anchor-leakage adversary in internal/adversary: a
// malicious router wants to prevent or hijack the lookup of an honest
// tunnel hop.
package secroute

import (
	"errors"
	"fmt"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// Adversary is a set of overlay nodes that misbehave during routing:
// instead of forwarding a message toward the key, a malicious node
// claims to be the destination itself (the strongest routing attack: it
// both censors the lookup and impersonates the owner).
type Adversary struct {
	malicious map[simnet.Addr]struct{}
}

// NewAdversary creates an empty routing adversary.
func NewAdversary() *Adversary {
	return &Adversary{malicious: make(map[simnet.Addr]struct{})}
}

// MarkFraction corrupts ⌊p·N⌋ random live routers.
func (a *Adversary) MarkFraction(ov *pastry.Overlay, p float64, stream *rng.Stream) int {
	refs := ov.LiveRefs()
	want := int(p * float64(len(refs)))
	for _, idx := range stream.PermFirstK(len(refs), want) {
		a.malicious[refs[idx].Addr] = struct{}{}
	}
	return len(a.malicious)
}

// Mark corrupts one router.
func (a *Adversary) Mark(addr simnet.Addr) { a.malicious[addr] = struct{}{} }

// IsMalicious reports membership.
func (a *Adversary) IsMalicious(addr simnet.Addr) bool {
	if a == nil {
		return false
	}
	_, bad := a.malicious[addr]
	return bad
}

// Count returns the adversary size.
func (a *Adversary) Count() int { return len(a.malicious) }

// Result is the outcome of one (possibly redundant) secure lookup.
type Result struct {
	// Owner is the accepted destination.
	Owner pastry.NodeRef
	// Hops is the total overlay hops spent across all attempts.
	Hops int
	// Attempts counts routes tried (1 = the primary route sufficed).
	Attempts int
	// Honest reports whether the accepted owner is the true closest
	// node. The caller cannot observe this in deployment; experiments use
	// it to score the mechanism.
	Honest bool
}

// Errors.
var (
	// ErrCensored means every route attempt was intercepted and no
	// candidate passed the failure test.
	ErrCensored = errors.New("secroute: all routes censored or failed the density test")
)

// Router performs secure lookups over an overlay with a routing
// adversary.
type Router struct {
	OV  *pastry.Overlay
	Adv *Adversary

	// DensityFactor is the acceptance threshold: a claimed owner is
	// rejected when its distance to the key exceeds DensityFactor times
	// the sender's estimated mean id spacing. Castro et al. use a
	// comparable constant; 4 keeps false positives negligible (the true
	// owner's expected distance is half a spacing).
	DensityFactor int

	// MaxRedundant bounds the diverse-route retries after the primary
	// route fails. Zero disables redundancy (the ablation baseline).
	MaxRedundant int

	// AlwaysVerify launches the redundant routes even when the primary
	// candidate passes the density test, accepting the closest passing
	// candidate overall. This defeats near-target hijackers — malicious
	// nodes adjacent to the key, whom the density test cannot flag —
	// at the cost of ~MaxRedundant extra routes per lookup. Anchor
	// lookups, where a hijack breaks anonymity rather than just a fetch,
	// should run in this mode.
	AlwaysVerify bool
}

// NewRouter returns a router with the default thresholds.
func NewRouter(ov *pastry.Overlay, adv *Adversary) *Router {
	return &Router{OV: ov, Adv: adv, DensityFactor: 4, MaxRedundant: 8}
}

// meanSpacing estimates the average distance between consecutive live ids
// from the spacing within a node's own leaf set — information every node
// has locally and malicious nodes cannot influence.
func meanSpacing(n *pastry.Node) id.ID {
	members := n.Leaf.Members()
	if len(members) == 0 {
		return id.Max
	}
	ids := make([]id.ID, 0, len(members)+1)
	ids = append(ids, n.ID())
	for _, m := range members {
		ids = append(ids, m.ID)
	}
	id.Sort(ids)
	// Average gap over the leaf-set span: span / gaps. Dividing a 160-bit
	// value by a small integer via schoolbook long division.
	span := ids[len(ids)-1].Sub(ids[0])
	return divSmall(span, uint32(len(ids)-1))
}

// divSmall divides a 160-bit value by a small positive integer.
func divSmall(v id.ID, d uint32) id.ID {
	if d == 0 {
		panic("secroute: division by zero")
	}
	var out id.ID
	var rem uint64
	for i := 0; i < id.Size; i++ {
		cur := rem<<8 | uint64(v[i])
		out[i] = byte(cur / uint64(d))
		rem = cur % uint64(d)
	}
	return out
}

// mulSmall multiplies a 160-bit value by a small integer, saturating at
// Max.
func mulSmall(v id.ID, m uint32) id.ID {
	var out id.ID
	var carry uint64
	for i := id.Size - 1; i >= 0; i-- {
		cur := uint64(v[i])*uint64(m) + carry
		out[i] = byte(cur)
		carry = cur >> 8
	}
	if carry != 0 {
		return id.Max
	}
	return out
}

// PassesDensityTest applies the routing failure test from the
// perspective of node src: would src accept `claimed` as the owner of
// key?
func (r *Router) PassesDensityTest(src *pastry.Node, key id.ID, claimed pastry.NodeRef) bool {
	spacing := meanSpacing(src)
	threshold := mulSmall(spacing, uint32(r.DensityFactor))
	return claimed.ID.Distance(key).Cmp(threshold) <= 0
}

// routeOnce walks one route from a given start toward key. At the first
// malicious node the walk stops and that node claims ownership. Returns
// the claimed owner and the hops walked.
func (r *Router) routeOnce(start *pastry.Node, key id.ID, maxHops int) (pastry.NodeRef, int, error) {
	cur := start
	for hop := 0; ; hop++ {
		if hop > maxHops {
			return pastry.NodeRef{}, hop, fmt.Errorf("secroute: route exceeded %d hops", maxHops)
		}
		if r.Adv.IsMalicious(cur.Ref().Addr) {
			// The malicious router hijacks the lookup: "key? that's me."
			return cur.Ref(), hop, nil
		}
		next, deliver := cur.NextHop(key)
		if deliver {
			return cur.Ref(), hop, nil
		}
		nxt := r.OV.ByID(next.ID)
		if nxt == nil {
			return pastry.NodeRef{}, hop, fmt.Errorf("secroute: next hop vanished")
		}
		cur = nxt
	}
}

// Lookup securely resolves the owner of key from the node at src. The
// primary route goes out normally; if the returned candidate fails the
// density test, diverse routes are launched through distinct leaf-set
// neighbors until a candidate passes or MaxRedundant routes are spent.
func (r *Router) Lookup(src simnet.Addr, key id.ID) (*Result, error) {
	srcNode := r.OV.Node(src)
	if srcNode == nil || !srcNode.Alive() {
		return nil, fmt.Errorf("secroute: lookup from dead node %d", src)
	}
	maxHops := r.OV.Config().MaxRouteHops
	res := &Result{}

	accept := func(claimed pastry.NodeRef) bool {
		return r.PassesDensityTest(srcNode, key, claimed)
	}
	score := func(claimed pastry.NodeRef) {
		res.Owner = claimed
		truth := r.OV.OwnerOf(key)
		res.Honest = truth != nil && truth.ID() == claimed.ID
	}

	// Primary route.
	best := pastry.NodeRef{}
	haveBest := false
	claimed, hops, err := r.routeOnce(srcNode, key, maxHops)
	res.Hops += hops
	res.Attempts++
	if err == nil && accept(claimed) {
		if !r.AlwaysVerify {
			score(claimed)
			return res, nil
		}
		best, haveBest = claimed, true
	}

	// Redundant diverse routes: one per distinct leaf-set neighbor.
	for i, nb := range srcNode.Leaf.Members() {
		if i >= r.MaxRedundant {
			break
		}
		start := r.OV.ByID(nb.ID)
		if start == nil {
			continue
		}
		res.Attempts++
		// One hop to reach the neighbor, then its route.
		claimed, hops, err := r.routeOnce(start, key, maxHops)
		res.Hops += hops + 1
		if err != nil || !accept(claimed) {
			continue
		}
		if !haveBest || id.Closer(key, claimed.ID, best.ID) {
			best = claimed
			haveBest = true
		}
	}
	if haveBest {
		score(best)
		return res, nil
	}
	return res, ErrCensored
}
