package secroute

import (
	"errors"
	"testing"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

func build(t testing.TB, n int, seed uint64) (*pastry.Overlay, *rng.Stream) {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	return ov, root.Split("test")
}

func TestDivMulSmall(t *testing.T) {
	v := id.FromUint64(1000)
	if got := divSmall(v, 8); got != id.FromUint64(125) {
		t.Fatalf("div = %s", got)
	}
	if got := mulSmall(id.FromUint64(125), 8); got != id.FromUint64(1000) {
		t.Fatalf("mul = %s", got)
	}
	// Saturation.
	if got := mulSmall(id.Max, 2); got != id.Max {
		t.Fatalf("mul overflow should saturate, got %s", got)
	}
	// Big-value division round trip within rounding error.
	big := id.MustParse("8000000000000000000000000000000000000000")
	q := divSmall(big, 3)
	back := mulSmall(q, 3)
	if back.Distance(big).Cmp(id.FromUint64(4)) > 0 {
		t.Fatalf("div/mul drifted: %s vs %s", back, big)
	}
}

func TestDivSmallPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	divSmall(id.Max, 0)
}

func TestDensityTestAcceptsTrueOwner(t *testing.T) {
	ov, s := build(t, 500, 1)
	r := NewRouter(ov, NewAdversary())
	for i := 0; i < 200; i++ {
		var key id.ID
		s.Bytes(key[:])
		src := ov.RandomLive(s)
		owner := ov.OwnerOf(key)
		if !r.PassesDensityTest(src, key, owner.Ref()) {
			t.Fatalf("true owner rejected for key %s (distance %s)", key.Short(), owner.ID().Distance(key).Short())
		}
	}
}

func TestDensityTestRejectsDistantImpostor(t *testing.T) {
	ov, s := build(t, 500, 2)
	r := NewRouter(ov, NewAdversary())
	rejected, total := 0, 0
	for i := 0; i < 200; i++ {
		var key id.ID
		s.Bytes(key[:])
		src := ov.RandomLive(s)
		// An impostor: a random node, almost surely far from the key.
		impostor := ov.RandomLive(s)
		if impostor.ID() == ov.OwnerOf(key).ID() {
			continue
		}
		total++
		if !r.PassesDensityTest(src, key, impostor.Ref()) {
			rejected++
		}
	}
	if float64(rejected) < 0.95*float64(total) {
		t.Fatalf("only %d/%d distant impostors rejected", rejected, total)
	}
}

func TestLookupNoAdversary(t *testing.T) {
	ov, s := build(t, 400, 3)
	r := NewRouter(ov, NewAdversary())
	for i := 0; i < 100; i++ {
		var key id.ID
		s.Bytes(key[:])
		res, err := r.Lookup(ov.RandomLive(s).Ref().Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Honest {
			t.Fatalf("clean overlay returned dishonest owner")
		}
		if res.Attempts != 1 {
			t.Fatalf("clean overlay needed %d attempts", res.Attempts)
		}
	}
}

func TestLookupHijackedPrimaryRecovered(t *testing.T) {
	// Place a malicious node on the primary route; redundant routing must
	// still find the true owner.
	ov, s := build(t, 500, 4)
	adv := NewAdversary()
	r := NewRouter(ov, adv)
	r.AlwaysVerify = true // anchor-lookup mode: defeat near-target hijacks too
	recovered, hijackable := 0, 0
	for i := 0; i < 150; i++ {
		var key id.ID
		s.Bytes(key[:])
		src := ov.RandomLive(s)
		path, err := ov.RoutePath(src.Ref().Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) < 3 {
			continue // no interior router to corrupt
		}
		hijackable++
		adv2 := NewAdversary()
		adv2.Mark(path[1].Addr) // first interior router is malicious
		r.Adv = adv2
		res, err := r.Lookup(src.Ref().Addr, key)
		if err != nil {
			continue
		}
		if res.Honest {
			recovered++
			if res.Attempts < 2 {
				t.Fatalf("recovered without redundant attempts?")
			}
		}
	}
	if hijackable == 0 {
		t.Skip("no multi-hop routes sampled")
	}
	if float64(recovered) < 0.9*float64(hijackable) {
		t.Fatalf("recovered only %d/%d hijacked lookups", recovered, hijackable)
	}
}

func TestLookupSuccessDegradesGracefully(t *testing.T) {
	// With p malicious routers, secure lookup should succeed far more
	// often than the single-route baseline.
	ov, s := build(t, 600, 5)
	adv := NewAdversary()
	adv.MarkFraction(ov, 0.2, s.Split("mark"))

	secure := NewRouter(ov, adv)
	naive := NewRouter(ov, adv)
	naive.MaxRedundant = 0

	var secureOK, naiveOK, trials int
	keyStream := s.Split("keys")
	for i := 0; i < 200; i++ {
		var key id.ID
		keyStream.Bytes(key[:])
		src := ov.RandomLive(keyStream)
		if adv.IsMalicious(src.Ref().Addr) {
			continue // malicious sources are out of scope
		}
		trials++
		if res, err := secure.Lookup(src.Ref().Addr, key); err == nil && res.Honest {
			secureOK++
		}
		if res, err := naive.Lookup(src.Ref().Addr, key); err == nil && res.Honest {
			naiveOK++
		}
	}
	if trials == 0 {
		t.Fatal("no trials")
	}
	secRate := float64(secureOK) / float64(trials)
	naiveRate := float64(naiveOK) / float64(trials)
	if secRate <= naiveRate {
		t.Fatalf("secure routing (%.2f) not better than naive (%.2f)", secRate, naiveRate)
	}
	if secRate < 0.85 {
		t.Fatalf("secure routing success only %.2f at p=0.2", secRate)
	}
}

func TestLookupCensoredWhenSurrounded(t *testing.T) {
	// If every leaf-set neighbor of the source is malicious and so is the
	// primary path, the lookup is censored — and reported as such rather
	// than silently hijacked.
	ov, s := build(t, 300, 6)
	adv := NewAdversary()
	src := ov.RandomLive(s)
	for _, nb := range src.Leaf.Members() {
		adv.Mark(nb.Addr)
	}
	// Also corrupt everything else except the source, so any route is
	// hijacked immediately.
	for _, ref := range ov.LiveRefs() {
		if ref.ID != src.ID() {
			adv.Mark(ref.Addr)
		}
	}
	r := NewRouter(ov, adv)
	// A key at the source's antipode: far from src's whole neighborhood,
	// so no nearby malicious claimant can slip under the density test.
	key := src.ID().Add(id.MustParse("8000000000000000000000000000000000000000"))
	if ov.OwnerOf(key).ID() == src.ID() {
		t.Skip("source owns its own antipode; degenerate draw")
	}
	_, err := r.Lookup(src.Ref().Addr, key)
	if !errors.Is(err, ErrCensored) {
		t.Fatalf("err = %v, want ErrCensored", err)
	}
}

func TestLookupFromDeadNode(t *testing.T) {
	ov, s := build(t, 100, 7)
	r := NewRouter(ov, NewAdversary())
	n := ov.RandomLive(s)
	if err := ov.Fail(n.Ref().Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(n.Ref().Addr, id.HashString("k")); err == nil {
		t.Fatalf("lookup from dead node accepted")
	}
	if _, err := r.Lookup(simnet.Addr(10_000), id.HashString("k")); err == nil {
		t.Fatalf("lookup from unknown addr accepted")
	}
}

func TestAdversaryMarkFraction(t *testing.T) {
	ov, s := build(t, 200, 8)
	adv := NewAdversary()
	if got := adv.MarkFraction(ov, 0.25, s); got != 50 {
		t.Fatalf("marked %d", got)
	}
	if adv.Count() != 50 {
		t.Fatalf("count %d", adv.Count())
	}
}
