package anonmetrics

import (
	"fmt"
	"math"
	"testing"

	"tap/internal/adversary"
	"tap/internal/core"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
)

type sys struct {
	ov   *pastry.Overlay
	dir  *tha.Directory
	svc  *core.Service
	col  *adversary.Collusion
	root *rng.Stream
}

func newSys(t testing.TB, n int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, 3)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, root.Split("svc"))
	return &sys{ov: ov, dir: dir, svc: svc, col: adversary.NewCollusion(ov, mgr), root: root}
}

func (s *sys) tunnel(t testing.TB, label string, l int) *core.Tunnel {
	t.Helper()
	node := s.ov.RandomLive(s.root.Split("pick-" + label))
	in, err := core.NewInitiator(s.svc, node, s.root.Split("init-"+label))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeployDirect(l); err != nil {
		t.Fatal(err)
	}
	tun, err := in.FormTunnel(l)
	if err != nil {
		t.Fatal(err)
	}
	return tun
}

func (s *sys) leakHop(t testing.TB, tun *core.Tunnel, hop int) {
	t.Helper()
	s.col.MarkAddr(s.dir.ReplicaAddrs(tun.Hops[hop].HopID)[0])
}

func TestClassify(t *testing.T) {
	s := newSys(t, 200, 1)
	tun := s.tunnel(t, "a", 3)
	if got := Classify(s.col, tun); got != KnowsNothing {
		t.Fatalf("fresh tunnel classified %v", got)
	}
	s.leakHop(t, tun, 1)
	if got := Classify(s.col, tun); got != KnowsPartial {
		t.Fatalf("one leak classified %v", got)
	}
	s.leakHop(t, tun, 0)
	s.leakHop(t, tun, 2)
	if got := Classify(s.col, tun); got != KnowsAll {
		t.Fatalf("all leaked classified %v", got)
	}
}

func TestDegreeOfAnonymityBounds(t *testing.T) {
	s := newSys(t, 200, 2)
	tun := s.tunnel(t, "a", 3)
	n := s.ov.Size()
	if d := DegreeOfAnonymity(s.col, tun, n); d != 1 {
		t.Fatalf("unleaked tunnel degree = %f, want 1", d)
	}
	s.leakHop(t, tun, 0)
	s.leakHop(t, tun, 1)
	s.leakHop(t, tun, 2)
	if d := DegreeOfAnonymity(s.col, tun, n); d != 0 {
		t.Fatalf("fully leaked tunnel degree = %f, want 0", d)
	}
}

func TestPartialLeakKeepsInitiatorHidden(t *testing.T) {
	// The §6 argument: a suffix of leaked hops exposes the destination,
	// not the initiator.
	s := newSys(t, 300, 3)
	tun := s.tunnel(t, "a", 4)
	n := s.ov.Size()
	s.leakHop(t, tun, 2)
	s.leakHop(t, tun, 3)
	d := DegreeOfAnonymity(s.col, tun, n)
	if d < 0.99 {
		t.Fatalf("partial suffix leak collapsed anonymity to %f", d)
	}
	if !SuffixTraceable(s.col, tun, 3) {
		t.Fatalf("leaked suffix not traceable from hop 3")
	}
	if SuffixTraceable(s.col, tun, 1) {
		t.Fatalf("whole tunnel traceable with only a suffix leaked")
	}
	if SuffixTraceable(s.col, tun, 0) || SuffixTraceable(s.col, tun, 9) {
		t.Fatalf("out-of-range fromHop accepted")
	}
}

func TestCandidateSetSize(t *testing.T) {
	s := newSys(t, 100, 4)
	tun := s.tunnel(t, "a", 3)
	s.col.MarkFraction(0.1, s.root.Split("mark"))
	n := s.ov.Size()
	benign := n - s.col.MaliciousCount()
	if got := CandidateSetSize(s.col, tun, n); got != benign {
		t.Fatalf("candidates = %d, want %d benign nodes", got, benign)
	}
}

func TestMeanDegreeDropsWithCollusion(t *testing.T) {
	s := newSys(t, 300, 5)
	var tunnels []*core.Tunnel
	for i := 0; i < 40; i++ {
		tunnels = append(tunnels, s.tunnel(t, fmt.Sprintf("t%d", i), 2))
	}
	n := s.ov.Size()
	before := MeanDegree(s.col, tunnels, n)
	if before != 1 {
		t.Fatalf("clean network mean degree %f", before)
	}
	s.col.MarkFraction(0.3, s.root.Split("mark"))
	after := MeanDegree(s.col, tunnels, n)
	if after > before {
		t.Fatalf("mean degree rose under collusion")
	}
	// With l=2 and p=0.3 some tunnels are fully leaked, so the mean must
	// fall strictly below 1.
	if after >= 1 {
		t.Fatalf("mean degree %f did not drop at p=0.3, l=2", after)
	}
}

func TestResponderGuessProbability(t *testing.T) {
	if got := ResponderGuessProbability(10_000); math.Abs(got-1.0/9999) > 1e-12 {
		t.Fatalf("responder bound = %g", got)
	}
	if ResponderGuessProbability(1) != 1 {
		t.Fatalf("degenerate network")
	}
}

func TestDegenerateNetworks(t *testing.T) {
	s := newSys(t, 50, 6)
	tun := s.tunnel(t, "a", 2)
	// All nodes malicious: no anonymity possible.
	s.col.MarkFraction(1.0, s.root.Split("mark"))
	if d := DegreeOfAnonymity(s.col, tun, s.ov.Size()); d != 0 {
		t.Fatalf("degree %f with zero benign nodes", d)
	}
	if MeanDegree(s.col, nil, 100) != 0 {
		t.Fatalf("empty population mean not 0")
	}
}
