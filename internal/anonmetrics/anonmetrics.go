// Package anonmetrics turns the paper's informal security analysis (§6)
// into measurable quantities, using the entropy-based "degree of
// anonymity" of Serjantov & Danezis / Díaz et al.: the adversary's
// uncertainty about the initiator, normalized to [0,1].
//
// The knowledge model matches the paper's collusion analysis exactly:
//
//   - If the adversary holds the anchors of *all* hops (case 1), it can
//     recognize a captured message as entering the first hop: whoever
//     handed it over is the initiator. Candidate set size 1, anonymity 0.
//   - If the adversary holds a *suffix* of the anchors (hops i..l with
//     i>1) it can trace traffic forward from hop i and learn the
//     destination — but the predecessor it observes at hop i is a relay
//     (hop i−1's node), not the initiator. "A malicious node along the
//     tunnel cannot know for sure whether it is the first hop" (§6): the
//     initiator hides among every benign node.
//   - With no useful knowledge, the initiator hides among all benign
//     nodes; likewise the responder's view ("the probability that the
//     responder correctly guesses the initiator's identity is 1/(N−1)").
//
// Candidates colluding nodes can rule out: themselves (they know they
// did not originate the message).
package anonmetrics

import (
	"math"

	"tap/internal/adversary"
	"tap/internal/core"
)

// Knowledge classifies what the collusion knows about one tunnel.
type Knowledge int

// Knowledge levels, weakest to strongest.
const (
	// KnowsNothing: no hop anchor of this tunnel has leaked.
	KnowsNothing Knowledge = iota
	// KnowsPartial: some anchors leaked, but not the full set — the
	// adversary may trace segments but cannot prove where the tunnel
	// starts.
	KnowsPartial
	// KnowsAll: every hop anchor leaked (the paper's case 1) — a
	// captured message is fully traceable to its entry.
	KnowsAll
)

// Classify inspects the collusion's anchor knowledge for a tunnel.
func Classify(col *adversary.Collusion, t *core.Tunnel) Knowledge {
	leaked := 0
	for _, h := range t.Hops {
		if col.Leaked(h.HopID) {
			leaked++
		}
	}
	switch leaked {
	case 0:
		return KnowsNothing
	case t.Length():
		return KnowsAll
	default:
		return KnowsPartial
	}
}

// CandidateSetSize returns how many nodes the adversary must consider as
// the possible initiator of traffic on this tunnel, in a network of n
// live nodes of which m are colluding.
func CandidateSetSize(col *adversary.Collusion, t *core.Tunnel, n int) int {
	m := col.MaliciousCount()
	benign := n - m
	if benign < 1 {
		benign = 1
	}
	if Classify(col, t) == KnowsAll {
		return 1
	}
	// Partial or no knowledge: the initiator hides among the benign
	// population (colluders exclude themselves).
	return benign
}

// DegreeOfAnonymity returns the normalized entropy d = H/H_max ∈ [0,1]
// of the adversary's initiator distribution for this tunnel: 1 = the
// initiator hides among all benign nodes, 0 = identified. The adversary's
// posterior is uniform over the candidate set (it has no basis to prefer
// one benign node over another in this model).
func DegreeOfAnonymity(col *adversary.Collusion, t *core.Tunnel, n int) float64 {
	m := col.MaliciousCount()
	benign := n - m
	if benign <= 1 {
		return 0
	}
	c := CandidateSetSize(col, t, n)
	if c <= 1 {
		return 0
	}
	return math.Log2(float64(c)) / math.Log2(float64(benign))
}

// MeanDegree averages the degree of anonymity over a tunnel population —
// the population-level anonymity curve.
func MeanDegree(col *adversary.Collusion, tunnels []*core.Tunnel, n int) float64 {
	if len(tunnels) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range tunnels {
		sum += DegreeOfAnonymity(col, t, n)
	}
	return sum / float64(len(tunnels))
}

// ResponderGuessProbability is §6's responder bound: a responder that
// wants to guess the initiator can do no better than uniform over the
// other n−1 nodes.
func ResponderGuessProbability(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / float64(n-1)
}

// SuffixTraceable reports whether the adversary can trace this tunnel's
// traffic forward to its destination: it holds a contiguous suffix of
// anchors starting at or before hop `fromHop` (1-indexed). Destination
// exposure matters for responder-side privacy even when the initiator
// stays hidden.
func SuffixTraceable(col *adversary.Collusion, t *core.Tunnel, fromHop int) bool {
	if fromHop < 1 || fromHop > t.Length() {
		return false
	}
	for i := fromHop - 1; i < t.Length(); i++ {
		if !col.Leaked(t.Hops[i].HopID) {
			return false
		}
	}
	return true
}
