package wire

import "fmt"

// ACK frame versions. Version 1 is the PR-1 stop-and-wait acknowledgment:
// one flow id plus the hop count of the data packet it acknowledges.
// Version 2 is the windowed-streaming acknowledgment: a cumulative
// sequence number (every segment below it has been received) plus up to
// MaxAckRanges selective ranges of segments received above the cumulative
// point, so a sender retransmits exactly the gaps.
const (
	AckVerBasic byte = 1
	AckVerSACK  byte = 2
)

// MaxAckRanges bounds the selective ranges one SACK frame carries. Gaps
// beyond the bound are simply not reported in this frame; the cumulative
// number still advances, so correctness never depends on range count.
const MaxAckRanges = 8

// AckRange is one contiguous run of received segments, [Start, End).
type AckRange struct {
	Start, End uint64
}

// AckFrame is a decoded acknowledgment of either version.
type AckFrame struct {
	Ver  byte
	Flow uint64
	// DataHops is the acknowledged data packet's hop count (version 1).
	DataHops uint32
	// Cum is the cumulative acknowledgment: all segments with
	// seq < Cum have been received (version 2).
	Cum uint64
	// Ranges are the selective runs above Cum (version 2). Decoding
	// appends into the slice passed to ReadAck, so a caller that supplies
	// capacity gets a zero-allocation decode.
	Ranges []AckRange
}

// AppendAckBasic encodes a version-1 acknowledgment.
func AppendAckBasic(w *Writer, flow uint64, dataHops uint32) {
	w.Byte(AckVerBasic)
	w.Uint64(flow)
	w.Uint32(dataHops)
}

// AppendAckSACK encodes a version-2 acknowledgment. Ranges beyond
// MaxAckRanges are dropped (they must be sorted ascending; the nearest
// gaps matter most to the sender's retransmit decision).
func AppendAckSACK(w *Writer, flow uint64, cum uint64, ranges []AckRange) {
	if len(ranges) > MaxAckRanges {
		ranges = ranges[:MaxAckRanges]
	}
	w.Byte(AckVerSACK)
	w.Uint64(flow)
	w.Uint64(cum)
	w.Byte(byte(len(ranges)))
	for _, r := range ranges {
		w.Uint64(r.Start)
		w.Uint64(r.End)
	}
}

// ReadAck decodes an acknowledgment of either version, appending selective
// ranges into the caller's slice.
func ReadAck(r *Reader, ranges []AckRange) (AckFrame, error) {
	var f AckFrame
	f.Ver = r.Byte()
	f.Flow = r.Uint64()
	switch f.Ver {
	case AckVerBasic:
		f.DataHops = r.Uint32()
	case AckVerSACK:
		f.Cum = r.Uint64()
		n := int(r.Byte())
		if n > MaxAckRanges {
			return f, fmt.Errorf("wire: ack carries %d ranges, max %d", n, MaxAckRanges)
		}
		for i := 0; i < n; i++ {
			start := r.Uint64()
			end := r.Uint64()
			if r.Err() != nil {
				break
			}
			if end <= start || start < f.Cum {
				return f, fmt.Errorf("wire: ack range [%d,%d) malformed against cum %d", start, end, f.Cum)
			}
			if len(ranges) > 0 && start < ranges[len(ranges)-1].End {
				return f, fmt.Errorf("wire: ack ranges out of order at [%d,%d)", start, end)
			}
			ranges = append(ranges, AckRange{Start: start, End: end})
		}
		f.Ranges = ranges
	default:
		return f, fmt.Errorf("wire: unknown ack version %d", f.Ver)
	}
	if err := r.Err(); err != nil {
		return f, err
	}
	return f, nil
}

// AckSizeBasic is the encoded size of a version-1 acknowledgment.
func AckSizeBasic() int { return 1 + 8 + 4 }

// AckSizeSACK is the encoded size of a version-2 acknowledgment carrying
// nranges selective ranges.
func AckSizeSACK(nranges int) int {
	if nranges > MaxAckRanges {
		nranges = MaxAckRanges
	}
	return 1 + 8 + 8 + 1 + 16*nranges
}

// --- stream segment framing -------------------------------------------------

// streamMagic prefixes a stream segment riding as an opaque tunnel
// payload, so a tunnel exit can tell windowed-stream traffic from plain
// one-shot payloads without any out-of-band signal.
var streamMagic = [4]byte{'T', 'S', 'G', 1}

// StreamSegmentOverhead is the framing cost of one segment: magic, stream
// id, sequence number, flags, ack-return address, and the data length
// prefix (worst-case uvarint for the sizes in play).
const StreamSegmentOverhead = 4 + 8 + 8 + 1 + 8 + 2

// AppendStreamSegment encodes one stream segment into w.
func AppendStreamSegment(w *Writer, stream, seq uint64, fin bool, ackTo int64, data []byte) {
	w.buf = append(w.buf, streamMagic[:]...)
	w.Uint64(stream)
	w.Uint64(seq)
	if fin {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Int64(ackTo)
	w.Blob(data)
}

// IsStreamSegment reports whether buf begins with the stream framing
// magic.
func IsStreamSegment(buf []byte) bool {
	return len(buf) >= len(streamMagic) && string(buf[:len(streamMagic)]) == string(streamMagic[:])
}

// ReadStreamSegment decodes a segment produced by AppendStreamSegment.
// The data slice aliases buf.
func ReadStreamSegment(buf []byte) (stream, seq uint64, fin bool, ackTo int64, data []byte, err error) {
	if !IsStreamSegment(buf) {
		err = fmt.Errorf("wire: not a stream segment")
		return
	}
	r := NewReader(buf[len(streamMagic):])
	stream = r.Uint64()
	seq = r.Uint64()
	fin = r.Byte() != 0
	ackTo = r.Int64()
	data = r.Blob()
	err = r.Err()
	return
}
