package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the stream framing for the real transport path. The
// simulator never marshals (messages report SizeBytes and ride as Go
// values), but once messages cross a TCP connection every frame needs an
// unambiguous boundary and a cheap validity check before any payload is
// trusted. A frame is:
//
//	offset  size  field
//	0       2     magic 0x54 0x50 ("TP")
//	2       1     version (FrameVersion)
//	3       1     kind — application-defined message discriminator
//	4       4     payload length, big-endian uint32
//	8       n     payload
//
// The length field is guarded by MaxFramePayload before any allocation or
// read, so a corrupt or hostile header cannot make a reader allocate or
// block for gigabytes. Magic and version are checked first: a peer
// speaking a different protocol (or a desynchronized stream) fails fast
// with a diagnosable error instead of a garbage length.

// Frame header constants.
const (
	// FrameMagic0 and FrameMagic1 open every frame ("TP").
	FrameMagic0 = 0x54
	FrameMagic1 = 0x50
	// FrameVersion is the current framing version. Readers reject
	// anything else; bump it when the header layout changes.
	FrameVersion = 1
	// FrameHeaderSize is the fixed prefix length before the payload.
	FrameHeaderSize = 8
	// MaxFramePayload bounds a single frame's payload (16 MiB). Tunnel
	// envelopes are a few KiB; the bound exists so a corrupted or
	// malicious length prefix cannot drive allocation.
	MaxFramePayload = 16 << 20
)

// Framing errors.
var (
	ErrBadMagic   = fmt.Errorf("wire: bad frame magic")
	ErrBadVersion = fmt.Errorf("wire: unsupported frame version")
	ErrFrameSize  = fmt.Errorf("wire: frame payload exceeds limit")
)

// AppendFrame appends a framed payload to dst and returns the extended
// slice. It panics if payload exceeds MaxFramePayload — senders construct
// their own payloads, so an oversized one is a programming error, not a
// peer's misbehavior.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	if len(payload) > MaxFramePayload {
		panic(fmt.Sprintf("wire: frame payload %d exceeds limit %d", len(payload), MaxFramePayload))
	}
	dst = append(dst, FrameMagic0, FrameMagic1, FrameVersion, kind)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// WriteFrame writes one framed payload to w.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [FrameHeaderSize]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = FrameMagic0, FrameMagic1, FrameVersion, kind
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, len(payload))
	}
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// checkHeader validates a frame header and returns (kind, payload length).
func checkHeader(hdr []byte) (byte, int, error) {
	if hdr[0] != FrameMagic0 || hdr[1] != FrameMagic1 {
		return 0, 0, fmt.Errorf("%w: %02x %02x", ErrBadMagic, hdr[0], hdr[1])
	}
	if hdr[2] != FrameVersion {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, hdr[2])
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFramePayload {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	return hdr[3], int(n), nil
}

// ReadFrame reads one frame from r. buf, when non-nil and large enough,
// backs the returned payload so steady-state readers do not allocate per
// frame; the returned slice aliases it. The header is validated — magic,
// version, and the MaxFramePayload guard — before any payload byte is
// read, so a hostile length prefix never drives allocation.
func ReadFrame(r io.Reader, buf []byte) (kind byte, payload []byte, err error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind, n, err := checkHeader(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	if n <= cap(buf) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		// A truncated payload after a valid header: the stream died
		// mid-frame. Normalize EOF so callers see an unexpected cut.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return kind, payload, nil
}

// ParseFrame decodes one frame from the front of b, returning the kind,
// the payload (aliasing b), and the remainder after the frame. It is the
// allocation-free, slice-based twin of ReadFrame, used where a whole
// buffer is already in memory (tests, fuzzing, datagram-style callers).
func ParseFrame(b []byte) (kind byte, payload []byte, rest []byte, err error) {
	if len(b) < FrameHeaderSize {
		return 0, nil, nil, ErrShort
	}
	kind, n, err := checkHeader(b[:FrameHeaderSize])
	if err != nil {
		return 0, nil, nil, err
	}
	if len(b)-FrameHeaderSize < n {
		return 0, nil, nil, ErrShort
	}
	return kind, b[FrameHeaderSize : FrameHeaderSize+n], b[FrameHeaderSize+n:], nil
}
