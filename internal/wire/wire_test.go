package wire

import (
	"bytes"
	"testing"

	"tap/internal/id"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Byte(7)
	w.Uint32(0xdeadbeef)
	w.Uint64(1 << 40)
	w.Int64(-12345)
	nid := id.HashString("n")
	w.ID(nid)
	w.Blob([]byte("payload"))
	w.String("hello")

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Fatalf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Int64(); got != -12345 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := r.ID(); got != nid {
		t.Fatalf("ID = %s", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Blob = %q", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBlob(t *testing.T) {
	w := NewWriter(8)
	w.Blob(nil)
	r := NewReader(w.Bytes())
	if got := r.Blob(); len(got) != 0 {
		t.Fatalf("empty blob read as %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Uint64()
	if r.Err() != ErrShort {
		t.Fatalf("err = %v, want ErrShort", r.Err())
	}
	// Subsequent reads keep failing without panicking.
	r.ID()
	r.Blob()
	if r.Err() != ErrShort {
		t.Fatalf("sticky error lost")
	}
}

func TestOversizeBlobPrefix(t *testing.T) {
	w := NewWriter(8)
	w.Blob([]byte("abc"))
	buf := w.Bytes()
	buf[0] = 200 // claim 200 bytes follow
	r := NewReader(buf)
	r.Blob()
	if r.Err() != ErrOversize {
		t.Fatalf("err = %v, want ErrOversize", r.Err())
	}
}

func TestDoneDetectsTrailing(t *testing.T) {
	w := NewWriter(8)
	w.Byte(1)
	w.Byte(2)
	r := NewReader(w.Bytes())
	r.Byte()
	if err := r.Done(); err == nil {
		t.Fatalf("trailing byte not detected")
	}
}

func TestRemaining(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(1)
	r := NewReader(w.Bytes())
	if r.Remaining() != 4 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.Uint32()
	if r.Remaining() != 0 {
		t.Fatalf("Remaining after read = %d", r.Remaining())
	}
}

func TestZeroValueReads(t *testing.T) {
	// After an error, value reads return zero values.
	r := NewReader(nil)
	if r.Byte() != 0 || r.Uint32() != 0 || r.Uint64() != 0 || !r.ID().IsZero() || r.Blob() != nil {
		t.Fatalf("post-error reads not zero-valued")
	}
}
