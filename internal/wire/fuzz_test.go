package wire

import (
	"bytes"
	"testing"

	"tap/internal/id"
)

// FuzzReader feeds arbitrary bytes through every Reader method and
// requires that decoding never panics, never reads out of bounds, and
// that a sticky error, once set, never resolves.
func FuzzReader(f *testing.F) {
	w := NewWriter(64)
	w.Byte(1)
	w.Uint32(42)
	w.ID(id.HashString("x"))
	w.Blob([]byte("payload"))
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x80}) // lone uvarint continuation byte

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		// Exercise a fixed method sequence; each call must be safe.
		_ = r.Byte()
		_ = r.Uint32()
		_ = r.Blob()
		_ = r.ID()
		_ = r.Uint64()
		_ = r.Blob()
		hadErr := r.Err() != nil
		_ = r.Byte()
		if hadErr && r.Err() == nil {
			t.Fatalf("sticky error resolved itself")
		}
		if r.Remaining() < 0 {
			t.Fatalf("negative remaining")
		}
	})
}

// FuzzFrame feeds arbitrary bytes through both frame decoders and
// requires that they never panic, never over-read, agree with each other,
// and that anything they accept re-encodes to the identical bytes. The
// committed seeds cover the hostile-header cases: truncated header,
// truncated payload, an oversized length claim, wrong magic, and a wrong
// version.
func FuzzFrame(f *testing.F) {
	f.Add(AppendFrame(nil, 1, []byte("payload")))
	f.Add(AppendFrame(AppendFrame(nil, 1, []byte("a")), 2, []byte("b")))
	f.Add([]byte{FrameMagic0, FrameMagic1, FrameVersion, 1, 0, 0})                   // truncated header
	f.Add(AppendFrame(nil, 3, []byte("cut"))[:FrameHeaderSize+1])                    // truncated payload
	f.Add([]byte{FrameMagic0, FrameMagic1, FrameVersion, 1, 0xff, 0xff, 0xff, 0xff}) // oversized length claim
	f.Add([]byte{'X', 'X', FrameVersion, 1, 0, 0, 0, 0})                             // bad magic
	f.Add([]byte{FrameMagic0, FrameMagic1, 0x7f, 1, 0, 0, 0, 0})                     // bad version
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, rest, err := ParseFrame(data)
		sk, sp, serr := ReadFrame(bytes.NewReader(data), nil)
		if (err == nil) != (serr == nil) {
			t.Fatalf("decoders disagree: parse err=%v, read err=%v", err, serr)
		}
		if err != nil {
			return
		}
		if sk != kind || !bytes.Equal(sp, payload) {
			t.Fatalf("decoders disagree on content: kind %d vs %d", kind, sk)
		}
		if len(payload) > MaxFramePayload {
			t.Fatalf("accepted payload of %d bytes past the guard", len(payload))
		}
		if len(payload)+FrameHeaderSize+len(rest) != len(data) {
			t.Fatalf("frame accounting off: %d + %d + %d != %d",
				len(payload), FrameHeaderSize, len(rest), len(data))
		}
		again := AppendFrame(nil, kind, payload)
		if !bytes.Equal(again, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzRoundTrip checks that whatever Writer encodes, Reader decodes
// identically — for arbitrary blob contents and integer values.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("blob"), uint64(7), []byte("second"))
	f.Add([]byte{}, uint64(0), []byte{0})
	f.Fuzz(func(t *testing.T, b1 []byte, v uint64, b2 []byte) {
		w := NewWriter(16)
		w.Blob(b1)
		w.Uint64(v)
		w.Blob(b2)
		r := NewReader(w.Bytes())
		g1 := append([]byte(nil), r.Blob()...)
		gv := r.Uint64()
		g2 := append([]byte(nil), r.Blob()...)
		if err := r.Done(); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(g1, b1) || gv != v || !bytes.Equal(g2, b2) {
			t.Fatalf("round trip mismatch")
		}
	})
}
