// Package wire is the binary codec for TAP's message formats: tunnel
// layers, reply onions, anchor deployment instructions, and application
// payloads.
//
// Formats are hand-rolled rather than gob/JSON because layer contents are
// encrypted and re-framed at every hop; a compact, deterministic encoding
// keeps ciphertext sizes — and therefore the simulated transfer times of
// Figure 6 — meaningful. Integers are big-endian fixed width; byte strings
// are length-prefixed with a uvarint.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tap/internal/id"
)

// ErrShort reports a truncated buffer.
var ErrShort = errors.New("wire: buffer too short")

// ErrOversize reports a length prefix exceeding the remaining buffer, a
// sign of corruption.
var ErrOversize = errors.New("wire: length prefix exceeds buffer")

// Writer accumulates an encoded message.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The writer must not be reused after.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded length.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Uint32 appends a fixed-width big-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a fixed-width big-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Int64 appends a fixed-width big-endian int64 (two's complement).
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// ID appends an identifier as 20 raw bytes.
func (w *Writer) ID(v id.ID) { w.buf = append(w.buf, v[:]...) }

// Blob appends a uvarint length prefix followed by b.
func (w *Writer) Blob(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s as a Blob.
func (w *Writer) String(s string) { w.Blob([]byte(s)) }

// Reader decodes a message produced by Writer. Methods return an error
// once and then keep failing, so call sites may decode a whole struct and
// check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding. The reader does not copy buf; Blob
// results alias it.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns an error unless the buffer was fully and cleanly consumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrShort)
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint32 reads a fixed-width big-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a fixed-width big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a fixed-width big-endian int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// ID reads a 20-byte identifier.
func (r *Reader) ID() id.ID {
	b := r.take(id.Size)
	var out id.ID
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// Blob reads a length-prefixed byte string. The result aliases the input
// buffer.
func (r *Reader) Blob() []byte {
	if r.err != nil {
		return nil
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrShort)
		return nil
	}
	if v > uint64(len(r.buf)-r.off-n) {
		r.fail(ErrOversize)
		return nil
	}
	r.off += n
	return r.take(int(v))
}

// String reads a Blob as a string (copying).
func (r *Reader) String() string { return string(r.Blob()) }
