package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 5000)}
	for _, p := range payloads {
		b := AppendFrame(nil, 7, p)
		kind, got, rest, err := ParseFrame(b)
		if err != nil {
			t.Fatalf("ParseFrame(%d bytes): %v", len(p), err)
		}
		if kind != 7 || !bytes.Equal(got, p) || len(rest) != 0 {
			t.Fatalf("round trip mismatch: kind=%d len=%d rest=%d", kind, len(got), len(rest))
		}

		var buf bytes.Buffer
		if err := WriteFrame(&buf, 9, p); err != nil {
			t.Fatal(err)
		}
		kind, got, err = ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("ReadFrame(%d bytes): %v", len(p), err)
		}
		if kind != 9 || !bytes.Equal(got, p) {
			t.Fatalf("stream round trip mismatch: kind=%d len=%d", kind, len(got))
		}
	}
}

func TestFrameChained(t *testing.T) {
	b := AppendFrame(nil, 1, []byte("first"))
	b = AppendFrame(b, 2, []byte("second"))
	k1, p1, rest, err := ParseFrame(b)
	if err != nil || k1 != 1 || string(p1) != "first" {
		t.Fatalf("first frame: %v %d %q", err, k1, p1)
	}
	k2, p2, rest, err := ParseFrame(rest)
	if err != nil || k2 != 2 || string(p2) != "second" || len(rest) != 0 {
		t.Fatalf("second frame: %v %d %q rest=%d", err, k2, p2, len(rest))
	}
}

func TestFrameReadReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 64)
	_, payload, err := ReadFrame(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &scratch[0] {
		t.Fatalf("payload did not reuse the provided buffer")
	}
}

func TestFrameRejectsBadHeader(t *testing.T) {
	good := AppendFrame(nil, 1, []byte("ok"))

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	if _, _, _, err := ParseFrame(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	badVer := append([]byte(nil), good...)
	badVer[2] = 99
	if _, _, _, err := ParseFrame(badVer); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}

	oversize := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(oversize[4:], MaxFramePayload+1)
	if _, _, _, err := ParseFrame(oversize); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversize length: got %v", err)
	}
	// The stream reader must reject the same header before reading any
	// payload byte — feed only the 8-byte header, so an implementation
	// that tried to allocate-and-read first would block or fail
	// differently.
	if _, _, err := ReadFrame(bytes.NewReader(oversize[:FrameHeaderSize]), nil); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversize length (stream): got %v", err)
	}

	if _, _, _, err := ParseFrame(good[:5]); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated header: got %v", err)
	}
	if _, _, _, err := ParseFrame(good[:len(good)-1]); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated payload: got %v", err)
	}
}

func TestFrameReadTruncatedStream(t *testing.T) {
	full := AppendFrame(nil, 5, []byte("payload"))
	// Cut mid-header.
	if _, _, err := ReadFrame(bytes.NewReader(full[:4]), nil); err == nil {
		t.Fatal("mid-header cut: want error")
	}
	// Cut mid-payload.
	if _, _, err := ReadFrame(bytes.NewReader(full[:FrameHeaderSize+3]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("mid-payload cut: want ErrUnexpectedEOF")
	}
}
