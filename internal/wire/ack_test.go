package wire

import (
	"bytes"
	"testing"
)

func TestAckBasicRoundTrip(t *testing.T) {
	w := NewWriter(16)
	AppendAckBasic(w, 42, 7)
	if got := w.Len(); got != AckSizeBasic() {
		t.Fatalf("encoded size %d, AckSizeBasic %d", got, AckSizeBasic())
	}
	r := NewReader(w.Bytes())
	f, err := ReadAck(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if f.Ver != AckVerBasic || f.Flow != 42 || f.DataHops != 7 {
		t.Fatalf("round trip mismatch: %+v", f)
	}
}

func TestAckSACKRoundTrip(t *testing.T) {
	ranges := []AckRange{{Start: 12, End: 14}, {Start: 17, End: 18}, {Start: 20, End: 25}}
	w := NewWriter(64)
	AppendAckSACK(w, 9, 10, ranges)
	if got := w.Len(); got != AckSizeSACK(len(ranges)) {
		t.Fatalf("encoded size %d, AckSizeSACK %d", got, AckSizeSACK(len(ranges)))
	}
	var scratch [MaxAckRanges]AckRange
	r := NewReader(w.Bytes())
	f, err := ReadAck(r, scratch[:0])
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if f.Ver != AckVerSACK || f.Flow != 9 || f.Cum != 10 {
		t.Fatalf("header mismatch: %+v", f)
	}
	if len(f.Ranges) != len(ranges) {
		t.Fatalf("got %d ranges, want %d", len(f.Ranges), len(ranges))
	}
	for i, r := range ranges {
		if f.Ranges[i] != r {
			t.Fatalf("range %d: got %+v want %+v", i, f.Ranges[i], r)
		}
	}
}

func TestAckSACKEmptyRanges(t *testing.T) {
	w := NewWriter(32)
	AppendAckSACK(w, 1, 100, nil)
	f, err := ReadAck(NewReader(w.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cum != 100 || len(f.Ranges) != 0 {
		t.Fatalf("mismatch: %+v", f)
	}
}

func TestAckSACKTruncatesRanges(t *testing.T) {
	ranges := make([]AckRange, MaxAckRanges+5)
	for i := range ranges {
		ranges[i] = AckRange{Start: uint64(10 + 2*i), End: uint64(11 + 2*i)}
	}
	w := NewWriter(256)
	AppendAckSACK(w, 1, 3, ranges)
	f, err := ReadAck(NewReader(w.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Ranges) != MaxAckRanges {
		t.Fatalf("got %d ranges, want cap %d", len(f.Ranges), MaxAckRanges)
	}
}

func TestAckRejectsMalformed(t *testing.T) {
	cases := map[string]func(w *Writer){
		"unknown version": func(w *Writer) {
			w.Byte(99)
			w.Uint64(1)
		},
		"inverted range": func(w *Writer) {
			w.Byte(AckVerSACK)
			w.Uint64(1)
			w.Uint64(5)
			w.Byte(1)
			w.Uint64(9)
			w.Uint64(8)
		},
		"range below cum": func(w *Writer) {
			w.Byte(AckVerSACK)
			w.Uint64(1)
			w.Uint64(5)
			w.Byte(1)
			w.Uint64(2)
			w.Uint64(4)
		},
		"out of order ranges": func(w *Writer) {
			w.Byte(AckVerSACK)
			w.Uint64(1)
			w.Uint64(0)
			w.Byte(2)
			w.Uint64(10)
			w.Uint64(12)
			w.Uint64(5)
			w.Uint64(7)
		},
		"truncated": func(w *Writer) {
			w.Byte(AckVerSACK)
			w.Uint64(1)
		},
	}
	for name, build := range cases {
		w := NewWriter(64)
		build(w)
		if _, err := ReadAck(NewReader(w.Bytes()), nil); err == nil {
			t.Errorf("%s: decode accepted malformed frame", name)
		}
	}
}

func TestAckDecodeNoAlloc(t *testing.T) {
	w := NewWriter(64)
	AppendAckSACK(w, 77, 30, []AckRange{{Start: 33, End: 35}, {Start: 40, End: 41}})
	buf := w.Bytes()
	var scratch [MaxAckRanges]AckRange
	allocs := testing.AllocsPerRun(200, func() {
		r := Reader{buf: buf}
		if _, err := ReadAck(&r, scratch[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ack decode allocates %v/op", allocs)
	}
}

func TestStreamSegmentRoundTrip(t *testing.T) {
	data := []byte("hello, window")
	w := NewWriter(64)
	AppendStreamSegment(w, 5, 12, true, 314, data)
	if !IsStreamSegment(w.Bytes()) {
		t.Fatal("framing magic not detected")
	}
	stream, seq, fin, ackTo, got, err := ReadStreamSegment(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if stream != 5 || seq != 12 || !fin || ackTo != 314 || !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: stream=%d seq=%d fin=%v ackTo=%d data=%q", stream, seq, fin, ackTo, got)
	}
	if IsStreamSegment(data) {
		t.Fatal("plain payload misdetected as stream segment")
	}
	if _, _, _, _, _, err := ReadStreamSegment([]byte("TSG")); err == nil {
		t.Fatal("short buffer accepted")
	}
}
