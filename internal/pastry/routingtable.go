package pastry

import (
	"tap/internal/id"
)

// RoutingTable is Pastry's per-digit prefix table. Row r holds, for each
// digit value d, a node whose id shares the first r digits with the owner
// and has d as its (r+1)-th digit. The owner's own column in each row is
// conceptually itself and stays empty.
//
// Entries may go stale when nodes fail; routing skips dead entries and the
// overlay repairs them lazily (see Node.nextHop and Overlay.repairEntry).
type RoutingTable struct {
	owner id.ID
	b     int
	cols  int
	rows  [][]NodeRef // rows[r][d]; zero NodeRef means empty
	used  int         // number of rows materialized
}

// NewRoutingTable returns a table with no rows materialized; rows grow on
// first touch up to the id digit count.
func NewRoutingTable(owner id.ID, b int) *RoutingTable {
	return &RoutingTable{
		owner: owner,
		b:     b,
		cols:  1 << b,
	}
}

// ensureRow materializes rows up to and including r.
func (t *RoutingTable) ensureRow(r int) {
	for len(t.rows) <= r {
		t.rows = append(t.rows, make([]NodeRef, t.cols))
	}
	if r+1 > t.used {
		t.used = r + 1
	}
}

// Rows returns the number of materialized rows.
func (t *RoutingTable) Rows() int { return len(t.rows) }

// Get returns the entry at (row, digit) and whether it is populated.
func (t *RoutingTable) Get(row, digit int) (NodeRef, bool) {
	if row >= len(t.rows) {
		return NodeRef{}, false
	}
	e := t.rows[row][digit]
	if e.ID.IsZero() {
		return NodeRef{}, false
	}
	return e, true
}

// Set installs ref at (row, digit), materializing the row if needed.
func (t *RoutingTable) Set(row, digit int, ref NodeRef) {
	t.ensureRow(row)
	t.rows[row][digit] = ref
}

// Clear empties the entry at (row, digit).
func (t *RoutingTable) Clear(row, digit int) {
	if row < len(t.rows) {
		t.rows[row][digit] = NodeRef{}
	}
}

// Consider offers a candidate node to the table: if the slot the candidate
// belongs in is empty, it is installed. This is how nodes learn about
// joiners and route-path peers opportunistically.
func (t *RoutingTable) Consider(ref NodeRef) {
	if ref.ID == t.owner {
		return
	}
	row := t.owner.CommonPrefixDigits(ref.ID, t.b)
	if row >= id.NumDigits(t.b) {
		return
	}
	digit := ref.ID.Digit(row, t.b)
	if _, ok := t.Get(row, digit); !ok {
		t.Set(row, digit, ref)
	}
}

// Remove clears any entry referring to nid and reports whether one was
// found.
func (t *RoutingTable) Remove(nid id.ID) bool {
	row := t.owner.CommonPrefixDigits(nid, t.b)
	if row >= len(t.rows) {
		return false
	}
	digit := nid.Digit(row, t.b)
	if t.rows[row][digit].ID == nid {
		t.rows[row][digit] = NodeRef{}
		return true
	}
	return false
}

// Entries returns all populated entries. Freshly allocated.
func (t *RoutingTable) Entries() []NodeRef {
	var out []NodeRef
	for _, row := range t.rows {
		for _, e := range row {
			if !e.ID.IsZero() {
				out = append(out, e)
			}
		}
	}
	return out
}

// EntryCount returns the number of populated entries.
func (t *RoutingTable) EntryCount() int {
	n := 0
	for _, row := range t.rows {
		for _, e := range row {
			if !e.ID.IsZero() {
				n++
			}
		}
	}
	return n
}
