package pastry

import (
	"tap/internal/id"
)

// RoutingTable is Pastry's per-digit prefix table. Row r holds, for each
// digit value d, a node whose id shares the first r digits with the owner
// and has d as its (r+1)-th digit. The owner's own column in each row is
// conceptually itself and stays empty.
//
// Entries may go stale when nodes fail; routing skips dead entries and the
// overlay repairs them lazily (see Node.nextHop and Overlay.repairEntry).
//
// Rows live in one flat array-backed block (refs[row*cols+d]) carved from
// the overlay's ref slab for arena nodes; the block grows row-granular on
// first touch, so a node's table costs exactly as many rows as its prefix
// neighborhood is deep.
type RoutingTable struct {
	owner id.ID
	b     int
	cols  int
	refs  []NodeRef // refs[row*cols+d]; zero NodeRef means empty
	slab  *refSlab  // nil means heap-allocated growth
}

// NewRoutingTable returns a table with no rows materialized; rows grow on
// first touch up to the id digit count.
func NewRoutingTable(owner id.ID, b int) *RoutingTable {
	t := &RoutingTable{}
	t.init(owner, b, nil)
	return t
}

// init prepares t in place, drawing row storage from slab when non-nil.
func (t *RoutingTable) init(owner id.ID, b int, slab *refSlab) {
	t.owner = owner
	t.b = b
	t.cols = 1 << b
	t.refs = nil
	t.slab = slab
}

// Reserve materializes storage for the first `rows` rows in one block.
// The overlay calls it before a bulk fill so construction performs a
// single slab carve instead of a grow-and-copy per row.
func (t *RoutingTable) Reserve(rows int) {
	t.ensureRow(rows - 1)
}

// ensureRow materializes rows up to and including r.
func (t *RoutingTable) ensureRow(r int) {
	need := (r + 1) * t.cols
	if need <= len(t.refs) {
		return
	}
	var refs []NodeRef
	if t.slab != nil {
		refs = t.slab.grab(need)
	} else {
		refs = make([]NodeRef, need)
	}
	copy(refs, t.refs)
	t.refs = refs
}

// Rows returns the number of materialized rows.
func (t *RoutingTable) Rows() int { return len(t.refs) / t.cols }

// Get returns the entry at (row, digit) and whether it is populated.
func (t *RoutingTable) Get(row, digit int) (NodeRef, bool) {
	i := row*t.cols + digit
	if i >= len(t.refs) {
		return NodeRef{}, false
	}
	e := t.refs[i]
	if e.ID.IsZero() {
		return NodeRef{}, false
	}
	return e, true
}

// Set installs ref at (row, digit), materializing the row if needed.
func (t *RoutingTable) Set(row, digit int, ref NodeRef) {
	t.ensureRow(row)
	t.refs[row*t.cols+digit] = ref
}

// Clear empties the entry at (row, digit).
func (t *RoutingTable) Clear(row, digit int) {
	if i := row*t.cols + digit; i < len(t.refs) {
		t.refs[i] = NodeRef{}
	}
}

// Consider offers a candidate node to the table: if the slot the candidate
// belongs in is empty, it is installed. This is how nodes learn about
// joiners and route-path peers opportunistically.
func (t *RoutingTable) Consider(ref NodeRef) {
	if ref.ID == t.owner {
		return
	}
	row := t.owner.CommonPrefixDigits(ref.ID, t.b)
	if row >= id.NumDigits(t.b) {
		return
	}
	digit := ref.ID.Digit(row, t.b)
	if _, ok := t.Get(row, digit); !ok {
		t.Set(row, digit, ref)
	}
}

// Remove clears any entry referring to nid and reports whether one was
// found.
func (t *RoutingTable) Remove(nid id.ID) bool {
	row := t.owner.CommonPrefixDigits(nid, t.b)
	if row*t.cols >= len(t.refs) {
		return false
	}
	digit := nid.Digit(row, t.b)
	if i := row*t.cols + digit; i < len(t.refs) && t.refs[i].ID == nid {
		t.refs[i] = NodeRef{}
		return true
	}
	return false
}

// Entries returns all populated entries. Freshly allocated.
func (t *RoutingTable) Entries() []NodeRef {
	var out []NodeRef
	for _, e := range t.refs {
		if !e.ID.IsZero() {
			out = append(out, e)
		}
	}
	return out
}

// EntryCount returns the number of populated entries.
func (t *RoutingTable) EntryCount() int {
	n := 0
	for _, e := range t.refs {
		if !e.ID.IsZero() {
			n++
		}
	}
	return n
}
