package pastry

import (
	"testing"

	"tap/internal/id"
	"tap/internal/rng"
)

func TestJoinViaRoutingBasics(t *testing.T) {
	o := build(t, 150, 41)
	s := rng.New(42)
	boot := o.RandomLive(s)
	before := o.Size()
	n, err := o.JoinViaRouting(boot.Ref().Addr)
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != before+1 {
		t.Fatalf("size %d", o.Size())
	}
	if !n.Alive() || o.ByID(n.ID()) != n {
		t.Fatalf("joiner not registered")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinViaRoutingFromDeadBootstrap(t *testing.T) {
	o := build(t, 50, 43)
	s := rng.New(44)
	victim := o.RandomLive(s)
	if err := o.Fail(victim.Ref().Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := o.JoinViaRouting(victim.Ref().Addr); err == nil {
		t.Fatalf("join via dead bootstrap accepted")
	}
}

func TestJoinViaRoutingRoutingStaysCorrect(t *testing.T) {
	// A population that joined entirely via the protocol must still route
	// every key to its true owner (leaf sets guarantee it; routing tables
	// only affect hop counts).
	o := build(t, 80, 45)
	s := rng.New(46)
	for i := 0; i < 60; i++ {
		boot := o.RandomLive(s)
		if _, err := o.JoinViaRouting(boot.Ref().Addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		var key id.ID
		s.Bytes(key[:])
		got, _, err := o.Lookup(o.RandomLive(s).Ref().Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != o.OwnerOf(key).ID() {
			t.Fatalf("protocol-joined overlay misroutes %s", key.Short())
		}
	}
}

func TestJoinViaRoutingTableQuality(t *testing.T) {
	// The protocol join yields a usable but typically sparser table than
	// the oracle fill; lazy repair closes the gap on demand. Quantify
	// both claims.
	o := build(t, 400, 47)
	s := rng.New(48)

	proto, err := o.JoinViaRouting(o.RandomLive(s).Ref().Addr)
	if err != nil {
		t.Fatal(err)
	}
	oracle := o.Join()

	pEntries := proto.RT.EntryCount()
	oEntries := oracle.RT.EntryCount()
	if pEntries == 0 {
		t.Fatalf("protocol join produced an empty routing table")
	}
	if pEntries > oEntries+16 {
		t.Fatalf("protocol join (%d entries) implausibly richer than oracle (%d)", pEntries, oEntries)
	}
	// Both nodes route correctly regardless.
	for trial := 0; trial < 100; trial++ {
		var key id.ID
		s.Bytes(key[:])
		for _, src := range []*Node{proto, oracle} {
			got, _, err := o.Lookup(src.Ref().Addr, key)
			if err != nil {
				t.Fatal(err)
			}
			if got.ID() != o.OwnerOf(key).ID() {
				t.Fatalf("misroute from %s joiner", src.ID().Short())
			}
		}
	}
	t.Logf("routing table entries: protocol join %d, oracle join %d", pEntries, oEntries)
}

func TestJoinViaRoutingPrefixConstraints(t *testing.T) {
	o := build(t, 200, 49)
	s := rng.New(50)
	n, err := o.JoinViaRouting(o.RandomLive(s).Ref().Addr)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n.RT.Rows(); row++ {
		for d := 0; d < 16; d++ {
			e, ok := n.RT.Get(row, d)
			if !ok {
				continue
			}
			if e.ID.CommonPrefixDigits(n.ID(), 4) < row || e.ID.Digit(row, 4) != d {
				t.Fatalf("slot (%d,%d) constraint violated by %s", row, d, e.ID.Short())
			}
		}
	}
}

func TestJoinViaRoutingFiresCallback(t *testing.T) {
	o := build(t, 60, 51)
	s := rng.New(52)
	fired := 0
	o.OnJoin = func(*Node) { fired++ }
	if _, err := o.JoinViaRouting(o.RandomLive(s).Ref().Addr); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("OnJoin fired %d times", fired)
	}
}
