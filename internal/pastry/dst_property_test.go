package pastry_test

import (
	"testing"

	"tap/internal/dst"
)

// TestPropChurnPreservesInvariants is the dst-scenario port of the old
// testing/quick churn property. The membership profile drives joins,
// single failures and correlated batch failures from a seeded schedule,
// and the dst leafset checker re-verifies Overlay.CheckInvariants after
// every event — strictly stronger than the quick version, which checked
// once after the whole op sequence and never exercised batch failures.
// (Data-path routing vs the oracle is covered separately by
// TestPropRouteMatchesOracle.)
//
// This lives in an external test package because dst imports pastry.
func TestPropChurnPreservesInvariants(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	applied := 0
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		res := dst.Run(dst.Gen(seed, dst.ProfileMembership), dst.Mutations{})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if res.Violation != nil {
			t.Fatalf("seed %d: churn broke an overlay invariant: %s\nreplay: tapcheck -seed %d -profile membership",
				seed, res.Violation, seed)
		}
		applied += len(res.Scenario.Events) - res.Skipped
	}
	if applied == 0 {
		t.Fatal("no membership event applied across all seeds — property exercised nothing")
	}
}
