package pastry

import (
	"fmt"
	"slices"

	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// Overlay owns every node in the simulated network: construction, joins,
// departures, and the sorted live-node index that serves as both the
// correctness oracle and the information source for state repair.
//
// State is arena-backed for scale (the ROADMAP's 10^5–10^6-node target):
// nodes are values in chunked storage indexed by dense Addr, the live-node
// index is a sorted []NodeRef resolved by binary search (no map), and
// liveness is a bitmap over addresses. Identifier-keyed lookups that the
// map used to serve go through the index; address-keyed lookups — the
// common case, since every NodeRef carries its Addr — are O(1) arena
// loads.
type Overlay struct {
	cfg    Config
	stream *rng.Stream

	mem   *Scratch  // node arena, ref slab, alive bitmap
	index []NodeRef // live nodes, sorted by ID

	// buildDup detects duplicate id draws during Build, while the index
	// is still unsorted; it is discarded once the overlay is up and
	// lookups can use the index.
	buildDup map[id.ID]struct{}

	// Proximity, when set, lets routing-table construction prefer nearby
	// nodes as real Pastry does (it fills slots with the topologically
	// closest matching node). It must be deterministic. Nil means "take
	// the first candidate".
	Proximity func(a, b simnet.Addr) int64

	// OnJoin and OnLeave observe membership changes after the overlay
	// state is consistent. The replication manager (internal/past) uses
	// them to migrate replicas.
	OnJoin  func(*Node)
	OnLeave func(NodeRef)

	// RepairCount counts lazy routing-table repairs, for ablation benches.
	RepairCount uint64
}

// Build constructs an overlay of n nodes with fully materialized, exact
// routing state — the steady state an idle Pastry network converges to.
// Node ids are drawn from stream, so the same (seed, n) yields the same
// network.
func Build(cfg Config, n int, stream *rng.Stream) (*Overlay, error) {
	return BuildInto(nil, cfg, n, stream)
}

// BuildInto is Build reusing mem's arenas. The previous overlay built in
// mem (and every node pointer into it) is destroyed. A nil mem allocates
// fresh arenas, which is exactly Build.
func BuildInto(mem *Scratch, cfg Config, n int, stream *rng.Stream) (*Overlay, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("pastry: network size %d < 1", n)
	}
	if cfg.MaxRouteHops == 0 {
		cfg.MaxRouteHops = 64
	}
	if mem == nil {
		mem = NewScratch()
	} else {
		mem.reset()
	}
	o := &Overlay{
		cfg:      cfg,
		stream:   stream.Split("pastry"),
		mem:      mem,
		index:    mem.index[:0],
		buildDup: make(map[id.ID]struct{}, n),
	}
	for i := 0; i < n; i++ {
		nid := o.freshID()
		o.buildDup[nid] = struct{}{}
		node := o.newNode(nid)
		o.index = append(o.index, node.ref)
	}
	o.buildDup = nil
	slices.SortFunc(o.index, func(a, b NodeRef) int { return a.ID.Cmp(b.ID) })
	for p, r := range o.index {
		o.recomputeLeafAt(o.nodeAt(r.Addr), p)
	}
	o.fillAllTables()
	mem.index = o.index
	return o, nil
}

// newNode appends a node to the arena with the next unused address and
// marks it live. Leaf and routing-table storage come from the slab.
func (o *Overlay) newNode(nid id.ID) *Node {
	nd := o.mem.arena.next()
	addr := simnet.Addr(o.mem.arena.n - 1)
	nd.ref = NodeRef{ID: nid, Addr: addr}
	nd.cfg = o.cfg
	nd.ov = o
	nd.Leaf.init(nid, o.cfg.LeafSize, &o.mem.slab)
	nd.RT.init(nid, o.cfg.B, &o.mem.slab)
	o.setAlive(addr)
	return nd
}

// freshID draws a random identifier not already in use.
func (o *Overlay) freshID() id.ID {
	for {
		var nid id.ID
		o.stream.Bytes(nid[:])
		if nid.IsZero() {
			continue
		}
		if o.buildDup != nil {
			if _, dup := o.buildDup[nid]; dup {
				continue
			}
		} else if o.ByID(nid) != nil {
			continue
		}
		return nid
	}
}

// Config returns the overlay parameters.
func (o *Overlay) Config() Config { return o.cfg }

// Size returns the number of live nodes.
func (o *Overlay) Size() int { return len(o.index) }

// NumAddrs returns the total address space ever allocated (live + dead).
func (o *Overlay) NumAddrs() int { return o.mem.arena.n }

// Node returns the node at addr, live or dead. Nil for unallocated
// addresses.
func (o *Overlay) Node(addr simnet.Addr) *Node {
	if int(addr) < 0 || int(addr) >= o.mem.arena.n {
		return nil
	}
	return o.nodeAt(addr)
}

// ByID returns the live node with the given id, or nil.
func (o *Overlay) ByID(nid id.ID) *Node {
	p := o.pos(nid)
	if p < len(o.index) && o.index[p].ID == nid {
		return o.nodeAt(o.index[p].Addr)
	}
	return nil
}

// aliveRef reports whether the referenced node is currently live.
func (o *Overlay) aliveRef(r NodeRef) bool {
	if int(r.Addr) >= o.mem.arena.n {
		return false
	}
	return o.aliveAddr(r.Addr) && o.nodeAt(r.Addr).ref.ID == r.ID
}

// LiveRefs returns references to all live nodes in ring order.
func (o *Overlay) LiveRefs() []NodeRef {
	out := make([]NodeRef, len(o.index))
	copy(out, o.index)
	return out
}

// RandomLive returns a uniformly random live node drawn from stream.
func (o *Overlay) RandomLive(stream *rng.Stream) *Node {
	return o.nodeAt(o.index[stream.Intn(len(o.index))].Addr)
}

// --- oracle ---------------------------------------------------------------

// pos returns the insertion position of nid in the sorted index. This is
// the innermost operation of every ownership query and table build, so it
// is a hand-rolled binary search rather than sort.Search — no closure, no
// indirect calls per probe.
func (o *Overlay) pos(nid id.ID) int {
	lo, hi := 0, len(o.index)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.index[mid].ID.Less(nid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first position in o.index[from:to] whose id is
// >= lo, in absolute index coordinates.
func (o *Overlay) lowerBound(lo id.ID, from, to int) int {
	for from < to {
		mid := int(uint(from+to) >> 1)
		if o.index[mid].ID.Less(lo) {
			from = mid + 1
		} else {
			to = mid
		}
	}
	return from
}

// upperBound returns the first position in o.index[from:to] whose id
// exceeds hi, in absolute index coordinates.
func (o *Overlay) upperBound(hi id.ID, from, to int) int {
	lo := from
	for lo < to {
		mid := int(uint(lo+to) >> 1)
		if hi.Less(o.index[mid].ID) {
			to = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// OwnerOf returns the live node numerically closest to key: the oracle
// answer routing must agree with, and the node PAST stores a key's primary
// replica on.
func (o *Overlay) OwnerOf(key id.ID) *Node {
	n := len(o.index)
	if n == 0 {
		return nil
	}
	p := o.pos(key) % n
	best := o.index[p]
	prev := o.index[(p-1+n)%n]
	if id.Closer(key, prev.ID, best.ID) {
		best = prev
	}
	return o.nodeAt(best.Addr)
}

// ReplicaSet returns the k live nodes numerically closest to key, ordered
// by increasing distance — PAST's replica set for the key.
func (o *Overlay) ReplicaSet(key id.ID, k int) []*Node {
	n := len(o.index)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// The k closest ids on a sorted ring are a contiguous window around
	// the insertion point; merge outward from both sides.
	p := o.pos(key)
	lo := (p - 1 + n) % n
	hi := p % n
	out := make([]*Node, 0, k)
	for len(out) < k {
		a, b := o.index[lo], o.index[hi]
		if lo == hi || !id.Closer(key, a.ID, b.ID) {
			out = append(out, o.nodeAt(b.Addr))
			hi = (hi + 1) % n
		} else {
			out = append(out, o.nodeAt(a.Addr))
			lo = (lo - 1 + n) % n
		}
	}
	return out
}

// RingNeighbors returns the live nodes within `each` ring positions on
// either side of nid (plus nid's own node when live): the positional
// neighborhood. Replica migration uses it — a key's replica holders are
// within k *positions* of the key, a bound that holds regardless of how
// unevenly ids clump, unlike distance-based windows.
//
// Deduplication is positional arithmetic, not a map: after the center and
// i-1 full rings, position p+i wraps onto already-visited ground exactly
// when 2i-1 >= n, and p-i when 2i >= n. This is the hot query of replica
// migration (every join and failure), so it must not allocate per entry.
func (o *Overlay) RingNeighbors(nid id.ID, each int) []*Node {
	n := len(o.index)
	if n == 0 || each < 0 {
		return nil
	}
	p := o.pos(nid) % n
	want := 2*each + 1
	if want > n {
		want = n
	}
	out := make([]*Node, 0, want)
	add := func(q int) {
		out = append(out, o.nodeAt(o.index[(q%n+n)%n].Addr))
	}
	add(p)
	for i := 1; i <= each && len(out) < n; i++ {
		if 2*i-1 < n {
			add(p + i)
		}
		if 2*i < n && len(out) < n {
			add(p - i)
		}
	}
	return out
}

// rangeMembers returns the live refs within [lo, hi] (an aligned prefix
// block, so it never wraps).
func (o *Overlay) rangeMembers(lo, hi id.ID) []NodeRef {
	i := o.lowerBound(lo, 0, len(o.index))
	j := o.upperBound(hi, i, len(o.index))
	if i >= j {
		return nil
	}
	return o.index[i:j]
}

// --- leaf sets --------------------------------------------------------------

// recomputeLeaf installs node's exact leaf set from the live index,
// writing the sides in place (the index entries carry the refs; no
// temporaries, no map hops).
func (o *Overlay) recomputeLeaf(node *Node) {
	o.recomputeLeafAt(node, o.pos(node.ref.ID))
}

// recomputeLeafAt is recomputeLeaf for a caller that already knows the
// node's index position — bulk construction walks the index in order, so
// re-deriving each position by binary search would be pure waste.
func (o *Overlay) recomputeLeafAt(node *Node, p int) {
	n := len(o.index)
	half := o.cfg.LeafSize / 2
	others := n - 1
	if others < 0 {
		others = 0
	}
	fwdN := half
	if others < fwdN {
		fwdN = others
	}
	bwdN := others - fwdN
	if bwdN > half {
		bwdN = half
	}
	l := &node.Leaf
	l.larger = l.larger[:0]
	for i := 1; i <= fwdN; i++ {
		l.larger = append(l.larger, o.index[(p+i)%n])
	}
	l.smaller = l.smaller[:0]
	for i := 1; i <= bwdN; i++ {
		l.smaller = append(l.smaller, o.index[(p-i+n)%n])
	}
}

// neighborsAround returns the live nodes within half ring positions on
// each side of position p — exactly the nodes whose leaf sets can
// reference the node at p. Dedup is the same positional arithmetic as
// RingNeighbors (this runs on every membership change).
func (o *Overlay) neighborsAround(p int) []*Node {
	n := len(o.index)
	half := o.cfg.LeafSize / 2
	var out []*Node
	for i := 1; i <= half && i < n; i++ {
		if 2*i-1 < n {
			out = append(out, o.nodeAt(o.index[(p+i)%n].Addr))
		}
		if 2*i < n {
			out = append(out, o.nodeAt(o.index[(p-i+n)%n].Addr))
		}
	}
	return out
}

// --- routing tables ---------------------------------------------------------

// rtSampleLimit bounds how many candidates are examined per slot when
// choosing by proximity; real Pastry also sees only a sample (whoever it
// heard from), so a small deterministic sample is both fast and faithful.
const rtSampleLimit = 8

// fillRoutingTable populates node's table from the live index. Rows are
// filled until the block of ids sharing the row prefix with the node
// contains nobody else (deeper rows have no candidates). A sizing pass
// finds that depth first so the whole table is carved from the slab in
// one block; the nested prefix blocks let both passes narrow their search
// windows row over row.
func (o *Overlay) fillRoutingTable(node *Node) {
	digits := id.NumDigits(o.cfg.B)

	// Pass 1: depth. Row r has candidates iff the block sharing r digits
	// with the node holds someone besides the node itself.
	rows := 0
	from, to := 0, len(o.index)
	for row := 0; row < digits; row++ {
		blockLo := node.ref.ID.PrefixFloor(row * o.cfg.B)
		blockHi := node.ref.ID.PrefixCeil(row * o.cfg.B)
		from = o.lowerBound(blockLo, from, to)
		to = o.upperBound(blockHi, from, to)
		if to-from <= 1 {
			break
		}
		rows = row + 1
	}
	if rows == 0 {
		return
	}
	node.RT.Reserve(rows)

	// Pass 2: fill.
	from, to = 0, len(o.index)
	for row := 0; row < rows; row++ {
		blockLo := node.ref.ID.PrefixFloor(row * o.cfg.B)
		blockHi := node.ref.ID.PrefixCeil(row * o.cfg.B)
		blockStart := o.lowerBound(blockLo, from, to)
		blockEnd := o.upperBound(blockHi, blockStart, to)
		from, to = blockStart, blockEnd
		// The 2^b digit sub-blocks tile [blockLo, blockHi] in order, so
		// each block's end boundary is the next one's start: one search
		// per digit, over an ever-narrowing window, instead of two
		// full-index searches per digit.
		own := node.ref.ID.Digit(row, o.cfg.B)
		start := blockStart
		for d := 0; d < 1<<o.cfg.B; d++ {
			_, hi := node.ref.ID.DigitRange(row, o.cfg.B, d)
			end := o.upperBound(hi, start, blockEnd)
			members := o.index[start:end]
			start = end
			if d == own || len(members) == 0 {
				continue
			}
			node.RT.Set(row, d, o.pickBySlot(node, members))
		}
	}
}

// pickBySlot chooses one candidate for a routing-table slot: the
// proximity-closest of a small deterministic sample when a proximity
// metric is configured, otherwise a deterministic per-node choice.
// The per-node variation matters: if every node picked the same
// representative for a block, all routes into that block would funnel
// through one node — a bottleneck real Pastry does not have (each node
// fills slots with whatever nearby candidate it happened to learn).
func (o *Overlay) pickBySlot(node *Node, members []NodeRef) NodeRef {
	if len(members) == 1 {
		return members[0]
	}
	if o.Proximity == nil {
		// Mix the owner's id with the block's first member to spread
		// choices across nodes while staying deterministic. Xor commutes
		// with taking the low word, so this is Xor(owner, first).Low64()
		// without materializing the 160-bit intermediate — this runs for
		// every slot of every table during bulk construction.
		h := node.ref.ID.Low64() ^ members[0].ID.Low64()
		return members[h%uint64(len(members))]
	}
	step := len(members) / rtSampleLimit
	if step == 0 {
		step = 1
	}
	best := members[0]
	bestProx := o.Proximity(node.ref.Addr, best.Addr)
	for i := step; i < len(members); i += step {
		c := members[i]
		if p := o.Proximity(node.ref.Addr, c.Addr); p < bestProx {
			best, bestProx = c, p
		}
	}
	return best
}

// fillAllTables populates every live node's routing table in one
// recursive sweep over the sorted index. The per-node fill
// (fillRoutingTable) binary-searches the index for each row's prefix
// block and each digit's sub-block — dozens of wide searches per node —
// but those blocks are shared: every node whose id starts with the same
// digits sees the same sub-block boundaries. Descending the implicit
// digit trie of the sorted index computes each boundary exactly once,
// turning bulk construction from O(N · rows · 2^b · log N) id
// comparisons into O(trie nodes · 2^b) narrow searches. Results are
// identical: each (node, row, digit) slot gets pickBySlot over the same
// member window either way.
func (o *Overlay) fillAllTables() {
	n := len(o.index)
	if n < 2 {
		return
	}
	digits := id.NumDigits(o.cfg.B)

	// Sizing: a node's table is as deep as the deepest multi-member
	// prefix block containing it, and any such block also contains one of
	// the node's immediate ring neighbors — blocks are contiguous runs of
	// the sorted index. So depth is 1 + the longer of the two adjacent
	// common prefixes, and one linear pass reserves every table exactly
	// (a single slab carve per node, no grow-and-copy).
	lcpPrev := 0
	for i := 0; i < n; i++ {
		lcpNext := 0
		if i+1 < n {
			lcpNext = o.index[i].ID.CommonPrefixDigits(o.index[i+1].ID, o.cfg.B)
		}
		rows := lcpPrev + 1
		if lcpNext >= lcpPrev {
			rows = lcpNext + 1
		}
		if rows > digits {
			rows = digits
		}
		o.nodeAt(o.index[i].Addr).RT.Reserve(rows)
		lcpPrev = lcpNext
	}

	o.fillBlock(0, 0, n, digits)
}

// subBounds writes the boundaries of the 2^b digit sub-blocks of the
// block o.index[from:to], whose members all share the first `row` digits:
// bounds[d] .. bounds[d+1] is the window with digit d at position row.
// Within the block ids are sorted, so digits at position row are
// non-decreasing and one linear digit scan finds every boundary — cheaper
// than per-digit binary searches, whose prefix-key construction was the
// hottest line of bulk construction.
func (o *Overlay) subBounds(row, from, to int, bounds []int) {
	cols := 1 << o.cfg.B
	d := 0
	bounds[0] = from
	for i := from; i < to; i++ {
		dig := o.index[i].ID.Digit(row, o.cfg.B)
		for d < dig {
			d++
			bounds[d] = i
		}
	}
	for d < cols {
		d++
		bounds[d] = to
	}
}

// fillBlock fills row `row` for every node in the block o.index[from:to]
// (all sharing `row` digits), then recurses into the multi-member
// sub-blocks for the deeper rows. Row storage is written directly: the
// sizing pass reserved every row this descent reaches.
func (o *Overlay) fillBlock(row, from, to, digits int) {
	if row == digits {
		return
	}
	cols := 1 << o.cfg.B
	// Boundaries live on the stack for the default digit widths; wide
	// configs (b=8) spill to the heap, which only tests exercise.
	var boundsArr [17]int
	bounds := boundsArr[:]
	if cols+1 > len(bounds) {
		bounds = make([]int, cols+1)
	}
	bounds = bounds[:cols+1]
	o.subBounds(row, from, to, bounds)
	base := row * cols
	for i := from; i < to; i++ {
		node := o.nodeAt(o.index[i].Addr)
		own := node.ref.ID.Digit(row, o.cfg.B)
		refs := node.RT.refs[base : base+cols]
		for d := 0; d < cols; d++ {
			if d == own || bounds[d] == bounds[d+1] {
				continue
			}
			refs[d] = o.pickBySlot(node, o.index[bounds[d]:bounds[d+1]])
		}
	}
	for d := 0; d < cols; d++ {
		if bounds[d+1]-bounds[d] > 1 {
			o.fillBlock(row+1, bounds[d], bounds[d+1], digits)
		}
	}
}

// repairEntry finds a live replacement for the empty or stale slot
// (row, digit) of node and installs it. It models Pastry's lazy repair
// protocol (asking peers for a matching node). Returns false when the
// identifier block for that slot is genuinely empty.
func (o *Overlay) repairEntry(node *Node, row, digit int) (NodeRef, bool) {
	lo, hi := node.ref.ID.DigitRange(row, o.cfg.B, digit)
	members := o.rangeMembers(lo, hi)
	if len(members) == 0 {
		return NodeRef{}, false
	}
	o.RepairCount++
	ref := o.pickBySlot(node, members)
	node.RT.Set(row, digit, ref)
	return ref, true
}

// --- membership --------------------------------------------------------------

// Join adds a new node with a fresh random id, wiring its state and its
// neighbors' leaf sets, and returns it. The new node gets the next unused
// address.
func (o *Overlay) Join() *Node {
	return o.JoinWithID(o.freshID())
}

// JoinWithID adds a node with a chosen id (tests use this to build
// adversarial placements). Panics if the id is taken.
func (o *Overlay) JoinWithID(nid id.ID) *Node {
	if o.ByID(nid) != nil {
		panic(fmt.Sprintf("pastry: duplicate id %s", nid))
	}
	node := o.newNode(nid)

	p := o.pos(nid)
	o.index = append(o.index, NodeRef{})
	copy(o.index[p+1:], o.index[p:])
	o.index[p] = node.ref

	o.recomputeLeaf(node)
	o.fillRoutingTable(node)
	// Neighbors must learn about the joiner immediately (leaf-set
	// protocol); everyone in the joiner's routing table learns about it
	// opportunistically, as Pastry's join message distribution does.
	for _, nb := range o.neighborsAround(p) {
		if nb == node {
			continue
		}
		o.recomputeLeaf(nb)
		nb.RT.Consider(node.ref)
	}
	for _, e := range node.RT.Entries() {
		o.nodeAt(e.Addr).RT.Consider(node.ref)
	}
	if o.OnJoin != nil {
		o.OnJoin(node)
	}
	return node
}

// Fail removes the node at addr abruptly: no goodbye, neighbors repair
// their leaf sets, and stale routing-table entries elsewhere linger until
// routing trips over them. Both crashes and voluntary leaves use this
// path — the paper treats them identically for tunnel availability.
func (o *Overlay) Fail(addr simnet.Addr) error {
	node := o.Node(addr)
	if node == nil {
		return fmt.Errorf("pastry: no node at addr %d", addr)
	}
	if !node.Alive() {
		return fmt.Errorf("pastry: node at addr %d already dead", addr)
	}
	if len(o.index) == 1 {
		return fmt.Errorf("pastry: refusing to fail the last node")
	}
	p := o.pos(node.ref.ID)
	// Collect the repair set before removal: the ring neighbors within L/2
	// positions of the dead node are exactly the nodes whose leaf sets can
	// reference it.
	affected := o.neighborsAround(p)
	o.index = append(o.index[:p], o.index[p+1:]...)
	o.clearAlive(addr)

	// Leaf-set repair: the surviving ring neighbors recompute, and drop
	// the dead node from their routing tables (they detected the failure
	// directly).
	for _, nb := range affected {
		o.recomputeLeaf(nb)
		nb.RT.Remove(node.ref.ID)
	}
	if o.OnLeave != nil {
		o.OnLeave(node.ref)
	}
	return nil
}

// --- routing ------------------------------------------------------------------

// RoutePath walks the hop-by-hop route for key starting at the live node
// with address from, using only per-node routing state. The returned path
// includes the start node and ends at the destination. It is the
// message-free form of routing used by analyses; networked delivery
// replays the same decisions per hop.
func (o *Overlay) RoutePath(from simnet.Addr, key id.ID) ([]NodeRef, error) {
	cur := o.Node(from)
	if cur == nil || !cur.Alive() {
		return nil, fmt.Errorf("pastry: route from dead or unknown addr %d", from)
	}
	path := []NodeRef{cur.ref}
	for hop := 0; ; hop++ {
		if hop > o.cfg.MaxRouteHops {
			return path, fmt.Errorf("pastry: route for %s exceeded %d hops", key.Short(), o.cfg.MaxRouteHops)
		}
		next, deliver := cur.NextHop(key)
		if deliver {
			return path, nil
		}
		if !o.aliveRef(next) {
			return path, fmt.Errorf("pastry: next hop %s vanished mid-route", next)
		}
		path = append(path, next)
		cur = o.nodeAt(next.Addr)
	}
}

// Lookup routes to the owner of key from a given start and returns the
// owning node plus the hop count (path length minus one).
func (o *Overlay) Lookup(from simnet.Addr, key id.ID) (*Node, int, error) {
	path, err := o.RoutePath(from, key)
	if err != nil {
		return nil, 0, err
	}
	dst := o.nodeAt(path[len(path)-1].Addr)
	return dst, len(path) - 1, nil
}

// CheckInvariants verifies structural invariants of the overlay: the index
// is sorted and unique, every live node's leaf set matches the oracle, and
// routing-table entries satisfy their prefix constraints. Tests and
// cmd/tapinspect call it; it is O(N · L).
func (o *Overlay) CheckInvariants() error {
	for i := 1; i < len(o.index); i++ {
		if !o.index[i-1].ID.Less(o.index[i].ID) {
			return fmt.Errorf("index unsorted at %d", i)
		}
	}
	for _, r := range o.index {
		node := o.Node(r.Addr)
		if node == nil || !node.Alive() || node.ref != r {
			return fmt.Errorf("index references dead or mismatched node %s", r)
		}
		nid := r.ID
		// Leaf set must equal the oracle's view.
		tmp := Node{ref: node.ref, cfg: o.cfg, ov: o, Leaf: *NewLeafSet(nid, o.cfg.LeafSize)}
		o.recomputeLeaf(&tmp)
		gotM, wantM := node.Leaf.Members(), tmp.Leaf.Members()
		if len(gotM) != len(wantM) {
			return fmt.Errorf("node %s leaf size %d, oracle %d", nid.Short(), len(gotM), len(wantM))
		}
		for i := range gotM {
			if gotM[i] != wantM[i] {
				return fmt.Errorf("node %s leaf[%d] = %v, oracle %v", nid.Short(), i, gotM[i], wantM[i])
			}
		}
		// Routing-table prefix constraints.
		for row := 0; row < node.RT.Rows(); row++ {
			for d := 0; d < 1<<o.cfg.B; d++ {
				e, ok := node.RT.Get(row, d)
				if !ok {
					continue
				}
				if e.ID.CommonPrefixDigits(nid, o.cfg.B) < row {
					return fmt.Errorf("node %s RT[%d][%d] prefix violation", nid.Short(), row, d)
				}
				if e.ID.Digit(row, o.cfg.B) != d {
					return fmt.Errorf("node %s RT[%d][%d] digit violation", nid.Short(), row, d)
				}
			}
		}
	}
	return nil
}
