package pastry

import (
	"fmt"
	"sort"

	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// Overlay owns every node in the simulated network: construction, joins,
// departures, and the sorted live-node index that serves as both the
// correctness oracle and the information source for state repair.
type Overlay struct {
	cfg    Config
	stream *rng.Stream

	nodes []*Node         // indexed by Addr; entries persist after death
	index []id.ID         // sorted ids of live nodes
	byID  map[id.ID]*Node // live nodes only

	// Proximity, when set, lets routing-table construction prefer nearby
	// nodes as real Pastry does (it fills slots with the topologically
	// closest matching node). It must be deterministic. Nil means "take
	// the first candidate".
	Proximity func(a, b simnet.Addr) int64

	// OnJoin and OnLeave observe membership changes after the overlay
	// state is consistent. The replication manager (internal/past) uses
	// them to migrate replicas.
	OnJoin  func(*Node)
	OnLeave func(NodeRef)

	// RepairCount counts lazy routing-table repairs, for ablation benches.
	RepairCount uint64
}

// Build constructs an overlay of n nodes with fully materialized, exact
// routing state — the steady state an idle Pastry network converges to.
// Node ids are drawn from stream, so the same (seed, n) yields the same
// network.
func Build(cfg Config, n int, stream *rng.Stream) (*Overlay, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("pastry: network size %d < 1", n)
	}
	if cfg.MaxRouteHops == 0 {
		cfg.MaxRouteHops = 64
	}
	o := &Overlay{
		cfg:    cfg,
		stream: stream.Split("pastry"),
		byID:   make(map[id.ID]*Node, n),
	}
	o.nodes = make([]*Node, 0, n)
	o.index = make([]id.ID, 0, n)
	for i := 0; i < n; i++ {
		nid := o.freshID()
		node := &Node{
			ref:   NodeRef{ID: nid, Addr: simnet.Addr(i)},
			cfg:   cfg,
			ov:    o,
			Leaf:  NewLeafSet(nid, cfg.LeafSize),
			RT:    NewRoutingTable(nid, cfg.B),
			alive: true,
		}
		o.nodes = append(o.nodes, node)
		o.byID[nid] = node
		o.index = append(o.index, nid)
	}
	sort.Slice(o.index, func(i, j int) bool { return o.index[i].Less(o.index[j]) })
	for _, node := range o.nodes {
		o.recomputeLeaf(node)
		o.fillRoutingTable(node)
	}
	return o, nil
}

// freshID draws a random identifier not already in use.
func (o *Overlay) freshID() id.ID {
	for {
		var nid id.ID
		o.stream.Bytes(nid[:])
		if _, dup := o.byID[nid]; !dup && !nid.IsZero() {
			return nid
		}
	}
}

// Config returns the overlay parameters.
func (o *Overlay) Config() Config { return o.cfg }

// Size returns the number of live nodes.
func (o *Overlay) Size() int { return len(o.index) }

// NumAddrs returns the total address space ever allocated (live + dead).
func (o *Overlay) NumAddrs() int { return len(o.nodes) }

// Node returns the node at addr, live or dead. Nil for unallocated
// addresses.
func (o *Overlay) Node(addr simnet.Addr) *Node {
	if int(addr) < 0 || int(addr) >= len(o.nodes) {
		return nil
	}
	return o.nodes[addr]
}

// ByID returns the live node with the given id, or nil.
func (o *Overlay) ByID(nid id.ID) *Node { return o.byID[nid] }

// aliveRef reports whether the referenced node is currently live.
func (o *Overlay) aliveRef(r NodeRef) bool {
	n, ok := o.byID[r.ID]
	return ok && n.ref.Addr == r.Addr
}

// LiveRefs returns references to all live nodes in ring order.
func (o *Overlay) LiveRefs() []NodeRef {
	out := make([]NodeRef, len(o.index))
	for i, nid := range o.index {
		out[i] = o.byID[nid].ref
	}
	return out
}

// RandomLive returns a uniformly random live node drawn from stream.
func (o *Overlay) RandomLive(stream *rng.Stream) *Node {
	return o.byID[o.index[stream.Intn(len(o.index))]]
}

// --- oracle ---------------------------------------------------------------

// pos returns the insertion position of nid in the sorted index. This is
// the innermost operation of every ownership query and table build, so it
// is a hand-rolled binary search rather than sort.Search — no closure, no
// indirect calls per probe.
func (o *Overlay) pos(nid id.ID) int {
	lo, hi := 0, len(o.index)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.index[mid].Less(nid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first position in o.index[from:to] whose id
// exceeds hi, in absolute index coordinates.
func (o *Overlay) upperBound(hi id.ID, from, to int) int {
	lo := from
	for lo < to {
		mid := int(uint(lo+to) >> 1)
		if hi.Less(o.index[mid]) {
			to = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// OwnerOf returns the live node numerically closest to key: the oracle
// answer routing must agree with, and the node PAST stores a key's primary
// replica on.
func (o *Overlay) OwnerOf(key id.ID) *Node {
	n := len(o.index)
	if n == 0 {
		return nil
	}
	p := o.pos(key) % n
	best := o.index[p]
	prev := o.index[(p-1+n)%n]
	if id.Closer(key, prev, best) {
		best = prev
	}
	return o.byID[best]
}

// ReplicaSet returns the k live nodes numerically closest to key, ordered
// by increasing distance — PAST's replica set for the key.
func (o *Overlay) ReplicaSet(key id.ID, k int) []*Node {
	n := len(o.index)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// The k closest ids on a sorted ring are a contiguous window around
	// the insertion point; merge outward from both sides.
	p := o.pos(key)
	lo := (p - 1 + n) % n
	hi := p % n
	out := make([]*Node, 0, k)
	for len(out) < k {
		a, b := o.index[lo], o.index[hi]
		if lo == hi || !id.Closer(key, a, b) {
			out = append(out, o.byID[b])
			hi = (hi + 1) % n
		} else {
			out = append(out, o.byID[a])
			lo = (lo - 1 + n) % n
		}
	}
	return out
}

// RingNeighbors returns the live nodes within `each` ring positions on
// either side of nid (plus nid's own node when live): the positional
// neighborhood. Replica migration uses it — a key's replica holders are
// within k *positions* of the key, a bound that holds regardless of how
// unevenly ids clump, unlike distance-based windows.
func (o *Overlay) RingNeighbors(nid id.ID, each int) []*Node {
	n := len(o.index)
	if n == 0 || each < 0 {
		return nil
	}
	p := o.pos(nid) % n
	seen := make(map[id.ID]struct{}, 2*each+1)
	out := make([]*Node, 0, 2*each+1)
	add := func(q int) {
		qid := o.index[(q%n+n)%n]
		if _, dup := seen[qid]; dup {
			return
		}
		seen[qid] = struct{}{}
		out = append(out, o.byID[qid])
	}
	add(p)
	for i := 1; i <= each && len(seen) < n; i++ {
		add(p + i)
		add(p - i)
	}
	return out
}

// rangeMembers returns the live ids within [lo, hi] (an aligned prefix
// block, so it never wraps).
func (o *Overlay) rangeMembers(lo, hi id.ID) []id.ID {
	i := o.pos(lo)
	j := o.upperBound(hi, i, len(o.index))
	if i >= j {
		return nil
	}
	return o.index[i:j]
}

// --- leaf sets --------------------------------------------------------------

// recomputeLeaf installs node's exact leaf set from the live index.
func (o *Overlay) recomputeLeaf(node *Node) {
	n := len(o.index)
	half := o.cfg.LeafSize / 2
	others := n - 1
	if others < 0 {
		others = 0
	}
	fwdN := half
	if others < fwdN {
		fwdN = others
	}
	bwdN := others - fwdN
	if bwdN > half {
		bwdN = half
	}
	p := o.pos(node.ref.ID)
	larger := make([]NodeRef, 0, fwdN)
	for i := 1; i <= fwdN; i++ {
		nid := o.index[(p+i)%n]
		larger = append(larger, o.byID[nid].ref)
	}
	smaller := make([]NodeRef, 0, bwdN)
	for i := 1; i <= bwdN; i++ {
		nid := o.index[(p-i+n)%n]
		smaller = append(smaller, o.byID[nid].ref)
	}
	node.Leaf.ReplaceAll(smaller, larger)
}

// neighborsOf returns the live nodes within half ring positions on each
// side of position p — exactly the nodes whose leaf sets can reference the
// node at p.
func (o *Overlay) neighborsAround(p int) []*Node {
	n := len(o.index)
	half := o.cfg.LeafSize / 2
	seen := map[id.ID]struct{}{}
	var out []*Node
	for i := 1; i <= half && i < n; i++ {
		for _, q := range []int{(p + i) % n, (p - i + n) % n} {
			nid := o.index[q]
			if _, dup := seen[nid]; dup {
				continue
			}
			seen[nid] = struct{}{}
			out = append(out, o.byID[nid])
		}
	}
	return out
}

// --- routing tables ---------------------------------------------------------

// rtSampleLimit bounds how many candidates are examined per slot when
// choosing by proximity; real Pastry also sees only a sample (whoever it
// heard from), so a small deterministic sample is both fast and faithful.
const rtSampleLimit = 8

// fillRoutingTable populates node's table from the live index. Rows are
// filled until the block of ids sharing the row prefix with the node
// contains nobody else (deeper rows have no candidates).
func (o *Overlay) fillRoutingTable(node *Node) {
	digits := id.NumDigits(o.cfg.B)
	for row := 0; row < digits; row++ {
		// Population of the block sharing `row` digits with the node.
		blockLo := node.ref.ID.PrefixFloor(row * o.cfg.B)
		blockHi := node.ref.ID.PrefixCeil(row * o.cfg.B)
		blockStart := o.pos(blockLo)
		blockEnd := o.upperBound(blockHi, blockStart, len(o.index))
		if blockEnd-blockStart <= 1 {
			break
		}
		// The 2^b digit sub-blocks tile [blockLo, blockHi] in order, so
		// each block's end boundary is the next one's start: one search
		// per digit, over an ever-narrowing window, instead of two
		// full-index searches per digit.
		own := node.ref.ID.Digit(row, o.cfg.B)
		start := blockStart
		for d := 0; d < 1<<o.cfg.B; d++ {
			_, hi := node.ref.ID.DigitRange(row, o.cfg.B, d)
			end := o.upperBound(hi, start, blockEnd)
			members := o.index[start:end]
			start = end
			if d == own || len(members) == 0 {
				continue
			}
			node.RT.Set(row, d, o.pickBySlot(node, members))
		}
	}
}

// pickBySlot chooses one candidate for a routing-table slot: the
// proximity-closest of a small deterministic sample when a proximity
// metric is configured, otherwise a deterministic per-node choice.
// The per-node variation matters: if every node picked the same
// representative for a block, all routes into that block would funnel
// through one node — a bottleneck real Pastry does not have (each node
// fills slots with whatever nearby candidate it happened to learn).
func (o *Overlay) pickBySlot(node *Node, members []id.ID) NodeRef {
	if len(members) == 1 {
		return o.byID[members[0]].ref
	}
	if o.Proximity == nil {
		// Mix the owner's id with the block's first member to spread
		// choices across nodes while staying deterministic.
		h := node.ref.ID.Xor(members[0]).Low64()
		return o.byID[members[h%uint64(len(members))]].ref
	}
	step := len(members) / rtSampleLimit
	if step == 0 {
		step = 1
	}
	best := o.byID[members[0]].ref
	bestProx := o.Proximity(node.ref.Addr, best.Addr)
	for i := step; i < len(members); i += step {
		c := o.byID[members[i]].ref
		if p := o.Proximity(node.ref.Addr, c.Addr); p < bestProx {
			best, bestProx = c, p
		}
	}
	return best
}

// repairEntry finds a live replacement for the empty or stale slot
// (row, digit) of node and installs it. It models Pastry's lazy repair
// protocol (asking peers for a matching node). Returns false when the
// identifier block for that slot is genuinely empty.
func (o *Overlay) repairEntry(node *Node, row, digit int) (NodeRef, bool) {
	lo, hi := node.ref.ID.DigitRange(row, o.cfg.B, digit)
	members := o.rangeMembers(lo, hi)
	if len(members) == 0 {
		return NodeRef{}, false
	}
	o.RepairCount++
	ref := o.pickBySlot(node, members)
	node.RT.Set(row, digit, ref)
	return ref, true
}

// --- membership --------------------------------------------------------------

// Join adds a new node with a fresh random id, wiring its state and its
// neighbors' leaf sets, and returns it. The new node gets the next unused
// address.
func (o *Overlay) Join() *Node {
	return o.JoinWithID(o.freshID())
}

// JoinWithID adds a node with a chosen id (tests use this to build
// adversarial placements). Panics if the id is taken.
func (o *Overlay) JoinWithID(nid id.ID) *Node {
	if _, dup := o.byID[nid]; dup {
		panic(fmt.Sprintf("pastry: duplicate id %s", nid))
	}
	node := &Node{
		ref:   NodeRef{ID: nid, Addr: simnet.Addr(len(o.nodes))},
		cfg:   o.cfg,
		ov:    o,
		Leaf:  NewLeafSet(nid, o.cfg.LeafSize),
		RT:    NewRoutingTable(nid, o.cfg.B),
		alive: true,
	}
	o.nodes = append(o.nodes, node)
	o.byID[nid] = node

	p := o.pos(nid)
	o.index = append(o.index, id.ID{})
	copy(o.index[p+1:], o.index[p:])
	o.index[p] = nid

	o.recomputeLeaf(node)
	o.fillRoutingTable(node)
	// Neighbors must learn about the joiner immediately (leaf-set
	// protocol); everyone in the joiner's routing table learns about it
	// opportunistically, as Pastry's join message distribution does.
	for _, nb := range o.neighborsAround(p) {
		if nb == node {
			continue
		}
		o.recomputeLeaf(nb)
		nb.RT.Consider(node.ref)
	}
	for _, e := range node.RT.Entries() {
		o.byID[e.ID].RT.Consider(node.ref)
	}
	if o.OnJoin != nil {
		o.OnJoin(node)
	}
	return node
}

// Fail removes the node at addr abruptly: no goodbye, neighbors repair
// their leaf sets, and stale routing-table entries elsewhere linger until
// routing trips over them. Both crashes and voluntary leaves use this
// path — the paper treats them identically for tunnel availability.
func (o *Overlay) Fail(addr simnet.Addr) error {
	node := o.Node(addr)
	if node == nil {
		return fmt.Errorf("pastry: no node at addr %d", addr)
	}
	if !node.alive {
		return fmt.Errorf("pastry: node at addr %d already dead", addr)
	}
	if len(o.index) == 1 {
		return fmt.Errorf("pastry: refusing to fail the last node")
	}
	p := o.pos(node.ref.ID)
	// Collect the repair set before removal: the ring neighbors within L/2
	// positions of the dead node are exactly the nodes whose leaf sets can
	// reference it.
	affected := o.neighborsAround(p)
	o.index = append(o.index[:p], o.index[p+1:]...)
	delete(o.byID, node.ref.ID)
	node.alive = false

	// Leaf-set repair: the surviving ring neighbors recompute, and drop
	// the dead node from their routing tables (they detected the failure
	// directly).
	for _, nb := range affected {
		o.recomputeLeaf(nb)
		nb.RT.Remove(node.ref.ID)
	}
	if o.OnLeave != nil {
		o.OnLeave(node.ref)
	}
	return nil
}

// --- routing ------------------------------------------------------------------

// RoutePath walks the hop-by-hop route for key starting at the live node
// with address from, using only per-node routing state. The returned path
// includes the start node and ends at the destination. It is the
// message-free form of routing used by analyses; networked delivery
// replays the same decisions per hop.
func (o *Overlay) RoutePath(from simnet.Addr, key id.ID) ([]NodeRef, error) {
	cur := o.Node(from)
	if cur == nil || !cur.alive {
		return nil, fmt.Errorf("pastry: route from dead or unknown addr %d", from)
	}
	path := []NodeRef{cur.ref}
	for hop := 0; ; hop++ {
		if hop > o.cfg.MaxRouteHops {
			return path, fmt.Errorf("pastry: route for %s exceeded %d hops", key.Short(), o.cfg.MaxRouteHops)
		}
		next, deliver := cur.NextHop(key)
		if deliver {
			return path, nil
		}
		nxt := o.byID[next.ID]
		if nxt == nil {
			return path, fmt.Errorf("pastry: next hop %s vanished mid-route", next)
		}
		path = append(path, nxt.ref)
		cur = nxt
	}
}

// Lookup routes to the owner of key from a given start and returns the
// owning node plus the hop count (path length minus one).
func (o *Overlay) Lookup(from simnet.Addr, key id.ID) (*Node, int, error) {
	path, err := o.RoutePath(from, key)
	if err != nil {
		return nil, 0, err
	}
	dst := o.byID[path[len(path)-1].ID]
	return dst, len(path) - 1, nil
}

// CheckInvariants verifies structural invariants of the overlay: the index
// is sorted and unique, every live node's leaf set matches the oracle, and
// routing-table entries satisfy their prefix constraints. Tests and
// cmd/tapinspect call it; it is O(N · L).
func (o *Overlay) CheckInvariants() error {
	for i := 1; i < len(o.index); i++ {
		if !o.index[i-1].Less(o.index[i]) {
			return fmt.Errorf("index unsorted at %d", i)
		}
	}
	for _, nid := range o.index {
		node := o.byID[nid]
		if node == nil || !node.alive {
			return fmt.Errorf("index references dead node %s", nid.Short())
		}
		// Leaf set must equal the oracle's view.
		want := NewLeafSet(nid, o.cfg.LeafSize)
		tmp := &Node{ref: node.ref, cfg: o.cfg, ov: o, Leaf: want}
		o.recomputeLeaf(tmp)
		gotM, wantM := node.Leaf.Members(), want.Members()
		if len(gotM) != len(wantM) {
			return fmt.Errorf("node %s leaf size %d, oracle %d", nid.Short(), len(gotM), len(wantM))
		}
		for i := range gotM {
			if gotM[i] != wantM[i] {
				return fmt.Errorf("node %s leaf[%d] = %v, oracle %v", nid.Short(), i, gotM[i], wantM[i])
			}
		}
		// Routing-table prefix constraints.
		for row := 0; row < node.RT.Rows(); row++ {
			for d := 0; d < 1<<o.cfg.B; d++ {
				e, ok := node.RT.Get(row, d)
				if !ok {
					continue
				}
				if e.ID.CommonPrefixDigits(nid, o.cfg.B) < row {
					return fmt.Errorf("node %s RT[%d][%d] prefix violation", nid.Short(), row, d)
				}
				if e.ID.Digit(row, o.cfg.B) != d {
					return fmt.Errorf("node %s RT[%d][%d] digit violation", nid.Short(), row, d)
				}
			}
		}
	}
	return nil
}
