package pastry

import (
	"fmt"

	"tap/internal/simnet"
)

// JoinViaRouting adds a node using Pastry's actual join protocol rather
// than the oracle state-fill of Join:
//
//	"...node X asks A to route a special join message with the key equal
//	to X. ... Pastry routes the join message to the existing node Z whose
//	id is numerically closest to X. ... X obtains the i-th row of its
//	routing table from the i-th node encountered along the route from A
//	to Z, and its leaf set from Z."
//
// The joiner's state is therefore only as good as what the path nodes
// know: typically sparser than the oracle fill (the path may be shorter
// than the table is deep) and topologically biased toward the bootstrap.
// Subsequent lazy repair fills the gaps on demand, exactly as in a real
// deployment. Tests compare this against oracle joins to quantify the
// difference; all correctness properties hold either way because leaf
// sets still come from Z's neighborhood and are finalized exactly.
//
// bootstrap must be a live node. Returns the new node.
func (o *Overlay) JoinViaRouting(bootstrap simnet.Addr) (*Node, error) {
	boot := o.Node(bootstrap)
	if boot == nil || !boot.Alive() {
		return nil, fmt.Errorf("pastry: bootstrap %d is not a live node", bootstrap)
	}
	nid := o.freshID()

	// Route the join message from the bootstrap toward the joiner's id.
	path, err := o.RoutePath(bootstrap, nid)
	if err != nil {
		return nil, fmt.Errorf("pastry: join route: %w", err)
	}

	node := o.newNode(nid)

	// Row i of the routing table comes from the i-th node on the path:
	// copy the entries of that node's row i that are valid for the
	// joiner (they share at least i digits with the path node, and the
	// path node shares at least i digits with the joiner's id by
	// construction of prefix routing — but verify per entry, since early
	// hops may share fewer digits than their position suggests).
	for i, ref := range path {
		if !o.aliveRef(ref) {
			continue
		}
		donor := o.nodeAt(ref.Addr)
		copyRow := func(row int) {
			for d := 0; d < 1<<o.cfg.B; d++ {
				e, ok := donor.RT.Get(row, d)
				if !ok || e.ID == nid {
					continue
				}
				node.RT.Consider(e)
			}
		}
		// The donor's usable depth for the joiner is the shared prefix.
		shared := donor.ref.ID.CommonPrefixDigits(nid, o.cfg.B)
		maxRow := i
		if maxRow > shared {
			maxRow = shared
		}
		for row := 0; row <= maxRow && row < donor.RT.Rows(); row++ {
			copyRow(row)
		}
		// Path nodes themselves are candidates too.
		node.RT.Consider(donor.ref)
	}

	// Register the node, then take the leaf set from Z's neighborhood.
	// Z is the numerically closest existing node — path's end — so the
	// joiner's exact leaf set is Z's, adjusted for the insertion. Since
	// the overlay keeps leaf sets exact, recomputeLeaf from the live
	// index after insertion is identical to "obtain leaf set from Z and
	// adjust", without modeling the adjustment messages.
	p := o.pos(nid)
	o.index = append(o.index, NodeRef{})
	copy(o.index[p+1:], o.index[p:])
	o.index[p] = node.ref
	o.recomputeLeaf(node)
	// Leaf members enter the routing table as well (Pastry's final
	// state transfer includes Z's leaf set).
	for _, nb := range o.neighborsAround(p) {
		if nb == node {
			continue
		}
		o.recomputeLeaf(nb)
		nb.RT.Consider(node.ref)
		node.RT.Consider(nb.ref)
	}
	// "Finally, X transmits a copy of its resulting state to each of the
	// nodes found in its neighborhood set, leaf set, and routing table":
	// those nodes learn about X.
	for _, e := range node.RT.Entries() {
		if o.aliveRef(e) {
			o.nodeAt(e.Addr).RT.Consider(node.ref)
		}
	}
	if o.OnJoin != nil {
		o.OnJoin(node)
	}
	return node, nil
}
