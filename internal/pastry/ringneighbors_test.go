package pastry

import (
	"testing"

	"tap/internal/id"
	"tap/internal/rng"
)

func TestRingNeighborsBasics(t *testing.T) {
	o := build(t, 60, 71)
	n := o.RandomLive(rng.New(1))
	got := o.RingNeighbors(n.ID(), 3)
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7 (center + 3 each side)", len(got))
	}
	if got[0] != n {
		t.Fatalf("center node not first")
	}
	seen := map[id.ID]bool{}
	for _, m := range got {
		if seen[m.ID()] {
			t.Fatalf("duplicate neighbor")
		}
		seen[m.ID()] = true
		if !m.Alive() {
			t.Fatalf("dead neighbor returned")
		}
	}
}

func TestRingNeighborsArePositional(t *testing.T) {
	// The returned set must be exactly the nodes within `each` index
	// positions of the center in the sorted ring, regardless of id
	// spacing.
	o := build(t, 100, 72)
	refs := o.LiveRefs() // ring order
	centerIdx := 41
	center := refs[centerIdx]
	const each = 4
	want := map[id.ID]bool{center.ID: true}
	for i := 1; i <= each; i++ {
		want[refs[(centerIdx+i)%len(refs)].ID] = true
		want[refs[(centerIdx-i+len(refs))%len(refs)].ID] = true
	}
	got := o.RingNeighbors(center.ID, each)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for _, m := range got {
		if !want[m.ID()] {
			t.Fatalf("unexpected neighbor %s", m.ID().Short())
		}
	}
}

func TestRingNeighborsSmallOverlay(t *testing.T) {
	o := build(t, 3, 73)
	n := o.RandomLive(rng.New(2))
	got := o.RingNeighbors(n.ID(), 10)
	if len(got) != 3 {
		t.Fatalf("small overlay should return everyone once, got %d", len(got))
	}
}

func TestRingNeighborsForAbsentID(t *testing.T) {
	// The center id need not be a live node (a key, for instance).
	o := build(t, 40, 74)
	key := id.HashString("some key")
	got := o.RingNeighbors(key, 2)
	if len(got) < 4 || len(got) > 5 {
		t.Fatalf("len = %d", len(got))
	}
	// The closest node to the key must be among them.
	owner := o.OwnerOf(key)
	found := false
	for _, m := range got {
		if m == owner {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner not in the key's ring neighborhood")
	}
}
