package pastry

import (
	"math"
	"testing"

	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
)

func build(t testing.TB, n int, seed uint64) *Overlay {
	t.Helper()
	o, err := Build(DefaultConfig(), n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 17, 100, 500} {
		o := build(t, n, 1)
		if o.Size() != n {
			t.Fatalf("n=%d: size %d", n, o.Size())
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{B: 3, LeafSize: 16}, 10, rng.New(1)); err == nil {
		t.Fatalf("B=3 accepted")
	}
	if _, err := Build(Config{B: 4, LeafSize: 7}, 10, rng.New(1)); err == nil {
		t.Fatalf("odd leaf size accepted")
	}
	if _, err := Build(DefaultConfig(), 0, rng.New(1)); err == nil {
		t.Fatalf("empty network accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := build(t, 50, 7)
	b := build(t, 50, 7)
	ra, rb := a.LiveRefs(), b.LiveRefs()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("build not deterministic at %d", i)
		}
	}
}

func TestRoutingReachesOwner(t *testing.T) {
	o := build(t, 300, 2)
	s := rng.New(3)
	for trial := 0; trial < 500; trial++ {
		var key id.ID
		s.Bytes(key[:])
		from := o.RandomLive(s)
		got, _, err := o.Lookup(from.ref.Addr, key)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := o.OwnerOf(key)
		if got.ID() != want.ID() {
			t.Fatalf("trial %d: routed to %s, owner is %s", trial, got.ID().Short(), want.ID().Short())
		}
	}
}

func TestRoutingHopCountLogarithmic(t *testing.T) {
	// Pastry promises ~log_{2^b} N hops. For N=1000 and b=4 that is ~2.5;
	// allow generous slack but catch linear behaviour.
	o := build(t, 1000, 4)
	s := rng.New(5)
	total := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		var key id.ID
		s.Bytes(key[:])
		_, hops, err := o.Lookup(o.RandomLive(s).ref.Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / trials
	expect := math.Log(1000) / math.Log(16)
	if mean > expect*2+2 {
		t.Fatalf("mean hops %.2f far above log_16(N)=%.2f", mean, expect)
	}
	if mean < 0.5 {
		t.Fatalf("mean hops %.2f suspiciously low", mean)
	}
}

func TestRoutingFromSelf(t *testing.T) {
	o := build(t, 50, 6)
	n := o.RandomLive(rng.New(1))
	got, hops, err := o.Lookup(n.ref.Addr, n.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got != n || hops != 0 {
		t.Fatalf("routing to own id should deliver locally, got %v in %d hops", got.ID().Short(), hops)
	}
}

func TestSingleNodeDeliversEverything(t *testing.T) {
	o := build(t, 1, 9)
	n := o.RandomLive(rng.New(1))
	got, hops, err := o.Lookup(n.ref.Addr, id.HashString("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if got != n || hops != 0 {
		t.Fatalf("single node must own all keys")
	}
}

func TestOwnerOfMatchesBruteForce(t *testing.T) {
	o := build(t, 200, 11)
	ids := make([]id.ID, 0, o.Size())
	for _, r := range o.LiveRefs() {
		ids = append(ids, r.ID)
	}
	s := rng.New(12)
	for trial := 0; trial < 300; trial++ {
		var key id.ID
		s.Bytes(key[:])
		want := id.Closest(key, ids)
		if got := o.OwnerOf(key).ID(); got != want {
			t.Fatalf("OwnerOf = %s, brute force %s", got.Short(), want.Short())
		}
	}
}

func TestReplicaSetMatchesBruteForce(t *testing.T) {
	o := build(t, 150, 13)
	ids := make([]id.ID, 0, o.Size())
	for _, r := range o.LiveRefs() {
		ids = append(ids, r.ID)
	}
	s := rng.New(14)
	for trial := 0; trial < 200; trial++ {
		var key id.ID
		s.Bytes(key[:])
		for _, k := range []int{1, 3, 5, 8} {
			got := o.ReplicaSet(key, k)
			want := id.KClosest(key, ids, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: len %d vs %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i].ID() != want[i] {
					t.Fatalf("k=%d pos %d: %s vs %s", k, i, got[i].ID().Short(), want[i].Short())
				}
			}
		}
	}
}

func TestReplicaSetClamps(t *testing.T) {
	o := build(t, 5, 15)
	rs := o.ReplicaSet(id.HashString("k"), 10)
	if len(rs) != 5 {
		t.Fatalf("replica set should clamp to live population, got %d", len(rs))
	}
	if got := o.ReplicaSet(id.HashString("k"), 0); got != nil {
		t.Fatalf("k=0 should be nil")
	}
}

func TestJoinMaintainsInvariantsAndRouting(t *testing.T) {
	o := build(t, 60, 17)
	for i := 0; i < 40; i++ {
		o.Join()
	}
	if o.Size() != 100 {
		t.Fatalf("size %d after joins", o.Size())
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := rng.New(18)
	for trial := 0; trial < 200; trial++ {
		var key id.ID
		s.Bytes(key[:])
		got, _, err := o.Lookup(o.RandomLive(s).ref.Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != o.OwnerOf(key).ID() {
			t.Fatalf("post-join routing wrong for %s", key.Short())
		}
	}
}

func TestFailMaintainsInvariantsAndRouting(t *testing.T) {
	o := build(t, 200, 19)
	s := rng.New(20)
	// Fail 30% of nodes one by one.
	for i := 0; i < 60; i++ {
		n := o.RandomLive(s)
		if err := o.Fail(n.ref.Addr); err != nil {
			t.Fatal(err)
		}
	}
	if o.Size() != 140 {
		t.Fatalf("size %d after failures", o.Size())
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		var key id.ID
		s.Bytes(key[:])
		got, _, err := o.Lookup(o.RandomLive(s).ref.Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != o.OwnerOf(key).ID() {
			t.Fatalf("post-failure routing wrong for %s", key.Short())
		}
	}
}

func TestFailErrors(t *testing.T) {
	o := build(t, 3, 21)
	n := o.RandomLive(rng.New(1))
	if err := o.Fail(n.ref.Addr); err != nil {
		t.Fatal(err)
	}
	if err := o.Fail(n.ref.Addr); err == nil {
		t.Fatalf("double-fail accepted")
	}
	if err := o.Fail(simnet.Addr(999)); err == nil {
		t.Fatalf("failing unknown addr accepted")
	}
}

func TestFailLastNodeRefused(t *testing.T) {
	o := build(t, 1, 22)
	n := o.RandomLive(rng.New(1))
	if err := o.Fail(n.ref.Addr); err == nil {
		t.Fatalf("failing the last node should be refused")
	}
}

func TestChurnStress(t *testing.T) {
	// Interleave joins and failures, then verify global correctness.
	o := build(t, 100, 23)
	s := rng.New(24)
	for step := 0; step < 300; step++ {
		if s.Bool(0.5) && o.Size() > 10 {
			if err := o.Fail(o.RandomLive(s).ref.Addr); err != nil {
				t.Fatal(err)
			}
		} else {
			o.Join()
		}
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		var key id.ID
		s.Bytes(key[:])
		got, _, err := o.Lookup(o.RandomLive(s).ref.Addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != o.OwnerOf(key).ID() {
			t.Fatalf("post-churn routing wrong")
		}
	}
}

func TestMembershipCallbacks(t *testing.T) {
	o := build(t, 20, 25)
	var joined, left int
	o.OnJoin = func(*Node) { joined++ }
	o.OnLeave = func(NodeRef) { left++ }
	n := o.Join()
	if joined != 1 {
		t.Fatalf("OnJoin not fired")
	}
	if err := o.Fail(n.ref.Addr); err != nil {
		t.Fatal(err)
	}
	if left != 1 {
		t.Fatalf("OnLeave not fired")
	}
}

func TestJoinWithIDDuplicatePanics(t *testing.T) {
	o := build(t, 5, 26)
	nid := o.LiveRefs()[0].ID
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on duplicate id")
		}
	}()
	o.JoinWithID(nid)
}

func TestProximityInfluencesRoutingTable(t *testing.T) {
	// With a proximity metric that prefers low address distance, RT slots
	// should on average have nearer entries than without.
	cfg := DefaultConfig()
	streamA := rng.New(30)
	withProx, err := Build(cfg, 400, streamA)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with proximity set before filling: Build fills tables during
	// construction, so we emulate by rebuilding and repairing all slots.
	prox := func(a, b simnet.Addr) int64 {
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		return d
	}
	streamB := rng.New(30)
	o2, err := Build(cfg, 400, streamB)
	if err != nil {
		t.Fatal(err)
	}
	o2.Proximity = prox
	for _, r := range o2.LiveRefs() {
		n := o2.ByID(r.ID)
		n.RT = *NewRoutingTable(r.ID, cfg.B)
		o2.fillRoutingTable(n)
	}
	sum := func(o *Overlay) (total int64, count int64) {
		for _, r := range o.LiveRefs() {
			for _, e := range o.ByID(r.ID).RT.Entries() {
				total += prox(r.Addr, e.Addr)
				count++
			}
		}
		return
	}
	tA, cA := sum(withProx)
	tB, cB := sum(o2)
	if cA == 0 || cB == 0 {
		t.Fatalf("no RT entries to compare")
	}
	if float64(tB)/float64(cB) >= float64(tA)/float64(cA) {
		t.Fatalf("proximity-aware fill did not reduce mean slot distance: %.1f vs %.1f",
			float64(tB)/float64(cB), float64(tA)/float64(cA))
	}
	if err := o2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyRepairCountsAndHeals(t *testing.T) {
	o := build(t, 300, 31)
	s := rng.New(32)
	for i := 0; i < 90; i++ {
		if err := o.Fail(o.RandomLive(s).ref.Addr); err != nil {
			t.Fatal(err)
		}
	}
	before := o.RepairCount
	for trial := 0; trial < 200; trial++ {
		var key id.ID
		s.Bytes(key[:])
		if _, _, err := o.Lookup(o.RandomLive(s).ref.Addr, key); err != nil {
			t.Fatal(err)
		}
	}
	if o.RepairCount == before {
		t.Logf("no repairs triggered (possible but unlikely); repair path untested in this run")
	}
}
