package pastry

import (
	"testing"

	"tap/internal/id"
	"tap/internal/simnet"
)

func ref(v uint64) NodeRef {
	return NodeRef{ID: id.FromUint64(v), Addr: simnet.Addr(v)}
}

func refs(vs ...uint64) []NodeRef {
	out := make([]NodeRef, len(vs))
	for i, v := range vs {
		out[i] = ref(v)
	}
	return out
}

func TestLeafSetReplaceAllTruncates(t *testing.T) {
	l := NewLeafSet(id.FromUint64(100), 4) // half = 2
	l.ReplaceAll(refs(90, 80, 70), refs(110, 120, 130))
	if l.Size() != 4 {
		t.Fatalf("size = %d, want 4 (truncated to half per side)", l.Size())
	}
	if l.Contains(id.FromUint64(70)) || l.Contains(id.FromUint64(130)) {
		t.Fatalf("entries beyond half retained")
	}
	if !l.Contains(id.FromUint64(90)) || !l.Contains(id.FromUint64(120)) {
		t.Fatalf("near entries missing")
	}
}

func TestLeafSetMembersFreshCopy(t *testing.T) {
	l := NewLeafSet(id.FromUint64(100), 4)
	l.ReplaceAll(refs(90), refs(110))
	m := l.Members()
	m[0] = ref(1)
	if l.Contains(id.FromUint64(1)) {
		t.Fatalf("Members aliases internal storage")
	}
}

func TestLeafSetCoversFullSides(t *testing.T) {
	l := NewLeafSet(id.FromUint64(100), 4)
	l.ReplaceAll(refs(90, 80), refs(110, 120))
	// Inside the [80, 120] arc.
	if !l.Covers(id.FromUint64(85)) || !l.Covers(id.FromUint64(100)) || !l.Covers(id.FromUint64(119)) {
		t.Fatalf("interior keys not covered")
	}
	if !l.Covers(id.FromUint64(80)) || !l.Covers(id.FromUint64(120)) {
		t.Fatalf("boundary keys not covered")
	}
	if l.Covers(id.FromUint64(79)) || l.Covers(id.FromUint64(121)) {
		t.Fatalf("exterior keys covered")
	}
}

func TestLeafSetCoversIncompleteSideMeansWholeRing(t *testing.T) {
	// Fewer than half entries on a side: the node sees the whole ring.
	l := NewLeafSet(id.FromUint64(100), 8)
	l.ReplaceAll(refs(90), refs(110))
	if !l.Covers(id.FromUint64(500)) || !l.Covers(id.Max) {
		t.Fatalf("small overlay should cover everything")
	}
}

func TestLeafSetCoversWrappedArc(t *testing.T) {
	// Owner near zero: the smaller side wraps past Max.
	owner := id.FromUint64(10)
	l := NewLeafSet(owner, 4)
	wrapLo := id.Max.Sub(id.FromUint64(5)) // Max-5
	l.ReplaceAll([]NodeRef{{ID: id.Max, Addr: 1}, {ID: wrapLo, Addr: 2}}, refs(20, 30))
	if !l.Covers(id.FromUint64(0)) || !l.Covers(id.Max) {
		t.Fatalf("wrapped arc not covered")
	}
	if !l.Covers(id.FromUint64(25)) {
		t.Fatalf("cw side not covered")
	}
	if l.Covers(id.FromUint64(1000)) {
		t.Fatalf("far exterior covered despite full sides")
	}
}

func TestLeafSetClosestTo(t *testing.T) {
	self := ref(100)
	l := NewLeafSet(self.ID, 4)
	l.ReplaceAll(refs(90, 80), refs(110, 120))
	if got := l.ClosestTo(id.FromUint64(108), self); got.ID != id.FromUint64(110) {
		t.Fatalf("closest to 108 = %s", got.ID.Short())
	}
	if got := l.ClosestTo(id.FromUint64(101), self); got.ID != self.ID {
		t.Fatalf("closest to 101 should be self, got %s", got.ID.Short())
	}
	if got := l.ClosestTo(id.FromUint64(84), self); got.ID != id.FromUint64(80) {
		t.Fatalf("closest to 84 = %s", got.ID.Short())
	}
}

func TestRoutingTableSetGetClear(t *testing.T) {
	owner := id.MustParse("a000000000000000000000000000000000000000")
	rt := NewRoutingTable(owner, 4)
	if _, ok := rt.Get(0, 5); ok {
		t.Fatalf("empty table returned an entry")
	}
	e := NodeRef{ID: id.MustParse("5000000000000000000000000000000000000000"), Addr: 7}
	rt.Set(0, 5, e)
	got, ok := rt.Get(0, 5)
	if !ok || got != e {
		t.Fatalf("Get = %v %v", got, ok)
	}
	if rt.EntryCount() != 1 {
		t.Fatalf("count = %d", rt.EntryCount())
	}
	rt.Clear(0, 5)
	if _, ok := rt.Get(0, 5); ok {
		t.Fatalf("cleared entry still present")
	}
	// Clearing beyond materialized rows is a no-op.
	rt.Clear(30, 2)
}

func TestRoutingTableConsider(t *testing.T) {
	owner := id.MustParse("a000000000000000000000000000000000000000")
	rt := NewRoutingTable(owner, 4)
	// Candidate sharing no prefix: row 0, its first digit.
	c1 := NodeRef{ID: id.MustParse("5100000000000000000000000000000000000000"), Addr: 1}
	rt.Consider(c1)
	if got, ok := rt.Get(0, 5); !ok || got != c1 {
		t.Fatalf("Consider did not install row-0 candidate")
	}
	// A second candidate for the same slot must not evict the first.
	c2 := NodeRef{ID: id.MustParse("5200000000000000000000000000000000000000"), Addr: 2}
	rt.Consider(c2)
	if got, _ := rt.Get(0, 5); got != c1 {
		t.Fatalf("Consider evicted an existing entry")
	}
	// Candidate sharing 1 digit: row 1.
	c3 := NodeRef{ID: id.MustParse("a300000000000000000000000000000000000000"), Addr: 3}
	rt.Consider(c3)
	if got, ok := rt.Get(1, 3); !ok || got != c3 {
		t.Fatalf("row-1 candidate not installed")
	}
	// The owner itself is never installed.
	rt.Consider(NodeRef{ID: owner, Addr: 9})
	if rt.EntryCount() != 2 {
		t.Fatalf("count = %d after self-consider", rt.EntryCount())
	}
}

func TestRoutingTableRemove(t *testing.T) {
	owner := id.MustParse("a000000000000000000000000000000000000000")
	rt := NewRoutingTable(owner, 4)
	c := NodeRef{ID: id.MustParse("5100000000000000000000000000000000000000"), Addr: 1}
	rt.Set(0, 5, c)
	if !rt.Remove(c.ID) {
		t.Fatalf("Remove reported missing")
	}
	if rt.Remove(c.ID) {
		t.Fatalf("double remove reported success")
	}
	// Removing an id whose slot holds a different node must not clear it.
	rt.Set(0, 5, c)
	other := id.MustParse("5200000000000000000000000000000000000000")
	if rt.Remove(other) {
		t.Fatalf("Remove cleared a different node's entry")
	}
	if _, ok := rt.Get(0, 5); !ok {
		t.Fatalf("entry lost")
	}
}

func TestRoutingTableEntries(t *testing.T) {
	owner := id.MustParse("a000000000000000000000000000000000000000")
	rt := NewRoutingTable(owner, 4)
	want := map[id.ID]bool{}
	for _, hex := range []string{
		"1000000000000000000000000000000000000000",
		"b000000000000000000000000000000000000000",
		"a100000000000000000000000000000000000000",
	} {
		r := NodeRef{ID: id.MustParse(hex), Addr: 1}
		rt.Consider(r)
		want[r.ID] = true
	}
	got := rt.Entries()
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for _, e := range got {
		if !want[e.ID] {
			t.Fatalf("unexpected entry %s", e.ID.Short())
		}
	}
}
