package pastry

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// The golden traces pin the overlay's observable behaviour — every route
// path, leaf set, routing decision, and churn outcome on fixed seeds — to
// byte-identical files captured from the pre-arena implementation. The
// arena refactor is a memory-layout change only; if any of these traces
// moves, routing behaviour changed and the refactor is wrong.
//
// Regenerate (only when behaviour is *supposed* to change, with review):
//
//	go test ./internal/pastry -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files from the current implementation")

// goldenCase is one deterministic overlay workout.
type goldenCase struct {
	name   string
	cfg    Config
	n      int
	seed   uint64
	routes int // routes per phase
	fails  int
	joins  int // oracle joins
	proto  int // protocol-faithful joins
}

var goldenCases = []goldenCase{
	// Tiny ring: leaf sets cover the whole overlay, wrap-around paths.
	{name: "tiny_b4", cfg: Config{B: 4, LeafSize: 16, MaxRouteHops: 64}, n: 24, seed: 3, routes: 60, fails: 6, joins: 6, proto: 4},
	// Mid-size at the paper's parameters, heavy churn.
	{name: "mid_b4", cfg: Config{B: 4, LeafSize: 16, MaxRouteHops: 64}, n: 400, seed: 7, routes: 150, fails: 40, joins: 25, proto: 15},
	// Narrow digits exercise deep routing tables.
	{name: "mid_b2", cfg: Config{B: 2, LeafSize: 8, MaxRouteHops: 128}, n: 200, seed: 11, routes: 100, fails: 20, joins: 12, proto: 8},
}

func TestGoldenTraces(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			trace := runGoldenCase(t, c)
			path := filepath.Join("testdata", "golden", c.name+".trace")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, trace, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(trace))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden on a known-good tree): %v", err)
			}
			if !bytes.Equal(trace, want) {
				got := path + ".got"
				os.WriteFile(got, trace, 0o644)
				t.Fatalf("trace diverges from %s (wrote %s); the overlay's routing behaviour changed", path, got)
			}
		})
	}
}

// runGoldenCase drives one overlay through build, routing, and churn,
// appending every observable decision to the trace.
func runGoldenCase(t *testing.T, c goldenCase) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := func(format string, args ...any) { fmt.Fprintf(&buf, format, args...) }

	root := rng.New(c.seed)
	ov, err := Build(c.cfg, c.n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	w("build n=%d b=%d L=%d\n", c.n, c.cfg.B, c.cfg.LeafSize)
	dumpOverlay(&buf, ov)

	keys := root.Split("keys")
	routePhase := func(phase string) {
		for i := 0; i < c.routes; i++ {
			var key id.ID
			keys.Bytes(key[:])
			src := ov.RandomLive(keys)
			path, err := ov.RoutePath(src.Ref().Addr, key)
			if err != nil {
				t.Fatalf("%s route %d: %v", phase, i, err)
			}
			w("route %s %d key=%s path=", phase, i, key.Short())
			for j, r := range path {
				if j > 0 {
					buf.WriteByte(',')
				}
				w("%s", r)
			}
			w(" hops=%d\n", len(path)-1)
		}
	}
	oracle := func(phase string) {
		for i := 0; i < 12; i++ {
			var key id.ID
			keys.Bytes(key[:])
			w("owner %s %d key=%s -> %s\n", phase, i, key.Short(), ov.OwnerOf(key).Ref())
			w("replicas %s %d:", phase, i)
			for _, nd := range ov.ReplicaSet(key, 4) {
				w(" %s", nd.Ref())
			}
			w("\n")
			nd := ov.RandomLive(keys)
			w("ringneighbors %s %d around=%s:", phase, i, nd.Ref())
			for _, nb := range ov.RingNeighbors(nd.ID(), 5) {
				w(" %s", nb.Ref())
			}
			w("\n")
		}
	}

	routePhase("fresh")
	oracle("fresh")

	churn := root.Split("churn")
	for i := 0; i < c.fails; i++ {
		nd := ov.RandomLive(churn)
		if err := ov.Fail(nd.Ref().Addr); err != nil {
			t.Fatalf("fail %d: %v", i, err)
		}
		w("fail %d %s\n", i, nd.Ref())
	}
	for i := 0; i < c.joins; i++ {
		nd := ov.Join()
		w("join %d %s\n", i, nd.Ref())
	}
	for i := 0; i < c.proto; i++ {
		boot := ov.RandomLive(churn)
		nd, err := ov.JoinViaRouting(boot.Ref().Addr)
		if err != nil {
			t.Fatalf("protocol join %d: %v", i, err)
		}
		w("protojoin %d boot=%s -> %s\n", i, boot.Ref(), nd.Ref())
	}

	routePhase("churned")
	oracle("churned")
	dumpOverlay(&buf, ov)

	if err := ov.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return buf.Bytes()
}

// dumpOverlay appends the full observable node state: live index order,
// per-node leaf sets and routing-table entries.
func dumpOverlay(buf *bytes.Buffer, ov *Overlay) {
	w := func(format string, args ...any) { fmt.Fprintf(buf, format, args...) }
	w("state size=%d addrs=%d\n", ov.Size(), ov.NumAddrs())
	for i, r := range ov.LiveRefs() {
		w("index %d %s\n", i, r)
	}
	for addr := 0; addr < ov.NumAddrs(); addr++ {
		nd := ov.Node(simnet.Addr(addr))
		if nd == nil || !nd.Alive() {
			continue
		}
		w("node %s leaf=", nd.Ref())
		for j, m := range nd.Leaf.Members() {
			if j > 0 {
				buf.WriteByte(',')
			}
			w("%s", m)
		}
		w(" rt=")
		for j, e := range nd.RT.Entries() {
			if j > 0 {
				buf.WriteByte(',')
			}
			w("%s", e)
		}
		w("\n")
	}
}
