// Package pastry implements the Pastry-style structured overlay TAP runs
// on: prefix routing over a 160-bit circular identifier space with leaf
// sets, per-digit routing tables, join, departure, and failure repair.
//
// This is the stand-in for FreePastry 1.3, which the paper used as its
// routing and location substrate. The guarantees TAP relies on are
// reproduced faithfully:
//
//   - Route(key) reaches the live node whose nodeId is numerically closest
//     to key in O(log_{2^b} N) hops (b = 4 by default, as in the paper).
//   - Delivery remains correct across joins, leaves, and failures: leaf
//     sets are maintained eagerly (as FreePastry's leaf-set protocol does),
//     while routing-table entries are repaired lazily when a dead entry is
//     hit, exactly Pastry's repair strategy.
//
// All nodes live in one process and their state is plain memory; routing
// decisions use only node-local state (leaf set + routing table), so hop
// counts and failure behaviour match a distributed deployment. A global
// sorted index of live nodes doubles as the oracle for correctness checks
// and as the information source for repair (which, in a real deployment,
// would arrive via Pastry's maintenance traffic).
package pastry

import (
	"fmt"

	"tap/internal/id"
	"tap/internal/simnet"
)

// Config carries the overlay parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// B is the routing base exponent: digits are b bits, tables have 2^b
	// columns, and routing takes ~log_{2^b} N hops. The paper's "typical
	// value" is 4.
	B int
	// LeafSize is the total leaf set size L; L/2 numerically smaller and
	// L/2 larger neighbors are tracked. Pastry's typical value is 16.
	LeafSize int
	// MaxRouteHops bounds a single route; exceeding it means the overlay
	// state is corrupt. Defaults to 64.
	MaxRouteHops int
}

// DefaultConfig returns the paper's parameters: b=4, L=16.
func DefaultConfig() Config {
	return Config{B: 4, LeafSize: 16, MaxRouteHops: 64}
}

func (c Config) validate() error {
	switch c.B {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("pastry: config B=%d not in {1,2,4,8}", c.B)
	}
	if c.LeafSize < 2 || c.LeafSize%2 != 0 {
		return fmt.Errorf("pastry: leaf size %d must be even and >= 2", c.LeafSize)
	}
	return nil
}

// NodeRef identifies a node: its position in the id space plus its network
// address. It is the value passed around by routing and by TAP's
// performance-optimized tunnels (which embed the Addr as an "IP hint").
type NodeRef struct {
	ID   id.ID
	Addr simnet.Addr
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.ID.IsZero() && r.Addr == 0 }

func (r NodeRef) String() string {
	return fmt.Sprintf("%s@%d", r.ID.Short(), r.Addr)
}
