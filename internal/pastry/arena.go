package pastry

import (
	"tap/internal/simnet"
)

// Node storage is arena-backed: nodes live as values inside fixed-size
// chunks, addressed by their dense simnet.Addr. Chunks are never moved or
// reallocated, so *Node pointers handed out by the overlay stay valid
// across joins — the failure mode a flat append-grown []Node would have.
const (
	nodeChunkShift = 10 // 1024 nodes per chunk
	nodeChunkSize  = 1 << nodeChunkShift
	nodeChunkMask  = nodeChunkSize - 1
)

// refSlabChunk is the number of NodeRefs carved per slab chunk (~1.8 MB).
// Leaf sets and routing-table rows for a whole chunk's worth of nodes come
// out of a handful of these instead of several slices per node.
const refSlabChunk = 1 << 16

// nodeArena is the chunked node store.
type nodeArena struct {
	chunks [][]Node
	n      int // nodes handed out; the next node gets Addr n
	dirty  int // high-water mark: slots below this held nodes before a reset
}

// next returns a pointer to the next node slot, zeroed. The slot's address
// is stable for the arena's lifetime.
func (a *nodeArena) next() *Node {
	ci := a.n >> nodeChunkShift
	if ci == len(a.chunks) {
		if cap(a.chunks) > ci && a.chunks[:ci+1][ci] != nil {
			// A reset preserved this chunk; bring it back into view.
			a.chunks = a.chunks[:ci+1]
		} else {
			a.chunks = append(a.chunks, make([]Node, nodeChunkSize))
		}
	}
	nd := &a.chunks[ci][a.n&nodeChunkMask]
	if a.n < a.dirty {
		*nd = Node{}
	}
	a.n++
	return nd
}

// at returns the node at addr, which must be < a.n.
func (a *nodeArena) at(addr simnet.Addr) *Node {
	return &a.chunks[addr>>nodeChunkShift][addr&nodeChunkMask]
}

// reset rewinds the arena, keeping every chunk for reuse.
func (a *nodeArena) reset() {
	if a.n > a.dirty {
		a.dirty = a.n
	}
	a.chunks = a.chunks[:0]
	a.n = 0
}

// refSlab carves NodeRef blocks out of large chunks. Blocks are stable
// (chunks never move) and the whole slab rewinds in O(1) on reset, which
// is what makes per-trial overlay reuse allocation-free.
type refSlab struct {
	chunks [][]NodeRef
	cur    int // chunk being carved
	off    int // carve offset within chunks[cur]
	// High-water mark of memory carved in any previous generation.
	// Everything before it may hold stale refs and must be cleared on
	// re-carve; everything at or past it is still make()-zeroed, and
	// skipping the redundant clear there keeps first-build cost down
	// (the clears otherwise show up as ~15% of bulk construction).
	dirtyCur, dirtyOff int
}

// grab returns a zeroed block of n NodeRefs with capacity exactly n.
func (s *refSlab) grab(n int) []NodeRef {
	if n > refSlabChunk {
		// Oversize blocks (enormous LeafSize configs) get dedicated
		// allocations and are not recycled; they cannot occur at the
		// parameters any experiment runs.
		return make([]NodeRef, n)
	}
	if s.cur < len(s.chunks) && s.off+n > refSlabChunk {
		s.cur++
		s.off = 0
	}
	if s.cur == len(s.chunks) {
		s.chunks = append(s.chunks, make([]NodeRef, refSlabChunk))
		s.off = 0
	}
	c := s.chunks[s.cur][s.off : s.off+n : s.off+n]
	s.off += n
	if s.cur < s.dirtyCur || (s.cur == s.dirtyCur && s.off-n < s.dirtyOff) {
		clear(c)
	}
	return c
}

// grabEmpty returns a zero-length block with capacity c.
func (s *refSlab) grabEmpty(c int) []NodeRef {
	return s.grab(c)[:0]
}

// reset rewinds the slab, keeping every chunk.
func (s *refSlab) reset() {
	if s.cur > s.dirtyCur || (s.cur == s.dirtyCur && s.off > s.dirtyOff) {
		s.dirtyCur, s.dirtyOff = s.cur, s.off
	}
	s.cur, s.off = 0, 0
}

// Scratch is a reusable memory arena for overlay construction. A zero
// Scratch is ready to use; passing the same Scratch to successive
// BuildInto calls rebuilds each overlay inside the previous one's memory,
// which removes the allocation cost that dominates Monte-Carlo trials
// (one overlay build per trial). A Scratch must not back two live
// overlays at once, and everything reachable from the previous overlay
// (nodes, refs, leaf sets) dies when it is reused.
type Scratch struct {
	arena nodeArena
	slab  refSlab
	index []NodeRef
	alive []uint64
}

// NewScratch returns an empty scratch arena.
func NewScratch() *Scratch { return &Scratch{} }

// reset rewinds all arenas, keeping their memory.
func (s *Scratch) reset() {
	s.arena.reset()
	s.slab.reset()
	s.index = s.index[:0]
	clear(s.alive)
	s.alive = s.alive[:0]
}

// --- alive bitmap -----------------------------------------------------------

// setAlive marks addr live. The bitmap grows with the address space.
func (o *Overlay) setAlive(addr simnet.Addr) {
	w := int(addr >> 6)
	for w >= len(o.mem.alive) {
		o.mem.alive = append(o.mem.alive, 0)
	}
	o.mem.alive[w] |= 1 << (addr & 63)
}

// clearAlive marks addr dead.
func (o *Overlay) clearAlive(addr simnet.Addr) {
	o.mem.alive[addr>>6] &^= 1 << (addr & 63)
}

// aliveAddr reports whether the node at addr is live. addr must be an
// allocated address.
func (o *Overlay) aliveAddr(addr simnet.Addr) bool {
	return o.mem.alive[addr>>6]&(1<<(addr&63)) != 0
}

// nodeAt returns the node at an allocated address without bounds checks
// beyond the arena's own; callers pass addresses taken from live NodeRefs.
func (o *Overlay) nodeAt(addr simnet.Addr) *Node {
	return o.mem.arena.at(addr)
}
