package pastry

import (
	"tap/internal/id"
)

// Node is one overlay participant. Routing state is node-local; the
// overlay pointer is used only for liveness checks (standing in for
// failure detection by send timeout) and lazy routing-table repair
// (standing in for Pastry's repair queries to peers).
//
// Nodes are values inside the overlay's chunked arena — LeafSet and
// RoutingTable are embedded, their entry storage carved from the arena's
// ref slab — so building an N-node overlay costs O(N/chunk) allocations
// rather than several per node. Liveness lives in the overlay's alive
// bitmap, keyed by the node's dense address.
type Node struct {
	ref  NodeRef
	cfg  Config
	ov   *Overlay
	Leaf LeafSet
	RT   RoutingTable
}

// Ref returns the node's identity.
func (n *Node) Ref() NodeRef { return n.ref }

// ID returns the node's identifier.
func (n *Node) ID() id.ID { return n.ref.ID }

// Addr returns the node's network address.
func (n *Node) Addr() int { return int(n.ref.Addr) }

// Alive reports whether the node is currently a live overlay member.
func (n *Node) Alive() bool { return n.ov.aliveAddr(n.ref.Addr) }

// NextHop runs Pastry's routing decision for key at this node.
//
// It returns (self, true) when this node is the destination — i.e. it
// believes itself numerically closest to key — and (next, false) when the
// message should be forwarded to next. The decision follows the Pastry
// algorithm: leaf-set delivery when the key is within leaf-set range,
// otherwise the routing-table entry matching one more digit, otherwise the
// rare-case fallback to any known strictly closer node with no shorter a
// prefix match.
func (n *Node) NextHop(key id.ID) (NodeRef, bool) {
	if key == n.ref.ID {
		return n.ref, true
	}

	// Leaf-set case: deliver to the numerically closest member.
	if n.Leaf.Covers(key) {
		best := n.Leaf.ClosestTo(key, n.ref)
		if best.ID == n.ref.ID {
			return n.ref, true
		}
		return best, false
	}

	// Routing-table case.
	row := n.ref.ID.CommonPrefixDigits(key, n.cfg.B)
	digit := key.Digit(row, n.cfg.B)
	if e, ok := n.RT.Get(row, digit); ok {
		if n.ov.aliveRef(e) {
			return e, false
		}
		// The entry is stale: drop it and repair from the overlay, which
		// models Pastry asking a nearby node for a replacement.
		n.RT.Clear(row, digit)
		if r, ok := n.ov.repairEntry(n, row, digit); ok {
			return r, false
		}
	} else if r, ok := n.ov.repairEntry(n, row, digit); ok {
		// An empty slot that the overlay can fill means we simply had not
		// learned about that region yet.
		return r, false
	}

	// Rare case: forward to any known live node that shares at least as
	// long a prefix with the key and is strictly closer to it. Leaf and
	// table entries are scanned in place — this path must not allocate,
	// it is inside every route.
	best := n.ref
	consider := func(r NodeRef) {
		if r.ID.IsZero() || !n.ov.aliveRef(r) {
			return
		}
		if r.ID.CommonPrefixDigits(key, n.cfg.B) < row {
			return
		}
		if id.Closer(key, r.ID, best.ID) {
			best = r
		}
	}
	for _, r := range n.Leaf.smaller {
		consider(r)
	}
	for _, r := range n.Leaf.larger {
		consider(r)
	}
	for _, r := range n.RT.refs {
		consider(r)
	}
	if best.ID == n.ref.ID {
		// Nobody closer is known: this node is the destination as far as
		// the overlay can tell.
		return n.ref, true
	}
	return best, false
}
