package pastry

import (
	"testing"
	"testing/quick"

	"tap/internal/id"
	"tap/internal/rng"
)

// Property: routing from any live node delivers any key to the same node
// the oracle names — the invariant everything above Pastry depends on.
func TestPropRouteMatchesOracle(t *testing.T) {
	o := build(t, 257, 99) // deliberately not a power of two
	f := func(seed uint64, raw [20]byte) bool {
		key := id.ID(raw)
		from := o.RandomLive(rng.New(seed))
		got, _, err := o.Lookup(from.Ref().Addr, key)
		if err != nil {
			return false
		}
		return got.ID() == o.OwnerOf(key).ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the replica set is always sorted by increasing ring distance
// and contains no duplicates, for any key and any k.
func TestPropReplicaSetSortedUnique(t *testing.T) {
	o := build(t, 120, 98)
	f := func(raw [20]byte, kRaw uint8) bool {
		key := id.ID(raw)
		k := int(kRaw%12) + 1
		set := o.ReplicaSet(key, k)
		seen := map[id.ID]bool{}
		for i, n := range set {
			if seen[n.ID()] {
				return false
			}
			seen[n.ID()] = true
			if i > 0 && id.Closer(key, n.ID(), set[i-1].ID()) {
				return false // out of order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the first element of the replica set is the owner.
func TestPropReplicaSetHeadIsOwner(t *testing.T) {
	o := build(t, 90, 97)
	f := func(raw [20]byte) bool {
		key := id.ID(raw)
		set := o.ReplicaSet(key, 3)
		return len(set) == 3 && set[0].ID() == o.OwnerOf(key).ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: routing-table Consider never violates the prefix/digit
// constraints of the slot it installs into.
func TestPropConsiderRespectsSlotConstraints(t *testing.T) {
	owner := id.HashString("owner")
	f := func(raw [20]byte) bool {
		cand := id.ID(raw)
		if cand == owner {
			return true
		}
		rt := NewRoutingTable(owner, 4)
		rt.Consider(NodeRef{ID: cand, Addr: 1})
		for row := 0; row < rt.Rows(); row++ {
			for d := 0; d < 16; d++ {
				e, ok := rt.Get(row, d)
				if !ok {
					continue
				}
				if e.ID.CommonPrefixDigits(owner, 4) < row || e.ID.Digit(row, 4) != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The churn property (joins/failures preserve invariants) moved to
// dst_property_test.go, where it runs on dst scenarios with per-event
// invariant checks and batch failures.
