package pastry

import (
	"tap/internal/id"
)

// LeafSet tracks the L/2 live nodes with the numerically closest smaller
// nodeIds (the counter-clockwise ring neighbors) and the L/2 closest
// larger ones (clockwise), relative to the owning node.
//
// The leaf set is the component that makes greedy routing terminate
// correctly, so the overlay maintains it eagerly and exactly; see the
// package comment.
//
// Storage is array-backed: both sides are fixed-capacity slices, carved
// out of the overlay's ref slab for arena nodes (so a whole overlay's leaf
// sets amount to a handful of allocations) or heap-allocated for
// standalone use.
type LeafSet struct {
	owner   id.ID
	half    int
	smaller []NodeRef // ccw[0] is the immediate predecessor, ccw order
	larger  []NodeRef // cw[0] is the immediate successor, cw order
}

// NewLeafSet returns an empty leaf set with capacity L/2 per side.
func NewLeafSet(owner id.ID, leafSize int) *LeafSet {
	l := &LeafSet{}
	l.init(owner, leafSize, nil)
	return l
}

// init prepares l in place, drawing side storage from slab when non-nil.
func (l *LeafSet) init(owner id.ID, leafSize int, slab *refSlab) {
	l.owner = owner
	l.half = leafSize / 2
	if slab != nil {
		l.smaller = slab.grabEmpty(l.half)
		l.larger = slab.grabEmpty(l.half)
	} else {
		l.smaller = make([]NodeRef, 0, l.half)
		l.larger = make([]NodeRef, 0, l.half)
	}
}

// ReplaceAll installs the given neighbors wholesale. smaller must be
// ordered walking counter-clockwise from the owner (nearest first), larger
// clockwise (nearest first). The overlay computes these exactly from its
// live index; each side is truncated to L/2.
func (l *LeafSet) ReplaceAll(smaller, larger []NodeRef) {
	l.smaller = l.smaller[:0]
	l.larger = l.larger[:0]
	for i := 0; i < len(smaller) && i < l.half; i++ {
		l.smaller = append(l.smaller, smaller[i])
	}
	for i := 0; i < len(larger) && i < l.half; i++ {
		l.larger = append(l.larger, larger[i])
	}
}

// Members returns all leaf set entries. The slice is freshly allocated.
func (l *LeafSet) Members() []NodeRef {
	out := make([]NodeRef, 0, len(l.smaller)+len(l.larger))
	out = append(out, l.smaller...)
	out = append(out, l.larger...)
	return out
}

// Size returns the number of entries currently held.
func (l *LeafSet) Size() int { return len(l.smaller) + len(l.larger) }

// Contains reports whether nid is in the leaf set.
func (l *LeafSet) Contains(nid id.ID) bool {
	for _, r := range l.smaller {
		if r.ID == nid {
			return true
		}
	}
	for _, r := range l.larger {
		if r.ID == nid {
			return true
		}
	}
	return false
}

// Covers reports whether key falls within the arc spanned by the leaf set
// (from the farthest smaller neighbor, through the owner, to the farthest
// larger neighbor). Pastry delivers directly out of the leaf set when this
// holds. An incomplete side (fewer than L/2 entries) means the node can see
// the whole ring on that side, so coverage is total.
func (l *LeafSet) Covers(key id.ID) bool {
	if len(l.smaller) < l.half || len(l.larger) < l.half {
		// The overlay has at most L nodes: the leaf set is the whole ring.
		return true
	}
	lo := l.smaller[len(l.smaller)-1].ID
	hi := l.larger[len(l.larger)-1].ID
	return id.BetweenIncl(lo, hi, key)
}

// ClosestTo returns the leaf-set member (or the owner itself, passed as
// self) numerically closest to key.
func (l *LeafSet) ClosestTo(key id.ID, self NodeRef) NodeRef {
	best := self
	for _, r := range l.smaller {
		if id.Closer(key, r.ID, best.ID) {
			best = r
		}
	}
	for _, r := range l.larger {
		if id.Closer(key, r.ID, best.ID) {
			best = r
		}
	}
	return best
}
