package pastry

import (
	"fmt"
	"testing"

	"tap/internal/id"
	"tap/internal/rng"
)

// The paper uses b=4, but Pastry is parametric; the overlay must be
// correct for every supported digit width and leaf size.
func TestConfigGenerality(t *testing.T) {
	for _, tc := range []struct {
		b, leaf int
	}{
		{1, 8}, {2, 16}, {4, 16}, {8, 32}, {4, 4},
	} {
		tc := tc
		t.Run(fmt.Sprintf("b=%d_L=%d", tc.b, tc.leaf), func(t *testing.T) {
			cfg := Config{B: tc.b, LeafSize: tc.leaf, MaxRouteHops: 200}
			o, err := Build(cfg, 150, rng.New(uint64(tc.b*100+tc.leaf)))
			if err != nil {
				t.Fatal(err)
			}
			if err := o.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			s := rng.New(7)
			for trial := 0; trial < 100; trial++ {
				var key id.ID
				s.Bytes(key[:])
				got, hops, err := o.Lookup(o.RandomLive(s).Ref().Addr, key)
				if err != nil {
					t.Fatal(err)
				}
				if got.ID() != o.OwnerOf(key).ID() {
					t.Fatalf("misroute with b=%d", tc.b)
				}
				if hops > 64 {
					t.Fatalf("route of %d hops with b=%d", hops, tc.b)
				}
			}
			// Churn correctness under this config.
			for i := 0; i < 30; i++ {
				if s.Bool(0.5) && o.Size() > 20 {
					if err := o.Fail(o.RandomLive(s).Ref().Addr); err != nil {
						t.Fatal(err)
					}
				} else {
					o.Join()
				}
			}
			if err := o.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Smaller b means more hops (log base 2^b): verify the trend.
func TestConfigHopCountTrend(t *testing.T) {
	mean := func(b int) float64 {
		cfg := Config{B: b, LeafSize: 16, MaxRouteHops: 200}
		o, err := Build(cfg, 800, rng.New(uint64(b)))
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(9)
		total := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			var key id.ID
			s.Bytes(key[:])
			_, hops, err := o.Lookup(o.RandomLive(s).Ref().Addr, key)
			if err != nil {
				t.Fatal(err)
			}
			total += hops
		}
		return float64(total) / trials
	}
	h1 := mean(1)
	h4 := mean(4)
	if h1 <= h4 {
		t.Fatalf("b=1 mean hops %.2f not above b=4 %.2f", h1, h4)
	}
}
