package experiments

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"tap/internal/churn"
	"tap/internal/core"
	"tap/internal/detect"
	"tap/internal/id"
	"tap/internal/rng"
)

// TestSoakChaos interleaves every operation the system supports —
// membership churn, anchor deployment and deletion, tunnel formation,
// forward and reply traffic, probing, adversary growth — under one
// deterministic random schedule, checking global invariants as it goes.
// The assertions are the system's contracts: no panic, no invariant
// violation, and every delivery failure explained by a lost anchor.
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	// The whole schedule derives from this one seed: override it via
	// TAP_SOAK_SEED to explore other schedules, and quote the logged seed
	// when reporting a failure so the run reproduces exactly.
	seed := uint64(20040706)
	if env := os.Getenv("TAP_SOAK_SEED"); env != "" {
		parsed, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("TAP_SOAK_SEED=%q: %v", env, err)
		}
		seed = parsed
	}
	t.Logf("soak seed %d (reproduce with TAP_SOAK_SEED=%d)", seed, seed)
	root := rng.New(seed)
	w, err := BuildWorld(250, 3, root.Split("world"))
	if err != nil {
		t.Fatal(err)
	}
	s := root.Split("chaos")
	prober := detect.NewProber(w.Svc, root.Split("probe"))

	type client struct {
		in      *core.Initiator
		tunnels []*core.Tunnel
	}
	var clients []*client
	newClient := func() {
		node := w.OV.RandomLive(s)
		in, err := core.NewInitiator(w.Svc, node, s.SplitN("client", len(clients)))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, &client{in: in})
	}
	for i := 0; i < 5; i++ {
		newClient()
	}

	var (
		sends, sendOK, sendLost int
		probes                  int
	)
	for step := 0; step < 600; step++ {
		c := clients[s.Intn(len(clients))]
		switch op := s.Intn(10); op {
		case 0: // membership: one join
			w.OV.Join()
		case 1: // membership: one failure (keep a floor)
			if w.OV.Size() > 60 {
				if err := w.OV.Fail(w.OV.RandomLive(s).Ref().Addr); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // membership: a small wave
			churn.Wave(w.OV, 5, 5, s, nil)
		case 3: // deploy anchors
			if err := c.in.DeployDirect(2 + s.Intn(3)); err != nil {
				t.Fatal(err)
			}
		case 4: // form a tunnel if the pool allows
			l := 2 + s.Intn(3)
			if c.in.PoolSize() >= l {
				tun, err := c.in.FormTunnel(l)
				if err != nil {
					t.Fatal(err)
				}
				c.tunnels = append(c.tunnels, tun)
			}
		case 5: // retire a tunnel
			if len(c.tunnels) > 0 {
				idx := s.Intn(len(c.tunnels))
				if err := c.in.DeleteAnchors(c.tunnels[idx]); err != nil {
					t.Fatal(err)
				}
				c.tunnels = append(c.tunnels[:idx], c.tunnels[idx+1:]...)
			}
		case 6, 7: // send through a random live tunnel
			if len(c.tunnels) == 0 || !c.in.Node().Alive() {
				continue
			}
			tun := c.tunnels[s.Intn(len(c.tunnels))]
			var dest id.ID
			s.Bytes(dest[:])
			env, err := core.BuildForward(tun, nil, dest, []byte("chaos"), s)
			if err != nil {
				t.Fatal(err)
			}
			sends++
			if _, err := w.Svc.DeliverForward(c.in.Node().Ref().Addr, env); err != nil {
				if !errors.Is(err, core.ErrHopLost) {
					t.Fatalf("step %d: unexplained delivery failure: %v", step, err)
				}
				sendLost++
			} else {
				sendOK++
			}
		case 8: // probe a tunnel
			if len(c.tunnels) > 0 && c.in.Node().Alive() {
				probes++
				_ = prober.Probe(c.in, c.tunnels[s.Intn(len(c.tunnels))])
			}
		case 9: // grow the adversary slightly
			w.Col.MarkCount(w.Col.MaliciousCount()+1, s)
		}

		if step%100 == 99 {
			if err := w.OV.CheckInvariants(); err != nil {
				t.Fatalf("step %d: overlay: %v", step, err)
			}
			if err := w.Mgr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: storage: %v", step, err)
			}
		}
	}
	if sends == 0 || sendOK == 0 {
		t.Fatalf("soak exercised no traffic (sends=%d ok=%d)", sends, sendOK)
	}
	// Sequential churn with k=3 never loses anchors, so every send
	// through a live tunnel must succeed.
	if sendLost != 0 {
		t.Fatalf("%d sends lost under sequential churn (k=3 should never lose anchors)", sendLost)
	}
	t.Logf("soak: %d sends ok, %d probes, overlay size %d, adversary %d, leaks %d",
		sendOK, probes, w.OV.Size(), w.Col.MaliciousCount(), w.Col.LeakedCount())
}
