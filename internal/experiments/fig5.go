package experiments

import (
	"fmt"

	"tap/internal/churn"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// Fig5Params configures Figure 5: corrupted tunnels over time under
// churn, k=3 and p kept at 0.1. Per time unit, 100 benign nodes leave and
// 100 join; malicious nodes "try to stay in the system as long as
// possible" and accumulate anchors through migration. The un-refreshed
// series keeps the original 5,000 tunnels throughout; the refreshed series
// replaces all tunnels with fresh anchors every unit.
type Fig5Params struct {
	N            int
	Tunnels      int
	Length       int
	K            int
	Malicious    float64
	Units        int
	LeavePerUnit int
	JoinPerUnit  int
	Trials       int
	Seed         uint64
}

func (p Fig5Params) withDefaults() Fig5Params {
	if p.N == 0 {
		p.N = 10_000
	}
	if p.Tunnels == 0 {
		p.Tunnels = 5_000
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if p.K == 0 {
		p.K = 3
	}
	if p.Malicious == 0 {
		p.Malicious = 0.1
	}
	if p.Units == 0 {
		p.Units = 20
	}
	if p.LeavePerUnit == 0 {
		p.LeavePerUnit = 100
	}
	if p.JoinPerUnit == 0 {
		p.JoinPerUnit = 100
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for Figure 5.
const (
	SeriesUnrefreshed = "un-refreshed"
	SeriesRefreshed   = "refreshed"
)

// Fig5 runs the churn experiment and reports the corrupted fraction after
// each time unit for both policies.
func Fig5(p Fig5Params) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Fig 5: corrupted tunnels over time under churn (N=%d, tunnels=%d, l=%d, k=%d, p=%.2f, %d+%d per unit, trials=%d)",
			p.N, p.Tunnels, p.Length, p.K, p.Malicious, p.LeavePerUnit, p.JoinPerUnit, p.Trials),
		"time", SeriesUnrefreshed, SeriesRefreshed)
	root := rng.New(p.Seed)
	err := ParallelScratch(p.Trials, func(trial int, mem *pastry.Scratch) error {
		stream := root.SplitN("fig5", trial)
		w, err := BuildWorldIn(mem, p.N, p.K, stream.Split("world"))
		if err != nil {
			return err
		}
		w.Col.MarkFraction(p.Malicious, stream.Split("mark"))
		benign := func(a simnet.Addr) bool { return !w.Col.IsMalicious(a) }

		// Both populations deploy after the adversary exists, so their
		// unit-0 corruption reflects deployment-time leakage alone.
		unrefreshed, err := DeployTunnels(w, p.Tunnels, p.Length, stream.Split("unrefreshed"))
		if err != nil {
			return err
		}
		refreshed, err := DeployTunnels(w, p.Tunnels, p.Length, stream.SplitN("refreshed", 0))
		if err != nil {
			return err
		}

		tbl.Add(0, SeriesUnrefreshed, w.Col.CorruptionRate(unrefreshed.Tunnels))
		tbl.Add(0, SeriesRefreshed, w.Col.CorruptionRate(refreshed.Tunnels))

		for unit := 1; unit <= p.Units; unit++ {
			churn.Wave(w.OV, p.LeavePerUnit, p.JoinPerUnit, stream.SplitN("wave", unit), benign)

			// The original tunnels keep aging.
			tbl.Add(float64(unit), SeriesUnrefreshed, w.Col.CorruptionRate(unrefreshed.Tunnels))
			// The refreshed population was rebuilt at the start of this
			// unit, so it experienced exactly one unit of churn.
			tbl.Add(float64(unit), SeriesRefreshed, w.Col.CorruptionRate(refreshed.Tunnels))

			// Refresh for the next unit: owners delete their anchors with
			// the password proofs and deploy fresh ones.
			for i, in := range refreshed.Initiators {
				if err := in.DeleteAnchors(refreshed.Tunnels[i]); err != nil {
					return fmt.Errorf("experiments: refreshing tunnel %d: %w", i, err)
				}
				if err := in.DeployDirect(p.Length); err != nil {
					return err
				}
				tun, err := in.FormTunnel(p.Length)
				if err != nil {
					return err
				}
				refreshed.Tunnels[i] = tun
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
