package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// ExtThroughputParams configures the heavy-traffic streaming experiment:
// a population of windowed streams — up to the million-flow mark — rides
// a shared set of tunnels while the overlay churns underneath, with
// destination popularity drawn from a Zipf distribution (a few hot
// responders soak most of the traffic, the classic content-distribution
// shape). The sweep crosses per-link loss with send-window size; window 1
// degenerates to PR 1's stop-and-wait and is the built-in baseline every
// other window is read against.
type ExtThroughputParams struct {
	N          int // overlay size
	Clients    int // stream sources (each owns TunnelsPer tunnels)
	TunnelsPer int // formed tunnels per client
	Length     int // tunnel length l
	// Flows is the concurrent stream population per combo. All flows open
	// within the Ramp window, so with flow completion times longer than
	// the ramp the whole population is in flight at once.
	Flows     int
	FlowBytes int // payload bytes per stream
	// Dests and ZipfS shape the destination catalog: Flows draws from a
	// Zipf(s) popularity over Dests distinct ids.
	Dests int
	ZipfS float64
	// Windows are the send-window sizes swept; LossRates the per-link
	// loss probabilities.
	Windows   []int
	LossRates []float64
	SegSize   int
	Ramp      time.Duration // arrival window for the flow population
	// ChurnFails nodes fail at uniformly random times inside the ramp
	// window (THA migration keeps tunnels functional; address hints go
	// stale and must be re-resolved).
	ChurnFails int
	Seed       uint64
}

func (p ExtThroughputParams) withDefaults() ExtThroughputParams {
	if p.N == 0 {
		p.N = 1000
	}
	if p.Clients == 0 {
		p.Clients = 16
	}
	if p.TunnelsPer == 0 {
		p.TunnelsPer = 4
	}
	if p.Length == 0 {
		p.Length = 3
	}
	if p.Flows == 0 {
		p.Flows = 2000
	}
	if p.FlowBytes == 0 {
		p.FlowBytes = 2048
	}
	if p.Dests == 0 {
		p.Dests = 256
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.1
	}
	if len(p.Windows) == 0 {
		p.Windows = []int{1, 16}
	}
	if len(p.LossRates) == 0 {
		p.LossRates = []float64{0, 0.01, 0.05}
	}
	if p.SegSize == 0 {
		p.SegSize = 256
	}
	if p.Ramp == 0 {
		p.Ramp = 10 * time.Second
	}
	if p.ChurnFails == 0 {
		p.ChurnFails = p.N / 50
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series name constructors: one column set per swept window size.
func seriesGoodput(w int) string   { return fmt.Sprintf("goodput_MBps(w=%d)", w) }
func seriesFCTp50(w int) string    { return fmt.Sprintf("fct_p50_s(w=%d)", w) }
func seriesFCTp99(w int) string    { return fmt.Sprintf("fct_p99_s(w=%d)", w) }
func seriesRetxRatio(w int) string { return fmt.Sprintf("retx_ratio(w=%d)", w) }
func seriesDelivered(w int) string { return fmt.Sprintf("delivered(w=%d)", w) }
func seriesPeakConc(w int) string  { return fmt.Sprintf("peak_concurrent(w=%d)", w) }

// zipfSampler draws catalog ranks from a Zipf(s) popularity by inverting
// a precomputed CDF. Hand-rolled so draws come from the deterministic
// rng.Stream, not math/rand.
type zipfSampler struct {
	cdf []float64
}

func newZipfSampler(n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{cdf: cdf}
}

func (z *zipfSampler) draw(stream *rng.Stream) int {
	return sort.SearchFloat64s(z.cdf, stream.Float64())
}

// ExtThroughput sweeps loss rate against send-window size and reports,
// per combination: goodput (delivered payload over the makespan), flow
// completion time at p50 and p99, the retransmit ratio, the delivered
// fraction, and the peak number of simultaneously open streams. Every
// series is deterministic in Seed — goodput is computed from simulated
// time, not wall clock.
func ExtThroughput(p ExtThroughputParams) (*trace.Table, error) {
	p = p.withDefaults()
	series := make([]string, 0, 6*len(p.Windows))
	for _, w := range p.Windows {
		series = append(series, seriesGoodput(w), seriesFCTp50(w), seriesFCTp99(w),
			seriesRetxRatio(w), seriesDelivered(w), seriesPeakConc(w))
	}
	tbl := newSyncTable(
		fmt.Sprintf("Ext: streaming throughput — %d zipf flows over %d tunnels under churn (N=%d, l=%d, %dB flows, %d fails)",
			p.Flows, p.Clients*p.TunnelsPer, p.N, p.Length, p.FlowBytes, p.ChurnFails),
		"loss %", series...)

	type job struct{ li, wi int }
	var jobs []job
	for li := range p.LossRates {
		for wi := range p.Windows {
			jobs = append(jobs, job{li, wi})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		loss := p.LossRates[j.li]
		window := p.Windows[j.wi]
		// Streams split per loss rate only: every window size replays the
		// identical world, tunnels, churn plan, and flow schedule.
		stream := root.SplitN(fmt.Sprintf("tp-l%d", j.li), 0)
		m, err := runThroughputTrial(p, loss, window, stream, mem)
		if err != nil {
			return err
		}
		x := loss * 100
		tbl.Add(x, seriesGoodput(window), m.goodputMBps)
		tbl.Add(x, seriesFCTp50(window), m.fct.Quantile(0.50))
		tbl.Add(x, seriesFCTp99(window), m.fct.Quantile(0.99))
		tbl.Add(x, seriesRetxRatio(window), m.retxRatio)
		tbl.Add(x, seriesDelivered(window), m.delivered)
		tbl.Add(x, seriesPeakConc(window), float64(m.peakConcurrent))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}

// throughputMetrics is one (loss, window) combo's outcome.
type throughputMetrics struct {
	goodputMBps    float64
	fct            trace.Sample
	retxRatio      float64
	delivered      float64
	peakConcurrent int
}

// runThroughputTrial runs one full flow population through one faulty
// world and measures it.
func runThroughputTrial(p ExtThroughputParams, loss float64, window int, stream *rng.Stream, mem *pastry.Scratch) (*throughputMetrics, error) {
	w, err := BuildWorldIn(mem, p.N, 3, stream.Split("world"))
	if err != nil {
		return nil, err
	}
	kernel := simnet.NewKernel()
	kernel.MaxSteps = 0
	net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(stream.Seed()), w.OV.NumAddrs())
	w.Svc.Net = net
	eng := core.NewNetEngine(w.Svc, net)
	if loss > 0 {
		net.InstallFaults(&simnet.FaultPlan{Seed: stream.Seed(), LossRate: loss})
	}

	// Clients and their tunnel sets. Client origins are protected from
	// churn — a dead sender measures nothing.
	setup := stream.Split("setup")
	type src struct {
		origin  simnet.Addr
		tunnels []*core.Tunnel
		caches  []*core.HintCache
	}
	srcs := make([]*src, 0, p.Clients)
	protected := make(map[simnet.Addr]bool)
	for ci := 0; ci < p.Clients; ci++ {
		node := w.OV.RandomLive(setup)
		for protected[node.Ref().Addr] {
			node = w.OV.RandomLive(setup)
		}
		protected[node.Ref().Addr] = true
		in, err := core.NewInitiator(w.Svc, node, setup.SplitN("client", ci))
		if err != nil {
			return nil, err
		}
		if err := in.DeployDirect(p.Length * p.TunnelsPer); err != nil {
			return nil, err
		}
		s := &src{origin: node.Ref().Addr}
		for ti := 0; ti < p.TunnelsPer; ti++ {
			tun, err := in.FormTunnel(p.Length)
			if err != nil {
				return nil, fmt.Errorf("experiments: ext-throughput client %d tunnel %d: %w", ci, ti, err)
			}
			cache := core.NewHintCache()
			if err := cache.Refresh(w.Svc, tun); err != nil {
				return nil, err
			}
			s.tunnels = append(s.tunnels, tun)
			s.caches = append(s.caches, cache)
		}
		srcs = append(srcs, s)
	}

	// Destination catalog with Zipf popularity.
	catalog := make([]id.ID, p.Dests)
	for i := range catalog {
		setup.Bytes(catalog[i][:])
	}
	zipf := newZipfSampler(p.Dests, p.ZipfS)

	// Churn: fail random non-client nodes at uniform times inside the ramp
	// window. THA migration fails hop anchors over to replicas; stale hop
	// hints are re-resolved by the streams' retransmission path.
	churn := stream.Split("churn")
	for i := 0; i < p.ChurnFails; i++ {
		at := simnet.Time(float64(p.Ramp) * churn.Float64())
		kernel.At(at, func() {
			if w.OV.Size() <= p.N/2 {
				return
			}
			victim := w.OV.RandomLive(churn)
			if protected[victim.Ref().Addr] {
				return
			}
			addr := victim.Ref().Addr
			if err := w.OV.Fail(addr); err == nil {
				net.Detach(addr)
			}
		})
	}

	// The flow population: each flow opens at a uniform time in the ramp
	// window, on a round-robin client/tunnel, toward a Zipf-drawn
	// destination, and pumps FlowBytes through its window.
	flows := stream.Split("flows")
	content := make([]byte, p.FlowBytes)
	flows.Bytes(content)
	cfg := core.StreamConfig{Window: window, SegSize: p.SegSize}
	m := &throughputMetrics{}
	var (
		deliveredN int
		live       int
		doneAt     trace.Sample
	)
	for fi := 0; fi < p.Flows; fi++ {
		fi := fi
		s := srcs[fi%len(srcs)]
		ti := (fi / len(srcs)) % len(s.tunnels)
		dest := catalog[zipf.draw(flows)]
		start := simnet.Time(float64(p.Ramp) * flows.Float64())
		kernel.At(start, func() {
			st := eng.OpenTunnelStream(s.origin, s.tunnels[ti], s.caches[ti], dest, cfg)
			live++
			if live > m.peakConcurrent {
				m.peakConcurrent = live
			}
			st.OnComplete = func(ok bool) {
				live--
				if ok {
					deliveredN++
					m.fct.Add((kernel.Now() - start).Seconds())
					doneAt.Add(kernel.Now().Seconds())
				}
			}
			off := 0
			pump := func() {
				for off < len(content) {
					want := len(content) - off
					n := st.Write(content[off:])
					off += n
					if n < want {
						return
					}
				}
				st.Close()
			}
			st.OnWritable = pump
			pump()
		})
	}

	if err := kernel.Run(); err != nil {
		return nil, err
	}
	// Aggregate goodput over the 99th-percentile completion horizon: the
	// payload carried by the fastest 99% of delivered flows, divided by
	// the time the last of them finished. Dividing by the full makespan
	// instead would let a single straggler's worst-case backoff chain
	// define the divisor and say nothing about sustained throughput.
	if n := doneAt.N(); n > 0 {
		n99 := int(math.Ceil(0.99 * float64(n)))
		t99 := doneAt.Quantile(0.99)
		if t99 > 0 {
			m.goodputMBps = float64(n99) * float64(p.FlowBytes) / t99 / 1e6
		}
	}
	if eng.StreamSegsSent > 0 {
		m.retxRatio = float64(eng.StreamSegsRetx) / float64(eng.StreamSegsSent)
	}
	m.delivered = float64(deliveredN) / float64(p.Flows)
	return m, nil
}
