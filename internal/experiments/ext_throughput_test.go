package experiments

import (
	"math"
	"strings"
	"testing"

	"tap/internal/rng"
)

// smallThroughput is a laptop-scale parameterization: enough flows to
// exercise window pipelining and churn, small enough for the unit-test
// budget.
func smallThroughput() ExtThroughputParams {
	return ExtThroughputParams{
		N: 300, Clients: 4, TunnelsPer: 2, Length: 3,
		Flows: 200, FlowBytes: 2048, Dests: 64,
		Windows: []int{1, 8}, LossRates: []float64{0, 0.05},
		ChurnFails: 6, Seed: 11,
	}
}

// TestExtThroughputAcceptance pins the experiment's headline claims: the
// pipelined window beats stop-and-wait on goodput and p99 flow completion
// at every swept loss rate, loss produces retransmissions while the
// window keeps the delivered fraction high, and the ramp actually holds a
// concurrent flow population in flight.
func TestExtThroughputAcceptance(t *testing.T) {
	p := smallThroughput()
	tbl, err := ExtThroughput(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, loss := range p.LossRates {
		x := loss * 100
		g1 := tbl.Mean(x, seriesGoodput(1))
		g8 := tbl.Mean(x, seriesGoodput(8))
		if math.IsNaN(g1) || math.IsNaN(g8) {
			t.Fatalf("loss %.0f%%: missing goodput cells (w1=%v w8=%v)", x, g1, g8)
		}
		if g8 <= g1 {
			t.Fatalf("loss %.0f%%: window 8 goodput %.4f MB/s not above stop-and-wait %.4f", x, g8, g1)
		}
		p99w1 := tbl.Mean(x, seriesFCTp99(1))
		p99w8 := tbl.Mean(x, seriesFCTp99(8))
		if p99w8 >= p99w1 {
			t.Fatalf("loss %.0f%%: window 8 p99 FCT %.3fs not below stop-and-wait %.3fs", x, p99w8, p99w1)
		}
		for _, w := range p.Windows {
			if d := tbl.Mean(x, seriesDelivered(w)); d < 0.95 {
				t.Fatalf("loss %.0f%% w=%d: delivered fraction %.3f < 0.95", x, w, d)
			}
			if pc := tbl.Mean(x, seriesPeakConc(w)); pc < 10 {
				t.Fatalf("loss %.0f%% w=%d: peak concurrency %.0f — flows never overlapped", x, w, pc)
			}
		}
	}
	if r := tbl.Mean(5, seriesRetxRatio(8)); !(r > 0) {
		t.Fatalf("5%% loss produced retransmit ratio %.4f — faults not applied", r)
	}
}

// TestExtThroughputDeterministic: the same seed reproduces the exact
// table — goodput and FCT are functions of simulated time, never wall
// clock.
func TestExtThroughputDeterministic(t *testing.T) {
	run := func() string {
		p := smallThroughput()
		p.Flows = 60
		p.LossRates = []float64{0.02}
		tbl, err := ExtThroughput(p)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tbl.RenderCSV(&b)
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", a, b)
	}
}

// TestZipfSampler checks the hand-rolled CDF inversion: draws are
// deterministic per stream, cover the catalog, and rank 0 is the hottest.
func TestZipfSampler(t *testing.T) {
	z := newZipfSampler(100, 1.1)
	counts := make([]int, 100)
	stream := rng.New(42)
	for i := 0; i < 20000; i++ {
		r := z.draw(stream)
		if r < 0 || r >= 100 {
			t.Fatalf("draw %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Fatalf("rank 0 (%d draws) not hotter than mid (%d) and tail (%d)",
			counts[0], counts[50], counts[99])
	}
	// Head concentration: the top 10 ranks must dominate a uniform share.
	head := 0
	for _, c := range counts[:10] {
		head += c
	}
	if float64(head)/20000 < 0.3 {
		t.Fatalf("top-10 ranks hold only %.2f of draws — not Zipf-shaped", float64(head)/20000)
	}
}
