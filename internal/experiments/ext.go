package experiments

// Extension experiments: mechanisms the paper names but does not
// evaluate — secure routing (§9), corrupted-tunnel detection (stated
// future work), and the cover-traffic cost argument (§2). They follow the
// same harness conventions as the figure experiments and are wired into
// cmd/tapsim as ext-secroute, ext-detect, and ext-cover.

import (
	"fmt"
	"time"

	"tap/internal/core"
	"tap/internal/cover"
	"tap/internal/detect"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/secroute"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// --- secure routing -----------------------------------------------------------

// ExtSecRouteParams configures the secure-routing experiment: the rate at
// which a benign node resolves the true owner of a key while a fraction
// of routers hijack lookups.
type ExtSecRouteParams struct {
	N       int
	Fracs   []float64 // malicious router fractions
	Lookups int       // lookups per point per trial
	Trials  int
	Seed    uint64
}

func (p ExtSecRouteParams) withDefaults() ExtSecRouteParams {
	if p.N == 0 {
		p.N = 2000
	}
	if len(p.Fracs) == 0 {
		p.Fracs = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	}
	if p.Lookups == 0 {
		p.Lookups = 200
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the secure-routing experiment.
const (
	SeriesNaive    = "single-route"
	SeriesSecure   = "secure"
	SeriesParanoid = "paranoid"
)

// ExtSecRoute measures honest-owner resolution rates for the three
// routing policies.
func ExtSecRoute(p ExtSecRouteParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Ext: secure routing — honest owner resolution vs malicious routers (N=%d, %d lookups, trials=%d)",
			p.N, p.Lookups, p.Trials),
		"p", SeriesNaive, SeriesSecure, SeriesParanoid)
	type job struct{ fIdx, trial int }
	var jobs []job
	for fi := range p.Fracs {
		for tr := 0; tr < p.Trials; tr++ {
			jobs = append(jobs, job{fi, tr})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		frac := p.Fracs[j.fIdx]
		stream := root.SplitN(fmt.Sprintf("extsec-f%d", j.fIdx), j.trial)
		w, err := BuildWorldIn(mem, p.N, 3, stream.Split("world"))
		if err != nil {
			return err
		}
		adv := secroute.NewAdversary()
		adv.MarkFraction(w.OV, frac, stream.Split("mark"))

		policies := []struct {
			name     string
			redunant int
			paranoid bool
		}{
			{SeriesNaive, 0, false},
			{SeriesSecure, 8, false},
			{SeriesParanoid, 8, true},
		}
		keyStream := stream.Split("keys")
		type probe struct {
			src simnet.Addr
			key id.ID
		}
		probes := make([]probe, 0, p.Lookups)
		for len(probes) < p.Lookups {
			src := w.OV.RandomLive(keyStream)
			if adv.IsMalicious(src.Ref().Addr) {
				continue
			}
			var key id.ID
			keyStream.Bytes(key[:])
			probes = append(probes, probe{src.Ref().Addr, key})
		}
		for _, pol := range policies {
			r := secroute.NewRouter(w.OV, adv)
			r.MaxRedundant = pol.redunant
			r.AlwaysVerify = pol.paranoid
			honest := 0
			for _, pr := range probes {
				res, err := r.Lookup(pr.src, pr.key)
				if err == nil && res.Honest {
					honest++
				}
			}
			tbl.Add(frac, pol.name, float64(honest)/float64(len(probes)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}

// --- tunnel detection -----------------------------------------------------------

// ExtDetectParams configures the detection experiment: anonymous send
// success with and without a probing monitor while a fraction of nodes
// silently drop tunnel traffic.
type ExtDetectParams struct {
	N      int
	Length int
	Fracs  []float64 // dropper fractions
	Sends  int       // sends per point per trial
	Trials int
	Seed   uint64
}

func (p ExtDetectParams) withDefaults() ExtDetectParams {
	if p.N == 0 {
		p.N = 1500
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if len(p.Fracs) == 0 {
		p.Fracs = []float64{0.02, 0.05, 0.1, 0.15, 0.2}
	}
	if p.Sends == 0 {
		p.Sends = 60
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the detection experiment.
const (
	SeriesUnmanaged = "unmanaged"
	SeriesMonitored = "monitored"
)

// ExtDetect measures end-to-end send success through a fixed tunnel vs a
// monitor-managed tunnel under silent droppers.
func ExtDetect(p ExtDetectParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Ext: tunnel detection — send success vs dropper fraction (N=%d, l=%d, %d sends, trials=%d)",
			p.N, p.Length, p.Sends, p.Trials),
		"p", SeriesUnmanaged, SeriesMonitored)
	type job struct{ fIdx, trial int }
	var jobs []job
	for fi := range p.Fracs {
		for tr := 0; tr < p.Trials; tr++ {
			jobs = append(jobs, job{fi, tr})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		frac := p.Fracs[j.fIdx]
		stream := root.SplitN(fmt.Sprintf("extdet-f%d", j.fIdx), j.trial)
		w, err := BuildWorldIn(mem, p.N, 3, stream.Split("world"))
		if err != nil {
			return err
		}
		// Install droppers.
		droppers := make(map[simnet.Addr]struct{})
		refs := w.OV.LiveRefs()
		for _, idx := range stream.Split("mark").PermFirstK(len(refs), int(frac*float64(len(refs)))) {
			droppers[refs[idx].Addr] = struct{}{}
		}
		w.Svc.HopFilter = func(addr simnet.Addr, _ id.ID) bool {
			_, drop := droppers[addr]
			return !drop
		}

		// The measuring initiator must itself be honest; redraw until it is.
		pick := stream.Split("pick")
		node := w.OV.RandomLive(pick)
		for !w.Svc.HopFilter(node.Ref().Addr, id.ID{}) {
			node = w.OV.RandomLive(pick)
		}
		in, err := core.NewInitiator(w.Svc, node, stream.Split("init"))
		if err != nil {
			return err
		}
		if err := in.DeployDirect(p.Length * 2); err != nil {
			return err
		}

		sendOnce := func(t *core.Tunnel, s *rng.Stream) bool {
			var dest id.ID
			s.Bytes(dest[:])
			env, err := core.BuildForward(t, nil, dest, []byte("m"), s)
			if err != nil {
				return false
			}
			_, err = w.Svc.DeliverForward(node.Ref().Addr, env)
			return err == nil
		}

		// Unmanaged: each send goes through a freshly formed, unvetted
		// tunnel — the success rate is the probability that a blind
		// tunnel avoids every dropper, ≈ (1-p)^l.
		us := stream.Split("unmanaged")
		okU := 0
		for s := 0; s < p.Sends; s++ {
			if err := in.DeployDirect(p.Length); err != nil {
				return err
			}
			blind, err := in.FormTunnel(p.Length)
			if err != nil {
				return err
			}
			if sendOnce(blind, us) {
				okU++
			}
			if err := in.DeleteAnchors(blind); err != nil {
				return err
			}
		}
		tbl.Add(frac, SeriesUnmanaged, float64(okU)/float64(p.Sends))

		// Monitored: probe-and-replace before each send.
		ms := stream.Split("monitored")
		prober := detect.NewProber(w.Svc, ms.Split("probe"))
		mon, err := detect.NewMonitor(in, prober, p.Length)
		if err != nil {
			return err
		}
		mon.RefreshEvery = 0
		okM := 0
		for s := 0; s < p.Sends; s++ {
			if err := mon.Tick(); err != nil {
				continue // no healthy tunnel found this tick
			}
			if sendOnce(mon.Tunnel(), ms) {
				okM++
			}
		}
		tbl.Add(frac, SeriesMonitored, float64(okM)/float64(p.Sends))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}

// --- cover traffic ---------------------------------------------------------------

// ExtCoverParams configures the cover-traffic cost experiment: the
// bandwidth multiplier of constant-rate cover for a fixed anonymous
// workload.
type ExtCoverParams struct {
	N         int
	Rates     []float64 // dummies per second per node (0 = off)
	Transfers int       // real transfers in the workload
	FileBytes int
	Length    int
	Trials    int
	Seed      uint64
}

func (p ExtCoverParams) withDefaults() ExtCoverParams {
	if p.N == 0 {
		p.N = 500
	}
	if len(p.Rates) == 0 {
		p.Rates = []float64{0, 0.2, 1, 5}
	}
	if p.Transfers == 0 {
		p.Transfers = 5
	}
	if p.FileBytes == 0 {
		p.FileBytes = 250_000
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the cover experiment.
const (
	SeriesOverheadX = "bytes_multiplier"
	SeriesCoverMsgs = "dummies_sent"
)

// ExtCover runs a fixed tunnel workload with cover traffic at each rate
// and reports total network bytes as a multiple of the no-cover run.
func ExtCover(p ExtCoverParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Ext: cover traffic cost — network bytes multiplier vs cover rate (N=%d, %d transfers of %d bytes, trials=%d)",
			p.N, p.Transfers, p.FileBytes, p.Trials),
		"rate", SeriesOverheadX, SeriesCoverMsgs)
	root := rng.New(p.Seed)
	err := ParallelScratch(p.Trials, func(trial int, mem *pastry.Scratch) error {
		stream := root.SplitN("extcover", trial)
		var baseline float64
		for _, rate := range p.Rates {
			w, err := BuildWorldIn(mem, p.N, 3, stream.SplitN("world", int(rate*100)))
			if err != nil {
				return err
			}
			kernel := simnet.NewKernel()
			kernel.MaxSteps = 20_000_000
			net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(stream.Seed()), w.OV.NumAddrs())
			w.Svc.Net = net
			eng := core.NewNetEngine(w.Svc, net)

			// Workload: transfers started one simulated second apart.
			ts := stream.SplitN("transfers", int(rate*100))
			pending := p.Transfers
			for tr := 0; tr < p.Transfers; tr++ {
				tr := tr
				kernel.At(simnet.Time(tr)*simnet.Time(time.Second), func() {
					node := w.OV.RandomLive(ts)
					in, err := core.NewInitiator(w.Svc, node, ts.SplitN("init", tr))
					if err != nil {
						return
					}
					if err := in.DeployDirect(p.Length); err != nil {
						return
					}
					tun, err := in.FormTunnel(p.Length)
					if err != nil {
						return
					}
					var dest id.ID
					ts.Bytes(dest[:])
					env, err := core.BuildForward(tun, nil, dest, make([]byte, p.FileBytes), ts)
					if err != nil {
						return
					}
					eng.SendForward(node.Ref().Addr, env, func(core.Outcome) { pending-- })
				})
			}

			// Cover runs for the whole workload window.
			horizon := simnet.Time(p.Transfers+30) * simnet.Time(time.Second)
			var gen *cover.Generator
			if rate > 0 {
				interval := time.Duration(float64(time.Second) / rate)
				gen = cover.NewGenerator(w.OV, net, interval, 0, stream.SplitN("cover", int(rate*100)))
				gen.Start(horizon)
			}
			if err := kernel.Run(); err != nil {
				return err
			}
			if pending != 0 {
				return fmt.Errorf("experiments: ext-cover: %d transfers unfinished", pending)
			}
			total := float64(net.Stats.BytesSent)
			if rate == 0 {
				baseline = total
			}
			if baseline == 0 {
				return fmt.Errorf("experiments: ext-cover: rates must include 0 first")
			}
			tbl.Add(rate, SeriesOverheadX, total/baseline)
			if gen != nil {
				tbl.Add(rate, SeriesCoverMsgs, float64(gen.Sent))
			} else {
				tbl.Add(rate, SeriesCoverMsgs, 0)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
