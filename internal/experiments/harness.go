// Package experiments regenerates every figure of the paper's evaluation
// (§7). Each FigN function takes a parameter struct whose zero value is
// filled with the paper's settings scaled to the caller's request, runs
// the Monte-Carlo trials — in parallel across worker goroutines, with one
// deterministic RNG stream per trial — and returns a trace.Table whose
// rows are the figure's x axis and whose columns are its series.
//
// cmd/tapsim prints these tables; bench_test.go wraps each in a testing.B
// benchmark; EXPERIMENTS.md records the measured shapes against the
// paper's.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"tap/internal/adversary"
	"tap/internal/core"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
	"tap/internal/trace"
)

// World is one fully wired TAP universe: overlay, storage, anchors,
// service, adversary.
type World struct {
	Root *rng.Stream
	OV   *pastry.Overlay
	Mgr  *past.Manager
	Dir  *tha.Directory
	Svc  *core.Service
	Col  *adversary.Collusion
}

// BuildWorld constructs a world of n nodes with replication factor k,
// rooted at stream.
func BuildWorld(n, k int, stream *rng.Stream) (*World, error) {
	return BuildWorldIn(nil, n, k, stream)
}

// BuildWorldIn is BuildWorld with the overlay built inside mem's arenas
// (nil mem allocates fresh ones). Passing a worker's scratch to every
// trial makes overlay construction — the allocation bulk of a trial —
// reuse one trial's memory for the next. The previous world built in mem
// dies; a world must therefore never outlive its trial function.
func BuildWorldIn(mem *pastry.Scratch, n, k int, stream *rng.Stream) (*World, error) {
	ov, err := pastry.BuildInto(mem, pastry.DefaultConfig(), n, stream.Split("overlay"))
	if err != nil {
		return nil, err
	}
	mgr := past.NewManager(ov, k)
	dir := tha.NewDirectory(ov, mgr)
	svc := core.NewService(ov, dir, stream.Split("svc"))
	col := adversary.NewCollusion(ov, mgr)
	return &World{Root: stream, OV: ov, Mgr: mgr, Dir: dir, Svc: svc, Col: col}, nil
}

// TunnelSet is a population of tunnels with their owners, the workload
// unit of Figures 2–5 ("we assume the system has 5,000 tunnels").
type TunnelSet struct {
	Initiators []*core.Initiator
	Tunnels    []*core.Tunnel
}

// DeployTunnels creates `count` tunnels of the given length, each owned by
// a uniformly random live node that deploys exactly the anchors it needs.
func DeployTunnels(w *World, count, length int, stream *rng.Stream) (*TunnelSet, error) {
	ts := &TunnelSet{
		Initiators: make([]*core.Initiator, 0, count),
		Tunnels:    make([]*core.Tunnel, 0, count),
	}
	for i := 0; i < count; i++ {
		node := w.OV.RandomLive(stream)
		in, err := core.NewInitiator(w.Svc, node, stream.SplitN("initiator", i))
		if err != nil {
			return nil, err
		}
		if err := in.DeployDirect(length); err != nil {
			return nil, fmt.Errorf("experiments: deploying tunnel %d: %w", i, err)
		}
		tun, err := in.FormTunnel(length)
		if err != nil {
			return nil, fmt.Errorf("experiments: forming tunnel %d: %w", i, err)
		}
		ts.Initiators = append(ts.Initiators, in)
		ts.Tunnels = append(ts.Tunnels, tun)
	}
	return ts, nil
}

// TunnelFunctional reports whether a TAP tunnel can still carry traffic:
// every hop anchor retains a live replica. When fullWalk is set, the check
// additionally executes a complete end-to-end delivery with real
// cryptography from the tunnel owner's node (falling back to any live node
// if the owner itself died).
func TunnelFunctional(w *World, in *core.Initiator, t *core.Tunnel, fullWalk bool, stream *rng.Stream) bool {
	for _, h := range t.Hops {
		if !w.Dir.Available(h.HopID) {
			return false
		}
	}
	if !fullWalk {
		return true
	}
	src := in.Node()
	if !src.Alive() {
		src = w.OV.RandomLive(stream)
	}
	env, err := core.BuildForward(t, nil, w.OV.RandomLive(stream).ID(), []byte("probe"), stream)
	if err != nil {
		return false
	}
	res, err := w.Svc.DeliverForward(src.Ref().Addr, env)
	return err == nil && string(res.Payload) == "probe"
}

// --- parallel trial execution ----------------------------------------------

// Parallel runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n)
// workers and returns the first error. Each fn must derive all its
// randomness from its index so results are order-independent.
func Parallel(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}

// ParallelScratch is Parallel for trial functions that build worlds: each
// worker goroutine owns one pastry.Scratch, handed to every trial it runs,
// so successive trials on a worker rebuild their overlay in the same
// memory (BuildWorldIn). The scratch argument is only valid for the
// duration of fn — a trial must not retain its world past its return.
func ParallelScratch(n int, fn func(i int, mem *pastry.Scratch) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mem := pastry.NewScratch()
			for i := range idx {
				if err := fn(i, mem); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}

// syncTable wraps a trace.Table for concurrent Adds from trial workers.
type syncTable struct {
	mu sync.Mutex
	t  *trace.Table
}

func newSyncTable(title, xLabel string, series ...string) *syncTable {
	return &syncTable{t: trace.NewTable(title, xLabel, series...)}
}

func (s *syncTable) Add(x float64, series string, v float64) {
	s.mu.Lock()
	s.t.Add(x, series, v)
	s.mu.Unlock()
}

func (s *syncTable) Table() *trace.Table { return s.t }
