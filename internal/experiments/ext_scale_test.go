package experiments

import (
	"math"
	"testing"
	"time"
)

// TestExtScaleHops pins the scaling experiment's hop counts to the
// c·log_16 N band the overlay is supposed to deliver: c drifting above 1
// means routing state has degraded (tables too shallow, repairs failing),
// c collapsing toward 0 means the measurement itself broke.
func TestExtScaleHops(t *testing.T) {
	tbl, err := ExtScale(ExtScaleParams{
		Sizes:  []int{1_000, 4_000},
		Routes: 2_000,
		Seed:   99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1_000, 4_000} {
		hops := tbl.Mean(float64(n), SeriesMeanHops)
		c := hops / (math.Log(float64(n)) / math.Log(16))
		if c < 0.5 || c > 1.3 {
			t.Errorf("N=%d: mean hops %.3f gives c=%.3f, want 0.5..1.3", n, hops, c)
		}
	}
}

// TestExtScaleBudget verifies the wall-clock budget aborts the sweep with
// an error (the property the nightly smoke job relies on to fail CI).
func TestExtScaleBudget(t *testing.T) {
	_, err := ExtScale(ExtScaleParams{
		Sizes:  []int{1_000, 2_000},
		Routes: 500,
		Seed:   99,
		Budget: time.Nanosecond,
	})
	if err == nil {
		t.Fatal("expected budget-exceeded error, got nil")
	}
}
