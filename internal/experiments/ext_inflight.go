package experiments

import (
	"fmt"
	"time"

	"tap/internal/churn"
	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// ExtInflightParams configures the in-flight churn experiment: multi-hop
// transfers racing a continuous churn process. Unlike Figure 2 (fail,
// then try) this measures the window of vulnerability *during* a
// transfer: a relay that dies while holding the message loses it, and a
// hop anchor that migrates mid-flight is found again through the DHT.
type ExtInflightParams struct {
	N         int
	Length    int
	FileBytes int
	// MeanGaps are the average times between churn events (one
	// departure + one arrival each); smaller = harsher. 0 means no churn
	// and is always included as the baseline.
	MeanGaps  []time.Duration
	Transfers int
	Trials    int
	Seed      uint64
}

func (p ExtInflightParams) withDefaults() ExtInflightParams {
	if p.N == 0 {
		p.N = 1000
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if p.FileBytes == 0 {
		p.FileBytes = 250_000
	}
	if len(p.MeanGaps) == 0 {
		p.MeanGaps = []time.Duration{0, 10 * time.Second, 3 * time.Second, 1 * time.Second}
	}
	if p.Transfers == 0 {
		p.Transfers = 40
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the in-flight experiment.
const (
	SeriesDelivered = "delivered"
	SeriesMeanSecs  = "mean_latency_s"
)

// ExtInflight reports delivery rate and successful-transfer latency per
// churn intensity. The x axis is churn events per minute (0 = none).
func ExtInflight(p ExtInflightParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Ext: in-flight churn — 2Mb tunnel transfers racing churn (N=%d, l=%d, %d transfers, trials=%d)",
			p.N, p.Length, p.Transfers, p.Trials),
		"churn/min", SeriesDelivered, SeriesMeanSecs)
	type job struct{ gIdx, trial int }
	var jobs []job
	for gi := range p.MeanGaps {
		for tr := 0; tr < p.Trials; tr++ {
			jobs = append(jobs, job{gi, tr})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		gap := p.MeanGaps[j.gIdx]
		perMin := 0.0
		if gap > 0 {
			perMin = float64(time.Minute) / float64(gap)
		}
		stream := root.SplitN(fmt.Sprintf("inflight-g%d", j.gIdx), j.trial)
		w, err := BuildWorldIn(mem, p.N, 3, stream.Split("world"))
		if err != nil {
			return err
		}
		kernel := simnet.NewKernel()
		kernel.MaxSteps = 0
		net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(stream.Seed()), w.OV.NumAddrs())
		w.Svc.Net = net
		eng := core.NewNetEngine(w.Svc, net)

		// Transfers start 40 s apart (a basic l=5 transfer takes ~30 s),
		// so at most two overlap and the churn clock keeps running the
		// whole time.
		const spacing = 40 * time.Second
		horizon := simnet.Time(p.Transfers+2) * simnet.Time(spacing)

		ts := stream.Split("transfers")
		type flowResult struct {
			got bool
			out core.Outcome
		}
		results := make([]flowResult, p.Transfers)
		starts := make([]simnet.Time, p.Transfers)
		protected := make(map[simnet.Addr]struct{})

		for tr := 0; tr < p.Transfers; tr++ {
			tr := tr
			at := simnet.Time(tr) * simnet.Time(spacing)
			kernel.At(at, func() {
				node := w.OV.RandomLive(ts)
				in, err := core.NewInitiator(w.Svc, node, ts.SplitN("init", tr))
				if err != nil {
					return
				}
				if err := in.DeployDirect(p.Length); err != nil {
					return
				}
				tun, err := in.FormTunnel(p.Length)
				if err != nil {
					return
				}
				protected[node.Ref().Addr] = struct{}{}
				var dest id.ID
				ts.Bytes(dest[:])
				env, err := core.BuildForward(tun, nil, dest, make([]byte, p.FileBytes), ts)
				if err != nil {
					return
				}
				starts[tr] = kernel.Now()
				eng.SendForward(node.Ref().Addr, env, func(o core.Outcome) {
					results[tr] = flowResult{got: true, out: o}
				})
			})
		}

		if gap > 0 {
			d := churn.NewDriver(w.OV, net, gap, stream.Split("churn"))
			d.Keep = func(a simnet.Addr) bool {
				_, keep := protected[a]
				return keep
			}
			d.Start(horizon)
		}
		if err := kernel.Run(); err != nil {
			return err
		}

		delivered := 0
		var lat trace.Accum
		for tr := 0; tr < p.Transfers; tr++ {
			r := results[tr]
			if r.got && r.out.Delivered {
				delivered++
				lat.Add((r.out.At - starts[tr]).Seconds())
			}
		}
		tbl.Add(perMin, SeriesDelivered, float64(delivered)/float64(p.Transfers))
		if lat.N() > 0 {
			tbl.Add(perMin, SeriesMeanSecs, lat.Mean())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
