package experiments

import (
	"bytes"
	"math"
	"testing"

	"tap/internal/rng"
)

// Small-scale parameter sets keep the full pipelines under a second each
// while still exercising every code path the full-size runs use.

func TestFig2ShapeAndDeterminism(t *testing.T) {
	p := Fig2Params{
		N: 400, Tunnels: 80, Length: 5,
		Ks:     []int{3, 5},
		Fracs:  []float64{0.1, 0.3, 0.5},
		Trials: 2, Seed: 42,
	}
	tbl, err := Fig2(p)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline failure grows steeply with p and dominates TAP.
	for _, f := range p.Fracs {
		cur := tbl.Mean(f, SeriesCurrent)
		tap3 := tbl.Mean(f, seriesTAP(3))
		tap5 := tbl.Mean(f, seriesTAP(5))
		if math.IsNaN(cur) || math.IsNaN(tap3) || math.IsNaN(tap5) {
			t.Fatalf("missing cell at p=%.2f", f)
		}
		if cur < tap3 {
			t.Fatalf("p=%.2f: baseline %.3f below TAP k=3 %.3f", f, cur, tap3)
		}
		if tap5 > tap3+0.02 {
			t.Fatalf("p=%.2f: k=5 (%.3f) should not fail more than k=3 (%.3f)", f, tap5, tap3)
		}
	}
	// Baseline follows 1-(1-p)^l closely.
	wantCur := 1 - math.Pow(1-0.5, 5)
	if got := tbl.Mean(0.5, SeriesCurrent); math.Abs(got-wantCur) > 0.08 {
		t.Fatalf("baseline at p=0.5: %.3f, theory %.3f", got, wantCur)
	}
	// Determinism: identical params, identical means.
	tbl2, err := Fig2(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Fracs {
		if tbl.Mean(f, seriesTAP(3)) != tbl2.Mean(f, seriesTAP(3)) {
			t.Fatalf("Fig2 not deterministic at p=%.2f", f)
		}
	}
}

func TestFig2TheoryAgreement(t *testing.T) {
	// TAP's failure rate should track 1-(1-p^k)^l within Monte-Carlo
	// noise. Correlated replica sets (adjacent hops sharing holders)
	// widen the tolerance a little.
	p := Fig2Params{
		N: 500, Tunnels: 150, Length: 5,
		Ks:     []int{2},
		Fracs:  []float64{0.4},
		Trials: 3, Seed: 7,
	}
	tbl, err := Fig2(p)
	if err != nil {
		t.Fatal(err)
	}
	got := tbl.Mean(0.4, seriesTAP(2))
	want := 1 - math.Pow(1-math.Pow(0.4, 2), 5)
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("TAP k=2 p=0.4: got %.3f, theory %.3f", got, want)
	}
}

func TestFig2FullWalkAgreesWithAvailability(t *testing.T) {
	base := Fig2Params{
		N: 300, Tunnels: 50, Length: 4,
		Ks:     []int{3},
		Fracs:  []float64{0.3},
		Trials: 2, Seed: 11,
	}
	walk := base
	walk.FullWalk = true
	a, err := Fig2(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(walk)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Mean(0.3, seriesTAP(3))
	rb := b.Mean(0.3, seriesTAP(3))
	if ra != rb {
		t.Fatalf("availability check (%.4f) and full walk (%.4f) disagree", ra, rb)
	}
}

func TestFig3Monotone(t *testing.T) {
	p := Fig3Params{
		N: 400, Tunnels: 150, Length: 5, K: 3,
		Fracs:  []float64{0.05, 0.15, 0.3},
		Trials: 2, Seed: 13,
	}
	tbl, err := Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, f := range p.Fracs {
		cur := tbl.Mean(f, SeriesCorrupted)
		if math.IsNaN(cur) {
			t.Fatalf("missing cell at p=%.2f", f)
		}
		if cur < prev-0.02 {
			t.Fatalf("corruption not (weakly) monotone: %.3f after %.3f", cur, prev)
		}
		prev = cur
	}
	// The paper's takeaway: even at p=0.3 corruption stays modest.
	if got := tbl.Mean(0.3, SeriesCorrupted); got > 0.5 {
		t.Fatalf("corruption at p=0.3 is %.3f", got)
	}
}

func TestFig4aIncreasingInK(t *testing.T) {
	p := Fig4aParams{
		N: 400, Tunnels: 150, Length: 3,
		Ks: []int{1, 4, 8}, Malicious: 0.15,
		Trials: 2, Seed: 17,
	}
	tbl, err := Fig4a(p)
	if err != nil {
		t.Fatal(err)
	}
	k1 := tbl.Mean(1, SeriesCorrupted)
	k8 := tbl.Mean(8, SeriesCorrupted)
	if k8 <= k1 {
		t.Fatalf("corruption should increase with k: k=1 %.4f, k=8 %.4f", k1, k8)
	}
}

func TestFig4bDecreasingInL(t *testing.T) {
	p := Fig4bParams{
		N: 400, Tunnels: 200,
		Lengths: []int{1, 3, 6}, K: 3, Malicious: 0.2,
		Trials: 2, Seed: 19,
	}
	tbl, err := Fig4b(p)
	if err != nil {
		t.Fatal(err)
	}
	l1 := tbl.Mean(1, SeriesCorrupted)
	l6 := tbl.Mean(6, SeriesCorrupted)
	if l6 >= l1 {
		t.Fatalf("corruption should decrease with l: l=1 %.4f, l=6 %.4f", l1, l6)
	}
}

func TestFig5UnrefreshedClimbsRefreshedFlat(t *testing.T) {
	p := Fig5Params{
		N: 400, Tunnels: 100, Length: 3, K: 3, Malicious: 0.15,
		Units: 6, LeavePerUnit: 30, JoinPerUnit: 30,
		Trials: 2, Seed: 23,
	}
	tbl, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	u0 := tbl.Mean(0, SeriesUnrefreshed)
	uEnd := tbl.Mean(float64(p.Units), SeriesUnrefreshed)
	if uEnd < u0 {
		t.Fatalf("un-refreshed corruption decreased: %.4f -> %.4f", u0, uEnd)
	}
	// With 6 units of 7.5% churn each, the un-refreshed curve must rise
	// measurably.
	if uEnd <= u0+0.005 {
		t.Fatalf("un-refreshed corruption did not climb: %.4f -> %.4f", u0, uEnd)
	}
	// Refreshed stays near its unit-0 level: bounded by a fraction of the
	// un-refreshed climb.
	r0 := tbl.Mean(0, SeriesRefreshed)
	rEnd := tbl.Mean(float64(p.Units), SeriesRefreshed)
	if (rEnd - r0) > (uEnd-u0)/2 {
		t.Fatalf("refreshed climbed like un-refreshed: refreshed %.4f->%.4f vs un-refreshed %.4f->%.4f",
			r0, rEnd, u0, uEnd)
	}
}

func TestFig6Ordering(t *testing.T) {
	p := Fig6Params{
		Sizes: []int{100, 400}, Lengths: []int{3, 5}, K: 3,
		FileBytes: 250_000, Transfers: 4, Sims: 2, Seed: 29,
	}
	tbl, err := Fig6(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Sizes {
		x := float64(n)
		overt := tbl.Mean(x, SeriesOvert)
		b3 := tbl.Mean(x, seriesBasic(3))
		b5 := tbl.Mean(x, seriesBasic(5))
		o3 := tbl.Mean(x, seriesOpt(3))
		o5 := tbl.Mean(x, seriesOpt(5))
		for _, v := range []float64{overt, b3, b5, o3, o5} {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("n=%d: missing/invalid mean", n)
			}
		}
		// The Figure 6 ordering: basic tunneling is the most expensive,
		// optimization removes most of the penalty, overt is cheapest.
		if !(b5 > b3) {
			t.Fatalf("n=%d: basic l=5 (%.2fs) not above basic l=3 (%.2fs)", n, b5, b3)
		}
		if !(b3 > o3) || !(b5 > o5) {
			t.Fatalf("n=%d: optimization did not help (b3=%.2f o3=%.2f b5=%.2f o5=%.2f)", n, b3, o3, b5, o5)
		}
		if !(o3 >= overt) {
			t.Fatalf("n=%d: opt l=3 (%.2fs) below overt (%.2fs)", n, o3, overt)
		}
	}
	// Larger networks lengthen basic tunneling (more overlay hops per
	// tunnel hop) but barely affect the optimized mode.
	growBasic := tbl.Mean(400, seriesBasic(5)) - tbl.Mean(100, seriesBasic(5))
	growOpt := tbl.Mean(400, seriesOpt(5)) - tbl.Mean(100, seriesOpt(5))
	if growBasic <= 0 {
		t.Fatalf("basic mode did not grow with network size: %.3f", growBasic)
	}
	if growOpt > growBasic {
		t.Fatalf("opt mode grew faster (%.3f) than basic (%.3f)", growOpt, growBasic)
	}
}

func TestTablesRender(t *testing.T) {
	tbl, err := Fig3(Fig3Params{
		N: 200, Tunnels: 40, Length: 3, K: 3,
		Fracs: []float64{0.1}, Trials: 1, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty render")
	}
	buf.Reset()
	tbl.RenderCSV(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty CSV")
	}
}

func TestParallelRunsAll(t *testing.T) {
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	seen := make([]bool, 50)
	err := Parallel(50, func(i int) error {
		<-mu
		seen[i] = true
		mu <- struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not run", i)
		}
	}
}

func TestParallelPropagatesError(t *testing.T) {
	err := Parallel(10, func(i int) error {
		if i == 7 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("err = %v", err)
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }

func TestBuildWorldDeterministic(t *testing.T) {
	w1, err := BuildWorld(100, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorld(100, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := w1.OV.LiveRefs(), w2.OV.LiveRefs()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("worlds diverge at node %d", i)
		}
	}
}
