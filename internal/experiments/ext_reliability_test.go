package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestExtReliabilityAcceptance pins the issue's acceptance criterion: under
// 5% per-link loss with mid-flow hop-node crashes, the retransmitting
// engine delivers ≥ 0.99 of flows while the fire-and-forget baseline is
// measurably lower.
func TestExtReliabilityAcceptance(t *testing.T) {
	tbl, err := ExtReliability(ExtReliabilityParams{
		LossRates: []float64{0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	retx := tbl.Mean(5, SeriesDeliveredRetx)
	noretx := tbl.Mean(5, SeriesDeliveredNoRetx)
	if math.IsNaN(retx) || math.IsNaN(noretx) {
		t.Fatalf("missing cells: retx=%v noretx=%v", retx, noretx)
	}
	if retx < 0.99 {
		t.Fatalf("retransmit delivery %.3f < 0.99 at 5%% loss + crashes", retx)
	}
	if noretx > retx-0.1 {
		t.Fatalf("fire-and-forget delivery %.3f not measurably below retransmit %.3f", noretx, retx)
	}
	att := tbl.Mean(5, SeriesAttemptsRetx)
	if !(att > 1) {
		t.Fatalf("mean attempts %.3f at 5%% loss — retransmission never engaged", att)
	}
	// Reliability costs latency: the retransmitting engine's successes
	// include recovered flows that waited out at least one timeout.
	latRetx := tbl.Mean(5, SeriesLatencyRetx)
	latNo := tbl.Mean(5, SeriesLatencyNoRetx)
	if math.IsNaN(latRetx) || math.IsNaN(latNo) {
		t.Fatalf("missing latency cells")
	}
	if latRetx < latNo {
		t.Fatalf("retransmit latency %.3fs below fire-and-forget %.3fs — recovered flows should pay timeout overhead", latRetx, latNo)
	}
}

// TestExtReliabilityDeterministic: the same seed must reproduce the exact
// table bit for bit. Trials=1 keeps one Add per cell so parallel
// accumulation order cannot perturb the floating-point means.
func TestExtReliabilityDeterministic(t *testing.T) {
	run := func() string {
		tbl, err := ExtReliability(ExtReliabilityParams{
			LossRates: []float64{0.05}, Flows: 10, Trials: 1, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tbl.RenderCSV(&b)
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", a, b)
	}
}

// TestExtReliabilityLosslessBaseline: with no link loss and no crashes the
// two modes coincide — everything delivers in one attempt, so the ACK
// machinery adds no retransmissions.
func TestExtReliabilityLosslessBaseline(t *testing.T) {
	tbl, err := ExtReliability(ExtReliabilityParams{
		LossRates: []float64{0}, CrashFrac: -1, Flows: 10, Trials: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Mean(0, SeriesDeliveredRetx); got != 1 {
		t.Fatalf("retx delivery %.3f on a clean network", got)
	}
	if got := tbl.Mean(0, SeriesDeliveredNoRetx); got != 1 {
		t.Fatalf("noretx delivery %.3f on a clean network", got)
	}
	if got := tbl.Mean(0, SeriesAttemptsRetx); got != 1 {
		t.Fatalf("mean attempts %.3f on a clean network, want exactly 1", got)
	}
}
