package experiments

import (
	"errors"
	"fmt"

	"tap/internal/app/session"
	"tap/internal/churn"
	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// ExtSessionParams configures the session-survival experiment: the
// paper's motivating scenario ("long-standing remote login sessions")
// quantified. A session is `Exchanges` request/response round trips with
// churn interleaved between them; it survives if every exchange
// succeeds. TAP sessions ride hopid tunnels; baseline sessions ride
// fixed-node tunnels.
type ExtSessionParams struct {
	N         int
	Length    int
	Exchanges int
	// ChurnRates are the fraction of the network replaced (leave+join)
	// between consecutive exchanges.
	ChurnRates []float64
	Sessions   int // sessions measured per point per trial
	Trials     int
	Seed       uint64
}

func (p ExtSessionParams) withDefaults() ExtSessionParams {
	if p.N == 0 {
		p.N = 1500
	}
	if p.Length == 0 {
		p.Length = 3
	}
	if p.Exchanges == 0 {
		p.Exchanges = 20
	}
	if len(p.ChurnRates) == 0 {
		p.ChurnRates = []float64{0.002, 0.005, 0.01, 0.02, 0.05}
	}
	if p.Sessions == 0 {
		p.Sessions = 30
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the session experiment.
const (
	SeriesTAPSession   = "TAP"
	SeriesFixedSession = "fixed-node"
)

// ExtSession measures the fraction of sessions that complete all
// exchanges, per churn rate, for both tunnel designs.
func ExtSession(p ExtSessionParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Ext: session survival vs churn rate (N=%d, l=%d, %d exchanges, %d sessions, trials=%d)",
			p.N, p.Length, p.Exchanges, p.Sessions, p.Trials),
		"churn/exchange", SeriesTAPSession, SeriesFixedSession)
	type job struct{ rIdx, trial int }
	var jobs []job
	for ri := range p.ChurnRates {
		for tr := 0; tr < p.Trials; tr++ {
			jobs = append(jobs, job{ri, tr})
		}
	}
	root := rng.New(p.Seed)
	echo := func(req []byte) []byte { return req }
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		rate := p.ChurnRates[j.rIdx]
		stream := root.SplitN(fmt.Sprintf("extsess-r%d", j.rIdx), j.trial)
		w, err := BuildWorldIn(mem, p.N, 3, stream.Split("world"))
		if err != nil {
			return err
		}
		wave := int(rate * float64(p.N))
		if wave < 1 {
			wave = 1
		}

		tapOK, fixedOK := 0, 0
		for sIdx := 0; sIdx < p.Sessions; sIdx++ {
			ss := stream.SplitN("session", sIdx)
			node := w.OV.RandomLive(ss)
			in, err := core.NewInitiator(w.Svc, node, ss.Split("init"))
			if err != nil {
				return err
			}
			if err := in.DeployDirect(2 * p.Length); err != nil {
				return err
			}
			var server id.ID
			ss.Bytes(server[:])
			tapSess, err := session.Open(in, server, p.Length, ss.Split("tap"))
			if err != nil {
				return err
			}
			fixSess, err := session.OpenFixed(w.Svc, server, p.Length, ss.Split("fixed"))
			if err != nil {
				return err
			}
			// The initiator's own node is pinned: the experiment isolates
			// path survival, not endpoint survival.
			benign := func(a simnet.Addr) bool { return a != node.Ref().Addr }

			tapAlive, fixAlive := true, true
			for e := 0; e < p.Exchanges; e++ {
				churn.Wave(w.OV, wave, wave, ss.SplitN("wave", e), benign)
				if tapAlive {
					if _, err := tapSess.Exchange([]byte("x"), echo); err != nil {
						if !errors.Is(err, session.ErrSessionBroken) && !errors.Is(err, session.ErrReplyLost) {
							return fmt.Errorf("experiments: ext-session: unexpected TAP error: %w", err)
						}
						tapAlive = false
					}
				}
				if fixAlive {
					if _, err := fixSess.Exchange([]byte("x"), echo); err != nil {
						if !errors.Is(err, core.ErrRelayDead) {
							return fmt.Errorf("experiments: ext-session: unexpected baseline error: %w", err)
						}
						fixAlive = false
					}
				}
				if !tapAlive && !fixAlive {
					break
				}
			}
			if tapAlive {
				tapOK++
			}
			if fixAlive {
				fixedOK++
			}
		}
		tbl.Add(rate, SeriesTAPSession, float64(tapOK)/float64(p.Sessions))
		tbl.Add(rate, SeriesFixedSession, float64(fixedOK)/float64(p.Sessions))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
