package experiments

import (
	"fmt"
	"math"
	"time"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/trace"
)

// ExtScaleParams configures the scaling experiment: overlay build and
// routing throughput as the network grows toward the million-node mark,
// with the mean hop count checked against Pastry's log_{2^b} N bound
// (the paper's §3 premise that TAP inherits).
type ExtScaleParams struct {
	Sizes  []int         // network sizes to sweep
	Routes int           // measured routes per size
	Seed   uint64        // root random seed
	Budget time.Duration // optional wall-clock cap for the whole sweep
}

func (p ExtScaleParams) withDefaults() ExtScaleParams {
	if len(p.Sizes) == 0 {
		p.Sizes = []int{1_000, 10_000, 100_000, 1_000_000}
	}
	if p.Routes == 0 {
		p.Routes = 10_000
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the scaling experiment.
const (
	SeriesMeanHops  = "mean hops"
	SeriesHopConst  = "c = hops/log16(N)"
	SeriesBuildSec  = "build s"
	SeriesRoutesSec = "routes/s"
)

// ExtScale builds one overlay per size — all inside a single scratch
// arena, so each build reuses the previous one's memory the way
// Monte-Carlo trials do — and measures build time, routing throughput,
// and mean hop count over Routes random lookups. Hops and the derived
// hop constant are deterministic in Seed; the timing columns are wall
// clock. Exceeding Budget (when set) aborts the sweep with an error
// naming the offending size, which is what lets CI pin a scale floor.
func ExtScale(p ExtScaleParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := trace.NewTable(
		fmt.Sprintf("Ext: scaling — build and route cost vs network size (routes=%d)", p.Routes),
		"N", SeriesMeanHops, SeriesHopConst, SeriesBuildSec, SeriesRoutesSec)
	root := rng.New(p.Seed)
	mem := pastry.NewScratch()
	start := time.Now()
	for _, n := range p.Sizes {
		stream := root.SplitN("extscale", n)
		buildStart := time.Now()
		ov, err := pastry.BuildInto(mem, pastry.DefaultConfig(), n, stream.Split("overlay"))
		if err != nil {
			return nil, fmt.Errorf("experiments: ext-scale N=%d: %w", n, err)
		}
		buildSec := time.Since(buildStart).Seconds()

		routeStream := stream.Split("routes")
		totalHops := 0
		routeStart := time.Now()
		for r := 0; r < p.Routes; r++ {
			src := ov.RandomLive(routeStream)
			var key id.ID
			routeStream.Bytes(key[:])
			_, hops, err := ov.Lookup(src.Ref().Addr, key)
			if err != nil {
				return nil, fmt.Errorf("experiments: ext-scale N=%d route %d: %w", n, r, err)
			}
			totalHops += hops
		}
		routeSec := time.Since(routeStart).Seconds()

		meanHops := float64(totalHops) / float64(p.Routes)
		x := float64(n)
		tbl.Add(x, SeriesMeanHops, meanHops)
		tbl.Add(x, SeriesHopConst, meanHops/(math.Log(x)/math.Log(16)))
		tbl.Add(x, SeriesBuildSec, buildSec)
		tbl.Add(x, SeriesRoutesSec, float64(p.Routes)/routeSec)

		if p.Budget > 0 {
			if elapsed := time.Since(start); elapsed > p.Budget {
				return tbl, fmt.Errorf("experiments: ext-scale exceeded budget %v at N=%d (elapsed %v)",
					p.Budget, n, elapsed.Round(time.Millisecond))
			}
		}
	}
	return tbl, nil
}
