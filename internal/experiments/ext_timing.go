package experiments

import (
	"fmt"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/timing"
	"tap/internal/trace"
)

// ExtTimingParams configures the timing-analysis experiment: how often a
// colluding adversary that wiretaps its own nodes can trace an observed
// tunnel exit back to the true initiator, as a function of traffic
// density. §6's case-2 discussion, measured.
type ExtTimingParams struct {
	N      int
	Length int
	// FlowGaps are the spacings between consecutive flow launches;
	// smaller = more concurrent traffic = more ambiguity.
	FlowGaps []time.Duration
	// Malicious fractions, one series per value.
	Fracs  []float64
	Flows  int
	Window time.Duration
	Trials int
	Seed   uint64
}

func (p ExtTimingParams) withDefaults() ExtTimingParams {
	if p.N == 0 {
		p.N = 1000
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if len(p.FlowGaps) == 0 {
		p.FlowGaps = []time.Duration{60 * time.Second, 10 * time.Second, 2 * time.Second, 500 * time.Millisecond}
	}
	if len(p.Fracs) == 0 {
		p.Fracs = []float64{0.1, 0.3}
	}
	if p.Flows == 0 {
		p.Flows = 40
	}
	if p.Window == 0 {
		p.Window = 20 * time.Second
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

func seriesTraced(p float64, opt bool) string {
	mode := "basic"
	if opt {
		mode = "opt"
	}
	return fmt.Sprintf("%s(p=%.2f)", mode, p)
}

// ExtTiming reports, per traffic density (x axis: flow launches per
// minute) and per malicious fraction (series), the fraction of
// adversary-observed exits that were confidently and correctly traced to
// their initiator.
func ExtTiming(p ExtTimingParams) (*trace.Table, error) {
	p = p.withDefaults()
	series := make([]string, 0, 2*len(p.Fracs))
	for _, f := range p.Fracs {
		series = append(series, seriesTraced(f, false))
	}
	for _, f := range p.Fracs {
		series = append(series, seriesTraced(f, true))
	}
	tbl := newSyncTable(
		fmt.Sprintf("Ext: timing analysis — exits traced to initiator vs traffic density (N=%d, l=%d, %d flows, window=%v, trials=%d)",
			p.N, p.Length, p.Flows, p.Window, p.Trials),
		"flows/min", series...)
	type job struct {
		gIdx, fIdx, trial int
		opt               bool
	}
	var jobs []job
	for gi := range p.FlowGaps {
		for fi := range p.Fracs {
			for tr := 0; tr < p.Trials; tr++ {
				jobs = append(jobs, job{gi, fi, tr, false}, job{gi, fi, tr, true})
			}
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		gap := p.FlowGaps[j.gIdx]
		frac := p.Fracs[j.fIdx]
		perMin := float64(time.Minute) / float64(gap)
		stream := root.SplitN(fmt.Sprintf("exttiming-g%d-f%d-%v", j.gIdx, j.fIdx, j.opt), j.trial)
		w, err := BuildWorldIn(mem, p.N, 3, stream.Split("world"))
		if err != nil {
			return err
		}
		kernel := simnet.NewKernel()
		kernel.MaxSteps = 0
		net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(stream.Seed()), w.OV.NumAddrs())
		w.Svc.Net = net
		eng := core.NewNetEngine(w.Svc, net)

		mal := make(map[simnet.Addr]struct{})
		refs := w.OV.LiveRefs()
		for _, idx := range stream.Split("mark").PermFirstK(len(refs), int(frac*float64(len(refs)))) {
			mal[refs[idx].Addr] = struct{}{}
		}
		obs := timing.NewObserver(func(a simnet.Addr) bool {
			_, bad := mal[a]
			return bad
		})
		eng.Tap = obs

		trueSource := make(map[uint64]simnet.Addr)
		ts := stream.Split("flows")
		for fl := 0; fl < p.Flows; fl++ {
			fl := fl
			kernel.At(simnet.Time(fl)*simnet.Time(gap), func() {
				node := w.OV.RandomLive(ts)
				if _, bad := mal[node.Ref().Addr]; bad {
					return // malicious initiators are not attack targets
				}
				in, err := core.NewInitiator(w.Svc, node, ts.SplitN("init", fl))
				if err != nil {
					return
				}
				if err := in.DeployDirect(p.Length); err != nil {
					return
				}
				tun, err := in.FormTunnel(p.Length)
				if err != nil {
					return
				}
				var dest id.ID
				ts.Bytes(dest[:])
				var env *core.Envelope
				if j.opt {
					cache := core.NewHintCache()
					if err := cache.Refresh(w.Svc, tun); err != nil {
						return
					}
					env, err = core.BuildForwardWithCache(tun, cache, dest, make([]byte, 5000), ts)
				} else {
					env, err = core.BuildForward(tun, nil, dest, make([]byte, 5000), ts)
				}
				if err != nil {
					return
				}
				flow := eng.SendForward(node.Ref().Addr, env, nil)
				trueSource[flow] = node.Ref().Addr
			})
		}
		if err := kernel.Run(); err != nil {
			return err
		}
		score := timing.Evaluate(obs, obs.Correlate(p.Window), trueSource)
		if score.Exits == 0 {
			// The adversary never served a tail hop: no opportunities at
			// all this trial.
			tbl.Add(perMin, seriesTraced(frac, j.opt), 0)
			return nil
		}
		// Best-effort attribution: the adversary commits to the earliest
		// candidate even under ambiguity (the strict confident-only rate
		// is near zero everywhere — see package timing tests).
		tbl.Add(perMin, seriesTraced(frac, j.opt), float64(score.GuessCorrect)/float64(score.Exits))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
