package experiments

import (
	"fmt"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// ExtSelfHealParams configures the self-healing-pool experiment: a
// long-running client sending through a TunnelPool versus the same
// client riding one fixed tunnel, both under sustained correlated churn.
// Every Epoch a random ChurnRate fraction of the network fails as one
// batch (replica migration suspended, the Figure 2 correlated-failure
// model — the only failure mode that actually kills anchors) and the
// same number of fresh nodes join. The paper's §6 hop takeover keeps
// tunnels alive under *graceful* single-node churn; this experiment
// measures what the pool's probing, failover and rebuilding buy once
// churn is batched and replication is thin (k=2), so tunnels genuinely
// die mid-session.
type ExtSelfHealParams struct {
	N      int
	K      int // replication factor; default 2 so batch churn kills anchors
	Length int
	// PoolSize is the pool's target tunnel count; Singles is how many
	// independent single-tunnel baseline clients run alongside it (their
	// availabilities average into one baseline series).
	PoolSize int
	Singles  int
	// ChurnRates are the per-epoch batch-failure fractions swept on the x
	// axis; Epoch and Horizon set the churn cadence and session length.
	ChurnRates []float64
	Epoch      simnet.Time
	Horizon    simnet.Time
	// SendEvery is the client send cadence; PayloadBytes each send's size.
	SendEvery    simnet.Time
	PayloadBytes int
	// MaxAttempts is the baseline's end-to-end retransmit budget (the
	// pool uses its own per-flow budgets).
	MaxAttempts int
	Trials      int
	Seed        uint64
}

func (p ExtSelfHealParams) withDefaults() ExtSelfHealParams {
	if p.N == 0 {
		p.N = 250
	}
	if p.K == 0 {
		p.K = 2
	}
	if p.Length == 0 {
		p.Length = 3
	}
	if p.PoolSize == 0 {
		p.PoolSize = 3
	}
	if p.Singles == 0 {
		p.Singles = 8
	}
	if len(p.ChurnRates) == 0 {
		p.ChurnRates = []float64{0.02, 0.05, 0.10}
	}
	if p.Epoch == 0 {
		p.Epoch = 30 * time.Second
	}
	if p.Horizon == 0 {
		p.Horizon = 600 * time.Second
	}
	if p.SendEvery == 0 {
		p.SendEvery = 2 * time.Second
	}
	if p.PayloadBytes == 0 {
		p.PayloadBytes = 512
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.Trials == 0 {
		p.Trials = 2
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the self-healing experiment.
const (
	SeriesAvailPool   = "avail(pool)"
	SeriesAvailSingle = "avail(single)"
	SeriesTTRPool     = "ttr_s(pool)"
)

// ExtSelfHeal reports send availability (delivered fraction) for the
// pooled and single-tunnel clients, and the pool's mean time-to-repair —
// first probe failure to promoted replacement — per churn rate. Pool and
// baseline clients share one world, one kernel and the identical churn
// schedule, so the comparison is paired, not sampled.
func ExtSelfHeal(p ExtSelfHealParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Ext: self-healing pools — availability and time-to-repair under batch churn (N=%d, k=%d, l=%d, pool=%d, %v session, trials=%d)",
			p.N, p.K, p.Length, p.PoolSize, p.Horizon, p.Trials),
		"churn %/epoch",
		SeriesAvailPool, SeriesAvailSingle, SeriesTTRPool)
	type job struct{ ci, trial int }
	var jobs []job
	for ci := range p.ChurnRates {
		for tr := 0; tr < p.Trials; tr++ {
			jobs = append(jobs, job{ci, tr})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		frac := p.ChurnRates[j.ci]
		stream := root.SplitN(fmt.Sprintf("selfheal-c%d", j.ci), j.trial)
		res, err := runSelfHealTrial(p, frac, stream, mem)
		if err != nil {
			return err
		}
		x := frac * 100
		tbl.Add(x, SeriesAvailPool, res.availPool)
		tbl.Add(x, SeriesAvailSingle, res.availSingle)
		if res.repairs > 0 {
			tbl.Add(x, SeriesTTRPool, res.ttr.Seconds())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}

// selfHealResult is one trial's measurement.
type selfHealResult struct {
	availPool   float64
	availSingle float64
	ttr         simnet.Time
	repairs     uint64
	poolStats   core.PoolStats
}

// runSelfHealTrial runs one world with a pooled client and Singles
// baseline clients through Horizon of batch churn.
func runSelfHealTrial(p ExtSelfHealParams, frac float64, stream *rng.Stream, mem *pastry.Scratch) (selfHealResult, error) {
	var res selfHealResult
	w, err := BuildWorldIn(mem, p.N, p.K, stream.Split("world"))
	if err != nil {
		return res, err
	}
	kernel := simnet.NewKernel()
	kernel.MaxSteps = 0
	net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(stream.Seed()), w.OV.NumAddrs())
	w.Svc.Net = net
	eng := core.NewNetEngine(w.Svc, net)
	eng.EnableReliability(core.Reliability{MaxAttempts: p.MaxAttempts})

	// Clients are exempt from churn: a dead initiator measures nothing.
	protected := make(map[simnet.Addr]bool)
	cs := stream.Split("clients")

	poolNode := w.OV.RandomLive(cs)
	protected[poolNode.Ref().Addr] = true
	poolIn, err := core.NewInitiator(w.Svc, poolNode, cs.Split("pool-init"))
	if err != nil {
		return res, err
	}
	pool, err := core.NewTunnelPool(poolIn, eng, core.PoolConfig{
		Size:   p.PoolSize,
		Length: p.Length,
	})
	if err != nil {
		return res, err
	}
	pool.Start()

	type single struct {
		origin simnet.Addr
		tun    *core.Tunnel
		cache  *core.HintCache
	}
	singles := make([]*single, 0, p.Singles)
	for i := 0; i < p.Singles; i++ {
		node := w.OV.RandomLive(cs)
		for protected[node.Ref().Addr] {
			node = w.OV.RandomLive(cs)
		}
		protected[node.Ref().Addr] = true
		in, err := core.NewInitiator(w.Svc, node, cs.SplitN("single-init", i))
		if err != nil {
			return res, err
		}
		if err := in.DeployDirect(p.Length); err != nil {
			return res, err
		}
		tun, err := in.FormTunnel(p.Length)
		if err != nil {
			return res, err
		}
		cache := core.NewHintCache()
		if err := cache.Refresh(w.Svc, tun); err != nil {
			return res, err
		}
		singles = append(singles, &single{origin: node.Ref().Addr, tun: tun, cache: cache})
	}

	// Batch churn: every epoch, kill a random frac of the network in one
	// correlated batch (migration suspended — an anchor whose replicas all
	// fall in the batch is lost for good) and join the same number of
	// fresh nodes so the population and routability hold steady.
	churn := stream.Split("churn")
	kills := int(frac*float64(p.N) + 0.5)
	churnEpoch := func() {
		taken := make(map[simnet.Addr]bool)
		var victims []simnet.Addr
		for tries := 0; len(victims) < kills && tries < kills*20; tries++ {
			a := w.OV.RandomLive(churn).Ref().Addr
			if protected[a] || taken[a] {
				continue
			}
			taken[a] = true
			victims = append(victims, a)
		}
		w.Mgr.BeginBatch()
		for _, a := range victims {
			if err := w.OV.Fail(a); err == nil {
				net.Detach(a)
			}
		}
		w.Mgr.EndBatch()
		for range victims {
			w.OV.Join()
		}
	}
	for at := p.Epoch; at < p.Horizon; at += p.Epoch {
		kernel.At(at, churnEpoch)
	}

	// The paired workload: every SendEvery, one pool send and one send per
	// baseline client. A pool fast-fail (degraded) counts as a failed
	// send — refusing service is still unavailability.
	traffic := stream.Split("traffic")
	var poolSent, poolOK, singleSent, singleOK int
	sendRound := func() {
		var dest id.ID
		traffic.Bytes(dest[:])
		poolSent++
		_ = pool.Send(dest, make([]byte, p.PayloadBytes), func(o core.Outcome) {
			if o.Delivered {
				poolOK++
			}
		})
		for _, s := range singles {
			var d id.ID
			traffic.Bytes(d[:])
			singleSent++
			env, err := core.BuildForwardWithCache(s.tun, s.cache, d, make([]byte, p.PayloadBytes), traffic)
			if err != nil {
				continue
			}
			eng.SendForward(s.origin, env, func(o core.Outcome) {
				if o.Delivered {
					singleOK++
				}
			})
		}
	}
	for at := simnet.Time(0); at < p.Horizon; at += p.SendEvery {
		kernel.At(at, sendRound)
	}
	kernel.At(p.Horizon, pool.Stop)

	if err := kernel.Run(); err != nil {
		return res, err
	}
	res.availPool = float64(poolOK) / float64(poolSent)
	res.availSingle = float64(singleOK) / float64(singleSent)
	res.ttr = pool.MeanRepairTime()
	res.repairs = pool.Stats.Repairs
	res.poolStats = pool.Stats
	return res, nil
}
