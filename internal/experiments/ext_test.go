package experiments

import (
	"math"
	"testing"
	"time"
)

func TestExtSecRouteOrdering(t *testing.T) {
	tbl, err := ExtSecRoute(ExtSecRouteParams{
		N: 500, Fracs: []float64{0.2}, Lookups: 80, Trials: 2, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	naive := tbl.Mean(0.2, SeriesNaive)
	secure := tbl.Mean(0.2, SeriesSecure)
	paranoid := tbl.Mean(0.2, SeriesParanoid)
	if math.IsNaN(naive) || math.IsNaN(secure) || math.IsNaN(paranoid) {
		t.Fatalf("missing cells")
	}
	if !(secure > naive) {
		t.Fatalf("secure (%.2f) not above naive (%.2f)", secure, naive)
	}
	if !(paranoid >= secure) {
		t.Fatalf("paranoid (%.2f) below secure (%.2f)", paranoid, secure)
	}
	if paranoid < 0.9 {
		t.Fatalf("paranoid success %.2f at p=0.2", paranoid)
	}
}

func TestExtDetectMonitoredWins(t *testing.T) {
	tbl, err := ExtDetect(ExtDetectParams{
		N: 400, Length: 4, Fracs: []float64{0.15}, Sends: 30, Trials: 2, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	un := tbl.Mean(0.15, SeriesUnmanaged)
	mon := tbl.Mean(0.15, SeriesMonitored)
	if math.IsNaN(un) || math.IsNaN(mon) {
		t.Fatalf("missing cells")
	}
	if mon <= un {
		t.Fatalf("monitored (%.2f) not above unmanaged (%.2f)", mon, un)
	}
	if mon < 0.9 {
		t.Fatalf("monitored success only %.2f at p=0.15", mon)
	}
}

func TestExtAnonDegreeFalls(t *testing.T) {
	tbl, err := ExtAnon(ExtAnonParams{
		N: 400, Tunnels: 150, Length: 2, K: 3,
		Fracs: []float64{0.05, 0.3}, Trials: 2, Seed: 47,
	})
	if err != nil {
		t.Fatal(err)
	}
	low := tbl.Mean(0.05, SeriesDegree)
	high := tbl.Mean(0.3, SeriesDegree)
	if math.IsNaN(low) || math.IsNaN(high) {
		t.Fatalf("missing cells")
	}
	if high > low {
		t.Fatalf("anonymity degree rose with collusion: %.3f -> %.3f", low, high)
	}
	// Identified fraction is the complement view of Fig 3 corruption.
	idLow := tbl.Mean(0.05, SeriesIdentified)
	idHigh := tbl.Mean(0.3, SeriesIdentified)
	if idHigh < idLow {
		t.Fatalf("identified fraction fell with collusion")
	}
	// Degree and identified must be consistent: degree ≥ 1 - identified
	// is not generally true, but degree ≤ 1 and identified ∈ [0,1] are.
	for _, v := range []float64{low, high, idLow, idHigh} {
		if v < 0 || v > 1 {
			t.Fatalf("metric out of [0,1]: %f", v)
		}
	}
}

func TestExtSessionTAPOutlivesBaseline(t *testing.T) {
	tbl, err := ExtSession(ExtSessionParams{
		N: 400, Length: 3, Exchanges: 10,
		ChurnRates: []float64{0.02}, Sessions: 15, Trials: 2, Seed: 49,
	})
	if err != nil {
		t.Fatal(err)
	}
	tap := tbl.Mean(0.02, SeriesTAPSession)
	fixed := tbl.Mean(0.02, SeriesFixedSession)
	if math.IsNaN(tap) || math.IsNaN(fixed) {
		t.Fatalf("missing cells")
	}
	// Sequential churn with k=3 never loses anchors: TAP sessions always
	// survive. The fixed path loses ~3 specific nodes out of 400 per
	// session (10 waves × 8 churned × 3 relays): survival well below 1.
	if tap != 1 {
		t.Fatalf("TAP session survival %.2f, want 1.0 under sequential churn", tap)
	}
	if fixed >= tap {
		t.Fatalf("baseline survival %.2f not below TAP %.2f", fixed, tap)
	}
}

func TestExtInflight(t *testing.T) {
	tbl, err := ExtInflight(ExtInflightParams{
		N: 300, Length: 3, FileBytes: 100_000,
		MeanGaps:  []time.Duration{0, time.Second},
		Transfers: 8, Trials: 1, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := tbl.Mean(0, SeriesDelivered)
	if clean != 1 {
		t.Fatalf("no-churn delivery rate %.2f, want 1", clean)
	}
	churned := tbl.Mean(60, SeriesDelivered)
	if math.IsNaN(churned) {
		t.Fatalf("missing churned cell")
	}
	if churned > clean {
		t.Fatalf("churn improved delivery?")
	}
	if lat := tbl.Mean(0, SeriesMeanSecs); math.IsNaN(lat) || lat <= 0 {
		t.Fatalf("latency cell missing")
	}
}

func TestExtCoverOverheadGrows(t *testing.T) {
	tbl, err := ExtCover(ExtCoverParams{
		N: 150, Rates: []float64{0, 1, 5}, Transfers: 2, FileBytes: 50_000,
		Length: 3, Trials: 1, Seed: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	x0 := tbl.Mean(0, SeriesOverheadX)
	x1 := tbl.Mean(1, SeriesOverheadX)
	x5 := tbl.Mean(5, SeriesOverheadX)
	if x0 != 1 {
		t.Fatalf("baseline multiplier %.2f, want 1", x0)
	}
	if !(x1 > x0) || !(x5 > x1) {
		t.Fatalf("overhead not increasing: %.2f %.2f %.2f", x0, x1, x5)
	}
	if d := tbl.Mean(5, SeriesCoverMsgs); d <= tbl.Mean(1, SeriesCoverMsgs) {
		t.Fatalf("dummy counts not increasing with rate")
	}
}
