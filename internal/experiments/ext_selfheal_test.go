package experiments

import (
	"math"
	"strings"
	"testing"

	"tap/internal/rng"
)

// TestExtSelfHealAcceptance pins the issue's acceptance criterion: under
// 10%-per-epoch batch churn with k=2 replication, the pooled client keeps
// send availability ≥ 0.99 while the single-tunnel baseline drops below
// 0.90, and the pool's time-to-repair is actually measured (at least one
// death→promotion cycle completed).
func TestExtSelfHealAcceptance(t *testing.T) {
	tbl, err := ExtSelfHeal(ExtSelfHealParams{
		ChurnRates: []float64{0.10},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := tbl.Mean(10, SeriesAvailPool)
	single := tbl.Mean(10, SeriesAvailSingle)
	if math.IsNaN(pool) || math.IsNaN(single) {
		t.Fatalf("missing cells: pool=%v single=%v", pool, single)
	}
	if pool < 0.99 {
		t.Fatalf("pool availability %.4f < 0.99 at 10%%/epoch churn", pool)
	}
	if single >= 0.90 {
		t.Fatalf("single-tunnel availability %.4f not < 0.90 at 10%%/epoch churn — churn too gentle to differentiate", single)
	}
	ttr := tbl.Mean(10, SeriesTTRPool)
	if math.IsNaN(ttr) || !(ttr > 0) {
		t.Fatalf("time-to-repair %v — no repair cycle was measured", ttr)
	}
}

// TestExtSelfHealDeterministic: the same seed must reproduce the exact
// table bit for bit. Trials=1 keeps one Add per cell so parallel
// accumulation order cannot perturb the floating-point means.
func TestExtSelfHealDeterministic(t *testing.T) {
	run := func() string {
		tbl, err := ExtSelfHeal(ExtSelfHealParams{
			ChurnRates: []float64{0.10}, N: 150, Singles: 3, Trials: 1, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tbl.RenderCSV(&b)
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", a, b)
	}
}

// TestExtSelfHealQuietBaseline: with no churn both clients deliver
// everything, the pool never declares a death, and rebuild admission is
// never consulted — the probe machinery at rest is free of false alarms.
func TestExtSelfHealQuietBaseline(t *testing.T) {
	p := ExtSelfHealParams{N: 150, Singles: 2, Trials: 1, Seed: 9}.withDefaults()
	res, err := runSelfHealTrial(p, 0, rng.New(p.Seed).Split("quiet"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.availPool != 1 || res.availSingle != 1 {
		t.Fatalf("clean-network availability pool=%.4f single=%.4f, want 1.0", res.availPool, res.availSingle)
	}
	if res.poolStats.SlotDeaths != 0 || res.poolStats.Rebuilds != 0 {
		t.Fatalf("pool churned on a quiet network: %+v", res.poolStats)
	}
}
