package experiments

import (
	"fmt"

	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/trace"
)

// Fig3Params configures Figure 3: "the fraction of tunnels that are
// corrupted as a function of the fraction of nodes that are malicious",
// with replication factor k=3 and tunnel length 5.
type Fig3Params struct {
	N       int
	Tunnels int
	Length  int
	K       int
	Fracs   []float64 // malicious fractions p
	Trials  int
	Seed    uint64
}

func (p Fig3Params) withDefaults() Fig3Params {
	if p.N == 0 {
		p.N = 10_000
	}
	if p.Tunnels == 0 {
		p.Tunnels = 5_000
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if p.K == 0 {
		p.K = 3
	}
	if len(p.Fracs) == 0 {
		for f := 0.02; f < 0.31; f += 0.02 {
			p.Fracs = append(p.Fracs, f)
		}
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// SeriesCorrupted is the corrupted-fraction series name.
const SeriesCorrupted = "corrupted"

// SeriesFirstTail is the secondary case-2 metric (first and tail hop nodes
// malicious), reported alongside though the paper's plot shows case 1.
const SeriesFirstTail = "first+tail"

// Fig3 runs the experiment. Fractions are swept *ascending within one
// world per trial*: the collusion only ever grows, so each step tops up
// the same adversary — equivalent to independent draws for the mean, and
// 10× cheaper at the paper's network size.
func Fig3(p Fig3Params) (*trace.Table, error) {
	p = p.withDefaults()
	fr := ascending(p.Fracs)
	tbl := newSyncTable(
		fmt.Sprintf("Fig 3: corrupted tunnels vs malicious fraction (N=%d, tunnels=%d, l=%d, k=%d, trials=%d)",
			p.N, p.Tunnels, p.Length, p.K, p.Trials),
		"p", SeriesCorrupted, SeriesFirstTail)
	root := rng.New(p.Seed)
	err := ParallelScratch(p.Trials, func(trial int, mem *pastry.Scratch) error {
		stream := root.SplitN("fig3", trial)
		w, err := BuildWorldIn(mem, p.N, p.K, stream.Split("world"))
		if err != nil {
			return err
		}
		ts, err := DeployTunnels(w, p.Tunnels, p.Length, stream.Split("tunnels"))
		if err != nil {
			return err
		}
		mark := stream.Split("mark")
		for _, f := range fr {
			w.Col.MarkCount(int(f*float64(p.N)), mark)
			tbl.Add(f, SeriesCorrupted, w.Col.CorruptionRate(ts.Tunnels))
			ftc := 0
			for _, t := range ts.Tunnels {
				if w.Col.FirstTailCompromised(t, w.Dir) {
					ftc++
				}
			}
			tbl.Add(f, SeriesFirstTail, float64(ftc)/float64(len(ts.Tunnels)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}

// ascending returns a sorted copy of fracs.
func ascending(fracs []float64) []float64 {
	out := append([]float64(nil), fracs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
