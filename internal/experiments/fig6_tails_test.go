package experiments

import (
	"math"
	"testing"
)

func TestFig6TailsAndContention(t *testing.T) {
	p := Fig6Params{
		Sizes: []int{150}, Lengths: []int{3}, K: 3,
		FileBytes: 100_000, Transfers: 6, Sims: 2, Seed: 51,
		WithTails: true,
	}
	tbl, err := Fig6(p)
	if err != nil {
		t.Fatal(err)
	}
	mean := tbl.Mean(150, SeriesOvert)
	p95 := tbl.Mean(150, SeriesOvert+"_p95")
	if math.IsNaN(mean) || math.IsNaN(p95) {
		t.Fatalf("missing cells: mean=%f p95=%f", mean, p95)
	}
	if p95 < mean {
		t.Fatalf("p95 (%f) below mean (%f)", p95, mean)
	}
	bMean := tbl.Mean(150, seriesBasic(3))
	bP95 := tbl.Mean(150, seriesBasic(3)+"_p95")
	if bP95 < bMean {
		t.Fatalf("basic p95 below mean")
	}

	// Contention on a sequential workload should change nothing: flows
	// never overlap, so each uplink is idle when used... except the tail
	// hop's payload forwarding follows its receive immediately — still
	// sequential per node. Verify equality.
	q := p
	q.UplinkContention = true
	tbl2, err := Fig6(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Mean(150, SeriesOvert); got != mean {
		t.Fatalf("contention changed sequential overt timing: %f vs %f", got, mean)
	}
}
