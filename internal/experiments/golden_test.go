package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tap/internal/trace"
)

// The figure goldens pin the rendered CSV of every paper figure at a small
// fixed-seed scale. Together with the pastry route-trace goldens they prove
// substrate refactors (arena overlay, calendar-queue kernel) are
// behaviour-preserving end to end: same seeds, same tables, byte for byte.
//
// Regenerate (only when results are *supposed* to change, with review):
//
//	go test ./internal/experiments -run TestGoldenFigures -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden figure CSVs from the current implementation")

func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		name string
		run  func() (*trace.Table, error)
	}{
		{"fig2", func() (*trace.Table, error) {
			return Fig2(Fig2Params{N: 300, Tunnels: 60, Length: 5, Ks: []int{3},
				Fracs: []float64{0.1, 0.3}, Trials: 2, Seed: 41, FullWalk: true})
		}},
		{"fig3", func() (*trace.Table, error) {
			return Fig3(Fig3Params{N: 300, Tunnels: 80, Length: 5, K: 3,
				Fracs: []float64{0.1, 0.2}, Trials: 2, Seed: 42})
		}},
		{"fig4a", func() (*trace.Table, error) {
			return Fig4a(Fig4aParams{N: 300, Tunnels: 80, Length: 5,
				Ks: []int{1, 3}, Malicious: 0.1, Trials: 2, Seed: 43})
		}},
		{"fig4b", func() (*trace.Table, error) {
			return Fig4b(Fig4bParams{N: 300, Tunnels: 80,
				Lengths: []int{2, 5}, K: 3, Malicious: 0.1, Trials: 2, Seed: 44})
		}},
		{"fig5", func() (*trace.Table, error) {
			return Fig5(Fig5Params{N: 300, Tunnels: 60, Length: 5, K: 3, Malicious: 0.1,
				Units: 4, LeavePerUnit: 15, JoinPerUnit: 15, Trials: 2, Seed: 45})
		}},
		{"fig6", func() (*trace.Table, error) {
			return Fig6(Fig6Params{Sizes: []int{100, 200}, Lengths: []int{3}, K: 3,
				FileBytes: 50_000, Transfers: 3, Sims: 2, Seed: 46})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tbl, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			tbl.RenderCSV(&buf)
			path := filepath.Join("testdata", "golden", c.name+".csv")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden on a known-good tree): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				got := path + ".got"
				os.WriteFile(got, buf.Bytes(), 0o644)
				t.Fatalf("figure CSV diverges from %s (wrote %s):\nwant:\n%s\ngot:\n%s",
					path, got, want, buf.Bytes())
			}
		})
	}
}
