package experiments

import (
	"fmt"

	"tap/internal/anonmetrics"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/trace"
)

// ExtAnonParams configures the anonymity-degree experiment: the
// entropy-based degree of initiator anonymity (Serjantov/Danezis metric)
// as the collusion grows — §6's informal analysis as a curve.
type ExtAnonParams struct {
	N       int
	Tunnels int
	Length  int
	K       int
	Fracs   []float64
	Trials  int
	Seed    uint64
}

func (p ExtAnonParams) withDefaults() ExtAnonParams {
	if p.N == 0 {
		p.N = 2000
	}
	if p.Tunnels == 0 {
		p.Tunnels = 500
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if p.K == 0 {
		p.K = 3
	}
	if len(p.Fracs) == 0 {
		p.Fracs = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the anonymity experiment.
const (
	SeriesDegree     = "degree_of_anonymity"
	SeriesIdentified = "identified"
)

// ExtAnon sweeps the malicious fraction and reports the mean degree of
// anonymity across the tunnel population, plus the fraction of tunnels
// whose initiator is fully identified (degree zero — the complement view
// of Figure 3's corruption rate).
func ExtAnon(p ExtAnonParams) (*trace.Table, error) {
	p = p.withDefaults()
	fr := ascending(p.Fracs)
	tbl := newSyncTable(
		fmt.Sprintf("Ext: degree of initiator anonymity vs malicious fraction (N=%d, tunnels=%d, l=%d, k=%d, trials=%d)",
			p.N, p.Tunnels, p.Length, p.K, p.Trials),
		"p", SeriesDegree, SeriesIdentified)
	root := rng.New(p.Seed)
	err := ParallelScratch(p.Trials, func(trial int, mem *pastry.Scratch) error {
		stream := root.SplitN("extanon", trial)
		w, err := BuildWorldIn(mem, p.N, p.K, stream.Split("world"))
		if err != nil {
			return err
		}
		ts, err := DeployTunnels(w, p.Tunnels, p.Length, stream.Split("tunnels"))
		if err != nil {
			return err
		}
		mark := stream.Split("mark")
		for _, f := range fr {
			w.Col.MarkCount(int(f*float64(p.N)), mark)
			n := w.OV.Size()
			tbl.Add(f, SeriesDegree, anonmetrics.MeanDegree(w.Col, ts.Tunnels, n))
			identified := 0
			for _, t := range ts.Tunnels {
				if anonmetrics.DegreeOfAnonymity(w.Col, t, n) == 0 {
					identified++
				}
			}
			tbl.Add(f, SeriesIdentified, float64(identified)/float64(len(ts.Tunnels)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
