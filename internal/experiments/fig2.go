package experiments

import (
	"fmt"

	"tap/internal/churn"
	"tap/internal/core"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/trace"
)

// Fig2Params configures the Figure 2 experiment: "the fraction of tunnels
// that fail as a function of the fraction of nodes that fail". The paper
// uses a 10^4-node network, 5,000 tunnels of length 5, and compares
// current tunneling against TAP with k=3 and k=5.
type Fig2Params struct {
	N       int // network size (paper: 10_000)
	Tunnels int // tunnels formed (paper: 5_000)
	Length  int // tunnel length (paper: 5)
	Ks      []int
	Fracs   []float64 // node failure fractions p
	Trials  int
	Seed    uint64
	// FullWalk verifies surviving tunnels by complete end-to-end delivery
	// rather than anchor availability. Slower; results agree (a test
	// asserts so).
	FullWalk bool
}

// withDefaults fills zero fields with the paper's settings.
func (p Fig2Params) withDefaults() Fig2Params {
	if p.N == 0 {
		p.N = 10_000
	}
	if p.Tunnels == 0 {
		p.Tunnels = 5_000
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if len(p.Ks) == 0 {
		p.Ks = []int{3, 5}
	}
	if len(p.Fracs) == 0 {
		for f := 0.05; f < 0.51; f += 0.05 {
			p.Fracs = append(p.Fracs, f)
		}
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// SeriesCurrent is the baseline series name.
const SeriesCurrent = "current"

// seriesTAP names a TAP curve for a replication factor.
func seriesTAP(k int) string { return fmt.Sprintf("TAP(k=%d)", k) }

// Fig2 runs the experiment and returns the mean tunnel failure rate per
// failure fraction for each series. Baseline tunnels are measured in the
// first k's world (their behaviour does not depend on k).
func Fig2(p Fig2Params) (*trace.Table, error) {
	p = p.withDefaults()
	series := []string{SeriesCurrent}
	for _, k := range p.Ks {
		series = append(series, seriesTAP(k))
	}
	tbl := newSyncTable(
		fmt.Sprintf("Fig 2: tunnel failure vs node failure fraction (N=%d, tunnels=%d, l=%d, trials=%d)",
			p.N, p.Tunnels, p.Length, p.Trials),
		"p", series...)

	type job struct {
		kIdx, fIdx, trial int
	}
	var jobs []job
	for ki := range p.Ks {
		for fi := range p.Fracs {
			for tr := 0; tr < p.Trials; tr++ {
				jobs = append(jobs, job{ki, fi, tr})
			}
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		k := p.Ks[j.kIdx]
		frac := p.Fracs[j.fIdx]
		stream := root.SplitN(fmt.Sprintf("fig2-k%d-f%d", k, j.fIdx), j.trial)
		w, err := BuildWorldIn(mem, p.N, k, stream.Split("world"))
		if err != nil {
			return err
		}
		ts, err := DeployTunnels(w, p.Tunnels, p.Length, stream.Split("tunnels"))
		if err != nil {
			return err
		}
		// Baseline tunnels share the world of the first k only.
		var fixed []*core.FixedTunnel
		if j.kIdx == 0 {
			fixed = make([]*core.FixedTunnel, 0, p.Tunnels)
			fstream := stream.Split("fixed")
			for t := 0; t < p.Tunnels; t++ {
				ft, err := core.FormFixed(w.OV, p.Length, fstream)
				if err != nil {
					return err
				}
				fixed = append(fixed, ft)
			}
		}

		churn.FailFraction(w.OV, w.Mgr, frac, stream.Split("fail"), nil)

		failedTAP := 0
		probe := stream.Split("probe")
		for t := range ts.Tunnels {
			if !TunnelFunctional(w, ts.Initiators[t], ts.Tunnels[t], p.FullWalk, probe) {
				failedTAP++
			}
		}
		tbl.Add(frac, seriesTAP(k), float64(failedTAP)/float64(p.Tunnels))

		if fixed != nil {
			failedFixed := 0
			for _, ft := range fixed {
				if !ft.Alive(w.OV) {
					failedFixed++
				}
			}
			tbl.Add(frac, SeriesCurrent, float64(failedFixed)/float64(p.Tunnels))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
