package experiments

import (
	"fmt"
	"testing"

	"tap/internal/churn"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// Regression: heavy churn at realistic scale once broke the replica
// invariant — the join-time migration scan used a distance-based
// neighbor window (the 2k+2 nodes *closest* to the joiner), which id
// clumping can defeat, leaving stale replicas that later surfaced as
// ErrNotHolder during tunnel traversal. The scan is positional now; this
// reproduces the exact failing schedule (seed 2004, rate 0.05, trial 0).
func TestRegressionJoinScanPositional(t *testing.T) {
	root := rng.New(2004)
	stream := root.SplitN(fmt.Sprintf("extsess-r%d", 4), 0)
	w, err := BuildWorld(1500, 3, stream.Split("world"))
	if err != nil {
		t.Fatal(err)
	}
	const wave = 75 // 5% of 1500
	for sIdx := 0; sIdx < 4; sIdx++ {
		ss := stream.SplitN("session", sIdx)
		node := w.OV.RandomLive(ss)
		benign := func(a simnet.Addr) bool { return a != node.Ref().Addr }
		if _, err := DeployTunnels(w, 2, 5, ss.Split("tun")); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 6; e++ {
			churn.Wave(w.OV, wave, wave, ss.SplitN("wave", e), benign)
			if err := w.Mgr.CheckInvariants(); err != nil {
				t.Fatalf("session %d wave %d: %v", sIdx, e, err)
			}
		}
	}
}
