package experiments

import (
	"fmt"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// ExtReliabilityParams configures the churn-reliability experiment: tunnel
// transfers over a faulty network — per-link message loss plus scheduled
// crashes of current hop nodes mid-flow — with and without the end-to-end
// ACK/retransmit protocol. The paper argues TAP tunnels *survive* node
// failure because hop anchors fail over to THA replicas (§6); this
// experiment measures what that survival is worth to in-flight traffic
// once someone actually retransmits into the recovered tunnel.
type ExtReliabilityParams struct {
	N         int
	Length    int
	FileBytes int
	// LossRates are the per-link loss probabilities swept on the x axis.
	LossRates []float64
	// CrashFrac is the fraction of flows whose middle-hop node crashes
	// 300 ms after the flow starts (restarting 30 s later). The crashed
	// node drops out of the overlay, so the hop anchor migrates to its
	// replica; its address hint goes stale.
	CrashFrac   float64
	Flows       int
	Trials      int
	MaxAttempts int
	Seed        uint64
}

func (p ExtReliabilityParams) withDefaults() ExtReliabilityParams {
	if p.N == 0 {
		p.N = 250
	}
	if p.Length == 0 {
		p.Length = 3
	}
	if p.FileBytes == 0 {
		p.FileBytes = 2000
	}
	if len(p.LossRates) == 0 {
		p.LossRates = []float64{0, 0.02, 0.05, 0.10}
	}
	if p.CrashFrac == 0 {
		p.CrashFrac = 0.5
	}
	if p.Flows == 0 {
		p.Flows = 30
	}
	if p.Trials == 0 {
		p.Trials = 2
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 10
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for the churn-reliability experiment.
const (
	SeriesDeliveredRetx   = "delivered(retx)"
	SeriesDeliveredNoRetx = "delivered(noretx)"
	SeriesLatencyRetx     = "latency_s(retx)"
	SeriesLatencyNoRetx   = "latency_s(noretx)"
	SeriesAttemptsRetx    = "attempts(retx)"
)

// ExtReliability reports delivery rate, successful-transfer latency, and
// (for the reliable mode) mean end-to-end attempts per loss rate. Both
// modes replay the identical scenario — same world, tunnels, hint caches,
// destinations, and fault plan — differing only in whether the engine
// retransmits.
func ExtReliability(p ExtReliabilityParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Ext: churn reliability — ACK/retransmit vs fire-and-forget under link loss + hop crashes (N=%d, l=%d, %d flows, crash frac %.2f, trials=%d)",
			p.N, p.Length, p.Flows, p.CrashFrac, p.Trials),
		"loss %",
		SeriesDeliveredRetx, SeriesDeliveredNoRetx,
		SeriesLatencyRetx, SeriesLatencyNoRetx, SeriesAttemptsRetx)
	type job struct{ li, trial int }
	var jobs []job
	for li := range p.LossRates {
		for tr := 0; tr < p.Trials; tr++ {
			jobs = append(jobs, job{li, tr})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		loss := p.LossRates[j.li]
		x := loss * 100
		for _, retx := range []bool{true, false} {
			// Split (unlike draws) leaves the parent stream untouched, so
			// both modes derive identical substreams and replay the same
			// scenario.
			stream := root.SplitN(fmt.Sprintf("rel-l%d", j.li), j.trial)
			delivered, lat, att, err := runReliabilityTrial(p, loss, retx, stream, mem)
			if err != nil {
				return err
			}
			if retx {
				tbl.Add(x, SeriesDeliveredRetx, delivered)
				if lat.N() > 0 {
					tbl.Add(x, SeriesLatencyRetx, lat.Mean())
				}
				if att.N() > 0 {
					tbl.Add(x, SeriesAttemptsRetx, att.Mean())
				}
			} else {
				tbl.Add(x, SeriesDeliveredNoRetx, delivered)
				if lat.N() > 0 {
					tbl.Add(x, SeriesLatencyNoRetx, lat.Mean())
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}

// runReliabilityTrial runs one world through the faulty network in one
// mode and returns the delivery fraction plus latency/attempt accumulators
// over delivered flows.
func runReliabilityTrial(p ExtReliabilityParams, loss float64, retx bool, stream *rng.Stream, mem *pastry.Scratch) (float64, trace.Accum, trace.Accum, error) {
	var lat, att trace.Accum
	w, err := BuildWorldIn(mem, p.N, 3, stream.Split("world"))
	if err != nil {
		return 0, lat, att, err
	}
	kernel := simnet.NewKernel()
	kernel.MaxSteps = 0
	net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(stream.Seed()), w.OV.NumAddrs())
	w.Svc.Net = net
	eng := core.NewNetEngine(w.Svc, net)
	if retx {
		eng.EnableReliability(core.Reliability{MaxAttempts: p.MaxAttempts})
	}

	// Flows are formed up front (hint caches resolve the t=0 hop nodes)
	// and spaced out so each crash lands 300 ms into its own flow.
	const spacing = 20 * time.Second
	ts := stream.Split("flows")
	type flowPlan struct {
		origin simnet.Addr
		env    *core.Envelope
		start  simnet.Time
	}
	type crashPlan struct {
		addr simnet.Addr
		at   simnet.Time
	}
	flows := make([]flowPlan, 0, p.Flows)
	var candidates []crashPlan
	origins := make(map[simnet.Addr]struct{})
	for fi := 0; fi < p.Flows; fi++ {
		node := w.OV.RandomLive(ts)
		in, err := core.NewInitiator(w.Svc, node, ts.SplitN("init", fi))
		if err != nil {
			return 0, lat, att, err
		}
		if err := in.DeployDirect(p.Length); err != nil {
			return 0, lat, att, err
		}
		tun, err := in.FormTunnel(p.Length)
		if err != nil {
			return 0, lat, att, err
		}
		origins[node.Ref().Addr] = struct{}{}
		cache := core.NewHintCache()
		if err := cache.Refresh(w.Svc, tun); err != nil {
			return 0, lat, att, err
		}
		var dest id.ID
		ts.Bytes(dest[:])
		env, err := core.BuildForwardWithCache(tun, cache, dest, make([]byte, p.FileBytes), ts)
		if err != nil {
			return 0, lat, att, err
		}
		start := simnet.Time(fi) * simnet.Time(spacing)
		flows = append(flows, flowPlan{origin: node.Ref().Addr, env: env, start: start})
		if ts.Float64() < p.CrashFrac {
			mid := tun.Hops[len(tun.Hops)/2].HopID
			if hn, ok := w.Dir.HopNode(mid); ok {
				candidates = append(candidates, crashPlan{addr: hn.Ref().Addr, at: start + simnet.Time(300*time.Millisecond)})
			}
		}
	}

	// Crash victims must not be flow origins (an initiator that dies takes
	// its own measurement with it), and each address crashes once.
	var crashes []simnet.CrashWindow
	claimed := make(map[simnet.Addr]struct{})
	for _, c := range candidates {
		if _, isOrigin := origins[c.addr]; isOrigin {
			continue
		}
		if _, dup := claimed[c.addr]; dup {
			continue
		}
		claimed[c.addr] = struct{}{}
		crashes = append(crashes, simnet.CrashWindow{
			Addr: c.addr, At: c.at, Restart: c.at + simnet.Time(30*time.Second),
		})
	}
	net.InstallFaults(&simnet.FaultPlan{
		Seed:     stream.Seed(),
		LossRate: loss,
		Crashes:  crashes,
		OnCrash: func(a simnet.Addr) {
			// The overlay notices the crash and THA replicas migrate, so
			// hop anchors fail over (§6). The restarted node never rejoins:
			// it lingers as a reachable non-member, the worst case for
			// stale address hints.
			_ = w.OV.Fail(a)
		},
	})

	type flowResult struct {
		got bool
		out core.Outcome
	}
	results := make([]flowResult, len(flows))
	for fi := range flows {
		fi := fi
		f := flows[fi]
		kernel.At(f.start, func() {
			eng.SendForward(f.origin, f.env, func(o core.Outcome) {
				results[fi] = flowResult{got: true, out: o}
			})
		})
	}
	if err := kernel.Run(); err != nil {
		return 0, lat, att, err
	}

	delivered := 0
	for fi, r := range results {
		if !r.got || !r.out.Delivered {
			continue
		}
		delivered++
		lat.Add((r.out.At - flows[fi].start).Seconds())
		att.Add(float64(r.out.Attempts))
	}
	return float64(delivered) / float64(len(flows)), lat, att, nil
}
