package experiments

import (
	"testing"
)

// The zero value of every figure's parameter struct must select the
// paper's published settings — these tests are the executable record of
// that mapping.
func TestFigureDefaultsMatchPaper(t *testing.T) {
	f2 := Fig2Params{}.withDefaults()
	if f2.N != 10_000 || f2.Tunnels != 5_000 || f2.Length != 5 {
		t.Fatalf("fig2 defaults %+v", f2)
	}
	if len(f2.Ks) != 2 || f2.Ks[0] != 3 || f2.Ks[1] != 5 {
		t.Fatalf("fig2 must compare k=3 and k=5: %v", f2.Ks)
	}

	f3 := Fig3Params{}.withDefaults()
	if f3.N != 10_000 || f3.Tunnels != 5_000 || f3.Length != 5 || f3.K != 3 {
		t.Fatalf("fig3 defaults %+v", f3)
	}

	f4a := Fig4aParams{}.withDefaults()
	if f4a.Malicious != 0.1 || f4a.Length != 5 {
		t.Fatalf("fig4a defaults %+v", f4a)
	}
	f4b := Fig4bParams{}.withDefaults()
	if f4b.K != 3 || f4b.Malicious != 0.1 {
		t.Fatalf("fig4b defaults %+v", f4b)
	}

	f5 := Fig5Params{}.withDefaults()
	if f5.LeavePerUnit != 100 || f5.JoinPerUnit != 100 || f5.K != 3 || f5.Malicious != 0.1 {
		t.Fatalf("fig5 defaults %+v (paper: 100 leaves + 100 joins per unit, k=3, p=0.1)", f5)
	}

	f6 := Fig6Params{}.withDefaults()
	if f6.FileBytes != 250_000 {
		t.Fatalf("fig6 file size %d, paper transfers 2 Mb = 250,000 bytes", f6.FileBytes)
	}
	if len(f6.Lengths) != 2 || f6.Lengths[0] != 3 || f6.Lengths[1] != 5 {
		t.Fatalf("fig6 lengths %v, paper plots l=3 and l=5", f6.Lengths)
	}
	if f6.Sizes[len(f6.Sizes)-1] != 10_000 {
		t.Fatalf("fig6 sizes %v must reach 10,000 nodes", f6.Sizes)
	}
}

func TestExtensionDefaultsSane(t *testing.T) {
	if p := (ExtSecRouteParams{}).withDefaults(); p.N == 0 || len(p.Fracs) == 0 {
		t.Fatalf("ext-secroute defaults")
	}
	if p := (ExtDetectParams{}).withDefaults(); p.Length != 5 {
		t.Fatalf("ext-detect default length %d", p.Length)
	}
	if p := (ExtCoverParams{}).withDefaults(); p.Rates[0] != 0 {
		t.Fatalf("ext-cover must include the no-cover baseline first: %v", p.Rates)
	}
	if p := (ExtAnonParams{}).withDefaults(); p.Length != 5 || p.K != 3 {
		t.Fatalf("ext-anon defaults %+v", p)
	}
	if p := (ExtSessionParams{}).withDefaults(); p.Exchanges != 20 {
		t.Fatalf("ext-session defaults %+v", p)
	}
	if p := (ExtInflightParams{}).withDefaults(); p.MeanGaps[0] != 0 || p.FileBytes != 250_000 {
		t.Fatalf("ext-inflight defaults %+v", p)
	}
}
