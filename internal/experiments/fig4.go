package experiments

import (
	"fmt"

	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/trace"
)

// Fig4aParams configures Figure 4(a): corrupted tunnels vs replication
// factor k, at a fixed malicious fraction p=0.1. "As the replication
// factor increases, the fraction of tunnels that are corrupted increases"
// — availability's price.
type Fig4aParams struct {
	N         int
	Tunnels   int
	Length    int
	Ks        []int
	Malicious float64
	Trials    int
	Seed      uint64
}

func (p Fig4aParams) withDefaults() Fig4aParams {
	if p.N == 0 {
		p.N = 10_000
	}
	if p.Tunnels == 0 {
		p.Tunnels = 5_000
	}
	if p.Length == 0 {
		p.Length = 5
	}
	if len(p.Ks) == 0 {
		p.Ks = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if p.Malicious == 0 {
		p.Malicious = 0.1
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Fig4a runs the replication-factor sweep. Each k needs its own world
// (replication is a storage-layer parameter).
func Fig4a(p Fig4aParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Fig 4a: corrupted tunnels vs replication factor (N=%d, tunnels=%d, l=%d, p=%.2f, trials=%d)",
			p.N, p.Tunnels, p.Length, p.Malicious, p.Trials),
		"k", SeriesCorrupted)
	type job struct{ kIdx, trial int }
	var jobs []job
	for ki := range p.Ks {
		for tr := 0; tr < p.Trials; tr++ {
			jobs = append(jobs, job{ki, tr})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		k := p.Ks[j.kIdx]
		stream := root.SplitN(fmt.Sprintf("fig4a-k%d", k), j.trial)
		w, err := BuildWorldIn(mem, p.N, k, stream.Split("world"))
		if err != nil {
			return err
		}
		ts, err := DeployTunnels(w, p.Tunnels, p.Length, stream.Split("tunnels"))
		if err != nil {
			return err
		}
		w.Col.MarkFraction(p.Malicious, stream.Split("mark"))
		tbl.Add(float64(k), SeriesCorrupted, w.Col.CorruptionRate(ts.Tunnels))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}

// Fig4bParams configures Figure 4(b): corrupted tunnels vs tunnel length,
// k=3, p=0.1. "The fraction decreases with the increasing tunnel length,
// and the tunnel length of 5 catches the knee of the curve."
type Fig4bParams struct {
	N         int
	Tunnels   int
	Lengths   []int
	K         int
	Malicious float64
	Trials    int
	Seed      uint64
}

func (p Fig4bParams) withDefaults() Fig4bParams {
	if p.N == 0 {
		p.N = 10_000
	}
	if p.Tunnels == 0 {
		p.Tunnels = 5_000
	}
	if len(p.Lengths) == 0 {
		p.Lengths = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if p.K == 0 {
		p.K = 3
	}
	if p.Malicious == 0 {
		p.Malicious = 0.1
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Fig4b runs the tunnel-length sweep. Lengths share one world per trial:
// tunnel length is owner-side, so each length deploys its own tunnel
// population into the same network, before the adversary is marked.
func Fig4b(p Fig4bParams) (*trace.Table, error) {
	p = p.withDefaults()
	tbl := newSyncTable(
		fmt.Sprintf("Fig 4b: corrupted tunnels vs tunnel length (N=%d, tunnels=%d, k=%d, p=%.2f, trials=%d)",
			p.N, p.Tunnels, p.K, p.Malicious, p.Trials),
		"l", SeriesCorrupted)
	root := rng.New(p.Seed)
	err := ParallelScratch(p.Trials, func(trial int, mem *pastry.Scratch) error {
		stream := root.SplitN("fig4b", trial)
		w, err := BuildWorldIn(mem, p.N, p.K, stream.Split("world"))
		if err != nil {
			return err
		}
		sets := make(map[int]*TunnelSet, len(p.Lengths))
		for _, l := range p.Lengths {
			ts, err := DeployTunnels(w, p.Tunnels, l, stream.SplitN("tunnels", l))
			if err != nil {
				return err
			}
			sets[l] = ts
		}
		w.Col.MarkFraction(p.Malicious, stream.Split("mark"))
		for _, l := range p.Lengths {
			tbl.Add(float64(l), SeriesCorrupted, w.Col.CorruptionRate(sets[l].Tunnels))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl.Table(), nil
}
