package experiments

import (
	"fmt"
	"sync"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/trace"
)

// Fig6Params configures Figure 6: transfer latency of a 2 Mb file vs
// network size, for overt routing, TAP's basic tunneling, and TAP's
// performance-optimized tunneling, at tunnel lengths 3 and 5. Links have
// 1–230 ms latency and 1.5 Mb/s bandwidth, as in the paper.
type Fig6Params struct {
	Sizes     []int // network sizes (paper: 100 .. 10,000)
	Lengths   []int // tunnel lengths (paper: 3 and 5)
	K         int
	FileBytes int // paper: 2 Mb = 250,000 bytes
	Transfers int // transfers measured per simulation (paper: 1,000)
	Sims      int // simulations per size (paper: 30)
	Seed      uint64
	// WithTails adds a p95 series per mode alongside the means, for tail
	// latency analysis beyond the paper's mean-only plot.
	WithTails bool
	// UplinkContention enables per-node uplink queuing in the network
	// model; off reproduces the paper's independent-transfer assumption.
	UplinkContention bool
}

func (p Fig6Params) withDefaults() Fig6Params {
	if len(p.Sizes) == 0 {
		p.Sizes = []int{100, 300, 1000, 3000, 10000}
	}
	if len(p.Lengths) == 0 {
		p.Lengths = []int{3, 5}
	}
	if p.K == 0 {
		p.K = 3
	}
	if p.FileBytes == 0 {
		p.FileBytes = 250_000
	}
	if p.Transfers == 0 {
		p.Transfers = 20
	}
	if p.Sims == 0 {
		p.Sims = 3
	}
	if p.Seed == 0 {
		p.Seed = 2004
	}
	return p
}

// Series names for Figure 6.
const SeriesOvert = "overt"

func seriesBasic(l int) string { return fmt.Sprintf("TAP_basic(l=%d)", l) }
func seriesOpt(l int) string   { return fmt.Sprintf("TAP_opt(l=%d)", l) }

// Fig6 runs the latency experiment and reports mean transfer time in
// seconds per network size and mode.
func Fig6(p Fig6Params) (*trace.Table, error) {
	p = p.withDefaults()
	series := []string{SeriesOvert}
	for _, l := range p.Lengths {
		series = append(series, seriesBasic(l))
	}
	for _, l := range p.Lengths {
		series = append(series, seriesOpt(l))
	}
	baseSeries := append([]string(nil), series...)
	if p.WithTails {
		for _, s := range baseSeries {
			series = append(series, s+"_p95")
		}
	}
	tbl := newSyncTable(
		fmt.Sprintf("Fig 6: 2Mb transfer time (s) vs network size (k=%d, %d sims x %d transfers, 1-230ms links @1.5Mb/s)",
			p.K, p.Sims, p.Transfers),
		"nodes", series...)

	// Tail collection across jobs.
	type sampleKey struct {
		x      float64
		series string
	}
	var tailMu sync.Mutex
	tails := make(map[sampleKey]*trace.Sample)
	record := func(x float64, s string, v float64) {
		tbl.Add(x, s, v)
		if !p.WithTails {
			return
		}
		tailMu.Lock()
		key := sampleKey{x, s}
		smp := tails[key]
		if smp == nil {
			smp = &trace.Sample{}
			tails[key] = smp
		}
		smp.Add(v)
		tailMu.Unlock()
	}

	type job struct{ sizeIdx, sim int }
	var jobs []job
	for si := range p.Sizes {
		for sim := 0; sim < p.Sims; sim++ {
			jobs = append(jobs, job{si, sim})
		}
	}
	root := rng.New(p.Seed)
	err := ParallelScratch(len(jobs), func(i int, mem *pastry.Scratch) error {
		j := jobs[i]
		size := p.Sizes[j.sizeIdx]
		stream := root.SplitN(fmt.Sprintf("fig6-n%d", size), j.sim)
		w, err := BuildWorldIn(mem, size, p.K, stream.Split("world"))
		if err != nil {
			return err
		}
		kernel := simnet.NewKernel()
		kernel.MaxSteps = 0
		net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(stream.Split("links").Seed()), w.OV.NumAddrs())
		net.UplinkContention = p.UplinkContention
		w.Svc.Net = net
		eng := core.NewNetEngine(w.Svc, net)

		maxLen := 0
		for _, l := range p.Lengths {
			if l > maxLen {
				maxLen = l
			}
		}

		run := func(send func(done func(core.Outcome))) (time.Duration, error) {
			start := kernel.Now()
			var out core.Outcome
			got := false
			send(func(o core.Outcome) { out = o; got = true })
			if err := kernel.Run(); err != nil {
				return 0, err
			}
			if !got || !out.Delivered {
				return 0, fmt.Errorf("experiments: fig6 transfer failed (%s)", out.FailedAt)
			}
			return out.At - start, nil
		}

		tstream := stream.Split("transfers")
		payload := make([]byte, p.FileBytes)
		for tr := 0; tr < p.Transfers; tr++ {
			node := w.OV.RandomLive(tstream)
			in, err := core.NewInitiator(w.Svc, node, tstream.SplitN("init", tr))
			if err != nil {
				return err
			}
			if err := in.DeployDirect(maxLen + 3); err != nil {
				return err
			}
			var fileID id.ID
			tstream.Bytes(fileID[:])

			// Overt transfer over the routing infrastructure.
			d, err := run(func(done func(core.Outcome)) {
				eng.SendOvert(node.Ref().Addr, fileID, p.FileBytes, done)
			})
			if err != nil {
				return err
			}
			record(float64(size), SeriesOvert, d.Seconds())

			for _, l := range p.Lengths {
				tun, err := in.FormTunnel(l)
				if err != nil {
					return err
				}
				// Basic tunneling: hopids only.
				env, err := core.BuildForward(tun, nil, fileID, payload, tstream)
				if err != nil {
					return err
				}
				d, err := run(func(done func(core.Outcome)) {
					eng.SendForward(node.Ref().Addr, env, done)
				})
				if err != nil {
					return err
				}
				record(float64(size), seriesBasic(l), d.Seconds())

				// Optimized tunneling: fresh address hints per §5.
				cache := core.NewHintCache()
				if err := cache.Refresh(w.Svc, tun); err != nil {
					return err
				}
				optEnv, err := core.BuildForwardWithCache(tun, cache, fileID, payload, tstream)
				if err != nil {
					return err
				}
				d, err = run(func(done func(core.Outcome)) {
					eng.SendForward(node.Ref().Addr, optEnv, done)
				})
				if err != nil {
					return err
				}
				record(float64(size), seriesOpt(l), d.Seconds())
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if p.WithTails {
		for key, smp := range tails {
			tbl.Add(key.x, key.series+"_p95", smp.P95())
		}
	}
	return tbl.Table(), nil
}
