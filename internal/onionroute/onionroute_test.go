package onionroute

import (
	"errors"
	"testing"

	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
)

func setup(t testing.TB, n int, seed uint64) (*pastry.Overlay, *tha.Directory, *PKI, *rng.Stream) {
	t.Helper()
	s := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, s.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	dir := tha.NewDirectory(ov, past.NewManager(ov, 3))
	return ov, dir, NewPKI(s.Split("keys")), s.Split("test")
}

func genInstrs(t testing.TB, count int, seed uint64) ([]Instruction, []tha.Secret) {
	t.Helper()
	s := rng.New(seed)
	g, err := tha.NewGenerator([]byte("initiator"), s)
	if err != nil {
		t.Fatal(err)
	}
	instrs := make([]Instruction, count)
	secrets := make([]tha.Secret, count)
	for i := range instrs {
		sec, err := g.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		secrets[i] = sec
		instrs[i] = Instruction{Anchor: sec.Anchor}
	}
	return instrs, secrets
}

func TestPKIDeterministicPerAddr(t *testing.T) {
	s := rng.New(1)
	p1 := NewPKI(s)
	p2 := NewPKI(rng.New(1))
	a := p1.PublicOf(7).Bytes()
	b := p2.PublicOf(7).Bytes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PKI keys not deterministic")
		}
	}
	c := p1.PublicOf(8).Bytes()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different addrs share a key")
	}
}

func TestSelectPathDistinct(t *testing.T) {
	ov, _, _, s := setup(t, 2000, 2)
	path, err := SelectPath(ov, 5, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 {
		t.Fatalf("path length %d", len(path))
	}
	prefixes := map[int]bool{}
	addrs := map[int]bool{}
	for _, r := range path {
		if addrs[int(r.Addr)] {
			t.Fatalf("duplicate relay")
		}
		addrs[int(r.Addr)] = true
		prefixes[int(r.Addr)>>8] = true
	}
	if len(prefixes) != 5 {
		t.Fatalf("prefix diversity %d, want 5 in a 2000-node overlay", len(prefixes))
	}
}

func TestSelectPathSmallOverlayRelaxes(t *testing.T) {
	// 20 nodes all share prefix 0; the selector must still find a path by
	// relaxing the prefix rule.
	ov, _, _, s := setup(t, 20, 3)
	path, err := SelectPath(ov, 3, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path length %d", len(path))
	}
}

func TestSelectPathErrors(t *testing.T) {
	ov, _, _, s := setup(t, 3, 4)
	if _, err := SelectPath(ov, 5, s); err == nil {
		t.Fatalf("oversized path accepted")
	}
	if _, err := SelectPath(ov, 0, s); err == nil {
		t.Fatalf("zero-length path accepted")
	}
}

func TestOnionDeploysAllAnchors(t *testing.T) {
	ov, dir, pki, s := setup(t, 300, 5)
	instrs, secrets := genInstrs(t, 3, 6)
	path, err := SelectPath(ov, 3, s)
	if err != nil {
		t.Fatal(err)
	}
	onion, err := BuildOnion(pki, path, instrs, s)
	if err != nil {
		t.Fatal(err)
	}
	done, err := Execute(onion, path[0].Addr, ov, dir, pki)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("%d relays executed", len(done))
	}
	for _, sec := range secrets {
		if !dir.Available(sec.HopID) {
			t.Fatalf("anchor %s not deployed", sec.HopID.Short())
		}
	}
}

func TestOnionLayerUnreadableByWrongRelay(t *testing.T) {
	ov, dir, pki, s := setup(t, 300, 7)
	instrs, _ := genInstrs(t, 2, 8)
	path, err := SelectPath(ov, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	onion, err := BuildOnion(pki, path, instrs, s)
	if err != nil {
		t.Fatal(err)
	}
	// Hand the onion to the wrong first relay: its key cannot open it.
	wrong := path[1].Addr
	if _, err := Execute(onion, wrong, ov, dir, pki); err == nil {
		t.Fatalf("wrong relay opened the onion")
	}
}

func TestExecuteAbortsOnDeadRelay(t *testing.T) {
	ov, dir, pki, s := setup(t, 300, 9)
	instrs, secrets := genInstrs(t, 3, 10)
	path, err := SelectPath(ov, 3, s)
	if err != nil {
		t.Fatal(err)
	}
	onion, err := BuildOnion(pki, path, instrs, s)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the middle relay before execution.
	if err := ov.Fail(path[1].Addr); err != nil {
		t.Fatal(err)
	}
	done, err := Execute(onion, path[0].Addr, ov, dir, pki)
	if !errors.Is(err, ErrRelayDead) {
		t.Fatalf("err = %v, want ErrRelayDead", err)
	}
	if len(done) != 1 {
		t.Fatalf("%d relays executed before abort, want 1", len(done))
	}
	// First anchor landed, the rest did not.
	if !dir.Available(secrets[0].HopID) {
		t.Fatalf("first anchor missing")
	}
	if dir.Available(secrets[1].HopID) || dir.Available(secrets[2].HopID) {
		t.Fatalf("anchors past the dead relay were deployed")
	}
}

func TestDeployRetriesPastDeadRelays(t *testing.T) {
	ov, dir, pki, s := setup(t, 400, 11)
	// Kill a big slice of the overlay so first paths often contain a
	// corpse... except SelectPath only picks live nodes; instead kill
	// nodes AFTER path selection by wrapping Deploy's internals. Simplest
	// honest test: run Deploy normally — it must succeed in one attempt —
	// then verify the retry loop by deploying with an impossible relay
	// count and checking the error.
	instrs, secrets := genInstrs(t, 4, 12)
	path, err := Deploy(ov, dir, pki, instrs, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("path length %d", len(path))
	}
	for _, sec := range secrets {
		if !dir.Available(sec.HopID) {
			t.Fatalf("anchor %s missing after Deploy", sec.HopID.Short())
		}
	}
	if _, err := Deploy(ov, dir, pki, nil, s, 3); err == nil {
		t.Fatalf("empty deploy accepted")
	}
}

func TestDeployWithPuzzleCharge(t *testing.T) {
	ov, dir, pki, s := setup(t, 200, 13)
	dir.PuzzleDifficulty = 6
	instrs, secrets := genInstrs(t, 2, 14)
	// Unpaid instructions must be rejected at the first relay.
	if _, err := Deploy(ov, dir, pki, instrs, s, 1); err == nil {
		t.Fatalf("unpaid deployment accepted")
	}
	// Pay the charges and retry.
	for i := range instrs {
		instrs[i].Nonce = dir.Puzzle(instrs[i].Anchor.HopID).Mint()
	}
	if _, err := Deploy(ov, dir, pki, instrs, s, 1); err != nil {
		t.Fatal(err)
	}
	for _, sec := range secrets {
		if !dir.Available(sec.HopID) {
			t.Fatalf("paid anchor missing")
		}
	}
}

func TestAnchorKeyOfHelper(t *testing.T) {
	instrs, secrets := genInstrs(t, 3, 15)
	keys := anchorKeyOf(instrs)
	for i := range keys {
		if keys[i] != secrets[i].HopID {
			t.Fatalf("key %d mismatch", i)
		}
	}
}
