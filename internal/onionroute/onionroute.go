// Package onionroute implements the classic Onion Routing bootstrap TAP
// uses to deploy its first tunnel hop anchors anonymously (§3.3).
//
// Before a node has any working TAP tunnel it cannot deploy anchors
// anonymously through one, so it builds a conventional onion over a
// handful of directly-addressed relay nodes, "relying on a public key
// infrastructure on a P2P system by assuming each node has a pair of
// private and public keys". Each onion layer is sealed to one relay's
// public key and carries an instruction to store one anchor, plus the next
// hop. Unlike TAP tunnels, this path is brittle by design: if any relay is
// dead the deployment aborts and the initiator simply retries with a
// different path — "the deploying process is not performance critical".
//
// Relay selection follows the Tarzan-style rule the paper suggests:
// relays are chosen with distinct address prefixes so one operator (one
// subnet) is unlikely to own the whole path.
package onionroute

import (
	"errors"
	"fmt"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
	"tap/internal/wire"
)

// PKI hands out the per-node asymmetric keypairs the bootstrap assumes.
// Keys are derived deterministically and lazily from a seed stream, so a
// 10,000-node overlay does not pay 10,000 key generations up front.
type PKI struct {
	root *rng.Stream
	keys map[simnet.Addr]*crypt.BoxKeyPair
}

// NewPKI creates a key authority rooted at stream.
func NewPKI(stream *rng.Stream) *PKI {
	return &PKI{root: stream.Split("pki"), keys: make(map[simnet.Addr]*crypt.BoxKeyPair)}
}

// KeyOf returns (generating on first use) the keypair of the node at addr.
func (p *PKI) KeyOf(addr simnet.Addr) *crypt.BoxKeyPair {
	if kp, ok := p.keys[addr]; ok {
		return kp
	}
	kp, err := crypt.NewBoxKeyPair(p.root.SplitN("node", int(addr)))
	if err != nil {
		// X25519 keygen from a functioning reader cannot fail; treat as a
		// programming error.
		panic(fmt.Sprintf("onionroute: keygen for %d: %v", addr, err))
	}
	p.keys[addr] = kp
	return kp
}

// PublicOf returns the public key of the node at addr.
func (p *PKI) PublicOf(addr simnet.Addr) crypt.BoxPublicKey {
	return p.KeyOf(addr).Public()
}

// Instruction tells one relay to store one anchor, paying the given
// puzzle nonce.
type Instruction struct {
	Anchor tha.Anchor
	Nonce  uint64
}

func encodeInstruction(w *wire.Writer, ins Instruction) {
	w.ID(ins.Anchor.HopID)
	w.Blob(ins.Anchor.Key[:])
	w.Blob(ins.Anchor.PWHash[:])
	w.Uint64(ins.Nonce)
}

func decodeInstruction(r *wire.Reader) (Instruction, error) {
	var ins Instruction
	ins.Anchor.HopID = r.ID()
	copy(ins.Anchor.Key[:], r.Blob())
	copy(ins.Anchor.PWHash[:], r.Blob())
	ins.Nonce = r.Uint64()
	return ins, r.Err()
}

// SelectPath picks l distinct live relays with pairwise-distinct address
// prefixes (addr >> prefixShift stands in for an IP /16). It falls back to
// allowing prefix reuse only when the overlay is too small to avoid it.
func SelectPath(ov *pastry.Overlay, l int, stream *rng.Stream) ([]pastry.NodeRef, error) {
	if l <= 0 {
		return nil, errors.New("onionroute: path length must be positive")
	}
	if ov.Size() < l {
		return nil, fmt.Errorf("onionroute: overlay of %d nodes cannot host a %d-relay path", ov.Size(), l)
	}
	const prefixShift = 8
	usedPrefix := make(map[int]struct{}, l)
	usedAddr := make(map[simnet.Addr]struct{}, l)
	path := make([]pastry.NodeRef, 0, l)
	const maxTries = 4096
	for tries := 0; len(path) < l && tries < maxTries; tries++ {
		n := ov.RandomLive(stream)
		ref := n.Ref()
		if _, dup := usedAddr[ref.Addr]; dup {
			continue
		}
		prefix := int(ref.Addr) >> prefixShift
		if _, dup := usedPrefix[prefix]; dup {
			// Enforce prefix diversity while the overlay plausibly allows
			// it; relax near the end of the search.
			if tries < maxTries/2 {
				continue
			}
		}
		usedAddr[ref.Addr] = struct{}{}
		usedPrefix[prefix] = struct{}{}
		path = append(path, ref)
	}
	if len(path) < l {
		return nil, fmt.Errorf("onionroute: could not assemble a %d-relay path", l)
	}
	return path, nil
}

// BuildOnion seals one instruction per relay into a nested onion. Layer i
// can only be opened by path[i]; it reveals that relay's instruction and
// the address of the next relay (NoAddr at the tail).
func BuildOnion(pki *PKI, path []pastry.NodeRef, instrs []Instruction, stream *rng.Stream) ([]byte, error) {
	if len(path) != len(instrs) {
		return nil, fmt.Errorf("onionroute: %d relays but %d instructions", len(path), len(instrs))
	}
	if len(path) == 0 {
		return nil, errors.New("onionroute: empty path")
	}
	// Build from the innermost (tail) layer outward.
	var inner []byte
	for i := len(path) - 1; i >= 0; i-- {
		w := wire.NewWriter(tha.WireSize + 64 + len(inner))
		encodeInstruction(w, instrs[i])
		if i == len(path)-1 {
			w.Int64(int64(simnet.NoAddr))
		} else {
			w.Int64(int64(path[i+1].Addr))
		}
		w.Blob(inner)
		sealed, err := crypt.BoxSeal(pki.PublicOf(path[i].Addr), stream, w.Bytes())
		if err != nil {
			return nil, fmt.Errorf("onionroute: sealing layer %d: %w", i, err)
		}
		inner = sealed
	}
	return inner, nil
}

// Errors from onion execution.
var (
	// ErrRelayDead aborts a deployment when a path relay has left the
	// system; the caller retries over a fresh path.
	ErrRelayDead = errors.New("onionroute: relay on bootstrap path is dead")
)

// Execute walks the onion through its relays: each live relay opens its
// layer with its private key, deploys the contained anchor, and hands the
// inner onion to the next relay. Any dead relay or rejected deployment
// aborts the walk with an error; anchors already stored by earlier relays
// remain (the initiator deletes them with their passwords if it cares).
// It returns the addresses of relays that successfully executed.
func Execute(onion []byte, first simnet.Addr, ov *pastry.Overlay, dir *tha.Directory, pki *PKI) ([]simnet.Addr, error) {
	var done []simnet.Addr
	addr := first
	blob := onion
	for {
		node := ov.Node(addr)
		if node == nil || !node.Alive() {
			return done, fmt.Errorf("%w: addr %d", ErrRelayDead, addr)
		}
		plain, err := pki.KeyOf(addr).BoxOpen(blob)
		if err != nil {
			return done, fmt.Errorf("onionroute: relay %d cannot open layer: %w", addr, err)
		}
		r := wire.NewReader(plain)
		ins, err := decodeInstruction(r)
		if err != nil {
			return done, fmt.Errorf("onionroute: relay %d: malformed instruction: %w", addr, err)
		}
		next := simnet.Addr(r.Int64())
		inner := r.Blob()
		if err := r.Done(); err != nil {
			return done, fmt.Errorf("onionroute: relay %d: %w", addr, err)
		}
		if err := dir.Deploy(ins.Anchor, ins.Nonce); err != nil {
			return done, fmt.Errorf("onionroute: relay %d deploy: %w", addr, err)
		}
		done = append(done, addr)
		if next == simnet.NoAddr {
			return done, nil
		}
		addr = next
		blob = append([]byte(nil), inner...)
	}
}

// Deploy is the complete bootstrap operation: generate a path, build the
// onion carrying one instruction per relay, and execute it, retrying with
// fresh paths up to maxRetries times when a relay turns out to be dead.
// It returns the path used.
//
// The instruction count must not exceed the path length (one anchor per
// relay, per the paper's example); callers with more anchors run Deploy
// repeatedly — or, once their first tunnel works, use the tunnel instead.
func Deploy(ov *pastry.Overlay, dir *tha.Directory, pki *PKI, instrs []Instruction, stream *rng.Stream, maxRetries int) ([]pastry.NodeRef, error) {
	if len(instrs) == 0 {
		return nil, errors.New("onionroute: nothing to deploy")
	}
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		path, err := SelectPath(ov, len(instrs), stream)
		if err != nil {
			return nil, err
		}
		onion, err := BuildOnion(pki, path, instrs, stream)
		if err != nil {
			return nil, err
		}
		if _, err := Execute(onion, path[0].Addr, ov, dir, pki); err != nil {
			lastErr = err
			continue
		}
		return path, nil
	}
	return nil, fmt.Errorf("onionroute: deployment failed after %d retries: %w", maxRetries, lastErr)
}

// anchorKeyOf is a tiny helper for tests: the hopid list of a batch.
func anchorKeyOf(instrs []Instruction) []id.ID {
	out := make([]id.ID, len(instrs))
	for i, ins := range instrs {
		out[i] = ins.Anchor.HopID
	}
	return out
}
