package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(1)
	b := New(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("alpha")
	c2 := root.Split("beta")
	if c1.Seed() == c2.Seed() {
		t.Fatalf("different labels produced the same child seed")
	}
	// Same label twice must be identical.
	c3 := New(7).Split("alpha")
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c3.Uint64() {
			t.Fatalf("same label produced different streams at draw %d", i)
		}
	}
}

func TestSplitNDistinct(t *testing.T) {
	root := New(9)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := root.SplitN("trial", i)
		if seen[s.Seed()] {
			t.Fatalf("duplicate child seed at index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestSplitDoesNotConsumeParent(t *testing.T) {
	a := New(3)
	b := New(3)
	_ = a.Split("x") // must not advance a's state
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split consumed parent state")
		}
	}
}

func TestDurationRangeMsBounds(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		ms := s.DurationRangeMs(1, 230)
		if ms < 1 || ms > 230 {
			t.Fatalf("latency %d out of [1,230]", ms)
		}
	}
}

func TestDurationRangeMsDegenerate(t *testing.T) {
	s := New(11)
	if got := s.DurationRangeMs(5, 5); got != 5 {
		t.Fatalf("degenerate range returned %d", got)
	}
}

func TestDurationRangeMsPanicsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(1).DurationRangeMs(10, 5)
}

func TestPermFirstK(t *testing.T) {
	s := New(13)
	for _, tc := range []struct{ n, k int }{{10, 3}, {10, 10}, {10, 0}, {5, 9}, {10000, 5}} {
		out := s.PermFirstK(tc.n, tc.k)
		wantLen := tc.k
		if wantLen > tc.n {
			wantLen = tc.n
		}
		if len(out) != wantLen {
			t.Fatalf("n=%d k=%d: len=%d want %d", tc.n, tc.k, len(out), wantLen)
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= tc.n {
				t.Fatalf("index %d out of range [0,%d)", v, tc.n)
			}
			if seen[v] {
				t.Fatalf("duplicate index %d", v)
			}
			seen[v] = true
		}
	}
}

func TestPermFirstKUniformish(t *testing.T) {
	// Each index should be selected roughly k/n of the time.
	s := New(17)
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range s.PermFirstK(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		ratio := float64(c) / want
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("index %d selected %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestPairwiseMsSymmetricAndBounded(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		x := PairwiseMs(seed, a, b, 1, 230)
		y := PairwiseMs(seed, b, a, 1, 230)
		return x == y && x >= 1 && x <= 230
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseMsVaries(t *testing.T) {
	seen := map[int]bool{}
	for i := uint64(0); i < 200; i++ {
		seen[PairwiseMs(1, 0, i, 1, 230)] = true
	}
	if len(seen) < 50 {
		t.Fatalf("pairwise latencies too concentrated: %d distinct values", len(seen))
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(19)
	const trials = 50000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if p < 0.28 || p > 0.32 {
		t.Fatalf("Bool(0.3) hit rate %.3f", p)
	}
}
