// Package rng provides the deterministic randomness plumbing for the whole
// simulation.
//
// Every experiment trial in this repository must be a pure function of
// (seed, parameters): the paper's figures are Monte-Carlo estimates, and we
// want each point to be re-runnable bit-for-bit. This package therefore
// wraps math/rand behind named, splittable streams — a parent stream can
// derive an independent child stream from a label, so concurrent trial
// workers never share state and adding a new consumer of randomness does
// not perturb existing ones.
//
// Nothing in the library may call the global math/rand functions or read
// wall-clock time; all randomness flows from a *Stream.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// Stream is a deterministic random stream. It wraps *rand.Rand and adds
// labeled splitting. A Stream is not safe for concurrent use; split one
// child per goroutine instead.
type Stream struct {
	*rand.Rand
	seed uint64
}

// New returns a Stream rooted at seed.
func New(seed uint64) *Stream {
	return &Stream{
		Rand: rand.New(rand.NewSource(int64(seed))),
		seed: seed,
	}
}

// Seed returns the seed this stream was rooted at.
func (s *Stream) Seed() uint64 { return s.seed }

// mix hashes a label and an index into a child seed. FNV-1a is cheap,
// stable across runs and platforms, and collision-resistant enough for
// seed derivation (we never derive more than a few million children).
func mix(seed uint64, label string, idx uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	h.Write([]byte(label))
	binary.BigEndian.PutUint64(buf[:], idx)
	h.Write(buf[:])
	return h.Sum64()
}

// Split derives an independent child stream identified by label. Two
// children with different labels are statistically independent; the same
// label always yields the same child.
func (s *Stream) Split(label string) *Stream {
	return New(mix(s.seed, label, 0))
}

// SplitN derives the idx-th independent child stream for label. Use this
// to hand one stream to each of N parallel trial workers.
func (s *Stream) SplitN(label string, idx int) *Stream {
	return New(mix(s.seed, label, uint64(idx)))
}

// Bytes fills p with random bytes.
func (s *Stream) Bytes(p []byte) {
	// rand.Rand.Read never returns an error.
	s.Read(p)
}

// DurationRangeMs returns a uniformly random integer number of
// milliseconds in [lo, hi], as used by the paper's link-latency model
// ("a random latency from 1 ms to 230 ms").
func (s *Stream) DurationRangeMs(lo, hi int) int {
	if hi < lo {
		panic("rng: inverted range")
	}
	return lo + s.Intn(hi-lo+1)
}

// Pick returns a uniformly random element index in [0, n).
func (s *Stream) Pick(n int) int { return s.Intn(n) }

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.Float64() < p }

// PermFirstK returns k distinct indices drawn uniformly from [0, n),
// using a partial Fisher-Yates so picking a few nodes out of 10^4 does
// not shuffle the whole range.
func (s *Stream) PermFirstK(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// For small k relative to n, rejection sampling beats allocating n ints.
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// PairwiseMs returns a deterministic pseudo-random latency in [lo, hi]
// milliseconds for the unordered pair (a, b), derived from seed. It lets a
// 10^4-node network have stable per-link latencies without storing an
// O(N^2) matrix. The latency is symmetric: PairwiseMs(s,a,b) ==
// PairwiseMs(s,b,a).
func PairwiseMs(seed uint64, a, b uint64, lo, hi int) int {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], seed)
	binary.BigEndian.PutUint64(buf[8:], a)
	binary.BigEndian.PutUint64(buf[16:], b)
	h.Write(buf[:])
	span := uint64(hi - lo + 1)
	return lo + int(h.Sum64()%span)
}
