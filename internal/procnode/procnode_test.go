package procnode

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"

	"tap/internal/core"
	"tap/internal/tha"
	"tap/internal/transport"
	"tap/internal/transport/tcptransport"
)

// startOverlay brings up n nodes, each with its own tcptransport over
// localhost TCP, all fully meshed through a shared peer table — the same
// wiring the bulletin board performs for real processes.
func startOverlay(t *testing.T, n int) []*Node {
	t.Helper()
	trs := make([]*tcptransport.Transport, n)
	peers := make(map[transport.Addr]string, n)
	for i := 0; i < n; i++ {
		tr := tcptransport.New(tcptransport.Config{Codec: Codec{}, Logf: t.Logf})
		t.Cleanup(tr.Close)
		hostport, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		peers[transport.Addr(i)] = hostport
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = New(trs[i], transport.Addr(i), t.Logf, nil)
		nodes[i].SetPeers(peers)
	}
	return nodes
}

func TestNodeIDDeterministic(t *testing.T) {
	if NodeID(3) != NodeID(3) {
		t.Fatal("NodeID not deterministic")
	}
	if NodeID(3) == NodeID(4) {
		t.Fatal("NodeID collision across addresses")
	}
}

func TestAnchorDeployAck(t *testing.T) {
	nodes := startOverlay(t, 2)
	client, holder := nodes[0], nodes[1]

	gen, err := tha.NewGenerator(client.ID[:], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := gen.Generate(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	client.tr.Send(client.Addr, holder.Addr, &AnchorMsg{Anchor: sec.Anchor})
	if !client.awaitAck(sec.HopID, 5*time.Second) {
		t.Fatal("no ack for deployed anchor")
	}
	if holder.AnchorCount() != 1 {
		t.Fatalf("holder stores %d anchors", holder.AnchorCount())
	}
}

func TestRoundTripStreamSingleChunk(t *testing.T) {
	nodes := startOverlay(t, 7)
	client := nodes[0]
	payload := []byte("the quick brown fox jumps over the lazy dog")
	echo, err := client.RoundTripStream(StreamConfig{
		ForwardHops: []transport.Addr{1, 2, 3},
		ReplyHops:   []transport.Addr{4, 5},
		Dest:        6,
	}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, payload) {
		t.Fatalf("echo mismatch: %q", echo)
	}
}

func TestRoundTripStreamMultiChunk(t *testing.T) {
	nodes := startOverlay(t, 6)
	client := nodes[0]
	payload := bytes.Repeat([]byte("tunnel-hop-anchors!"), 200) // ~3.8 KiB
	echo, err := client.RoundTripStream(StreamConfig{
		ForwardHops: []transport.Addr{1, 2},
		ReplyHops:   []transport.Addr{3, 4},
		Dest:        5,
		ChunkSize:   256,
	}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, payload) {
		t.Fatalf("echo mismatch: %d vs %d bytes", len(echo), len(payload))
	}
}

// TestRelayCannotReadPayload is the anonymity sanity check in process
// form: a relay hop sees only the envelope addressed to its own hopid —
// sealed bytes that do not contain the plaintext.
func TestRelayCannotReadPayload(t *testing.T) {
	nodes := startOverlay(t, 4)
	client := nodes[0]

	// Capture what node 1 (the first forward hop) receives by wrapping
	// its handler. Detach the node and interpose.
	relay := nodes[1]
	var seen [][]byte
	relay.tr.Detach(relay.Addr)
	relay.tr.Attach(relay.Addr, transport.HandlerFunc(func(from transport.Addr, msg transport.Message) {
		if env, ok := msg.(*core.Envelope); ok {
			seen = append(seen, append([]byte(nil), env.Sealed...))
		}
		relay.Deliver(from, msg)
	}))

	secret := []byte("SECRET-PAYLOAD-MARKER")
	echo, err := client.RoundTripStream(StreamConfig{
		ForwardHops: []transport.Addr{1, 2},
		ReplyHops:   []transport.Addr{2, 1},
		Dest:        3,
	}, secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, secret) {
		t.Fatal("echo mismatch")
	}
	if len(seen) == 0 {
		t.Fatal("interposer saw no envelopes")
	}
	for i, s := range seen {
		if bytes.Contains(s, secret) {
			t.Fatalf("envelope %d leaks the plaintext payload", i)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var c Codec
	msgs := []transport.Message{
		&AnchorAck{HopID: NodeID(9)},
		&core.Envelope{HopID: NodeID(1), Hint: 4, Sealed: []byte("sealed"), Pad: 3},
		&core.ReplyEnvelope{Target: NodeID(2), Hint: transport.NoAddr, Onion: []byte("onion"), Data: []byte("data"), Pad: 1},
		&DataMsg{Dest: NodeID(3), Payload: []byte("payload")},
	}
	for _, m := range msgs {
		kind, payload, err := c.Encode(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, err := c.Decode(kind, payload)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		switch want := m.(type) {
		case *AnchorAck:
			if *got.(*AnchorAck) != *want {
				t.Fatalf("ack mismatch")
			}
		case *core.Envelope:
			g := got.(*core.Envelope)
			if g.HopID != want.HopID || g.Hint != want.Hint || !bytes.Equal(g.Sealed, want.Sealed) || g.Pad != want.Pad {
				t.Fatalf("envelope mismatch")
			}
		case *core.ReplyEnvelope:
			g := got.(*core.ReplyEnvelope)
			if g.Target != want.Target || g.Hint != want.Hint || !bytes.Equal(g.Onion, want.Onion) ||
				!bytes.Equal(g.Data, want.Data) || g.Pad != want.Pad {
				t.Fatalf("reply envelope mismatch")
			}
		case *DataMsg:
			g := got.(*DataMsg)
			if g.Dest != want.Dest || !bytes.Equal(g.Payload, want.Payload) {
				t.Fatalf("data mismatch")
			}
		}
	}
	if _, err := c.Decode(99, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
