package procnode

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"tap/internal/core"
	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/obs"
	"tap/internal/tha"
	"tap/internal/transport"
	"tap/internal/transport/tcptransport"
	"tap/internal/wire"
)

// NodeID derives a node's DHT identifier from its transport address.
// Every member computes the same mapping, which is what lets the
// full-membership index resolve exit destinations and reply tails
// without a directory service.
func NodeID(addr transport.Addr) id.ID {
	return id.HashString(fmt.Sprintf("tapnode/%d", addr))
}

// Node is one overlay member: an anchor store plus the relay logic for
// forward envelopes, reply envelopes, and exit payloads. Relay state
// (the anchor store) is touched only from the transport's dispatch loop
// — the seam's serialization contract, the same discipline the simulated
// engines rely on — so it needs no lock; only the membership index,
// which SetPeers writes from the joining goroutine, carries one.
type Node struct {
	Addr transport.Addr
	ID   id.ID

	tr   *tcptransport.Transport
	logf func(format string, args ...any)
	m    *nodeMetrics

	anchors map[id.ID]tha.Anchor

	// byID is the full-membership node-ID index. Unlike anchors it is
	// written off-loop (SetPeers runs on the joining goroutine), so it
	// carries its own lock.
	idMu sync.RWMutex
	byID map[id.ID]transport.Addr // nodeID → transport address

	// Initiator-side notification channels, consumed by RoundTripStream.
	acks    chan id.ID
	replies chan []byte
}

// New attaches a node at addr on tr. Pass a nil logf for silence and a
// nil reg to run without metrics (obs's no-op sink).
func New(tr *tcptransport.Transport, addr transport.Addr, logf func(format string, args ...any), reg *obs.Registry) *Node {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	n := &Node{
		Addr:    addr,
		ID:      NodeID(addr),
		tr:      tr,
		logf:    logf,
		m:       newNodeMetrics(reg),
		anchors: make(map[id.ID]tha.Anchor),
		byID:    map[id.ID]transport.Addr{NodeID(addr): addr},
		acks:    make(chan id.ID, 64),
		replies: make(chan []byte, 64),
	}
	tr.Attach(addr, n)
	return n
}

// SetPeers installs the bulletin board's peer table: transport endpoints
// for dialing and the node-ID index for destination resolution.
func (n *Node) SetPeers(peers map[transport.Addr]string) {
	n.idMu.Lock()
	defer n.idMu.Unlock()
	for a, hp := range peers {
		if a != n.Addr {
			n.tr.SetPeer(a, hp)
		}
		n.byID[NodeID(a)] = a
	}
}

// lookupID resolves a node ID through the membership index.
func (n *Node) lookupID(target id.ID) (transport.Addr, bool) {
	n.idMu.RLock()
	defer n.idMu.RUnlock()
	a, ok := n.byID[target]
	return a, ok
}

// AnchorCount reports how many anchors this node currently holds. Only
// meaningful from the dispatch loop or after traffic has quiesced.
func (n *Node) AnchorCount() int { return len(n.anchors) }

// Deliver implements transport.Handler: the single entry point for all
// overlay traffic.
func (n *Node) Deliver(from transport.Addr, msg transport.Message) {
	switch m := msg.(type) {
	case *AnchorMsg:
		n.anchors[m.Anchor.HopID] = m.Anchor
		n.m.anchorInstalls.Inc()
		n.m.anchorsHeld.Set(int64(len(n.anchors)))
		n.sendTo(from, &AnchorAck{HopID: m.Anchor.HopID}, 0)
	case *AnchorAck:
		n.m.anchorAcks.Inc()
		select {
		case n.acks <- m.HopID:
		default:
			n.logf("procnode %d: ack channel full, dropping ack for %s", n.Addr, m.HopID.Short())
		}
	case *core.Envelope:
		n.handleForward(m)
	case *core.ReplyEnvelope:
		n.handleReply(m)
	case *DataMsg:
		if m.Dest == n.ID {
			n.handleExitPayload(m.Payload)
			return
		}
		// Exit hops address DataMsg directly; a mismatch means a stale
		// membership view somewhere.
		n.logf("procnode %d: data for foreign node %s", n.Addr, m.Dest.Short())
	default:
		n.logf("procnode %d: unexpected message %T", n.Addr, msg)
	}
}

// resolve maps an overlay identifier to a transport address: the §5 hint
// when present, else the full-membership node-ID index.
func (n *Node) resolve(hint transport.Addr, target id.ID) (transport.Addr, bool) {
	if hint != transport.NoAddr {
		return hint, true
	}
	return n.lookupID(target)
}

// Membership lag tolerance: a node that cannot yet resolve a node ID —
// typically because the target joined after this node's last peer-table
// refresh — parks the message and retries on the dispatch loop instead
// of dropping it. This is what lets a freshly joined initiator receive
// its first reply without eating a full initiator-side retransmit
// timeout.
const (
	resolveRetries = 25
	resolveDelay   = 200 * time.Millisecond
)

// sendResolved delivers msg to the node whose ID is target, retrying
// while the membership index catches up. send runs with the resolved
// address once available; after resolveRetries misses the message is
// dropped with a log line.
func (n *Node) sendResolved(target id.ID, attempt int, send func(dst transport.Addr)) {
	if dst, ok := n.lookupID(target); ok {
		send(dst)
		return
	}
	if attempt >= resolveRetries {
		n.m.resolveDrops.Inc()
		n.logf("procnode %d: cannot resolve node %s after %d attempts, dropping",
			n.Addr, target.Short(), attempt)
		return
	}
	n.m.parkRetries.Inc()
	n.tr.Schedule(resolveDelay, func() { n.sendResolved(target, attempt+1, send) })
}

// sendTo transmits msg to dst, parking it while dst has no dialable
// endpoint yet — the mirror image of sendResolved for plain transport
// addresses. A relay answering a freshly joined member (an anchor ack to
// an initiator it has never refreshed into its peer table) hits this on
// the first exchange; after the retry budget the send is attempted
// anyway so the transport's drop accounting sees it.
func (n *Node) sendTo(dst transport.Addr, msg transport.Message, attempt int) {
	if n.tr.Reachable(dst) || attempt >= resolveRetries {
		n.tr.Send(n.Addr, dst, msg)
		return
	}
	n.m.parkRetries.Inc()
	n.tr.Schedule(resolveDelay, func() { n.sendTo(dst, msg, attempt+1) })
}

// handleForward peels one forward layer and relays, or — at the exit —
// routes the payload to its destination node.
func (n *Node) handleForward(env *core.Envelope) {
	a, ok := n.anchors[env.HopID]
	if !ok {
		n.logf("procnode %d: no anchor for hop %s", n.Addr, env.HopID.Short())
		return
	}
	// The codec gave us an owned buffer: peel in place.
	t0 := n.tr.Now()
	layer, err := core.OpenForwardLayerInPlace(a, env.Sealed)
	if err != nil {
		n.logf("procnode %d: %v", n.Addr, err)
		return
	}
	n.m.peelsForward.Inc()
	n.m.peelSeconds.Observe((n.tr.Now() - t0).Seconds())
	if layer.IsExit {
		if layer.Dest == n.ID {
			n.handleExitPayload(layer.Payload)
			return
		}
		payload := append([]byte(nil), layer.Payload...)
		dest := layer.Dest
		n.sendResolved(dest, 0, func(dst transport.Addr) {
			n.sendTo(dst, &DataMsg{Dest: dest, Payload: payload}, 0)
		})
		return
	}
	dst, ok := n.resolve(layer.NextHint, layer.Next)
	if !ok {
		n.logf("procnode %d: cannot route hop %s (no hint, no index entry)", n.Addr, layer.Next.Short())
		return
	}
	next := &core.Envelope{HopID: layer.Next, Hint: layer.NextHint, Sealed: layer.Inner}
	next.PadToMatch(env.SizeBytes())
	n.m.relaysForwarded.Inc()
	n.sendTo(dst, next, 0)
}

// handleReply peels one reply layer when this node anchors the target
// hop, or consumes the envelope when it is the initiator's own bid.
func (n *Node) handleReply(env *core.ReplyEnvelope) {
	a, ok := n.anchors[env.Target]
	if !ok {
		if env.Target == n.ID {
			// The tail hop resolved our bid: the reply is home.
			n.m.repliesHome.Inc()
			select {
			case n.replies <- env.Data:
			default:
				n.logf("procnode %d: reply channel full", n.Addr)
			}
			return
		}
		n.logf("procnode %d: no anchor for reply hop %s", n.Addr, env.Target.Short())
		return
	}
	t0 := n.tr.Now()
	next, hint, rest, err := core.OpenReplyLayerInPlace(a, env.Onion)
	if err != nil {
		n.logf("procnode %d: %v", n.Addr, err)
		return
	}
	n.m.peelsReply.Inc()
	n.m.peelSeconds.Observe((n.tr.Now() - t0).Seconds())
	out := &core.ReplyEnvelope{Target: next, Hint: hint, Onion: rest, Data: env.Data}
	out.PadToMatch(env.SizeBytes())
	if hint != transport.NoAddr {
		n.sendTo(hint, out, 0)
		return
	}
	// The tail layer names the initiator's bid with no hint; resolve it
	// through the membership index, tolerating a lagging view.
	n.sendResolved(next, 0, func(dst transport.Addr) { n.sendTo(dst, out, 0) })
}

// Exit payload format (the plaintext the exit layer reveals, §4's
// {fid, K_I, T_r} extended with stream framing):
//
//	sid uint64, seq uint32, fin byte, key blob, replyTunnel blob, chunk blob
//
// Echo payload, sealed under key:
//
//	sid uint64, seq uint32, chunk blob

func encodeRequest(sid uint64, seq uint32, fin bool, key crypt.Key, rt, chunk []byte) []byte {
	w := wire.NewWriter(32 + len(rt) + len(chunk))
	w.Uint64(sid)
	w.Uint32(seq)
	if fin {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Blob(key[:])
	w.Blob(rt)
	w.Blob(chunk)
	return w.Bytes()
}

// handleExitPayload is the responder role: decode a stream request, seal
// the echo under the request's key, and launch it down the reply tunnel.
func (n *Node) handleExitPayload(payload []byte) {
	n.m.exitPayloads.Inc()
	r := wire.NewReader(payload)
	sid := r.Uint64()
	seq := r.Uint32()
	fin := r.Byte()
	var key crypt.Key
	copy(key[:], r.Blob())
	rtEnc := append([]byte(nil), r.Blob()...)
	chunk := r.Blob()
	if err := r.Done(); err != nil {
		n.logf("procnode %d: bad exit payload: %v", n.Addr, err)
		return
	}
	rt, err := core.DecodeReplyTunnel(rtEnc)
	if err != nil {
		n.logf("procnode %d: %v", n.Addr, err)
		return
	}
	echo := wire.NewWriter(16 + len(chunk))
	echo.Uint64(sid)
	echo.Uint32(seq)
	echo.Byte(fin)
	echo.Blob(chunk)
	sealed, err := crypt.Seal(key, rand.Reader, echo.Bytes())
	if err != nil {
		n.logf("procnode %d: sealing echo: %v", n.Addr, err)
		return
	}
	dst, ok := n.resolve(rt.FirstHint, rt.First)
	if !ok {
		n.logf("procnode %d: cannot route reply head %s", n.Addr, rt.First.Short())
		return
	}
	n.sendTo(dst, &core.ReplyEnvelope{
		Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: sealed,
	}, 0)
}
