// Package procnode is the overlay node for the real-process deployment
// mode: the engine a tapnode process runs on top of tcptransport.
//
// It reuses the simulator's onion cryptography — the tunnel hop anchors
// of internal/tha and the layered envelopes of internal/core — but none
// of its oracles. Where a simulated hop consults the global directory,
// a procnode holds only the anchors initiators deployed to it; where the
// simulated engine routes with the Pastry overlay, a procnode follows
// the §5 address hints baked into each onion layer, falling back to a
// full-membership node-ID index (fed by the bulletin board) only to
// resolve exit destinations and the reply tail. That is the optimized
// mode of the paper with the bootstrap oracle made explicit.
package procnode

import (
	"fmt"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/tha"
	"tap/internal/transport"
	"tap/internal/wire"
)

// Frame kinds of the node-to-node protocol.
const (
	kindAnchor    = 1 // install a tunnel hop anchor
	kindAnchorAck = 2 // confirm an installation
	kindForward   = 3 // a forward-tunnel envelope (core.Envelope)
	kindReply     = 4 // a reply-tunnel envelope (core.ReplyEnvelope)
	kindData      = 5 // an exit payload en route to its destination node
)

// AnchorMsg deploys one anchor <hopid, K, H(PW)> onto the receiving
// node. In the simulator this is a PAST replica insert; here the
// initiator addresses the holder directly.
type AnchorMsg struct {
	Anchor tha.Anchor
}

// SizeBytes implements transport.Message.
func (m *AnchorMsg) SizeBytes() int { return tha.WireSize }

// AnchorAck confirms an anchor installation, closing the
// deploy-before-use race: initiators wait for every hop's ack before
// sending traffic through a tunnel.
type AnchorAck struct {
	HopID id.ID
}

// SizeBytes implements transport.Message.
func (m *AnchorAck) SizeBytes() int { return id.Size }

// DataMsg carries an exit payload from the tunnel's exit hop to the
// destination node named inside the innermost layer.
type DataMsg struct {
	Dest    id.ID
	Payload []byte
}

// SizeBytes implements transport.Message.
func (m *DataMsg) SizeBytes() int { return id.Size + len(m.Payload) }

// Codec frames the procnode message set for tcptransport. All decoded
// messages own their buffers (the transport's read buffer is reused).
type Codec struct{}

// Encode implements tcptransport.Codec.
func (Codec) Encode(msg transport.Message) (byte, []byte, error) {
	switch m := msg.(type) {
	case *AnchorMsg:
		w := wire.NewWriter(tha.WireSize + 8)
		w.ID(m.Anchor.HopID)
		w.Blob(m.Anchor.Key[:])
		w.Blob(m.Anchor.PWHash[:])
		return kindAnchor, w.Bytes(), nil
	case *AnchorAck:
		w := wire.NewWriter(id.Size)
		w.ID(m.HopID)
		return kindAnchorAck, w.Bytes(), nil
	case *core.Envelope:
		w := wire.NewWriter(m.SizeBytes() + 16)
		w.ID(m.HopID)
		w.Int64(int64(m.Hint))
		w.Blob(m.Sealed)
		w.Uint32(uint32(m.Pad))
		return kindForward, w.Bytes(), nil
	case *core.ReplyEnvelope:
		w := wire.NewWriter(m.SizeBytes() + 24)
		w.ID(m.Target)
		w.Int64(int64(m.Hint))
		w.Blob(m.Onion)
		w.Blob(m.Data)
		w.Uint32(uint32(m.Pad))
		return kindReply, w.Bytes(), nil
	case *DataMsg:
		w := wire.NewWriter(id.Size + len(m.Payload) + 8)
		w.ID(m.Dest)
		w.Blob(m.Payload)
		return kindData, w.Bytes(), nil
	default:
		return 0, nil, fmt.Errorf("procnode: cannot encode %T", msg)
	}
}

// Decode implements tcptransport.Codec.
func (Codec) Decode(kind byte, payload []byte) (transport.Message, error) {
	r := wire.NewReader(payload)
	switch kind {
	case kindAnchor:
		var m AnchorMsg
		m.Anchor.HopID = r.ID()
		copy(m.Anchor.Key[:], r.Blob())
		copy(m.Anchor.PWHash[:], r.Blob())
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("procnode: anchor: %w", err)
		}
		return &m, nil
	case kindAnchorAck:
		m := &AnchorAck{HopID: r.ID()}
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("procnode: anchor ack: %w", err)
		}
		return m, nil
	case kindForward:
		var m core.Envelope
		m.HopID = r.ID()
		m.Hint = transport.Addr(r.Int64())
		m.Sealed = append([]byte(nil), r.Blob()...)
		m.Pad = int(r.Uint32())
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("procnode: forward envelope: %w", err)
		}
		return &m, nil
	case kindReply:
		var m core.ReplyEnvelope
		m.Target = r.ID()
		m.Hint = transport.Addr(r.Int64())
		m.Onion = append([]byte(nil), r.Blob()...)
		m.Data = append([]byte(nil), r.Blob()...)
		m.Pad = int(r.Uint32())
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("procnode: reply envelope: %w", err)
		}
		return &m, nil
	case kindData:
		m := &DataMsg{Dest: r.ID()}
		m.Payload = append([]byte(nil), r.Blob()...)
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("procnode: data: %w", err)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("procnode: unknown frame kind %d", kind)
	}
}

// compile-time interface checks for the message set
var (
	_ transport.Message = (*AnchorMsg)(nil)
	_ transport.Message = (*AnchorAck)(nil)
	_ transport.Message = (*DataMsg)(nil)
)
