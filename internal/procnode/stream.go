package procnode

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"time"

	"tap/internal/core"
	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/tha"
	"tap/internal/transport"
	"tap/internal/wire"
)

// StreamConfig shapes one RoundTripStream exchange.
type StreamConfig struct {
	// ForwardHops and ReplyHops name the nodes that will host the
	// tunnels' anchors, in hop order. Both must be non-empty.
	ForwardHops []transport.Addr
	ReplyHops   []transport.Addr
	// Dest is the responder node.
	Dest transport.Addr
	// ChunkSize splits the payload into stream chunks. Default 512.
	ChunkSize int
	// Timeout bounds each network wait (anchor ack, chunk echo).
	// Default 5s.
	Timeout time.Duration
	// Retries is how many times a lost anchor deploy or chunk is
	// retransmitted before the stream fails. Default 3.
	Retries int
}

func (c *StreamConfig) defaults() {
	if c.ChunkSize == 0 {
		c.ChunkSize = 512
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
}

// RoundTripStream runs the full paper flow as one initiator call: mint
// anchors, deploy them to the configured hop nodes (acknowledged, so no
// install-vs-traffic race), build the forward tunnel and the pre-peeled
// reply tunnel, then stream the payload through the overlay in
// onion-sealed chunks. Each chunk travels the forward tunnel to the
// responder, which seals its echo under the chunk's key and sends it
// back down the reply tunnel; the reassembled echo is returned.
//
// Transport losses (a full send queue, a dropped connection) surface as
// per-chunk timeouts and are retried from the initiator, mirroring the
// simulator's reliability layer in miniature.
func (n *Node) RoundTripStream(cfg StreamConfig, payload []byte) ([]byte, error) {
	cfg.defaults()
	if len(cfg.ForwardHops) == 0 || len(cfg.ReplyHops) == 0 {
		return nil, fmt.Errorf("procnode: both tunnels need at least one hop")
	}

	// The onion builders draw nonces and padding from a deterministic
	// stream; seed it from the OS entropy pool since nothing here needs
	// replay.
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("procnode: seeding: %w", err)
	}
	stream := rng.New(binary.BigEndian.Uint64(seed[:])).Split("procnode-stream")

	gen, err := tha.NewGenerator(n.ID[:], rand.Reader)
	if err != nil {
		return nil, err
	}
	mint := func(k int) ([]tha.Secret, error) {
		out := make([]tha.Secret, k)
		for i := range out {
			if out[i], err = gen.Generate(rand.Reader); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	fwSecrets, err := mint(len(cfg.ForwardHops))
	if err != nil {
		return nil, err
	}
	rpSecrets, err := mint(len(cfg.ReplyHops))
	if err != nil {
		return nil, err
	}

	// Deploy every anchor and wait for its holder's ack.
	deploy := func(hops []transport.Addr, secrets []tha.Secret) error {
		for i, hop := range hops {
			a := secrets[i].Anchor
			for attempt := 0; ; attempt++ {
				if attempt > 0 {
					n.m.streamRetransmits.Inc()
				}
				n.tr.Send(n.Addr, hop, &AnchorMsg{Anchor: a})
				if n.awaitAck(a.HopID, cfg.Timeout) {
					break
				}
				if attempt >= cfg.Retries {
					return fmt.Errorf("procnode: deploying anchor %s to node %d: no ack after %d attempts",
						a.HopID.Short(), hop, attempt+1)
				}
			}
		}
		return nil
	}
	if err := deploy(cfg.ForwardHops, fwSecrets); err != nil {
		return nil, err
	}
	if err := deploy(cfg.ReplyHops, rpSecrets); err != nil {
		return nil, err
	}

	fwTunnel := &core.Tunnel{Hops: fwSecrets}
	rpTunnel := &core.Tunnel{Hops: rpSecrets}
	rt, err := core.BuildReply(rpTunnel, cfg.ReplyHops, n.ID, stream)
	if err != nil {
		return nil, err
	}
	rtEnc := rt.Encode()
	destID := NodeID(cfg.Dest)

	var sidBuf [8]byte
	if _, err := rand.Read(sidBuf[:]); err != nil {
		return nil, err
	}
	sid := binary.BigEndian.Uint64(sidBuf[:])

	// Stream the chunks, strictly one in flight: send, await echo,
	// verify, advance.
	var echoed bytes.Buffer
	nChunks := (len(payload) + cfg.ChunkSize - 1) / cfg.ChunkSize
	if nChunks == 0 {
		nChunks = 1 // an empty payload still round-trips one fin chunk
	}
	for seq := 0; seq < nChunks; seq++ {
		lo := seq * cfg.ChunkSize
		hi := lo + cfg.ChunkSize
		if hi > len(payload) {
			hi = len(payload)
		}
		chunk := payload[lo:hi]
		fin := seq == nChunks-1

		key, err := crypt.NewKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		req := encodeRequest(sid, uint32(seq), fin, key, rtEnc, chunk)
		env, err := core.BuildForward(fwTunnel, cfg.ForwardHops, destID, req, stream)
		if err != nil {
			return nil, err
		}
		var echo []byte
		for attempt := 0; ; attempt++ {
			if attempt > 0 {
				n.m.streamRetransmits.Inc()
			}
			n.tr.Send(n.Addr, cfg.ForwardHops[0], env)
			echo = n.awaitEcho(key, sid, uint32(seq), cfg.Timeout)
			if echo != nil {
				break
			}
			if attempt >= cfg.Retries {
				return nil, fmt.Errorf("procnode: chunk %d/%d lost after %d attempts", seq+1, nChunks, attempt+1)
			}
		}
		if !bytes.Equal(echo, chunk) {
			return nil, fmt.Errorf("procnode: chunk %d echo mismatch (%d vs %d bytes)", seq, len(echo), len(chunk))
		}
		n.m.streamChunks.Inc()
		echoed.Write(echo)
	}
	return echoed.Bytes(), nil
}

// awaitAck waits for an anchor ack with the given hop id, discarding
// stale acks from earlier retries.
func (n *Node) awaitAck(hopID id.ID, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case got := <-n.acks:
			if got == hopID {
				return true
			}
		case <-deadline.C:
			return false
		}
	}
}

// awaitEcho waits for the reply carrying (sid, seq), opening candidates
// with the chunk key. Replies that fail to open (stale retransmits of an
// earlier chunk, sealed under a different key) are discarded.
func (n *Node) awaitEcho(key crypt.Key, sid uint64, seq uint32, timeout time.Duration) []byte {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case sealed := <-n.replies:
			plain, err := crypt.Open(key, sealed)
			if err != nil {
				continue
			}
			r := wire.NewReader(plain)
			gotSid := r.Uint64()
			gotSeq := r.Uint32()
			_ = r.Byte() // fin echo
			chunk := append([]byte(nil), r.Blob()...)
			if r.Done() != nil || gotSid != sid || gotSeq != seq {
				continue
			}
			return chunk
		case <-deadline.C:
			return nil
		}
	}
}
