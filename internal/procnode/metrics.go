package procnode

import "tap/internal/obs"

// nodeMetrics holds one node's instruments (tap_node_*; DESIGN.md §15).
// Built from a possibly-nil registry, in which case every field is nil
// and the increments vanish into obs's no-op sink — the same pattern as
// the transport and board. One node per registry: a process hosting
// several nodes would need instance labels, which the deployment mode
// (one node per process) has no use for.
type nodeMetrics struct {
	peelsForward *obs.Counter // forward onion layers opened
	peelsReply   *obs.Counter // reply onion layers opened

	relaysForwarded *obs.Counter // peeled envelopes relayed to a next hop
	exitPayloads    *obs.Counter // exit-layer payloads handled as responder
	repliesHome     *obs.Counter // reply envelopes consumed as initiator

	anchorInstalls *obs.Counter // anchors installed on behalf of initiators
	anchorAcks     *obs.Counter // anchor acks received as initiator
	anchorsHeld    *obs.Gauge   // anchors currently stored

	parkRetries  *obs.Counter // sends parked on a lagging membership view
	resolveDrops *obs.Counter // messages dropped after the retry budget

	streamChunks      *obs.Counter   // chunks round-tripped by RoundTripStream
	streamRetransmits *obs.Counter   // anchor redeploys + chunk resends after a timeout
	peelSeconds       *obs.Histogram // time to open one onion layer, either direction
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	dir := func(v string) obs.Label { return obs.Label{Name: "dir", Value: v} }
	const peels = "tap_node_peels_total"
	const peelsHelp = "Onion layers opened, by tunnel direction."
	return &nodeMetrics{
		peelsForward: reg.Counter(peels, peelsHelp, dir("forward")),
		peelsReply:   reg.Counter(peels, peelsHelp, dir("reply")),

		relaysForwarded: reg.Counter("tap_node_relays_forwarded_total", "Peeled envelopes relayed onward."),
		exitPayloads:    reg.Counter("tap_node_exit_payloads_total", "Exit payloads handled as responder."),
		repliesHome:     reg.Counter("tap_node_replies_home_total", "Replies consumed as initiator."),

		anchorInstalls: reg.Counter("tap_node_anchor_installs_total", "Anchors installed for initiators."),
		anchorAcks:     reg.Counter("tap_node_anchor_acks_total", "Anchor acks received as initiator."),
		anchorsHeld:    reg.Gauge("tap_node_anchors", "Anchors currently stored."),

		parkRetries:  reg.Counter("tap_node_park_retries_total", "Sends parked awaiting membership catch-up."),
		resolveDrops: reg.Counter("tap_node_resolve_drops_total", "Messages dropped after the resolve retry budget."),

		streamChunks:      reg.Counter("tap_node_stream_chunks_total", "Chunks round-tripped by streams."),
		streamRetransmits: reg.Counter("tap_node_stream_retransmits_total", "Stream retransmissions after a timeout."),
		peelSeconds:       reg.Histogram("tap_node_peel_seconds", "Time to open one onion layer.", nil),
	}
}
