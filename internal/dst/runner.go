package dst

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"tap/internal/core"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
)

// Canary is the plaintext marker every dst payload starts with: the
// no-plaintext-on-wire checker scans each frame's exposed bytes for it.
// Sixteen bytes make an accidental match in honest ciphertext
// negligible (~2^-128 per position).
var Canary = []byte("TAP-DST-CANARY!!")

// Mutations are deliberately planted bugs. Each checker's mutation
// self-test proves the checker fires on its bug within a bounded seed
// budget; a checker that cannot catch its plant is itself broken.
type Mutations struct {
	// SkipMigration disables replica migration on membership changes:
	// the tha-replication invariant must notice replica sets drifting
	// from the oracle.
	SkipMigration bool
	// CorruptLeaf empties one live node's leaf set after the first
	// membership event: the leafset invariant must notice.
	CorruptLeaf bool
	// DropOnionLayer builds each forward message with one onion layer
	// missing (the envelope is addressed to hop 0 but sealed for hop 1):
	// the MAC fails at the first hop, every retransmission dies the same
	// way, and the tunnel-liveness invariant must notice a functional
	// tunnel that stopped delivering.
	DropOnionLayer bool
	// LeakPayload transmits the raw payload in place of the sealed
	// onion: the no-plaintext invariant must see the canary on the wire.
	LeakPayload bool
	// DisableAckDedup makes terminals re-deliver duplicate arrivals as
	// fresh: the exactly-once invariant must count more than one fresh
	// delivery on some flow.
	DisableAckDedup bool
	// StallRebuild plants core.PoolConfig.DisableRebuild on every tunnel
	// pool: dead slots never refill, and the pool-reconverge invariant
	// must notice a pool below target size after the repair horizon.
	StallRebuild bool
	// UncappedRebuild plants core.PoolConfig.BypassAdmission on every
	// tunnel pool: rebuilds skip the backoff and the shared rate limiter,
	// and the rebuild-rate invariant must notice rebuilds the limiter
	// never admitted.
	UncappedRebuild bool
	// StreamReorderBypass plants core.NetEngine.StreamReorderBypass:
	// stream receivers hand segments to the application in raw arrival
	// order with no reorder buffer and no dedup, and the
	// stream-in-order-delivery invariant must notice the first
	// out-of-order or duplicate delivery.
	StreamReorderBypass bool
	// StreamWindowBypass plants core.NetEngine.StreamWindowBypass: stream
	// senders get a ring far larger than their configured window and
	// happily overfill it, and the window-conservation invariant must
	// notice more unacknowledged segments in flight than the window
	// allows.
	StreamWindowBypass bool
}

// Violation is one invariant failure, attributed to the schedule event
// during (or after) which it was detected. Event is -1 for violations
// found at quiescence, after the schedule drained.
type Violation struct {
	Checker string      `json:"checker"`
	Event   int         `json:"event"`
	At      simnet.Time `json:"at"`
	Msg     string      `json:"msg"`
}

func (v *Violation) String() string {
	where := fmt.Sprintf("event %d", v.Event)
	if v.Event < 0 {
		where = "quiescence"
	}
	return fmt.Sprintf("[%s] at %s (t=%v): %s", v.Checker, where, v.At, v.Msg)
}

// Result reports one scenario execution.
type Result struct {
	Scenario  *Scenario
	Violation *Violation // nil: all invariants held
	Err       error      // infrastructure failure (not an invariant violation)

	Delivered int    // flows that completed with delivery
	Failed    int    // flows that resolved undelivered
	Skipped   int    // schedule events inapplicable to current state
	Steps     uint64 // kernel events executed
}

// reliabilityBudget is generous so every reliable flow resolves before
// quiescence even under the worst generated loss rate.
const reliabilityBudget = 12

// poolRepairBudget is how long after the last schedule event (or the
// last partition heal, whichever is later) tunnel pools keep running
// before the runner stops them so the kernel can drain. It must cover a
// full worst-case repair: rate-limited rebuild admissions for every dead
// slot plus the promotion hysteresis — the pool-reconverge invariant
// demands pools be back at target size by this deadline.
const poolRepairBudget = 120 * time.Second

// poolRebuildRate and poolRebuildBurst parameterize the rebuild
// admission limiter shared by every pool in a scenario. Slow enough
// that a rebuild storm is visibly over budget, fast enough that honest
// repairs finish within poolRepairBudget.
const (
	poolRebuildRate  = 0.05
	poolRebuildBurst = 3
)

// minLiveFloor is the smallest live population failures may leave; it
// keeps replica sets meaningful and the overlay far from its
// refuse-to-kill-the-last-node edge.
const minLiveFloor = 8

type flowRec struct {
	tunnel  *core.Tunnel
	outcome core.Outcome
	// outcomes counts completion callbacks (must be exactly 1); fresh
	// and dup count terminal data arrivals by kind.
	outcomes, fresh, dup int
}

// poolSendRec tracks one pool send's resolution. Pool flows are built
// inside the pool (the engine flow id never surfaces), so they get their
// own record kind; the outcome callback contract — exactly one firing —
// is checked at quiescence like any flow's.
type poolSendRec struct {
	outcome  core.Outcome
	outcomes int
}

// streamRec tracks one windowed stream end to end: the sender handle (for
// the window observables and the final outcome), the exact bytes pumped
// in, and the receive-side delivery discipline — next expected sequence
// number, bytes matched against the sent content, close and completion
// callback counts. The in-order and byte-identity checks run
// synchronously in the OnData hook; quiescence checkers audit the rest.
type streamRec struct {
	s       *core.Stream
	content []byte

	nextSeq     uint64 // next data sequence number the receiver must deliver
	recvOff     int    // content bytes matched so far
	closes      int
	completions int
}

type client struct {
	in      *core.Initiator
	tunnels []*core.Tunnel
	pool    *core.TunnelPool
}

// runner is the per-execution world state.
type runner struct {
	sc  *Scenario
	mut Mutations

	root    *rng.Stream
	traffic *rng.Stream
	kernel  *simnet.Kernel
	net     *simnet.Network
	ov      *pastry.Overlay
	mgr     *past.Manager
	dir     *tha.Directory
	svc     *core.Service
	eng     *core.NetEngine

	clients   []*client
	protected map[simnet.Addr]bool

	// anchors lists every deployed hopid in first-replication order — a
	// deterministic iteration order for the tha-replication checker
	// (Manager's own maps iterate nondeterministically).
	anchors    []id.ID
	anchorSeen map[id.ID]struct{}

	flows     map[uint64]*flowRec
	poolSends []*poolSendRec

	// streams tracks windowed streams by stream id; streamIDs is the
	// insertion (= ascending id) order quiescence checkers iterate in.
	streams   map[uint64]*streamRec
	streamIDs []uint64

	// limiter is the rebuild admission control shared by every pool in
	// the scenario; the rebuild-rate invariant audits it.
	limiter *core.RateLimiter
	// hasPartitions notes whether the schedule contains partition events:
	// under partitions the tunnel-liveness delivery clause is undecidable
	// (a flow can exhaust while every hop anchor keeps a live replica).
	hasPartitions bool

	lastEvent     int
	violation     *Violation
	skipped       int
	payloadSeq    uint64
	leafCorrupted bool
}

// Run executes the scenario with the given planted bugs (zero Mutations
// for an honest run) and reports the first invariant violation, if any.
// It is deterministic: equal inputs produce equal Results field by field.
func Run(sc *Scenario, mut Mutations) *Result {
	r := &runner{
		sc: sc, mut: mut,
		root:       rng.New(sc.Seed),
		protected:  make(map[simnet.Addr]bool),
		anchorSeen: make(map[id.ID]struct{}),
		flows:      make(map[uint64]*flowRec),
		streams:    make(map[uint64]*streamRec),
		lastEvent:  -1,
	}
	r.traffic = r.root.Split("traffic")
	res := &Result{Scenario: sc}

	if err := r.build(); err != nil {
		res.Err = err
		return res
	}
	for i, ev := range sc.Events {
		i, ev := i, ev
		r.kernel.At(ev.At, func() {
			if r.violation != nil {
				return
			}
			r.lastEvent = i
			r.apply(ev)
			if r.violation == nil {
				r.runCheckers(i, false)
			}
			if r.violation != nil {
				r.kernel.Stop()
			}
		})
	}
	r.schedulePoolStop()
	if err := r.kernel.Run(); err != nil {
		res.Err = fmt.Errorf("dst: seed %d: %w", sc.Seed, err)
		return res
	}
	if r.violation == nil {
		r.lastEvent = -1
		r.runCheckers(-1, true)
	}

	res.Violation = r.violation
	res.Skipped = r.skipped
	res.Steps = r.kernel.Steps()
	for _, flow := range r.flowOrder() {
		rec := r.flows[flow]
		if rec.outcomes > 0 && rec.outcome.Delivered {
			res.Delivered++
		} else if rec.outcomes > 0 {
			res.Failed++
		}
	}
	for _, rec := range r.poolSends {
		if rec.outcomes > 0 && rec.outcome.Delivered {
			res.Delivered++
		} else if rec.outcomes > 0 {
			res.Failed++
		}
	}
	for _, sid := range r.streamIDs {
		rec := r.streams[sid]
		if rec.completions > 0 && rec.s.Done() {
			res.Delivered++
		} else if rec.completions > 0 {
			res.Failed++
		}
	}
	return res
}

// schedulePoolStop notes partition windows and — when the schedule
// creates tunnel pools — arranges for every pool to stop after the
// repair horizon: the last event or partition heal, plus
// poolRepairBudget. Pools reschedule their own probe ticks forever, so
// without the stop a pool scenario would never drain the kernel; with
// it, quiescence doubles as the reconvergence deadline.
func (r *runner) schedulePoolStop() {
	hasPool := false
	var horizon simnet.Time
	for _, ev := range r.sc.Events {
		end := ev.At
		if ev.Kind == EvPartition {
			r.hasPartitions = true
			end += ev.Dur
		}
		if ev.Kind == EvPool {
			hasPool = true
		}
		if end > horizon {
			horizon = end
		}
	}
	if !hasPool {
		return
	}
	r.kernel.At(horizon+poolRepairBudget, func() {
		for _, c := range r.clients {
			if c.pool != nil {
				c.pool.Stop()
			}
		}
	})
}

// build assembles the world: overlay, storage, directory, network,
// engine, fault plan, reorder hook, wire tap, and clients.
func (r *runner) build() error {
	sc := r.sc
	ov, err := pastry.Build(pastry.DefaultConfig(), sc.Nodes, r.root.Split("overlay"))
	if err != nil {
		return fmt.Errorf("dst: building overlay: %w", err)
	}
	r.ov = ov
	r.mgr = past.NewManager(ov, sc.K)
	r.mgr.DisableMigration = r.mut.SkipMigration
	r.mgr.OnReplicate = func(key id.ID, addr simnet.Addr) {
		if _, ok := r.anchorSeen[key]; !ok {
			r.anchorSeen[key] = struct{}{}
			r.anchors = append(r.anchors, key)
		}
	}
	r.dir = tha.NewDirectory(ov, r.mgr)
	r.svc = core.NewService(ov, r.dir, r.root.Split("svc"))

	r.limiter = core.NewRateLimiter(poolRebuildRate, poolRebuildBurst)
	r.kernel = simnet.NewKernel()
	r.kernel.MaxSteps = 20_000_000
	r.net = simnet.NewNetwork(r.kernel, simnet.DefaultLinkModel(sc.Seed), ov.NumAddrs())
	r.svc.Net = r.net
	r.eng = core.NewNetEngine(r.svc, r.net)
	r.eng.EnableReliability(core.Reliability{MaxAttempts: reliabilityBudget})
	r.eng.DisableAckDedup = r.mut.DisableAckDedup
	r.eng.StreamReorderBypass = r.mut.StreamReorderBypass
	r.eng.StreamWindowBypass = r.mut.StreamWindowBypass
	r.eng.OnStream = func(rs *core.RecvStream) {
		rec := r.streams[rs.ID()]
		if rec == nil {
			return
		}
		rs.OnData = func(seq uint64, data []byte) {
			// Synchronous delivery discipline: strictly in-order sequence
			// numbers carrying exactly the bytes the sender wrote there.
			if seq != rec.nextSeq {
				r.violate("stream-in-order-delivery", fmt.Sprintf(
					"stream %d delivered seq %d to the application, expected %d",
					rs.ID(), seq, rec.nextSeq))
				return
			}
			rec.nextSeq++
			rest := rec.content[rec.recvOff:]
			if len(data) > len(rest) || !bytes.Equal(data, rest[:len(data)]) {
				r.violate("stream-in-order-delivery", fmt.Sprintf(
					"stream %d delivered bytes diverging from the sent content at offset %d",
					rs.ID(), rec.recvOff))
				return
			}
			rec.recvOff += len(data)
		}
		rs.OnClose = func(rs *core.RecvStream) { rec.closes++ }
	}
	r.eng.OnDeliver = func(flow uint64, dup bool) {
		rec, ok := r.flows[flow]
		if !ok {
			return
		}
		if dup {
			rec.dup++
			return
		}
		if rec.fresh >= 1 {
			r.violate("exactly-once", fmt.Sprintf(
				"flow %d delivered fresh to the terminal %d times", flow, rec.fresh+1))
		}
		rec.fresh++
	}

	if sc.Loss > 0 || sc.Spike > 0 {
		r.net.InstallFaults(&simnet.FaultPlan{
			Seed:      r.root.Split("faults").Seed(),
			LossRate:  sc.Loss,
			SpikeRate: sc.Spike,
			SpikeMin:  50 * time.Millisecond,
			SpikeMax:  400 * time.Millisecond,
		})
	}
	if sc.Reorder > 0 && sc.ReorderMax > 0 {
		reorder := r.root.Split("reorder")
		r.net.ExtraDelay = func(src, dst simnet.Addr, msg simnet.Message) simnet.Time {
			if reorder.Bool(sc.Reorder) {
				return simnet.Time(reorder.Int63n(int64(sc.ReorderMax)))
			}
			return 0
		}
	}
	r.net.SendHook = func(from, to simnet.Addr, msg simnet.Message) {
		for _, b := range core.WireBytes(msg) {
			if bytes.Contains(b, Canary) {
				r.violate("no-plaintext", fmt.Sprintf(
					"payload canary visible in a frame %d->%d (%d wire bytes)", from, to, len(b)))
				return
			}
		}
	}

	pick := r.root.Split("clients")
	for i := 0; i < sc.Clients; i++ {
		node := ov.RandomLive(pick)
		for r.protected[node.Ref().Addr] {
			node = ov.RandomLive(pick)
		}
		in, err := core.NewInitiator(r.svc, node, r.root.SplitN("client", i))
		if err != nil {
			return fmt.Errorf("dst: client %d: %w", i, err)
		}
		r.protected[node.Ref().Addr] = true
		r.clients = append(r.clients, &client{in: in})
	}
	return nil
}

// violate records the first violation; later ones are ignored (the world
// may already be inconsistent). The kernel is stopped by the caller or
// at the next scheduled event.
func (r *runner) violate(checker, msg string) {
	if r.violation != nil {
		return
	}
	r.violation = &Violation{Checker: checker, Event: r.lastEvent, At: r.kernel.Now(), Msg: msg}
	r.kernel.Stop()
}

// apply executes one schedule event. Events inapplicable to the current
// state (dead victim, empty pool, no tunnels) skip cleanly so the
// shrinker may remove arbitrary prefixes.
func (r *runner) apply(ev Event) {
	switch ev.Kind {
	case EvJoin:
		r.ov.Join()
		r.afterMembership()
	case EvFail:
		addr := r.pickVictim(ev.Addr, 0)
		if addr == simnet.NoAddr {
			r.skipped++
			return
		}
		if err := r.ov.Fail(addr); err != nil {
			r.skipped++
			return
		}
		r.net.Detach(addr)
		r.afterMembership()
	case EvBatchFail:
		victims := make([]simnet.Addr, 0, len(ev.Addrs))
		taken := make(map[simnet.Addr]bool)
		for _, raw := range ev.Addrs {
			addr := r.pickVictimExcluding(raw, len(victims), taken)
			if addr == simnet.NoAddr {
				continue
			}
			taken[addr] = true
			victims = append(victims, addr)
		}
		if len(victims) == 0 {
			r.skipped++
			return
		}
		r.mgr.BeginBatch()
		for _, addr := range victims {
			if err := r.ov.Fail(addr); err == nil {
				r.net.Detach(addr)
			}
		}
		r.mgr.EndBatch()
		r.afterMembership()
	case EvDeploy:
		c := r.client(ev.Client)
		if c == nil {
			r.skipped++
			return
		}
		n := ev.N
		if n <= 0 {
			n = 2
		}
		if err := c.in.DeployDirect(n); err != nil {
			// Deployment against a live overlay cannot fail honestly.
			r.violate("infrastructure", fmt.Sprintf("deploy failed: %v", err))
		}
	case EvForm:
		c := r.client(ev.Client)
		if c == nil {
			r.skipped++
			return
		}
		l := ev.L
		if l < 2 {
			l = 2
		}
		if c.in.PoolSize() < l {
			r.skipped++
			return
		}
		t, err := c.in.FormTunnel(l)
		if err != nil {
			r.skipped++
			return
		}
		c.tunnels = append(c.tunnels, t)
	case EvSend:
		c := r.client(ev.Client)
		if c == nil || len(c.tunnels) == 0 {
			r.skipped++
			return
		}
		r.send(c, c.tunnels[ev.T%len(c.tunnels)], ev)
	case EvPool:
		c := r.client(ev.Client)
		if c == nil || c.pool != nil {
			r.skipped++
			return
		}
		n, l := ev.N, ev.L
		if n <= 0 {
			n = 2
		}
		if l < 2 {
			l = 2
		}
		pool, err := core.NewTunnelPool(c.in, r.eng, core.PoolConfig{
			Size:            n,
			Length:          l,
			Limiter:         r.limiter,
			DisableRebuild:  r.mut.StallRebuild,
			BypassAdmission: r.mut.UncappedRebuild,
		})
		if err != nil {
			// Not enough disjoint anchors under heavy churn is an honest
			// formation failure, not an invariant breach.
			r.skipped++
			return
		}
		c.pool = pool
		pool.Start()
	case EvPartition:
		c := r.client(ev.Client)
		if c == nil || ev.Dur <= 0 {
			r.skipped++
			return
		}
		addr := c.in.Node().Ref().Addr
		pid := r.net.StartPartition([]simnet.Addr{addr}, ev.Asym)
		r.kernel.Schedule(ev.Dur, func() { r.net.HealPartition(pid) })
	case EvStream:
		c := r.client(ev.Client)
		if c == nil {
			r.skipped++
			return
		}
		r.stream(c, ev)
	case EvPoolSend:
		c := r.client(ev.Client)
		if c == nil || c.pool == nil {
			r.skipped++
			return
		}
		payload := r.payload(ev.Size)
		var dest id.ID
		r.traffic.Bytes(dest[:])
		rec := &poolSendRec{}
		if err := c.pool.Send(dest, payload, func(o core.Outcome) {
			rec.outcome = o
			rec.outcomes++
		}); err != nil {
			// A degraded fast-fail is the pool's graceful-degradation
			// contract (e.g. the client is partitioned), not a violation.
			r.skipped++
			return
		}
		r.poolSends = append(r.poolSends, rec)
	default:
		r.skipped++
	}
}

// afterMembership applies the CorruptLeaf plant once, immediately after
// the first successful membership change.
func (r *runner) afterMembership() {
	if !r.mut.CorruptLeaf || r.leafCorrupted {
		return
	}
	r.leafCorrupted = true
	node := r.ov.RandomLive(r.root.Split("corrupt"))
	node.Leaf.ReplaceAll(nil, nil)
}

func (r *runner) client(idx int) *client {
	if len(r.clients) == 0 {
		return nil
	}
	return r.clients[idx%len(r.clients)]
}

// pickVictim resolves a raw selector to a live, unprotected victim by
// scanning the address space from raw mod NumAddrs. pending counts kills
// already chosen in the same batch; the live floor accounts for them.
func (r *runner) pickVictim(raw uint64, pending int) simnet.Addr {
	return r.pickVictimExcluding(raw, pending, nil)
}

func (r *runner) pickVictimExcluding(raw uint64, pending int, taken map[simnet.Addr]bool) simnet.Addr {
	floor := minLiveFloor
	if f := r.sc.K + r.sc.Clients + 2; f > floor {
		floor = f
	}
	if r.ov.Size()-pending <= floor {
		return simnet.NoAddr
	}
	n := r.ov.NumAddrs()
	start := int(raw % uint64(n))
	for i := 0; i < n; i++ {
		addr := simnet.Addr((start + i) % n)
		node := r.ov.Node(addr)
		if node == nil || !node.Alive() || r.protected[addr] || (taken != nil && taken[addr]) {
			continue
		}
		return addr
	}
	return simnet.NoAddr
}

// send starts one reliable forward flow, applying any traffic plants.
func (r *runner) send(c *client, tun *core.Tunnel, ev Event) {
	payload := r.payload(ev.Size)
	var dest id.ID
	r.traffic.Bytes(dest[:])

	var env *core.Envelope
	var err error
	switch {
	case r.mut.DropOnionLayer && tun.Length() >= 2:
		// One layer short: sealed for the sub-tunnel starting at hop 1,
		// but addressed to hop 0, which cannot authenticate it.
		sub := &core.Tunnel{Hops: tun.Hops[1:]}
		env, err = core.BuildForward(sub, nil, dest, payload, r.traffic)
		if err == nil {
			env.HopID = tun.Hops[0].HopID
		}
	case ev.Hints:
		cache := core.NewHintCache()
		// A partially refreshed cache (some hop lost) is still usable:
		// missing entries fall back to DHT routing.
		_ = cache.Refresh(r.svc, tun)
		env, err = core.BuildForwardWithCache(tun, cache, dest, payload, r.traffic)
	default:
		env, err = core.BuildForward(tun, nil, dest, payload, r.traffic)
	}
	if err != nil {
		r.skipped++
		return
	}
	if r.mut.LeakPayload {
		env.Sealed = append([]byte(nil), payload...)
	}

	rec := &flowRec{tunnel: tun}
	flow := r.eng.SendForward(c.in.Node().Ref().Addr, env, func(o core.Outcome) {
		rec.outcome = o
		rec.outcomes++
	})
	r.flows[flow] = rec
}

// stream opens one windowed stream — over a tunnel when the client has
// any, else the direct overt path — and pumps the event's content through
// the send window. No canary prefix here: stream segments legitimately
// expose their bytes on the overt exit leg (they are bulk transfers, not
// sealed payloads), so the no-plaintext tap must not see a marker.
func (r *runner) stream(c *client, ev Event) {
	size := ev.Size
	if size < 64 {
		size = 64
	}
	content := make([]byte, size)
	r.traffic.Bytes(content)
	var dest id.ID
	r.traffic.Bytes(dest[:])

	cfg := core.StreamConfig{Window: ev.W, SegSize: 256}
	if cfg.Window < 1 {
		cfg.Window = 2
	}
	origin := c.in.Node().Ref().Addr
	var s *core.Stream
	if len(c.tunnels) > 0 {
		tun := c.tunnels[ev.T%len(c.tunnels)]
		cache := core.NewHintCache()
		// A partially refreshed cache (some hop lost) is still usable:
		// missing entries fall back to DHT routing.
		_ = cache.Refresh(r.svc, tun)
		s = r.eng.OpenTunnelStream(origin, tun, cache, dest, cfg)
	} else {
		s = r.eng.OpenStream(origin, dest, simnet.NoAddr, cfg)
	}
	rec := &streamRec{s: s, content: content}
	r.streams[s.ID()] = rec
	r.streamIDs = append(r.streamIDs, s.ID())
	s.OnComplete = func(bool) { rec.completions++ }
	off := 0
	pump := func() {
		for off < len(content) {
			want := len(content) - off
			n := s.Write(content[off:])
			off += n
			if n < want {
				return // window full; resumed by OnWritable
			}
		}
		s.Close()
	}
	s.OnWritable = pump
	pump()
}

// payload builds a canary-prefixed payload of at least size bytes.
func (r *runner) payload(size int) []byte {
	min := len(Canary) + 8
	if size < min {
		size = min
	}
	b := make([]byte, size)
	copy(b, Canary)
	binary.BigEndian.PutUint64(b[len(Canary):], r.payloadSeq)
	r.payloadSeq++
	r.traffic.Bytes(b[min:])
	return b
}

// flowOrder returns flow ids in ascending order — the deterministic
// iteration order for quiescence checkers.
func (r *runner) flowOrder() []uint64 {
	out := make([]uint64, 0, len(r.flows))
	for f := range r.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
