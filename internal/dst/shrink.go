package dst

import (
	"encoding/json"
	"fmt"
)

// ShrinkResult is a minimized counterexample: the smallest event
// schedule found that still reproduces the original violation's checker,
// plus the violation it produces and the run budget consumed.
type ShrinkResult struct {
	Scenario  *Scenario
	Violation *Violation
	Original  int // events in the unshrunk schedule
	Runs      int // scenario executions spent shrinking
}

// DefaultShrinkRuns bounds the executions one shrink may spend. Each run
// is a full deterministic replay, typically milliseconds.
const DefaultShrinkRuns = 400

// Shrink minimizes sc's event schedule while the violation keeps
// reproducing, using greedy delta debugging: remove chunks of the
// schedule (halving the chunk size down to 1) and keep any removal that
// still trips the same checker, iterating the single-event pass to a
// fixpoint. The result is 1-minimal modulo the run budget: removing any
// single remaining event stops the violation from reproducing.
//
// Shrinking is deterministic — every candidate replays from scratch from
// the scenario seed — so the returned schedule reproduces its violation
// byte-identically on replay.
func Shrink(sc *Scenario, mut Mutations, maxRuns int) ShrinkResult {
	if maxRuns <= 0 {
		maxRuns = DefaultShrinkRuns
	}
	res := ShrinkResult{Scenario: sc, Original: len(sc.Events), Runs: 1}
	first := Run(sc, mut)
	res.Violation = first.Violation
	if first.Violation == nil {
		return res
	}
	want := first.Violation.Checker

	cur := sc.Events
	curV := first.Violation
	try := func(events []Event) *Violation {
		if res.Runs >= maxRuns {
			return nil
		}
		res.Runs++
		out := Run(sc.WithEvents(events), mut)
		if out.Violation != nil && out.Violation.Checker == want {
			return out.Violation
		}
		return nil
	}

	chunk := (len(cur) + 1) / 2
	for chunk >= 1 && res.Runs < maxRuns {
		removed := false
		for start := 0; start < len(cur) && res.Runs < maxRuns; {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Event, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if v := try(cand); v != nil {
				cur, curV = cand, v
				removed = true
				// Do not advance: the next chunk slid into this slot.
			} else {
				start = end
			}
		}
		if chunk > 1 {
			chunk = (chunk + 1) / 2
		} else if !removed {
			break // 1-minimal: no single event can be removed
		}
	}
	res.Scenario = sc.WithEvents(cur)
	res.Violation = curV
	return res
}

// Trace is the replayable artifact cmd/tapcheck dumps for a violation.
type Trace struct {
	Seed      uint64     `json:"seed"`
	Profile   Profile    `json:"profile"`
	Violation *Violation `json:"violation"`
	// OriginalEvents is the schedule length before shrinking; Scenario
	// holds the shrunk schedule that still reproduces the violation.
	OriginalEvents int       `json:"original_events"`
	Scenario       *Scenario `json:"scenario"`
}

// NewTrace packages a shrink result for dumping.
func NewTrace(sr ShrinkResult) *Trace {
	return &Trace{
		Seed:           sr.Scenario.Seed,
		Profile:        sr.Scenario.Profile,
		Violation:      sr.Violation,
		OriginalEvents: sr.Original,
		Scenario:       sr.Scenario,
	}
}

// JSON renders the trace deterministically (fixed field order, no
// timestamps): equal violations produce byte-equal trace files.
func (t *Trace) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dst: encoding trace: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeTrace parses a dumped trace.
func DecodeTrace(b []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("dst: decoding trace: %w", err)
	}
	return &t, nil
}
