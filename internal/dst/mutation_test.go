package dst

import (
	"reflect"
	"testing"
)

// mutationCase pairs a planted bug with the checker that must catch it.
// maxShrunk bounds the shrunk counterexample size: the pool plants need
// only a pool and one partition to fire, so their traces must shrink to
// a handful of events.
type mutationCase struct {
	name      string
	mut       Mutations
	profile   Profile
	checker   string
	maxShrunk int
}

func mutationCases() []mutationCase {
	return []mutationCase{
		{"skip-migration", Mutations{SkipMigration: true}, ProfileStorage, "tha-replication", 25},
		{"corrupt-leaf", Mutations{CorruptLeaf: true}, ProfileMembership, "leafset", 25},
		{"drop-onion-layer", Mutations{DropOnionLayer: true}, ProfileFull, "tunnel-liveness", 25},
		{"leak-payload", Mutations{LeakPayload: true}, ProfileFull, "no-plaintext", 25},
		{"disable-ack-dedup", Mutations{DisableAckDedup: true}, ProfileFull, "exactly-once", 25},
		{"stall-rebuild", Mutations{StallRebuild: true}, ProfilePool, "pool-reconverge", 5},
		{"uncapped-rebuild", Mutations{UncappedRebuild: true}, ProfilePool, "rebuild-rate", 5},
		{"stream-reorder-bypass", Mutations{StreamReorderBypass: true}, ProfileStream, "stream-in-order-delivery", 25},
		{"stream-window-bypass", Mutations{StreamWindowBypass: true}, ProfileStream, "window-conservation", 25},
	}
}

// mutationSeedBudget bounds how many generated seeds a planted bug may
// take to trip its checker. The weakest plant (disable-ack-dedup, which
// needs a lossy seed whose retransmit duplicates actually land) fires
// within the first 5 seeds; 20 leaves headroom against generator drift.
const mutationSeedBudget = 20

// firstFiringSeed scans the seed budget for the first seed on which the
// plant trips its designated checker, failing the test if any seed trips
// a *different* checker first (a cross-firing plant means the checker
// attribution is wrong).
func firstFiringSeed(t *testing.T, c mutationCase) uint64 {
	t.Helper()
	for seed := uint64(1); seed <= mutationSeedBudget; seed++ {
		res := Run(Gen(seed, c.profile), c.mut)
		if res.Err != nil {
			t.Fatalf("seed %d: infrastructure error: %v", seed, res.Err)
		}
		if res.Violation == nil {
			continue
		}
		if res.Violation.Checker != c.checker {
			t.Fatalf("seed %d: plant %s tripped checker %s, want %s: %s",
				seed, c.name, res.Violation.Checker, c.checker, res.Violation.Msg)
		}
		return seed
	}
	t.Fatalf("plant %s never tripped %s within %d seeds", c.name, c.checker, mutationSeedBudget)
	return 0
}

// TestMutationsCaught is the checker self-test: every planted bug must
// make its matching invariant fire within the seed budget, and the honest
// (unmutated) replay of the same scenario must stay clean — proving the
// checker reacts to the bug, not to the scenario.
func TestMutationsCaught(t *testing.T) {
	for _, c := range mutationCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seed := firstFiringSeed(t, c)
			sc := Gen(seed, c.profile)
			honest := Run(sc, Mutations{})
			if honest.Violation != nil {
				t.Fatalf("seed %d: honest run of the firing scenario violated %s: %s",
					seed, honest.Violation.Checker, honest.Violation.Msg)
			}
		})
	}
}

// TestMutationShrinks runs the shrinker on each plant's first firing
// scenario: the shrunk schedule must stay under the case's
// counterexample size bound, still trip the same checker, and replay
// deterministically.
func TestMutationShrinks(t *testing.T) {
	for _, c := range mutationCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seed := firstFiringSeed(t, c)
			sr := Shrink(Gen(seed, c.profile), c.mut, 0)
			if sr.Violation == nil {
				t.Fatalf("shrink lost the violation")
			}
			if sr.Violation.Checker != c.checker {
				t.Fatalf("shrunk violation moved to checker %s, want %s", sr.Violation.Checker, c.checker)
			}
			if got := len(sr.Scenario.Events); got > c.maxShrunk {
				t.Fatalf("shrunk schedule has %d events, want <= %d (from %d)",
					got, c.maxShrunk, sr.Original)
			}
			if len(sr.Scenario.Events) >= sr.Original && sr.Original > 1 {
				t.Fatalf("shrinker removed nothing (%d events)", sr.Original)
			}
			// The shrunk scenario replays to the identical violation.
			again := Run(sr.Scenario, c.mut)
			if !reflect.DeepEqual(again.Violation, sr.Violation) {
				t.Fatalf("shrunk replay diverged:\n%+v\n%+v", again.Violation, sr.Violation)
			}
		})
	}
}

// TestMutationTraceRoundTrip dumps a shrunk counterexample to its trace
// JSON, reloads it, and replays the reloaded scenario — the full
// tapcheck artifact cycle.
func TestMutationTraceRoundTrip(t *testing.T) {
	c := mutationCases()[0]
	seed := firstFiringSeed(t, c)
	sr := Shrink(Gen(seed, c.profile), c.mut, 0)
	tr := NewTrace(sr)
	blob, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(back.Scenario, c.mut)
	if !reflect.DeepEqual(res.Violation, sr.Violation) {
		t.Fatalf("trace replay diverged:\n%+v\n%+v", res.Violation, sr.Violation)
	}
}
