package dst

import (
	"fmt"

	"tap/internal/simnet"
)

// Checker is one registered runtime invariant. AfterEvent runs right
// after every applied schedule event; AtQuiescence runs once the kernel
// drains. Either may be nil. The no-plaintext invariant is not listed
// here — it is a wire tap installed in build() that fires synchronously
// on the offending frame — but it reports violations under the same
// naming scheme.
type Checker struct {
	Name         string
	Doc          string
	AfterEvent   func(r *runner) (string, bool)
	AtQuiescence func(r *runner) (string, bool)
}

// Checkers returns the invariant registry, in evaluation order. The
// order is part of the deterministic-replay contract: the first
// violating checker wins, every run.
func Checkers() []Checker {
	return []Checker{
		{
			Name: "tha-replication",
			Doc: "every surviving hop anchor is stored on exactly the k " +
				"live nodes numerically closest to its hopid, in oracle order (§3)",
			AfterEvent:   checkTHAReplication,
			AtQuiescence: checkTHAReplication,
		},
		{
			Name: "leafset",
			Doc: "every live node's leaf set matches the oracle's ring " +
				"neighborhood and routing tables respect their slot constraints",
			AfterEvent:   checkLeafSet,
			AtQuiescence: checkLeafSet,
		},
		{
			Name: "no-plaintext",
			Doc: "no frame on the wire exposes payload bytes outside a " +
				"sealed layer (checked per transmission by a wire tap)",
		},
		{
			Name: "tunnel-liveness",
			Doc: "every reliable flow resolves, and — in loss-free runs — a " +
				"flow through a tunnel whose anchors all survived is delivered (§6 hop takeover)",
			AtQuiescence: checkTunnelLiveness,
		},
		{
			Name: "exactly-once",
			Doc: "a flow's terminal delivers it to the application at most " +
				"once and its outcome callback fires at most once, despite retransmission",
			AtQuiescence: checkExactlyOnce,
		},
	}
}

// runCheckers evaluates the registry at one point (event index, or -1 at
// quiescence) and records the first violation.
func (r *runner) runCheckers(event int, quiescence bool) {
	for _, c := range Checkers() {
		fn := c.AfterEvent
		if quiescence {
			fn = c.AtQuiescence
		}
		if fn == nil {
			continue
		}
		if msg, bad := fn(r); bad {
			r.violate(c.Name, msg)
			return
		}
	}
}

// checkTHAReplication compares every tracked anchor's replica list with
// the oracle's k-closest set, elementwise and in order. Anchors with no
// surviving replica are legitimately lost (the "all k failed
// simultaneously" case) and skipped. Iteration follows first-deployment
// order, so the first violation is stable across replays.
func checkTHAReplication(r *runner) (string, bool) {
	for _, key := range r.anchors {
		if !r.dir.Available(key) {
			continue
		}
		reps := r.mgr.Replicas(key)
		want := r.ov.ReplicaSet(key, r.mgr.K())
		if len(reps) != len(want) {
			return fmt.Sprintf("anchor %s has %d replicas, oracle wants %d",
				key.Short(), len(reps), len(want)), true
		}
		for i, n := range want {
			if reps[i] != simnet.Addr(n.Addr()) {
				return fmt.Sprintf("anchor %s replica[%d] at addr %d, oracle wants addr %d",
					key.Short(), i, reps[i], n.Addr()), true
			}
		}
	}
	return "", false
}

// checkLeafSet delegates to the overlay's structural invariants, which
// iterate the sorted live index — deterministic messages for free.
func checkLeafSet(r *runner) (string, bool) {
	if err := r.ov.CheckInvariants(); err != nil {
		return err.Error(), true
	}
	return "", false
}

// checkTunnelLiveness verifies at quiescence that (a) every reliable
// flow resolved — delivered or exhausted — and (b) in loss-free runs,
// every flow whose tunnel remained functional (each hop anchor kept a
// live replica; anchors never resurrect, so functional-at-end implies
// functional throughout) was delivered. Under packet loss (b) is
// undecidable — an honest retransmit budget can exhaust — so it is
// skipped there.
func checkTunnelLiveness(r *runner) (string, bool) {
	for _, flow := range r.flowOrder() {
		if r.flows[flow].outcomes == 0 {
			return fmt.Sprintf("flow %d never resolved (no delivery, no exhaust)", flow), true
		}
	}
	if r.sc.Loss > 0 {
		return "", false
	}
	for _, flow := range r.flowOrder() {
		rec := r.flows[flow]
		if rec.outcome.Delivered {
			continue
		}
		functional := true
		for _, h := range rec.tunnel.Hops {
			if !r.dir.Available(h.HopID) {
				functional = false
				break
			}
		}
		if functional {
			return fmt.Sprintf("flow %d failed (%s) though every hop anchor kept a live replica",
				flow, rec.outcome.FailedAt), true
		}
	}
	return "", false
}

// checkExactlyOnce verifies the delivery-count discipline per flow. The
// OnDeliver hook also fires this check synchronously at the offending
// arrival; this quiescence pass is the backstop that additionally ties
// delivery counts to outcomes.
func checkExactlyOnce(r *runner) (string, bool) {
	for _, flow := range r.flowOrder() {
		rec := r.flows[flow]
		if rec.fresh > 1 {
			return fmt.Sprintf("flow %d delivered fresh to the terminal %d times", flow, rec.fresh), true
		}
		if rec.outcomes > 1 {
			return fmt.Sprintf("flow %d fired its outcome callback %d times", flow, rec.outcomes), true
		}
		if rec.outcomes == 1 && rec.outcome.Delivered && rec.fresh == 0 {
			return fmt.Sprintf("flow %d reported delivered but its terminal never saw data", flow), true
		}
	}
	return "", false
}
