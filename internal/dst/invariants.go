package dst

import (
	"fmt"

	"tap/internal/simnet"
)

// Checker is one registered runtime invariant. AfterEvent runs right
// after every applied schedule event; AtQuiescence runs once the kernel
// drains. Either may be nil. The no-plaintext invariant is not listed
// here — it is a wire tap installed in build() that fires synchronously
// on the offending frame — but it reports violations under the same
// naming scheme.
type Checker struct {
	Name         string
	Doc          string
	AfterEvent   func(r *runner) (string, bool)
	AtQuiescence func(r *runner) (string, bool)
}

// Checkers returns the invariant registry, in evaluation order. The
// order is part of the deterministic-replay contract: the first
// violating checker wins, every run.
func Checkers() []Checker {
	return []Checker{
		{
			Name: "tha-replication",
			Doc: "every surviving hop anchor is stored on exactly the k " +
				"live nodes numerically closest to its hopid, in oracle order (§3)",
			AfterEvent:   checkTHAReplication,
			AtQuiescence: checkTHAReplication,
		},
		{
			Name: "leafset",
			Doc: "every live node's leaf set matches the oracle's ring " +
				"neighborhood and routing tables respect their slot constraints",
			AfterEvent:   checkLeafSet,
			AtQuiescence: checkLeafSet,
		},
		{
			Name: "no-plaintext",
			Doc: "no frame on the wire exposes payload bytes outside a " +
				"sealed layer (checked per transmission by a wire tap)",
		},
		{
			Name: "tunnel-liveness",
			Doc: "every reliable flow resolves, and — in loss-free runs — a " +
				"flow through a tunnel whose anchors all survived is delivered (§6 hop takeover)",
			AtQuiescence: checkTunnelLiveness,
		},
		{
			Name: "exactly-once",
			Doc: "a flow's terminal delivers it to the application at most " +
				"once and its outcome callback fires at most once, despite retransmission",
			AtQuiescence: checkExactlyOnce,
		},
		{
			Name: "rebuild-rate",
			Doc: "every tunnel rebuild was admitted by the shared rate " +
				"limiter, and the limiter never admitted more than its bucket bound allows",
			AfterEvent:   checkRebuildRate,
			AtQuiescence: checkRebuildRate,
		},
		{
			Name: "pool-reconverge",
			Doc: "in loss-free runs, every tunnel pool is back at its " +
				"target healthy size once all partitions healed and the repair horizon passed",
			AtQuiescence: checkPoolReconverge,
		},
		{
			Name: "stream-in-order-delivery",
			Doc: "a windowed stream's receiver hands the application " +
				"strictly in-order, byte-identical, exactly-once data (checked " +
				"synchronously at each delivery), every stream resolves, and a " +
				"completed stream closed exactly once with every sent byte delivered",
			AtQuiescence: checkStreamDelivery,
		},
		{
			Name: "window-conservation",
			Doc: "a stream sender never holds more unacknowledged segments " +
				"in flight than its configured window",
			AfterEvent:   checkWindowConservation,
			AtQuiescence: checkWindowConservation,
		},
	}
}

// runCheckers evaluates the registry at one point (event index, or -1 at
// quiescence) and records the first violation.
func (r *runner) runCheckers(event int, quiescence bool) {
	for _, c := range Checkers() {
		fn := c.AfterEvent
		if quiescence {
			fn = c.AtQuiescence
		}
		if fn == nil {
			continue
		}
		if msg, bad := fn(r); bad {
			r.violate(c.Name, msg)
			return
		}
	}
}

// checkTHAReplication compares every tracked anchor's replica list with
// the oracle's k-closest set, elementwise and in order. Anchors with no
// surviving replica are legitimately lost (the "all k failed
// simultaneously" case) and skipped. Iteration follows first-deployment
// order, so the first violation is stable across replays.
func checkTHAReplication(r *runner) (string, bool) {
	for _, key := range r.anchors {
		if !r.dir.Available(key) {
			continue
		}
		reps := r.mgr.Replicas(key)
		want := r.ov.ReplicaSet(key, r.mgr.K())
		if len(reps) != len(want) {
			return fmt.Sprintf("anchor %s has %d replicas, oracle wants %d",
				key.Short(), len(reps), len(want)), true
		}
		for i, n := range want {
			if reps[i] != simnet.Addr(n.Addr()) {
				return fmt.Sprintf("anchor %s replica[%d] at addr %d, oracle wants addr %d",
					key.Short(), i, reps[i], n.Addr()), true
			}
		}
	}
	return "", false
}

// checkLeafSet delegates to the overlay's structural invariants, which
// iterate the sorted live index — deterministic messages for free.
func checkLeafSet(r *runner) (string, bool) {
	if err := r.ov.CheckInvariants(); err != nil {
		return err.Error(), true
	}
	return "", false
}

// checkTunnelLiveness verifies at quiescence that (a) every reliable
// flow resolved — delivered or exhausted — and (b) in loss-free runs,
// every flow whose tunnel remained functional (each hop anchor kept a
// live replica; anchors never resurrect, so functional-at-end implies
// functional throughout) was delivered. Under packet loss (b) is
// undecidable — an honest retransmit budget can exhaust — so it is
// skipped there.
func checkTunnelLiveness(r *runner) (string, bool) {
	for _, flow := range r.flowOrder() {
		if r.flows[flow].outcomes == 0 {
			return fmt.Sprintf("flow %d never resolved (no delivery, no exhaust)", flow), true
		}
	}
	for i, rec := range r.poolSends {
		if rec.outcomes == 0 {
			return fmt.Sprintf("pool send %d never resolved (no delivery, no exhaust)", i), true
		}
	}
	if r.sc.Loss > 0 || r.hasPartitions {
		// Under loss or partitions (b) is undecidable: an honest flow can
		// exhaust its budget while every hop anchor keeps a live replica.
		return "", false
	}
	for _, flow := range r.flowOrder() {
		rec := r.flows[flow]
		if rec.outcome.Delivered || rec.tunnel == nil {
			continue
		}
		functional := true
		for _, h := range rec.tunnel.Hops {
			if !r.dir.Available(h.HopID) {
				functional = false
				break
			}
		}
		if functional {
			return fmt.Sprintf("flow %d failed (%s) though every hop anchor kept a live replica",
				flow, rec.outcome.FailedAt), true
		}
	}
	return "", false
}

// checkExactlyOnce verifies the delivery-count discipline per flow. The
// OnDeliver hook also fires this check synchronously at the offending
// arrival; this quiescence pass is the backstop that additionally ties
// delivery counts to outcomes.
func checkExactlyOnce(r *runner) (string, bool) {
	for _, flow := range r.flowOrder() {
		rec := r.flows[flow]
		if rec.fresh > 1 {
			return fmt.Sprintf("flow %d delivered fresh to the terminal %d times", flow, rec.fresh), true
		}
		if rec.outcomes > 1 {
			return fmt.Sprintf("flow %d fired its outcome callback %d times", flow, rec.outcomes), true
		}
		if rec.outcomes == 1 && rec.outcome.Delivered && rec.fresh == 0 {
			return fmt.Sprintf("flow %d reported delivered but its terminal never saw data", flow), true
		}
	}
	for i, rec := range r.poolSends {
		if rec.outcomes > 1 {
			return fmt.Sprintf("pool send %d fired its outcome callback %d times", i, rec.outcomes), true
		}
	}
	return "", false
}

// checkStreamDelivery is the quiescence backstop behind the synchronous
// OnData discipline (in-order, byte-identical, exactly-once): every
// stream must have resolved — the kernel only drains once each stream
// completed or exhausted its retries, so a silent stall is a liveness
// bug — with exactly one completion callback, and a stream that reports
// Done must have closed its receiver exactly once after delivering every
// sent byte. Decidable under loss and reordering alike: an exhausted
// retry budget still resolves (Done stays false) and is not a violation.
func checkStreamDelivery(r *runner) (string, bool) {
	for _, sid := range r.streamIDs {
		rec := r.streams[sid]
		if rec.completions == 0 {
			return fmt.Sprintf("stream %d never resolved (no completion callback)", sid), true
		}
		if rec.completions > 1 {
			return fmt.Sprintf("stream %d fired its completion callback %d times", sid, rec.completions), true
		}
		if !rec.s.Done() {
			continue
		}
		if rec.closes != 1 {
			return fmt.Sprintf("stream %d completed but its receiver closed %d times", sid, rec.closes), true
		}
		if rec.recvOff != len(rec.content) {
			return fmt.Sprintf("stream %d completed but the receiver assembled %d of %d sent bytes",
				sid, rec.recvOff, len(rec.content)), true
		}
	}
	return "", false
}

// checkWindowConservation audits every stream sender's peak-inflight
// observable against the window it was opened with. A sender that
// overfills its window (the congestion-collapse bug this checker exists
// for) is caught on the first event after the burst, regardless of
// whether the extra segments ever arrive.
func checkWindowConservation(r *runner) (string, bool) {
	for _, sid := range r.streamIDs {
		rec := r.streams[sid]
		if got, w := rec.s.MaxInflightSegs(), rec.s.ConfiguredWindow(); got > w {
			return fmt.Sprintf("stream %d put %d segments in flight, window %d", sid, got, w), true
		}
	}
	return "", false
}

// checkRebuildRate audits the pools' shared rebuild admission control:
// (a) the limiter's arithmetic — it never admits more than its token
// bucket bound allows by the current time — and (b) the pools' honesty —
// every rebuild any pool ran was an admitted one. A pool that bypasses
// admission (the rebuild-storm bug this checker exists for) shows more
// rebuilds than admissions on its first bypassed rebuild, regardless of
// storm size. Decidable under loss and partitions alike, so it is never
// skipped.
func checkRebuildRate(r *runner) (string, bool) {
	var rebuilds uint64
	for _, c := range r.clients {
		if c.pool != nil {
			rebuilds += c.pool.Stats.Rebuilds
		}
	}
	bound := r.limiter.Bound(r.kernel.Now())
	if float64(r.limiter.Admitted) > bound+1e-9 {
		return fmt.Sprintf("limiter admitted %d rebuilds by t=%v, bucket bound %.2f",
			r.limiter.Admitted, r.kernel.Now(), bound), true
	}
	if rebuilds > r.limiter.Admitted {
		return fmt.Sprintf("pools ran %d rebuilds but the limiter admitted only %d",
			rebuilds, r.limiter.Admitted), true
	}
	return "", false
}

// checkPoolReconverge verifies self-healing at quiescence: once every
// partition healed and the repair horizon passed (the runner stops pools
// only after poolRepairBudget), each pool must be back to its target
// number of healthy tunnels. Skipped under packet loss, where probe
// failures — and so repair timing — are not deterministic functions of
// the schedule.
func checkPoolReconverge(r *runner) (string, bool) {
	if r.sc.Loss > 0 || r.net.PartitionActive() {
		return "", false
	}
	for i, c := range r.clients {
		if c.pool == nil {
			continue
		}
		if got, want := c.pool.HealthyCount(), c.pool.TargetSize(); got != want {
			return fmt.Sprintf("client %d pool has %d healthy tunnels at quiescence, want %d",
				i, got, want), true
		}
	}
	return "", false
}
