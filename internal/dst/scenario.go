// Package dst is the deterministic simulation-testing subsystem: it
// generates seeded churn/fault/traffic schedules, replays them on the
// discrete-event simulator while evaluating runtime invariant checkers
// after every event, and — on a violation — shrinks the event schedule to
// a minimal counterexample that replays bit-for-bit from its seed.
//
// The invariants are the paper's load-bearing claims: THA replicas must
// always be the k numerically-closest live nodes (§3), leaf sets must
// stay converged under churn, a tunnel whose anchors all retain a live
// replica must keep delivering across hop takeover (§6), terminal
// delivery must be exactly-once under retransmission, and no payload
// bytes may ever appear unsealed on the wire (Figure 1's layering).
//
// Every run is a pure function of (Scenario, Mutations): the same seed
// reproduces the same violation byte-for-byte, which is what makes the
// shrunk traces committed by cmd/tapcheck actionable.
package dst

import (
	"encoding/json"
	"fmt"
	"time"

	"tap/internal/rng"
	"tap/internal/simnet"
)

// EventKind names one schedule step. String-typed so dumped traces read
// without a decoder ring.
type EventKind string

const (
	// EvJoin adds one fresh node to the overlay.
	EvJoin EventKind = "join"
	// EvFail kills one node (overlay failure + network detach). The
	// victim is resolved from the Addr selector at execution time.
	EvFail EventKind = "fail"
	// EvBatchFail kills several nodes simultaneously (migration
	// suspended for the batch, the Figure 2 correlated-failure model).
	EvBatchFail EventKind = "batch-fail"
	// EvDeploy has a client deploy N fresh hop anchors.
	EvDeploy EventKind = "deploy"
	// EvForm has a client form an L-hop tunnel from its pool.
	EvForm EventKind = "form"
	// EvSend has a client send a reliable forward-tunnel flow.
	EvSend EventKind = "send"
	// EvPool has a client build and start a self-healing tunnel pool of N
	// tunnels of length L (deploying any missing anchors itself). At most
	// one pool per client; a second EvPool skips.
	EvPool EventKind = "pool"
	// EvPartition cuts the client's node off from the rest of the network
	// for Dur (symmetric by default; Asym drops only traffic into the
	// client). Healing is scheduled automatically, so a partition window
	// stays self-contained under shrinking.
	EvPartition EventKind = "partition"
	// EvPoolSend has a client send through its tunnel pool (failover and
	// fast-fail semantics) rather than over one fixed tunnel.
	EvPoolSend EventKind = "pool-send"
	// EvStream has a client open a windowed stream — over one of its
	// formed tunnels when it has any, else the direct overt path — and
	// pump Size bytes through a W-segment send window.
	EvStream EventKind = "stream"
)

// Event is one concrete schedule step. Selector fields (Addr, Addrs, T)
// are raw values resolved against live state at execution time, so an
// event stays applicable — or skips cleanly — after the shrinker removes
// arbitrary earlier events.
type Event struct {
	At   simnet.Time `json:"at"`
	Kind EventKind   `json:"kind"`

	Addr  uint64   `json:"addr,omitempty"`  // fail: victim selector
	Addrs []uint64 `json:"addrs,omitempty"` // batch-fail: victim selectors

	Client int  `json:"client,omitempty"` // deploy/form/send/pool/partition: client index
	N      int  `json:"n,omitempty"`      // deploy: anchor count; pool: pool size
	L      int  `json:"l,omitempty"`      // form/pool: tunnel length
	T      int  `json:"t,omitempty"`      // send: tunnel selector (mod formed tunnels)
	Size   int  `json:"size,omitempty"`   // send/pool-send/stream: payload bytes
	Hints  bool `json:"hints,omitempty"`  // send: use a freshly refreshed hint cache
	W      int  `json:"w,omitempty"`      // stream: send window (segments)

	Asym bool        `json:"asym,omitempty"` // partition: inbound-only cut
	Dur  simnet.Time `json:"dur,omitempty"`  // partition: window length
}

// Profile selects which event mix the generator draws from.
type Profile string

const (
	// ProfileFull mixes membership churn, anchor deployment, tunnel
	// formation and traffic — the default for cmd/tapcheck.
	ProfileFull Profile = "full"
	// ProfileMembership drives only joins, failures and batch failures:
	// the overlay/leaf-set property surface.
	ProfileMembership Profile = "membership"
	// ProfileStorage drives membership churn plus anchor deployments,
	// with no traffic: the THA replication property surface.
	ProfileStorage Profile = "storage"
	// ProfilePool drives tunnel pools through churn and network
	// partitions: the self-healing property surface (reconvergence and
	// rebuild admission control). Loss-free by construction so pool
	// reconvergence stays decidable.
	ProfilePool Profile = "pool"
	// ProfileStream drives windowed streams through churn, loss and
	// adversarial reordering: the in-order-stream-delivery and
	// window-conservation property surface. Both stream invariants stay
	// decidable under loss (a stream that exhausts its retries resolves
	// honestly), so lossy seeds are as useful as loss-free ones.
	ProfileStream Profile = "stream"
)

// Scenario is one replayable simulation: world shape, fault knobs, and
// the event schedule. Everything is exported and JSON-clean so shrunk
// counterexamples dump and reload losslessly.
type Scenario struct {
	Seed    uint64  `json:"seed"`
	Profile Profile `json:"profile"`

	Nodes   int `json:"nodes"`
	K       int `json:"k"`
	Clients int `json:"clients"`

	// Loss and Spike configure a simnet FaultPlan; Reorder is the
	// probability each delivered frame is held back by an extra delay up
	// to ReorderMax (adversarial reordering: retransmissions can overtake
	// originals).
	Loss       float64     `json:"loss"`
	Spike      float64     `json:"spike"`
	Reorder    float64     `json:"reorder"`
	ReorderMax simnet.Time `json:"reorder_max"`

	Events []Event `json:"events"`
}

// WithEvents returns a copy of the scenario carrying a different event
// schedule — the shrinker's workhorse.
func (sc *Scenario) WithEvents(events []Event) *Scenario {
	out := *sc
	out.Events = events
	return &out
}

// JSON renders the scenario for trace files.
func (sc *Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// DecodeScenario parses a scenario dumped by JSON.
func DecodeScenario(b []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(b, &sc); err != nil {
		return nil, fmt.Errorf("dst: decoding scenario: %w", err)
	}
	return &sc, nil
}

// Gen derives a scenario from a seed. The same (seed, profile) always
// yields the same scenario; distinct seeds explore different world sizes,
// fault intensities and event mixes. Roughly half of all seeds are
// loss-free, because the tunnel-liveness invariant is only decidable
// without loss (a retransmit budget can exhaust honestly under it).
func Gen(seed uint64, profile Profile) *Scenario {
	root := rng.New(seed)
	shape := root.Split("shape")
	evs := root.Split("events")

	sc := &Scenario{
		Seed:    seed,
		Profile: profile,
		Nodes:   40 + shape.Intn(80),
		K:       3 + shape.Intn(2),
		Clients: 2,
	}
	if profile == ProfileMembership {
		sc.Clients = 0
	}
	if profile == ProfileFull || profile == ProfileStream {
		if shape.Bool(0.5) {
			sc.Loss = 0.02 + 0.1*shape.Float64()
		}
		if shape.Bool(0.3) {
			sc.Spike = 0.05 + 0.15*shape.Float64()
		}
		if shape.Bool(0.5) {
			sc.Reorder = 0.05 + 0.25*shape.Float64()
			sc.ReorderMax = simnet.Time(50+shape.Intn(450)) * time.Millisecond
		}
	}

	// A deterministic prelude gives traffic something to ride on: anchors
	// first, then tunnels. The prelude is ordinary schedule events — the
	// shrinker removes them like any others.
	at := simnet.Time(0)
	next := func() simnet.Time {
		at += simnet.Time(5+evs.Intn(120)) * time.Millisecond
		return at
	}
	switch profile {
	case ProfileFull, ProfileStream:
		for c := 0; c < sc.Clients; c++ {
			sc.Events = append(sc.Events, Event{At: next(), Kind: EvDeploy, Client: c, N: 8})
		}
		for c := 0; c < sc.Clients; c++ {
			sc.Events = append(sc.Events, Event{At: next(), Kind: EvForm, Client: c, L: 2 + evs.Intn(3)})
		}
	case ProfileStorage:
		for c := 0; c < sc.Clients; c++ {
			sc.Events = append(sc.Events, Event{At: next(), Kind: EvDeploy, Client: c, N: 8})
		}
	case ProfilePool:
		for c := 0; c < sc.Clients; c++ {
			sc.Events = append(sc.Events, Event{At: next(), Kind: EvPool, Client: c, N: 2, L: 2})
		}
	}

	n := 20 + evs.Intn(30)
	if profile == ProfilePool {
		// Pool scenarios run a long post-schedule repair horizon, so keep
		// the schedules themselves shorter.
		n = 12 + evs.Intn(12)
	}
	for i := 0; i < n; i++ {
		sc.Events = append(sc.Events, genEvent(sc, profile, evs, next()))
	}
	return sc
}

// genEvent draws one weighted random event.
func genEvent(sc *Scenario, profile Profile, evs *rng.Stream, at simnet.Time) Event {
	ev := Event{At: at}
	roll := evs.Intn(100)
	switch profile {
	case ProfileMembership:
		switch {
		case roll < 45:
			ev.Kind = EvJoin
		case roll < 90:
			ev.Kind = EvFail
			ev.Addr = uint64(evs.Intn(1 << 16))
		default:
			ev.Kind = EvBatchFail
			for i, m := 0, 2+evs.Intn(5); i < m; i++ {
				ev.Addrs = append(ev.Addrs, uint64(evs.Intn(1<<16)))
			}
		}
	case ProfilePool:
		switch {
		case roll < 15:
			ev.Kind = EvJoin
		case roll < 35:
			ev.Kind = EvFail
			ev.Addr = uint64(evs.Intn(1 << 16))
		case roll < 45:
			ev.Kind = EvBatchFail
			for i, m := 0, 2+evs.Intn(5); i < m; i++ {
				ev.Addrs = append(ev.Addrs, uint64(evs.Intn(1<<16)))
			}
		case roll < 65:
			ev.Kind = EvPartition
			ev.Client = evs.Intn(sc.Clients)
			ev.Asym = evs.Bool(0.3)
			ev.Dur = simnet.Time(20+evs.Intn(41)) * time.Second
		default:
			ev.Kind = EvPoolSend
			ev.Client = evs.Intn(sc.Clients)
			ev.Size = 256 + evs.Intn(1024)
		}
	case ProfileStream:
		switch {
		case roll < 15:
			ev.Kind = EvJoin
		case roll < 33:
			ev.Kind = EvFail
			ev.Addr = uint64(evs.Intn(1 << 16))
		case roll < 41:
			ev.Kind = EvBatchFail
			for i, m := 0, 2+evs.Intn(5); i < m; i++ {
				ev.Addrs = append(ev.Addrs, uint64(evs.Intn(1<<16)))
			}
		case roll < 53:
			ev.Kind = EvForm
			ev.Client = evs.Intn(sc.Clients)
			ev.L = 2 + evs.Intn(3)
		default:
			ev.Kind = EvStream
			ev.Client = evs.Intn(sc.Clients)
			ev.T = evs.Intn(8)
			ev.Size = 512 + evs.Intn(4096)
			ev.W = 2 + evs.Intn(6)
		}
	case ProfileStorage:
		switch {
		case roll < 30:
			ev.Kind = EvJoin
		case roll < 60:
			ev.Kind = EvFail
			ev.Addr = uint64(evs.Intn(1 << 16))
		case roll < 70:
			ev.Kind = EvBatchFail
			for i, m := 0, 2+evs.Intn(5); i < m; i++ {
				ev.Addrs = append(ev.Addrs, uint64(evs.Intn(1<<16)))
			}
		default:
			ev.Kind = EvDeploy
			ev.Client = evs.Intn(sc.Clients)
			ev.N = 2 + evs.Intn(4)
		}
	default: // ProfileFull
		switch {
		case roll < 18:
			ev.Kind = EvJoin
		case roll < 38:
			ev.Kind = EvFail
			ev.Addr = uint64(evs.Intn(1 << 16))
		case roll < 46:
			ev.Kind = EvBatchFail
			for i, m := 0, 2+evs.Intn(5); i < m; i++ {
				ev.Addrs = append(ev.Addrs, uint64(evs.Intn(1<<16)))
			}
		case roll < 60:
			ev.Kind = EvDeploy
			ev.Client = evs.Intn(sc.Clients)
			ev.N = 2 + evs.Intn(4)
		case roll < 72:
			ev.Kind = EvForm
			ev.Client = evs.Intn(sc.Clients)
			ev.L = 2 + evs.Intn(3)
		default:
			ev.Kind = EvSend
			ev.Client = evs.Intn(sc.Clients)
			ev.T = evs.Intn(8)
			ev.Size = 256 + evs.Intn(2048)
			ev.Hints = evs.Bool(0.5)
		}
	}
	return ev
}
