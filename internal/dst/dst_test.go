package dst

import (
	"reflect"
	"testing"
)

// TestCleanScenariosHold runs honest (unmutated) scenarios across seeds
// and profiles: no invariant may fire, no infrastructure error may
// occur, and the schedule must actually exercise the system.
func TestCleanScenariosHold(t *testing.T) {
	profiles := []Profile{ProfileFull, ProfileMembership, ProfileStorage, ProfilePool, ProfileStream}
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for _, p := range profiles {
		applied, delivered := 0, 0
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			res := Run(Gen(seed, p), Mutations{})
			if res.Err != nil {
				t.Fatalf("profile %s seed %d: %v", p, seed, res.Err)
			}
			if res.Violation != nil {
				t.Fatalf("profile %s seed %d: honest run violated invariant: %s",
					p, seed, res.Violation)
			}
			applied += len(res.Scenario.Events) - res.Skipped
			delivered += res.Delivered
		}
		if applied == 0 {
			t.Fatalf("profile %s: every event skipped — scenarios exercise nothing", p)
		}
		if (p == ProfileFull || p == ProfileStream) && delivered == 0 {
			t.Fatalf("%s profile delivered no flows across %d seeds", p, seeds)
		}
	}
}

// TestRunDeterministic replays the same scenario twice and demands
// field-identical results — the bit-for-bit contract tapcheck's
// seed-replay reporting rests on.
func TestRunDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		sc := Gen(seed, ProfileFull)
		a := Run(sc, Mutations{})
		b := Run(sc, Mutations{})
		if a.Err != nil || b.Err != nil {
			t.Fatalf("seed %d: %v / %v", seed, a.Err, b.Err)
		}
		if !reflect.DeepEqual(a.Violation, b.Violation) ||
			a.Delivered != b.Delivered || a.Failed != b.Failed ||
			a.Skipped != b.Skipped || a.Steps != b.Steps {
			t.Fatalf("seed %d: replay diverged:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGenDeterministicAndDiverse: same seed, same scenario; the seed
// range must cover both loss-free and lossy worlds (the liveness
// invariant is only decidable loss-free, so both sides need coverage).
func TestGenDeterministicAndDiverse(t *testing.T) {
	lossFree, lossy := 0, 0
	for seed := uint64(1); seed <= 20; seed++ {
		a, b := Gen(seed, ProfileFull), Gen(seed, ProfileFull)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Gen not deterministic", seed)
		}
		if len(a.Events) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if a.Loss == 0 {
			lossFree++
		} else {
			lossy++
		}
	}
	if lossFree == 0 || lossy == 0 {
		t.Fatalf("seeds 1..20 not diverse: %d loss-free, %d lossy", lossFree, lossy)
	}
}

// TestScenarioJSONRoundTrip: dump/reload must be lossless, so a trace
// file replays the exact scenario that violated.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Gen(7, ProfileFull)
	blob, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScenario(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", sc, got)
	}
}

// TestTraceJSONDeterministic: equal violations must produce byte-equal
// trace files (no timestamps, fixed field order).
func TestTraceJSONDeterministic(t *testing.T) {
	sc := Gen(3, ProfileMembership)
	a := NewTrace(Shrink(sc, Mutations{CorruptLeaf: true}, 100))
	b := NewTrace(Shrink(sc, Mutations{CorruptLeaf: true}, 100))
	if a.Violation == nil || b.Violation == nil {
		t.Skip("seed 3 does not trip the leaf plant; mutation tests cover firing")
	}
	ab, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("trace bytes differ between identical shrinks")
	}
	back, err := DecodeTrace(ab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Scenario, a.Scenario) {
		t.Fatalf("trace scenario round trip mismatch")
	}
}

// TestCheckerRegistryComplete pins the invariant catalogue: every
// documented checker is registered exactly once.
func TestCheckerRegistryComplete(t *testing.T) {
	want := []string{"tha-replication", "leafset", "no-plaintext", "tunnel-liveness",
		"exactly-once", "rebuild-rate", "pool-reconverge",
		"stream-in-order-delivery", "window-conservation"}
	got := Checkers()
	if len(got) != len(want) {
		t.Fatalf("registry has %d checkers, want %d", len(got), len(want))
	}
	for i, c := range got {
		if c.Name != want[i] {
			t.Fatalf("checker[%d] = %s, want %s", i, c.Name, want[i])
		}
		if c.Doc == "" {
			t.Fatalf("checker %s has no doc", c.Name)
		}
	}
}
