package tha

import (
	"testing"
	"testing/quick"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/rng"
)

// Property: anchors generated from any (nodeID, seed) pair have
// self-consistent password proofs, and wrong passwords never verify.
func TestPropAnchorPasswordSoundness(t *testing.T) {
	f := func(nodeID []byte, seed uint64, wrongRaw [16]byte) bool {
		s := rng.New(seed)
		g, err := NewGenerator(nodeID, s)
		if err != nil {
			return false
		}
		sec, err := g.Generate(s)
		if err != nil {
			return false
		}
		if !sec.PWHash.Verify(sec.PW) {
			return false
		}
		wrong := crypt.Password(wrongRaw)
		if wrong != sec.PW && sec.PWHash.Verify(wrong) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hopids are unique across generators and across the counter,
// for arbitrary node identifiers.
func TestPropHopIDUniqueness(t *testing.T) {
	seen := make(map[id.ID]bool)
	f := func(nodeID []byte, seed uint64) bool {
		s := rng.New(seed)
		g, err := NewGenerator(nodeID, s)
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			sec, err := g.Generate(s)
			if err != nil {
				return false
			}
			if seen[sec.HopID] {
				return false
			}
			seen[sec.HopID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ChooseScattered returns exactly l anchors, all from the
// pool, with no duplicates, for any pool ordering.
func TestPropChooseScatteredSound(t *testing.T) {
	s := rng.New(77)
	g, err := NewGenerator([]byte("prop"), s)
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]Secret, 24)
	inPool := make(map[id.ID]bool, len(pool))
	for i := range pool {
		sec, err := g.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = sec
		inPool[sec.HopID] = true
	}
	f := func(seed uint64, lRaw uint8) bool {
		l := int(lRaw%8) + 1
		stream := rng.New(seed)
		chosen, err := ChooseScattered(pool, l, 4, stream)
		if err != nil {
			return false
		}
		if len(chosen) != l {
			return false
		}
		dup := make(map[id.ID]bool, l)
		for _, c := range chosen {
			if !inPool[c.HopID] || dup[c.HopID] {
				return false
			}
			dup[c.HopID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
