package tha

import (
	"testing"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

func setup(t testing.TB, n, k int, seed uint64) (*pastry.Overlay, *Directory) {
	t.Helper()
	ov, err := pastry.Build(pastry.DefaultConfig(), n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ov, NewDirectory(ov, past.NewManager(ov, k))
}

func TestGeneratorUniqueAndDeterministicStructure(t *testing.T) {
	s := rng.New(1)
	g, err := NewGenerator([]byte("node-A"), s)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[id.ID]bool{}
	for i := 0; i < 100; i++ {
		sec, err := g.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		if seen[sec.HopID] {
			t.Fatalf("duplicate hopid at %d", i)
		}
		seen[sec.HopID] = true
		if !sec.PWHash.Verify(sec.PW) {
			t.Fatalf("secret PW does not match its own hash")
		}
	}
	if g.Counter() != 100 {
		t.Fatalf("counter = %d", g.Counter())
	}
}

func TestGeneratorsDoNotCollideAcrossNodes(t *testing.T) {
	s := rng.New(2)
	gA, _ := NewGenerator([]byte("node-A"), s)
	gB, _ := NewGenerator([]byte("node-B"), s)
	seen := map[id.ID]bool{}
	for i := 0; i < 200; i++ {
		a, _ := gA.Generate(s)
		b, _ := gB.Generate(s)
		if seen[a.HopID] || seen[b.HopID] || a.HopID == b.HopID {
			t.Fatalf("cross-node hopid collision")
		}
		seen[a.HopID] = true
		seen[b.HopID] = true
	}
}

func TestGeneratorUnlinkableWithoutHkey(t *testing.T) {
	// An observer knowing node_ID and t but not hkey cannot recompute the
	// hopid: H(node_ID ‖ t) must differ from H(node_ID ‖ hkey ‖ t).
	s := rng.New(3)
	g, _ := NewGenerator([]byte("node-A"), s)
	sec, _ := g.Generate(s)
	guess := id.Hash([]byte("node-A"), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	if sec.HopID == guess {
		t.Fatalf("hopid recomputable without hkey")
	}
}

func TestDeployFetchLifecycle(t *testing.T) {
	ov, d := setup(t, 100, 3, 4)
	s := rng.New(5)
	g, _ := NewGenerator([]byte("init"), s)
	sec, _ := g.Generate(s)

	if d.Available(sec.HopID) {
		t.Fatalf("anchor available before deployment")
	}
	if err := d.Deploy(sec.Anchor, 0); err != nil {
		t.Fatal(err)
	}
	if !d.Available(sec.HopID) {
		t.Fatalf("anchor unavailable after deployment")
	}

	// The hop node is the overlay owner and can fetch as holder.
	hop, ok := d.HopNode(sec.HopID)
	if !ok {
		t.Fatalf("no hop node")
	}
	if hop.ID() != ov.OwnerOf(sec.HopID).ID() {
		t.Fatalf("hop node is not the numerically closest node")
	}
	got, err := d.FetchAsHolder(hop.Ref().Addr, sec.HopID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != sec.Key {
		t.Fatalf("fetched key mismatch")
	}

	// All k replica holders can fetch; a random outsider cannot.
	for _, addr := range d.ReplicaAddrs(sec.HopID) {
		if _, err := d.FetchAsHolder(addr, sec.HopID); err != nil {
			t.Fatalf("replica holder %d denied: %v", addr, err)
		}
	}
	outsider := findOutsider(t, ov, d, sec.HopID)
	if _, err := d.FetchAsHolder(outsider, sec.HopID); err != ErrAccessDenied {
		t.Fatalf("outsider fetch err = %v, want ErrAccessDenied", err)
	}
}

func findOutsider(t *testing.T, ov *pastry.Overlay, d *Directory, hopID id.ID) simnet.Addr {
	t.Helper()
	replicas := map[simnet.Addr]bool{}
	for _, a := range d.ReplicaAddrs(hopID) {
		replicas[a] = true
	}
	for _, r := range ov.LiveRefs() {
		if !replicas[r.Addr] {
			return r.Addr
		}
	}
	t.Fatalf("no outsider found")
	return 0
}

func TestFetchAsOwner(t *testing.T) {
	_, d := setup(t, 60, 3, 6)
	s := rng.New(7)
	g, _ := NewGenerator([]byte("init"), s)
	sec, _ := g.Generate(s)
	if err := d.Deploy(sec.Anchor, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.FetchAsOwner(sec.HopID, sec.PW); err != nil {
		t.Fatalf("owner fetch failed: %v", err)
	}
	var wrong crypt.Password
	if _, err := d.FetchAsOwner(sec.HopID, wrong); err != ErrBadPassword {
		t.Fatalf("wrong pw err = %v", err)
	}
	if _, err := d.FetchAsOwner(id.HashString("nope"), sec.PW); err != ErrNotFound {
		t.Fatalf("missing anchor err = %v", err)
	}
}

func TestDeleteRequiresPassword(t *testing.T) {
	_, d := setup(t, 60, 3, 8)
	s := rng.New(9)
	g, _ := NewGenerator([]byte("init"), s)
	sec, _ := g.Generate(s)
	if err := d.Deploy(sec.Anchor, 0); err != nil {
		t.Fatal(err)
	}
	var wrong crypt.Password
	if err := d.Delete(sec.HopID, wrong); err != ErrBadPassword {
		t.Fatalf("delete with wrong pw err = %v", err)
	}
	if !d.Available(sec.HopID) {
		t.Fatalf("failed delete removed the anchor")
	}
	if err := d.Delete(sec.HopID, sec.PW); err != nil {
		t.Fatal(err)
	}
	if d.Available(sec.HopID) {
		t.Fatalf("anchor still available after delete")
	}
	if err := d.Delete(sec.HopID, sec.PW); err != ErrNotFound {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestDeployPuzzleCharge(t *testing.T) {
	_, d := setup(t, 40, 3, 10)
	d.PuzzleDifficulty = 8
	s := rng.New(11)
	g, _ := NewGenerator([]byte("init"), s)
	sec, _ := g.Generate(s)

	if err := d.Deploy(sec.Anchor, 999999); err == nil {
		t.Fatalf("unpaid deployment accepted")
	}
	if d.RejectedCount() != 1 {
		t.Fatalf("rejected count = %d", d.RejectedCount())
	}
	nonce := d.Puzzle(sec.HopID).Mint()
	if err := d.Deploy(sec.Anchor, nonce); err != nil {
		t.Fatalf("paid deployment rejected: %v", err)
	}
	if d.DeployedCount() != 1 {
		t.Fatalf("deployed count = %d", d.DeployedCount())
	}
}

func TestHopNodeFailsOverToCandidate(t *testing.T) {
	// The heart of TAP: kill the hop node and the anchor must resurface on
	// a candidate, with the same key.
	ov, d := setup(t, 120, 3, 12)
	s := rng.New(13)
	g, _ := NewGenerator([]byte("init"), s)
	sec, _ := g.Generate(s)
	if err := d.Deploy(sec.Anchor, 0); err != nil {
		t.Fatal(err)
	}
	hop1, _ := d.HopNode(sec.HopID)
	if err := ov.Fail(hop1.Ref().Addr); err != nil {
		t.Fatal(err)
	}
	hop2, ok := d.HopNode(sec.HopID)
	if !ok {
		t.Fatalf("anchor lost after a single hop-node failure")
	}
	if hop2.ID() == hop1.ID() {
		t.Fatalf("hop node did not change")
	}
	got, err := d.FetchAsHolder(hop2.Ref().Addr, sec.HopID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != sec.Key {
		t.Fatalf("successor hop node has wrong key")
	}
}

func TestAnchorLostWhenAllReplicasFail(t *testing.T) {
	ov, d := setup(t, 100, 3, 14)
	s := rng.New(15)
	g, _ := NewGenerator([]byte("init"), s)
	sec, _ := g.Generate(s)
	if err := d.Deploy(sec.Anchor, 0); err != nil {
		t.Fatal(err)
	}
	d.Manager().BeginBatch()
	for _, addr := range d.ReplicaAddrs(sec.HopID) {
		if err := ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	d.Manager().EndBatch()
	if d.Available(sec.HopID) {
		t.Fatalf("anchor survived simultaneous loss of all replicas")
	}
	if _, ok := d.HopNode(sec.HopID); ok {
		t.Fatalf("HopNode returned a node for a lost anchor")
	}
}

func genPool(t *testing.T, n int, seed uint64) []Secret {
	t.Helper()
	s := rng.New(seed)
	g, _ := NewGenerator([]byte("init"), s)
	pool := make([]Secret, n)
	for i := range pool {
		sec, err := g.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = sec
	}
	return pool
}

func TestChooseScatteredDiversity(t *testing.T) {
	pool := genPool(t, 64, 16)
	s := rng.New(17)
	chosen, err := ChooseScattered(pool, 5, 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 5 {
		t.Fatalf("chose %d anchors", len(chosen))
	}
	// With 64 anchors across 16 digit buckets, 5 distinct leading digits
	// should essentially always be possible.
	if div := PrefixDiversity(chosen, 4); div != 5 {
		t.Fatalf("prefix diversity %d, want 5", div)
	}
	// No duplicate anchors.
	seen := map[id.ID]bool{}
	for _, c := range chosen {
		if seen[c.HopID] {
			t.Fatalf("duplicate anchor chosen")
		}
		seen[c.HopID] = true
	}
}

func TestChooseScatteredSmallPoolFallsBack(t *testing.T) {
	// A pool concentrated in one digit can still form a tunnel, just
	// without diversity.
	s := rng.New(18)
	pool := genPool(t, 200, 19)
	var same []Secret
	want := pool[0].HopID.Digit(0, 4)
	for _, p := range pool {
		if p.HopID.Digit(0, 4) == want {
			same = append(same, p)
		}
	}
	if len(same) < 3 {
		t.Skip("pool did not concentrate; statistically near-impossible")
	}
	chosen, err := ChooseScattered(same[:3], 3, 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 3 {
		t.Fatalf("chose %d", len(chosen))
	}
}

func TestChooseScatteredErrors(t *testing.T) {
	pool := genPool(t, 3, 20)
	s := rng.New(21)
	if _, err := ChooseScattered(pool, 5, 4, s); err == nil {
		t.Fatalf("undersized pool accepted")
	}
	if _, err := ChooseScattered(pool, 0, 4, s); err == nil {
		t.Fatalf("zero length accepted")
	}
}

func TestChooseScatteredBeatsRandomOnAverage(t *testing.T) {
	// Property behind the §3.5 rule: scattered choice yields at least the
	// prefix diversity of uniform random choice.
	pool := genPool(t, 32, 22)
	s := rng.New(23)
	const trials = 200
	scatterTotal, randomTotal := 0, 0
	for i := 0; i < trials; i++ {
		chosen, err := ChooseScattered(pool, 5, 4, s)
		if err != nil {
			t.Fatal(err)
		}
		scatterTotal += PrefixDiversity(chosen, 4)
		idx := s.PermFirstK(len(pool), 5)
		rnd := make([]Secret, 5)
		for j, ix := range idx {
			rnd[j] = pool[ix]
		}
		randomTotal += PrefixDiversity(rnd, 4)
	}
	if scatterTotal < randomTotal {
		t.Fatalf("scattered diversity %d below random %d", scatterTotal, randomTotal)
	}
}
