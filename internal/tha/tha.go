// Package tha implements Tunnel Hop Anchors, the mechanism that decouples
// TAP tunnels from fixed nodes (§3 of the paper).
//
// A tunnel hop is identified by a hopid — a DHT key — and anchored by a
// record <hopid, K, H(PW)> replicated on the k nodes numerically closest
// to hopid. The node currently closest is the *tunnel hop node*; the other
// replica holders are candidates that take over on failure. K is the
// symmetric layer key for that hop; H(PW) lets the owner, and only the
// owner, delete the anchor later by revealing PW.
//
// Anchor generation (§3.2) must be collision-free across nodes yet
// unlinkable to the generating node: hopid = H(node_ID, hkey, t) with a
// per-node secret hkey and a deployment counter t, so nobody can
// recompute the mapping without the secret.
package tha

import (
	"errors"
	"fmt"
	"io"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/simnet"
)

// Anchor is the stored THA record <hopid, K, H(PW)>.
type Anchor struct {
	HopID  id.ID
	Key    crypt.Key
	PWHash crypt.PasswordHash

	// sealer caches the layer-crypto key schedule for Key. Deploy installs
	// an empty cell, so every copy of the record handed out by the replica
	// store — anchors are passed by value — shares one schedule and a hop
	// node pays the subkey derivation once per anchor, not once per
	// message. The schedule itself is derived lazily on first use: most
	// deployed anchors never seal a message (availability and corruption
	// experiments deploy hundreds of thousands), so deployment must not
	// pay AES/HMAC setup. It is node-local state, never serialized:
	// WireSize excludes it. Like the rest of the simulator it assumes
	// single-goroutine use.
	sealer *sealerCell
}

// sealerCell is the shared, lazily-filled key-schedule slot.
type sealerCell struct{ s *crypt.Sealer }

// Sealer returns the anchor's cached key schedule, deriving it on first
// use. Anchors that never passed through Deploy (hand-built test values)
// get an uncached throwaway schedule.
func (a Anchor) Sealer() *crypt.Sealer {
	if a.sealer != nil {
		if a.sealer.s == nil {
			a.sealer.s = crypt.NewSealer(a.Key)
		}
		return a.sealer.s
	}
	return crypt.NewSealer(a.Key)
}

// WireSize is the encoded anchor size used for network-cost accounting
// (hopid + key + password hash).
const WireSize = id.Size + crypt.KeySize + 32

// Secret is the owner's view of an anchor: the record plus the deletion
// password. Secrets never leave the initiator.
type Secret struct {
	Anchor
	PW crypt.Password
}

// Generator produces node-specific, unlinkable anchors.
type Generator struct {
	nodeID []byte
	hkey   [16]byte
	next   uint64
}

// NewGenerator creates a generator for the node identified by nodeID
// (e.g. the encoding of its public key), with a fresh secret hkey drawn
// from r.
func NewGenerator(nodeID []byte, r io.Reader) (*Generator, error) {
	g := &Generator{nodeID: append([]byte(nil), nodeID...)}
	if _, err := io.ReadFull(r, g.hkey[:]); err != nil {
		return nil, fmt.Errorf("tha: drawing hkey: %w", err)
	}
	return g, nil
}

// Generate mints the next anchor: hopid = H(node_ID ‖ hkey ‖ t), a fresh
// random key, and a fresh password. The counter t advances every call, so
// repeated generation never collides with the node's own earlier anchors;
// the hash makes cross-node collisions negligible and the hkey makes the
// hopid unlinkable to the node.
func (g *Generator) Generate(r io.Reader) (Secret, error) {
	t := g.next
	g.next++
	var tbuf [8]byte
	for i := 0; i < 8; i++ {
		tbuf[i] = byte(t >> (8 * (7 - i)))
	}
	hopID := id.Hash(g.nodeID, g.hkey[:], tbuf[:])
	key, err := crypt.NewKey(r)
	if err != nil {
		return Secret{}, err
	}
	pw, err := crypt.NewPassword(r)
	if err != nil {
		return Secret{}, err
	}
	return Secret{
		Anchor: Anchor{HopID: hopID, Key: key, PWHash: pw.Hash()},
		PW:     pw,
	}, nil
}

// Counter returns the next t value (how many anchors were generated).
func (g *Generator) Counter() uint64 { return g.next }

// --- directory ---------------------------------------------------------------

// Directory is the storage-side view of all deployed anchors: a typed
// layer over the PAST replication manager that enforces the paper's access
// rules. Only the replica-set nodes of a hopid (verifiable by the numeric
// closeness constraint) may read an anchor; only the owner (verifiable by
// PW) may delete it; deployment may be charged a CPU puzzle.
type Directory struct {
	ov  *pastry.Overlay
	mgr *past.Manager

	// PuzzleDifficulty, when positive, requires a hashcash payment per
	// deployment (§3.3's anti-flood charge). Zero disables it.
	PuzzleDifficulty int

	deployed uint64
	rejected uint64
}

// NewDirectory layers anchor semantics on an existing replication
// manager.
func NewDirectory(ov *pastry.Overlay, mgr *past.Manager) *Directory {
	return &Directory{ov: ov, mgr: mgr}
}

// Manager exposes the underlying replication manager.
func (d *Directory) Manager() *past.Manager { return d.mgr }

// Errors returned by directory operations.
var (
	ErrPuzzleRequired = errors.New("tha: deployment requires a valid puzzle solution")
	ErrNotFound       = errors.New("tha: anchor not found (lost or never deployed)")
	ErrAccessDenied   = errors.New("tha: requester is not in the anchor's replica set")
	ErrBadPassword    = errors.New("tha: password proof failed")
)

// Puzzle returns the CPU-payment challenge for deploying hopid.
func (d *Directory) Puzzle(hopID id.ID) crypt.Puzzle {
	return crypt.Puzzle{Challenge: hopID[:], Difficulty: d.PuzzleDifficulty}
}

// Deploy stores the anchor on its replica set. nonce must solve
// Puzzle(anchor.HopID) when a difficulty is configured; a bad payment is
// rejected before any storage happens.
func (d *Directory) Deploy(a Anchor, nonce uint64) error {
	if d.PuzzleDifficulty > 0 {
		if err := d.Puzzle(a.HopID).Verify(nonce); err != nil {
			d.rejected++
			return fmt.Errorf("%w: %v", ErrPuzzleRequired, err)
		}
	}
	// Install the key-schedule cell all replica copies will share; the
	// schedule is derived on the first message this anchor processes.
	a.sealer = &sealerCell{}
	if err := d.mgr.Insert(a.HopID, a); err != nil {
		return fmt.Errorf("tha: deploy: %w", err)
	}
	d.deployed++
	return nil
}

// DeployedCount returns the number of successful deployments.
func (d *Directory) DeployedCount() uint64 { return d.deployed }

// RejectedCount returns the number of deployments rejected for missing
// CPU payment.
func (d *Directory) RejectedCount() uint64 { return d.rejected }

// Available reports whether the anchor still has at least one live
// replica — the condition for its tunnel hop to function.
func (d *Directory) Available(hopID id.ID) bool {
	_, ok := d.mgr.Lookup(hopID)
	return ok
}

// HopNode returns the current tunnel hop node for hopid: the live node
// numerically closest to it. The bool is false when the anchor no longer
// exists (all replicas lost), in which case the hop — and its tunnel — is
// broken even though some node still owns the id space.
func (d *Directory) HopNode(hopID id.ID) (*pastry.Node, bool) {
	if !d.Available(hopID) {
		return nil, false
	}
	return d.ov.OwnerOf(hopID), true
}

// FetchAsHolder returns the anchor to a node claiming to hold it. The
// claim is verified by the paper's "verifiable constraint": the requester
// must actually store the anchor, which the replication manager only does
// for nodes in the hopid's replica set.
func (d *Directory) FetchAsHolder(holder simnet.Addr, hopID id.ID) (Anchor, error) {
	st := d.mgr.StoreAt(holder)
	if st == nil {
		return Anchor{}, ErrAccessDenied
	}
	v, ok := st.Get(hopID)
	if !ok {
		// Either the anchor doesn't exist or this node is not a replica —
		// indistinguishable to the node itself, denied either way.
		return Anchor{}, ErrAccessDenied
	}
	return v.(Anchor), nil
}

// FetchAsOwner returns the anchor to a requester proving ownership with
// the password.
func (d *Directory) FetchAsOwner(hopID id.ID, pw crypt.Password) (Anchor, error) {
	v, ok := d.mgr.Lookup(hopID)
	if !ok {
		return Anchor{}, ErrNotFound
	}
	a := v.(Anchor)
	if !a.PWHash.Verify(pw) {
		return Anchor{}, ErrBadPassword
	}
	return a, nil
}

// Delete removes the anchor after verifying the password proof (§3.4):
// the replica holders hash the presented PW and compare with the stored
// H(PW).
func (d *Directory) Delete(hopID id.ID, pw crypt.Password) error {
	v, ok := d.mgr.Lookup(hopID)
	if !ok {
		return ErrNotFound
	}
	a := v.(Anchor)
	if !a.PWHash.Verify(pw) {
		return ErrBadPassword
	}
	if !d.mgr.Delete(hopID) {
		return ErrNotFound
	}
	return nil
}

// ReplicaAddrs returns the addresses currently holding the anchor, the
// set an adversary learns the anchor from if any member is malicious.
func (d *Directory) ReplicaAddrs(hopID id.ID) []simnet.Addr {
	return d.mgr.Replicas(hopID)
}
