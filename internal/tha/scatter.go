package tha

import (
	"fmt"

	"tap/internal/rng"
)

// §3.5: "The chosen THAs must scatter in the DHT identifier space as far
// as possible (i.e., with different hopids' prefixes) to minimize the
// probability that a single node has the information of multiple or all
// tunnel hops of the tunnel to be formed."
//
// ChooseScattered picks l anchors from the owner's pool such that, as far
// as the pool allows, no two share their leading base-2^b digit; within
// that constraint the choice is random. It returns an error when the pool
// is smaller than l.
func ChooseScattered(pool []Secret, l int, b int, stream *rng.Stream) ([]Secret, error) {
	if l <= 0 {
		return nil, fmt.Errorf("tha: tunnel length %d must be positive", l)
	}
	if len(pool) < l {
		return nil, fmt.Errorf("tha: pool of %d anchors cannot form a %d-hop tunnel", len(pool), l)
	}
	// Bucket the pool by leading digit, then draw buckets round-robin in
	// random order, taking one anchor per bucket per round. This maximizes
	// prefix diversity: duplicates of a digit are used only once all other
	// available digits are exhausted.
	buckets := make(map[int][]Secret)
	for _, s := range pool {
		d := s.HopID.Digit(0, b)
		buckets[d] = append(buckets[d], s)
	}
	digits := make([]int, 0, len(buckets))
	for d := range buckets {
		digits = append(digits, d)
	}
	// Deterministic bucket order before any stream draw: shuffling inside
	// the map iteration above would consume the stream in map order and
	// break replay determinism.
	sortInts(digits)
	for _, d := range digits {
		// Shuffle within each bucket so repeated tunnel formation does not
		// always reuse the same anchor.
		bk := buckets[d]
		stream.Shuffle(len(bk), func(i, j int) { bk[i], bk[j] = bk[j], bk[i] })
	}
	stream.Shuffle(len(digits), func(i, j int) { digits[i], digits[j] = digits[j], digits[i] })

	out := make([]Secret, 0, l)
	for round := 0; len(out) < l; round++ {
		took := false
		for _, d := range digits {
			bk := buckets[d]
			if round >= len(bk) {
				continue
			}
			out = append(out, bk[round])
			took = true
			if len(out) == l {
				break
			}
		}
		if !took {
			// Cannot happen while len(pool) >= l, but guard against an
			// infinite loop on invariant violation.
			return nil, fmt.Errorf("tha: internal scatter exhaustion")
		}
	}
	return out, nil
}

// sortInts is a tiny insertion sort; digit sets have at most 2^b members.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// PrefixDiversity reports how many distinct leading base-2^b digits a
// chosen anchor set spans; experiments use it to quantify the scatter
// rule's effect.
func PrefixDiversity(secrets []Secret, b int) int {
	seen := make(map[int]struct{})
	for _, s := range secrets {
		seen[s.HopID.Digit(0, b)] = struct{}{}
	}
	return len(seen)
}
