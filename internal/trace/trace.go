// Package trace provides the measurement plumbing shared by the
// experiment harness and the command-line tools: mean/variance
// accumulators, labeled series, and fixed-width table rendering that
// mirrors the way the paper reports its figures (one row per x value, one
// column per series).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Accum accumulates scalar samples with Welford's algorithm, so means and
// variances are numerically stable over millions of samples.
type Accum struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (a *Accum) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the sample count.
func (a *Accum) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accum) Mean() float64 { return a.mean }

// Min and Max return the extremes (0 with no samples).
func (a *Accum) Min() float64 { return a.min }
func (a *Accum) Max() float64 { return a.max }

// Variance returns the unbiased sample variance.
func (a *Accum) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accum) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accum) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Table is a figure-shaped result: a labeled x column plus one column per
// series, each cell an Accum across trials.
type Table struct {
	Title   string
	XLabel  string
	Series  []string
	xs      []float64
	rows    map[float64]map[string]*Accum
	sortRow bool
}

// NewTable creates a table for the given series names.
func NewTable(title, xLabel string, series ...string) *Table {
	return &Table{
		Title:   title,
		XLabel:  xLabel,
		Series:  series,
		rows:    make(map[float64]map[string]*Accum),
		sortRow: true,
	}
}

// Add records one trial sample for (x, series).
func (t *Table) Add(x float64, series string, value float64) {
	row, ok := t.rows[x]
	if !ok {
		row = make(map[string]*Accum, len(t.Series))
		t.rows[x] = row
		t.xs = append(t.xs, x)
	}
	acc, ok := row[series]
	if !ok {
		acc = &Accum{}
		row[series] = acc
	}
	acc.Add(value)
}

// Get returns the accumulator at (x, series), or nil.
func (t *Table) Get(x float64, series string) *Accum {
	row, ok := t.rows[x]
	if !ok {
		return nil
	}
	return row[series]
}

// Xs returns the x values in ascending order.
func (t *Table) Xs() []float64 {
	out := append([]float64(nil), t.xs...)
	if t.sortRow {
		sort.Float64s(out)
	}
	return out
}

// Mean returns the mean at (x, series), NaN when absent.
func (t *Table) Mean(x float64, series string) float64 {
	a := t.Get(x, series)
	if a == nil || a.N() == 0 {
		return math.NaN()
	}
	return a.Mean()
}

// Render writes the table in aligned fixed-width text with mean±stderr
// cells.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	cells := make([][]string, 0, len(t.xs)+1)
	head := append([]string{t.XLabel}, t.Series...)
	cells = append(cells, head)
	for _, x := range t.Xs() {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			a := t.Get(x, s)
			if a == nil || a.N() == 0 {
				row = append(row, "-")
				continue
			}
			if a.N() == 1 {
				row = append(row, fmt.Sprintf("%.4f", a.Mean()))
			} else {
				row = append(row, fmt.Sprintf("%.4f±%.4f", a.Mean(), a.StdErr()))
			}
		}
		cells = append(cells, row)
	}
	writeAligned(w, cells)
}

// RenderCSV writes the table as CSV of means, one column per series.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "%s,%s\n", t.XLabel, strings.Join(t.Series, ","))
	for _, x := range t.Xs() {
		parts := []string{trimFloat(x)}
		for _, s := range t.Series {
			m := t.Mean(x, s)
			if math.IsNaN(m) {
				parts = append(parts, "")
			} else {
				parts = append(parts, fmt.Sprintf("%.6f", m))
			}
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

// trimFloat renders 2 as "2" and 0.05 as "0.05".
func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", x), "0"), ".")
}

// writeAligned pads each column to its widest cell.
func writeAligned(w io.Writer, cells [][]string) {
	if len(cells) == 0 {
		return
	}
	widths := make([]int, len(cells[0]))
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range cells {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}
