package trace

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects raw observations for quantile queries. Unlike Accum it
// stores every value; use it where distributions matter (latency tails)
// and Accum where only moments do. Memory is one float64 per observation.
type Sample struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.values = append(s.values, x)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 with no observations).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Quantile returns the q-th quantile (q in [0,1]) using linear
// interpolation between order statistics. NaN with no observations;
// panics on q outside [0,1] (a caller bug).
func (s *Sample) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("trace: quantile %f outside [0,1]", q))
	}
	if len(s.values) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if len(s.values) == 1 {
		return s.values[0]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median is Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P95 is Quantile(0.95), the tail figure latency reports quote.
func (s *Sample) P95() float64 { return s.Quantile(0.95) }

// Min and Max return the extremes (NaN when empty).
func (s *Sample) Min() float64 { return s.Quantile(0) }
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Histogram buckets the sample into `bins` equal-width bins over
// [min, max] and returns the counts; for quick text rendering of a
// distribution's shape.
func (s *Sample) Histogram(bins int) []int {
	if bins <= 0 || len(s.values) == 0 {
		return nil
	}
	lo, hi := s.Min(), s.Max()
	counts := make([]int, bins)
	if hi == lo {
		counts[0] = len(s.values)
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, v := range s.values {
		i := int((v - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}
