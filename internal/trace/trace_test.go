package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAccumBasics(t *testing.T) {
	var a Accum
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 3 {
		t.Fatalf("mean = %f", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("min/max = %f/%f", a.Min(), a.Max())
	}
	if math.Abs(a.Variance()-2.5) > 1e-12 {
		t.Fatalf("variance = %f, want 2.5", a.Variance())
	}
	wantSE := math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(a.StdErr()-wantSE) > 1e-12 {
		t.Fatalf("stderr = %f, want %f", a.StdErr(), wantSE)
	}
}

func TestAccumEmptyAndSingle(t *testing.T) {
	var a Accum
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatalf("empty accum nonzero")
	}
	a.Add(7)
	if a.Mean() != 7 || a.Variance() != 0 {
		t.Fatalf("single-sample accum wrong")
	}
}

func TestAccumNumericalStability(t *testing.T) {
	// Large offset + tiny variance is where naive sum-of-squares dies.
	var a Accum
	base := 1e9
	for i := 0; i < 1000; i++ {
		a.Add(base + float64(i%2))
	}
	if math.Abs(a.Mean()-(base+0.5)) > 1e-3 {
		t.Fatalf("mean drifted: %f", a.Mean())
	}
	if math.Abs(a.Variance()-0.2502502502) > 1e-3 {
		t.Fatalf("variance = %f, want ~0.25", a.Variance())
	}
}

func TestTableAddGetMean(t *testing.T) {
	tb := NewTable("test", "p", "a", "b")
	tb.Add(0.1, "a", 1)
	tb.Add(0.1, "a", 3)
	tb.Add(0.2, "b", 5)
	if got := tb.Mean(0.1, "a"); got != 2 {
		t.Fatalf("mean = %f", got)
	}
	if !math.IsNaN(tb.Mean(0.1, "b")) {
		t.Fatalf("absent cell should be NaN")
	}
	xs := tb.Xs()
	if len(xs) != 2 || xs[0] != 0.1 || xs[1] != 0.2 {
		t.Fatalf("xs = %v", xs)
	}
}

func TestTableXsSorted(t *testing.T) {
	tb := NewTable("t", "x", "s")
	for _, x := range []float64{0.3, 0.1, 0.2} {
		tb.Add(x, "s", 1)
	}
	xs := tb.Xs()
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("xs unsorted: %v", xs)
		}
	}
}

func TestRenderContainsEverything(t *testing.T) {
	tb := NewTable("Fig X: demo", "p", "current", "TAP")
	tb.Add(0.05, "current", 0.2)
	tb.Add(0.05, "current", 0.3)
	tb.Add(0.05, "TAP", 0.01)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig X: demo", "p", "current", "TAP", "0.05", "0.2500", "0.0100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("t", "x", "a", "b")
	tb.Add(1, "a", 0.5)
	tb.Add(1, "b", 0.25)
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,0.500000,0.250000" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		2:      "2",
		0.05:   "0.05",
		0.1:    "0.1",
		10000:  "10000",
		0.3333: "0.3333",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
