package trace

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %f", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("min = %f", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("max = %f", got)
	}
	if got := s.P95(); math.Abs(got-95.05) > 1e-9 {
		t.Fatalf("p95 = %f", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %f", got)
	}
}

func TestSampleInterleavedAddAndQuery(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	if s.Median() != 2 {
		t.Fatalf("median of {1,3} = %f", s.Median())
	}
	s.Add(100) // must re-sort transparently
	if s.Median() != 3 {
		t.Fatalf("median of {1,3,100} = %f", s.Median())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Median()) {
		t.Fatalf("empty median not NaN")
	}
	if s.Mean() != 0 || s.N() != 0 {
		t.Fatalf("empty sample stats wrong")
	}
	s.Add(7)
	if s.Median() != 7 || s.Quantile(0.99) != 7 {
		t.Fatalf("single-value quantiles wrong")
	}
}

func TestSampleQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	var s Sample
	s.Add(1)
	s.Quantile(1.5)
}

func TestSampleQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(rng.NormFloat64())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %f", q)
		}
		prev = v
	}
}

func TestHistogram(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	h := s.Histogram(5)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost observations: %v", h)
	}
	if len(h) != 5 {
		t.Fatalf("bins = %d", len(h))
	}
	// Uniform data: every bin gets 2.
	for i, c := range h {
		if c != 2 {
			t.Fatalf("bin %d = %d, want 2", i, c)
		}
	}
	// Degenerate cases.
	if s.Histogram(0) != nil {
		t.Fatalf("zero bins should be nil")
	}
	var constant Sample
	constant.Add(5)
	constant.Add(5)
	h2 := constant.Histogram(3)
	if h2[0] != 2 || h2[1] != 0 {
		t.Fatalf("constant histogram %v", h2)
	}
}
