package cover

import (
	"testing"
	"time"

	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

func setup(t testing.TB, n int, seed uint64) (*pastry.Overlay, *simnet.Kernel, *simnet.Network, *rng.Stream) {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	k := simnet.NewKernel()
	k.MaxSteps = 5_000_000
	net := simnet.NewNetwork(k, simnet.DefaultLinkModel(seed), ov.NumAddrs())
	for _, r := range ov.LiveRefs() {
		net.Attach(r.Addr, DiscardHandler())
	}
	return ov, k, net, root.Split("cover")
}

func TestGeneratorRateRoughlyCorrect(t *testing.T) {
	ov, k, net, s := setup(t, 50, 1)
	g := NewGenerator(ov, net, 100*time.Millisecond, 0, s)
	deadline := simnet.Time(1 * time.Second)
	g.Start(deadline)
	if err := k.RunUntil(deadline + time.Second); err != nil {
		t.Fatal(err)
	}
	// 50 nodes × ~10 dummies/s for 1s ≈ 500, minus jitter edge effects
	// and the occasional self-draw.
	if g.Sent < 350 || g.Sent > 600 {
		t.Fatalf("sent %d dummies, expected ~500", g.Sent)
	}
	if net.Stats.MessagesSent != g.Sent {
		t.Fatalf("network counted %d, generator %d", net.Stats.MessagesSent, g.Sent)
	}
}

func TestGeneratorStops(t *testing.T) {
	ov, k, net, s := setup(t, 20, 2)
	g := NewGenerator(ov, net, 50*time.Millisecond, 0, s)
	g.Start(simnet.Time(10 * time.Second))
	if err := k.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	atStop := g.Sent
	g.Stop()
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if g.Sent != atStop {
		t.Fatalf("generator kept sending after Stop: %d -> %d", atStop, g.Sent)
	}
}

func TestGeneratorRespectsDeadline(t *testing.T) {
	ov, k, net, s := setup(t, 20, 3)
	_ = net
	g := NewGenerator(ov, net, 50*time.Millisecond, 0, s)
	g.Start(simnet.Time(300 * time.Millisecond))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ~20 nodes × 6 intervals = ~120 max; must be finite (deadline
	// stopped the recursion) and nonzero.
	if g.Sent == 0 || g.Sent > 200 {
		t.Fatalf("sent %d", g.Sent)
	}
}

func TestDummiesStopWhenNodeDies(t *testing.T) {
	ov, k, net, s := setup(t, 10, 4)
	g := NewGenerator(ov, net, 50*time.Millisecond, 0, s)
	g.Start(simnet.Time(1 * time.Second))
	// Detach everyone at t=200ms: all cover streams must end.
	k.Schedule(200*time.Millisecond, func() {
		for _, r := range ov.LiveRefs() {
			net.Detach(r.Addr)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ~10 nodes × 4 intervals before detach ≈ 40.
	if g.Sent > 80 {
		t.Fatalf("cover streams outlived their nodes: %d", g.Sent)
	}
}

func TestDummySized(t *testing.T) {
	if (Dummy{Size: 99}).SizeBytes() != 99 {
		t.Fatalf("dummy size")
	}
	ov, _, net, s := setup(t, 10, 5)
	g := NewGenerator(ov, net, time.Second, 0, s)
	if g.Size != DefaultDummySize {
		t.Fatalf("default size not applied")
	}
}

func TestBandwidthOverheadMeasurable(t *testing.T) {
	// The §2 argument in miniature: cover traffic at 1 dummy/100ms/node
	// for one simulated second dwarfs a single small real transfer.
	ov, k, net, s := setup(t, 50, 6)
	const realBytes = 10_000
	net.Send(ov.LiveRefs()[0].Addr, ov.LiveRefs()[1].Addr, Dummy{Size: realBytes}) // stand-in for a real message
	g := NewGenerator(ov, net, 100*time.Millisecond, 0, s)
	deadline := simnet.Time(1 * time.Second)
	g.Start(deadline)
	if err := k.RunUntil(deadline + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	total := net.Stats.BytesSent
	overhead := float64(total) / float64(realBytes)
	if overhead < 10 {
		t.Fatalf("cover overhead factor %.1f implausibly low", overhead)
	}
}
