// Package cover implements the cover traffic TAP deliberately does NOT
// use, so that the design decision can be measured instead of asserted.
//
// §2 of the paper: "TAP does not employ cover traffic due to the
// following reasons. First, cover traffic is very expensive in terms of
// bandwidth overhead and it does not protect from internal attackers
// (malicious nodes who act as mixes in our system). Secondly, the number
// of potential mixes in our system is large ... rendering global
// eavesdropping very unlikely."
//
// The Generator schedules constant-rate dummy messages from every live
// node to uniformly random peers over the discrete-event network. Dummies
// are sized like real tunnel envelopes, so an external observer cannot
// distinguish them by length; receivers silently discard them. The
// ExtCover experiment measures the bandwidth multiplier this costs for a
// fixed anonymous workload — the paper's "very expensive" made concrete.
// The second argument needs no experiment: a dummy addressed to a
// malicious relay is decrypted *by* that relay, so internal attackers see
// exactly which traffic is real.
package cover

import (
	"time"

	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
)

// Dummy is a cover message. Receivers drop it on arrival.
type Dummy struct {
	Size int
}

// SizeBytes implements simnet.Message.
func (d Dummy) SizeBytes() int { return d.Size }

// Generator drives cover traffic on a simulated network.
type Generator struct {
	OV  *pastry.Overlay
	Net *simnet.Network

	// Interval between dummies per node (the inverse rate). The paper's
	// criticism applies at any constant rate; experiments sweep it.
	Interval time.Duration
	// Size of each dummy in bytes; defaults to a plausible tunnel
	// envelope size if zero.
	Size int

	stream *rng.Stream
	// Sent counts dummies emitted.
	Sent uint64

	stopped bool
}

// DefaultDummySize approximates a small tunnel envelope: id + hint +
// a few sealed layers of a short payload.
const DefaultDummySize = 512

// NewGenerator creates a generator; call Start to begin scheduling.
func NewGenerator(ov *pastry.Overlay, net *simnet.Network, interval time.Duration, size int, stream *rng.Stream) *Generator {
	if size <= 0 {
		size = DefaultDummySize
	}
	return &Generator{OV: ov, Net: net, Interval: interval, Size: size, stream: stream}
}

// Start schedules the first dummy for every live node, with per-node
// phase jitter so the network does not pulse in lockstep. Dummies stop
// when Stop is called or the deadline passes.
func (g *Generator) Start(deadline simnet.Time) {
	for _, r := range g.OV.LiveRefs() {
		jitter := time.Duration(g.stream.Int63n(int64(g.Interval)))
		g.scheduleNext(r.Addr, jitter, deadline)
	}
}

// Stop halts further scheduling; dummies already in flight still arrive.
func (g *Generator) Stop() { g.stopped = true }

func (g *Generator) scheduleNext(from simnet.Addr, delay time.Duration, deadline simnet.Time) {
	g.Net.Kernel.Schedule(delay, func() {
		if g.stopped || g.Net.Now() > deadline {
			return
		}
		if !g.Net.Attached(from) {
			return // node died; its cover stream dies with it
		}
		to := g.OV.RandomLive(g.stream).Ref().Addr
		if to != from {
			g.Net.Send(from, to, Dummy{Size: g.Size})
			g.Sent++
		}
		g.scheduleNext(from, g.Interval, deadline)
	})
}

// DiscardHandler returns a handler that accepts and drops everything —
// what a node does with cover traffic addressed to it. Real deployments
// mix this into the node's demultiplexer; experiments attach it to nodes
// that only participate as cover sinks.
func DiscardHandler() simnet.Handler {
	return simnet.HandlerFunc(func(simnet.Addr, simnet.Message) {})
}
