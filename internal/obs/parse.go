package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the scraping side of the exposition format: a strict
// parser for the text produced by WriteText (and by any conforming
// Prometheus exporter). cmd/tapinspect uses it to pretty-print a live
// node, the multi-process integration test uses it to assert
// cross-process conservation invariants, and the nightly compose smoke
// uses it (through tapinspect) to fail on unparseable output.

// Sample is one parsed series value.
type Sample struct {
	Name   string
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// Snapshot is one parsed scrape.
type Snapshot struct {
	Samples []Sample
	Types   map[string]string // family name → counter|gauge|histogram|…
}

// ParseText parses a text-exposition document. It is strict where it
// matters for the format's consumers — metric and label syntax, numeric
// values, HELP/TYPE comment shape — and returns the first malformed
// line as an error.
func ParseText(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	snap := &Snapshot{Types: make(map[string]string)}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, snap); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		snap.Samples = append(snap.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseComment validates a # line: HELP/TYPE carry a metric name (and
// TYPE a known type); other comments pass through.
func parseComment(line string, snap *Snapshot) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	if len(fields) < 3 || !validName(fields[2]) {
		return fmt.Errorf("malformed %s comment %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		snap.Types[fields[2]] = fields[3]
	}
	return nil
}

// parseSample decodes `name[{labels}] value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	if len(fields) == 2 { // optional millisecond timestamp
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp in %q", line)
		}
	}
	return s, nil
}

// parseValue accepts exposition numbers, including the spelled-out
// infinities and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels decodes a `{a="b",c="d"}` block starting at s[0] == '{',
// returning the index one past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return 0, nil, fmt.Errorf("unterminated label in %q", s)
		}
		name := s[start:i]
		if !validName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("unknown escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
	}
}

// Value returns the sample exactly matching name and the given labels.
func (s *Snapshot) Value(name string, labels ...Label) (float64, bool) {
	for _, smp := range s.Samples {
		if smp.Name != name || len(smp.Labels) != len(labels) {
			continue
		}
		ok := true
		for _, l := range labels {
			if smp.Labels[l.Name] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return smp.Value, true
		}
	}
	return 0, false
}

// Sum adds every series named exactly name, across label sets. Missing
// names sum to zero — conservation checks treat absence as emptiness.
func (s *Snapshot) Sum(name string) float64 {
	total := 0.0
	for _, smp := range s.Samples {
		if smp.Name == name {
			total += smp.Value
		}
	}
	return total
}

// Names returns the sorted set of sample names in the snapshot.
func (s *Snapshot) Names() []string {
	seen := make(map[string]bool)
	for _, smp := range s.Samples {
		seen[smp.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
