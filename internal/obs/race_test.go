package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentScrape hammers one registry from many writer
// goroutines — counters, gauges, histogram observations, and late
// per-writer registrations — while scraper goroutines render and
// re-parse the exposition for the writers' whole lifetime. Run under
// -race (CI always does) this is the data-race proof for the entire
// increment/render surface; the final single-threaded checks prove no
// increment was lost.
func TestRegistryConcurrentScrape(t *testing.T) {
	const (
		writers = 8
		perG    = 2000
	)
	r := NewRegistry()
	c := r.Counter("tap_race_events_total", "x")
	g := r.Gauge("tap_race_depth", "x")
	h := r.Histogram("tap_race_seconds", "x", []float64{0.001, 0.1, 1})

	start := make(chan struct{})
	var writerWG, scraperWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			<-start
			lbl := Label{Name: "writer", Value: string(rune('a' + w))}
			mine := r.Counter("tap_race_per_writer_total", "x", lbl)
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%7) * 0.01)
				mine.Inc()
			}
		}(w)
	}

	scrapeDone := make(chan struct{})
	errs := make(chan error, 3)
	for s := 0; s < 3; s++ {
		scraperWG.Add(1)
		go func() {
			defer scraperWG.Done()
			<-start
			for {
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					errs <- err
					return
				}
				if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
					errs <- err
					return
				}
				select {
				case <-scrapeDone:
					return
				default:
				}
			}
		}()
	}

	close(start)
	writerWG.Wait()
	close(scrapeDone)
	scraperWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent scrape failed: %v", err)
	}

	if got := c.Load(); got != writers*perG {
		t.Fatalf("counter = %d, want %d", got, writers*perG)
	}
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
	if h.Count() != writers*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perG)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != h.Count() {
		t.Fatalf("bucket total %d != count %d", cum, h.Count())
	}
	if got := r.Counter("tap_race_check_total", "x"); got == nil {
		t.Fatal("post-race registration failed")
	}
}
