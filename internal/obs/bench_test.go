package obs

import "testing"

// These two benchmarks ride in the tapbench hot group and under the
// blocking CI alloc gate (BENCH_baseline.json pins both at 0
// allocs/op): instrumentation added to the PR 2/PR 6 zero-alloc hot
// paths must itself stay allocation-free, or the gate fails before a
// regression can land.

func BenchmarkObsCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("tap_bench_events_total", "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Load() != uint64(b.N) {
		b.Fatal("lost increments")
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("tap_bench_seconds", "x", nil) // DefBuckets, 14 bounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
	if h.Count() != uint64(b.N) {
		b.Fatal("lost observations")
	}
}
