package obs

import (
	"bufio"
	"io"
	"strconv"
)

// ContentType is the exposition format this package renders: Prometheus
// text format, version 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered instrument in the Prometheus text
// exposition format: families sorted by name, each preceded by its HELP
// and TYPE lines, series within a family in registration order.
// Histograms render the full triplet — cumulative _bucket series with
// the le label, then _sum and _count. A nil registry writes nothing.
//
// The byte format is pinned by TestExpositionGolden: scrapers (the
// integration test's invariant checker, cmd/tapinspect, any real
// Prometheus) can rely on it.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runOnScrape()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeSample(bw, f.name, "", s.labels, strconv.FormatUint(s.c.Load(), 10))
			case s.g != nil:
				writeSample(bw, f.name, "", s.labels, strconv.FormatInt(s.g.Load(), 10))
			case s.h != nil:
				cum := uint64(0)
				for i := range s.h.counts {
					cum += s.h.counts[i].Load()
					writeSample(bw, f.name, "_bucket", s.bucketLabels[i], strconv.FormatUint(cum, 10))
				}
				writeSample(bw, f.name, "_sum", s.labels, formatFloat(s.h.Sum()))
				writeSample(bw, f.name, "_count", s.labels, strconv.FormatUint(s.h.Count(), 10))
			}
		}
	}
	return bw.Flush()
}

func writeSample(w *bufio.Writer, name, suffix, labels, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}
