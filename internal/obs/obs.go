// Package obs is the repository's observability layer: a dependency-free
// metrics registry with Prometheus text exposition.
//
// Three instrument kinds cover everything the deployment mode needs to
// report — monotone counters, settable gauges, and fixed-bucket
// histograms — all built on sync/atomic so the increment path is
// lock-free and allocation-free (the tapbench alloc gate pins both
// BenchmarkObsCounterInc and BenchmarkObsHistogramObserve at 0
// allocs/op). A Registry renders its instruments in the Prometheus text
// exposition format, version 0.0.4, over the Handler in http.go; the
// committed golden test pins the byte format scrapers rely on.
//
// The no-op sink. Every instrument method is nil-safe: a nil *Counter,
// *Gauge, or *Histogram silently discards the operation, and every
// constructor on a nil *Registry returns nil. Code that may run without
// observability — the deterministic simulator above all, whose engines
// must not grow new dependencies or nondeterminism — instruments itself
// unconditionally and is handed a nil registry; the instruments
// disappear into predicted-not-taken nil checks. Real-process hosts
// (cmd/tapnode, cmd/tapboard) pass a live registry and get a scrapable
// /metrics endpoint.
//
// Naming scheme (DESIGN.md §15): tap_<subsystem>_<noun>[_<unit>][_total]
// — e.g. tap_transport_frames_sent_total, tap_board_members,
// tap_node_forward_hop_seconds. Counters end in _total; gauges are bare
// nouns; histogram names carry their unit.
//
// One registry serves one instance of each subsystem: registering the
// same (name, labels) pair twice panics, the same
// programming-error-is-loud convention as transport.Attach. Components
// that can be multiply instantiated in one process take distinguishing
// constant labels.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name=value pair attached to an instrument at
// registration time.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing value. The zero value is NOT
// usable — obtain counters from a Registry — but a nil *Counter is: every
// method on nil is a no-op, which is how un-instrumented (simulator)
// runs pay nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store overwrites the counter's value. It exists for publish-style
// instrumentation — a host snapshotting an engine's internally kept
// monotone totals (core.EngineMetrics) on each scrape — and must only
// ever be fed non-decreasing values, or scrapers will see counter
// resets.
func (c *Counter) Store(v uint64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Load returns the current value; zero on a nil counter.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that goes up and down.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Load returns the current value; zero on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are chosen at
// registration and never reallocated, so Observe touches only
// preexisting atomics: one bucket slot, the observation count, and a
// CAS-updated float64 sum.
//
// A scrape may observe the three updates of a concurrent Observe
// partially applied (a bucket incremented before the sum catches up);
// each series is still monotone and the skew is bounded by the number
// of in-flight observations, the same relaxed consistency the standard
// Prometheus client library ships.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds, +Inf excluded
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small and fixed, and the scan is
	// branch-predictable — cheaper than binary search below ~30 buckets.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observations; zero on a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; zero on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets are the default histogram buckets, in seconds: the standard
// latency spread from 500µs to 10s.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// series is one labeled instrument inside a family.
type series struct {
	labels string // pre-rendered {a="b",c="d"} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	// bucketLabels are the pre-rendered label sets of each _bucket
	// series (constant labels merged with le), histograms only.
	bucketLabels []string
}

// family is every series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	series []*series
	byLbl  map[string]bool
}

// Registry holds instruments and renders them. A nil *Registry is the
// no-op sink: every constructor returns nil and WriteText writes
// nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers fn to run before each exposition render. Hosts use
// it to publish values that are cheaper to snapshot than to maintain —
// runtime stats, engine counters marshaled off an event loop.
func (r *Registry) OnScrape(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// register files a new series under name, creating or extending its
// family. Panics on a (name, labels) duplicate or a type/help mismatch
// within a family — both are programming errors.
func (r *Registry) register(name, help, typ string, labels []Label, s *series) {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabelName(l.Name)
	}
	s.labels = renderLabels(labels, "", "")
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLbl: make(map[string]bool)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	if f.byLbl[s.labels] {
		panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, s.labels))
	}
	f.byLbl[s.labels] = true
	f.series = append(f.series, s)
}

// Counter registers and returns a counter. Nil registry → nil counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, "counter", labels, &series{c: c})
	return c
}

// Gauge registers and returns a gauge. Nil registry → nil gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, "gauge", labels, &series{g: g})
	return g
}

// Histogram registers and returns a histogram with the given upper
// bounds (strictly increasing; +Inf is implicit). Nil registry → nil
// histogram. An empty bounds slice takes DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	s := &series{h: h, bucketLabels: make([]string, len(bounds)+1)}
	for i, b := range bounds {
		s.bucketLabels[i] = renderLabels(labels, "le", formatFloat(b))
	}
	s.bucketLabels[len(bounds)] = renderLabels(labels, "le", "+Inf")
	r.register(name, help, "histogram", labels, s)
	return h
}

// renderLabels pre-renders a label set, optionally appending one extra
// pair (the histogram le), as `{a="b",le="0.5"}` — or "" when empty.
// Labels render in the order given; callers pass a stable order.
func renderLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format label escapes:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trippable decimal, +Inf spelled literally.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabelName(name string) {
	if !validName(name) || name == "le" {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// sortedFamilies snapshots the family list in name order. The render
// path iterates the snapshot outside the registry lock, and register
// may append to a family's series concurrently, so each family is
// copied by value with its own copy of the series slice header —
// series contents are immutable after registration.
func (r *Registry) sortedFamilies() []family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]family, 0, len(r.families))
	for _, f := range r.families {
		snap := *f
		snap.series = append([]*series(nil), f.series...)
		snap.byLbl = nil
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// runOnScrape executes the registered scrape hooks.
func (r *Registry) runOnScrape() {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}
