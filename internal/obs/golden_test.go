package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/exposition.golden from the current renderer")

// TestExpositionGolden pins the exposition byte format: a registry
// exercising every metric type — unlabeled and labeled counters, a
// gauge, a histogram with its _bucket/_sum/_count triplet, label and
// HELP escaping — must render byte-identical to the committed golden
// file. Scrapers are written against this format; a diff here is a
// compatibility break, not a cosmetic change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	r.Counter("tap_golden_events_total", "Events with\na newline and a back\\slash.").Add(42)
	in := r.Counter("tap_golden_frames_total", "Frames by direction.", Label{Name: "dir", Value: "in"})
	out := r.Counter("tap_golden_frames_total", "Frames by direction.", Label{Name: "dir", Value: "out"})
	in.Add(3)
	out.Add(5)
	r.Counter("tap_golden_escapes_total", "Label escaping.",
		Label{Name: "path", Value: `C:\dir "quoted"` + "\nnext"}).Inc()

	g := r.Gauge("tap_golden_depth", "Queue depth.")
	g.Set(-7)

	h := r.Histogram("tap_golden_seconds", "Latency.", []float64{0.005, 0.25, 1, 2.5})
	for _, v := range []float64{0.001, 0.2, 0.9, 0.9, 3, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	// The golden document must also satisfy our own strict parser —
	// the format contract cuts both ways.
	if _, err := ParseText(bytes.NewReader(want)); err != nil {
		t.Fatalf("golden exposition does not parse: %v", err)
	}
}
