package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Handler returns the /metrics endpoint: each GET renders the registry
// in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

// NewDebugMux builds the debug listener's mux: /metrics backed by reg,
// plus the net/http/pprof suite under /debug/pprof/. One flat mux keeps
// the deployment surface to a single port per process.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds the debug mux to addr (host:0 picks a free port) and
// serves it on a background goroutine. It returns the bound address and
// a stop function that closes the listener. Used by cmd/tapnode and
// cmd/tapboard behind their -metrics-addr flags.
func Serve(addr string, reg *Registry) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// RegisterRuntimeMetrics adds the process-level gauges every deployment
// wants on a dashboard — goroutine count, heap bytes, GC cycles —
// published lazily on each scrape. Safe on a nil registry.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	goroutines := reg.Gauge("go_goroutines", "Number of live goroutines.")
	heap := reg.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	gcs := reg.Counter("go_gc_cycles_total", "Completed GC cycles.")
	reg.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heap.Set(int64(ms.HeapAlloc))
		gcs.Store(uint64(ms.NumGC))
	})
}
