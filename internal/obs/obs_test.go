package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tap_test_events_total", "Events.")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	c.Store(9)
	if c.Load() != 9 {
		t.Fatalf("counter after Store = %d, want 9", c.Load())
	}
	g := r.Gauge("tap_test_depth", "Depth.")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	g.Inc()
	if g.Load() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tap_test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 102.65; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// Bucket counts are non-cumulative internally: ≤0.1 gets 2 (0.05 and
	// the boundary-inclusive 0.1), ≤1 gets 1, ≤10 gets 1, +Inf gets 1.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

// TestNilSink is the simulator's contract: every instrument and registry
// method must be a no-op on nil, so un-instrumented runs need no
// conditionals at call sites.
func TestNilSink(t *testing.T) {
	var r *Registry
	c := r.Counter("tap_test_total", "x")
	g := r.Gauge("tap_test", "x")
	h := r.Histogram("tap_test_seconds", "x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	c.Inc()
	c.Add(3)
	c.Store(1)
	g.Set(2)
	g.Inc()
	g.Dec()
	h.Observe(1.5)
	r.OnScrape(func() { t.Fatal("hook ran on nil registry") })
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported values")
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q (err %v)", sb.String(), err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("tap_test_total", "x", Label{"dir", "in"})
	r.Counter("tap_test_total", "x", Label{"dir", "out"}) // distinct labels: fine
	for _, fn := range []func(){
		func() { r.Counter("tap_test_total", "x", Label{"dir", "in"}) }, // duplicate
		func() { r.Gauge("tap_test_total", "x") },                       // type clash
		func() { r.Counter("0bad", "x") },                               // bad name
		func() { r.Counter("tap_ok_total", "x", Label{"le", "y"}) },     // reserved label
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("tap_test_total", "Events.").Add(3)
	scraped := 0
	r.OnScrape(func() { scraped++ })
	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	snap, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("tap_test_total"); !ok || v != 3 {
		t.Fatalf("scraped value %v ok=%v", v, ok)
	}
	if scraped != 1 {
		t.Fatalf("OnScrape hook ran %d times", scraped)
	}

	// pprof rides the same mux.
	resp2, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp2.StatusCode)
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("tap_rt_total", "C.", Label{"peer", `quo"te\slash`}).Add(7)
	r.Gauge("tap_rt_depth", "G.").Set(-4)
	h := r.Histogram("tap_rt_seconds", "H.", []float64{0.5, 5})
	h.Observe(0.25)
	h.Observe(6)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing own exposition: %v\n%s", err, sb.String())
	}
	if v, ok := snap.Value("tap_rt_total", Label{"peer", `quo"te\slash`}); !ok || v != 7 {
		t.Fatalf("counter with escaped label: %v ok=%v", v, ok)
	}
	if v, ok := snap.Value("tap_rt_depth"); !ok || v != -4 {
		t.Fatalf("gauge: %v ok=%v", v, ok)
	}
	if v, ok := snap.Value("tap_rt_seconds_bucket", Label{"le", "+Inf"}); !ok || v != 2 {
		t.Fatalf("+Inf bucket: %v ok=%v", v, ok)
	}
	if v, ok := snap.Value("tap_rt_seconds_count"); !ok || v != 2 {
		t.Fatalf("histogram count: %v ok=%v", v, ok)
	}
	if snap.Types["tap_rt_seconds"] != "histogram" {
		t.Fatalf("TYPE line lost: %v", snap.Types)
	}
	if got := snap.Sum("tap_rt_total"); got != 7 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"tap_ok 1\nnot a metric line at all!\n",
		"tap_bad{le=}1\n",
		`tap_bad{x="unterminated} 1` + "\n",
		"tap_bad one\n",
		"# TYPE tap_bad flavor\n",
		"0leading_digit 1\n",
	} {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Fatalf("parser accepted %q", doc)
		}
	}
}
