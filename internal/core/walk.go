package core

import (
	"fmt"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/simnet"
)

// WalkStats accumulates the cost and path of one logical tunnel traversal.
type WalkStats struct {
	// OverlayHops counts every overlay routing hop taken, the quantity
	// behind the l·log_{2^b}N overhead of §5. Successful hint shortcuts
	// count as one hop.
	OverlayHops int
	// HintHits and HintMisses track the §5 optimization: a hit is a
	// direct delivery to a cached address that still hosted the hop; a
	// miss is a stale or absent hint that fell back to DHT routing.
	HintHits, HintMisses int
	// HopNodes lists the tunnel hop nodes that actually served each hop.
	HopNodes []pastry.NodeRef
	// CryptoOps counts symmetric operations performed by hop nodes,
	// validating §4's cost claim: "each tunnel hop performs only a single
	// symmetric key operation per message that is processed."
	CryptoOps int
}

// ForwardResult is the outcome of walking a forward tunnel.
type ForwardResult struct {
	Dest     id.ID
	DestNode pastry.NodeRef
	Payload  []byte
	Stats    WalkStats
}

// ReplyResult is the outcome of walking a reply tunnel: where the data
// finally landed. The caller decides whether the landing node is the
// intended initiator (by matching its pending bid); the walker cannot know
// — by design, neither can the network.
type ReplyResult struct {
	Target     id.ID // the last target id (the bid, when the tunnel worked)
	LandedNode pastry.NodeRef
	Remainder  []byte // unread onion remainder (the fake onion on success)
	Data       []byte
	Stats      WalkStats
}

// locateHop finds the node currently serving hopID, trying the §5 address
// hint first and falling back to DHT routing from `from`. It returns the
// node and the overlay hops spent.
func (svc *Service) locateHop(from simnet.Addr, hopID id.ID, hint simnet.Addr, stats *WalkStats) (*pastry.Node, error) {
	if hint != simnet.NoAddr {
		n := svc.OV.Node(hint)
		if n != nil && n.Alive() && svc.Dir.Manager().HolderHas(hint, hopID) {
			stats.HintHits++
			stats.OverlayHops++ // one direct network hop
			return n, nil
		}
		stats.HintMisses++
	}
	node, ok := svc.Dir.HopNode(hopID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrHopLost, hopID.Short())
	}
	path, err := svc.OV.RoutePath(from, hopID)
	if err != nil {
		return nil, fmt.Errorf("core: routing to hop %s: %w", hopID.Short(), err)
	}
	end := path[len(path)-1]
	if end.ID != node.ID() {
		// Routing and the replica oracle disagree — overlay state is
		// corrupt; surface loudly rather than mis-deliver.
		return nil, fmt.Errorf("core: route for %s ended at %s, owner is %s", hopID.Short(), end.ID.Short(), node.ID().Short())
	}
	stats.OverlayHops += len(path) - 1
	return node, nil
}

// DeliverForward walks a forward envelope from the initiator's address
// through every tunnel hop, performing each hop's real decryption, and
// routes the exit payload to its destination's owner node.
func (svc *Service) DeliverForward(from simnet.Addr, env *Envelope) (*ForwardResult, error) {
	var stats WalkStats
	cur := from
	// Copy the onion once; each hop then peels its layer in place on the
	// walker-owned buffer. env.Sealed must stay intact — the initiator's
	// reliability layer re-sends the same envelope on retransmit.
	hopID, hint, sealed := env.HopID, env.Hint, append([]byte(nil), env.Sealed...)
	for depth := 0; ; depth++ {
		if depth > 64 {
			return nil, fmt.Errorf("core: forward walk exceeded 64 hops; malformed tunnel")
		}
		node, err := svc.locateHop(cur, hopID, hint, &stats)
		if err != nil {
			return nil, err
		}
		stats.HopNodes = append(stats.HopNodes, node.Ref())
		if !svc.hopServes(node.Ref().Addr, hopID) {
			return nil, fmt.Errorf("%w: hop %s at node %s", ErrDropped, hopID.Short(), node.Ref())
		}
		anchor, err := svc.Dir.FetchAsHolder(node.Ref().Addr, hopID)
		if err != nil {
			return nil, fmt.Errorf("%w: hop node %s for %s", ErrNotHolder, node.Ref(), hopID.Short())
		}
		layer, err := OpenForwardLayerInPlace(anchor, sealed)
		if err != nil {
			return nil, err
		}
		stats.CryptoOps++
		cur = node.Ref().Addr
		if !layer.IsExit {
			hopID, hint, sealed = layer.Next, layer.NextHint, layer.Inner
			continue
		}
		// Tail node routes the plaintext payload to the destination owner.
		path, err := svc.OV.RoutePath(cur, layer.Dest)
		if err != nil {
			return nil, fmt.Errorf("core: tail routing to %s: %w", layer.Dest.Short(), err)
		}
		stats.OverlayHops += len(path) - 1
		return &ForwardResult{
			Dest:     layer.Dest,
			DestNode: path[len(path)-1],
			// Aliases the walker-owned buffer; nothing else references it.
			Payload: layer.Payload,
			Stats:   stats,
		}, nil
	}
}

// DeliverReply walks a reply envelope from the responder's address. At
// each target id, the owning node acts as a hop if it holds the matching
// anchor; the first target whose owner holds no anchor is the delivery
// point — the initiator when everything worked, a bystander otherwise.
func (svc *Service) DeliverReply(from simnet.Addr, env *ReplyEnvelope) (*ReplyResult, error) {
	var stats WalkStats
	cur := from
	// Copy the onion once and peel in place, as in DeliverForward.
	target, hint, onion := env.Target, env.Hint, append([]byte(nil), env.Onion...)
	for depth := 0; ; depth++ {
		if depth > 64 {
			return nil, fmt.Errorf("core: reply walk exceeded 64 hops; malformed reply tunnel")
		}
		// Try the hint, then DHT-route to the owner of the target id.
		var node *pastry.Node
		if hint != simnet.NoAddr {
			n := svc.OV.Node(hint)
			if n != nil && n.Alive() && svc.Dir.Manager().HolderHas(hint, target) {
				stats.HintHits++
				stats.OverlayHops++
				node = n
			} else {
				stats.HintMisses++
			}
		}
		if node == nil {
			path, err := svc.OV.RoutePath(cur, target)
			if err != nil {
				return nil, fmt.Errorf("core: reply routing to %s: %w", target.Short(), err)
			}
			stats.OverlayHops += len(path) - 1
			node = svc.OV.ByID(path[len(path)-1].ID)
			if node == nil {
				return nil, fmt.Errorf("core: reply route ended at dead node")
			}
		}
		cur = node.Ref().Addr
		anchor, err := svc.Dir.FetchAsHolder(node.Ref().Addr, target)
		if err != nil {
			// No anchor here: the message has arrived at its final
			// destination (whoever owns the target id now).
			return &ReplyResult{
				Target:     target,
				LandedNode: node.Ref(),
				Remainder:  onion, // aliases the walker-owned buffer
				Data:       append([]byte(nil), env.Data...),
				Stats:      stats,
			}, nil
		}
		stats.HopNodes = append(stats.HopNodes, node.Ref())
		if !svc.hopServes(node.Ref().Addr, target) {
			return nil, fmt.Errorf("%w: reply hop %s at node %s", ErrDropped, target.Short(), node.Ref())
		}
		next, nextHint, rest, err := OpenReplyLayerInPlace(anchor, onion)
		if err != nil {
			return nil, err
		}
		stats.CryptoOps++
		target, hint, onion = next, nextHint, rest
	}
}
