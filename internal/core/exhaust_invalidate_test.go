package core

import (
	"testing"

	"tap/internal/id"
	"tap/internal/simnet"
)

// TestExhaustInvalidatesTunnelHints is the satellite-1 regression: when a
// reliable flow burns its whole attempt budget, the initiator has
// concluded the tunnel is dead — so the HintCache entries for every hop it
// rode must be evicted (and remembered as stale), not just the ones a
// direct send happened to miss. Before the fix, only in-flight hint misses
// invalidated, so a dead hop's cached address kept poisoning later flows.
func TestExhaustInvalidatesTunnelHints(t *testing.T) {
	ns := newNetSys(t, 300, 3, 31)
	ns.eng.EnableReliability(Reliability{MaxAttempts: 3})
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	// Kill every replica of the middle hop in one batch so the anchor is
	// unrecoverable: each retransmission dies there and the flow exhausts.
	ns.mgr.BeginBatch()
	for _, addr := range ns.dir.ReplicaAddrs(tun.Hops[1].HopID) {
		if err := ns.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
		ns.net.Detach(addr)
	}
	ns.mgr.EndBatch()

	env, err := BuildForwardWithCache(tun, cache, id.HashString("d"), make([]byte, 500), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	hops := make([]id.ID, len(tun.Hops))
	for i, h := range tun.Hops {
		hops[i] = h.HopID
	}
	var out Outcome
	gotOut := false
	ns.eng.SendForwardOpt(in.Node().Ref().Addr, env, SendOpts{Cache: cache, Hops: hops},
		func(o Outcome) { out = o; gotOut = true })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOut || out.Delivered {
		t.Fatalf("flow should have exhausted: %+v", out)
	}
	if out.Attempts != 3 {
		t.Fatalf("attempts = %d, want the full budget of 3", out.Attempts)
	}
	for i, h := range hops {
		if cache.Get(h) != simnet.NoAddr {
			t.Fatalf("hop %d hint still cached after exhaustion", i)
		}
	}
	if ns.eng.StaleHints == 0 {
		t.Fatal("no stale hints recorded at exhaustion")
	}
}

// TestSendOptsMaxAttemptsOverride: a probe-style flow with a small per-flow
// budget must give up after that budget, not the engine-wide default.
func TestSendOptsMaxAttemptsOverride(t *testing.T) {
	ns := newNetSys(t, 300, 3, 32)
	ns.eng.EnableReliability(Reliability{MaxAttempts: 12})
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	ns.mgr.BeginBatch()
	for _, addr := range ns.dir.ReplicaAddrs(tun.Hops[0].HopID) {
		if err := ns.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
		ns.net.Detach(addr)
	}
	ns.mgr.EndBatch()
	env, err := BuildForward(tun, nil, id.HashString("d"), make([]byte, 100), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	var out Outcome
	ns.eng.SendForwardOpt(in.Node().Ref().Addr, env, SendOpts{MaxAttempts: 2},
		func(o Outcome) { out = o })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Delivered || out.Attempts != 2 {
		t.Fatalf("per-flow budget not honored: %+v", out)
	}
}
