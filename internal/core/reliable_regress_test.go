package core

import (
	"strings"
	"testing"

	"tap/internal/id"
	"tap/internal/simnet"
)

// Regression tests for the reliability protocol's edge cases: hint
// invalidation on a direct-send miss, terminal-side ACK dedup in both
// arrival orders, and finish()'s double-count protection for reliable
// flows.

// TestHintCacheInvalidateDropsOnlyTarget: Invalidate removes exactly the
// missed hop's entry; the rest of the cache keeps serving hints, and the
// nil/empty cache forms are safe to invalidate.
func TestHintCacheInvalidateDropsOnlyTarget(t *testing.T) {
	ns := newNetSys(t, 150, 3, 31)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	for _, h := range tun.Hops {
		if cache.Get(h.HopID) == simnet.NoAddr {
			t.Fatalf("hop %s not cached after Refresh", h.HopID.Short())
		}
	}
	missed := tun.Hops[1].HopID
	cache.Invalidate(missed)
	if got := cache.Get(missed); got != simnet.NoAddr {
		t.Fatalf("invalidated hop still hinted at %d", got)
	}
	for i, h := range tun.Hops {
		if i == 1 {
			continue
		}
		if cache.Get(h.HopID) == simnet.NoAddr {
			t.Fatalf("Invalidate(%s) also dropped hop %s", missed.Short(), h.HopID.Short())
		}
	}
	// Repeated and unknown invalidations are no-ops; a nil cache is safe.
	cache.Invalidate(missed)
	cache.Invalidate(id.HashString("never cached"))
	var nilCache *HintCache
	nilCache.Invalidate(missed)
	if nilCache.Get(missed) != simnet.NoAddr {
		t.Fatal("nil cache returned an address")
	}
}

// TestDirectSendMissMarksStaleHint: a hinted packet landing on a node
// that no longer holds the hop anchor must count a miss, record the
// (target, address) pair as stale, and make later dispatches skip the
// dead-end hint without a connection attempt.
func TestDirectSendMissMarksStaleHint(t *testing.T) {
	ns := newNetSys(t, 150, 3, 32)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	hop := tun.Hops[0].HopID
	// A live node that does not hold hop's anchor: the stale hint target.
	wrong := ns.ov.RandomLive(ns.root.Split("wrong"))
	for ns.mgr.HolderHas(wrong.Ref().Addr, hop) {
		wrong = ns.ov.RandomLive(ns.root.Split("wrong"))
	}
	env, err := BuildForward(tun, nil, id.HashString("dest"), []byte("payload"), ns.root.Split("build"))
	if err != nil {
		t.Fatal(err)
	}
	p := &packet{kind: kindForward, flow: ns.eng.newFlow(nil), target: hop, env: env, direct: true}
	ns.eng.deliver(wrong.Ref().Addr, p)
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if ns.eng.HintMiss == 0 {
		t.Fatalf("direct-send miss not counted (HintMiss=0)")
	}
	if ns.eng.StaleHints != 1 {
		t.Fatalf("StaleHints = %d, want 1", ns.eng.StaleHints)
	}
	if !ns.eng.hintStale(hop, wrong.Ref().Addr) {
		t.Fatal("missed (target, addr) pair not in the stale set")
	}
	// A later dispatch with the same hint skips the direct attempt: no
	// p.direct packet is sent at the stale address again.
	misses := ns.eng.HintMiss
	p2 := &packet{kind: kindForward, flow: ns.eng.newFlow(nil), target: hop, env: env}
	ns.eng.dispatch(wrong.Ref().Addr, p2, wrong.Ref().Addr)
	if p2.direct {
		t.Fatal("dispatch retried a hint already known stale")
	}
	if ns.eng.HintMiss != misses+1 {
		t.Fatalf("skipped stale hint not counted as a miss: %d -> %d", misses, ns.eng.HintMiss)
	}
}

// TestTerminalAckDedupBothOrders: when the original and a retransmitted
// copy of a reliable flow both reach the terminal, whichever arrives
// first is delivered and recorded; the second is suppressed as a
// duplicate but still re-ACKed (the first ACK may have been lost). Both
// arrival orders must behave identically.
func TestTerminalAckDedupBothOrders(t *testing.T) {
	for _, tc := range []struct {
		name                 string
		firstHops, laterHops int
	}{
		{"original-first", 4, 9},   // original (fewer hops) lands first
		{"retransmit-first", 9, 4}, // retransmitted copy overtakes
	} {
		t.Run(tc.name, func(t *testing.T) {
			ns := newNetSys(t, 100, 3, 33)
			ns.eng.EnableReliability(Reliability{})
			var deliveries []bool // dup flags in observation order
			ns.eng.OnDeliver = func(flow uint64, dup bool) { deliveries = append(deliveries, dup) }

			fired := 0
			flow := ns.eng.newFlow(func(Outcome) { fired++ })
			origin := simnet.Addr(7)
			terminal := simnet.Addr(3)
			ns.eng.flows[flow] = &flowState{origin: origin}

			first := &packet{kind: kindPayload, flow: flow, hops: tc.firstHops, ackTo: origin}
			ns.eng.finish(terminal, first, true, "")
			if rec, ok := ns.eng.acked[flow]; !ok || rec.dataHops != tc.firstHops {
				t.Fatalf("first arrival not recorded: %+v ok=%v", ns.eng.acked[flow], ok)
			}
			// The flow completes at the initiator before the second copy
			// lands (ACK processed), so the terminal's dedup state is all
			// that suppresses the duplicate.
			ns.eng.handleAck(&packet{kind: kindAck, flow: flow, dataHops: tc.firstHops})
			if fired != 1 {
				t.Fatalf("outcome fired %d times after ACK", fired)
			}

			later := &packet{kind: kindPayload, flow: flow, hops: tc.laterHops, ackTo: origin}
			ns.eng.finish(terminal, later, true, "")
			if fired != 1 {
				t.Fatalf("duplicate arrival re-fired the outcome (%d times)", fired)
			}
			if ns.eng.DupDeliveries != 1 {
				t.Fatalf("DupDeliveries = %d, want 1", ns.eng.DupDeliveries)
			}
			if ns.eng.AcksSent != 2 {
				t.Fatalf("AcksSent = %d, want 2 (duplicate must be re-ACKed)", ns.eng.AcksSent)
			}
			if rec := ns.eng.acked[flow]; rec.dataHops != tc.firstHops {
				t.Fatalf("duplicate overwrote the first arrival's record: %+v", rec)
			}
			want := []bool{false, true} // one fresh delivery, one suppressed dup
			if len(deliveries) != 2 || deliveries[0] != want[0] || deliveries[1] != want[1] {
				t.Fatalf("OnDeliver saw %v, want %v", deliveries, want)
			}
		})
	}
}

// TestReliableFinishDoesNotDoubleCount: mid-flight deaths of a pending
// reliable flow count as PacketsLost — never FailFlows, which is reserved
// for the flow-level verdict — and packets of a flow that already
// completed are ignored entirely.
func TestReliableFinishDoesNotDoubleCount(t *testing.T) {
	ns := newNetSys(t, 100, 3, 34)
	ns.eng.EnableReliability(Reliability{MaxAttempts: 3})
	fired := 0
	var out Outcome
	flow := ns.eng.newFlow(func(o Outcome) { fired++; out = o })
	st := &flowState{origin: simnet.Addr(5)}
	ns.eng.flows[flow] = st

	// Two attempts die mid-flight: packet-level losses, no flow verdict.
	ns.eng.finish(1, &packet{kind: kindPayload, flow: flow}, false, "first copy died")
	ns.eng.finish(2, &packet{kind: kindPayload, flow: flow}, false, "second copy died")
	if ns.eng.PacketsLost != 2 {
		t.Fatalf("PacketsLost = %d, want 2", ns.eng.PacketsLost)
	}
	if ns.eng.FailFlows != 0 || fired != 0 {
		t.Fatalf("mid-flight deaths concluded the flow: FailFlows=%d fired=%d", ns.eng.FailFlows, fired)
	}
	if st.lastErr != "second copy died" {
		t.Fatalf("lastErr = %q", st.lastErr)
	}

	// The budget runs out: exactly one failure verdict, carrying the last
	// observed death.
	st.attempts = 3
	ns.eng.exhaust(flow, st)
	if fired != 1 || ns.eng.FailFlows != 1 {
		t.Fatalf("exhaust verdict: fired=%d FailFlows=%d", fired, ns.eng.FailFlows)
	}
	if out.Delivered || !strings.Contains(out.FailedAt, "second copy died") {
		t.Fatalf("outcome = %+v", out)
	}

	// Late copies of the concluded flow change nothing.
	ns.eng.finish(3, &packet{kind: kindPayload, flow: flow}, false, "straggler died")
	ns.eng.finish(4, &packet{kind: kindPayload, flow: flow, ackTo: simnet.Addr(5)}, true, "")
	if fired != 1 || ns.eng.FailFlows != 1 || ns.eng.PacketsLost != 2 {
		t.Fatalf("late packets re-counted: fired=%d FailFlows=%d PacketsLost=%d",
			fired, ns.eng.FailFlows, ns.eng.PacketsLost)
	}
	if ns.eng.AcksSent != 0 {
		t.Fatalf("late delivery of an exhausted flow sent an ACK")
	}
}
