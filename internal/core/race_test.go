package core

import (
	"sync"
	"testing"

	"tap/internal/id"
	"tap/internal/simnet"
)

// TestHintCacheConcurrentAccess hammers the HintCache from refresher,
// invalidator, and reader goroutines simultaneously — the deployment
// shape where a background refresher races the engine's send path. Run
// under -race this pins the cache's internal locking; without the lock
// the map accesses fault outright.
func TestHintCacheConcurrentAccess(t *testing.T) {
	s := newSys(t, 100, 3, 7)
	in := s.readyInitiator(t, "race", 12)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(s.svc, tun); err != nil {
		t.Fatal(err)
	}

	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // refresher
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := cache.Refresh(s.svc, tun); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // invalidator
		defer wg.Done()
		for i := 0; i < iters; i++ {
			cache.Invalidate(tun.Hops[i%len(tun.Hops)].HopID)
		}
	}()
	go func() { // reader (the engine's hint lookup)
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = cache.Get(tun.Hops[i%len(tun.Hops)].HopID)
		}
	}()
	wg.Wait()

	// After the dust settles a refresh must fully repopulate the cache.
	if err := cache.Refresh(s.svc, tun); err != nil {
		t.Fatal(err)
	}
	for _, h := range tun.Hops {
		if cache.Get(h.HopID) == simnet.NoAddr {
			t.Fatalf("hop %s missing after final refresh", h.HopID.Short())
		}
	}
}

// TestTunnelRTOConcurrentAccess drives the per-tunnel RTO memory from
// concurrent goroutines, modeling an engine whose ack path (relax),
// timeout path (store), teardown (drop), and send path (load) run on
// different threads over a real transport.
func TestTunnelRTOConcurrentAccess(t *testing.T) {
	ns := newNetSys(t, 50, 3, 11)
	eng := ns.eng

	keys := make([]id.ID, 8)
	for i := range keys {
		keys[i] = id.HashString(string(rune('a' + i)))
	}
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // timeout path: record backoff
		defer wg.Done()
		for i := 0; i < iters; i++ {
			eng.storeTunnelRTO(keys[i%len(keys)], simnet.Time(i+1))
		}
	}()
	go func() { // ack path: decay toward the floor
		defer wg.Done()
		for i := 0; i < iters; i++ {
			eng.relaxTunnelRTO(keys[i%len(keys)], i%3 == 0, 1)
		}
	}()
	go func() { // teardown path
		defer wg.Done()
		for i := 0; i < iters; i++ {
			eng.dropTunnelRTO(keys[(i*3)%len(keys)])
		}
	}()
	go func() { // send path: seed the next stream's RTO
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = eng.loadTunnelRTO(keys[i%len(keys)])
		}
	}()
	wg.Wait()

	// The memory must still behave: a store is readable, a drop clears.
	eng.storeTunnelRTO(keys[0], 42)
	if got := eng.loadTunnelRTO(keys[0]); got != 42 {
		t.Fatalf("loadTunnelRTO = %v after store", got)
	}
	eng.dropTunnelRTO(keys[0])
	if got := eng.loadTunnelRTO(keys[0]); got != 0 {
		t.Fatalf("loadTunnelRTO = %v after drop", got)
	}
}
