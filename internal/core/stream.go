package core

import (
	"fmt"
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
	"tap/internal/wire"
)

// This file implements windowed streaming over tunnels: a pipelined
// sliding-window protocol replacing stop-and-wait for bulk transfers.
// PR 1's reliability layer keeps one message in flight per flow, capping
// per-flow throughput at ~1 payload per tunnel round trip. A Stream keeps
// a configurable window of segments in flight, acknowledges them with
// cumulative + selective (SACK) frames — wire-versioned in internal/wire —
// estimates its retransmit timeout from measured RTTs (SRTT/RTTVAR,
// RFC 6298 coefficients, Karn's rule on retransmitted segments), and
// recovers single losses by fast retransmit on duplicate ACKs instead of
// waiting out a full RTO.
//
// Segments travel in one of two modes. A direct stream rides kindStream
// packets routed (or hint-shortcut) to the destination id's owner — the
// overt bulk path, and the zero-allocation benchmark path. A tunnel
// stream seals every segment as a §5 forward envelope over the owner's
// tunnel; the tunnel exit unwraps the segment framing and routes it
// onward, so the initiator stays anonymous while the window keeps the
// pipe full. Acknowledgments return over the overt path to the sender's
// address, exactly like PR 1's end-to-end ACKs.
//
// The hot path is zero-allocation in steady state: window slots are ring
// buffers with pooled payload storage, packets come from a freelist, ACK
// ranges reuse per-packet arrays, and the retransmit timer re-arms a
// single preallocated closure through the kernel's slot arena.

// streamIDBase offsets stream ids away from reliable-flow ids so the two
// id spaces can never collide in the engine's shared packet field.
const streamIDBase uint64 = 1 << 62

// streamHintInvalidateAfter is the number of consecutive RTO expirations
// after which a tunnel stream concludes its cached hop addresses are
// poisoned and invalidates them all (the exhaust-time path of PR 4).
const streamHintInvalidateAfter = 3

// recvWindowCap bounds the receive-side reorder buffer: segments more
// than this far ahead of the in-order cursor are dropped (the sender
// retransmits them once the window slides). Four times the default send
// window keeps the drop path unreachable for well-behaved senders.
const recvWindowCap = 256

// StreamConfig tunes one windowed stream. The zero value gets defaults.
type StreamConfig struct {
	// Window is the maximum number of unacknowledged segments in flight.
	// Default 32.
	Window int
	// SegSize is the payload capacity of one segment. Default 1024.
	SegSize int
	// MaxRetries bounds per-segment retransmissions before the stream
	// fails. Default 12.
	MaxRetries int
	// DupAckThreshold is the number of duplicate cumulative ACKs that
	// triggers a fast retransmit of the oldest unacknowledged segment.
	// Default 3.
	DupAckThreshold int
	// InitRTO is the retransmit timeout before the first RTT sample.
	// Default 1s — generous, because a tunnel round trip spans many
	// store-and-forward hops; the estimator converges after one ACK.
	InitRTO simnet.Time
	// MinRTO floors the estimated timeout. Default 20ms.
	MinRTO simnet.Time
	// MaxRTO caps exponential backoff. Default 30s.
	MaxRTO simnet.Time
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.SegSize == 0 {
		c.SegSize = 1024
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 12
	}
	if c.DupAckThreshold == 0 {
		c.DupAckThreshold = 3
	}
	if c.InitRTO == 0 {
		c.InitRTO = time.Second
	}
	if c.MinRTO == 0 {
		c.MinRTO = 20 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 30 * time.Second
	}
	return c
}

// rttEstimator is the RFC 6298 smoothed round-trip estimator: SRTT and
// RTTVAR with gains 1/8 and 1/4, RTO = SRTT + 4·RTTVAR. Callers apply
// Karn's rule by never feeding samples from retransmitted segments.
type rttEstimator struct {
	srtt   simnet.Time
	rttvar simnet.Time
	valid  bool
}

func (r *rttEstimator) observe(sample simnet.Time) {
	if !r.valid {
		r.srtt = sample
		r.rttvar = sample / 2
		r.valid = true
		return
	}
	d := r.srtt - sample
	if d < 0 {
		d = -d
	}
	r.rttvar += (d - r.rttvar) / 4
	r.srtt += (sample - r.srtt) / 8
}

func (r *rttEstimator) rto(cfg *StreamConfig) simnet.Time {
	if !r.valid {
		return cfg.InitRTO
	}
	rto := r.srtt + 4*r.rttvar
	if rto < cfg.MinRTO {
		rto = cfg.MinRTO
	}
	if rto > cfg.MaxRTO {
		rto = cfg.MaxRTO
	}
	return rto
}

// sendSlot is one ring-buffer entry of the send window.
type sendSlot struct {
	seq    uint64
	buf    []byte // pooled payload storage; nil for the bare FIN segment
	n      int
	fin    bool
	sentAt simnet.Time
	rtx    int  // retransmissions so far; >0 disables RTT sampling (Karn)
	sacked bool // selectively acknowledged, never retransmitted
	used   bool
}

// Stream is the sender side of one windowed stream. Open with
// NetEngine.OpenStream (direct mode) or OpenTunnelStream (segments sealed
// over a forward tunnel); then Write until accepted bytes fall short (the
// window is full — install OnWritable to resume), and Close to flush the
// FIN. A Stream belongs to the simulation's event loop goroutine.
type Stream struct {
	eng    *NetEngine
	id     uint64
	origin simnet.Addr
	dest   id.ID
	cfg    StreamConfig

	// Direct mode: an optional address hint for the destination owner.
	destHint simnet.Addr
	// Tunnel mode: segments are sealed over tun with cache's hints.
	tun       *Tunnel
	cache     *HintCache
	hopIDs    []id.ID
	tunKey    id.ID // first hop id: the per-tunnel backoff memory key
	hasTunKey bool

	ring   []sendSlot
	sndUna uint64 // oldest unacknowledged sequence number
	sndNxt uint64 // next sequence number to assign

	finSeq    uint64
	finSet    bool
	finWanted bool
	closed    bool
	done      bool
	failed    bool
	failWhy   string

	rtt          rttEstimator
	rto          simnet.Time
	backoffCount int // consecutive RTO expirations (reset on progress)
	dupAcks      int

	// Retransmit timer: one preallocated closure, re-armed through the
	// kernel. rtxDeadline is when the head segment times out (0 = no
	// segment outstanding); timerAt is when the scheduled event fires
	// (0 = none scheduled). A stale event re-arms itself for the
	// remainder instead of acting.
	rtxDeadline simnet.Time
	timerAt     simnet.Time
	timerFn     func()

	wrote       uint64
	maxInflight int

	// OnWritable fires when window space frees after a Write returned
	// short. OnComplete fires once: true when every segment including the
	// FIN is acknowledged, false when the stream failed.
	OnWritable func()
	OnComplete func(ok bool)

	// Per-stream counters.
	SegsSent uint64
	SegsRetx uint64
}

// closedStreamRec remembers a finished incoming stream so late duplicate
// segments are re-ACKed rather than re-delivered.
type closedStreamRec struct {
	ackTo simnet.Addr
	cum   uint64
}

// OpenStream opens a direct windowed stream from origin to the owner of
// dest, optionally hinting the owner's address (NoAddr for pure DHT
// routing).
func (e *NetEngine) OpenStream(origin simnet.Addr, dest id.ID, hint simnet.Addr, cfg StreamConfig) *Stream {
	return e.openStream(origin, dest, hint, nil, nil, cfg)
}

// OpenTunnelStream opens a windowed stream whose segments each ride the
// owner's forward tunnel as sealed envelopes, exiting toward the owner of
// dest. Retransmissions re-seal and re-resolve hints, so a segment lost
// to a hop crash is re-driven through whichever replica now holds the
// anchor.
func (e *NetEngine) OpenTunnelStream(origin simnet.Addr, tun *Tunnel, cache *HintCache, dest id.ID, cfg StreamConfig) *Stream {
	return e.openStream(origin, dest, simnet.NoAddr, tun, cache, cfg)
}

func (e *NetEngine) openStream(origin simnet.Addr, dest id.ID, hint simnet.Addr, tun *Tunnel, cache *HintCache, cfg StreamConfig) *Stream {
	cfg = cfg.withDefaults()
	e.nextStream++
	s := &Stream{
		eng:      e,
		id:       streamIDBase + e.nextStream,
		origin:   origin,
		dest:     dest,
		destHint: hint,
		tun:      tun,
		cache:    cache,
		cfg:      cfg,
		rto:      cfg.InitRTO,
	}
	ringSize := cfg.Window
	if e.StreamWindowBypass {
		ringSize *= 4
	}
	s.ring = make([]sendSlot, ringSize)
	if tun != nil {
		s.hopIDs = tun.HopIDs()
		s.tunKey = tun.Hops[0].HopID
		s.hasTunKey = true
		// Per-tunnel backoff memory: a stream over a tunnel that recently
		// proved lossy inherits the backed-off timeout instead of
		// resetting it and hammering the same loss.
		if stored := e.loadTunnelRTO(s.tunKey); stored > s.rto {
			s.rto = stored
		}
	}
	s.timerFn = s.onTimerEvent
	e.sendStreams[s.id] = s
	return s
}

// ID returns the stream id, shared with the receive side.
func (s *Stream) ID() uint64 { return s.id }

// Done reports whether every segment including the FIN was acknowledged.
func (s *Stream) Done() bool { return s.done }

// Failed reports stream failure and its reason.
func (s *Stream) Failed() (bool, string) { return s.failed, s.failWhy }

// BytesWritten returns the payload bytes accepted so far.
func (s *Stream) BytesWritten() uint64 { return s.wrote }

// ConfiguredWindow returns the window limit the stream was opened with.
func (s *Stream) ConfiguredWindow() int { return s.cfg.Window }

// MaxInflightSegs returns the peak number of simultaneously
// unacknowledged segments — the window-conservation observable.
func (s *Stream) MaxInflightSegs() int { return s.maxInflight }

func (s *Stream) slot(seq uint64) *sendSlot {
	return &s.ring[seq%uint64(len(s.ring))]
}

func (s *Stream) inflight() int { return int(s.sndNxt - s.sndUna) }

// canAccept reports whether the window has room for another segment.
func (s *Stream) canAccept() bool {
	if s.closed || s.done || s.failed {
		return false
	}
	return s.inflight() < len(s.ring)
}

// Write queues as much of p as the window allows, slicing it into
// segments, and returns the number of bytes accepted. A short return
// means the window is full: install OnWritable and resume there.
func (s *Stream) Write(p []byte) int {
	accepted := 0
	for len(p) > 0 && s.canAccept() {
		n := len(p)
		if n > s.cfg.SegSize {
			n = s.cfg.SegSize
		}
		sl := s.claim()
		sl.buf = s.eng.getSegBuf(s.cfg.SegSize)
		sl.n = copy(sl.buf[:n], p[:n])
		p = p[n:]
		accepted += n
		s.wrote += uint64(n)
		s.transmit(sl)
	}
	return accepted
}

// Close marks the stream finished: a FIN segment is sent as soon as the
// window allows, and OnComplete fires once it (and everything before it)
// is acknowledged.
func (s *Stream) Close() {
	if s.closed || s.done || s.failed {
		return
	}
	s.closed = true
	s.finWanted = true
	s.tryFin()
}

// claim assigns the next sequence number to a ring slot.
func (s *Stream) claim() *sendSlot {
	sl := s.slot(s.sndNxt)
	*sl = sendSlot{seq: s.sndNxt, used: true}
	s.sndNxt++
	if fl := s.inflight(); fl > s.maxInflight {
		s.maxInflight = fl
	}
	return sl
}

// tryFin emits the FIN segment once window space allows.
func (s *Stream) tryFin() {
	if !s.finWanted || s.finSet || s.failed || s.inflight() >= len(s.ring) {
		return
	}
	sl := s.claim()
	sl.fin = true
	s.finSet = true
	s.finSeq = sl.seq
	s.transmit(sl)
}

// transmit sends a freshly claimed segment.
func (s *Stream) transmit(sl *sendSlot) {
	s.SegsSent++
	s.eng.StreamSegsSent++
	s.sendSegment(sl)
	if s.rtxDeadline == 0 {
		s.rtxDeadline = s.eng.net.Now() + s.rto
		s.schedTimer(s.rtxDeadline)
	}
}

// retransmit re-sends a segment (timeout or fast retransmit).
func (s *Stream) retransmit(sl *sendSlot) {
	sl.rtx++
	s.SegsRetx++
	s.eng.StreamSegsRetx++
	s.sendSegment(sl)
}

// sendSegment puts one copy of the segment on the wire in the stream's
// transport mode.
func (s *Stream) sendSegment(sl *sendSlot) {
	e := s.eng
	sl.sentAt = e.net.Now()
	if s.tun == nil {
		p := e.getPacket()
		p.kind = kindStream
		p.flow = s.id
		p.target = s.dest
		p.seq = sl.seq
		p.fin = sl.fin
		p.data = sl.buf[:sl.n]
		p.ackTo = s.origin
		e.dispatch(s.origin, p, s.destHint)
		return
	}
	// Tunnel mode: seal the framed segment as a forward envelope. Each
	// (re)transmission re-resolves hints through the cache, preserving
	// the §6 failover semantics of the reliability layer.
	w := wire.NewWriter(wire.StreamSegmentOverhead + sl.n)
	wire.AppendStreamSegment(w, s.id, sl.seq, sl.fin, int64(s.origin), sl.buf[:sl.n])
	env, err := BuildForwardWithCache(s.tun, s.cache, s.dest, w.Bytes(), e.svc.Stream)
	if err != nil {
		s.fail(fmt.Sprintf("sealing segment %d: %v", sl.seq, err))
		return
	}
	p := e.getPacket()
	p.kind = kindForward
	p.flow = s.id
	p.target = env.HopID
	p.env = env
	p.ackTo = s.origin
	e.dispatch(s.origin, p, env.Hint)
}

// schedTimer ensures a timer event exists at or before `at`.
func (s *Stream) schedTimer(at simnet.Time) {
	if s.timerAt != 0 && s.timerAt <= at {
		return // the pending event fires early enough; it will re-arm
	}
	s.timerAt = at
	s.eng.net.Schedule(at-s.eng.net.Now(), s.timerFn)
}

// onTimerEvent is the single retransmit-timer callback.
func (s *Stream) onTimerEvent() {
	s.timerAt = 0
	if s.done || s.failed || s.inflight() == 0 || s.rtxDeadline == 0 {
		return
	}
	now := s.eng.net.Now()
	if now < s.rtxDeadline {
		// ACK progress pushed the deadline out; re-arm for the remainder.
		s.schedTimer(s.rtxDeadline)
		return
	}
	s.onTimeout(now)
}

// onTimeout handles one RTO expiration: exponential backoff, per-tunnel
// backoff memory, repeated-expiry hint invalidation, and retransmission
// of the oldest unacknowledged segment.
func (s *Stream) onTimeout(now simnet.Time) {
	head := s.slot(s.sndUna)
	if !head.used {
		return
	}
	if head.rtx >= s.cfg.MaxRetries {
		s.fail(fmt.Sprintf("segment %d: retransmit budget exhausted after %d tries", head.seq, head.rtx+1))
		return
	}
	s.eng.StreamTimeouts++
	s.backoffCount++
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	if s.hasTunKey {
		// Remember the backed-off timeout for this tunnel so new streams
		// and flows over it start from reality, not from scratch.
		s.eng.storeTunnelRTO(s.tunKey, s.rto)
	}
	if s.backoffCount == streamHintInvalidateAfter && s.tun != nil {
		// Repeated expiry: stop trusting the cached hop addresses.
		s.eng.invalidateTunnelHints(s.cache, s.hopIDs)
	}
	s.retransmit(head)
	s.rtxDeadline = now + s.rto
	s.schedTimer(s.rtxDeadline)
}

// handleAck applies one cumulative+SACK acknowledgment.
func (s *Stream) handleAck(cum uint64, ranges []wire.AckRange) {
	if s.done || s.failed || cum > s.sndNxt {
		return
	}
	now := s.eng.net.Now()
	if cum > s.sndUna {
		for seq := s.sndUna; seq < cum; seq++ {
			sl := s.slot(seq)
			if !sl.used {
				continue
			}
			if sl.rtx == 0 && !sl.sacked {
				s.rtt.observe(now - sl.sentAt)
			}
			s.release(sl)
		}
		s.sndUna = cum
		s.dupAcks = 0
		s.backoffCount = 0
		s.rto = s.rtt.rto(&s.cfg)
		if s.inflight() > 0 {
			s.rtxDeadline = now + s.rto
			s.schedTimer(s.rtxDeadline)
		} else {
			s.rtxDeadline = 0
		}
	} else if cum == s.sndUna && s.inflight() > 0 {
		s.dupAcks++
		if s.dupAcks >= s.cfg.DupAckThreshold {
			s.dupAcks = 0
			head := s.slot(s.sndUna)
			if head.used && !head.sacked {
				s.eng.StreamFastRetx++
				s.retransmit(head)
				s.rtxDeadline = now + s.rto
				s.schedTimer(s.rtxDeadline)
			}
		}
	}
	for _, r := range ranges {
		lo, hi := r.Start, r.End
		if lo < s.sndUna {
			lo = s.sndUna
		}
		if hi > s.sndNxt {
			hi = s.sndNxt
		}
		for seq := lo; seq < hi; seq++ {
			sl := s.slot(seq)
			if sl.used && !sl.sacked {
				sl.sacked = true
				if sl.rtx == 0 {
					s.rtt.observe(now - sl.sentAt)
				}
			}
		}
	}
	if s.finSet && s.sndUna > s.finSeq {
		s.complete()
		return
	}
	s.tryFin()
	if !s.closed && s.OnWritable != nil && s.canAccept() {
		s.OnWritable()
	}
}

// release returns a slot's payload buffer to the pool.
func (s *Stream) release(sl *sendSlot) {
	if sl.buf != nil {
		s.eng.putSegBuf(sl.buf)
	}
	*sl = sendSlot{}
}

// complete finishes a fully acknowledged stream.
func (s *Stream) complete() {
	s.done = true
	delete(s.eng.sendStreams, s.id)
	if s.hasTunKey && s.SegsRetx == 0 {
		// A clean run over this tunnel: drop the backoff memory.
		s.eng.dropTunnelRTO(s.tunKey)
	}
	if s.OnComplete != nil {
		s.OnComplete(true)
	}
}

// fail abandons the stream.
func (s *Stream) fail(why string) {
	if s.failed || s.done {
		return
	}
	s.failed = true
	s.failWhy = why
	for seq := s.sndUna; seq < s.sndNxt; seq++ {
		if sl := s.slot(seq); sl.used {
			s.release(sl)
		}
	}
	delete(s.eng.sendStreams, s.id)
	if s.tun != nil {
		// The tunnel is presumed dead, exactly like reliable-flow
		// exhaustion: evict every hop's cached address.
		s.eng.invalidateTunnelHints(s.cache, s.hopIDs)
	}
	if s.OnComplete != nil {
		s.OnComplete(false)
	}
}

// --- receive side -----------------------------------------------------------

// recvSlot buffers one out-of-order segment. data aliases the arriving
// packet's payload; see the packet.data lifetime note.
type recvSlot struct {
	seq  uint64
	data []byte
	fin  bool
	used bool
}

// RecvStream is the receiver side of one windowed stream, created by the
// engine when the first segment arrives and announced through
// NetEngine.OnStream. OnData receives the payload strictly in order,
// exactly once; the slice is valid only during the callback.
type RecvStream struct {
	eng   *NetEngine
	id    uint64
	dest  id.ID
	ackTo simnet.Addr

	ring   []recvSlot
	rcvNxt uint64 // next in-order sequence number expected
	maxSeq uint64 // highest seq+1 received (SACK scan bound)

	finSeq uint64
	finSet bool
	closed bool

	bytes uint64
	segs  uint64

	OnData  func(seq uint64, data []byte)
	OnClose func(rs *RecvStream)
}

// ID returns the stream id, shared with the sender.
func (rs *RecvStream) ID() uint64 { return rs.id }

// Dest returns the destination id the stream was addressed to.
func (rs *RecvStream) Dest() id.ID { return rs.dest }

// Bytes returns the in-order payload bytes delivered so far.
func (rs *RecvStream) Bytes() uint64 { return rs.bytes }

// Closed reports whether the FIN was delivered in order.
func (rs *RecvStream) Closed() bool { return rs.closed }

// handleStreamData consumes a kindStream packet at the target id's owner.
func (e *NetEngine) handleStreamData(self simnet.Addr, p *packet) {
	sid := p.flow
	rs := e.recvStreams[sid]
	if rs == nil {
		if rec, ok := e.closedStreams[sid]; ok {
			// Late duplicate of a finished stream: the final ACK may have
			// been lost, so re-ACK — but never re-deliver.
			e.StreamDupSegs++
			e.sendStreamAck(self, sid, rec.ackTo, rec.cum)
			e.putPacket(p)
			return
		}
		rs = &RecvStream{eng: e, id: sid, dest: p.target, ackTo: p.ackTo}
		e.recvStreams[sid] = rs
		if e.OnStream != nil {
			e.OnStream(rs)
		}
	}
	rs.accept(self, p.seq, p.fin, p.data)
	e.putPacket(p)
}

// accept runs the receive-side protocol for one arriving segment.
func (rs *RecvStream) accept(self simnet.Addr, seq uint64, fin bool, data []byte) {
	e := rs.eng
	if e.StreamReorderBypass {
		// Sabotaged receiver: hand segments over in arrival order with no
		// reorder buffer and no dedup. Exists only so the simulation
		// checker can prove the in-order invariant catches it.
		rs.deliverSeg(seq, fin, data)
		if seq+1 > rs.rcvNxt {
			rs.rcvNxt = seq + 1
		}
		if rs.finSet && rs.rcvNxt > rs.finSeq {
			rs.close(self)
			return
		}
		rs.sendAck(self)
		return
	}
	switch {
	case seq < rs.rcvNxt:
		e.StreamDupSegs++
	case seq == rs.rcvNxt:
		rs.deliverSeg(seq, fin, data)
		rs.rcvNxt++
		if seq+1 > rs.maxSeq {
			rs.maxSeq = seq + 1
		}
		rs.drain()
	default:
		if rs.buffer(seq, fin, data) && seq+1 > rs.maxSeq {
			rs.maxSeq = seq + 1
		}
	}
	if rs.finSet && rs.rcvNxt > rs.finSeq {
		rs.close(self)
		return
	}
	rs.sendAck(self)
}

// deliverSeg hands one segment to the application.
func (rs *RecvStream) deliverSeg(seq uint64, fin bool, data []byte) {
	rs.segs++
	rs.bytes += uint64(len(data))
	rs.eng.StreamBytesRecv += uint64(len(data))
	if fin {
		rs.finSet = true
		rs.finSeq = seq
	}
	if rs.OnData != nil && len(data) > 0 {
		rs.OnData(seq, data)
	}
}

// drain delivers buffered segments that became in-order.
func (rs *RecvStream) drain() {
	for len(rs.ring) > 0 {
		sl := &rs.ring[rs.rcvNxt%uint64(len(rs.ring))]
		if !sl.used || sl.seq != rs.rcvNxt {
			return
		}
		data, fin := sl.data, sl.fin
		*sl = recvSlot{}
		rs.deliverSeg(rs.rcvNxt, fin, data)
		rs.rcvNxt++
	}
}

// buffer stores an out-of-order segment in the reorder ring, growing it
// up to recvWindowCap. Reports whether the segment was kept.
func (rs *RecvStream) buffer(seq uint64, fin bool, data []byte) bool {
	span := seq - rs.rcvNxt + 1
	if span > recvWindowCap {
		// Too far ahead: drop, the sender's window will bring it back.
		rs.eng.StreamSegsLost++
		return false
	}
	if uint64(len(rs.ring)) < span {
		rs.growRing(span)
	}
	sl := &rs.ring[seq%uint64(len(rs.ring))]
	if sl.used {
		// Same seq twice out of order; distinct seqs cannot collide
		// because the ring always spans the full receive window.
		rs.eng.StreamDupSegs++
		return false
	}
	*sl = recvSlot{seq: seq, data: data, fin: fin, used: true}
	return true
}

// growRing doubles the reorder ring until it spans at least minSpan,
// re-placing buffered segments at their new positions. Rings start small
// and grow on demand so a million mostly-in-order streams pay nothing.
func (rs *RecvStream) growRing(minSpan uint64) {
	size := uint64(8)
	for size < minSpan {
		size *= 2
	}
	next := make([]recvSlot, size)
	for i := range rs.ring {
		if sl := &rs.ring[i]; sl.used {
			next[sl.seq%size] = *sl
		}
	}
	rs.ring = next
}

// sendAck transmits a cumulative+SACK acknowledgment to the sender.
func (rs *RecvStream) sendAck(self simnet.Addr) {
	e := rs.eng
	p := e.getPacket()
	p.kind = kindStreamAck
	p.flow = rs.id
	p.cum = rs.rcvNxt
	// Collect the buffered runs above the cumulative point, nearest
	// first, bounded by the frame's range capacity.
	if rs.maxSeq > rs.rcvNxt && len(rs.ring) > 0 {
		n := uint64(len(rs.ring))
		open := false
		var cur wire.AckRange
		for seq := rs.rcvNxt; seq < rs.maxSeq; seq++ {
			sl := &rs.ring[seq%n]
			if sl.used && sl.seq == seq {
				if open && cur.End == seq {
					cur.End++
					continue
				}
				if open {
					if len(p.ranges) == wire.MaxAckRanges {
						break
					}
					p.ranges = append(p.ranges, cur)
				}
				cur = wire.AckRange{Start: seq, End: seq + 1}
				open = true
			}
		}
		if open && len(p.ranges) < wire.MaxAckRanges {
			p.ranges = append(p.ranges, cur)
		}
	}
	e.StreamAcksSent++
	e.send(self, rs.ackTo, p)
}

// sendStreamAck emits a bare cumulative ACK (closed-stream re-ACK path).
func (e *NetEngine) sendStreamAck(self simnet.Addr, sid uint64, to simnet.Addr, cum uint64) {
	p := e.getPacket()
	p.kind = kindStreamAck
	p.flow = sid
	p.cum = cum
	e.StreamAcksSent++
	e.send(self, to, p)
}

// close finishes the incoming stream: the FIN arrived in order.
func (rs *RecvStream) close(self simnet.Addr) {
	rs.closed = true
	rs.ring = nil
	delete(rs.eng.recvStreams, rs.id)
	rs.eng.closedStreams[rs.id] = closedStreamRec{ackTo: rs.ackTo, cum: rs.rcvNxt}
	rs.sendAck(self)
	if rs.OnClose != nil {
		rs.OnClose(rs)
	}
}

// handleStreamAck applies an arriving acknowledgment at the sender.
func (e *NetEngine) handleStreamAck(p *packet) {
	if s, ok := e.sendStreams[p.flow]; ok {
		s.handleAck(p.cum, p.ranges)
	}
	e.putPacket(p)
}

// --- freelists --------------------------------------------------------------

// getPacket takes a packet from the freelist. The event loop is
// single-threaded, so a plain slice suffices; steady-state stream traffic
// allocates no packets.
func (e *NetEngine) getPacket() *packet {
	if n := len(e.pktFree); n > 0 {
		p := e.pktFree[n-1]
		e.pktFree = e.pktFree[:n-1]
		return p
	}
	return &packet{ranges: make([]wire.AckRange, 0, wire.MaxAckRanges)}
}

// putPacket recycles a consumed packet, keeping its range storage.
func (e *NetEngine) putPacket(p *packet) {
	r := p.ranges[:0]
	*p = packet{}
	p.ranges = r
	e.pktFree = append(e.pktFree, p)
}

// getSegBuf takes a payload buffer of exactly the given size from the
// per-size pool.
func (e *NetEngine) getSegBuf(size int) []byte {
	pool := e.segPools[size]
	if n := len(pool); n > 0 {
		b := pool[n-1]
		e.segPools[size] = pool[:n-1]
		return b
	}
	return make([]byte, size)
}

// putSegBuf returns a buffer to its size pool.
func (e *NetEngine) putSegBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	e.segPools[cap(b)] = append(e.segPools[cap(b)], b)
}
