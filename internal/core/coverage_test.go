package core

import (
	"errors"
	"testing"

	"tap/internal/id"
	"tap/internal/simnet"
)

func TestHintCacheNilAndMissing(t *testing.T) {
	var nilCache *HintCache
	if nilCache.Get(id.HashString("x")) != simnet.NoAddr {
		t.Fatalf("nil cache should return NoAddr")
	}
	c := NewHintCache()
	if c.Get(id.HashString("x")) != simnet.NoAddr {
		t.Fatalf("empty cache should return NoAddr")
	}
}

func TestHintCacheRefreshFailsOnLostAnchor(t *testing.T) {
	s := newSys(t, 200, 3, 81)
	in := s.readyInitiator(t, "a", 8)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(tun.Hops[1].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	cache := NewHintCache()
	if err := cache.Refresh(s.svc, tun); !errors.Is(err, ErrHopLost) {
		t.Fatalf("Refresh err = %v, want ErrHopLost", err)
	}
}

func TestBuildWithCacheHelpers(t *testing.T) {
	s := newSys(t, 300, 3, 82)
	in := s.readyInitiator(t, "a", 20)
	fwd, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(s.svc, fwd); err != nil {
		t.Fatal(err)
	}
	if err := cache.Refresh(s.svc, rep); err != nil {
		t.Fatal(err)
	}
	env, err := BuildForwardWithCache(fwd, cache, id.HashString("d"), []byte("x"), s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	if env.Hint == simnet.NoAddr {
		t.Fatalf("cached build produced no first-hop hint")
	}
	res, err := s.svc.DeliverForward(in.Node().Ref().Addr, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HintHits != 3 {
		t.Fatalf("hint hits %d", res.Stats.HintHits)
	}

	bid := in.NewBid()
	rt, err := BuildReplyWithCache(rep, cache, bid, s.root.Split("r"))
	if err != nil {
		t.Fatal(err)
	}
	if rt.FirstHint == simnet.NoAddr {
		t.Fatalf("cached reply build produced no first-hop hint")
	}
	rres, err := s.svc.DeliverReply(s.ov.RandomLive(s.root.Split("resp")).Ref().Addr, &ReplyEnvelope{
		Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: []byte("d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rres.LandedNode.ID != in.Node().ID() {
		t.Fatalf("cached reply lost")
	}
	if rres.Stats.HintHits == 0 {
		t.Fatalf("reply path used no hints")
	}
}

func TestFormDisjointTunnels(t *testing.T) {
	s := newSys(t, 250, 3, 83)
	in := s.readyInitiator(t, "a", 12)
	tunnels, err := in.FormDisjointTunnels(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tunnels) != 3 {
		t.Fatalf("got %d tunnels", len(tunnels))
	}
	seen := map[id.ID]bool{}
	for _, tun := range tunnels {
		for _, h := range tun.Hops {
			if seen[h.HopID] {
				t.Fatalf("tunnels share anchor %s", h.HopID.Short())
			}
			seen[h.HopID] = true
		}
	}
	// Pool too small for one more disjoint set.
	if _, err := in.FormDisjointTunnels(4, 4); err == nil {
		t.Fatalf("oversubscribed disjoint formation accepted")
	}
}

func TestServiceAccessor(t *testing.T) {
	s := newSys(t, 100, 3, 84)
	in := s.newInitiator(t, "a")
	if in.Service() != s.svc {
		t.Fatalf("Service accessor mismatch")
	}
}

func TestDeliverReplyFromDeadResponder(t *testing.T) {
	s := newSys(t, 200, 3, 85)
	in := s.readyInitiator(t, "a", 10)
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := BuildReply(rep, nil, in.NewBid(), s.root.Split("r"))
	if err != nil {
		t.Fatal(err)
	}
	dead := s.ov.RandomLive(s.root.Split("dead"))
	if dead.ID() == in.Node().ID() {
		t.Skip("degenerate draw")
	}
	if err := s.ov.Fail(dead.Ref().Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.DeliverReply(dead.Ref().Addr, &ReplyEnvelope{
		Target: rt.First, Onion: rt.Onion, Hint: simnet.NoAddr, Data: []byte("d"),
	}); err == nil {
		t.Fatalf("reply from dead responder accepted")
	}
}

func TestBuildForwardValidation(t *testing.T) {
	s := newSys(t, 100, 3, 86)
	in := s.readyInitiator(t, "a", 6)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	empty := &Tunnel{}
	if _, err := BuildForward(empty, nil, id.HashString("d"), nil, s.root); err == nil {
		t.Fatalf("empty tunnel accepted")
	}
	if _, err := BuildForward(tun, make([]simnet.Addr, 2), id.HashString("d"), nil, s.root); err == nil {
		t.Fatalf("hint count mismatch accepted")
	}
	if _, err := BuildReply(empty, nil, id.HashString("b"), s.root); err == nil {
		t.Fatalf("empty reply tunnel accepted")
	}
	if _, err := BuildReply(tun, make([]simnet.Addr, 1), id.HashString("b"), s.root); err == nil {
		t.Fatalf("reply hint mismatch accepted")
	}
}
