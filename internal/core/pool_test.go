package core

import (
	"errors"
	"testing"
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
)

// newPoolSys wires a netSys with reliability on and a started pool.
func newPoolSys(t *testing.T, n int, seed uint64, cfg PoolConfig) (*netSys, *Initiator, *TunnelPool) {
	t.Helper()
	ns := newNetSys(t, n, 3, seed)
	ns.eng.EnableReliability(Reliability{MaxAttempts: 8})
	in := ns.readyInitiator(t, "pool-owner", 0)
	p, err := NewTunnelPool(in, ns.eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ns, in, p
}

// killAnchor makes a hop anchor unrecoverable: every replica fails in one
// batch (migration suspended, the paper's simultaneous-failure model) and
// detaches from the network.
func killAnchor(t *testing.T, ns *netSys, hop id.ID, spare simnet.Addr) {
	t.Helper()
	ns.mgr.BeginBatch()
	for _, addr := range ns.dir.ReplicaAddrs(hop) {
		if addr == spare {
			continue
		}
		if err := ns.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
		ns.net.Detach(addr)
	}
	ns.mgr.EndBatch()
}

func TestPoolFormsDisjointAndStaysHealthy(t *testing.T) {
	ns, _, p := newPoolSys(t, 300, 41, PoolConfig{Size: 3, Length: 3})
	p.Start()
	if err := ns.kernel.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.HealthyCount() != 3 {
		t.Fatalf("healthy = %d, want 3", p.HealthyCount())
	}
	if p.Stats.ProbesSent == 0 || p.Stats.ProbesOK == 0 {
		t.Fatalf("no probes ran: %+v", p.Stats)
	}
	if p.Stats.ProbesFailed != 0 || p.Stats.SlotDeaths != 0 {
		t.Fatalf("healthy pool saw failures: %+v", p.Stats)
	}
	// The three tunnels must be pairwise disjoint.
	seen := make(map[id.ID]int)
	for _, s := range p.slots {
		for _, h := range s.tunnel.Hops {
			seen[h.HopID]++
		}
	}
	for h, c := range seen {
		if c > 1 {
			t.Fatalf("hop %s shared by %d pool tunnels", h.Short(), c)
		}
	}
	p.Stop()
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if ns.kernel.Pending() != 0 {
		t.Fatalf("%d events still pending after Stop+drain", ns.kernel.Pending())
	}
}

func TestPoolDetectsDeathAttributesAndRebuilds(t *testing.T) {
	ns, _, p := newPoolSys(t, 400, 42, PoolConfig{Size: 3, Length: 3})
	p.Start()
	if err := ns.kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill the middle hop of slot 0's tunnel.
	victim := p.slots[0].tunnel.Hops[1].HopID
	killAnchor(t, ns, victim, simnet.NoAddr)
	if err := ns.kernel.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.HealthyCount() != 3 {
		t.Fatalf("pool did not re-converge: healthy = %d, stats %+v", p.HealthyCount(), p.Stats)
	}
	if p.Stats.SlotDeaths == 0 || p.Stats.Rebuilds == 0 {
		t.Fatalf("death not detected or not rebuilt: %+v", p.Stats)
	}
	if p.Stats.Attributions == 0 {
		t.Fatalf("death not attributed: %+v", p.Stats)
	}
	if p.Stats.Repairs == 0 || p.MeanRepairTime() <= 0 {
		t.Fatalf("repair time not measured: %+v", p.Stats)
	}
	// The replacement tunnel must not ride the dead anchor.
	for _, s := range p.slots {
		for _, h := range s.tunnel.Hops {
			if h.HopID == victim {
				t.Fatal("rebuilt tunnel reuses the dead anchor")
			}
		}
	}
	p.Stop()
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPartitionedInitiatorFailsFast is the satellite-3 regression: a
// partitioned initiator's sends must be rejected immediately (degraded
// state) instead of each burning a full retransmit schedule — and the
// pool must recover on its own once the partition heals.
func TestPoolPartitionedInitiatorFailsFast(t *testing.T) {
	ns, in, p := newPoolSys(t, 300, 43, PoolConfig{Size: 3, Length: 3})
	p.Start()
	if err := ns.kernel.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	pid := ns.net.StartPartition([]simnet.Addr{in.Node().Ref().Addr}, false)
	if err := ns.kernel.RunUntil(65 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !p.Degraded() {
		t.Fatalf("pool not degraded under partition: healthy=%d stats=%+v", p.HealthyCount(), p.Stats)
	}
	// The send must fail synchronously: error now, no callback, no flow.
	before := ns.kernel.Pending()
	called := false
	err := p.Send(id.HashString("dest"), []byte("x"), func(Outcome) { called = true })
	if !errors.Is(err, ErrPoolDegraded) {
		t.Fatalf("Send = %v, want ErrPoolDegraded", err)
	}
	if called {
		t.Fatal("done callback invoked on a fast-failed send")
	}
	if ns.kernel.Pending() != before {
		t.Fatal("fast-failed send scheduled network work")
	}
	if p.Stats.FastFails == 0 {
		t.Fatal("FastFails not counted")
	}

	// Heal; probes and rebuilds must restore the pool without help.
	ns.net.HealPartition(pid)
	if err := ns.kernel.RunUntil(155 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.Degraded() || p.HealthyCount() != 3 {
		t.Fatalf("pool did not recover after heal: degraded=%v healthy=%d stats=%+v",
			p.Degraded(), p.HealthyCount(), p.Stats)
	}
	delivered := false
	if err := p.Send(id.HashString("dest"), []byte("x"), func(o Outcome) { delivered = o.Delivered }); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
	if err := ns.kernel.RunUntil(185 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("send after heal not delivered")
	}
	p.Stop()
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolSendFailsOverToHealthySlot(t *testing.T) {
	ns, _, p := newPoolSys(t, 400, 44, PoolConfig{Size: 3, Length: 3})
	// No Start: the send itself must discover the dead tunnel and fail
	// over. Kill a hop of the first-ranked slot.
	victim := p.slots[0].tunnel.Hops[0].HopID
	killAnchor(t, ns, victim, simnet.NoAddr)
	var out Outcome
	gotOut := false
	if err := p.Send(id.HashString("dest"), []byte("payload"), func(o Outcome) { out = o; gotOut = true }); err != nil {
		t.Fatal(err)
	}
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOut || !out.Delivered {
		t.Fatalf("failover send not delivered: %+v", out)
	}
	if p.Stats.Failovers == 0 || p.Stats.SendFailures == 0 {
		t.Fatalf("failover not exercised: %+v", p.Stats)
	}
}

func TestPoolRebuildRateLimited(t *testing.T) {
	ns, _, p := newPoolSys(t, 400, 45, PoolConfig{
		Size: 3, Length: 3,
		// One token, effectively no refill: only one rebuild may be
		// admitted no matter how many tunnels die.
		Limiter: NewRateLimiter(0.0001, 1),
	})
	p.Start()
	if err := ns.kernel.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range p.slots {
		killAnchor(t, ns, s.tunnel.Hops[1].HopID, simnet.NoAddr)
	}
	if err := ns.kernel.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.Stats.SlotDeaths < 3 {
		t.Fatalf("expected all slots to die: %+v", p.Stats)
	}
	if p.Stats.Rebuilds > 1 {
		t.Fatalf("limiter admitted %d rebuilds, budget was 1", p.Stats.Rebuilds)
	}
	if p.Stats.RebuildsDenied == 0 {
		t.Fatal("no rebuilds denied despite empty bucket")
	}
	if p.Limiter().Admitted != p.Stats.Rebuilds {
		t.Fatalf("admissions %d != rebuilds %d", p.Limiter().Admitted, p.Stats.Rebuilds)
	}
	p.Stop()
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDeterministic(t *testing.T) {
	run := func() (PoolStats, int) {
		ns, _, p := newPoolSys(t, 300, 46, PoolConfig{Size: 2, Length: 3})
		p.Start()
		if err := ns.kernel.RunUntil(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		killAnchor(t, ns, p.slots[1].tunnel.Hops[2].HopID, simnet.NoAddr)
		if err := ns.kernel.RunUntil(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		p.Stop()
		if err := ns.kernel.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Stats, p.HealthyCount()
	}
	s1, h1 := run()
	s2, h2 := run()
	if s1 != s2 || h1 != h2 {
		t.Fatalf("pool lifecycle not deterministic:\n%+v (healthy %d)\n%+v (healthy %d)", s1, h1, s2, h2)
	}
}

// --- quarantine / limiter units ---------------------------------------------

func TestQuarantineBreakerLifecycle(t *testing.T) {
	var now simnet.Time
	q := NewQuarantine(QuarantineConfig{Threshold: 2, BaseOpen: 10 * time.Second, StrikeOut: 3}, func() simnet.Time { return now })
	h := id.HashString("hop")

	if q.Blocked(h) {
		t.Fatal("fresh hop blocked")
	}
	q.ReportFailure(h)
	if q.Blocked(h) {
		t.Fatal("blocked below threshold")
	}
	q.ReportFailure(h)
	if !q.Blocked(h) {
		t.Fatal("not blocked after threshold failures")
	}
	// Half-open after the open period.
	now = 11 * time.Second
	if q.Blocked(h) {
		t.Fatal("still blocked after open period (no half-open)")
	}
	// Failing the trial re-opens for twice as long.
	q.ReportFailure(h)
	if !q.Blocked(h) {
		t.Fatal("not re-opened after failed trial")
	}
	now = 21 * time.Second // 11s + 10s: within the doubled 20s window
	if !q.Blocked(h) {
		t.Fatal("re-open did not double the period")
	}
	now = 32 * time.Second
	if q.Blocked(h) {
		t.Fatal("not half-open after doubled period")
	}
	// Passing the trial closes the breaker entirely.
	q.ReportSuccess(h)
	if q.Blocked(h) || q.Closes != 1 {
		t.Fatalf("breaker not closed by successful trial (closes=%d)", q.Closes)
	}
}

func TestQuarantineStrikeOut(t *testing.T) {
	var now simnet.Time
	q := NewQuarantine(QuarantineConfig{Threshold: 1, BaseOpen: time.Second, StrikeOut: 3}, func() simnet.Time { return now })
	h := id.HashString("bad-hop")
	struck := false
	for i := 0; i < 3; i++ {
		struck = q.ReportFailure(h)
		now += 10 * time.Second // past each open window: next failure is a failed trial
	}
	if !struck || q.Strikes != 1 {
		t.Fatalf("no strike-out after 3 opens (strikes=%d)", q.Strikes)
	}
	if q.Blocked(h) {
		t.Fatal("struck-out hop still tracked")
	}
}

func TestQuarantineSuccessResetsStreak(t *testing.T) {
	var now simnet.Time
	q := NewQuarantine(QuarantineConfig{Threshold: 2, BaseOpen: time.Second}, func() simnet.Time { return now })
	h := id.HashString("flappy")
	q.ReportFailure(h)
	q.ReportSuccess(h)
	q.ReportFailure(h)
	if q.Blocked(h) {
		t.Fatal("success did not reset the failure streak")
	}
}

func TestFormTunnelAvoidsQuarantinedAnchors(t *testing.T) {
	s := newSys(t, 300, 3, 47)
	in := s.readyInitiator(t, "a", 12)
	var now simnet.Time
	q := NewQuarantine(QuarantineConfig{Threshold: 1, BaseOpen: time.Hour}, func() simnet.Time { return now })
	in.Quarantine = q
	bad := in.Pool()[0].HopID
	q.ReportFailure(bad)
	for i := 0; i < 20; i++ {
		tun, err := in.FormTunnel(3)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range tun.Hops {
			if h.HopID == bad {
				t.Fatal("formed tunnel over a quarantined anchor")
			}
		}
	}
}

func TestRateLimiterBucket(t *testing.T) {
	rl := NewRateLimiter(0.5, 2)
	if !rl.Allow(0) || !rl.Allow(0) {
		t.Fatal("burst tokens not granted")
	}
	if rl.Allow(0) {
		t.Fatal("empty bucket granted a token")
	}
	// 0.5/s for 4s refills 2 tokens (capped at burst).
	if !rl.Allow(4*time.Second) || !rl.Allow(4*time.Second) {
		t.Fatal("refill not granted")
	}
	if rl.Allow(4 * time.Second) {
		t.Fatal("over-refill granted")
	}
	if rl.Admitted != 4 || rl.Denied != 2 {
		t.Fatalf("admitted=%d denied=%d", rl.Admitted, rl.Denied)
	}
	if b := rl.Bound(10 * time.Second); b != 2+5 {
		t.Fatalf("Bound = %v, want 7", b)
	}
}
