package core

import (
	"fmt"
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
)

// Reliability configures NetEngine's end-to-end ACK/timeout/retransmit
// protocol. The paper's §6 resilience claim is about the tunnel *anchors*:
// when a hop node fails, the THA replica closest to the hopid takes over.
// This protocol supplies the matching traffic resilience: the terminal of
// a flow acknowledges delivery, the initiator retransmits on timeout with
// exponential backoff and jitter, and each retransmission re-resolves
// every hop through DHT routing — so a message lost to a mid-flight node
// crash is re-driven to whichever replica now holds the hop anchor.
//
// The ACK travels the overt path (a direct transmission to the flow
// origin's address, which the terminal of a measured flow knows in this
// harness). In a deployment the ACK would ride a §4 reply tunnel to keep
// the initiator anonymous; the timing difference is one tunnel traversal,
// and the retransmit logic is identical. Anonymity experiments therefore
// run with reliability off (the default).
type Reliability struct {
	// MaxAttempts bounds the total end-to-end send attempts per flow
	// (first transmission included). Default 8.
	MaxAttempts int
	// RTOScale multiplies the estimated one-way delivery time to produce
	// the initial retransmit timeout. Default 2.
	RTOScale float64
	// ExpectHops is the overlay hop budget assumed by the timeout
	// estimate — generous is safe (a late timeout only delays recovery;
	// duplicates are suppressed end to end). Default 16.
	ExpectHops int
	// Backoff multiplies the timeout after each attempt. Default 1.5.
	Backoff float64
	// JitterFrac randomizes each timeout by ±this fraction, desynchronizing
	// retransmissions that share a loss event. Default 0.1.
	JitterFrac float64
	// MinRTO floors the timeout. Default 50ms.
	MinRTO simnet.Time
	// HintInvalidateAfter is the number of RTO expirations after which a
	// flow bound to a tunnel (SendOpts.Cache/Hops) stops trusting the
	// cached hop addresses and invalidates them all — the exhaust-time
	// path, run early. Before this change only direct-send misses
	// invalidated hints, so a flow whose packets died beyond the first
	// hop kept dispatching into the same poisoned cache until its budget
	// ran out. Default 3.
	HintInvalidateAfter int
}

func (r Reliability) withDefaults() Reliability {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 8
	}
	if r.RTOScale == 0 {
		r.RTOScale = 2
	}
	if r.ExpectHops == 0 {
		r.ExpectHops = 16
	}
	if r.Backoff == 0 {
		r.Backoff = 1.5
	}
	if r.JitterFrac == 0 {
		r.JitterFrac = 0.1
	}
	if r.MinRTO == 0 {
		r.MinRTO = 50 * time.Millisecond
	}
	if r.HintInvalidateAfter == 0 {
		r.HintInvalidateAfter = 3
	}
	return r
}

// SendOpts tunes one reliable flow and binds it to the tunnel state it
// rode, so exhaustion can clean up after a dead tunnel.
type SendOpts struct {
	// MaxAttempts, when > 0, overrides Reliability.MaxAttempts for this
	// flow. Health probes use a small budget so a dead tunnel is detected
	// in one or two RTOs rather than after the full backoff schedule.
	MaxAttempts int
	// Cache and Hops bind the flow to the tunnel it was built over. When
	// the flow exhausts its attempt budget, the cached address of every
	// hop is marked stale and evicted: the initiator has concluded the
	// tunnel is dead, so its hints must not poison later flows.
	Cache *HintCache
	Hops  []id.ID
}

// flowState is the initiator-side record of one in-flight reliable flow.
type flowState struct {
	origin simnet.Addr
	// resend builds a fresh attempt: the packet plus the first-hop
	// address hint to try (the hint is re-checked against the stale set
	// on every dispatch).
	resend   func() (*packet, simnet.Addr)
	opts     SendOpts
	attempts int
	// gen invalidates superseded timers: only the timer armed for the
	// current attempt may act.
	gen     int
	rto     simnet.Time
	firstAt simnet.Time
	lastAt  simnet.Time
	lastErr string // why the most recent packet died, when observed
	// backoffKey binds the flow to its tunnel's shared backoff memory
	// (the first hop id); see NetEngine.tunnelRTO.
	backoffKey    id.ID
	hasBackoffKey bool
	// hintsInvalidated marks that the repeated-RTO hint eviction already
	// ran for this flow.
	hintsInvalidated bool
}

// maxAttempts resolves the per-flow attempt budget.
func (st *flowState) maxAttempts(rel *Reliability) int {
	if st.opts.MaxAttempts > 0 {
		return st.opts.MaxAttempts
	}
	return rel.MaxAttempts
}

// ackRecord is the terminal-side dedup state for a delivered reliable
// flow: enough to re-ACK duplicates without re-delivering.
type ackRecord struct {
	to       simnet.Addr
	dataHops int
}

// hintKey identifies one (hop target, hinted address) pair in the stale
// set.
type hintKey struct {
	target id.ID
	addr   simnet.Addr
}

// EnableReliability turns on the ACK/retransmit protocol for all flows
// started afterwards. Flows already in flight keep fire-and-forget
// semantics.
func (e *NetEngine) EnableReliability(cfg Reliability) {
	r := cfg.withDefaults()
	e.rel = &r
}

// --- per-tunnel backoff memory ----------------------------------------------
//
// The tunnelRTO map is shared by reliable flows and streams and may be
// consulted from application goroutines when the engine runs over a real
// transport, so every access goes through these rtoMu-guarded helpers.

// loadTunnelRTO returns the remembered backed-off timeout for a tunnel
// (zero when none is stored).
func (e *NetEngine) loadTunnelRTO(key id.ID) simnet.Time {
	e.rtoMu.Lock()
	v := e.tunnelRTO[key]
	e.rtoMu.Unlock()
	return v
}

// storeTunnelRTO records a backed-off timeout observed on a tunnel.
func (e *NetEngine) storeTunnelRTO(key id.ID, rto simnet.Time) {
	e.rtoMu.Lock()
	e.tunnelRTO[key] = rto
	e.rtoMu.Unlock()
}

// dropTunnelRTO forgets a tunnel's backoff memory (the tunnel proved
// healthy).
func (e *NetEngine) dropTunnelRTO(key id.ID) {
	e.rtoMu.Lock()
	delete(e.tunnelRTO, key)
	e.rtoMu.Unlock()
}

// relaxTunnelRTO eases a tunnel's backoff memory after a delivery: a
// first-attempt success clears it outright, a delivery that needed
// retransmits halves it, dropping the entry once it decays to the floor.
func (e *NetEngine) relaxTunnelRTO(key id.ID, firstAttempt bool, minRTO simnet.Time) {
	e.rtoMu.Lock()
	defer e.rtoMu.Unlock()
	if firstAttempt {
		delete(e.tunnelRTO, key)
		return
	}
	stored, ok := e.tunnelRTO[key]
	if !ok {
		return
	}
	if stored /= 2; stored <= minRTO {
		delete(e.tunnelRTO, key)
	} else {
		e.tunnelRTO[key] = stored
	}
}

// markStaleHint records a dead-end hint; hintStale queries it. Entries
// never expire: a hop anchor that migrates back to a previously-stale
// address is still reached via DHT routing, just without the shortcut.
func (e *NetEngine) markStaleHint(target id.ID, addr simnet.Addr) {
	k := hintKey{target, addr}
	if _, ok := e.staleHints[k]; ok {
		return
	}
	e.staleHints[k] = struct{}{}
	e.StaleHints++
}

func (e *NetEngine) hintStale(target id.ID, addr simnet.Addr) bool {
	_, ok := e.staleHints[hintKey{target, addr}]
	return ok
}

// invalidateTunnelHints evicts every hop's cached address and records the
// dead ends, so stale hints cannot keep poisoning later dispatches. This
// is the exhaust-time cleanup, shared by flow exhaustion, repeated RTO
// expiry, and stream failure.
func (e *NetEngine) invalidateTunnelHints(cache *HintCache, hops []id.ID) {
	if cache == nil {
		return
	}
	for _, hop := range hops {
		if a := cache.Get(hop); a != simnet.NoAddr {
			e.markStaleHint(hop, a)
			cache.Invalidate(hop)
		}
	}
}

// startReliable registers flow state and fires the first attempt. A flow
// bound to a tunnel (opts.Hops) inherits that tunnel's remembered backoff:
// retransmit state is per tunnel, not per message, so a lossy tunnel does
// not reset to the optimistic initial timeout on every new send.
func (e *NetEngine) startReliable(flow uint64, origin simnet.Addr, size int, opts SendOpts, resend func() (*packet, simnet.Addr)) {
	st := &flowState{
		origin:  origin,
		resend:  resend,
		opts:    opts,
		rto:     e.initialRTO(size),
		firstAt: e.net.Now(),
	}
	if len(opts.Hops) > 0 {
		st.backoffKey = opts.Hops[0]
		st.hasBackoffKey = true
		if stored := e.loadTunnelRTO(st.backoffKey); stored > st.rto {
			st.rto = stored
		}
	}
	e.flows[flow] = st
	e.attempt(flow, st)
}

// initialRTO estimates a generous one-way delivery time for a message of
// the given size: ExpectHops store-and-forward hops, each paying full
// serialization plus the worst-case link latency, scaled by RTOScale.
func (e *NetEngine) initialRTO(size int) simnet.Time {
	perHop := e.net.Serialization(size) + e.net.MaxLatency()
	rto := simnet.Time(float64(int64(perHop)*int64(e.rel.ExpectHops)) * e.rel.RTOScale)
	if rto < e.rel.MinRTO {
		rto = e.rel.MinRTO
	}
	return rto
}

// attempt transmits one copy of the flow and arms its retransmit timer.
func (e *NetEngine) attempt(flow uint64, st *flowState) {
	st.attempts++
	st.lastAt = e.net.Now()
	if st.attempts > 1 {
		e.Retransmits++
	}
	p, hint := st.resend()
	e.armTimer(flow, st)
	e.dispatch(st.origin, p, hint)
}

// armTimer schedules the timeout for the current attempt. A stale timer
// (the flow finished, or a newer attempt took over) is a no-op.
func (e *NetEngine) armTimer(flow uint64, st *flowState) {
	st.gen++
	gen := st.gen
	wait := st.rto
	if j := e.rel.JitterFrac; j > 0 {
		wait = simnet.Time(float64(wait) * (1 + j*(2*e.jitter.Float64()-1)))
	}
	e.net.Schedule(wait, func() {
		cur, ok := e.flows[flow]
		if !ok || cur.gen != gen {
			return
		}
		if cur.attempts >= cur.maxAttempts(e.rel) {
			e.exhaust(flow, cur)
			return
		}
		cur.rto = simnet.Time(float64(cur.rto) * e.rel.Backoff)
		if cur.hasBackoffKey {
			// Per-tunnel backoff memory: later flows over this tunnel
			// start from the backed-off timeout instead of resetting it.
			e.storeTunnelRTO(cur.backoffKey, cur.rto)
		}
		if !cur.hintsInvalidated && cur.attempts >= e.rel.HintInvalidateAfter {
			// Repeated RTO expiry: every retransmission is dying
			// somewhere past dispatch, so the cached hop addresses are no
			// longer trustworthy. Run the exhaust-time eviction now so
			// the remaining attempts re-resolve via the DHT.
			cur.hintsInvalidated = true
			e.invalidateTunnelHints(cur.opts.Cache, cur.opts.Hops)
		}
		e.attempt(flow, cur)
	})
}

// exhaust gives up on a reliable flow after its attempt budget: the
// initiator concludes the tunnel is dead (every retransmission would need
// a hop anchor with no live replica, or the path loses every copy).
func (e *NetEngine) exhaust(flow uint64, st *flowState) {
	delete(e.flows, flow)
	delete(e.pending, flow)
	e.FailFlows++
	// The tunnel this flow rode is presumed dead: evict every hop's cached
	// address and remember the dead ends, so the stale hints cannot keep
	// poisoning later flows (they would each burn a hint miss per send
	// until somebody refreshed the cache).
	e.invalidateTunnelHints(st.opts.Cache, st.opts.Hops)
	why := st.lastErr
	if why == "" {
		why = "no ACK"
	}
	cb := e.done[flow]
	delete(e.done, flow)
	if cb == nil {
		return
	}
	cb(Outcome{
		Flow:     flow,
		At:       e.net.Now(),
		Attempts: st.attempts,
		Backoff:  st.lastAt - st.firstAt,
		FailedAt: fmt.Sprintf("retransmit budget exhausted after %d attempts (%s)", st.attempts, why),
	})
}

// ackDelivery runs at the terminal node when a reliable flow's data
// arrives while the flow is still pending: record the delivery (so
// duplicates are suppressed) and ACK the origin.
func (e *NetEngine) ackDelivery(self simnet.Addr, p *packet) {
	if rec, ok := e.acked[p.flow]; ok && !e.DisableAckDedup {
		e.DupDeliveries++
		e.observeDeliver(p.flow, true)
		e.sendAck(self, p.flow, rec)
		return
	}
	rec := ackRecord{to: p.ackTo, dataHops: p.hops}
	e.acked[p.flow] = rec
	e.observeDeliver(p.flow, false)
	e.sendAck(self, p.flow, rec)
}

// observeDeliver fires the terminal-delivery observer, when installed.
func (e *NetEngine) observeDeliver(flow uint64, dup bool) {
	if e.OnDeliver != nil {
		e.OnDeliver(flow, dup)
	}
}

// sendAck transmits the end-to-end ACK over the overt path.
func (e *NetEngine) sendAck(self simnet.Addr, flow uint64, rec ackRecord) {
	e.AcksSent++
	ack := &packet{kind: kindAck, flow: flow, dataHops: rec.dataHops}
	e.send(self, rec.to, ack)
}

// handleAck completes a reliable flow at its initiator. Duplicate ACKs —
// retransmitted data racing an earlier ACK — are ignored.
func (e *NetEngine) handleAck(p *packet) {
	st, ok := e.flows[p.flow]
	if !ok {
		return
	}
	e.AcksRecv++
	delete(e.flows, p.flow)
	delete(e.pending, p.flow)
	if st.hasBackoffKey {
		// Delivered on the first attempt: the tunnel proved healthy, drop
		// its backoff memory. Delivered after retransmits: decay rather
		// than reset, so a marginal tunnel keeps some caution.
		e.relaxTunnelRTO(st.backoffKey, st.attempts == 1, e.rel.MinRTO)
	}
	cb := e.done[p.flow]
	delete(e.done, p.flow)
	if cb == nil {
		return
	}
	cb(Outcome{
		Flow:      p.flow,
		Delivered: true,
		At:        e.net.Now(),
		NetHops:   p.dataHops,
		Attempts:  st.attempts,
		Backoff:   st.lastAt - st.firstAt,
	})
}
