package core

import (
	"strings"
	"testing"

	"tap/internal/obs"
)

// TestEngineMetricsPublish proves the publish seam: engine-kept totals
// land in the registry on each publish, republishing is idempotent, and
// the nil publisher (how every simulator run is wired) is a no-op.
func TestEngineMetricsPublish(t *testing.T) {
	reg := obs.NewRegistry()
	em := NewEngineMetrics(reg)

	ps := PoolStats{ProbesSent: 7, SlotDeaths: 2, Rebuilds: 3, Sends: 41}
	em.PublishPool(ps)
	ne := &NetEngine{NetHops: 55, Retransmits: 4, StreamSegsSent: 12, StreamBytesRecv: 4096}
	em.PublishNet(ne)

	scrape := func() *obs.Snapshot {
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		snap, err := obs.ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("exposition does not parse: %v", err)
		}
		return snap
	}

	snap := scrape()
	for name, want := range map[string]float64{
		"tap_pool_probes_sent_total":      7,
		"tap_pool_slot_deaths_total":      2,
		"tap_pool_rebuilds_total":         3,
		"tap_pool_sends_total":            41,
		"tap_engine_net_hops_total":       55,
		"tap_engine_retransmits_total":    4,
		"tap_stream_segments_sent_total":  12,
		"tap_stream_bytes_received_total": 4096,
		"tap_pool_failovers_total":        0, // registered even when untouched
	} {
		if got, ok := snap.Value(name); !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}

	// Publishing a grown snapshot overwrites, never accumulates.
	ps.ProbesSent = 9
	em.PublishPool(ps)
	ne.NetHops = 60
	em.PublishNet(ne)
	snap = scrape()
	if got, _ := snap.Value("tap_pool_probes_sent_total"); got != 9 {
		t.Errorf("republished probes = %v, want 9", got)
	}
	if got, _ := snap.Value("tap_engine_net_hops_total"); got != 60 {
		t.Errorf("republished hops = %v, want 60", got)
	}
}

func TestEngineMetricsNilIsNoop(t *testing.T) {
	em := NewEngineMetrics(nil)
	if em != nil {
		t.Fatal("nil registry must yield the nil publisher")
	}
	em.PublishPool(PoolStats{ProbesSent: 1})
	em.PublishNet(&NetEngine{NetHops: 1})
	em.PublishNet(nil)
}
