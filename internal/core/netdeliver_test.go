package core

import (
	"testing"
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
)

// netSys extends sys with a simulated network and engine.
type netSys struct {
	*sys
	kernel *simnet.Kernel
	net    *simnet.Network
	eng    *NetEngine
}

func newNetSys(t testing.TB, n, k int, seed uint64) *netSys {
	t.Helper()
	s := newSys(t, n, k, seed)
	kernel := simnet.NewKernel()
	kernel.MaxSteps = 10_000_000
	net := simnet.NewNetwork(kernel, simnet.DefaultLinkModel(seed), s.ov.NumAddrs())
	s.svc.Net = net
	eng := NewNetEngine(s.svc, net)
	return &netSys{sys: s, kernel: kernel, net: net, eng: eng}
}

const fileSize = 250_000 // 2 Mb, the paper's transfer size

func TestNetOvertTransfer(t *testing.T) {
	ns := newNetSys(t, 200, 3, 1)
	from := ns.ov.RandomLive(ns.root.Split("src"))
	dest := id.HashString("file")
	var out Outcome
	gotOut := false
	ns.eng.SendOvert(from.Ref().Addr, dest, fileSize, func(o Outcome) { out = o; gotOut = true })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOut || !out.Delivered {
		t.Fatalf("overt transfer not delivered: %+v", out)
	}
	// Store-and-forward of 250 KB at 1.5 Mb/s is ≥ 1.33 s per hop.
	perHop := ns.net.Link.Serialization(fileSize)
	if out.At < perHop {
		t.Fatalf("transfer finished in %v, faster than one hop serialization %v", out.At, perHop)
	}
	if out.NetHops < 1 || out.NetHops > 10 {
		t.Fatalf("overt hops = %d", out.NetHops)
	}
}

func TestNetOvertToSelfInstant(t *testing.T) {
	ns := newNetSys(t, 100, 3, 2)
	from := ns.ov.RandomLive(ns.root.Split("src"))
	var out Outcome
	ns.eng.SendOvert(from.Ref().Addr, from.ID(), fileSize, func(o Outcome) { out = o })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.NetHops != 0 || out.At != 0 {
		t.Fatalf("self transfer should be local and instant: %+v", out)
	}
}

func TestNetTunnelBasicVsOptVsOvert(t *testing.T) {
	// The Figure 6 ordering on a single transfer: basic > opt > overt
	// is not guaranteed per-sample (latencies are random), but hops are:
	// basic strictly traverses more network hops than opt.
	ns := newNetSys(t, 400, 3, 3)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(5)
	if err != nil {
		t.Fatal(err)
	}
	dest := id.HashString("file")
	payload := make([]byte, fileSize)

	// Flows run sequentially on one kernel, so measure each as a duration
	// from its own start instant.
	runFlow := func(send func(done func(Outcome))) (Outcome, time.Duration) {
		start := ns.kernel.Now()
		var out Outcome
		send(func(o Outcome) { out = o })
		if err := ns.kernel.Run(); err != nil {
			t.Fatal(err)
		}
		return out, out.At - start
	}

	basicEnv, err := BuildForward(tun, nil, dest, payload, ns.root.Split("b1"))
	if err != nil {
		t.Fatal(err)
	}
	basic, basicDur := runFlow(func(done func(Outcome)) {
		ns.eng.SendForward(in.Node().Ref().Addr, basicEnv, done)
	})
	if !basic.Delivered {
		t.Fatalf("basic transfer failed: %+v", basic)
	}

	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	optEnv, err := BuildForward(tun, hintsFor(cache, tun), dest, payload, ns.root.Split("b2"))
	if err != nil {
		t.Fatal(err)
	}
	opt, optDur := runFlow(func(done func(Outcome)) {
		ns.eng.SendForward(in.Node().Ref().Addr, optEnv, done)
	})
	if !opt.Delivered {
		t.Fatalf("opt transfer failed: %+v", opt)
	}

	overt, overtDur := runFlow(func(done func(Outcome)) {
		ns.eng.SendOvert(in.Node().Ref().Addr, dest, fileSize, done)
	})
	if !overt.Delivered {
		t.Fatalf("overt failed")
	}

	if opt.NetHops >= basic.NetHops {
		t.Fatalf("opt hops %d not below basic hops %d", opt.NetHops, basic.NetHops)
	}
	if overt.NetHops > opt.NetHops {
		t.Fatalf("overt hops %d above opt hops %d", overt.NetHops, opt.NetHops)
	}
	// With 5 tunnel hops the basic mode must take noticeably longer than
	// overt in time as well — the Figure 6 headline.
	if basicDur <= overtDur {
		t.Fatalf("basic (%v) not slower than overt (%v)", basicDur, overtDur)
	}
	if optDur >= basicDur {
		t.Fatalf("opt (%v) not faster than basic (%v)", optDur, basicDur)
	}
}

func TestNetTunnelSurvivesHopFailureMidFlight(t *testing.T) {
	ns := newNetSys(t, 300, 3, 4)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	env, err := BuildForward(tun, nil, id.HashString("d"), make([]byte, 1000), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the tail hop's node shortly after the flow starts; replicas
	// migrate and routing self-heals, so the flow must still complete.
	tail, ok := ns.dir.HopNode(tun.Hops[3].HopID)
	if !ok {
		t.Fatal("no tail hop node")
	}
	ns.kernel.Schedule(50*time.Millisecond, func() {
		if err := ns.ov.Fail(tail.Ref().Addr); err == nil {
			ns.net.Detach(tail.Ref().Addr)
		}
	})
	var out Outcome
	gotOut := false
	ns.eng.SendForward(in.Node().Ref().Addr, env, func(o Outcome) { out = o; gotOut = true })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOut {
		t.Fatalf("flow vanished (likely dropped at the dead node)")
	}
	if !out.Delivered {
		t.Fatalf("flow failed: %+v", out)
	}
}

func TestNetStaleHintFallsBackInFlight(t *testing.T) {
	ns := newNetSys(t, 300, 3, 5)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	// Make the second hop's hint stale in the §5 sense — the hinted node
	// is alive and reachable but "not the tunnel hop node any more":
	// join k nodes with ids right at the hopid so the cached node is
	// evicted from the replica set entirely.
	hop := tun.Hops[1].HopID
	staleAddr := cache.Get(hop)
	for i := 0; i < ns.mgr.K(); i++ {
		nid := hop
		nid[id.Size-1] ^= byte(i + 1) // k distinct ids adjacent to the hopid
		if ns.ov.ByID(nid) == nil {
			ns.ov.JoinWithID(nid)
		}
	}
	if ns.dir.Manager().HolderHas(staleAddr, hop) {
		t.Fatalf("test setup: cached node still holds the anchor")
	}
	env, err := BuildForward(tun, hintsFor(cache, tun), id.HashString("d"), make([]byte, 1000), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	var out Outcome
	ns.eng.SendForward(in.Node().Ref().Addr, env, func(o Outcome) { out = o })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !out.Delivered {
		t.Fatalf("stale hint broke the flow: %+v", out)
	}
	if ns.eng.HintMiss == 0 {
		t.Fatalf("no hint miss recorded despite stale hint")
	}
}

func TestNetReplyRoundTrip(t *testing.T) {
	ns := newNetSys(t, 300, 3, 6)
	in := ns.readyInitiator(t, "a", 20)
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	bid := in.NewBid()
	rt, err := BuildReply(rep, nil, bid, ns.root.Split("r"))
	if err != nil {
		t.Fatal(err)
	}
	responder := ns.ov.RandomLive(ns.root.Split("resp"))
	var out Outcome
	ns.eng.SendReply(responder.Ref().Addr, &ReplyEnvelope{
		Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: make([]byte, 5000),
	}, func(o Outcome) { out = o })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !out.Delivered {
		t.Fatalf("reply failed: %+v", out)
	}
}

func TestNetFlowFailsWhenAnchorLost(t *testing.T) {
	ns := newNetSys(t, 300, 3, 7)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	ns.mgr.BeginBatch()
	for _, addr := range ns.dir.ReplicaAddrs(tun.Hops[1].HopID) {
		if err := ns.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
		ns.net.Detach(addr)
	}
	ns.mgr.EndBatch()
	env, err := BuildForward(tun, nil, id.HashString("d"), make([]byte, 100), ns.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	var out Outcome
	gotOut := false
	ns.eng.SendForward(in.Node().Ref().Addr, env, func(o Outcome) { out = o; gotOut = true })
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOut {
		t.Fatalf("no outcome for doomed flow")
	}
	if out.Delivered {
		t.Fatalf("flow delivered despite lost anchor")
	}
	if ns.eng.FailFlows != 1 {
		t.Fatalf("FailFlows = %d", ns.eng.FailFlows)
	}
}

func TestNetDeterministicTiming(t *testing.T) {
	run := func() simnet.Time {
		ns := newNetSys(t, 200, 3, 8)
		in := ns.readyInitiator(t, "a", 10)
		tun, err := in.FormTunnel(3)
		if err != nil {
			t.Fatal(err)
		}
		env, err := BuildForward(tun, nil, id.HashString("d"), make([]byte, 10000), ns.root.Split("b"))
		if err != nil {
			t.Fatal(err)
		}
		var out Outcome
		ns.eng.SendForward(in.Node().Ref().Addr, env, func(o Outcome) { out = o })
		if err := ns.kernel.Run(); err != nil {
			t.Fatal(err)
		}
		return out.At
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("timing not deterministic: %v vs %v", a, b)
	}
}
