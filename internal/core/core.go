// Package core implements TAP itself: anonymous tunnels decoupled from
// fixed nodes (Zhu & Hu, ICPP 2004).
//
// A tunnel is a sequence of tunnel hops, each named by a hopid rather than
// an address. The owner of a tunnel holds the hop anchors' secrets
// (internal/tha); whichever node is currently numerically closest to a
// hopid acts as that hop, so the tunnel survives node failures as long as
// each anchor retains one live replica.
//
// Messages traverse a tunnel with mix-style layered encryption (Figure 1):
// the initiator seals the payload innermost-first with the hop keys
// K_l..K_1; each hop strips one layer with its anchor key, learns only the
// next hopid, and forwards. Replies come back over a *different* tunnel
// (§4) whose onion terminates in a bid — an identifier the initiator's own
// node is numerically closest to — capped with a fake onion so the last
// reply hop cannot tell it is last.
//
// Two delivery engines share these formats:
//
//   - the logical walker (walk.go) executes a tunnel traversal
//     synchronously with full cryptography, for availability and
//     anonymity experiments;
//   - the networked engine (netdeliver.go) drives the same traversal
//     through the discrete-event simulator hop by overlay hop, producing
//     the transfer latencies of Figure 6, including the §5 optimization
//     that embeds each hop node's address as a shortcut hint.
//
// The package also implements the "current tunneling" baseline
// (baseline.go): fixed-node onion paths that die with any member node,
// the comparison system in Figure 2.
package core

import (
	"errors"
	"fmt"
	"sync"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
	"tap/internal/transport"
)

// Tunnel is the owner's view of an anonymous tunnel: the ordered hop
// anchor secrets. Only the owner ever holds this; the network sees hopids
// and ciphertext.
type Tunnel struct {
	Hops []tha.Secret

	// sealers caches one layer-crypto key schedule per hop, index-aligned
	// with Hops. Form fills it; tunnels assembled by hand get theirs
	// lazily on first build. Like the rest of a Tunnel it belongs to one
	// goroutine — the owner.
	sealers []*crypt.Sealer
}

// hopSealer returns the cached Sealer for hop i, deriving it on first use.
func (t *Tunnel) hopSealer(i int) *crypt.Sealer {
	if len(t.sealers) != len(t.Hops) {
		t.sealers = make([]*crypt.Sealer, len(t.Hops))
	}
	if t.sealers[i] == nil {
		t.sealers[i] = crypt.NewSealer(t.Hops[i].Key)
	}
	return t.sealers[i]
}

// Length returns the number of hops (the paper's tunnel length l).
func (t *Tunnel) Length() int { return len(t.Hops) }

// HopIDs returns the hop identifiers in order.
func (t *Tunnel) HopIDs() []id.ID {
	out := make([]id.ID, len(t.Hops))
	for i, h := range t.Hops {
		out[i] = h.HopID
	}
	return out
}

// Form assembles a tunnel of length l from the owner's deployed anchor
// pool, applying the §3.5 scatter rule (distinct hopid prefixes where the
// pool allows).
func Form(pool []tha.Secret, l int, b int, stream *rng.Stream) (*Tunnel, error) {
	hops, err := tha.ChooseScattered(pool, l, b, stream)
	if err != nil {
		return nil, fmt.Errorf("core: forming tunnel: %w", err)
	}
	// Hop key schedules are derived lazily by hopSealer on the first
	// build: many formed tunnels (availability experiments) never carry a
	// message, and must not pay AES/HMAC setup.
	return &Tunnel{Hops: hops}, nil
}

// Errors shared across delivery engines.
var (
	// ErrHopLost means a hop anchor has no live replica left: the tunnel
	// cannot function and must be re-formed.
	ErrHopLost = errors.New("core: tunnel hop anchor lost (all replicas failed)")
	// ErrRelayDead is the baseline's failure: a fixed relay node is gone.
	ErrRelayDead = errors.New("core: fixed tunnel relay is dead")
	// ErrNotHolder means the node asked to act as a hop does not hold the
	// anchor — stale routing or an attack.
	ErrNotHolder = errors.New("core: node does not hold the hop anchor")
)

// Service bundles the substrate a TAP deployment runs on. Net is optional:
// logical walks do not need it. It is typed as the transport seam, so a
// service can ride the simulator or a real transport interchangeably.
type Service struct {
	OV  *pastry.Overlay
	Dir *tha.Directory
	Net transport.Transport

	// Stream supplies nonces and fake-onion padding.
	Stream *rng.Stream

	// HopFilter, when non-nil, lets fault-injection and adversary models
	// decide whether the node at addr faithfully serves tunnel traffic
	// for hopID. Returning false models a malicious or broken hop that
	// silently drops the message (it cannot forge: layers are
	// authenticated). Both delivery engines honor it.
	HopFilter func(addr simnet.Addr, hopID id.ID) bool
}

// hopServes applies the filter (nil means all hops behave).
func (svc *Service) hopServes(addr simnet.Addr, hopID id.ID) bool {
	return svc.HopFilter == nil || svc.HopFilter(addr, hopID)
}

// ErrDropped reports a message silently discarded by a misbehaving hop
// node. Detectors (internal/detect) turn this signal — visible to the
// initiator only as a missing reply — into tunnel health estimates.
var ErrDropped = errors.New("core: message dropped by misbehaving hop node")

// NewService wires a service.
func NewService(ov *pastry.Overlay, dir *tha.Directory, stream *rng.Stream) *Service {
	return &Service{OV: ov, Dir: dir, Stream: stream}
}

// HintCache is the initiator-side cache mapping hopids to the addresses of
// their current hop nodes (§5: "The initiator can maintain a cache of the
// mappings between a tunnel hop hopid and the IP address of its tunnel hop
// node, and it can periodically refresh the cache").
//
// The cache is owned by the initiating application, not the engine: over a
// real transport a background refresher and the engine's event loop touch
// it from different goroutines, so access is guarded by an internal
// RWMutex. (On the simulator everything runs on one loop and the lock is
// uncontended.)
type HintCache struct {
	mu sync.RWMutex
	m  map[id.ID]simnet.Addr
}

// NewHintCache returns an empty cache.
func NewHintCache() *HintCache {
	return &HintCache{m: make(map[id.ID]simnet.Addr)}
}

// Refresh resolves the current hop node of every hop in the tunnel and
// records its address. In deployment this is a periodic background lookup;
// experiments call it explicitly to model fresh or stale caches.
func (c *HintCache) Refresh(svc *Service, t *Tunnel) error {
	for _, h := range t.Hops {
		node, ok := svc.Dir.HopNode(h.HopID)
		if !ok {
			return fmt.Errorf("%w: %s", ErrHopLost, h.HopID.Short())
		}
		addr := node.Ref().Addr
		c.mu.Lock()
		c.m[h.HopID] = addr
		c.mu.Unlock()
	}
	return nil
}

// Invalidate drops the cached address for hopID. Initiators call it when
// a direct send misses (the hinted node is unreachable or no longer holds
// the hop anchor), so subsequent messages fall back to DHT routing until
// the next Refresh re-resolves the hop node.
func (c *HintCache) Invalidate(hopID id.ID) {
	if c != nil && c.m != nil {
		c.mu.Lock()
		delete(c.m, hopID)
		c.mu.Unlock()
	}
}

// Get returns the cached address for hopID, or NoAddr.
func (c *HintCache) Get(hopID id.ID) simnet.Addr {
	if c == nil || c.m == nil {
		return simnet.NoAddr
	}
	c.mu.RLock()
	a, ok := c.m[hopID]
	c.mu.RUnlock()
	if ok {
		return a
	}
	return simnet.NoAddr
}

// hintsFor collects the per-hop hints for a tunnel; a nil cache yields all
// NoAddr (the basic, unoptimized mode).
func hintsFor(c *HintCache, t *Tunnel) []simnet.Addr {
	out := make([]simnet.Addr, len(t.Hops))
	for i, h := range t.Hops {
		out[i] = c.Get(h.HopID)
	}
	return out
}

// BuildForwardWithCache builds the §5 optimized forward message, taking
// every hop's address hint from the cache.
func BuildForwardWithCache(t *Tunnel, cache *HintCache, dest id.ID, payload []byte, stream *rng.Stream) (*Envelope, error) {
	return BuildForward(t, hintsFor(cache, t), dest, payload, stream)
}

// BuildReplyWithCache builds the optimized reply tunnel with cached hints.
func BuildReplyWithCache(t *Tunnel, cache *HintCache, bid id.ID, stream *rng.Stream) (*ReplyTunnel, error) {
	return BuildReply(t, hintsFor(cache, t), bid, stream)
}
