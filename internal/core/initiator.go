package core

import (
	"errors"
	"fmt"

	"tap/internal/id"
	"tap/internal/onionroute"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
)

// Initiator is a node's client-side TAP state: its anchor generator, the
// pool of anchors it has deployed, and the bookkeeping for reply bids.
type Initiator struct {
	svc    *Service
	node   *pastry.Node
	gen    *tha.Generator
	pool   []tha.Secret
	stream *rng.Stream
	// active tracks formed tunnels so DeleteAnchors never destroys an
	// anchor another live tunnel still rides on (tunnels formed from one
	// pool may share anchors).
	active []*Tunnel

	// Quarantine, when non-nil, is consulted by FormTunnel and
	// FormDisjointTunnels: anchors whose circuit breaker is open are
	// excluded from formation, unless exclusion would leave too few
	// anchors to form at all (blocked anchors are then readmitted as a
	// last resort — a short tunnel over a suspect hop beats no tunnel).
	// TunnelPool installs one; standalone initiators leave it nil.
	Quarantine *Quarantine
}

// NewInitiator creates the TAP client for a node. stream feeds anchor and
// nonce generation and must be private to this initiator.
func NewInitiator(svc *Service, node *pastry.Node, stream *rng.Stream) (*Initiator, error) {
	nid := node.ID()
	gen, err := tha.NewGenerator(nid[:], stream)
	if err != nil {
		return nil, err
	}
	return &Initiator{svc: svc, node: node, gen: gen, stream: stream}, nil
}

// Node returns the initiator's own overlay node.
func (in *Initiator) Node() *pastry.Node { return in.node }

// Service returns the TAP service this initiator runs on.
func (in *Initiator) Service() *Service { return in.svc }

// Pool returns the live anchor pool (anchors whose replicas all failed are
// pruned on access — the owner notices a dead anchor when forming or using
// a tunnel).
func (in *Initiator) Pool() []tha.Secret {
	live := in.pool[:0]
	for _, s := range in.pool {
		if in.svc.Dir.Available(s.HopID) {
			live = append(live, s)
		}
	}
	in.pool = live
	return in.pool
}

// PoolSize returns the number of live anchors available.
func (in *Initiator) PoolSize() int { return len(in.Pool()) }

// generate mints n fresh secrets, paying CPU puzzles if the directory
// demands them, and returns matching deployment instructions.
func (in *Initiator) generate(n int) ([]tha.Secret, []onionroute.Instruction, error) {
	secrets := make([]tha.Secret, n)
	instrs := make([]onionroute.Instruction, n)
	for i := 0; i < n; i++ {
		sec, err := in.gen.Generate(in.stream)
		if err != nil {
			return nil, nil, err
		}
		secrets[i] = sec
		instrs[i] = onionroute.Instruction{Anchor: sec.Anchor}
		if in.svc.Dir.PuzzleDifficulty > 0 {
			instrs[i].Nonce = in.svc.Dir.Puzzle(sec.HopID).Mint()
		}
	}
	return secrets, instrs, nil
}

// Bootstrap deploys the initiator's first n anchors through a classic
// Onion Routing path (§3.3), retrying over fresh paths when relays die
// mid-deployment. Until this succeeds the initiator cannot form any TAP
// tunnel.
func (in *Initiator) Bootstrap(n int, pki *onionroute.PKI, maxRetries int) error {
	secrets, instrs, err := in.generate(n)
	if err != nil {
		return err
	}
	if _, err := onionroute.Deploy(in.svc.OV, in.svc.Dir, pki, instrs, in.stream, maxRetries); err != nil {
		return fmt.Errorf("core: bootstrap: %w", err)
	}
	in.pool = append(in.pool, secrets...)
	return nil
}

// DeployViaTunnel deploys n more anchors through an existing tunnel: each
// deployment instruction travels the tunnel as an ordinary forward message
// whose exit destination is the new anchor's own hopid, so the node that
// will own the anchor receives and stores it without learning the
// depositor. Requires a working tunnel.
func (in *Initiator) DeployViaTunnel(t *Tunnel, n int) error {
	secrets, instrs, err := in.generate(n)
	if err != nil {
		return err
	}
	for i := range secrets {
		payload := encodeDeployPayload(instrs[i])
		env, err := BuildForward(t, nil, secrets[i].HopID, payload, in.stream)
		if err != nil {
			return err
		}
		res, err := in.svc.DeliverForward(in.node.Ref().Addr, env)
		if err != nil {
			return fmt.Errorf("core: deploy via tunnel: %w", err)
		}
		// The destination node executes the deployment.
		ins, err := decodeDeployPayload(res.Payload)
		if err != nil {
			return err
		}
		if err := in.svc.Dir.Deploy(ins.Anchor, ins.Nonce); err != nil {
			return fmt.Errorf("core: deploy via tunnel: %w", err)
		}
		in.pool = append(in.pool, secrets[i])
	}
	return nil
}

// DeployDirect stores n anchors without the bootstrap ceremony.
// Experiments use it: Figures 2–5 measure tunnel availability and
// anonymity, which are independent of how anchors got deployed, and
// skipping the onion cryptography keeps 10^4-node trials fast.
func (in *Initiator) DeployDirect(n int) error {
	secrets, instrs, err := in.generate(n)
	if err != nil {
		return err
	}
	for i := range secrets {
		if err := in.svc.Dir.Deploy(secrets[i].Anchor, instrs[i].Nonce); err != nil {
			return err
		}
		in.pool = append(in.pool, secrets[i])
	}
	return nil
}

// formPool returns the anchors eligible for tunnel formation: the live
// pool minus quarantined anchors — unless filtering leaves fewer than
// need, in which case the full pool is used as a last resort.
func (in *Initiator) formPool(need int) []tha.Secret {
	pool := in.Pool()
	if in.Quarantine == nil {
		return pool
	}
	filtered := make([]tha.Secret, 0, len(pool))
	for _, s := range pool {
		if !in.Quarantine.Blocked(s.HopID) {
			filtered = append(filtered, s)
		}
	}
	if len(filtered) >= need {
		return filtered
	}
	return pool
}

// FormTunnel assembles a tunnel of length l from the live pool,
// excluding quarantined anchors when a Quarantine is installed.
func (in *Initiator) FormTunnel(l int) (*Tunnel, error) {
	t, err := Form(in.formPool(l), l, in.svc.OV.Config().B, in.stream)
	if err != nil {
		return nil, err
	}
	in.active = append(in.active, t)
	return t, nil
}

// FormDisjointTunnels assembles count tunnels of length l whose anchor
// sets are pairwise disjoint. The §4 exchange needs this: the reply
// tunnel must be "a different tunnel" from the forward tunnel, so that an
// adversary cannot correlate a request with its reply through a shared
// hop. The pool must hold at least count·l live anchors.
func (in *Initiator) FormDisjointTunnels(count, l int) ([]*Tunnel, error) {
	pool := in.formPool(count * l)
	if len(pool) < count*l {
		return nil, fmt.Errorf("core: pool of %d anchors cannot form %d disjoint %d-hop tunnels", len(pool), count, l)
	}
	remaining := append([]tha.Secret(nil), pool...)
	out := make([]*Tunnel, 0, count)
	for i := 0; i < count; i++ {
		t, err := Form(remaining, l, in.svc.OV.Config().B, in.stream)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		in.active = append(in.active, t)
		used := make(map[id.ID]struct{}, l)
		for _, h := range t.Hops {
			used[h.HopID] = struct{}{}
		}
		kept := remaining[:0]
		for _, s := range remaining {
			if _, u := used[s.HopID]; !u {
				kept = append(kept, s)
			}
		}
		remaining = kept
	}
	return out, nil
}

// DeleteAnchors retires the given tunnel: its anchors are deleted with
// their password proofs and dropped from the pool — the owner's half of
// the Fig 5 refresh policy. Anchors that another of this initiator's
// still-active tunnels rides on are spared (they stay deployed and stay
// in the pool) so retiring one tunnel never breaks another.
func (in *Initiator) DeleteAnchors(t *Tunnel) error {
	// Unregister t, then collect anchors still in use elsewhere.
	kept := in.active[:0]
	for _, a := range in.active {
		if a != t {
			kept = append(kept, a)
		}
	}
	in.active = kept
	inUse := make(map[id.ID]struct{})
	for _, a := range in.active {
		for _, h := range a.Hops {
			inUse[h.HopID] = struct{}{}
		}
	}

	var firstErr error
	drop := make(map[id.ID]struct{}, len(t.Hops))
	for _, h := range t.Hops {
		if _, used := inUse[h.HopID]; used {
			continue
		}
		drop[h.HopID] = struct{}{}
		if err := in.svc.Dir.Delete(h.HopID, h.PW); err != nil && !errors.Is(err, tha.ErrNotFound) && firstErr == nil {
			firstErr = err
		}
	}
	keptPool := in.pool[:0]
	for _, s := range in.pool {
		if _, gone := drop[s.HopID]; !gone {
			keptPool = append(keptPool, s)
		}
	}
	in.pool = keptPool
	return firstErr
}

// Release unregisters a tunnel without deleting its anchors: they stay
// deployed and in the pool for reuse by later tunnels. The tunnel pool's
// teardown path uses it — a dead tunnel usually has one bad hop, and the
// other anchors are still good (the bad one is handled by the quarantine,
// or retired individually with DropAnchor).
func (in *Initiator) Release(t *Tunnel) {
	kept := in.active[:0]
	for _, a := range in.active {
		if a != t {
			kept = append(kept, a)
		}
	}
	in.active = kept
}

// DropAnchor retires a single anchor: it is deleted from the directory
// (with its password proof) and dropped from the pool. An anchor a
// still-active tunnel rides on is spared. Returns whether it was dropped.
func (in *Initiator) DropAnchor(hopID id.ID) bool {
	for _, a := range in.active {
		for _, h := range a.Hops {
			if h.HopID == hopID {
				return false
			}
		}
	}
	for i, s := range in.pool {
		if s.HopID == hopID {
			// Best effort: the delete failing (e.g. every replica is down)
			// does not keep the anchor usable, so it leaves the pool anyway.
			_ = in.svc.Dir.Delete(s.HopID, s.PW)
			in.pool = append(in.pool[:i], in.pool[i+1:]...)
			return true
		}
	}
	return false
}

// NewBid picks an identifier the initiator's node currently owns, without
// being the node id itself: the low bits are randomized as widely as
// ownership allows. The §4 condition — "I is the node whose nodeId is
// numerically closest to bid" — guarantees replies route home.
func (in *Initiator) NewBid() id.ID {
	self := in.node.ID()
	for bits := 128; bits >= 8; bits /= 2 {
		bid := self
		// Randomize the trailing `bits` bits.
		start := id.Size - bits/8
		in.stream.Bytes(bid[start:])
		if bid != self && in.svc.OV.OwnerOf(bid).ID() == self {
			return bid
		}
	}
	return self
}

// --- deploy payload framing ----------------------------------------------

// Deploy payloads are the application protocol for DeployViaTunnel.
func encodeDeployPayload(ins onionroute.Instruction) []byte {
	// Reuse the anchor wire layout: hopid, key, pw hash, nonce.
	buf := make([]byte, 0, tha.WireSize+8)
	buf = append(buf, ins.Anchor.HopID[:]...)
	buf = append(buf, ins.Anchor.Key[:]...)
	buf = append(buf, ins.Anchor.PWHash[:]...)
	for i := 7; i >= 0; i-- {
		buf = append(buf, byte(ins.Nonce>>(8*i)))
	}
	return buf
}

func decodeDeployPayload(b []byte) (onionroute.Instruction, error) {
	var ins onionroute.Instruction
	if len(b) != tha.WireSize+8 {
		return ins, fmt.Errorf("core: deploy payload length %d", len(b))
	}
	copy(ins.Anchor.HopID[:], b[:id.Size])
	b = b[id.Size:]
	copy(ins.Anchor.Key[:], b[:len(ins.Anchor.Key)])
	b = b[len(ins.Anchor.Key):]
	copy(ins.Anchor.PWHash[:], b[:len(ins.Anchor.PWHash)])
	b = b[len(ins.Anchor.PWHash):]
	for _, by := range b {
		ins.Nonce = ins.Nonce<<8 | uint64(by)
	}
	return ins, nil
}
