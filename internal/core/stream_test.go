package core

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"tap/internal/id"
	"tap/internal/simnet"
)

// fixedLink gives every distinct pair of nodes the same one-way latency
// and no serialization delay, so protocol timing assertions are exact.
func fixedLink(oneWay time.Duration) simnet.LinkModel {
	return simnet.LinkModel{MinLatency: oneWay, MaxLatency: oneWay, Seed: 1}
}

// patternData builds a deterministic payload whose bytes encode their own
// offset, so any reordering or duplication corrupts the comparison.
func patternData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	return data
}

// streamSink collects one engine's incoming streams for assertions.
type streamSink struct {
	buf    []byte
	seqs   []uint64
	closes int
}

func (c *streamSink) install(e *NetEngine) {
	e.OnStream = func(rs *RecvStream) {
		rs.OnData = func(seq uint64, b []byte) {
			c.buf = append(c.buf, b...)
			c.seqs = append(c.seqs, seq)
		}
		rs.OnClose = func(*RecvStream) { c.closes++ }
	}
}

func (c *streamSink) assertOrdered(t *testing.T) {
	t.Helper()
	for i := 1; i < len(c.seqs); i++ {
		if c.seqs[i] <= c.seqs[i-1] {
			t.Fatalf("segments delivered out of order: seq %d after %d", c.seqs[i], c.seqs[i-1])
		}
	}
}

// pumpStream writes data through the window, resuming on OnWritable when
// a Write comes up short, and closes once everything is accepted.
func pumpStream(s *Stream, data []byte) {
	off := 0
	var step func()
	step = func() {
		for off < len(data) {
			want := len(data) - off
			n := s.Write(data[off:])
			off += n
			if n < want {
				return // window full; OnWritable resumes
			}
		}
		s.Close()
	}
	s.OnWritable = step
	step()
}

func TestStreamDirectTransfer(t *testing.T) {
	ns := newNetSys(t, 200, 3, 31)
	src := ns.ov.RandomLive(ns.root.Split("src"))
	dst := ns.ov.RandomLive(ns.root.Split("dst"))
	if src.Ref().Addr == dst.Ref().Addr {
		t.Fatal("src and dst collided; pick another seed")
	}
	sink := &streamSink{}
	sink.install(ns.eng)

	data := patternData(100_000)
	s := ns.eng.OpenStream(src.Ref().Addr, dst.ID(), dst.Ref().Addr, StreamConfig{})
	completed, ok := false, false
	s.OnComplete = func(o bool) { completed, ok = true, o }
	pumpStream(s, data)
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed || !ok {
		why := ""
		if f, w := s.Failed(); f {
			why = w
		}
		t.Fatalf("stream did not complete cleanly: completed=%v ok=%v (%s)", completed, ok, why)
	}
	if !bytes.Equal(sink.buf, data) {
		t.Fatalf("received %d bytes, want %d byte-identical", len(sink.buf), len(data))
	}
	sink.assertOrdered(t)
	if sink.closes != 1 {
		t.Fatalf("OnClose fired %d times, want exactly once", sink.closes)
	}
	if got, want := s.MaxInflightSegs(), s.ConfiguredWindow(); got > want {
		t.Fatalf("window violated: %d segments in flight, configured %d", got, want)
	}
	if ns.eng.StreamSegsRetx != 0 {
		t.Fatalf("lossless transfer retransmitted %d segments", ns.eng.StreamSegsRetx)
	}
	if s.BytesWritten() != uint64(len(data)) {
		t.Fatalf("BytesWritten = %d, want %d", s.BytesWritten(), len(data))
	}
}

func TestStreamLossAndReorderExactlyOnce(t *testing.T) {
	ns := newNetSys(t, 200, 3, 32)
	src := ns.ov.RandomLive(ns.root.Split("src"))
	dst := ns.ov.RandomLive(ns.root.Split("dst"))
	if src.Ref().Addr == dst.Ref().Addr {
		t.Fatal("src and dst collided; pick another seed")
	}
	ns.net.InstallFaults(&simnet.FaultPlan{Seed: 9, LossRate: 0.1})
	// Deterministic reordering: every third-ish message is held back long
	// enough to arrive behind its successors.
	ns.net.ExtraDelay = func(srcA, dstA simnet.Addr, msg simnet.Message) simnet.Time {
		if (uint64(srcA)+uint64(dstA)+uint64(msg.SizeBytes()))%3 == 0 {
			return simnet.Time(90 * time.Millisecond)
		}
		return 0
	}
	sink := &streamSink{}
	sink.install(ns.eng)

	data := patternData(64_000)
	s := ns.eng.OpenStream(src.Ref().Addr, dst.ID(), dst.Ref().Addr, StreamConfig{Window: 16})
	var okDone bool
	s.OnComplete = func(o bool) { okDone = o }
	pumpStream(s, data)
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !okDone {
		_, why := s.Failed()
		t.Fatalf("stream failed under loss: %s", why)
	}
	if !bytes.Equal(sink.buf, data) {
		t.Fatalf("received %d bytes, want %d byte-identical despite loss+reorder", len(sink.buf), len(data))
	}
	sink.assertOrdered(t)
	if sink.closes != 1 {
		t.Fatalf("OnClose fired %d times, want exactly once", sink.closes)
	}
	if ns.eng.StreamSegsRetx == 0 {
		t.Fatal("10% loss produced zero retransmissions; faults not applied?")
	}
	if got, want := s.MaxInflightSegs(), s.ConfiguredWindow(); got > want {
		t.Fatalf("window violated under loss: %d in flight, configured %d", got, want)
	}
}

func TestStreamTunnelTransfer(t *testing.T) {
	ns := newNetSys(t, 400, 3, 33)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	ns.net.InstallFaults(&simnet.FaultPlan{Seed: 5, LossRate: 0.05})
	sink := &streamSink{}
	sink.install(ns.eng)

	data := patternData(32_000)
	dest := id.HashString("streamed-file")
	s := ns.eng.OpenTunnelStream(in.Node().Ref().Addr, tun, cache, dest, StreamConfig{Window: 8})
	var okDone bool
	s.OnComplete = func(o bool) { okDone = o }
	pumpStream(s, data)
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !okDone {
		_, why := s.Failed()
		t.Fatalf("tunnel stream failed: %s", why)
	}
	if !bytes.Equal(sink.buf, data) {
		t.Fatalf("received %d bytes over tunnel, want %d byte-identical", len(sink.buf), len(data))
	}
	sink.assertOrdered(t)
	if sink.closes != 1 {
		t.Fatalf("OnClose fired %d times, want exactly once", sink.closes)
	}
}

func TestStreamBackpressure(t *testing.T) {
	ns := newNetSys(t, 100, 3, 34)
	src := ns.ov.RandomLive(ns.root.Split("src"))
	dst := ns.ov.RandomLive(ns.root.Split("dst"))
	if src.Ref().Addr == dst.Ref().Addr {
		t.Fatal("src and dst collided; pick another seed")
	}
	sink := &streamSink{}
	sink.install(ns.eng)

	cfg := StreamConfig{Window: 4, SegSize: 1024}
	data := patternData(64 * 1024)
	s := ns.eng.OpenStream(src.Ref().Addr, dst.ID(), dst.Ref().Addr, cfg)
	// A single huge write must stop at exactly one window of segments.
	if n := s.Write(data); n != cfg.Window*cfg.SegSize {
		t.Fatalf("first write accepted %d bytes, want %d (window*segsize)", n, cfg.Window*cfg.SegSize)
	}
	if n := s.Write(data); n != 0 {
		t.Fatalf("write into a full window accepted %d bytes", n)
	}
	// Resume through OnWritable until everything is through.
	off := cfg.Window * cfg.SegSize
	s.OnWritable = func() {
		for off < len(data) {
			want := len(data) - off
			n := s.Write(data[off:])
			off += n
			if n < want {
				return
			}
		}
		s.Close()
	}
	var okDone bool
	s.OnComplete = func(o bool) { okDone = o }
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !okDone {
		t.Fatal("backpressured stream did not complete")
	}
	if !bytes.Equal(sink.buf, data) {
		t.Fatalf("received %d bytes, want %d byte-identical", len(sink.buf), len(data))
	}
	if got, want := s.MaxInflightSegs(), cfg.Window; got > want {
		t.Fatalf("window violated: %d in flight, configured %d", got, want)
	}
}

func TestStreamWindowBypassSeam(t *testing.T) {
	// The checker-only sabotage seam must produce an observable window
	// violation, or the window-conservation invariant can never fire.
	ns := newNetSys(t, 100, 3, 35)
	src := ns.ov.RandomLive(ns.root.Split("src"))
	dst := ns.ov.RandomLive(ns.root.Split("dst"))
	ns.eng.StreamWindowBypass = true
	sink := &streamSink{}
	sink.install(ns.eng)

	cfg := StreamConfig{Window: 4, SegSize: 512}
	data := patternData(32 * 1024)
	s := ns.eng.OpenStream(src.Ref().Addr, dst.ID(), dst.Ref().Addr, cfg)
	pumpStream(s, data)
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if s.MaxInflightSegs() <= s.ConfiguredWindow() {
		t.Fatalf("bypass seam kept %d in flight within configured window %d; seam is invisible",
			s.MaxInflightSegs(), s.ConfiguredWindow())
	}
}

func TestStreamRTTEstimator(t *testing.T) {
	cfg := StreamConfig{}.withDefaults()
	var est rttEstimator
	if est.rto(&cfg) != cfg.InitRTO {
		t.Fatal("estimator without samples must return InitRTO")
	}
	sample := simnet.Time(50 * time.Millisecond)
	for i := 0; i < 40; i++ {
		est.observe(sample)
	}
	if est.srtt != sample {
		t.Fatalf("srtt converged to %v, want %v", est.srtt, sample)
	}
	// Constant samples decay RTTVAR toward zero, so RTO approaches SRTT
	// (floored well above MinRTO here).
	if got := est.rto(&cfg); got < sample || got > 2*sample {
		t.Fatalf("rto = %v, want within [%v, %v]", got, sample, 2*sample)
	}
	// A spike inflates RTTVAR and thus RTO.
	est.observe(simnet.Time(250 * time.Millisecond))
	if got := est.rto(&cfg); got <= sample {
		t.Fatalf("rto = %v after a spike, want above the base sample", got)
	}
	// And the floor holds for tiny samples.
	var tiny rttEstimator
	tiny.observe(simnet.Time(time.Microsecond))
	if got := tiny.rto(&cfg); got != cfg.MinRTO {
		t.Fatalf("rto = %v for microsecond RTT, want MinRTO %v", got, cfg.MinRTO)
	}
}

// TestStreamGoodputVsStopAndWait is the headline acceptance number: at a
// fixed 50ms tunnel-path RTT with 1% loss, the windowed protocol must move
// the same payload at least 5x faster than stop-and-wait (window 1).
func TestStreamGoodputVsStopAndWait(t *testing.T) {
	run := func(window int) time.Duration {
		ns := newNetSys(t, 100, 3, 36)
		ns.net.Link = fixedLink(25 * time.Millisecond) // 50ms RTT
		ns.net.InstallFaults(&simnet.FaultPlan{Seed: 7, LossRate: 0.01})
		src := ns.ov.RandomLive(ns.root.Split("src"))
		dst := ns.ov.RandomLive(ns.root.Split("dst"))
		if src.Ref().Addr == dst.Ref().Addr {
			t.Fatal("src and dst collided; pick another seed")
		}
		sink := &streamSink{}
		sink.install(ns.eng)
		data := patternData(128 * 1024)
		s := ns.eng.OpenStream(src.Ref().Addr, dst.ID(), dst.Ref().Addr, StreamConfig{Window: window})
		var doneAt simnet.Time
		var okDone bool
		s.OnComplete = func(o bool) { okDone, doneAt = o, ns.kernel.Now() }
		pumpStream(s, data)
		if err := ns.kernel.Run(); err != nil {
			t.Fatal(err)
		}
		if !okDone {
			_, why := s.Failed()
			t.Fatalf("window=%d transfer failed: %s", window, why)
		}
		if !bytes.Equal(sink.buf, data) {
			t.Fatalf("window=%d corrupted the payload", window)
		}
		return time.Duration(doneAt)
	}

	windowed := run(32)
	stopWait := run(1)
	ratio := float64(stopWait) / float64(windowed)
	t.Logf("stop-and-wait %v, windowed %v, speedup %.1fx", stopWait, windowed, ratio)
	if ratio < 5 {
		t.Fatalf("windowed speedup %.2fx over stop-and-wait, want >= 5x", ratio)
	}
}

// TestStreamSteadyStateZeroAlloc pins the hot-path allocation budget: after
// a warmup transfer has populated the packet, segment, and kernel-event
// pools, a long steady-state transfer must allocate (amortized) nothing
// per segment.
func TestStreamSteadyStateZeroAlloc(t *testing.T) {
	ns := newNetSys(t, 100, 3, 37)
	ns.net.Link = fixedLink(5 * time.Millisecond)
	src := ns.ov.RandomLive(ns.root.Split("src"))
	dst := ns.ov.RandomLive(ns.root.Split("dst"))
	if src.Ref().Addr == dst.Ref().Addr {
		t.Fatal("src and dst collided; pick another seed")
	}
	var sum uint64
	ns.eng.OnStream = func(rs *RecvStream) {
		rs.OnData = func(seq uint64, b []byte) {
			for _, x := range b {
				sum += uint64(x)
			}
		}
	}
	const segs = 2048
	data := patternData(segs * 1024)

	transfer := func() {
		s := ns.eng.OpenStream(src.Ref().Addr, dst.ID(), dst.Ref().Addr, StreamConfig{})
		pumpStream(s, data)
		if err := ns.kernel.Run(); err != nil {
			t.Fatal(err)
		}
		if !s.Done() {
			_, why := s.Failed()
			t.Fatalf("transfer did not finish: %s", why)
		}
	}

	transfer() // warm every pool

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	transfer()
	runtime.ReadMemStats(&after)
	mallocs := after.Mallocs - before.Mallocs
	perSeg := float64(mallocs) / segs
	t.Logf("steady-state transfer: %d mallocs over %d segments (%.3f/seg)", mallocs, segs, perSeg)
	// Per-stream setup (the Stream, its ring, the receive state, map
	// growth) is allowed; per-segment cost is not.
	if perSeg > 0.05 {
		t.Fatalf("steady-state send path allocates %.3f objects/segment, want ~0", perSeg)
	}
	_ = sum
}

// TestStreamTunnelBackoffMemory covers the per-tunnel retransmit-backoff
// satellite for streams: a stream over a tunnel that just proved lossy
// inherits the stored RTO; repeated timeouts grow the shared memory; a
// clean run clears it.
func TestStreamTunnelBackoffMemory(t *testing.T) {
	ns := newNetSys(t, 400, 3, 38)
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	key := tun.Hops[0].HopID
	origin := in.Node().Ref().Addr
	dest := id.HashString("backoff-file")

	// Inheritance: a stored backoff beats the optimistic initial RTO.
	stored := simnet.Time(5 * time.Second)
	ns.eng.tunnelRTO[key] = stored
	s := ns.eng.OpenTunnelStream(origin, tun, cache, dest, StreamConfig{})
	if s.rto != stored {
		t.Fatalf("stream started with rto %v, want inherited %v", s.rto, stored)
	}

	// A clean transfer (no loss, no retransmits) clears the memory.
	sink := &streamSink{}
	sink.install(ns.eng)
	pumpStream(s, patternData(4096))
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		_, why := s.Failed()
		t.Fatalf("clean transfer failed: %s", why)
	}
	if _, ok := ns.eng.tunnelRTO[key]; ok {
		t.Fatal("clean run should drop the tunnel's backoff memory")
	}

	// Total loss: timeouts grow the shared memory while the stream backs
	// off, and repeated expiry invalidates the cached hop hints well
	// before the retry budget runs out.
	ns.net.InstallFaults(&simnet.FaultPlan{Seed: 3, LossRate: 1})
	s2 := ns.eng.OpenTunnelStream(origin, tun, cache, dest, StreamConfig{MaxRetries: 20})
	pumpStream(s2, patternData(2048))
	// InitRTO 1s doubling per expiry: backoffCount hits 3 (the hint
	// eviction point) by t=7s. Check at 20s, long before 20 retries.
	if err := ns.kernel.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := ns.eng.tunnelRTO[key]; got <= simnet.Time(time.Second) {
		t.Fatalf("tunnelRTO after repeated timeouts = %v, want grown beyond InitRTO", got)
	}
	for _, hop := range tun.HopIDs() {
		if a := cache.Get(hop); a != simnet.NoAddr {
			t.Fatalf("hop %s hint still cached after repeated RTO expiry", hop.Short())
		}
	}
	if done := s2.Done(); done {
		t.Fatal("stream cannot have completed under total loss")
	}

	// A fresh stream over the same tunnel inherits the grown backoff.
	s3 := ns.eng.OpenTunnelStream(origin, tun, cache, dest, StreamConfig{})
	if s3.rto <= simnet.Time(time.Second) {
		t.Fatalf("new stream started with rto %v, want inherited backed-off value", s3.rto)
	}
}

// TestReliableFlowBackoffMemory covers the same satellite for PR-1 reliable
// flows: backoff is remembered per tunnel across flows, decayed on a
// retransmitted success, and dropped on a clean first-attempt delivery.
func TestReliableFlowBackoffMemory(t *testing.T) {
	ns := newNetSys(t, 400, 3, 39)
	ns.eng.EnableReliability(Reliability{})
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	key := tun.Hops[0].HopID
	origin := in.Node().Ref().Addr
	dest := id.HashString("flow-file")
	opts := SendOpts{Cache: cache, Hops: tun.HopIDs()}

	build := func(label string) *Envelope {
		env, err := BuildForward(tun, hintsFor(cache, tun), dest, patternData(512), ns.root.Split(label))
		if err != nil {
			t.Fatal(err)
		}
		return env
	}

	// Inheritance: a new flow over a tunnel with stored backoff starts
	// from the stored timeout, not the optimistic estimate.
	stored := simnet.Time(60 * time.Second)
	ns.eng.tunnelRTO[key] = stored
	flow := ns.eng.SendForwardOpt(origin, build("f1"), opts, nil)
	st := ns.eng.flows[flow]
	if st == nil || st.rto != stored {
		t.Fatalf("flow inherited rto %v, want %v", st.rto, stored)
	}
	// First-attempt delivery proves the tunnel healthy: memory dropped.
	if err := ns.kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ns.eng.tunnelRTO[key]; ok {
		t.Fatal("first-attempt delivery should drop the tunnel's backoff memory")
	}
}

// TestReliableFlowRepeatedRTOInvalidatesHints covers the repeated-expiry
// satellite for reliable flows: a flow whose retransmissions keep dying
// evicts its tunnel's cached hop addresses at HintInvalidateAfter
// expirations — long before the attempt budget exhausts.
func TestReliableFlowRepeatedRTOInvalidatesHints(t *testing.T) {
	ns := newNetSys(t, 400, 3, 40)
	ns.eng.EnableReliability(Reliability{MaxAttempts: 10})
	in := ns.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(ns.svc, tun); err != nil {
		t.Fatal(err)
	}
	for _, hop := range tun.HopIDs() {
		if cache.Get(hop) == simnet.NoAddr {
			t.Fatalf("hop %s missing from cache before the flow", hop.Short())
		}
	}
	env, err := BuildForward(tun, hintsFor(cache, tun), dest40, patternData(512), ns.root.Split("f1"))
	if err != nil {
		t.Fatal(err)
	}
	// Every transmission dies in flight: the flow sees only RTO expiry.
	ns.net.InstallFaults(&simnet.FaultPlan{Seed: 3, LossRate: 1})
	flow := ns.eng.SendForwardOpt(in.Node().Ref().Addr, env, SendOpts{Cache: cache, Hops: tun.HopIDs()}, nil)
	// With the default-model initial RTO (~7.4s) and 1.5x backoff, the
	// third attempt's timer — the invalidation point — fires by ~40s,
	// while exhaustion (10 attempts) is past 500s.
	if err := ns.kernel.RunUntil(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, pending := ns.eng.flows[flow]; !pending {
		t.Fatal("flow exhausted before the mid-run check; timing assumption broken")
	}
	for _, hop := range tun.HopIDs() {
		if a := cache.Get(hop); a != simnet.NoAddr {
			t.Fatalf("hop %s hint still cached after repeated RTO expiry", hop.Short())
		}
	}
	if ns.eng.StaleHints == 0 {
		t.Fatal("repeated-RTO eviction recorded no stale hints")
	}
}

var dest40 = id.HashString("rto-file")
