package core

import "tap/internal/obs"

// EngineMetrics publishes an engine's internally kept counters into an
// obs registry. The engines themselves stay observability-free: they
// count into plain uint64 fields on their own event loop exactly as
// before (no atomics, no time sources, bit-identical simulation runs),
// and a host that wants a scrapable view snapshots those totals into
// registry counters — typically from an obs.OnScrape hook, so the cost
// is paid per scrape, not per event.
//
// Counter.Store (not Add) is the publish primitive: the engine fields
// are already monotone totals, so each publish overwrites the exported
// value with the current one. Publishing is idempotent and safe to call
// at any frequency.
//
// A nil registry yields a nil *EngineMetrics, and every method on nil
// is a no-op — the simulator's engines never touch obs at all.
type EngineMetrics struct {
	// Pool lifecycle (PoolStats).
	probesSent    *obs.Counter
	probesOK      *obs.Counter
	probesFailed  *obs.Counter
	probeTimeouts *obs.Counter
	slotDeaths    *obs.Counter
	attributions  *obs.Counter
	rebuilds      *obs.Counter
	rebuildDenied *obs.Counter
	rebuildFailed *obs.Counter
	poolSends     *obs.Counter
	sendFailures  *obs.Counter
	failovers     *obs.Counter
	fastFails     *obs.Counter
	repairs       *obs.Counter

	// Network engine flows and reliability (NetEngine fields).
	netHops     *obs.Counter
	hintHits    *obs.Counter
	hintMiss    *obs.Counter
	failFlows   *obs.Counter
	retransmits *obs.Counter
	packetsLost *obs.Counter
	staleHints  *obs.Counter

	// Windowed streams (NetEngine fields).
	segsSent  *obs.Counter
	segsRetx  *obs.Counter
	fastRetx  *obs.Counter
	timeouts  *obs.Counter
	bytesRecv *obs.Counter
}

// NewEngineMetrics registers the engine families on reg, or returns nil
// (the no-op publisher) when reg is nil.
func NewEngineMetrics(reg *obs.Registry) *EngineMetrics {
	if reg == nil {
		return nil
	}
	return &EngineMetrics{
		probesSent:    reg.Counter("tap_pool_probes_sent_total", "Tunnel probes launched."),
		probesOK:      reg.Counter("tap_pool_probes_ok_total", "Tunnel probes echoed in time."),
		probesFailed:  reg.Counter("tap_pool_probes_failed_total", "Tunnel probes failed."),
		probeTimeouts: reg.Counter("tap_pool_probe_timeouts_total", "Tunnel probes timed out."),
		slotDeaths:    reg.Counter("tap_pool_slot_deaths_total", "Tunnels declared dead."),
		attributions:  reg.Counter("tap_pool_attributions_total", "Deaths attributed to a specific hop."),
		rebuilds:      reg.Counter("tap_pool_rebuilds_total", "Rebuild attempts admitted."),
		rebuildDenied: reg.Counter("tap_pool_rebuilds_denied_total", "Rebuilds refused by the rate limiter."),
		rebuildFailed: reg.Counter("tap_pool_rebuild_failures_total", "Admitted rebuilds whose formation failed."),
		poolSends:     reg.Counter("tap_pool_sends_total", "Pool sends accepted."),
		sendFailures:  reg.Counter("tap_pool_send_failures_total", "Tunnel send attempts that failed."),
		failovers:     reg.Counter("tap_pool_failovers_total", "Sends retried over another tunnel."),
		fastFails:     reg.Counter("tap_pool_fast_fails_total", "Sends rejected while degraded."),
		repairs:       reg.Counter("tap_pool_repairs_total", "Slots restored to healthy after a death."),

		netHops:     reg.Counter("tap_engine_net_hops_total", "Overlay hops traversed by flows."),
		hintHits:    reg.Counter("tap_engine_hint_hits_total", "Hop dispatches served by an address hint."),
		hintMiss:    reg.Counter("tap_engine_hint_misses_total", "Hop dispatches that fell back to DHT routing."),
		failFlows:   reg.Counter("tap_engine_failed_flows_total", "Flows that ended in failure."),
		retransmits: reg.Counter("tap_engine_retransmits_total", "Reliable-flow retransmissions."),
		packetsLost: reg.Counter("tap_engine_packets_lost_total", "Reliable-flow packets lost mid-flight."),
		staleHints:  reg.Counter("tap_engine_stale_hints_total", "Address hints invalidated."),

		segsSent:  reg.Counter("tap_stream_segments_sent_total", "Original stream segment transmissions."),
		segsRetx:  reg.Counter("tap_stream_segments_retx_total", "Stream segment retransmissions."),
		fastRetx:  reg.Counter("tap_stream_fast_retx_total", "Fast retransmits from duplicate ACKs."),
		timeouts:  reg.Counter("tap_stream_rto_expirations_total", "Stream RTO expirations."),
		bytesRecv: reg.Counter("tap_stream_bytes_received_total", "In-order stream bytes delivered."),
	}
}

// PublishPool snapshots a pool's lifecycle totals.
func (em *EngineMetrics) PublishPool(s PoolStats) {
	if em == nil {
		return
	}
	em.probesSent.Store(s.ProbesSent)
	em.probesOK.Store(s.ProbesOK)
	em.probesFailed.Store(s.ProbesFailed)
	em.probeTimeouts.Store(s.ProbeTimeouts)
	em.slotDeaths.Store(s.SlotDeaths)
	em.attributions.Store(s.Attributions)
	em.rebuilds.Store(s.Rebuilds)
	em.rebuildDenied.Store(s.RebuildsDenied)
	em.rebuildFailed.Store(s.RebuildFailures)
	em.poolSends.Store(s.Sends)
	em.sendFailures.Store(s.SendFailures)
	em.failovers.Store(s.Failovers)
	em.fastFails.Store(s.FastFails)
	em.repairs.Store(s.Repairs)
}

// PublishNet snapshots a network engine's flow, reliability, and stream
// totals. Call it from the transport's dispatch loop (or after traffic
// has quiesced): the engine's counters are loop-owned plain fields.
func (em *EngineMetrics) PublishNet(ne *NetEngine) {
	if em == nil || ne == nil {
		return
	}
	em.netHops.Store(ne.NetHops)
	em.hintHits.Store(ne.HintHits)
	em.hintMiss.Store(ne.HintMiss)
	em.failFlows.Store(ne.FailFlows)
	em.retransmits.Store(ne.Retransmits)
	em.packetsLost.Store(ne.PacketsLost)
	em.staleHints.Store(ne.StaleHints)
	em.segsSent.Store(ne.StreamSegsSent)
	em.segsRetx.Store(ne.StreamSegsRetx)
	em.fastRetx.Store(ne.StreamFastRetx)
	em.timeouts.Store(ne.StreamTimeouts)
	em.bytesRecv.Store(ne.StreamBytesRecv)
}
