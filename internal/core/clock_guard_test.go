package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoWallClockInCore statically audits every non-test source file in
// this package for wall-clock calls. The engines must take time only
// from the transport seam's Clock (Now/Schedule) — a stray time.Now()
// or time.Since() would read the host's clock, silently breaking
// deterministic replay on the simulator and making golden traces
// unreproducible. The guard parses the sources so new call sites fail
// the build's test run, not a code review.
func TestNoWallClockInCore(t *testing.T) {
	banned := map[string]bool{
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
		"AfterFunc": true,
	}
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, file, src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", file, err)
		}
		// Find the local name of the "time" import (skip files that
		// don't import it at all).
		timeName := ""
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "time" {
				timeName = "time"
				if imp.Name != nil {
					timeName = imp.Name.Name
				}
			}
		}
		if timeName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != timeName {
				return true
			}
			if banned[sel.Sel.Name] {
				t.Errorf("%s: %s.%s reads the wall clock — use the transport Clock (Now/Schedule) instead",
					fset.Position(sel.Pos()), timeName, sel.Sel.Name)
			}
			return true
		})
	}
}
