package core

import (
	"fmt"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/wire"
)

// FixedTunnel is the "current tunneling" baseline the paper compares
// against (Crowds/Tarzan/MorphMix style): an anonymous path through a
// fixed sequence of specific nodes, with a symmetric key established with
// each. Its defining weakness is the one Figure 2 quantifies — "a path
// fails if one of its mixes leaves the system".
type FixedTunnel struct {
	Relays []pastry.NodeRef
	Keys   []crypt.Key

	// sealers lazily caches one key schedule per relay, shared by the
	// build and delivery paths so a round trip derives each relay's
	// subkeys once instead of twice.
	sealers []*crypt.Sealer
}

// Length returns the number of relays.
func (ft *FixedTunnel) Length() int { return len(ft.Relays) }

// relaySealer returns the cached Sealer for relay i, deriving it on first
// use.
func (ft *FixedTunnel) relaySealer(i int) *crypt.Sealer {
	if len(ft.sealers) != len(ft.Keys) {
		ft.sealers = make([]*crypt.Sealer, len(ft.Keys))
	}
	if ft.sealers[i] == nil {
		ft.sealers[i] = crypt.NewSealer(ft.Keys[i])
	}
	return ft.sealers[i]
}

// FormFixed picks l distinct live relays uniformly at random and
// establishes a layer key with each (the key exchange itself is assumed,
// as those systems assume a PKI).
func FormFixed(ov *pastry.Overlay, l int, stream *rng.Stream) (*FixedTunnel, error) {
	if l <= 0 {
		return nil, fmt.Errorf("core: fixed tunnel length %d must be positive", l)
	}
	if ov.Size() < l {
		return nil, fmt.Errorf("core: overlay of %d nodes cannot host %d distinct relays", ov.Size(), l)
	}
	ft := &FixedTunnel{
		Relays: make([]pastry.NodeRef, 0, l),
		Keys:   make([]crypt.Key, 0, l),
	}
	used := make(map[simnet.Addr]struct{}, l)
	for len(ft.Relays) < l {
		n := ov.RandomLive(stream)
		if _, dup := used[n.Ref().Addr]; dup {
			continue
		}
		used[n.Ref().Addr] = struct{}{}
		key, err := crypt.NewKey(stream)
		if err != nil {
			return nil, err
		}
		ft.Relays = append(ft.Relays, n.Ref())
		ft.Keys = append(ft.Keys, key)
	}
	return ft, nil
}

// Alive reports whether every relay is still a live overlay member — the
// baseline functions exactly when this holds.
func (ft *FixedTunnel) Alive(ov *pastry.Overlay) bool {
	for _, r := range ft.Relays {
		n := ov.Node(r.Addr)
		if n == nil || !n.Alive() || n.ID() != r.ID {
			return false
		}
	}
	return true
}

// BuildFixedForward seals a payload in layers over the fixed relays,
// addressing each layer to the next relay's address.
func BuildFixedForward(ft *FixedTunnel, dest id.ID, payload []byte, stream *rng.Stream) ([]byte, error) {
	l := ft.Length()
	if l == 0 {
		return nil, fmt.Errorf("core: empty fixed tunnel")
	}
	w := wire.NewWriter(1 + id.Size + len(payload) + 8)
	w.Byte(layerExit)
	w.ID(dest)
	w.Blob(payload)
	sealed, err := ft.relaySealer(l-1).SealTo(nil, stream, w.Bytes())
	if err != nil {
		return nil, err
	}
	for i := l - 2; i >= 0; i-- {
		w := wire.NewWriter(1 + 8 + len(sealed) + 8)
		w.Byte(layerRelay)
		w.Int64(int64(ft.Relays[i+1].Addr))
		w.Blob(sealed)
		sealed, err = ft.relaySealer(i).SealTo(nil, stream, w.Bytes())
		if err != nil {
			return nil, err
		}
	}
	return sealed, nil
}

// DeliverFixed walks the baseline tunnel. It fails with ErrRelayDead the
// moment any relay is gone — there is no recovery, which is the point of
// the comparison. On success it returns the exit payload and destination.
func (svc *Service) DeliverFixed(ft *FixedTunnel, sealed []byte) (id.ID, []byte, error) {
	// Copy the onion once, then every relay peels in place with its
	// cached key schedule (the same schedules BuildFixedForward used).
	blob := append([]byte(nil), sealed...)
	for i, relay := range ft.Relays {
		n := svc.OV.Node(relay.Addr)
		if n == nil || !n.Alive() || n.ID() != relay.ID {
			return id.ID{}, nil, fmt.Errorf("%w: relay %d (%s)", ErrRelayDead, i, relay)
		}
		plain, err := ft.relaySealer(i).OpenInPlace(blob)
		if err != nil {
			return id.ID{}, nil, fmt.Errorf("core: fixed relay %d: %w", i, err)
		}
		r := wire.NewReader(plain)
		switch marker := r.Byte(); marker {
		case layerRelay:
			next := simnet.Addr(r.Int64())
			inner := r.Blob()
			if err := r.Done(); err != nil {
				return id.ID{}, nil, err
			}
			if i+1 >= len(ft.Relays) || next != ft.Relays[i+1].Addr {
				return id.ID{}, nil, fmt.Errorf("core: fixed tunnel layer order corrupt at relay %d", i)
			}
			blob = inner
		case layerExit:
			dest := r.ID()
			payload := r.Blob()
			if err := r.Done(); err != nil {
				return id.ID{}, nil, err
			}
			if i != len(ft.Relays)-1 {
				return id.ID{}, nil, fmt.Errorf("core: exit layer at non-tail relay %d", i)
			}
			return dest, payload, nil
		default:
			return id.ID{}, nil, fmt.Errorf("core: fixed tunnel: unknown marker %d", marker)
		}
	}
	return id.ID{}, nil, fmt.Errorf("core: fixed tunnel ended without exit layer")
}
