package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
)

// makeHops builds l standalone anchor secrets for codec-level properties
// (no overlay needed).
func makeHops(stream *rng.Stream, l int) []tha.Secret {
	g, err := tha.NewGenerator([]byte("prop"), stream)
	if err != nil {
		panic(err)
	}
	out := make([]tha.Secret, l)
	for i := range out {
		s, err := g.Generate(stream)
		if err != nil {
			panic(err)
		}
		out[i] = s
	}
	return out
}

// Property: for any payload and tunnel length 1..6, peeling the forward
// message layer by layer with the hop keys reproduces the exact layer
// sequence and payload of Figure 1.
func TestPropForwardLayeringRoundTrip(t *testing.T) {
	f := func(seed uint64, lRaw uint8, payload []byte, destRaw [20]byte) bool {
		l := int(lRaw%6) + 1
		stream := rng.New(seed)
		tun := &Tunnel{Hops: makeHops(stream, l)}
		dest := id.ID(destRaw)
		env, err := BuildForward(tun, nil, dest, payload, stream)
		if err != nil {
			return false
		}
		if env.HopID != tun.Hops[0].HopID {
			return false
		}
		sealed := env.Sealed
		for i := 0; i < l; i++ {
			layer, err := OpenForwardLayer(tun.Hops[i].Anchor, sealed)
			if err != nil {
				return false
			}
			if i == l-1 {
				return layer.IsExit && layer.Dest == dest && bytes.Equal(layer.Payload, payload)
			}
			if layer.IsExit || layer.Next != tun.Hops[i+1].HopID {
				return false
			}
			sealed = layer.Inner
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: a reply onion peels to exactly its hop sequence and
// terminates in the bid, with the fake onion left over.
func TestPropReplyOnionRoundTrip(t *testing.T) {
	f := func(seed uint64, lRaw uint8, bidRaw [20]byte) bool {
		l := int(lRaw%6) + 1
		stream := rng.New(seed)
		tun := &Tunnel{Hops: makeHops(stream, l)}
		bid := id.ID(bidRaw)
		rt, err := BuildReply(tun, nil, bid, stream)
		if err != nil {
			return false
		}
		if rt.First != tun.Hops[0].HopID {
			return false
		}
		onion := rt.Onion
		target := rt.First
		for i := 0; i < l; i++ {
			if target != tun.Hops[i].HopID {
				return false
			}
			next, _, rest, err := OpenReplyLayer(tun.Hops[i].Anchor, onion)
			if err != nil {
				return false
			}
			target, onion = next, rest
		}
		return target == bid && len(onion) == FakeOnionSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: a hop key can open exactly its own layer — any other hop's
// key fails authentication.
func TestPropLayerKeysNonInterchangeable(t *testing.T) {
	f := func(seed uint64) bool {
		stream := rng.New(seed)
		tun := &Tunnel{Hops: makeHops(stream, 3)}
		env, err := BuildForward(tun, nil, id.HashString("d"), []byte("x"), stream)
		if err != nil {
			return false
		}
		if _, err := OpenForwardLayer(tun.Hops[1].Anchor, env.Sealed); err == nil {
			return false
		}
		if _, err := OpenForwardLayer(tun.Hops[2].Anchor, env.Sealed); err == nil {
			return false
		}
		_, err = OpenForwardLayer(tun.Hops[0].Anchor, env.Sealed)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting any single byte of a forward envelope's sealed
// body makes the first hop reject it (encrypt-then-MAC integrity).
func TestPropTamperAlwaysDetected(t *testing.T) {
	stream := rng.New(7)
	tun := &Tunnel{Hops: makeHops(stream, 3)}
	env, err := BuildForward(tun, nil, id.HashString("d"), []byte("payload payload"), stream)
	if err != nil {
		t.Fatal(err)
	}
	f := func(posRaw uint16, mask uint8) bool {
		if mask == 0 {
			return true
		}
		pos := int(posRaw) % len(env.Sealed)
		mut := append([]byte(nil), env.Sealed...)
		mut[pos] ^= byte(mask)
		_, err := OpenForwardLayer(tun.Hops[0].Anchor, mut)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: reply tunnel encoding round-trips for any hint and onion
// contents.
func TestPropReplyTunnelCodec(t *testing.T) {
	f := func(firstRaw [20]byte, hint int64, onion []byte) bool {
		rt := &ReplyTunnel{First: id.ID(firstRaw), FirstHint: simnet.Addr(hint), Onion: onion}
		got, err := DecodeReplyTunnel(rt.Encode())
		if err != nil {
			return false
		}
		return got.First == rt.First && got.FirstHint == rt.FirstHint && bytes.Equal(got.Onion, rt.Onion)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: envelope wire size is exactly framing + ciphertext, and the
// ciphertext grows linearly in layer count (Overhead per layer plus
// framing), so Figure 6's transfer sizes are trustworthy.
func TestPropEnvelopeSizeLinearInLayers(t *testing.T) {
	stream := rng.New(9)
	payload := make([]byte, 1000)
	var prev int
	for l := 1; l <= 6; l++ {
		tun := &Tunnel{Hops: makeHops(stream.SplitN("hops", l), l)}
		env, err := BuildForward(tun, nil, id.HashString("d"), payload, stream)
		if err != nil {
			t.Fatal(err)
		}
		if env.SizeBytes() != id.Size+8+len(env.Sealed) {
			t.Fatalf("SizeBytes inconsistent")
		}
		if l > 1 {
			growth := env.SizeBytes() - prev
			// Each extra layer adds one seal Overhead plus relay framing
			// (marker + id + hint + blob prefix ≈ 32 bytes).
			if growth < crypt.Overhead || growth > crypt.Overhead+64 {
				t.Fatalf("layer %d growth %d bytes implausible", l, growth)
			}
		}
		prev = env.SizeBytes()
	}
}
