package core

import (
	"bytes"
	"errors"
	"testing"

	"tap/internal/id"
	"tap/internal/onionroute"
	"tap/internal/past"
	"tap/internal/pastry"
	"tap/internal/rng"
	"tap/internal/tha"
)

// sys bundles a full TAP stack for tests.
type sys struct {
	ov   *pastry.Overlay
	mgr  *past.Manager
	dir  *tha.Directory
	svc  *Service
	root *rng.Stream
}

func newSys(t testing.TB, n, k int, seed uint64) *sys {
	t.Helper()
	root := rng.New(seed)
	ov, err := pastry.Build(pastry.DefaultConfig(), n, root.Split("overlay"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := past.NewManager(ov, k)
	dir := tha.NewDirectory(ov, mgr)
	svc := NewService(ov, dir, root.Split("svc"))
	return &sys{ov: ov, mgr: mgr, dir: dir, svc: svc, root: root}
}

func (s *sys) newInitiator(t testing.TB, label string) *Initiator {
	t.Helper()
	node := s.ov.RandomLive(s.root.Split("pick-" + label))
	in, err := NewInitiator(s.svc, node, s.root.Split("init-"+label))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func (s *sys) readyInitiator(t testing.TB, label string, anchors int) *Initiator {
	t.Helper()
	in := s.newInitiator(t, label)
	if err := in.DeployDirect(anchors); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestFormRespectsLengthAndScatter(t *testing.T) {
	s := newSys(t, 200, 3, 1)
	in := s.readyInitiator(t, "a", 30)
	tun, err := in.FormTunnel(5)
	if err != nil {
		t.Fatal(err)
	}
	if tun.Length() != 5 {
		t.Fatalf("length %d", tun.Length())
	}
	if div := tha.PrefixDiversity(tun.Hops, 4); div < 3 {
		t.Fatalf("prefix diversity %d suspiciously low for a 30-anchor pool", div)
	}
	ids := tun.HopIDs()
	seen := map[id.ID]bool{}
	for _, h := range ids {
		if seen[h] {
			t.Fatalf("duplicate hop")
		}
		seen[h] = true
	}
}

func TestFormFailsOnTinyPool(t *testing.T) {
	s := newSys(t, 50, 3, 2)
	in := s.readyInitiator(t, "a", 3)
	if _, err := in.FormTunnel(5); err == nil {
		t.Fatalf("tunnel longer than pool accepted")
	}
}

func TestBuildForwardManualPeel(t *testing.T) {
	// Verify the exact Figure 1 structure by peeling layers by hand.
	s := newSys(t, 100, 3, 3)
	in := s.readyInitiator(t, "a", 10)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	dest := id.HashString("file-D")
	payload := []byte("m")
	env, err := BuildForward(tun, nil, dest, payload, s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	if env.HopID != tun.Hops[0].HopID {
		t.Fatalf("envelope addressed to %s, want first hop", env.HopID.Short())
	}
	l1, err := OpenForwardLayer(tun.Hops[0].Anchor, env.Sealed)
	if err != nil {
		t.Fatal(err)
	}
	if l1.IsExit || l1.Next != tun.Hops[1].HopID {
		t.Fatalf("layer 1 should relay to hop 2")
	}
	l2, err := OpenForwardLayer(tun.Hops[1].Anchor, l1.Inner)
	if err != nil {
		t.Fatal(err)
	}
	if l2.IsExit || l2.Next != tun.Hops[2].HopID {
		t.Fatalf("layer 2 should relay to hop 3")
	}
	l3, err := OpenForwardLayer(tun.Hops[2].Anchor, l2.Inner)
	if err != nil {
		t.Fatal(err)
	}
	if !l3.IsExit || l3.Dest != dest || !bytes.Equal(l3.Payload, payload) {
		t.Fatalf("exit layer mismatch")
	}
	// Out-of-order peeling fails.
	if _, err := OpenForwardLayer(tun.Hops[1].Anchor, env.Sealed); err == nil {
		t.Fatalf("hop 2 opened hop 1's layer")
	}
}

func TestDeliverForwardEndToEnd(t *testing.T) {
	s := newSys(t, 300, 3, 4)
	in := s.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(5)
	if err != nil {
		t.Fatal(err)
	}
	dest := id.HashString("the-file")
	payload := []byte("request body")
	env, err := BuildForward(tun, nil, dest, payload, s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.svc.DeliverForward(in.Node().Ref().Addr, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatalf("payload corrupted")
	}
	if res.Dest != dest {
		t.Fatalf("dest mismatch")
	}
	if res.DestNode.ID != s.ov.OwnerOf(dest).ID() {
		t.Fatalf("payload landed on %s, owner is %s", res.DestNode.ID.Short(), s.ov.OwnerOf(dest).ID().Short())
	}
	if len(res.Stats.HopNodes) != 5 {
		t.Fatalf("traversed %d hop nodes", len(res.Stats.HopNodes))
	}
	// Each hop node must be the owner of its hopid.
	for i, h := range tun.Hops {
		if res.Stats.HopNodes[i].ID != s.ov.OwnerOf(h.HopID).ID() {
			t.Fatalf("hop %d served by wrong node", i)
		}
	}
	if res.Stats.OverlayHops < 5 {
		t.Fatalf("overlay hops %d implausibly low", res.Stats.OverlayHops)
	}
}

func TestForwardSurvivesHopNodeFailure(t *testing.T) {
	s := newSys(t, 300, 3, 5)
	in := s.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(5)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the current hop node of every hop, one by one (sequentially, so
	// replicas migrate).
	for _, h := range tun.Hops {
		node, ok := s.dir.HopNode(h.HopID)
		if !ok {
			t.Fatalf("hop missing before failure")
		}
		if err := s.ov.Fail(node.Ref().Addr); err != nil {
			t.Fatal(err)
		}
	}
	env, err := BuildForward(tun, nil, id.HashString("d"), []byte("still works"), s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.svc.DeliverForward(in.Node().Ref().Addr, env)
	if err != nil {
		t.Fatalf("tunnel did not survive hop-node failures: %v", err)
	}
	if string(res.Payload) != "still works" {
		t.Fatalf("payload corrupted")
	}
}

func TestForwardFailsWhenAnchorLost(t *testing.T) {
	s := newSys(t, 300, 3, 6)
	in := s.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	// Simultaneously kill the entire replica set of hop 2.
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(tun.Hops[2].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()

	env, err := BuildForward(tun, nil, id.HashString("d"), []byte("x"), s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.svc.DeliverForward(in.Node().Ref().Addr, env)
	if !errors.Is(err, ErrHopLost) {
		t.Fatalf("err = %v, want ErrHopLost", err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	s := newSys(t, 300, 3, 7)
	in := s.readyInitiator(t, "a", 20)
	fwd, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	bid := in.NewBid()
	rt, err := BuildReply(rep, nil, bid, s.root.Split("r"))
	if err != nil {
		t.Fatal(err)
	}
	// Encode/decode as it would travel inside a forward payload.
	rt2, err := DecodeReplyTunnel(rt.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// A responder somewhere sends data back over the reply tunnel.
	responder := s.ov.RandomLive(s.root.Split("resp"))
	data := []byte("the reply payload")
	res, err := s.svc.DeliverReply(responder.Ref().Addr, &ReplyEnvelope{
		Target: rt2.First, Hint: rt2.FirstHint, Onion: rt2.Onion, Data: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LandedNode.ID != in.Node().ID() {
		t.Fatalf("reply landed on %s, want initiator %s", res.LandedNode.ID.Short(), in.Node().ID().Short())
	}
	if res.Target != bid {
		t.Fatalf("final target %s, want bid", res.Target.Short())
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("reply data corrupted")
	}
	if len(res.Remainder) != FakeOnionSize {
		t.Fatalf("remainder %d bytes, want fake onion of %d", len(res.Remainder), FakeOnionSize)
	}
	if len(res.Stats.HopNodes) != 3 {
		t.Fatalf("reply traversed %d hops", len(res.Stats.HopNodes))
	}
	_ = fwd
}

func TestReplySurvivesHopFailure(t *testing.T) {
	s := newSys(t, 300, 3, 8)
	in := s.readyInitiator(t, "a", 20)
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	bid := in.NewBid()
	rt, err := BuildReply(rep, nil, bid, s.root.Split("r"))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range rep.Hops {
		node, ok := s.dir.HopNode(h.HopID)
		if !ok {
			t.Fatal("hop missing")
		}
		if err := s.ov.Fail(node.Ref().Addr); err != nil {
			t.Fatal(err)
		}
	}
	responder := s.ov.RandomLive(s.root.Split("resp"))
	res, err := s.svc.DeliverReply(responder.Ref().Addr, &ReplyEnvelope{
		Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: []byte("d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LandedNode.ID != in.Node().ID() {
		t.Fatalf("reply lost after hop-node failures")
	}
}

func TestReplyMisroutesWhenAnchorLost(t *testing.T) {
	s := newSys(t, 300, 3, 9)
	in := s.readyInitiator(t, "a", 20)
	rep, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	bid := in.NewBid()
	rt, err := BuildReply(rep, nil, bid, s.root.Split("r"))
	if err != nil {
		t.Fatal(err)
	}
	// Destroy the middle hop's whole replica set simultaneously.
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(rep.Hops[1].HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	responder := s.ov.RandomLive(s.root.Split("resp"))
	res, err := s.svc.DeliverReply(responder.Ref().Addr, &ReplyEnvelope{
		Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: []byte("d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The walk terminates at the owner of the lost hopid, which cannot
	// decrypt anything — and is not the initiator.
	if res.LandedNode.ID == in.Node().ID() {
		t.Fatalf("reply reached initiator despite a lost anchor")
	}
	if len(res.Stats.HopNodes) != 1 {
		t.Fatalf("expected exactly the first hop to process, got %d", len(res.Stats.HopNodes))
	}
}

func TestHintOptimizationReducesHops(t *testing.T) {
	s := newSys(t, 500, 3, 10)
	in := s.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(5)
	if err != nil {
		t.Fatal(err)
	}
	dest := id.HashString("d")
	basicEnv, err := BuildForward(tun, nil, dest, []byte("x"), s.root.Split("b1"))
	if err != nil {
		t.Fatal(err)
	}
	basic, err := s.svc.DeliverForward(in.Node().Ref().Addr, basicEnv)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewHintCache()
	if err := cache.Refresh(s.svc, tun); err != nil {
		t.Fatal(err)
	}
	optEnv, err := BuildForward(tun, hintsFor(cache, tun), dest, []byte("x"), s.root.Split("b2"))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.svc.DeliverForward(in.Node().Ref().Addr, optEnv)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.HintHits != 5 {
		t.Fatalf("hint hits %d, want 5", opt.Stats.HintHits)
	}
	if opt.Stats.OverlayHops >= basic.Stats.OverlayHops {
		t.Fatalf("optimization did not reduce hops: %d vs %d", opt.Stats.OverlayHops, basic.Stats.OverlayHops)
	}
}

func TestStaleHintsFallBack(t *testing.T) {
	s := newSys(t, 400, 3, 11)
	in := s.readyInitiator(t, "a", 12)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewHintCache()
	if err := cache.Refresh(s.svc, tun); err != nil {
		t.Fatal(err)
	}
	// Kill two of the cached hop nodes: their hints go stale.
	for _, h := range tun.Hops[:2] {
		if err := s.ov.Fail(cache.Get(h.HopID)); err != nil {
			t.Fatal(err)
		}
	}
	env, err := BuildForward(tun, hintsFor(cache, tun), id.HashString("d"), []byte("x"), s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.svc.DeliverForward(in.Node().Ref().Addr, env)
	if err != nil {
		t.Fatalf("stale hints broke delivery: %v", err)
	}
	if res.Stats.HintMisses != 2 || res.Stats.HintHits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", res.Stats.HintHits, res.Stats.HintMisses)
	}
}

func TestBaselineDeliverAndDie(t *testing.T) {
	s := newSys(t, 200, 3, 12)
	ft, err := FormFixed(s.ov, 5, s.root.Split("ft"))
	if err != nil {
		t.Fatal(err)
	}
	dest := id.HashString("d")
	sealed, err := BuildFixedForward(ft, dest, []byte("baseline"), s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	gotDest, payload, err := s.svc.DeliverFixed(ft, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if gotDest != dest || string(payload) != "baseline" {
		t.Fatalf("baseline delivery mismatch")
	}
	if !ft.Alive(s.ov) {
		t.Fatalf("Alive false with all relays up")
	}
	// Kill one relay: the tunnel is dead, permanently.
	if err := s.ov.Fail(ft.Relays[2].Addr); err != nil {
		t.Fatal(err)
	}
	if ft.Alive(s.ov) {
		t.Fatalf("Alive true with a dead relay")
	}
	if _, _, err := s.svc.DeliverFixed(ft, sealed); !errors.Is(err, ErrRelayDead) {
		t.Fatalf("err = %v, want ErrRelayDead", err)
	}
}

func TestFormFixedErrors(t *testing.T) {
	s := newSys(t, 3, 3, 13)
	if _, err := FormFixed(s.ov, 0, s.root); err == nil {
		t.Fatalf("zero-length fixed tunnel accepted")
	}
	if _, err := FormFixed(s.ov, 10, s.root); err == nil {
		t.Fatalf("oversized fixed tunnel accepted")
	}
}

func TestBootstrapViaOnionRouting(t *testing.T) {
	s := newSys(t, 200, 3, 14)
	pki := onionroute.NewPKI(s.root.Split("pki"))
	in := s.newInitiator(t, "a")
	if err := in.Bootstrap(5, pki, 3); err != nil {
		t.Fatal(err)
	}
	if in.PoolSize() != 5 {
		t.Fatalf("pool %d after bootstrap", in.PoolSize())
	}
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	env, err := BuildForward(tun, nil, id.HashString("d"), []byte("boot"), s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.DeliverForward(in.Node().Ref().Addr, env); err != nil {
		t.Fatal(err)
	}
}

func TestDeployViaTunnel(t *testing.T) {
	s := newSys(t, 200, 3, 15)
	in := s.readyInitiator(t, "a", 5)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeployViaTunnel(tun, 4); err != nil {
		t.Fatal(err)
	}
	if in.PoolSize() != 9 {
		t.Fatalf("pool %d, want 9", in.PoolSize())
	}
	// All deployed anchors are fetchable by their hop nodes.
	for _, sec := range in.Pool() {
		if !s.dir.Available(sec.HopID) {
			t.Fatalf("anchor %s not available", sec.HopID.Short())
		}
	}
}

func TestDeleteAnchorsPrunesPool(t *testing.T) {
	s := newSys(t, 150, 3, 16)
	in := s.readyInitiator(t, "a", 10)
	tun, err := in.FormTunnel(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.DeleteAnchors(tun); err != nil {
		t.Fatal(err)
	}
	if in.PoolSize() != 6 {
		t.Fatalf("pool %d after deleting 4, want 6", in.PoolSize())
	}
	for _, h := range tun.Hops {
		if s.dir.Available(h.HopID) {
			t.Fatalf("deleted anchor %s still available", h.HopID.Short())
		}
	}
}

func TestSingleSymmetricOpPerHop(t *testing.T) {
	// §4: "each tunnel hop performs only a single symmetric key operation
	// per message that is processed" — l ops for an l-hop traversal, on
	// both directions.
	s := newSys(t, 300, 3, 29)
	in := s.readyInitiator(t, "a", 20)
	for _, l := range []int{1, 3, 5} {
		tun, err := in.FormTunnel(l)
		if err != nil {
			t.Fatal(err)
		}
		env, err := BuildForward(tun, nil, id.HashString("d"), []byte("m"), s.root.SplitN("b", l))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.svc.DeliverForward(in.Node().Ref().Addr, env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.CryptoOps != l {
			t.Fatalf("l=%d forward: %d crypto ops", l, res.Stats.CryptoOps)
		}
		rep, err := in.FormTunnel(l)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := BuildReply(rep, nil, in.NewBid(), s.root.SplitN("r", l))
		if err != nil {
			t.Fatal(err)
		}
		rres, err := s.svc.DeliverReply(s.ov.RandomLive(s.root.SplitN("resp", l)).Ref().Addr, &ReplyEnvelope{
			Target: rt.First, Hint: rt.FirstHint, Onion: rt.Onion, Data: []byte("d"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rres.Stats.CryptoOps != l {
			t.Fatalf("l=%d reply: %d crypto ops", l, rres.Stats.CryptoOps)
		}
	}
}

func TestDeleteAnchorsSparesSharedAnchors(t *testing.T) {
	// Two tunnels formed from a small pool overlap; retiring one must not
	// break the other.
	s := newSys(t, 200, 3, 27)
	in := s.readyInitiator(t, "a", 4)
	t1, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	t1Set := map[id.ID]bool{}
	for _, h := range t1.Hops {
		t1Set[h.HopID] = true
	}
	for _, h := range t2.Hops {
		if t1Set[h.HopID] {
			shared++
		}
	}
	if shared == 0 {
		t.Skip("pool draw produced disjoint tunnels; nothing to test")
	}
	if err := in.DeleteAnchors(t1); err != nil {
		t.Fatal(err)
	}
	// Every anchor of t2 must still be deployed.
	for _, h := range t2.Hops {
		if !s.dir.Available(h.HopID) {
			t.Fatalf("retiring t1 destroyed t2's anchor %s", h.HopID.Short())
		}
	}
	// And t2 still carries traffic.
	env, err := BuildForward(t2, nil, id.HashString("d"), []byte("alive"), s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.DeliverForward(in.Node().Ref().Addr, env); err != nil {
		t.Fatalf("t2 broken after t1 retirement: %v", err)
	}
	// Retiring t2 afterwards removes everything.
	if err := in.DeleteAnchors(t2); err != nil {
		t.Fatal(err)
	}
	for _, h := range t2.Hops {
		if s.dir.Available(h.HopID) {
			t.Fatalf("anchor %s survived final retirement", h.HopID.Short())
		}
	}
}

func TestNewBidOwnedByInitiator(t *testing.T) {
	s := newSys(t, 300, 3, 17)
	in := s.readyInitiator(t, "a", 5)
	for i := 0; i < 50; i++ {
		bid := in.NewBid()
		if s.ov.OwnerOf(bid).ID() != in.Node().ID() {
			t.Fatalf("bid %s not owned by initiator", bid.Short())
		}
		if bid == in.Node().ID() {
			t.Fatalf("bid equals node id; trivially identifying")
		}
	}
}

func TestPoolPrunesLostAnchors(t *testing.T) {
	s := newSys(t, 200, 3, 18)
	in := s.readyInitiator(t, "a", 6)
	victim := in.Pool()[0]
	s.mgr.BeginBatch()
	for _, addr := range s.dir.ReplicaAddrs(victim.HopID) {
		if err := s.ov.Fail(addr); err != nil {
			t.Fatal(err)
		}
	}
	s.mgr.EndBatch()
	if in.PoolSize() != 5 {
		t.Fatalf("pool %d after losing one anchor, want 5", in.PoolSize())
	}
}

func TestDeployPayloadRoundTrip(t *testing.T) {
	s := rng.New(19)
	g, _ := tha.NewGenerator([]byte("n"), s)
	sec, _ := g.Generate(s)
	ins := onionroute.Instruction{Anchor: sec.Anchor, Nonce: 0xfeedface}
	got, err := decodeDeployPayload(encodeDeployPayload(ins))
	if err != nil {
		t.Fatal(err)
	}
	if got.Anchor != ins.Anchor || got.Nonce != ins.Nonce {
		t.Fatalf("deploy payload round trip mismatch")
	}
	if _, err := decodeDeployPayload([]byte("short")); err == nil {
		t.Fatalf("short payload accepted")
	}
}

func TestEnvelopeSizes(t *testing.T) {
	s := newSys(t, 100, 3, 20)
	in := s.readyInitiator(t, "a", 10)
	tun, err := in.FormTunnel(3)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	env, err := BuildForward(tun, nil, id.HashString("d"), payload, s.root.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Three layers of sealing add 3*Overhead plus framing; the envelope
	// must be a little larger than the payload but far from double.
	if env.SizeBytes() < 1000 || env.SizeBytes() > 1400 {
		t.Fatalf("envelope size %d implausible for 1000-byte payload", env.SizeBytes())
	}
}
