package core

import (
	"encoding/binary"
	"fmt"

	"tap/internal/crypt"
	"tap/internal/id"
	"tap/internal/rng"
	"tap/internal/simnet"
	"tap/internal/tha"
	"tap/internal/wire"
)

// Layer markers inside forward-tunnel ciphertext.
const (
	layerRelay byte = 1
	layerExit  byte = 2
)

// Envelope is the wire unit of a forward tunnel: addressed to a hopid,
// optionally carrying the §5 address hint for that hop, and a sealed body
// only the hop's anchor key opens.
//
// Pad is link padding appended by relaying hops: each peeled layer
// shrinks the sealed body by the layer overhead, so without padding an
// observer could read a message's position in its tunnel off its length.
// Hops that strip a layer pad the envelope back to the size they
// received, keeping the wire size constant end to end. Pad bytes carry
// no information and are not authenticated — tampering with them has no
// effect.
type Envelope struct {
	HopID  id.ID
	Hint   simnet.Addr
	Sealed []byte
	Pad    int
}

// SizeBytes implements simnet.Message: hopid + hint + body + padding.
func (e *Envelope) SizeBytes() int { return id.Size + 8 + len(e.Sealed) + e.Pad }

// PadToMatch sets Pad so the envelope's wire size equals prior's. A
// smaller prior leaves the envelope unpadded.
func (e *Envelope) PadToMatch(priorSize int) {
	e.Pad = 0
	if d := priorSize - e.SizeBytes(); d > 0 {
		e.Pad = d
	}
}

// ForwardLayer is one decrypted layer of a forward message.
type ForwardLayer struct {
	IsExit bool

	// Relay fields: where the message goes next.
	Next     id.ID
	NextHint simnet.Addr
	Inner    []byte

	// Exit fields: the destination key and the plaintext payload
	// (which, in §4, is {fid, K_I, T_r}).
	Dest    id.ID
	Payload []byte
}

// uvarintLen returns the encoded size of a Blob length prefix for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// hintAt reads the i-th hint from a possibly-nil hint slice (nil is the
// basic, unoptimized mode: no hints anywhere).
func hintAt(hints []simnet.Addr, i int) simnet.Addr {
	if hints == nil {
		return simnet.NoAddr
	}
	return hints[i]
}

// BuildForward produces the Figure 1 message
// {h_2,[ip_2],{h_3,[ip_3],{D,m}_K3}_K2}_K1 for the given tunnel. hints may
// be nil (basic mode); with hints it is the §5 optimized form. The
// returned envelope is addressed to the first hop and owns its Sealed
// buffer.
//
// The whole onion is assembled in one exactly-sized buffer: every layer's
// sealed blob is the tail of the enclosing layer's plaintext, so each
// layer is sealed where it already lies and the payload is encrypted
// straight out of the caller's slice — no per-layer copies, no per-layer
// allocations. Nonces are drawn innermost-first, the same stream order as
// the original nested builder, which keeps output bit-identical for a
// given stream (the experiment tables depend on that).
func BuildForward(t *Tunnel, hints []simnet.Addr, dest id.ID, payload []byte, stream *rng.Stream) (*Envelope, error) {
	l := t.Length()
	if l == 0 {
		return nil, fmt.Errorf("core: cannot build a message for an empty tunnel")
	}
	if hints != nil && len(hints) != l {
		return nil, fmt.Errorf("core: %d hints for %d hops", len(hints), l)
	}

	// Layer sizes compose inside-out (the uvarint length prefix of each
	// inner blob depends on its size).
	sizes := make([]int, l)
	exitHdr := 1 + id.Size + uvarintLen(uint64(len(payload)))
	sizes[l-1] = exitHdr + len(payload) + crypt.Overhead
	for i := l - 2; i >= 0; i-- {
		sizes[i] = 1 + id.Size + 8 + uvarintLen(uint64(sizes[i+1])) + sizes[i+1] + crypt.Overhead
	}
	buf := make([]byte, sizes[0])

	// Offsets compose outside-in: layer i+1 sits after layer i's nonce
	// margin and relay header.
	offs := make([]int, l)
	for i := 1; i < l; i++ {
		offs[i] = offs[i-1] + crypt.NonceSize + 1 + id.Size + 8 + uvarintLen(uint64(sizes[i]))
	}

	// Innermost: the exit layer, sealed with the tail hop's key; the
	// payload is encrypted directly from the caller's slice.
	p := buf[offs[l-1]+crypt.NonceSize:]
	p[0] = layerExit
	copy(p[1:], dest[:])
	binary.PutUvarint(p[1+id.Size:], uint64(len(payload)))
	region := buf[offs[l-1] : offs[l-1]+sizes[l-1]]
	if err := t.hopSealer(l-1).SealInPlaceFrom(region, stream, exitHdr, payload); err != nil {
		return nil, fmt.Errorf("core: sealing exit layer: %w", err)
	}
	// Relay layers outward: layer i names hop i+1.
	for i := l - 2; i >= 0; i-- {
		p := buf[offs[i]+crypt.NonceSize:]
		p[0] = layerRelay
		copy(p[1:], t.Hops[i+1].HopID[:])
		binary.BigEndian.PutUint64(p[1+id.Size:], uint64(int64(hintAt(hints, i+1))))
		binary.PutUvarint(p[1+id.Size+8:], uint64(sizes[i+1]))
		if err := t.hopSealer(i).SealInPlace(buf[offs[i]:offs[i]+sizes[i]], stream); err != nil {
			return nil, fmt.Errorf("core: sealing relay layer %d: %w", i, err)
		}
	}
	return &Envelope{HopID: t.Hops[0].HopID, Hint: hintAt(hints, 0), Sealed: buf}, nil
}

// OpenForwardLayer is the single symmetric operation a hop performs: strip
// one layer with the anchor key and reveal either the next hop or the
// exit. sealed is left untouched (the layer is peeled on a private copy);
// hop engines that own their buffer use OpenForwardLayerInPlace.
func OpenForwardLayer(a tha.Anchor, sealed []byte) (ForwardLayer, error) {
	return OpenForwardLayerInPlace(a, append([]byte(nil), sealed...))
}

// OpenForwardLayerInPlace peels one layer decrypting sealed where it
// lies, using the anchor's cached key schedule: one MAC pass, one cipher
// pass, zero copies. The returned layer aliases sealed — the caller must
// own the buffer and must not treat it as ciphertext afterwards.
func OpenForwardLayerInPlace(a tha.Anchor, sealed []byte) (ForwardLayer, error) {
	plain, err := a.Sealer().OpenInPlace(sealed)
	if err != nil {
		return ForwardLayer{}, fmt.Errorf("core: hop %s: %w", a.HopID.Short(), err)
	}
	r := wire.NewReader(plain)
	switch marker := r.Byte(); marker {
	case layerRelay:
		var l ForwardLayer
		l.Next = r.ID()
		l.NextHint = simnet.Addr(r.Int64())
		l.Inner = r.Blob()
		if err := r.Done(); err != nil {
			return ForwardLayer{}, fmt.Errorf("core: relay layer: %w", err)
		}
		return l, nil
	case layerExit:
		l := ForwardLayer{IsExit: true}
		l.Dest = r.ID()
		l.Payload = r.Blob()
		if err := r.Done(); err != nil {
			return ForwardLayer{}, fmt.Errorf("core: exit layer: %w", err)
		}
		return l, nil
	default:
		return ForwardLayer{}, fmt.Errorf("core: unknown layer marker %d", marker)
	}
}

// --- reply tunnels -----------------------------------------------------------

// ReplyEnvelope is the wire unit of a reply tunnel. Unlike forward
// messages, the data rides alongside the onion: reply hops peel the
// routing onion only, and payload confidentiality comes from the
// responder's encryption under K_f (§4). Every reply layer has the same
// shape — next id, hint, remainder — so the final layer, which names the
// initiator's bid and carries the fake onion, is indistinguishable from an
// interior one.
type ReplyEnvelope struct {
	Target id.ID
	Hint   simnet.Addr
	Onion  []byte
	Data   []byte
	// Pad is link padding, maintained by relaying hops like the forward
	// Envelope's: the onion shrinks by one layer per hop, which would
	// otherwise mark position.
	Pad int
}

// SizeBytes implements simnet.Message.
func (e *ReplyEnvelope) SizeBytes() int {
	return id.Size + 8 + len(e.Onion) + len(e.Data) + e.Pad
}

// PadToMatch sets Pad so the envelope's wire size equals prior's.
func (e *ReplyEnvelope) PadToMatch(priorSize int) {
	e.Pad = 0
	if d := priorSize - e.SizeBytes(); d > 0 {
		e.Pad = d
	}
}

// ReplyTunnel is what the initiator embeds in a forward payload: the
// first reply hopid plus the pre-built onion the responder cannot read.
type ReplyTunnel struct {
	First     id.ID
	FirstHint simnet.Addr
	Onion     []byte
}

// Encode serializes the reply tunnel for embedding in a forward payload.
func (rt *ReplyTunnel) Encode() []byte {
	w := wire.NewWriter(id.Size + 8 + len(rt.Onion) + 8)
	w.ID(rt.First)
	w.Int64(int64(rt.FirstHint))
	w.Blob(rt.Onion)
	return w.Bytes()
}

// DecodeReplyTunnel parses an encoded reply tunnel.
func DecodeReplyTunnel(b []byte) (*ReplyTunnel, error) {
	r := wire.NewReader(b)
	rt := &ReplyTunnel{}
	rt.First = r.ID()
	rt.FirstHint = simnet.Addr(r.Int64())
	rt.Onion = append([]byte(nil), r.Blob()...)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("core: decoding reply tunnel: %w", err)
	}
	return rt, nil
}

// FakeOnionSize is the default fake-onion length: sized like one more
// sealed reply layer so the tail hop sees a plausible remainder.
const FakeOnionSize = id.Size + 8 + 2 + crypt.Overhead

// BuildReply constructs the §4 reply tunnel
// T_r = {hid_1', {hid_2', {hid_3', {bid, fakeonion}_K3'}_K2'}_K1'}:
// a pre-peeled onion ending at bid, capped with fake padding. hints may be
// nil for basic mode.
//
// Like BuildForward, the onion is assembled in one exactly-sized buffer
// and sealed layer by layer where it lies. The stream draw order of the
// nested builder is preserved — fake onion bytes first, then the tail
// nonce, then each outward layer's nonce — so output stays bit-identical.
func BuildReply(t *Tunnel, hints []simnet.Addr, bid id.ID, stream *rng.Stream) (*ReplyTunnel, error) {
	l := t.Length()
	if l == 0 {
		return nil, fmt.Errorf("core: cannot build a reply tunnel with no hops")
	}
	if hints != nil && len(hints) != l {
		return nil, fmt.Errorf("core: %d hints for %d hops", len(hints), l)
	}

	// Every reply layer has the same header; only the inner blob widths
	// differ. Sizes inside-out, offsets outside-in.
	hdr := func(inner int) int { return id.Size + 8 + uvarintLen(uint64(inner)) }
	sizes := make([]int, l)
	sizes[l-1] = hdr(FakeOnionSize) + FakeOnionSize + crypt.Overhead
	for i := l - 2; i >= 0; i-- {
		sizes[i] = hdr(sizes[i+1]) + sizes[i+1] + crypt.Overhead
	}
	buf := make([]byte, sizes[0])
	offs := make([]int, l)
	for i := 1; i < l; i++ {
		offs[i] = offs[i-1] + crypt.NonceSize + hdr(sizes[i])
	}

	// Tail layer: bid, no hint, fake onion. The fake bytes are drawn
	// before the tail nonce, matching the historical stream order.
	p := buf[offs[l-1]+crypt.NonceSize:]
	copy(p, bid[:])
	noHint := int64(simnet.NoAddr)
	binary.BigEndian.PutUint64(p[id.Size:], uint64(noHint))
	n := id.Size + 8 + binary.PutUvarint(p[id.Size+8:], uint64(FakeOnionSize))
	stream.Bytes(p[n : n+FakeOnionSize])
	if err := t.hopSealer(l-1).SealInPlace(buf[offs[l-1]:offs[l-1]+sizes[l-1]], stream); err != nil {
		return nil, fmt.Errorf("core: sealing reply tail: %w", err)
	}
	for i := l - 2; i >= 0; i-- {
		p := buf[offs[i]+crypt.NonceSize:]
		copy(p, t.Hops[i+1].HopID[:])
		binary.BigEndian.PutUint64(p[id.Size:], uint64(int64(hintAt(hints, i+1))))
		binary.PutUvarint(p[id.Size+8:], uint64(sizes[i+1]))
		if err := t.hopSealer(i).SealInPlace(buf[offs[i]:offs[i]+sizes[i]], stream); err != nil {
			return nil, fmt.Errorf("core: sealing reply layer %d: %w", i, err)
		}
	}
	return &ReplyTunnel{First: t.Hops[0].HopID, FirstHint: hintAt(hints, 0), Onion: buf}, nil
}

// OpenReplyLayer strips one reply-onion layer, yielding the next target
// (a hopid — or, at the end, the bid, though the hop cannot tell which)
// and the remaining onion. onion is left untouched; hop engines that own
// their buffer use OpenReplyLayerInPlace.
func OpenReplyLayer(a tha.Anchor, onion []byte) (next id.ID, hint simnet.Addr, rest []byte, err error) {
	return OpenReplyLayerInPlace(a, append([]byte(nil), onion...))
}

// OpenReplyLayerInPlace peels one reply layer decrypting onion where it
// lies with the anchor's cached key schedule. The returned rest aliases
// onion — the caller must own the buffer.
func OpenReplyLayerInPlace(a tha.Anchor, onion []byte) (next id.ID, hint simnet.Addr, rest []byte, err error) {
	plain, err := a.Sealer().OpenInPlace(onion)
	if err != nil {
		return id.ID{}, simnet.NoAddr, nil, fmt.Errorf("core: reply hop %s: %w", a.HopID.Short(), err)
	}
	r := wire.NewReader(plain)
	next = r.ID()
	hint = simnet.Addr(r.Int64())
	rest = r.Blob()
	if err := r.Done(); err != nil {
		return id.ID{}, simnet.NoAddr, nil, fmt.Errorf("core: reply layer: %w", err)
	}
	return next, hint, rest, nil
}
