package core

import (
	"fmt"

	"tap/internal/id"
	"tap/internal/pastry"
	"tap/internal/simnet"
)

// NetEngine drives tunnel traffic through the discrete-event network, the
// measurement substrate for Figure 6. The same layer formats and hop logic
// as the logical walker apply, but every overlay hop is a real
// store-and-forward network transmission with latency and serialization
// delay, so end-to-end transfer times are meaningful.
type NetEngine struct {
	svc *Service
	net *simnet.Network

	nextFlow uint64
	done     map[uint64]func(Outcome)

	// Stats across all flows.
	NetHops   uint64
	HintHits  uint64
	HintMiss  uint64
	FailFlows uint64

	// Tap, when non-nil, observes the protocol events a node operator
	// can see at its own node: tunnel envelopes received, and exits
	// performed (a tail hop knows it is the tail — it decrypts {D, m}).
	// Adversary instrumentation (internal/timing) filters to the nodes it
	// controls. The flow id is passed for ground-truth evaluation only; a
	// real attacker never sees it, and correlators must not match on it.
	Tap NetTap
}

// NetTap receives node-local protocol observations.
type NetTap interface {
	// EnvelopeReceived fires when a node receives a forward-tunnel
	// envelope addressed to a hop it serves (before decryption).
	EnvelopeReceived(at simnet.Addr, now simnet.Time, from simnet.Addr, flow uint64)
	// EnvelopeForwarded fires when a node relays a tunnel envelope
	// onward (as a hop or as a plain DHT router), with the address it
	// received it from — knowledge a node trivially has about itself,
	// which lets a collusion chain-trace through its own members.
	EnvelopeForwarded(at simnet.Addr, now simnet.Time, from simnet.Addr)
	// ExitObserved fires when a tail hop decrypts an exit layer and
	// learns the destination.
	ExitObserved(at simnet.Addr, now simnet.Time, flow uint64, dest id.ID)
}

// Outcome reports one completed (or failed) flow.
type Outcome struct {
	Flow      uint64
	Delivered bool
	At        simnet.Time
	NetHops   int
	FailedAt  string // empty on success
}

// packet kinds.
const (
	kindPayload byte = iota + 1 // plain payload riding to Target's owner
	kindForward                 // forward-tunnel envelope
	kindReply                   // reply-tunnel envelope
)

// packet is the single wire message type: content plus DHT routing state.
type packet struct {
	kind   byte
	flow   uint64
	target id.ID // DHT routing target; owner of this id consumes/processes
	direct bool  // true when sent straight to an address hint
	hops   int   // network hops taken so far
	// lastFrom is the network-level sender of the most recent hop —
	// what a receiving node sees as its predecessor.
	lastFrom simnet.Addr

	payloadSize int            // kindPayload
	env         *Envelope      // kindForward
	renv        *ReplyEnvelope // kindReply
}

// SizeBytes implements simnet.Message.
func (p *packet) SizeBytes() int {
	const header = 1 + 8 + id.Size + 1
	switch p.kind {
	case kindForward:
		return header + p.env.SizeBytes()
	case kindReply:
		return header + p.renv.SizeBytes()
	default:
		return header + p.payloadSize
	}
}

// NewNetEngine attaches handlers for every currently live node and for
// future joiners.
func NewNetEngine(svc *Service, net *simnet.Network) *NetEngine {
	e := &NetEngine{svc: svc, net: net, done: make(map[uint64]func(Outcome))}
	for _, r := range svc.OV.LiveRefs() {
		e.attach(r.Addr)
	}
	// Joiners get handlers too; departures are handled by simnet drops
	// (the experiment harness detaches failed nodes from the network).
	prevJoin := svc.OV.OnJoin
	svc.OV.OnJoin = func(n *pastry.Node) {
		if prevJoin != nil {
			prevJoin(n)
		}
		e.net.Grow(int(n.Ref().Addr) + 1)
		e.attach(n.Ref().Addr)
	}
	return e
}

// attach binds the engine's handler to one address.
func (e *NetEngine) attach(addr simnet.Addr) {
	e.net.Attach(addr, simnet.HandlerFunc(func(n *simnet.Network, from simnet.Addr, msg simnet.Message) {
		pkt, ok := msg.(*packet)
		if !ok {
			// Traffic that is not tunnel protocol — e.g. cover dummies —
			// is consumed and discarded.
			return
		}
		pkt.lastFrom = from
		e.deliver(addr, pkt)
	}))
}

// newFlow registers a completion callback and returns the flow id.
func (e *NetEngine) newFlow(done func(Outcome)) uint64 {
	e.nextFlow++
	if done != nil {
		e.done[e.nextFlow] = done
	}
	return e.nextFlow
}

// finish fires and clears the flow callback.
func (e *NetEngine) finish(p *packet, delivered bool, why string) {
	if !delivered {
		e.FailFlows++
	}
	cb, ok := e.done[p.flow]
	if !ok {
		return
	}
	delete(e.done, p.flow)
	cb(Outcome{
		Flow:      p.flow,
		Delivered: delivered,
		At:        e.net.Now(),
		NetHops:   p.hops,
		FailedAt:  why,
	})
}

// send transmits p one network hop.
func (e *NetEngine) send(from, to simnet.Addr, p *packet) {
	// Relays of tunnel envelopes are observable self-knowledge for a
	// wiretap at `from`: it can later recognize receptions downstream of
	// its own relaying as continuations. Originations (hops == 0) are not
	// relays.
	if e.Tap != nil && p.kind == kindForward && p.hops > 0 {
		e.Tap.EnvelopeForwarded(from, e.net.Now(), p.lastFrom)
	}
	p.hops++
	e.NetHops++
	e.net.Send(from, to, p)
}

// forwardToward moves p one Pastry hop toward its target, or processes it
// here if this node is the destination.
func (e *NetEngine) forwardToward(self simnet.Addr, p *packet) {
	node := e.svc.OV.Node(self)
	if node == nil || !node.Alive() {
		e.finish(p, false, fmt.Sprintf("node %d died holding packet", self))
		return
	}
	next, deliverHere := node.NextHop(p.target)
	if !deliverHere {
		e.send(self, next.Addr, p)
		return
	}
	e.process(self, p)
}

// deliver is the per-node network handler.
func (e *NetEngine) deliver(self simnet.Addr, p *packet) {
	if p.direct {
		// A hint shortcut landed here. If this node can act on the packet
		// (it holds the hop anchor), process it; otherwise the hint was
		// stale and the node falls back to DHT routing toward the target.
		p.direct = false
		switch p.kind {
		case kindForward:
			if e.svc.Dir.Manager().HolderHas(self, p.env.HopID) {
				e.HintHits++
				e.process(self, p)
				return
			}
		case kindReply:
			if e.svc.Dir.Manager().HolderHas(self, p.renv.Target) {
				e.HintHits++
				e.process(self, p)
				return
			}
		}
		e.HintMiss++
		e.forwardToward(self, p)
		return
	}
	e.forwardToward(self, p)
}

// process handles a packet that has reached the owner of its target id.
func (e *NetEngine) process(self simnet.Addr, p *packet) {
	switch p.kind {
	case kindPayload:
		e.finish(p, true, "")

	case kindForward:
		if e.Tap != nil && e.svc.Dir.Manager().HolderHas(self, p.env.HopID) {
			e.Tap.EnvelopeReceived(self, e.net.Now(), p.lastFrom, p.flow)
		}
		if !e.svc.hopServes(self, p.env.HopID) {
			e.finish(p, false, fmt.Sprintf("hop %s dropped at node %d", p.env.HopID.Short(), self))
			return
		}
		anchor, err := e.svc.Dir.FetchAsHolder(self, p.env.HopID)
		if err != nil {
			e.finish(p, false, fmt.Sprintf("hop %s lost", p.env.HopID.Short()))
			return
		}
		layer, err := OpenForwardLayer(anchor, p.env.Sealed)
		if err != nil {
			e.finish(p, false, fmt.Sprintf("hop %s: %v", p.env.HopID.Short(), err))
			return
		}
		if layer.IsExit {
			if e.Tap != nil {
				e.Tap.ExitObserved(self, e.net.Now(), p.flow, layer.Dest)
			}
			// Tail hop: route the payload to the destination owner.
			out := &packet{
				kind: kindPayload, flow: p.flow, target: layer.Dest,
				hops: p.hops, payloadSize: len(layer.Payload),
			}
			e.forwardToward(self, out)
			return
		}
		env := &Envelope{HopID: layer.Next, Hint: layer.NextHint, Sealed: layer.Inner}
		// Link padding: keep the wire size constant so an observer cannot
		// read the tunnel position off the message length.
		env.PadToMatch(p.env.SizeBytes())
		next := &packet{
			kind: kindForward, flow: p.flow, target: layer.Next, hops: p.hops,
			env: env,
			// The hop's own relay origin is whoever handed it the
			// incoming envelope.
			lastFrom: p.lastFrom,
		}
		e.dispatch(self, next, layer.NextHint)

	case kindReply:
		anchor, err := e.svc.Dir.FetchAsHolder(self, p.renv.Target)
		if err != nil {
			// No anchor here: final delivery point (the initiator, when
			// the tunnel held).
			e.finish(p, true, "")
			return
		}
		if !e.svc.hopServes(self, p.renv.Target) {
			e.finish(p, false, fmt.Sprintf("reply hop %s dropped at node %d", p.renv.Target.Short(), self))
			return
		}
		next, hint, rest, err := OpenReplyLayer(anchor, p.renv.Onion)
		if err != nil {
			e.finish(p, false, fmt.Sprintf("reply hop %s: %v", p.renv.Target.Short(), err))
			return
		}
		renv := &ReplyEnvelope{Target: next, Hint: hint, Onion: rest, Data: p.renv.Data}
		renv.PadToMatch(p.renv.SizeBytes())
		out := &packet{
			kind: kindReply, flow: p.flow, target: next, hops: p.hops,
			renv: renv,
		}
		e.dispatch(self, out, hint)
	}
}

// dispatch sends a packet toward its target, trying the address hint
// first. A hint to a detached address is detected by the sender (the
// connection fails) and falls back to DHT routing immediately.
func (e *NetEngine) dispatch(self simnet.Addr, p *packet, hint simnet.Addr) {
	if hint != simnet.NoAddr && hint != self && e.net.Attached(hint) {
		p.direct = true
		e.send(self, hint, p)
		return
	}
	if hint != simnet.NoAddr {
		e.HintMiss++
	}
	e.forwardToward(self, p)
}

// SendOvert starts a plain overt transfer and returns its flow id: size bytes routed over the
// P2P infrastructure from `from` to the owner of dest. The baseline curve
// of Figure 6.
func (e *NetEngine) SendOvert(from simnet.Addr, dest id.ID, size int, done func(Outcome)) uint64 {
	p := &packet{kind: kindPayload, flow: e.newFlow(done), target: dest, payloadSize: size}
	e.forwardToward(from, p)
	return p.flow
}

// SendForward starts a forward-tunnel transfer from the initiator's
// address. With hints inside env (built via a HintCache) this is TAP_opt;
// without, TAP_basic.
func (e *NetEngine) SendForward(from simnet.Addr, env *Envelope, done func(Outcome)) uint64 {
	p := &packet{kind: kindForward, flow: e.newFlow(done), target: env.HopID, env: env}
	e.dispatch(from, p, env.Hint)
	return p.flow
}

// SendReply starts a reply-tunnel transfer from the responder's address.
func (e *NetEngine) SendReply(from simnet.Addr, renv *ReplyEnvelope, done func(Outcome)) uint64 {
	p := &packet{kind: kindReply, flow: e.newFlow(done), target: renv.Target, renv: renv}
	e.dispatch(from, p, renv.Hint)
	return p.flow
}
